package pap

import (
	"fmt"

	"pap/internal/anml"
	"pap/internal/nfa"
)

// StartKind selects when a state self-activates.
type StartKind int

const (
	// NoStart: the state only activates via incoming transitions.
	NoStart StartKind = iota
	// StartOfData: enabled at input position 0 only (anchored).
	StartOfData
	// AllInput: enabled at every position (match anywhere) — the AP's
	// "start on all input".
	AllInput
)

// NoReport marks a non-reporting state in Builder.AddState.
const NoReport int32 = -1

// StateRef identifies a state within one Builder.
type StateRef int32

// Builder constructs custom homogeneous automata programmatically — for
// machines that are not regular expressions (the paper's scope explicitly
// exceeds regexes: counting lattices, track matchers, decision chains).
// Symbol sets use ANML syntax: "[abc]", "[a-z]", "[^\\n]", "[\\x00-\\x1f]",
// or "*" for any symbol.
//
//	b := pap.NewBuilder("twoGaps")
//	s1, _ := b.AddState("[ab]", pap.AllInput, pap.NoReport)
//	s2, _ := b.AddState("*", pap.NoStart, 7)
//	b.Connect(s1, s2)
//	a, err := b.Build()
type Builder struct {
	b   *nfa.Builder
	err error
}

// NewBuilder returns an empty automaton builder.
func NewBuilder(name string) *Builder {
	return &Builder{b: nfa.NewBuilder(name)}
}

// AddState appends a state matching the ANML symbol set, with the given
// start kind, reporting code (or NoReport). The first error sticks and is
// returned by Build.
func (b *Builder) AddState(symbolSet string, start StartKind, report int32) (StateRef, error) {
	if b.err != nil {
		return -1, b.err
	}
	cls, err := anml.ParseSymbolSet(symbolSet)
	if err != nil {
		b.err = err
		return -1, err
	}
	var flags nfa.Flags
	switch start {
	case NoStart:
	case StartOfData:
		flags |= nfa.StartOfData
	case AllInput:
		flags |= nfa.AllInput
	default:
		b.err = fmt.Errorf("pap: unknown start kind %d", start)
		return -1, b.err
	}
	id := b.b.AddState(cls, flags)
	if report != NoReport {
		b.b.SetFlags(id, nfa.Report)
		b.b.SetReportCode(id, report)
	}
	return StateRef(id), nil
}

// Connect adds a transition: when from fires, to becomes enabled for the
// next symbol.
func (b *Builder) Connect(from, to StateRef) {
	if b.err != nil {
		return
	}
	n := StateRef(b.b.Len())
	if from < 0 || to < 0 || from >= n || to >= n {
		b.err = fmt.Errorf("pap: Connect(%d, %d) out of range (%d states)", from, to, n)
		return
	}
	b.b.AddEdge(nfa.StateID(from), nfa.StateID(to))
}

// ConnectScored adds a scored transition: like Connect, but the edge
// carries a score that contributes to Match.Score under max-plus
// semantics — a path's score is the sum of its edge scores, a match's
// score the maximum over paths reaching its reporting state. Scores may
// be negative (penalties). Connect and ConnectScored mix freely: plain
// edges score 0. Duplicate edges keep the maximum score.
func (b *Builder) ConnectScored(from, to StateRef, score int32) {
	if b.err != nil {
		return
	}
	n := StateRef(b.b.Len())
	if from < 0 || to < 0 || from >= n || to >= n {
		b.err = fmt.Errorf("pap: ConnectScored(%d, %d) out of range (%d states)", from, to, n)
		return
	}
	b.b.AddScoredEdge(nfa.StateID(from), nfa.StateID(to), score)
}

// Build finalizes the automaton.
func (b *Builder) Build() (*Automaton, error) {
	if b.err != nil {
		return nil, b.err
	}
	n, err := b.b.Build()
	if err != nil {
		return nil, err
	}
	return &Automaton{n: n}, nil
}
