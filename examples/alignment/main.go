// Scored DNA motif alignment: find approximate occurrences of DNA probes
// in a synthetic genome and *rank* them by alignment score — the scored-NFA
// extension of the fuzzydna example. Each probe compiles to a Hamming
// lattice whose transitions carry +2 (match) / -3 (mismatch) scores, so
// under max-plus scoring every hit reports the score of its best alignment:
// exact hits score highest, each substitution costs 5. Scores survive the
// PAP parallelization exactly (the library verifies score-for-score
// equality with the sequential run) and carry across stream chunks.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pap"
)

const (
	matchScore = 2  // per aligned base
	missScore  = -3 // per substituted base
	maxErrors  = 3
)

func main() {
	probes := []string{
		"ACGTACGTACGTACGTACGTACGTACGT", // 28-mer probes
		"TTGACCTTGACCTTGACCTTGACCTTGA",
		"GGCATGGCATGGCATGGCATGGCAGGCA",
	}

	a, err := buildScored(probes)
	if err != nil {
		log.Fatal(err)
	}
	st := a.Stats()
	fmt.Printf("scored automaton: %d states, %d transitions (scored=%v)\n",
		st.States, st.Transitions, a.Scored())

	genome := makeGenome(1<<18, probes)
	fmt.Printf("genome: %d bases, %d probes of length %d\n",
		len(genome), len(probes), len(probes[0]))

	// Parallel scored matching: scored automata always track, so every
	// match carries its alignment score and Stats gains BestScore.
	rep, err := a.MatchParallel(genome, pap.DefaultConfig(4))
	if err != nil {
		log.Fatal(err)
	}
	exact := int64(matchScore * (len(probes[0]) - 1))
	fmt.Printf("\n%d hits within %d substitutions; best score %d (exact motif = %d)\n",
		len(rep.Matches), maxErrors, rep.Stats.BestScore, exact)
	fmt.Printf("modelled speedup %.1fx of ideal %.0fx; scores verified exact: %v\n",
		rep.Stats.Speedup, rep.Stats.IdealSpeedup, rep.Stats.Verified)

	// Rank hits: score → substitution count (each substitution trades a
	// +2 match edge for a -3 miss edge, so one error costs 5).
	byErrors := map[int64]int{}
	for _, m := range rep.Matches {
		byErrors[(exact-m.Score)/(matchScore-missScore)]++
	}
	fmt.Println("\nalignment quality histogram:")
	for e := int64(0); e <= maxErrors; e++ {
		fmt.Printf("  %d substitutions (score %d): %d hits\n",
			e, exact-e*(matchScore-missScore), byErrors[e])
	}

	// The same genome through a chunked stream: scores ride in the engine
	// alongside the frontier, so alignments straddling chunk boundaries
	// score identically to the whole-input run.
	s := a.NewStream()
	var streamBest int64
	seen := false
	for off := 0; off < len(genome); off += 4096 {
		end := min(off+4096, len(genome))
		for _, m := range s.Write(genome[off:end]) {
			if !seen || m.Score > streamBest {
				streamBest, seen = m.Score, true
			}
		}
	}
	fmt.Printf("\nstreamed in 4 KiB chunks: best score %d (same as parallel: %v)\n",
		streamBest, streamBest == rep.Stats.BestScore)
}

// buildScored compiles one scored Hamming lattice per probe: position i,
// error-count e states whose incoming transitions score +2 on the probe
// base and -3 on any other base.
func buildScored(probes []string) (*pap.Automaton, error) {
	b := pap.NewBuilder("scored-probes")
	for code, probe := range probes {
		if err := addScoredProbe(b, probe, int32(code)); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

func addScoredProbe(b *pap.Builder, probe string, code int32) error {
	L := len(probe)
	type node struct{ match, miss pap.StateRef }
	grid := make([][]node, L+1)
	for i := range grid {
		grid[i] = make([]node, maxErrors+1)
		for e := range grid[i] {
			grid[i][e] = node{match: -1, miss: -1}
		}
	}
	for i := 1; i <= L; i++ {
		matchSet := "[" + string(probe[i-1]) + "]"
		missSet := "[^" + string(probe[i-1]) + "]"
		for e := 0; e <= maxErrors && e <= i; e++ {
			start := pap.NoStart
			if i == 1 {
				start = pap.AllInput
			}
			report := pap.NoReport
			if i == L {
				report = code
			}
			if e <= i-1 {
				id, err := b.AddState(matchSet, start, report)
				if err != nil {
					return err
				}
				grid[i][e].match = id
			}
			if e >= 1 {
				id, err := b.AddState(missSet, start, report)
				if err != nil {
					return err
				}
				grid[i][e].miss = id
			}
		}
	}
	connect := func(from pap.StateRef, i, e int) {
		if i > L || from < 0 {
			return
		}
		if to := grid[i][e].match; e <= maxErrors && to >= 0 {
			b.ConnectScored(from, to, matchScore)
		}
		if e+1 <= maxErrors {
			if to := grid[i][e+1].miss; to >= 0 {
				b.ConnectScored(from, to, missScore)
			}
		}
	}
	for i := 1; i < L; i++ {
		for e := 0; e <= maxErrors; e++ {
			connect(grid[i][e].match, i+1, e)
			connect(grid[i][e].miss, i+1, e)
		}
	}
	return nil
}

// makeGenome emits random DNA with substitution-mutated copies of the
// probes planted, so hits span the full score range.
func makeGenome(size int, probes []string) []byte {
	rng := rand.New(rand.NewSource(42))
	const bases = "ACGT"
	out := make([]byte, 0, size)
	for len(out) < size {
		if rng.Intn(300) == 0 {
			probe := []byte(probes[rng.Intn(len(probes))])
			for i := rng.Intn(maxErrors + 1); i > 0; i-- {
				probe[rng.Intn(len(probe))] = bases[rng.Intn(4)]
			}
			out = append(out, probe...)
			continue
		}
		out = append(out, bases[rng.Intn(4)])
	}
	return out[:size]
}
