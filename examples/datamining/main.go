// Sequential pattern mining: count candidate sequential patterns ("A then
// B then C, in order, any gaps") over a transaction stream — the paper's
// SPM scenario (Apriori-style mining, where NFA processing dominates
// runtime). Also contrasts enumeration with the speculative execution mode
// (the paper's §6 future-work direction) on the same stream.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"pap"
)

// Items are single symbols; a transaction is a short sorted item group and
// the stream is the concatenation of transactions. A candidate sequence
// "A.*B.*C" matches when its items occur in order anywhere in the stream —
// the unbounded-gap shape whose always-on states make SPM's enumeration
// flows persistent.
const items = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"

func main() {
	rng := rand.New(rand.NewSource(4))

	// Candidate 3-sequences to support-count (as Apriori would generate).
	var candidates []string
	var names []string
	for i := 0; i < 40; i++ {
		a, b, c := items[rng.Intn(10)], items[10+rng.Intn(8)], items[18+rng.Intn(8)]
		candidates = append(candidates, fmt.Sprintf("%c.*%c.*%c", a, b, c))
		names = append(names, fmt.Sprintf("%c->%c->%c", a, b, c))
	}
	miner, err := pap.Compile("spm", candidates)
	if err != nil {
		log.Fatal(err)
	}
	st := miner.Stats()
	fmt.Printf("candidate automaton: %d sequences, %d states, %d components\n",
		len(candidates), st.States, st.ConnectedComponents)

	stream := makeTransactions(rng, 1<<17)
	fmt.Printf("transaction stream: %d items\n", len(stream))

	rep, err := miner.MatchParallel(stream, pap.DefaultConfig(4))
	if err != nil {
		log.Fatal(err)
	}
	support := map[int32]int{}
	for _, m := range rep.Matches {
		support[m.Code]++
	}
	fmt.Println("top supported sequences:")
	top := 0
	for code := range candidates {
		if n := support[int32(code)]; n > 0 {
			fmt.Printf("  %6d  %s\n", n, names[code])
			if top++; top == 5 {
				break
			}
		}
	}
	s := rep.Stats
	fmt.Printf("\nenumeration: %.1fx modelled speedup (ideal %.0fx), %.1f avg flows\n",
		s.Speedup, s.IdealSpeedup, s.AvgActiveFlows)

	// The §6 alternative: speculate that boundaries are idle. SPM streams
	// are hot (gap states stay enabled), so almost every segment
	// mispredicts and re-executes — enumeration wins.
	spec := pap.DefaultConfig(4)
	spec.Speculate = true
	srep, err := miner.MatchParallel(stream, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("speculation:  %.1fx modelled speedup (same exact matches: %v)\n",
		srep.Stats.Speedup, len(srep.Matches) == len(rep.Matches))
}

func makeTransactions(rng *rand.Rand, size int) []byte {
	var sb strings.Builder
	for sb.Len() < size {
		// One transaction: 3-6 distinct items, sorted.
		n := 3 + rng.Intn(4)
		seen := map[byte]bool{}
		var tx []byte
		for len(tx) < n {
			it := items[rng.Intn(len(items))]
			if !seen[it] {
				seen[it] = true
				tx = append(tx, it)
			}
		}
		for i := 0; i < len(tx); i++ {
			for j := i + 1; j < len(tx); j++ {
				if tx[j] < tx[i] {
					tx[i], tx[j] = tx[j], tx[i]
				}
			}
		}
		sb.Write(tx)
	}
	return []byte(sb.String()[:size])
}
