// Fuzzy DNA search: find approximate occurrences of DNA probes in a
// synthetic genome using Hamming- and Levenshtein-distance automata — the
// paper's bioinformatics scenario (ANMLZoo's Hamming and Levenshtein
// benchmarks; the (L, d) motif problems of Roy & Aluru).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pap"
)

func main() {
	probes := []string{
		"ACGTACGTACGTACGTACGTACGT", // 24-mer probes
		"TTGACCTTGACCTTGACCTTGACC",
		"GGCATGGCATGGCATGGCATGGCA",
	}

	genome := makeGenome(1<<18, probes)
	fmt.Printf("genome: %d bases, %d probes of length %d\n",
		len(genome), len(probes), len(probes[0]))

	// Hamming distance 3: substitutions only.
	ham, err := pap.Hamming("probes-hamming", probes, 3)
	if err != nil {
		log.Fatal(err)
	}
	hs := ham.Stats()
	hrep, err := ham.MatchParallel(genome, pap.DefaultConfig(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nHamming(d=3): %d states; %d hits; %.1fx modelled speedup "+
		"(ideal %.0fx, %.1f avg flows)\n",
		hs.States, len(hrep.Matches), hrep.Stats.Speedup,
		hrep.Stats.IdealSpeedup, hrep.Stats.AvgActiveFlows)

	// Levenshtein distance 2: substitutions, insertions and deletions.
	lev, err := pap.Levenshtein("probes-lev", probes, 2)
	if err != nil {
		log.Fatal(err)
	}
	ls := lev.Stats()
	lrep, err := lev.MatchParallel(genome, pap.DefaultConfig(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Levenshtein(d=2): %d states; %d hits; %.1fx modelled speedup "+
		"(ideal %.0fx, %.1f avg flows)\n",
		ls.States, len(lrep.Matches), lrep.Stats.Speedup,
		lrep.Stats.IdealSpeedup, lrep.Stats.AvgActiveFlows)

	perProbe := map[int32]int{}
	for _, m := range lrep.Matches {
		perProbe[m.Code]++
	}
	fmt.Println("\napproximate occurrences per probe (edit distance <= 2):")
	for i, p := range probes {
		fmt.Printf("  %6d  %s\n", perProbe[int32(i)], p)
	}
	fmt.Printf("\nboth runs verified exact against sequential matching: %v\n",
		hrep.Stats.Verified && lrep.Stats.Verified)
}

// makeGenome emits random DNA with mutated copies of the probes planted:
// substitutions, and occasionally an insertion or deletion, so Hamming and
// Levenshtein automata find overlapping but different hit sets.
func makeGenome(size int, probes []string) []byte {
	rng := rand.New(rand.NewSource(42))
	const bases = "ACGT"
	out := make([]byte, 0, size)
	for len(out) < size {
		if rng.Intn(300) == 0 {
			probe := []byte(probes[rng.Intn(len(probes))])
			mutated := mutate(rng, probe)
			out = append(out, mutated...)
			continue
		}
		out = append(out, bases[rng.Intn(4)])
	}
	return out[:size]
}

func mutate(rng *rand.Rand, probe []byte) []byte {
	const bases = "ACGT"
	out := append([]byte(nil), probe...)
	// 0-3 substitutions.
	for i := rng.Intn(4); i > 0; i-- {
		out[rng.Intn(len(out))] = bases[rng.Intn(4)]
	}
	switch rng.Intn(4) {
	case 0: // one deletion
		i := rng.Intn(len(out))
		out = append(out[:i], out[i+1:]...)
	case 1: // one insertion
		i := rng.Intn(len(out))
		out = append(out[:i], append([]byte{bases[rng.Intn(4)]}, out[i:]...)...)
	}
	return out
}
