// Intrusion detection: scan synthetic network traffic against a ruleset of
// attack signatures (the paper's motivating Snort/Bro scenario), comparing
// sequential AP matching with the parallelized version.
//
// The ruleset mixes exact payloads, character classes, bounded repetition
// and unbounded .* gaps — the constructs whose ranges drive the paper's
// enumeration costs.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"pap"
)

var signatures = []string{
	// Web attacks.
	`GET /admin/config\.php`,
	`\.\./\.\./etc/passwd`,
	`union select .* from`,
	`<script>alert`,
	`cmd\.exe\?/c\+dir`,
	// Shellcode-ish payloads.
	`\x90{8,32}`,
	`/bin/sh -i`,
	// Protocol anomalies.
	`USER anonymous.*PASS`,
	`EHLO [a-z0-9]{32,64}`,
	`Content-Length: 99999`,
	// Malware callbacks.
	`beacon\.(php|asp)\?id=[0-9a-f]+`,
	`POST /gate\.php`,
}

func main() {
	ids, err := pap.Compile("ids", signatures)
	if err != nil {
		log.Fatal(err)
	}
	// Compression folds shared prefixes (GET…, POST…) exactly as the
	// paper's pre-processing does.
	ids = ids.Compress()
	st := ids.Stats()
	fmt.Printf("IDS ruleset: %d signatures -> %d states, %d components\n",
		len(signatures), st.States, st.ConnectedComponents)

	traffic := makeTraffic(1<<18, 25)
	fmt.Printf("traffic: %d bytes\n", len(traffic))

	alerts := ids.Match(traffic)
	fmt.Printf("sequential scan: %d alerts\n", len(alerts))

	report, err := ids.MatchParallel(traffic, pap.DefaultConfig(4))
	if err != nil {
		log.Fatal(err)
	}
	s := report.Stats
	fmt.Printf("parallel scan:   %d alerts (verified exact: %v)\n",
		len(report.Matches), s.Verified)

	byRule := map[int32]int{}
	for _, m := range report.Matches {
		byRule[m.Code]++
	}
	fmt.Println("alerts by signature:")
	for code, sig := range signatures {
		if n := byRule[int32(code)]; n > 0 {
			fmt.Printf("  %3dx  %s\n", n, sig)
		}
	}
	fmt.Printf("\nmodelled AP: %d segments, %.1fx speedup (ideal %.0fx), "+
		"%.1f avg flows, %.2f%% switch overhead\n",
		s.Segments, s.Speedup, s.IdealSpeedup, s.AvgActiveFlows, s.SwitchOverheadPct)
}

// makeTraffic builds an HTTP-ish byte stream with attacks injected.
func makeTraffic(size, attacks int) []byte {
	rng := rand.New(rand.NewSource(7))
	benign := []string{
		"GET /index.html HTTP/1.1\r\nHost: example.com\r\n\r\n",
		"GET /static/logo.png HTTP/1.1\r\nHost: cdn.example.com\r\n\r\n",
		"POST /api/v2/session HTTP/1.1\r\nContent-Length: 42\r\n\r\n{\"user\":\"alice\"}",
		"HTTP/1.1 200 OK\r\nContent-Type: text/html\r\n\r\n<html><body>hello</body></html>",
	}
	malicious := []string{
		"GET /admin/config.php HTTP/1.1\r\n",
		"GET /../../etc/passwd HTTP/1.0\r\n",
		"q=1 union select password from users",
		"<script>alert(1)</script>",
		"POST /gate.php HTTP/1.1\r\n",
		"GET /beacon.php?id=deadbeef07 HTTP/1.1\r\n",
	}
	var sb strings.Builder
	attackEvery := size / (attacks + 1)
	next := attackEvery
	for sb.Len() < size {
		if sb.Len() >= next {
			sb.WriteString(malicious[rng.Intn(len(malicious))])
			next += attackEvery
			continue
		}
		sb.WriteString(benign[rng.Intn(len(benign))])
	}
	return []byte(sb.String()[:size])
}
