// Protein motif search: match PROSITE-style motifs against a synthetic
// protein sequence database — the paper's Protomata scenario (motif
// matching accelerates the discovery of unknown motifs in biological
// sequences).
//
// PROSITE notation maps directly onto the regex subset:
//
//	C-x(2)-H        ->  C[ACDEFGHIKLMNPQRSTVWY]{2}H
//	[ST]-G-[LIVM]   ->  [ST]G[LIVM]
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"pap"
)

const aminoAcids = "ACDEFGHIKLMNPQRSTVWY"

// motif converts PROSITE element notation into the regex subset.
func motif(elements ...string) string {
	var sb strings.Builder
	for _, e := range elements {
		switch {
		case e == "x":
			sb.WriteString("[" + aminoAcids + "]")
		case strings.HasPrefix(e, "x("):
			n := strings.TrimSuffix(strings.TrimPrefix(e, "x("), ")")
			sb.WriteString("[" + aminoAcids + "]{" + n + "}")
		default:
			sb.WriteString(e)
		}
	}
	return sb.String()
}

func main() {
	// Real PROSITE signatures (zinc finger, kinase, EF-hand, and friends),
	// transliterated to the regex subset.
	motifs := []string{
		motif("C", "x(2,4)", "C", "x(3)", "[LIVMFYWC]", "x(8)", "H", "x(3,5)", "H"), // C2H2 zinc finger
		motif("[LIV]", "G", "x", "G", "x(2)", "[SG]", "x(16)", "K"),                 // protein kinase ATP site
		motif("D", "x", "[DNS]", "x(2)", "[DE]", "[LIVMFYW]"),                       // EF-hand calcium site
		motif("[GA]", "x(4)", "G", "K", "[ST]"),                                     // P-loop NTPase
		motif("C", "x(2)", "C", "x(13)", "C", "x(2)", "C"),                          // nuclear receptor
		motif("[RK]", "x(2)", "[DE]", "x(3)", "Y"),                                  // phosphosite
	}
	names := []string{
		"C2H2 zinc finger", "kinase ATP site", "EF-hand", "P-loop", "nuclear receptor", "phosphosite",
	}

	db, err := pap.Compile("prosite", motifs)
	if err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("motif automaton: %d states, %d components\n", st.States, st.ConnectedComponents)

	proteins := makeProteome(1 << 18)
	fmt.Printf("proteome: %d residues\n", len(proteins))

	report, err := db.MatchParallel(proteins, pap.DefaultConfig(4))
	if err != nil {
		log.Fatal(err)
	}
	counts := map[int32]int{}
	for _, m := range report.Matches {
		counts[m.Code]++
	}
	fmt.Println("motif occurrences:")
	for code, name := range names {
		fmt.Printf("  %6d  %s\n", counts[int32(code)], name)
	}
	s := report.Stats
	fmt.Printf("\nmodelled AP: %d segments, %.1fx speedup (ideal %.0fx), verified exact: %v\n",
		s.Segments, s.Speedup, s.IdealSpeedup, s.Verified)
	fmt.Printf("cut symbol %q (range %d), %.1f avg flows\n",
		s.CutSymbol, s.CutRange, s.AvgActiveFlows)
}

// makeProteome emits random protein sequence with realistic residue
// frequencies and a few planted motif instances.
func makeProteome(size int) []byte {
	rng := rand.New(rand.NewSource(11))
	planted := []string{
		"CAACAGRLIVMFYWCAAAAAAAAHGGGH", // zinc-finger-ish
		"LGAGAASAAAAAAAAAAAAAAAAK",     // kinase-ish
		"DADAADEL",                     // EF-hand-ish
		"GAAAAGKS",                     // P-loop
	}
	out := make([]byte, 0, size)
	for len(out) < size {
		if rng.Intn(400) == 0 {
			out = append(out, planted[rng.Intn(len(planted))]...)
			continue
		}
		out = append(out, aminoAcids[rng.Intn(len(aminoAcids))])
	}
	return out[:size]
}
