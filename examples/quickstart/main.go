// Quickstart: compile a small ruleset, match an input sequentially, then
// match it with the Parallel Automata Processor model and compare.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"pap"
)

func main() {
	// A ruleset: exact strings, classes, repetitions — anything in the
	// supported regex subset. Unanchored patterns match anywhere.
	automaton, err := pap.Compile("quickstart", []string{
		"error",
		"warn(ing)?",
		"timeout after [0-9]+ms",
	})
	if err != nil {
		log.Fatal(err)
	}
	st := automaton.Stats()
	fmt.Printf("automaton: %d states, %d components\n", st.States, st.ConnectedComponents)

	// A synthetic log stream with a few hits sprinkled in.
	input := makeLog(1 << 16)

	// Sequential matching: one symbol per modelled AP cycle.
	matches := automaton.Match(input)
	fmt.Printf("sequential: %d matches\n", len(matches))
	for _, m := range matches[:min(3, len(matches))] {
		fmt.Printf("  rule %d ends at offset %d\n", m.Code, m.Offset)
	}

	// Parallel matching on a modelled 4-rank AP board: the input is split
	// into segments processed concurrently; unknown segment start states
	// are enumerated as AP flows and composed exactly.
	report, err := automaton.MatchParallel(input, pap.DefaultConfig(4))
	if err != nil {
		log.Fatal(err)
	}
	s := report.Stats
	fmt.Printf("parallel: %d matches across %d segments (verified exact: %v)\n",
		len(report.Matches), s.Segments, s.Verified)
	fmt.Printf("cut symbol %q with range %d; %.1f flows active on average\n",
		s.CutSymbol, s.CutRange, s.AvgActiveFlows)
	fmt.Printf("modelled AP time: %.1f µs -> %.1f µs  (%.1fx speedup, ideal %.0fx)\n",
		s.BaselineNS/1e3, s.ParallelNS/1e3, s.Speedup, s.IdealSpeedup)
}

func makeLog(size int) []byte {
	rng := rand.New(rand.NewSource(1))
	lines := []string{
		"service request ok path=/api/v1/items",
		"cache hit ratio 0.93 shard=7",
		"error connecting to upstream db",
		"warning: retry budget low",
		"timeout after 250ms on shard 3",
	}
	var sb strings.Builder
	for sb.Len() < size {
		sb.WriteString(lines[rng.Intn(len(lines))])
		sb.WriteByte('\n')
	}
	return []byte(sb.String()[:size])
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
