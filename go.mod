module pap

go 1.22
