package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestPct(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	// Nearest-rank estimator: i = round(N*q/100) - 1.
	cases := []struct {
		q, want float64
	}{
		{50, 5},
		{95, 10},
		{99, 10},
		{100, 10},
	}
	for _, c := range cases {
		if got := pct(sorted, c.q); got != c.want {
			t.Errorf("pct(%.0f) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := pct(nil, 50); got != 0 {
		t.Errorf("pct(empty) = %v, want 0", got)
	}
	if got := pct([]float64{7}, 99); got != 7 {
		t.Errorf("pct(single, 99) = %v, want 7", got)
	}
}

func TestParseMetricValue(t *testing.T) {
	cases := []struct {
		line string
		want int64
	}{
		{"papd_batches_total 42", 42},
		{`papd_router_forwarded_total{peer="a:1"} 7`, 7},
		{"papd_batch_size_sum 12.5", 12},
		{"garbage", 0},
	}
	for _, c := range cases {
		if got := parseMetricValue(c.line); got != c.want {
			t.Errorf("parseMetricValue(%q) = %d, want %d", c.line, got, c.want)
		}
	}
}

// TestRunOnceSmoke drives a real single-replica load for a fraction of a
// second: traffic flows, nothing errors, and the coalescer batches.
func TestRunOnceSmoke(t *testing.T) {
	rep, err := runOnce(options{
		replicas: 1, ruleset: "smoke", mode: "mixed",
		duration: 400 * time.Millisecond, conns: 4,
		payload: 128, seed: 1, reloads: 1,
		batchWindow: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if rep.Errors != 0 || rep.SessionResets != 0 {
		t.Fatalf("%d errors, %d session resets, want 0/0", rep.Errors, rep.SessionResets)
	}
	if rep.Reloads != 1 {
		t.Errorf("reloads = %d, want 1", rep.Reloads)
	}
	if rep.CoalescedBatches == 0 {
		t.Error("no batches coalesced under concurrent small-payload load")
	}
}

// TestRunBenchSmoke sweeps a 1-replica "cluster" and checks the scaling
// table lands on disk with one run per size.
func TestRunBenchSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	err := runBench(options{
		replicas: 1, ruleset: "bench", mode: "match",
		duration: 300 * time.Millisecond, conns: 2,
		payload: 64, seed: 1, batchWindow: time.Millisecond,
	}, 1, out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var table struct {
		Runs []report `json:"runs"`
	}
	if err := json.Unmarshal(data, &table); err != nil {
		t.Fatalf("bench table not JSON: %v\n%s", err, data)
	}
	if len(table.Runs) != 1 || table.Runs[0].Replicas != 1 {
		t.Fatalf("bench runs = %+v, want one 1-replica run", table.Runs)
	}
	if table.Runs[0].Requests == 0 || table.Runs[0].Errors != 0 {
		t.Fatalf("bench run = %+v, want traffic and zero errors", table.Runs[0])
	}

	// -bench refuses external targets: it owns its cluster sizes.
	if err := runBench(options{targets: []string{"x:1"}}, 1, ""); err == nil {
		t.Fatal("runBench with -targets must error")
	}
}
