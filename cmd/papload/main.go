// Command papload is a seeded load generator for papd: it drives match
// and streaming-write traffic against one or more replicas (external via
// -targets, or spawned in-process via -replicas, wired as each other's
// peers) and reports latency percentiles, throughput, errors and
// session resets as JSON. With -reloads it hot-reloads the ruleset while
// the load runs, which is how `make load-smoke` proves a re-register is
// zero-downtime; with -bench it sweeps 1..N replica clusters and writes
// the BENCH_papd.json scaling table.
//
// Usage:
//
//	papload [-targets host1:8461,host2:8461 | -replicas 2] [-ruleset load]
//	        [-mode match|stream|mixed] [-duration 5s] [-conns 8] [-rate 0]
//	        [-payload 256] [-seed 1] [-reloads 0] [-out report.json]
//	        [-require-zero-errors] [-require-coalescing]
//	        [-bench] [-bench-max-replicas 4]
//
// The closed-loop default keeps every connection saturated; -rate > 0
// paces the fleet to a total requests/second. Exit status is nonzero
// when a -require-* gate fails, so CI can assert "zero errors, and the
// coalescer actually batched" in one command.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pap/internal/server"
)

type options struct {
	targets     []string // base addresses (host:port), external or spawned
	replicas    int
	ruleset     string
	mode        string
	duration    time.Duration
	conns       int
	rate        float64 // total requests/second across all conns; 0 = closed loop
	payload     int
	seed        int64
	reloads     int
	batchWindow time.Duration // spawned replicas only
	tenantRPS   float64       // spawned replicas only
}

type report struct {
	Mode          string  `json:"mode"`
	Replicas      int     `json:"replicas"`
	Conns         int     `json:"conns"`
	DurationSec   float64 `json:"duration_sec"`
	Requests      int64   `json:"requests"`
	Errors        int64   `json:"errors"`
	SessionResets int64   `json:"session_resets"`
	Reloads       int64   `json:"reloads"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`

	// Scraped from the replicas' /metrics after the run.
	CoalescedBatches int64 `json:"coalesced_batches"`
	BatchedRequests  int64 `json:"batched_requests"`
	RouterForwarded  int64 `json:"router_forwarded"`
}

func main() {
	var (
		targets    = flag.String("targets", "", "comma-separated papd addresses to load (host:port); empty spawns -replicas in-process")
		replicas   = flag.Int("replicas", 1, "in-process replicas to spawn when -targets is empty")
		ruleset    = flag.String("ruleset", "load", "ruleset name to register and drive")
		mode       = flag.String("mode", "match", "traffic shape: match, stream or mixed")
		duration   = flag.Duration("duration", 5*time.Second, "load duration")
		conns      = flag.Int("conns", 8, "concurrent connections")
		rate       = flag.Float64("rate", 0, "total requests/second across all conns (0 = closed loop)")
		payload    = flag.Int("payload", 256, "payload bytes per request")
		seed       = flag.Int64("seed", 1, "rng seed for payloads and pacing jitter")
		reloads    = flag.Int("reloads", 0, "hot-reload the ruleset this many times during the run")
		out        = flag.String("out", "", "write the JSON report here as well as stdout")
		reqZero    = flag.Bool("require-zero-errors", false, "exit 1 on any error or session reset")
		reqCoal    = flag.Bool("require-coalescing", false, "exit 1 unless at least one multi-request batch was coalesced")
		bench      = flag.Bool("bench", false, "sweep 1..bench-max-replicas spawned clusters and write a scaling table")
		benchMax   = flag.Int("bench-max-replicas", 4, "largest cluster in the -bench sweep")
		batchWin   = flag.Duration("batch-window", 2*time.Millisecond, "BatchWindow for spawned replicas (0 disables coalescing)")
		tenantRPS  = flag.Float64("tenant-rps", 0, "TenantRPS for spawned replicas (0 disables quotas)")
	)
	flag.Parse()

	opts := options{
		replicas: *replicas, ruleset: *ruleset, mode: *mode,
		duration: *duration, conns: *conns, rate: *rate,
		payload: *payload, seed: *seed, reloads: *reloads,
		batchWindow: *batchWin, tenantRPS: *tenantRPS,
	}
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			opts.targets = append(opts.targets, t)
		}
	}

	if *bench {
		if err := runBench(opts, *benchMax, *out); err != nil {
			log.Fatalf("papload: %v", err)
		}
		return
	}

	rep, err := runOnce(opts)
	if err != nil {
		log.Fatalf("papload: %v", err)
	}
	emit(rep, *out)
	if *reqZero && (rep.Errors > 0 || rep.SessionResets > 0) {
		log.Fatalf("papload: --require-zero-errors: %d errors, %d session resets",
			rep.Errors, rep.SessionResets)
	}
	if *reqCoal && (rep.CoalescedBatches == 0 || rep.BatchedRequests <= rep.CoalescedBatches) {
		log.Fatalf("papload: --require-coalescing: %d batches for %d batched requests",
			rep.CoalescedBatches, rep.BatchedRequests)
	}
}

func emit(v any, out string) {
	data, _ := json.MarshalIndent(v, "", "  ")
	data = append(data, '\n')
	os.Stdout.Write(data)
	if out != "" {
		if err := os.WriteFile(out, data, 0o644); err != nil {
			log.Fatalf("papload: writing %s: %v", out, err)
		}
	}
}

// runBench sweeps spawned cluster sizes 1..max and collects one report
// per size — the replica-scaling table behind BENCH_papd.json.
func runBench(opts options, max int, out string) error {
	if len(opts.targets) > 0 {
		return fmt.Errorf("-bench spawns its own clusters; drop -targets")
	}
	var table struct {
		Benchmark string   `json:"benchmark"`
		Note      string   `json:"note"`
		Mode      string   `json:"mode"`
		Conns     int      `json:"conns"`
		Payload   int      `json:"payload_bytes"`
		Runs      []report `json:"runs"`
	}
	table.Benchmark = "papd replica scaling"
	table.Note = "spawned replicas share one host's cores, so these runs price the " +
		"shard-routing hop and coalescing window rather than demonstrating " +
		"horizontal scaling; run with -targets against real hosts for that"
	table.Mode = opts.mode
	table.Conns = opts.conns
	table.Payload = opts.payload
	for n := 1; n <= max; n++ {
		o := opts
		o.replicas = n
		rep, err := runOnce(o)
		if err != nil {
			return fmt.Errorf("replicas=%d: %w", n, err)
		}
		log.Printf("replicas=%d: %.0f req/s, p50 %.2fms p99 %.2fms, %d errors",
			n, rep.ThroughputRPS, rep.P50Ms, rep.P99Ms, rep.Errors)
		table.Runs = append(table.Runs, rep)
	}
	emit(table, out)
	return nil
}

// runOnce executes one load run against external targets or a freshly
// spawned in-process cluster.
func runOnce(opts options) (report, error) {
	targets := opts.targets
	if len(targets) == 0 {
		spawned, shutdown, err := spawnCluster(opts)
		if err != nil {
			return report{}, err
		}
		defer shutdown()
		targets = spawned
	}

	client := &http.Client{
		Timeout: 60 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        4 * opts.conns,
			MaxIdleConnsPerHost: 2 * opts.conns,
		},
	}

	if err := register(client, targets, opts.ruleset, 1); err != nil {
		return report{}, err
	}

	var (
		requests, errors, resets, reloadsDone atomic.Int64
		mu   sync.Mutex
		lats []float64 // milliseconds
	)
	record := func(d time.Duration) {
		mu.Lock()
		lats = append(lats, float64(d)/float64(time.Millisecond))
		mu.Unlock()
	}

	ctx, cancel := context.WithTimeout(context.Background(), opts.duration)
	defer cancel()

	// Hot reloads spread across the run: each re-register bumps the
	// ruleset version on every replica while the load keeps flowing.
	var reloadWG sync.WaitGroup
	if opts.reloads > 0 {
		reloadWG.Add(1)
		go func() {
			defer reloadWG.Done()
			interval := opts.duration / time.Duration(opts.reloads+1)
			for i := 0; i < opts.reloads; i++ {
				select {
				case <-ctx.Done():
					return
				case <-time.After(interval):
				}
				if err := register(client, targets, opts.ruleset, i+2); err != nil {
					log.Printf("papload: reload %d: %v", i+1, err)
					errors.Add(1)
					continue
				}
				reloadsDone.Add(1)
			}
		}()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < opts.conns; c++ {
		streaming := opts.mode == "stream" || (opts.mode == "mixed" && c%2 == 0)
		wg.Add(1)
		go func(c int, streaming bool) {
			defer wg.Done()
			w := &worker{
				client: client, targets: targets, ruleset: opts.ruleset,
				rng:     rand.New(rand.NewSource(opts.seed + int64(c))),
				payload: opts.payload,
			}
			var pace <-chan time.Time
			if opts.rate > 0 {
				t := time.NewTicker(time.Duration(float64(opts.conns) / opts.rate * float64(time.Second)))
				defer t.Stop()
				pace = t.C
			}
			for ctx.Err() == nil {
				if pace != nil {
					select {
					case <-pace:
					case <-ctx.Done():
						return
					}
				}
				var d time.Duration
				var err error
				var reset bool
				if streaming {
					d, reset, err = w.streamWrite(ctx)
				} else {
					d, err = w.match(ctx)
				}
				if ctx.Err() != nil {
					return // don't count requests the deadline cut off
				}
				requests.Add(1)
				if reset {
					resets.Add(1)
				}
				if err != nil {
					errors.Add(1)
				} else {
					record(d)
				}
			}
		}(c, streaming)
	}
	wg.Wait()
	reloadWG.Wait()
	elapsed := time.Since(start)

	rep := report{
		Mode: opts.mode, Replicas: len(targets), Conns: opts.conns,
		DurationSec:   elapsed.Seconds(),
		Requests:      requests.Load(),
		Errors:        errors.Load(),
		SessionResets: resets.Load(),
		Reloads:       reloadsDone.Load(),
		ThroughputRPS: float64(requests.Load()) / elapsed.Seconds(),
	}
	sort.Float64s(lats)
	rep.P50Ms, rep.P95Ms, rep.P99Ms = pct(lats, 50), pct(lats, 95), pct(lats, 99)
	rep.CoalescedBatches, rep.BatchedRequests, rep.RouterForwarded = scrapeMetrics(client, targets)
	return rep, nil
}

// spawnCluster boots n in-process papd replicas wired as each other's
// peers and returns their addresses and a shutdown func.
func spawnCluster(opts options) ([]string, func(), error) {
	n := opts.replicas
	if n < 1 {
		n = 1
	}
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	servers := make([]*server.Server, n)
	for i := range servers {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		s := server.New(server.Config{
			Addr:          addrs[i],
			AdvertiseAddr: addrs[i],
			Peers:         peers,
			BatchWindow:   opts.batchWindow,
			TenantRPS:     opts.tenantRPS,
		})
		servers[i] = s
		go s.Serve(lns[i])
	}
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, s := range servers {
			_ = s.Shutdown(ctx)
		}
	}
	return addrs, shutdown, nil
}

// register installs (or hot-reloads) the ruleset on every target.
// Patterns vary by version so a reload genuinely recompiles, while every
// version still matches the planted needle.
func register(client *http.Client, targets []string, name string, version int) error {
	body := fmt.Sprintf(`{"name": %q, "patterns": ["needle", "v%d[0-9]+marker"]}`,
		name, version)
	for _, t := range targets {
		resp, err := client.Post("http://"+t+"/v1/automata", "application/json",
			strings.NewReader(body))
		if err != nil {
			return fmt.Errorf("register on %s: %w", t, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 201 && resp.StatusCode != 200 {
			return fmt.Errorf("register on %s: HTTP %d", t, resp.StatusCode)
		}
	}
	return nil
}

type worker struct {
	client  *http.Client
	targets []string
	ruleset string
	rng     *rand.Rand
	payload int
	next    int

	// Streaming state: one live session, reopened on loss.
	sessionID string
	sessionAt string // the target the session was opened through
	offset    int64
}

func (w *worker) target() string {
	t := w.targets[w.next%len(w.targets)]
	w.next++
	return t
}

// body builds a seeded payload with a needle planted mid-way.
func (w *worker) body() []byte {
	const alpha = "abcdefghijklmnopqrstuvwxyz 0123456789"
	b := make([]byte, w.payload)
	for i := range b {
		b[i] = alpha[w.rng.Intn(len(alpha))]
	}
	if len(b) >= 8 {
		copy(b[w.rng.Intn(len(b)-7):], "needle")
	}
	return b
}

func (w *worker) match(ctx context.Context) (time.Duration, error) {
	url := "http://" + w.target() + "/v1/automata/" + w.ruleset + "/match"
	req, err := http.NewRequestWithContext(ctx, "POST", url, bytes.NewReader(w.body()))
	if err != nil {
		return 0, err
	}
	start := time.Now()
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != 200 {
		return 0, fmt.Errorf("match: HTTP %d", resp.StatusCode)
	}
	return time.Since(start), nil
}

// streamWrite writes one chunk to the worker's session (opening one on
// demand) and verifies the stream offset advanced by exactly the chunk:
// any other answer is a session reset — the failure mode the hot-reload
// smoke exists to catch.
func (w *worker) streamWrite(ctx context.Context) (d time.Duration, reset bool, err error) {
	if w.sessionID == "" {
		if err := w.openSession(ctx); err != nil {
			return 0, false, err
		}
	}
	chunk := w.body()
	url := "http://" + w.sessionAt + "/v1/streams/" + w.sessionID + "/write"
	req, err := http.NewRequestWithContext(ctx, "POST", url, bytes.NewReader(chunk))
	if err != nil {
		return 0, false, err
	}
	start := time.Now()
	resp, err := w.client.Do(req)
	if err != nil {
		w.sessionID = ""
		return 0, true, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == 404 {
		// The session vanished: reopen next round and call it a reset.
		io.Copy(io.Discard, resp.Body)
		w.sessionID = ""
		return 0, true, fmt.Errorf("stream write: session lost")
	}
	if resp.StatusCode != 200 {
		io.Copy(io.Discard, resp.Body)
		return 0, false, fmt.Errorf("stream write: HTTP %d", resp.StatusCode)
	}
	var wr struct {
		Offset int64 `json:"offset"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		return 0, false, err
	}
	want := w.offset + int64(len(chunk))
	if wr.Offset != want {
		w.sessionID = ""
		return 0, true, fmt.Errorf("stream offset %d, want %d: session state lost", wr.Offset, want)
	}
	w.offset = want
	return time.Since(start), false, nil
}

func (w *worker) openSession(ctx context.Context) error {
	t := w.target()
	body := fmt.Sprintf(`{"automaton": %q}`, w.ruleset)
	req, err := http.NewRequestWithContext(ctx, "POST", "http://"+t+"/v1/streams",
		strings.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 201 {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("open stream: HTTP %d", resp.StatusCode)
	}
	var si struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&si); err != nil {
		return err
	}
	w.sessionID, w.sessionAt, w.offset = si.ID, t, 0
	return nil
}

// pct returns the q-th percentile of sorted (ascending) latencies.
func pct(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(float64(len(sorted))*q/100+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// scrapeMetrics sums the coalescing and routing counters across every
// target's /metrics.
func scrapeMetrics(client *http.Client, targets []string) (batches, batched, forwarded int64) {
	for _, t := range targets {
		resp, err := client.Get("http://" + t + "/metrics")
		if err != nil {
			continue
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "papd_batches_total "):
				batches += parseMetricValue(line)
			case strings.HasPrefix(line, "papd_batched_requests_total "):
				batched += parseMetricValue(line)
			case strings.HasPrefix(line, "papd_router_forwarded_total"):
				forwarded += parseMetricValue(line)
			}
		}
		resp.Body.Close()
	}
	return batches, batched, forwarded
}

func parseMetricValue(line string) int64 {
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		return 0
	}
	f, err := strconv.ParseFloat(line[i+1:], 64)
	if err != nil {
		return 0
	}
	return int64(f)
}
