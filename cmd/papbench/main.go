// Command papbench regenerates the paper's evaluation: Table 1 and
// Figures 3, 8, 9, 10, 11, 12, plus the §5.3 sensitivity studies and an
// optimization ablation.
//
// Usage:
//
//	papbench -experiment all                 # everything, default scale
//	papbench -experiment fig8 -scale 1 -size1 1048576 -size10 10485760
//	papbench -experiment table1 -benchmarks Snort,ClamAV
//	papbench -list
//
// Scale notes: -scale multiplies ruleset sizes (1.0 = paper-size automata);
// -size1/-size10 set the byte counts standing in for the paper's 1 MB and
// 10 MB streams. Defaults (0.25 / 128 KiB / 1 MiB) complete in minutes on a
// laptop while preserving the evaluation's shape.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pap/internal/experiments"
	"pap/internal/report"
	"pap/internal/workloads"
)

func main() {
	var (
		experiment = flag.String("experiment", "all",
			"one of: table1, fig3, fig8, fig9, fig10, fig11, fig12, switch, energy, ablation, speculation, dfa, all")
		scale      = flag.Float64("scale", 0.25, "ruleset scale in (0,1]; 1 = paper-size automata")
		size1      = flag.Int("size1", 128<<10, "bytes standing in for the paper's 1 MB stream")
		size10     = flag.Int("size10", 1<<20, "bytes standing in for the paper's 10 MB stream")
		seed       = flag.Int64("seed", 42, "workload/trace random seed")
		workers    = flag.Int("workers", 0, "simulator goroutines (0 = GOMAXPROCS)")
		benchmarks = flag.String("benchmarks", "", "comma-separated subset (default: all 19)")
		list       = flag.Bool("list", false, "list benchmarks and exit")
		reportPath = flag.String("report", "", "also write an HTML report with SVG figures to this path")
	)
	flag.Parse()

	if *list {
		for _, s := range workloads.All() {
			fmt.Printf("%-18s %-8s %s\n", s.Name, s.Suite, s.Description)
		}
		return
	}

	opts := experiments.Options{
		Scale:    *scale,
		Size1MB:  *size1,
		Size10MB: *size10,
		Seed:     *seed,
		Workers:  *workers,
	}
	if *workers == 0 {
		// Benchmarks prefetch concurrently; keep per-run parallelism low.
		opts.Workers = 2
	}
	if *benchmarks != "" {
		opts.Benchmarks = strings.Split(*benchmarks, ",")
	}
	env := experiments.NewEnv(opts)

	if err := run(env, *experiment); err != nil {
		fmt.Fprintln(os.Stderr, "papbench:", err)
		os.Exit(1)
	}
	if *reportPath != "" {
		if err := writeReport(env, *reportPath); err != nil {
			fmt.Fprintln(os.Stderr, "papbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote HTML report to %s\n", *reportPath)
	}
}

func writeReport(env *experiments.Env, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.Generate(f, env); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(env *experiments.Env, experiment string) error {
	o := env.Options()
	fmt.Printf("papbench: scale=%.2f size1=%d size10=%d seed=%d\n\n",
		o.Scale, o.Size1MB, o.Size10MB, o.Seed)

	steps := map[string]func() error{
		"table1": func() error {
			rows, err := env.Table1()
			if err != nil {
				return err
			}
			return experiments.WriteTable1(os.Stdout, rows)
		},
		"fig3": func() error {
			rows, err := env.Fig3()
			if err != nil {
				return err
			}
			return experiments.WriteFig3(os.Stdout, rows)
		},
		"fig8": func() error {
			for _, size := range []experiments.SizeClass{experiments.Size1MB, experiments.Size10MB} {
				sum, err := env.Fig8(size)
				if err != nil {
					return err
				}
				if err := experiments.WriteFig8(os.Stdout, sum); err != nil {
					return err
				}
				fmt.Println()
			}
			return nil
		},
		"fig9": func() error {
			rows, err := env.Fig9()
			if err != nil {
				return err
			}
			return experiments.WriteFig9(os.Stdout, rows)
		},
		"fig10": func() error {
			rows, err := env.Fig10()
			if err != nil {
				return err
			}
			return experiments.WriteFig10(os.Stdout, rows)
		},
		"fig11": func() error {
			rows, err := env.Fig11()
			if err != nil {
				return err
			}
			return experiments.WriteFig11(os.Stdout, rows)
		},
		"fig12": func() error {
			rows, err := env.Fig12()
			if err != nil {
				return err
			}
			return experiments.WriteFig12(os.Stdout, rows)
		},
		"switch": func() error {
			sum, err := env.SwitchSensitivity()
			if err != nil {
				return err
			}
			return experiments.WriteSwitch(os.Stdout, sum)
		},
		"energy": func() error {
			sum, err := env.Energy()
			if err != nil {
				return err
			}
			return experiments.WriteEnergy(os.Stdout, sum)
		},
		"dfa": func() error {
			rows, err := env.DFAComparison()
			if err != nil {
				return err
			}
			return experiments.WriteDFA(os.Stdout, rows)
		},
		"speculation": func() error {
			rows, err := env.Speculation()
			if err != nil {
				return err
			}
			return experiments.WriteSpeculation(os.Stdout, rows)
		},
		"ablation": func() error {
			rows, err := env.Ablation()
			if err != nil {
				return err
			}
			return experiments.WriteAblation(os.Stdout, rows)
		},
	}

	// Warm the run cache concurrently for the experiments that need
	// end-to-end executions.
	prefetch := func(ranks []int, sizes []experiments.SizeClass) error {
		return timed("prefetch", func() error { return env.Prefetch(ranks, sizes, 0) })
	}
	if experiment != "all" {
		fn, ok := steps[experiment]
		if !ok {
			return fmt.Errorf("unknown experiment %q", experiment)
		}
		switch experiment {
		case "fig8":
			if err := prefetch([]int{1, 4},
				[]experiments.SizeClass{experiments.Size1MB, experiments.Size10MB}); err != nil {
				return err
			}
		case "fig9", "fig10", "fig11", "fig12", "energy":
			if err := prefetch([]int{1}, []experiments.SizeClass{experiments.Size1MB}); err != nil {
				return err
			}
		}
		return timed(experiment, fn)
	}
	if err := prefetch([]int{1, 4},
		[]experiments.SizeClass{experiments.Size1MB, experiments.Size10MB}); err != nil {
		return err
	}
	for _, name := range []string{"table1", "fig3", "fig8", "fig9", "fig10", "fig11", "fig12", "switch", "energy"} {
		if err := timed(name, steps[name]); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func timed(name string, fn func() error) error {
	start := time.Now()
	if err := fn(); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	fmt.Printf("[%s completed in %v]\n", name, time.Since(start).Round(time.Millisecond))
	return nil
}
