package main

import (
	"testing"

	"pap/internal/experiments"
)

func tinyEnv() *experiments.Env {
	return experiments.NewEnv(experiments.Options{
		Scale:      0.02,
		Size1MB:    8 << 10,
		Size10MB:   16 << 10,
		Seed:       7,
		Workers:    2,
		Benchmarks: []string{"ExactMatch", "Bro217"},
	})
}

func TestRunSingleExperiments(t *testing.T) {
	for _, exp := range []string{"table1", "fig3", "fig9", "fig10", "fig11", "fig12", "energy", "switch", "ablation", "speculation", "dfa"} {
		if err := run(tinyEnv(), exp); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(tinyEnv(), "nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunFig8(t *testing.T) {
	if err := run(tinyEnv(), "fig8"); err != nil {
		t.Fatal(err)
	}
}
