package main

import (
	"strconv"
	"strings"
	"testing"

	"pap/internal/conformance"
)

func TestRunSmallSweep(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-cases", "50", "-q"}, &out); code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "50 cases, 0 failures") {
		t.Fatalf("unexpected summary:\n%s", out.String())
	}
}

func TestRunReplaySingleCase(t *testing.T) {
	var out strings.Builder
	seed := conformance.CaseSeed(1, 3)
	if code := run([]string{"-case", strconv.FormatInt(seed, 10)}, &out); code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-definitely-not-a-flag"}, &out); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
