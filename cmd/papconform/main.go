// Command papconform runs the conformance sweep: randomized automata and
// adversarial inputs checked against the reference oracle across every
// execution path of the library (sequential runs on all engines, boundary
// and segment-resume runs, chunked streaming, the PAP parallelization
// under its ablation toggles, and serial-vs-parallel cross-segment
// scheduler parity down to bit-identical modelled cycle metrics). It is
// the CLI twin of the
// internal/conformance test suite, for long soak runs and CI jobs.
//
// Usage:
//
//	papconform                          # 10,000 cases, seed 1
//	papconform -cases 500000 -seed 7    # nightly-scale sweep
//	papconform -case -123456789         # replay one failing case by seed
//
// Exit status is 0 when every invariant holds, 1 otherwise; each failure
// prints a shrunk NFA + input and a one-line `go test` repro.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pap/internal/conformance"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("papconform", flag.ContinueOnError)
	var (
		cases    = fs.Int("cases", 10000, "number of generated cases")
		seed     = fs.Int64("seed", 1, "base sweep seed")
		caseSeed = fs.Int64("case", 0, "replay exactly one case by its seed and exit")
		workers  = fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		maxFail  = fs.Int("maxfail", 10, "stop after this many failures")
		noShrink = fs.Bool("noshrink", false, "skip minimisation of failing cases")
		quiet    = fs.Bool("q", false, "suppress progress output")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *caseSeed != 0 {
		f, err := conformance.RunOne(*caseSeed, !*noShrink)
		if err != nil {
			fmt.Fprintln(out, "papconform:", err)
			return 1
		}
		if f != nil {
			fmt.Fprintf(out, "case %d FAILED:\n%s\n", f.Seed, f)
			return 1
		}
		fmt.Fprintf(out, "case %d ok\n", *caseSeed)
		return 0
	}

	start := time.Now()
	opts := conformance.Options{
		Seed:        *seed,
		Cases:       *cases,
		Workers:     *workers,
		MaxFailures: *maxFail,
		NoShrink:    *noShrink,
	}
	if !*quiet {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(out, "papconform: %d/%d cases (%.1fs)\n",
				done, total, time.Since(start).Seconds())
		}
	}
	sum := conformance.Run(opts)
	for i := range sum.Failures {
		fmt.Fprintf(out, "case %d FAILED:\n%s\n", sum.Failures[i].Seed, &sum.Failures[i])
	}
	fmt.Fprintf(out, "papconform: %d cases, %d failures, seed %d, %v\n",
		sum.Cases, len(sum.Failures), *seed, time.Since(start).Round(time.Millisecond))
	if len(sum.Failures) > 0 {
		return 1
	}
	return 0
}
