package main

import "testing"

func TestRunStats(t *testing.T) {
	if err := run("Bro217", 0.02, 1, true, false, false, false, 0, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunANML(t *testing.T) {
	if err := run("Bro217", 0.02, 1, false, false, true, false, 0, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunMNRL(t *testing.T) {
	if err := run("Bro217", 0.02, 1, false, false, false, true, 0, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunRanges(t *testing.T) {
	if err := run("ExactMatch", 0.02, 1, false, false, false, false, 0, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", 0.1, 1, true, false, false, false, 0, false); err == nil {
		t.Fatal("missing benchmark accepted")
	}
	if err := run("NoSuch", 0.1, 1, true, false, false, false, 0, false); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if err := run("Bro217", 0, 1, true, false, false, false, 0, false); err == nil {
		t.Fatal("zero scale accepted")
	}
	if err := run("Bro217", 0.1, 1, false, false, false, false, 0, false); err == nil {
		t.Fatal("no-op invocation accepted")
	}
}
