// Command papgen builds a benchmark automaton and emits its structure,
// DOT rendering, or a synthesized input trace — useful for inspecting the
// workloads behind the experiments and for feeding paprun.
//
// Usage:
//
//	papgen -benchmark Snort -stats
//	papgen -benchmark Levenshtein -dot > lev.dot
//	papgen -benchmark ExactMatch -trace 1048576 > trace.bin
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"pap/internal/anml"
	"pap/internal/mnrl"
	"pap/internal/workloads"
)

func main() {
	var (
		benchmark = flag.String("benchmark", "", "benchmark name (see papbench -list)")
		scale     = flag.Float64("scale", 0.25, "ruleset scale in (0,1]")
		seed      = flag.Int64("seed", 42, "random seed")
		stats     = flag.Bool("stats", false, "print automaton statistics")
		dot       = flag.Bool("dot", false, "write Graphviz DOT to stdout")
		anmlOut   = flag.Bool("anml", false, "write the automaton as ANML XML to stdout")
		mnrlOut   = flag.Bool("mnrl", false, "write the automaton as MNRL JSON to stdout")
		trace     = flag.Int("trace", 0, "write a trace of this many bytes to stdout")
		ranges    = flag.Bool("ranges", false, "print the per-symbol range profile")
	)
	flag.Parse()

	if err := run(*benchmark, *scale, *seed, *stats, *dot, *anmlOut, *mnrlOut, *trace, *ranges); err != nil {
		fmt.Fprintln(os.Stderr, "papgen:", err)
		os.Exit(1)
	}
}

func run(benchmark string, scale float64, seed int64, stats, dot, anmlOut, mnrlOut bool, trace int, ranges bool) error {
	if benchmark == "" {
		return fmt.Errorf("-benchmark is required (see papbench -list)")
	}
	spec, err := workloads.Get(benchmark)
	if err != nil {
		return err
	}
	n, err := spec.Build(scale, seed)
	if err != nil {
		return err
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	did := false
	if stats {
		did = true
		st := n.ComputeStats()
		fmt.Fprintf(out, "%s (%s): %s\n", spec.Name, spec.Suite, spec.Description)
		fmt.Fprintf(out, "states        %d (paper: %d)\n", st.States, spec.PaperStates)
		fmt.Fprintf(out, "transitions   %d\n", st.Edges)
		fmt.Fprintf(out, "components    %d (paper: %d)\n", st.CCs, spec.PaperCCs)
		fmt.Fprintf(out, "reporting     %d\n", st.Reporting)
		fmt.Fprintf(out, "always-active %d\n", st.AllInput)
		rs := n.RangeStatsAll()
		fmt.Fprintf(out, "range         min %d / avg %.1f / max %d (paper cut-symbol range: %d)\n",
			rs.Min, rs.Avg, rs.Max, spec.PaperRange)
	}
	if ranges {
		did = true
		for s := 0; s < 256; s++ {
			if r := n.RangeSize(byte(s)); r > 0 {
				fmt.Fprintf(out, "%3d %q range %d\n", s, byte(s), r)
			}
		}
	}
	if dot {
		did = true
		if err := n.WriteDOT(out); err != nil {
			return err
		}
	}
	if anmlOut {
		did = true
		if err := anml.Encode(out, n); err != nil {
			return err
		}
	}
	if mnrlOut {
		did = true
		if err := mnrl.Encode(out, n); err != nil {
			return err
		}
	}
	if trace > 0 {
		did = true
		if _, err := out.Write(spec.Trace(n, trace, seed)); err != nil {
			return err
		}
	}
	if !did {
		return fmt.Errorf("nothing to do: pass -stats, -dot, -anml, -ranges, or -trace N")
	}
	return nil
}
