// Command papconvert converts automata between the formats this repository
// speaks: regex rule files, ANML XML, MNRL JSON, and Graphviz DOT, with
// optional common-prefix compression on the way through.
//
// Usage:
//
//	papconvert -rules rules.txt -to anml > out.anml
//	papconvert -from-anml zoo.anml -to mnrl > out.mnrl
//	papconvert -from-mnrl net.mnrl -to dot | dot -Tsvg > net.svg
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"pap"
)

func main() {
	var (
		rulesPath = flag.String("rules", "", "pattern file (one regex per line)")
		fromANML  = flag.String("from-anml", "", "ANML XML input")
		fromMNRL  = flag.String("from-mnrl", "", "MNRL JSON input")
		to        = flag.String("to", "", "output format: anml, mnrl, dot")
		compress  = flag.Bool("compress", false, "apply common-prefix compression")
	)
	flag.Parse()
	if err := run(*rulesPath, *fromANML, *fromMNRL, *to, *compress); err != nil {
		fmt.Fprintln(os.Stderr, "papconvert:", err)
		os.Exit(1)
	}
}

func run(rulesPath, fromANML, fromMNRL, to string, compress bool) error {
	a, err := load(rulesPath, fromANML, fromMNRL)
	if err != nil {
		return err
	}
	if compress {
		a = a.Compress()
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	switch to {
	case "anml":
		return a.EncodeANML(out)
	case "mnrl":
		return a.EncodeMNRL(out)
	case "dot":
		return a.WriteDOT(out)
	case "":
		return fmt.Errorf("-to is required (anml, mnrl, dot)")
	default:
		return fmt.Errorf("unknown output format %q", to)
	}
}

func load(rulesPath, fromANML, fromMNRL string) (*pap.Automaton, error) {
	sources := 0
	for _, p := range []string{rulesPath, fromANML, fromMNRL} {
		if p != "" {
			sources++
		}
	}
	if sources != 1 {
		return nil, fmt.Errorf("exactly one of -rules, -from-anml, -from-mnrl is required")
	}
	switch {
	case fromANML != "":
		f, err := os.Open(fromANML)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return pap.DecodeANML(f)
	case fromMNRL != "":
		f, err := os.Open(fromMNRL)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return pap.DecodeMNRL(f)
	default:
		f, err := os.Open(rulesPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		var patterns []string
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			patterns = append(patterns, line)
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		if len(patterns) == 0 {
			return nil, fmt.Errorf("%s: no patterns", rulesPath)
		}
		return pap.Compile(rulesPath, patterns)
	}
}
