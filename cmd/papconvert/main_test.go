package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConvertRulesToFormats(t *testing.T) {
	rules := write(t, "rules.txt", "abc\nxy+z\n")
	for _, to := range []string{"anml", "mnrl", "dot"} {
		if err := run(rules, "", "", to, false); err != nil {
			t.Fatalf("to %s: %v", to, err)
		}
	}
	if err := run(rules, "", "", "anml", true); err != nil {
		t.Fatalf("with compression: %v", err)
	}
}

func TestConvertANMLToMNRL(t *testing.T) {
	anmlDoc := `<automata-network id="x">
  <state-transition-element id="a" symbol-set="[h]" start="all-input">
    <activate-on-match element="b"/>
  </state-transition-element>
  <state-transition-element id="b" symbol-set="[i]">
    <report-on-match reportcode="1"/>
  </state-transition-element>
</automata-network>`
	p := write(t, "x.anml", anmlDoc)
	if err := run("", p, "", "mnrl", false); err != nil {
		t.Fatal(err)
	}
}

func TestConvertErrors(t *testing.T) {
	rules := write(t, "rules.txt", "abc\n")
	if err := run(rules, "", "", "", false); err == nil {
		t.Error("missing -to accepted")
	}
	if err := run(rules, "", "", "yaml", false); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run("", "", "", "anml", false); err == nil {
		t.Error("no source accepted")
	}
	if err := run(rules, rules, "", "anml", false); err == nil {
		t.Error("two sources accepted")
	}
	if err := run("", write(t, "bad.anml", "junk"), "", "mnrl", false); err == nil {
		t.Error("bad ANML accepted")
	}
	if err := run("", "", write(t, "bad.mnrl", "junk"), "anml", false); err == nil {
		t.Error("bad MNRL accepted")
	}
}
