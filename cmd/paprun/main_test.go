package main

import (
	"os"
	"path/filepath"
	"testing"

	"pap"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestReadRules(t *testing.T) {
	p := writeFile(t, "rules.txt", "# comment\n\nabc\n  def  \n#x\nghi\n")
	rules, err := readRules(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 || rules[0] != "abc" || rules[1] != "def" || rules[2] != "ghi" {
		t.Fatalf("rules = %v", rules)
	}
}

func TestReadRulesEmpty(t *testing.T) {
	p := writeFile(t, "rules.txt", "# only comments\n\n")
	if _, err := readRules(p); err == nil {
		t.Fatal("empty ruleset accepted")
	}
	if _, err := readRules(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunSequentialAndParallel(t *testing.T) {
	rules := writeFile(t, "rules.txt", "attack\ndefen[cs]e\n")
	input := writeFile(t, "input.bin",
		"an attack on the defense perimeter; the defence held; attack again "+
			"and padding padding padding padding padding padding padding padding")
	if err := run(rules, "", "", input, false, 1, true, false, 5, pap.EngineAuto, pap.ExecFlows, false); err != nil {
		t.Fatalf("sequential: %v", err)
	}
	if err := run(rules, "", "", input, true, 2, true, true, 5, pap.EngineAuto, pap.ExecFlows, false); err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if err := run(rules, "", "", input, true, 2, true, true, 5, pap.EngineAuto, pap.ExecSFA, false); err != nil {
		t.Fatalf("parallel sfa: %v", err)
	}
	// -scored on an unscored ruleset: every match reports score 0.
	if err := run(rules, "", "", input, false, 1, true, false, 5, pap.EngineAuto, pap.ExecFlows, true); err != nil {
		t.Fatalf("sequential scored: %v", err)
	}
	if err := run(rules, "", "", input, true, 2, true, true, 5, pap.EngineAuto, pap.ExecFlows, true); err != nil {
		t.Fatalf("parallel scored: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", "", "-", false, 1, false, true, 1, pap.EngineAuto, pap.ExecFlows, false); err == nil {
		t.Fatal("missing -rules accepted")
	}
	bad := writeFile(t, "rules.txt", "a(b\n")
	input := writeFile(t, "in.bin", "xyz")
	if err := run(bad, "", "", input, false, 1, false, true, 1, pap.EngineAuto, pap.ExecFlows, false); err == nil {
		t.Fatal("invalid pattern accepted")
	}
	good := writeFile(t, "ok.txt", "abc\n")
	if err := run(good, "", "", filepath.Join(t.TempDir(), "missing.bin"), false, 1, false, true, 1, pap.EngineAuto, pap.ExecFlows, false); err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestRunFromANMLAndMNRL(t *testing.T) {
	anmlDoc := `<automata-network id="x">
  <state-transition-element id="a" symbol-set="[h]" start="all-input">
    <activate-on-match element="b"/>
  </state-transition-element>
  <state-transition-element id="b" symbol-set="[i]">
    <report-on-match reportcode="1"/>
  </state-transition-element>
</automata-network>`
	mnrlDoc := `{"id":"x","nodes":[
  {"id":"a","type":"hState","enable":"always","attributes":{"symbolSet":"[h]"},
   "outputConnections":[{"portId":"main","activateIds":["b"]}]},
  {"id":"b","type":"hState","attributes":{"symbolSet":"[i]"},"report":true,"reportId":1}]}`
	anmlPath := writeFile(t, "a.anml", anmlDoc)
	mnrlPath := writeFile(t, "a.mnrl", mnrlDoc)
	input := writeFile(t, "in.txt", "say hi and hi again")
	if err := run("", anmlPath, "", input, false, 1, false, true, 1, pap.EngineAuto, pap.ExecFlows, false); err != nil {
		t.Fatalf("anml: %v", err)
	}
	if err := run("", "", mnrlPath, input, false, 1, false, true, 1, pap.EngineAuto, pap.ExecFlows, false); err != nil {
		t.Fatalf("mnrl: %v", err)
	}
	// Mutually exclusive sources.
	if err := run(anmlPath, anmlPath, "", input, false, 1, false, true, 1, pap.EngineAuto, pap.ExecFlows, false); err == nil {
		t.Fatal("multiple sources accepted")
	}
}
