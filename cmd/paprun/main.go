// Command paprun matches a ruleset against an input file, sequentially or
// with the PAP parallelization, and reports matches plus modelled AP
// statistics.
//
// Usage:
//
//	paprun -rules rules.txt -input data.bin              # sequential
//	paprun -rules rules.txt -input data.bin -parallel -ranks 4
//	paprun -rules rules.txt -input data.bin -engine bit  # force a backend
//	paprun -rules rules.txt -input data.bin -parallel -mode sfa
//	paprun -rules rules.txt -input data.bin -scored      # per-match scores
//	echo 'GET /admin' | paprun -rules rules.txt -parallel
//
// The rules file contains one pattern per line; blank lines and lines
// starting with '#' are ignored.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pap"
)

func main() {
	var (
		rulesPath = flag.String("rules", "", "pattern file (one regex per line)")
		anmlPath  = flag.String("anml", "", "ANML XML automaton (alternative to -rules)")
		mnrlPath  = flag.String("mnrl", "", "MNRL JSON automaton (alternative to -rules)")
		inputPath = flag.String("input", "-", "input file ('-' = stdin)")
		parallel  = flag.Bool("parallel", false, "use the PAP parallelization")
		ranks     = flag.Int("ranks", 1, "modelled AP ranks (1..4)")
		compress  = flag.Bool("compress", true, "apply common-prefix compression")
		quiet     = flag.Bool("quiet", false, "suppress per-match output")
		maxPrint  = flag.Int("max-print", 20, "print at most this many matches")
		engName   = flag.String("engine", "auto",
			"execution backend: "+strings.Join(pap.EngineKindNames(), ", "))
		modeName = flag.String("mode", "flows",
			"parallel execution mode: "+strings.Join(pap.ExecModeNames(), ", "))
		scored = flag.Bool("scored", false,
			"track per-transition max-plus scores and report each match's score plus the best")
	)
	flag.Parse()

	engine, err := pap.ParseEngineKind(*engName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paprun:", err)
		os.Exit(1)
	}
	mode, err := pap.ParseExecMode(*modeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paprun:", err)
		os.Exit(1)
	}
	if err := run(*rulesPath, *anmlPath, *mnrlPath, *inputPath, *parallel, *ranks, *compress, *quiet, *maxPrint, engine, mode, *scored); err != nil {
		fmt.Fprintln(os.Stderr, "paprun:", err)
		os.Exit(1)
	}
}

func run(rulesPath, anmlPath, mnrlPath, inputPath string, parallel bool, ranks int, compress, quiet bool, maxPrint int, engine pap.EngineKind, mode pap.ExecMode, scored bool) error {
	var a *pap.Automaton
	sources := 0
	for _, p := range []string{rulesPath, anmlPath, mnrlPath} {
		if p != "" {
			sources++
		}
	}
	if sources > 1 {
		return fmt.Errorf("-rules, -anml and -mnrl are mutually exclusive")
	}
	switch {
	case rulesPath != "":
		patterns, err := readRules(rulesPath)
		if err != nil {
			return err
		}
		a, err = pap.Compile(rulesPath, patterns)
		if err != nil {
			return err
		}
	case anmlPath != "":
		var err error
		a, err = loadANML(anmlPath)
		if err != nil {
			return err
		}
	case mnrlPath != "":
		var err error
		a, err = loadMNRL(mnrlPath)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("-rules, -anml or -mnrl is required")
	}
	if compress {
		a = a.Compress()
	}
	st := a.Stats()
	fmt.Printf("automaton: %d states, %d transitions, %d components, %d reporting\n",
		st.States, st.Transitions, st.ConnectedComponents, st.ReportingStates)

	input, err := readInput(inputPath)
	if err != nil {
		return err
	}
	fmt.Printf("input: %d bytes\n", len(input))

	scored = scored || a.Scored()
	var matches []pap.Match
	if parallel {
		cfg := pap.DefaultConfig(ranks)
		cfg.Engine = engine
		cfg.Mode = mode
		cfg.Scoring = scored
		rep, err := a.MatchParallel(input, cfg)
		if err != nil {
			return err
		}
		matches = rep.Matches
		s := rep.Stats
		fmt.Printf("parallel (%s mode): %d segments, cut symbol %q (range %d)\n",
			s.Mode, s.Segments, s.CutSymbol, s.CutRange)
		fmt.Printf("modelled AP time: %.1f µs sequential -> %.1f µs parallel (%.2fx of ideal %.0fx)\n",
			s.BaselineNS/1e3, s.ParallelNS/1e3, s.Speedup, s.IdealSpeedup)
		fmt.Printf("flows: %.1f avg active; switching overhead %.2f%%; report inflation %.2fx\n",
			s.AvgActiveFlows, s.SwitchOverheadPct, s.FalseReportRatio)
		if s.SFAMappings > 0 {
			fmt.Printf("sfa: %d mapping classes, %d compose ops, %d fingerprint collisions\n",
				s.SFAMappings, s.SFAComposeOps, s.FingerprintCollisions)
		}
	} else if scored {
		// A scored sequential run through the stream API: scores carry in
		// the engine, so one whole-input Write equals chunked writes.
		st := a.NewStream(pap.WithEngine(engine), pap.WithScoring())
		matches = append(matches, st.Write(input)...)
	} else {
		matches = a.MatchWith(input, engine)
	}

	fmt.Printf("%d matches\n", len(matches))
	if scored {
		best, ok := bestScore(matches)
		if ok {
			fmt.Printf("best score: %d\n", best)
		}
	}
	if quiet {
		return nil
	}
	for i, m := range matches {
		if i >= maxPrint {
			fmt.Printf("... and %d more\n", len(matches)-maxPrint)
			break
		}
		if scored {
			fmt.Printf("  rule %d at offset %d score %d\n", m.Code, m.Offset, m.Score)
		} else {
			fmt.Printf("  rule %d at offset %d\n", m.Code, m.Offset)
		}
	}
	return nil
}

// bestScore returns the maximum match score; ok is false with no matches
// (scores may be negative, so 0 is not a sentinel).
func bestScore(ms []pap.Match) (best int64, ok bool) {
	for _, m := range ms {
		if !ok || m.Score > best {
			best, ok = m.Score, true
		}
	}
	return best, ok
}

func loadANML(path string) (*pap.Automaton, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return pap.DecodeANML(f)
}

func loadMNRL(path string) (*pap.Automaton, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return pap.DecodeMNRL(f)
}

func readRules(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var patterns []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		patterns = append(patterns, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		return nil, fmt.Errorf("%s: no patterns", path)
	}
	return patterns, nil
}

func readInput(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}
