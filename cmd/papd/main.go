// Command papd runs the Parallel Automata Processor matching daemon: an
// HTTP service hosting compiled automata, matching payloads sequentially
// or with the paper's segment-parallel algorithm, and feeding persistent
// streaming sessions. See docs/SERVER.md for the API.
//
// Usage:
//
//	papd [-addr :8461] [-workers N] [-queue N] [-timeout 30s]
//	     [-max-match-duration 0] [-stream-idle 10m] [-max-body 16777216]
//	     [-engine auto] [-mode flows] [-preload name=patterns.txt]...
//	     [-peers host1:8461,host2:8461] [-advertise host0:8461]
//	     [-batch-window 0] [-batch-max 64] [-batch-max-bytes 4096]
//	     [-tenant-rps 0] [-tenant-burst 0]
//
// -peers enables the shard router: each ruleset name is owned by one
// replica on a consistent-hash ring over advertise+peers, and requests
// for rulesets owned elsewhere are forwarded there (with local fallback
// when the owner is down). -batch-window enables request coalescing for
// small match payloads; -tenant-rps enforces per-tenant (X-API-Key)
// token-bucket quotas with 429 + Retry-After beyond the budget.
//
// Each -preload flag registers a regex ruleset at startup from a file of
// one pattern per line (blank lines and #-comment lines skipped);
// -engine sets the default execution backend the preloaded rulesets are
// served with (see pap.EngineKindNames: auto, sparse, bit, lazydfa,
// meta — requests may override per call).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pap"
	"pap/internal/server"
)

type preloadFlag struct {
	specs []string
}

func (p *preloadFlag) String() string { return strings.Join(p.specs, ",") }

func (p *preloadFlag) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want name=file, got %q", v)
	}
	p.specs = append(p.specs, v)
	return nil
}

// readPatterns parses a pattern file: one pattern per line, blank lines
// and lines starting with # skipped.
func readPatterns(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out, sc.Err()
}

// splitPeers parses the -peers flag: a comma-separated address list,
// tolerating whitespace and empty elements.
func splitPeers(list string) []string {
	var peers []string
	for _, p := range strings.Split(list, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	return peers
}

// preload registers every name=file spec into the server's registry,
// serving them with the given default engine.
func preload(s *server.Server, specs []string, engine string) error {
	for _, spec := range specs {
		name, file, _ := strings.Cut(spec, "=")
		patterns, err := readPatterns(file)
		if err != nil {
			return fmt.Errorf("preload %s: %w", spec, err)
		}
		e, err := s.Registry().Register(name, "regex", patterns, 0, engine)
		if err != nil {
			return fmt.Errorf("preload %s: %w", spec, err)
		}
		st := e.Automaton.Stats()
		log.Printf("preloaded %q: %d patterns, %d states", name, len(patterns), st.States)
	}
	return nil
}

func main() {
	var (
		addr       = flag.String("addr", ":8461", "listen address")
		workers    = flag.Int("workers", 0, "matching workers (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 0, "queued matches beyond workers before 429 (0 = 4x workers)")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-request match timeout")
		maxMatch   = flag.Duration("max-match-duration", 0, "hard cap on match execution time, overriding longer per-request timeout_ms values (0 = no cap beyond -timeout)")
		streamIdle = flag.Duration("stream-idle", 10*time.Minute, "expire streaming sessions idle this long (<0 disables)")
		maxBody    = flag.Int64("max-body", 16<<20, "maximum request payload bytes")
		drainWait  = flag.Duration("drain", 15*time.Second, "shutdown drain deadline")
		engine     = flag.String("engine", "auto",
			"default execution backend for preloaded rulesets: "+
				strings.Join(pap.EngineKindNames(), ", "))
		serialSegs = flag.Bool("serial-segments", false, "default parallel-mode matches to the serial cross-segment scheduler")
		execMode   = flag.String("mode", "flows",
			"default parallel execution mode (requests may override with mode=sfa): "+
				strings.Join(pap.ExecModeNames(), ", "))
		peerList    = flag.String("peers", "", "comma-separated advertised addresses of the other replicas (enables the shard router)")
		advertise   = flag.String("advertise", "", "this replica's address as peers reach it (default -addr)")
		peerFails   = flag.Int("peer-fail-threshold", 3, "consecutive forward failures before a peer is ejected from routing")
		peerCool    = flag.Duration("peer-cooldown", 10*time.Second, "how long an ejected peer stays out of routing")
		batchWindow = flag.Duration("batch-window", 0, "coalesce small match requests arriving within this window into shared worker tasks (0 disables)")
		batchMax    = flag.Int("batch-max", 64, "flush a coalesced batch early at this many requests")
		batchBytes  = flag.Int("batch-max-bytes", 4096, "largest payload eligible for coalescing")
		tenantRPS   = flag.Float64("tenant-rps", 0, "per-tenant (X-API-Key) requests/second on the worker pool, 429 beyond (0 disables)")
		tenantBurst = flag.Float64("tenant-burst", 0, "per-tenant burst allowance (0 = max(tenant-rps, 1))")
		preloads    preloadFlag
	)
	flag.Var(&preloads, "preload", "register a ruleset at startup: name=patterns.txt (repeatable)")
	flag.Parse()

	mode, err := pap.ParseExecMode(*execMode)
	if err != nil {
		log.Fatalf("papd: %v", err)
	}
	s := server.New(server.Config{
		Addr:              *addr,
		Workers:           *workers,
		QueueDepth:        *queue,
		MatchTimeout:      *timeout,
		MaxMatchDuration:  *maxMatch,
		StreamIdleTimeout: *streamIdle,
		MaxBodyBytes:      *maxBody,
		SerialSegments:    *serialSegs,
		DefaultExecMode:   mode,
		Peers:             splitPeers(*peerList),
		AdvertiseAddr:     *advertise,
		PeerFailThreshold: *peerFails,
		PeerCooldown:      *peerCool,
		BatchWindow:       *batchWindow,
		BatchMaxSize:      *batchMax,
		BatchMaxBytes:     *batchBytes,
		TenantRPS:         *tenantRPS,
		TenantBurst:       *tenantBurst,
	})
	if err := preload(s, preloads.specs, *engine); err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- s.ListenAndServe() }()
	log.Printf("papd listening on %s", *addr)

	select {
	case err := <-errc:
		if err != nil {
			log.Fatal(err)
		}
	case <-ctx.Done():
		log.Printf("signal received, draining for up to %s", *drainWait)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := s.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}
	log.Print("papd stopped")
}
