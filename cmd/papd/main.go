// Command papd runs the Parallel Automata Processor matching daemon: an
// HTTP service hosting compiled automata, matching payloads sequentially
// or with the paper's segment-parallel algorithm, and feeding persistent
// streaming sessions. See docs/SERVER.md for the API.
//
// Usage:
//
//	papd [-addr :8461] [-workers N] [-queue N] [-timeout 30s]
//	     [-max-match-duration 0] [-stream-idle 10m] [-max-body 16777216]
//	     [-engine auto] [-mode flows] [-preload name=patterns.txt]...
//
// Each -preload flag registers a regex ruleset at startup from a file of
// one pattern per line (blank lines and #-comment lines skipped);
// -engine sets the default execution backend the preloaded rulesets are
// served with (see pap.EngineKindNames: auto, sparse, bit, lazydfa,
// meta — requests may override per call).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pap"
	"pap/internal/server"
)

type preloadFlag struct {
	specs []string
}

func (p *preloadFlag) String() string { return strings.Join(p.specs, ",") }

func (p *preloadFlag) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want name=file, got %q", v)
	}
	p.specs = append(p.specs, v)
	return nil
}

// readPatterns parses a pattern file: one pattern per line, blank lines
// and lines starting with # skipped.
func readPatterns(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out, sc.Err()
}

// preload registers every name=file spec into the server's registry,
// serving them with the given default engine.
func preload(s *server.Server, specs []string, engine string) error {
	for _, spec := range specs {
		name, file, _ := strings.Cut(spec, "=")
		patterns, err := readPatterns(file)
		if err != nil {
			return fmt.Errorf("preload %s: %w", spec, err)
		}
		e, err := s.Registry().Register(name, "regex", patterns, 0, engine)
		if err != nil {
			return fmt.Errorf("preload %s: %w", spec, err)
		}
		st := e.Automaton.Stats()
		log.Printf("preloaded %q: %d patterns, %d states", name, len(patterns), st.States)
	}
	return nil
}

func main() {
	var (
		addr       = flag.String("addr", ":8461", "listen address")
		workers    = flag.Int("workers", 0, "matching workers (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 0, "queued matches beyond workers before 429 (0 = 4x workers)")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-request match timeout")
		maxMatch   = flag.Duration("max-match-duration", 0, "hard cap on match execution time, overriding longer per-request timeout_ms values (0 = no cap beyond -timeout)")
		streamIdle = flag.Duration("stream-idle", 10*time.Minute, "expire streaming sessions idle this long (<0 disables)")
		maxBody    = flag.Int64("max-body", 16<<20, "maximum request payload bytes")
		drainWait  = flag.Duration("drain", 15*time.Second, "shutdown drain deadline")
		engine     = flag.String("engine", "auto",
			"default execution backend for preloaded rulesets: "+
				strings.Join(pap.EngineKindNames(), ", "))
		serialSegs = flag.Bool("serial-segments", false, "default parallel-mode matches to the serial cross-segment scheduler")
		execMode   = flag.String("mode", "flows",
			"default parallel execution mode (requests may override with mode=sfa): "+
				strings.Join(pap.ExecModeNames(), ", "))
		preloads preloadFlag
	)
	flag.Var(&preloads, "preload", "register a ruleset at startup: name=patterns.txt (repeatable)")
	flag.Parse()

	mode, err := pap.ParseExecMode(*execMode)
	if err != nil {
		log.Fatalf("papd: %v", err)
	}
	s := server.New(server.Config{
		Addr:              *addr,
		Workers:           *workers,
		QueueDepth:        *queue,
		MatchTimeout:      *timeout,
		MaxMatchDuration:  *maxMatch,
		StreamIdleTimeout: *streamIdle,
		MaxBodyBytes:      *maxBody,
		SerialSegments:    *serialSegs,
		DefaultExecMode:   mode,
	})
	if err := preload(s, preloads.specs, *engine); err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- s.ListenAndServe() }()
	log.Printf("papd listening on %s", *addr)

	select {
	case err := <-errc:
		if err != nil {
			log.Fatal(err)
		}
	case <-ctx.Done():
		log.Printf("signal received, draining for up to %s", *drainWait)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := s.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}
	log.Print("papd stopped")
}
