package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"pap/internal/server"
)

func TestReadPatterns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rules.txt")
	content := "# intrusion rules\nattack\n\nGET /admin\n  spaced  \n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := readPatterns(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"attack", "GET /admin", "spaced"}
	if len(got) != len(want) {
		t.Fatalf("patterns = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pattern %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestPreloadRegisters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rules.txt")
	if err := os.WriteFile(path, []byte("needle\nha[ys]+tack\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := server.New(server.Config{})
	defer s.Shutdown(context.Background())
	if err := preload(s, []string{"ids=" + path}, "auto"); err != nil {
		t.Fatal(err)
	}
	e, err := s.Registry().Get("ids")
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Automaton.Match([]byte("a needle in a haystack")); len(got) != 2 {
		t.Fatalf("preloaded automaton found %d matches, want 2", len(got))
	}
}

func TestPreloadErrors(t *testing.T) {
	s := server.New(server.Config{})
	defer s.Shutdown(context.Background())
	if err := preload(s, []string{"ids=/nonexistent/file"}, "auto"); err == nil {
		t.Fatal("missing file must error")
	}
	var pf preloadFlag
	if err := pf.Set("no-equals-sign"); err == nil {
		t.Fatal("malformed -preload must error")
	}
	if err := pf.Set("a=b"); err != nil || pf.String() != "a=b" {
		t.Fatalf("Set: %v, String: %q", err, pf.String())
	}
}

func TestSplitPeers(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"", 0},
		{"a:1", 1},
		{"a:1,b:2", 2},
		{" a:1 , , b:2 ,", 2},
	}
	for _, c := range cases {
		if got := splitPeers(c.in); len(got) != c.want {
			t.Errorf("splitPeers(%q) = %q, want %d peers", c.in, got, c.want)
		}
	}
}
