package pap

import (
	"math/rand"
	"testing"
)

// TestStreamChunkInvariance is the chunk-boundary property test: for every
// backend, feeding an input through Write in randomized splits — including
// empty and 1-byte chunks — must produce exactly the matches of a single
// Write of the whole input, with identical per-(offset, state) dedup
// behaviour. Engines rotate across trials so the adaptive backend migrates
// representations mid-stream.
func TestStreamChunkInvariance(t *testing.T) {
	a, err := Compile("prop", []string{"abc", "bc+d", "x.z", "a{2,4}b"})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	input := makeInput(1<<13, 99, "abc", "bccd", "xyz", "aaab")

	for _, kind := range []EngineKind{EngineSparse, EngineBit, EngineAuto} {
		whole := a.NewStream(WithEngine(kind))
		want := append([]Match(nil), whole.Write(input)...)

		for trial := 0; trial < 8; trial++ {
			s := a.NewStream(WithEngine(kind))
			var got []Match
			pos := 0
			for pos < len(input) {
				var n int
				switch rng.Intn(4) {
				case 0:
					n = 0 // empty writes must be no-ops
				case 1:
					n = 1
				default:
					n = rng.Intn(900)
				}
				if pos+n > len(input) {
					n = len(input) - pos
				}
				got = append(got, s.Write(input[pos:pos+n])...)
				pos += n
			}
			if s.Offset() != int64(len(input)) {
				t.Fatalf("%v trial %d: offset %d, want %d", kind, trial, s.Offset(), len(input))
			}
			if len(got) != len(want) {
				t.Fatalf("%v trial %d: %d matches, want %d", kind, trial, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v trial %d: match %d = %+v, want %+v", kind, trial, i, got[i], want[i])
				}
			}
		}
	}
}

// TestStreamEdgeInputs: streams over empty, 1-byte and pathological chunk
// sequences across backends.
func TestStreamEdgeInputs(t *testing.T) {
	a, err := Compile("edge", []string{"ab"})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []EngineKind{EngineSparse, EngineBit, EngineAuto} {
		s := a.NewStream(WithEngine(kind))
		if got := s.Write(nil); len(got) != 0 {
			t.Fatalf("%v: Write(nil) = %+v", kind, got)
		}
		if got := s.Write([]byte{}); len(got) != 0 || s.Offset() != 0 {
			t.Fatalf("%v: empty write moved the stream", kind)
		}
		// One byte at a time, straddling the match.
		if got := s.Write([]byte("a")); len(got) != 0 {
			t.Fatalf("%v: premature match %+v", kind, got)
		}
		got := s.Write([]byte("b"))
		if len(got) != 1 || got[0].Offset != 1 || got[0].Code != 0 {
			t.Fatalf("%v: match = %+v, want one at offset 1", kind, got)
		}
	}
}

// TestStreamAllASG: streaming an automaton with only all-input states (the
// Hamming lattice's centre row shape) reports at every matching offset on
// every backend.
func TestStreamAllASG(t *testing.T) {
	a, err := Hamming("asg", []string{"aa"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := a.Match([]byte("aaaa"))
	if len(want) == 0 {
		t.Fatal("no matches from Hamming automaton")
	}
	for _, kind := range []EngineKind{EngineSparse, EngineBit, EngineAuto} {
		s := a.NewStream(WithEngine(kind))
		var got []Match
		for _, c := range []byte("aaaa") {
			got = append(got, s.Write([]byte{c})...)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: %d matches, want %d", kind, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: match %d = %+v, want %+v", kind, i, got[i], want[i])
			}
		}
	}
}
