// Package pap is a software reproduction of the Parallel Automata
// Processor (Subramaniyan & Das, ISCA 2017): enumerative parallelization of
// NFA pattern matching as performed by the Micron Automata Processor.
//
// The package compiles rulesets (a practical regex subset, or direct
// Hamming/Levenshtein constructions) into homogeneous NFAs, matches them
// sequentially, and — the point of the paper — matches them in parallel by
// partitioning the input into segments executed concurrently on modelled
// AP half-cores, enumerating possible start states as AP flows, and
// composing exact results. Every parallel run is functionally exact (the
// composed matches equal sequential matching) and additionally reports the
// modelled AP timing: speedup over the sequential AP baseline, flow
// statistics, and overheads.
//
// Quick start:
//
//	a, err := pap.Compile("rules", []string{"GET /admin", `\d{3}-\d{4}`})
//	matches := a.Match(input)                       // sequential
//	rep, err := a.MatchParallel(input, pap.DefaultConfig(4))
//	fmt.Println(rep.Stats.Speedup)                  // modelled AP speedup
//
// The internal packages implement the full system: internal/nfa (automata
// model and analyses), internal/regex (Glushkov compiler), internal/engine
// (execution), internal/ap (D480 board model), internal/core (the PAP
// parallelization), internal/workloads and internal/experiments (the
// paper's evaluation).
//
// # Concurrency
//
// An Automaton is immutable after compilation: Match, MatchParallel,
// NewStream, Stats, RangeOf and the encoders may all be called
// concurrently from any number of goroutines sharing one compiled
// Automaton (compile once, share everywhere — the lazily computed
// structural analyses are internally synchronized). A Stream, by
// contrast, is a stateful single-flow matcher and is NOT safe for
// concurrent use: create one Stream per goroutine, or serialize access
// externally.
package pap

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"pap/internal/anml"
	"pap/internal/ap"
	"pap/internal/core"
	"pap/internal/engine"
	"pap/internal/mnrl"
	"pap/internal/nfa"
	"pap/internal/regex"
	"pap/internal/workloads"
)

// EngineKind selects the execution backend used to run an automaton: how
// the enabled-state frontier is represented and advanced each symbol
// cycle. All backends are observably equivalent — same matches, same
// statistics — and differ only in speed across frontier-density regimes.
// See docs/ENGINES.md.
type EngineKind int

const (
	// EngineAuto (the default) starts on the sparse frontier-list engine
	// and adaptively switches to the dense bit-vector engine when the
	// active-state density crosses a threshold, with hysteresis both ways.
	EngineAuto EngineKind = iota
	// EngineSparse forces the VASim-style frontier-list engine: cost
	// proportional to active states; fastest on quiet inputs.
	EngineSparse
	// EngineBit forces the AP-faithful dense bit-vector engine: cost
	// proportional to the automaton size; fastest on dense frontiers.
	EngineBit
	// EngineLazyDFA forces the lazy-DFA engine: recurring frontiers are
	// determinized once into a bounded fingerprint-keyed cache and then
	// replayed as single cached-edge lookups, falling back to the sparse
	// engine on cache blowup.
	EngineLazyDFA
	// EngineMeta selects the regime-matched meta stack: literal/class
	// prefiltering skips quiet (dead-frontier) input at scan speed, the
	// lazy DFA serves recurring frontiers from its cache, and the
	// adaptive sparse/bit selector takes over on cache blowup.
	EngineMeta
)

// EngineKindNames returns the parseable names of every backend, in
// EngineKind order ("auto", "sparse", "bit", "lazydfa", "meta").
func EngineKindNames() []string { return engine.KindNames() }

// String returns the parseable engine name (see EngineKindNames).
func (k EngineKind) String() string { return k.toKind().String() }

// ParseEngineKind parses an engine name: "auto" (or "adaptive", or the
// empty string), "sparse", "bit" (or "dense"), "lazydfa" (or
// "lazy-dfa"), "meta". Unknown names return an error listing the valid
// kinds.
func ParseEngineKind(s string) (EngineKind, error) {
	kind, err := engine.ParseKind(s)
	if err != nil {
		return EngineAuto, fmt.Errorf("pap: %v", err)
	}
	switch kind {
	case engine.SparseKind:
		return EngineSparse, nil
	case engine.BitKind:
		return EngineBit, nil
	case engine.LazyDFAKind:
		return EngineLazyDFA, nil
	case engine.MetaKind:
		return EngineMeta, nil
	default:
		return EngineAuto, nil
	}
}

func (k EngineKind) toKind() engine.Kind {
	switch k {
	case EngineSparse:
		return engine.SparseKind
	case EngineBit:
		return engine.BitKind
	case EngineLazyDFA:
		return engine.LazyDFAKind
	case EngineMeta:
		return engine.MetaKind
	default:
		return engine.Auto
	}
}

// ExecMode selects the parallel execution strategy of MatchParallel: how
// the unknown entry state of each input segment is resolved. Both modes
// produce exactly the sequential match set (verified on every run); they
// differ in the work the modelled machine does.
type ExecMode int

const (
	// ExecFlows (the default) is the paper's start-state enumeration: one
	// AP flow per enumeration unit, false flows killed by deactivation,
	// convergence, and Flow Invalidation Vectors from the predecessor
	// segment.
	ExecFlows ExecMode = iota
	// ExecSFA runs one flow per frontier-equivalence class and composes
	// the per-segment entry→exit state mappings at segment boundaries
	// (function composition in the style of simultaneous finite automata),
	// with Rabin-style fingerprints making the equivalence checks hash
	// compares. No Flow Invalidation Vectors are sent.
	ExecSFA
)

// ExecModeNames returns the parseable names of every execution mode, in
// ExecMode order ("flows", "sfa").
func ExecModeNames() []string { return core.ModeNames() }

// String returns the parseable mode name (see ExecModeNames).
func (m ExecMode) String() string { return m.toMode().String() }

// ParseExecMode parses an execution mode name: "flows" (or the empty
// string) and "sfa". Unknown names return an error listing the valid
// modes.
func ParseExecMode(s string) (ExecMode, error) {
	if s == "" {
		return ExecFlows, nil
	}
	m, err := core.ParseMode(s)
	if err != nil {
		return ExecFlows, fmt.Errorf("pap: %v", err)
	}
	switch m {
	case core.ModeSFA:
		return ExecSFA, nil
	default:
		return ExecFlows, nil
	}
}

func (m ExecMode) toMode() core.Mode {
	switch m {
	case ExecSFA:
		return core.ModeSFA
	default:
		return core.ModeFlows
	}
}

// Rule pairs a pattern with the code its matches report.
type Rule struct {
	Pattern string
	Code    int32
}

// Match is one pattern occurrence: rule Code matched ending at byte Offset.
// Score is the best path score of the match under max-plus scoring (the
// maximum, over all paths reaching the reporting state at this offset, of
// the sum of edge scores; see Builder.ConnectScored). It is always 0 on
// automata without scored transitions.
type Match struct {
	Code   int32
	Offset int64
	Score  int64
}

// Automaton is an immutable compiled ruleset.
type Automaton struct {
	n *nfa.NFA

	// tabOnce/tab lazily build the per-symbol transition tables shared by
	// every dense or adaptive engine run over this automaton (safe for
	// concurrent use; sparse-only runs never pay for them).
	tabOnce sync.Once
	tab     *engine.Tables
}

func (a *Automaton) tables() *engine.Tables {
	a.tabOnce.Do(func() { a.tab = engine.NewTables(a.n) })
	return a.tab
}

// Compile builds an automaton from patterns; rule i reports code i.
// See internal/regex for the supported syntax (a practical PCRE subset;
// unanchored patterns match anywhere, as on the AP).
func Compile(name string, patterns []string) (*Automaton, error) {
	n, err := regex.CompilePatterns(name, patterns)
	if err != nil {
		return nil, err
	}
	return &Automaton{n: n}, nil
}

// CompileRules builds an automaton with explicit report codes.
func CompileRules(name string, rules []Rule) (*Automaton, error) {
	rs := make([]regex.Rule, len(rules))
	for i, r := range rules {
		rs[i] = regex.Rule{Pattern: r.Pattern, Code: r.Code}
	}
	n, err := regex.CompileSet(name, rs)
	if err != nil {
		return nil, err
	}
	return &Automaton{n: n}, nil
}

// Hamming builds an automaton matching any substring within Hamming
// distance d of any of the patterns; pattern i reports code i.
func Hamming(name string, patterns []string, d int) (*Automaton, error) {
	if d < 0 {
		return nil, errors.New("pap: negative distance")
	}
	b := nfa.NewBuilder(name)
	for i, p := range patterns {
		if len(p) == 0 {
			return nil, fmt.Errorf("pap: empty pattern %d", i)
		}
		workloads.BuildHammingLattice(b, []byte(p), d, int32(i))
	}
	n, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Automaton{n: n}, nil
}

// Levenshtein builds an automaton matching any substring within edit
// distance d (insertions, deletions, substitutions) of any of the
// patterns; pattern i reports code i.
func Levenshtein(name string, patterns []string, d int) (*Automaton, error) {
	if d < 0 {
		return nil, errors.New("pap: negative distance")
	}
	b := nfa.NewBuilder(name)
	for i, p := range patterns {
		if len(p) <= d {
			return nil, fmt.Errorf("pap: pattern %d shorter than distance %d", i, d)
		}
		if err := workloads.BuildLevenshtein(b, []byte(p), d, int32(i)); err != nil {
			return nil, err
		}
	}
	n, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Automaton{n: n}, nil
}

// DecodeANML reads an automaton from ANML XML, the Micron AP SDK's format
// (the one ANMLZoo distributes benchmarks in). Only pure STE networks are
// supported; counter and boolean elements are rejected.
func DecodeANML(r io.Reader) (*Automaton, error) {
	n, err := anml.Decode(r)
	if err != nil {
		return nil, err
	}
	return &Automaton{n: n}, nil
}

// Name returns the name the automaton was compiled under.
func (a *Automaton) Name() string { return a.n.Name() }

// EncodeANML writes the automaton as ANML XML.
func (a *Automaton) EncodeANML(w io.Writer) error { return anml.Encode(w, a.n) }

// DecodeMNRL reads an automaton from MNRL JSON, the MNCaRT ecosystem's
// interchange format. Only hState networks are supported.
func DecodeMNRL(r io.Reader) (*Automaton, error) {
	n, err := mnrl.Decode(r)
	if err != nil {
		return nil, err
	}
	return &Automaton{n: n}, nil
}

// EncodeMNRL writes the automaton as MNRL JSON.
func (a *Automaton) EncodeMNRL(w io.Writer) error { return mnrl.Encode(w, a.n) }

// Compress returns an equivalent automaton with common prefixes merged
// (Becchi-style compression, applied by the paper before execution).
func (a *Automaton) Compress() *Automaton {
	return &Automaton{n: nfa.MergeCommonPrefixes(a.n)}
}

// Union returns an automaton matching everything a or b matches; the two
// rulesets stay in disjoint components. Report codes are preserved as-is:
// offset them beforehand if the rulesets number their rules independently.
func (a *Automaton) Union(b *Automaton) *Automaton {
	return &Automaton{n: nfa.Union(a.n, b.n)}
}

// Stats summarises the automaton's structure.
type Stats struct {
	States              int
	Transitions         int
	ConnectedComponents int
	ReportingStates     int
	AlwaysActiveStates  int
}

// Stats returns structural statistics.
func (a *Automaton) Stats() Stats {
	s := a.n.ComputeStats()
	return Stats{
		States:              s.States,
		Transitions:         s.Edges,
		ConnectedComponents: s.CCs,
		ReportingStates:     s.Reporting,
		AlwaysActiveStates:  s.AllInput,
	}
}

// Scored reports whether any transition of the automaton carries a score
// (built via Builder.ConnectScored). Scored automata track Match.Score on
// every sequential and parallel match.
func (a *Automaton) Scored() bool { return a.n.Scored() }

// RangeOf returns the size of symbol sym's range: the number of states
// reachable on sym from anywhere in the automaton (§3.1 of the paper).
// Small-range symbols make good input partition points.
func (a *Automaton) RangeOf(sym byte) int { return a.n.RangeSize(sym) }

// WriteDOT renders the automaton in Graphviz DOT form.
func (a *Automaton) WriteDOT(w io.Writer) error { return a.n.WriteDOT(w) }

// Match runs the automaton sequentially over input and returns all
// matches in order. Matches at the same offset from different reporting
// states are deduplicated per (offset, state), exactly as AP report events
// are. It is equivalent to MatchWith(input, EngineAuto).
func (a *Automaton) Match(input []byte) []Match {
	return a.MatchWith(input, EngineAuto)
}

// MatchWith is Match on an explicitly selected execution backend. All
// backends return identical matches; see EngineKind for the trade-offs.
// Match-only runs enable the full prefilter (including the report-exact
// literal scanner) under EngineMeta, so quiet inputs are scanned rather
// than stepped.
func (a *Automaton) MatchWith(input []byte, k EngineKind) []Match {
	ms, _ := a.matchInfo(input, k)
	return ms
}

// EngineInfo reports backend observability counters from one match or
// stream: how much input the prefilter skipped and how the lazy-DFA
// state cache behaved. All fields are 0 for backends without the
// corresponding machinery.
type EngineInfo struct {
	// PrefilterSkippedBytes counts input bytes never stepped because the
	// prefilter proved them inert on a dead frontier.
	PrefilterSkippedBytes int64
	// BaselineSkippedBytes counts input bytes the engine's exact
	// baseline-skip fast path scanned past (start-class scan while only
	// always-active states were live). Fully exact: reports, frontier
	// statistics, and modelled cycles are identical to stepping.
	BaselineSkippedBytes int64
	// CacheHits/CacheMisses/CacheEvictions are lazy-DFA state-cache
	// counters (EngineLazyDFA and EngineMeta).
	CacheHits, CacheMisses, CacheEvictions int64
	// CacheFellBack reports that the lazy DFA abandoned its cache and
	// fell back permanently to its inner engine.
	CacheFellBack bool
}

func infoOf(res engine.Result) EngineInfo {
	return EngineInfo{
		PrefilterSkippedBytes: res.PrefilterSkipped,
		BaselineSkippedBytes:  res.BaselineSkippedBytes,
		CacheHits:             res.Cache.Hits,
		CacheMisses:           res.Cache.Misses,
		CacheEvictions:        res.Cache.Evictions,
		CacheFellBack:         res.Cache.FellBack,
	}
}

// MatchWithInfo is MatchWith, additionally returning the backend's
// observability counters (papd surfaces them as metrics).
func (a *Automaton) MatchWithInfo(input []byte, k EngineKind) ([]Match, EngineInfo) {
	return a.matchInfo(input, k)
}

func (a *Automaton) matchInfo(input []byte, k EngineKind) ([]Match, EngineInfo) {
	// Scored automata track scores on every sequential match (scoring is a
	// property of the automaton, not a per-call option); the run layer
	// drops the literal prefilter when scoring (see engine.RunOpts.Scored).
	res := engine.RunEngineOpts(a.n, input, k.toKind(), a.tables(),
		engine.RunOpts{LiteralPrefilter: true, Scored: a.n.Scored()})
	return toMatches(engine.DedupeReports(res.Reports)), infoOf(res)
}

// MatchContext is Match under a context: a cancelled or expired ctx stops
// the run promptly (the context is polled at coarse symbol intervals, off
// the per-symbol hot path) and returns ctx's error wrapped in *AbortError
// with the input offset reached. It is equivalent to
// MatchWithContext(ctx, input, EngineAuto).
func (a *Automaton) MatchContext(ctx context.Context, input []byte) ([]Match, error) {
	return a.MatchWithContext(ctx, input, EngineAuto)
}

// MatchWithContext is MatchContext on an explicit execution backend.
func (a *Automaton) MatchWithContext(ctx context.Context, input []byte, k EngineKind) ([]Match, error) {
	ms, _, err := a.MatchWithInfoContext(ctx, input, k)
	return ms, err
}

// MatchWithInfoContext is MatchWithContext, additionally returning the
// backend's observability counters (valid even on abort, covering the
// processed prefix).
func (a *Automaton) MatchWithInfoContext(ctx context.Context, input []byte, k EngineKind) ([]Match, EngineInfo, error) {
	res, pos, err := engine.RunEngineOptsContext(ctx, a.n, input, k.toKind(), a.tables(), 0,
		engine.RunOpts{LiteralPrefilter: true, Scored: a.n.Scored()})
	if err != nil {
		return nil, infoOf(res), &AbortError{
			Cause:    err,
			Progress: []SegmentProgress{{Index: 0, Start: 0, End: len(input), Pos: pos}},
		}
	}
	return toMatches(engine.DedupeReports(res.Reports)), infoOf(res), nil
}

func toMatches(reports []engine.Report) []Match {
	out := make([]Match, len(reports))
	for i, r := range reports {
		out[i] = Match{Code: r.Code, Offset: r.Offset, Score: r.Score}
	}
	return out
}

// Config controls parallel matching. Zero values select defaults; start
// from DefaultConfig.
type Config struct {
	// Ranks is the modelled AP board size (1..4).
	Ranks int
	// TDMQuantum is the number of symbols each flow processes between
	// context switches (default 64).
	TDMQuantum int
	// ConvergenceEvery is the number of TDM steps between convergence
	// checks (default 10).
	ConvergenceEvery int
	// SwitchCycles is the modelled flow-switch cost (default 3).
	SwitchCycles int
	// MaxSegments caps parallelism below the board limit (0 = board limit).
	MaxSegments int
	// HalfCores forces the automaton's placement footprint (0 = derive
	// from the state count).
	HalfCores int
	// CutSymbol forces the input partition symbol (-1 or 0 with
	// ForceCutSymbol unset = profile the input).
	CutSymbol      int
	ForceCutSymbol bool
	// Workers bounds simulator goroutines (0 = GOMAXPROCS); it never
	// affects modelled AP cycles.
	Workers int
	// SerialSegments disables the cross-segment parallel scheduler and
	// simulates segments one after another. Modelled AP cycles, matches and
	// stats are bit-identical either way (the conformance suite asserts
	// this); serial mode only trades simulator wall-clock speed for
	// single-threaded-friendly execution.
	SerialSegments bool
	// Speculate replaces start-state enumeration with speculative
	// execution (idle-boundary prediction + serial re-execution of
	// mispredicted segments). Exactness is preserved; speedup collapses on
	// streams with dense match activity.
	Speculate bool
	// Engine selects the execution backend for every simulated flow
	// (default EngineAuto). It changes simulator wall-clock time only,
	// never matches or modelled AP cycles.
	Engine EngineKind
	// Mode selects the parallel execution strategy (default ExecFlows,
	// the paper's enumeration; ExecSFA composes per-segment state
	// mappings instead). Matches are identical either way; modelled
	// cycles and flow statistics differ. Incompatible with Speculate.
	Mode ExecMode
	// Scoring forces per-transition score tracking during parallel
	// matching even when the automaton carries no scored transitions
	// (every score is then 0 — useful for ablation and conformance
	// testing). Automata built with scored transitions
	// (Builder.ConnectScored) always track scores, with or without this
	// flag. Scoring disables the score-blind convergence/absorption flow
	// merges, so flow statistics and modelled cycles differ from an
	// unscored run; matches and their exactness guarantee are unchanged.
	Scoring bool
}

// DefaultConfig returns the paper's operating point for a board size.
func DefaultConfig(ranks int) Config {
	return Config{Ranks: ranks}
}

func (c Config) toCore() core.Config {
	ranks := c.Ranks
	if ranks == 0 {
		ranks = 1
	}
	cfg := core.DefaultConfig(ranks)
	if c.TDMQuantum > 0 {
		cfg.TDMQuantum = c.TDMQuantum
	}
	if c.ConvergenceEvery > 0 {
		cfg.ConvergenceEvery = c.ConvergenceEvery
	}
	if c.SwitchCycles > 0 {
		cfg.SwitchCycles = c.SwitchCycles
	}
	if c.MaxSegments > 0 {
		cfg.MaxSegments = c.MaxSegments
	}
	if c.HalfCores > 0 {
		cfg.HalfCoresOverride = c.HalfCores
	}
	if c.ForceCutSymbol {
		cfg.CutSymbol = c.CutSymbol
	}
	if c.Workers > 0 {
		cfg.Workers = c.Workers
	}
	cfg.SegmentParallel = !c.SerialSegments
	cfg.Speculate = c.Speculate
	cfg.Engine = c.Engine.toKind()
	cfg.Mode = c.Mode.toMode()
	cfg.Scored = c.Scoring
	return cfg
}

// RunStats reports the modelled AP execution of one parallel match.
type RunStats struct {
	// Segments is the number of input segments processed in parallel.
	Segments int
	// Speedup is modelled-baseline cycles / modelled-PAP cycles; Ideal is
	// the segment count.
	Speedup, IdealSpeedup float64
	// BaselineNS and ParallelNS are modelled wall times at 7.5 ns/cycle.
	BaselineNS, ParallelNS float64
	// CutSymbol is the chosen partition symbol and CutRange its range.
	CutSymbol byte
	CutRange  int
	// AvgActiveFlows is the time-averaged enumeration flow count.
	AvgActiveFlows float64
	// SwitchOverheadPct is flow-switching cost as % of AP busy cycles.
	SwitchOverheadPct float64
	// FalseReportRatio is emitted report events / true events (≥ 1).
	FalseReportRatio float64
	// EngineSwitches counts sparse⇄dense representation switches made by
	// adaptive engines across all flows (0 for fixed backends).
	EngineSwitches int64
	// PrefilterSkippedBytes counts input bytes the simulator's prefilter
	// proved inert and never stepped, across all flows and the golden
	// boundary run. Pure simulator observability: skipped symbols are
	// still charged their modelled AP cycles.
	PrefilterSkippedBytes int64
	// BaselineSkippedBytes counts input bytes covered by the exact
	// baseline-skip fast path (start-class scan over regions where only
	// always-active states were live), across all flows and the golden
	// boundary run. Exact for every observable and deterministic across
	// schedulers; skipped symbols still charge their modelled AP cycles.
	BaselineSkippedBytes int64
	// Mode is the execution strategy that produced this run ("flows" or
	// "sfa").
	Mode string
	// SFAMappings is the number of entry→exit mapping flows SFA mode ran
	// (one per frontier-equivalence class per segment; 0 in flow mode).
	SFAMappings int64
	// SFAComposeOps counts the elementary operations of the boundary
	// composition pass: exit states merged plus subset probes performed
	// (0 in flow mode).
	SFAComposeOps int64
	// FingerprintCollisions counts hash-equal-but-different state-vector
	// pairs caught by the full compare backing every fingerprint fast
	// path (convergence, deactivation, SFA class grouping and boundary
	// cross-checks). Collisions are handled exactly, never merged.
	FingerprintCollisions int64
	// Scored reports whether per-transition score tracking was enabled for
	// this run (Config.Scoring, or an automaton with scored transitions).
	Scored bool
	// ScoredReports is the number of matches carrying tracked scores:
	// len(Matches) when Scored, 0 otherwise.
	ScoredReports int
	// BestScore is the maximum Match.Score of the run. Meaningful only
	// when Scored and at least one match exists — scores may be negative,
	// so 0 is not a no-matches sentinel.
	BestScore int64
	// Verified confirms the composed matches equalled sequential matching
	// (always true; a false value would be a library bug). Under Scored it
	// additionally confirms every match's score equalled the sequential
	// run's.
	Verified bool
}

// Report is the outcome of MatchParallel.
type Report struct {
	Matches []Match
	Stats   RunStats
}

// SegmentProgress is how far one input segment had advanced when a
// cancelled match stopped. Pos is the next unprocessed input offset:
// Pos == Start means the segment never started, Pos == End means it had
// finished. Sequential matches report one segment covering the input.
type SegmentProgress struct {
	Index  int `json:"index"`
	Start  int `json:"start"`
	End    int `json:"end"`
	Pos    int `json:"pos"`
	Rounds int `json:"rounds"`
}

// AbortError is returned by the *Context match variants when a match
// stops before completion — context cancellation or deadline, or an
// internal failure converted to an error at a segment boundary. It wraps
// the cause (errors.Is(err, context.DeadlineExceeded) sees through it)
// and reports per-segment progress, which papd surfaces as
// 503-with-partial-progress.
type AbortError struct {
	Cause    error
	Progress []SegmentProgress
}

func (e *AbortError) Error() string {
	done, total := 0, 0
	for _, s := range e.Progress {
		done += s.Pos - s.Start
		total += s.End - s.Start
	}
	return fmt.Sprintf("pap: match aborted after %d/%d bytes across %d segments: %v",
		done, total, len(e.Progress), e.Cause)
}

func (e *AbortError) Unwrap() error { return e.Cause }

// MatchParallel matches input using the PAP parallelization and returns
// the exact match set together with modelled AP statistics.
func (a *Automaton) MatchParallel(input []byte, cfg Config) (*Report, error) {
	return a.MatchParallelContext(context.Background(), input, cfg)
}

// MatchParallelContext is MatchParallel under a context: a cancelled or
// expired ctx stops every segment at its next TDM round boundary (the
// per-symbol inner loops stay check-free) and returns ctx's error wrapped
// in *AbortError with per-segment progress. No goroutine or pooled flow
// worker outlives the call.
func (a *Automaton) MatchParallelContext(ctx context.Context, input []byte, cfg Config) (*Report, error) {
	coreCfg := cfg.toCore()
	if a.n.Scored() {
		coreCfg.Scored = true // scored automata always track (see Config.Scoring)
	}
	res, err := core.RunContext(ctx, a.n, input, coreCfg)
	if err != nil {
		var ab *core.Aborted
		if errors.As(err, &ab) {
			out := &AbortError{Cause: ab.Cause}
			for _, s := range ab.Segments {
				out.Progress = append(out.Progress, SegmentProgress{
					Index: s.Index, Start: s.Start, End: s.End, Pos: s.Pos, Rounds: s.Rounds,
				})
			}
			return nil, out
		}
		return nil, err
	}
	if err := res.CheckCorrect(); err != nil {
		return nil, err
	}
	scoredReports := 0
	if coreCfg.Scored {
		scoredReports = len(res.Reports)
	}
	return &Report{
		Matches: toMatches(res.Reports),
		Stats: RunStats{
			Segments:              res.Plan.Segments,
			Speedup:               res.Speedup,
			IdealSpeedup:          res.IdealSpeedup,
			BaselineNS:            res.BaselineCycles.Nanoseconds(),
			ParallelNS:            res.TotalCycles.Nanoseconds(),
			CutSymbol:             res.Plan.CutSym,
			CutRange:              a.n.RangeSize(res.Plan.CutSym),
			AvgActiveFlows:        res.AvgActiveFlows,
			SwitchOverheadPct:     res.SwitchOverheadPct,
			FalseReportRatio:      res.ReportIncrease,
			EngineSwitches:        res.EngineSwitches,
			PrefilterSkippedBytes: res.PrefilterSkipped,
			BaselineSkippedBytes:  res.BaselineSkipped,
			Mode:                  res.Mode.String(),
			SFAMappings:           res.SFAMappings,
			SFAComposeOps:         res.SFAComposeOps,
			FingerprintCollisions: res.FingerprintCollisions,
			Scored:                coreCfg.Scored,
			ScoredReports:         scoredReports,
			BestScore:             res.BestScore,
			Verified:              res.Correct,
		},
	}, nil
}

// SymbolCycleNS is the modelled AP symbol cycle (7.5 ns).
const SymbolCycleNS = ap.SymbolCycleNS
