package pap

import (
	"math/rand"
	"strings"
	"testing"
)

// TestStreamPrefilterChunkStraddle feeds a literal-bearing pattern through
// a meta-engine stream in chunks that split the literal at every possible
// byte boundary. The class-skip prefilter operates per chunk on a dead
// frontier; straddling occurrences must still match because the skip only
// ever jumps to the next start-class byte, which for a straddled literal
// is the occurrence's own first byte.
func TestStreamPrefilterChunkStraddle(t *testing.T) {
	a, err := Compile("needle", []string{"needle"})
	if err != nil {
		t.Fatal(err)
	}
	quiet := strings.Repeat("lorem ipsum dolor sit amet ", 40) // no 'n'
	payload := []byte(quiet + "needle" + quiet + "needleneedle" + quiet)
	want := a.Match(payload)
	if len(want) != 3 {
		t.Fatalf("whole-input match found %d occurrences, want 3", len(want))
	}

	// Every split point inside the first occurrence, plus random chunkings.
	first := strings.Index(string(payload), "needle")
	for cut := first; cut <= first+6; cut++ {
		s := a.NewStream(WithEngine(EngineMeta))
		// Write's return value is only valid until the next Write, so copy
		// each batch into the accumulator before writing again.
		var got []Match
		got = append(got, s.Write(payload[:cut])...)
		got = append(got, s.Write(payload[cut:])...)
		if len(got) != len(want) {
			t.Fatalf("cut at %d (offset %d into literal): %d matches, want %d",
				cut, cut-first, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("cut at %d: match %d = %+v, want %+v", cut, i, got[i], want[i])
			}
		}
		if s.PrefilterSkipped() == 0 {
			t.Fatalf("cut at %d: prefilter skipped nothing on a quiet payload", cut)
		}
		s.Close()
	}

	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		s := a.NewStream(WithEngine(EngineMeta))
		var got []Match
		for i := 0; i < len(payload); {
			j := i + 1 + rng.Intn(32)
			if j > len(payload) {
				j = len(payload)
			}
			got = append(got, s.Write(payload[i:j])...)
			i = j
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d matches, want %d", trial, len(got), len(want))
		}
		s.Close()
	}
}

// TestStreamPrefilterReset checks that Reset rearms the prefilter and
// zeroes the skip counter along with the rest of the stream state.
func TestStreamPrefilterReset(t *testing.T) {
	a, err := Compile("needle", []string{"needle"})
	if err != nil {
		t.Fatal(err)
	}
	s := a.NewStream(WithEngine(EngineMeta))
	defer s.Close()
	if m := s.Write([]byte("xxxxxxxxneedlexxxx")); len(m) != 1 {
		t.Fatalf("first pass: %d matches, want 1", len(m))
	}
	if s.PrefilterSkipped() == 0 {
		t.Fatal("first pass skipped nothing")
	}
	s.Reset()
	if s.PrefilterSkipped() != 0 {
		t.Fatalf("PrefilterSkipped = %d after Reset, want 0", s.PrefilterSkipped())
	}
	m := s.Write([]byte("xxxxxxxxneedlexxxx"))
	if len(m) != 1 {
		t.Fatalf("post-reset pass: %d matches, want 1", len(m))
	}
	if m[0].Offset != 13 {
		t.Fatalf("post-reset match offset = %d, want 13 (offsets restart)", m[0].Offset)
	}
	if s.PrefilterSkipped() == 0 {
		t.Fatal("post-reset pass skipped nothing")
	}
}
