package pap

import (
	"sync"
	"testing"
)

// TestAutomatonSharedConcurrently exercises the package's documented
// concurrency contract: one compiled Automaton may be shared by any number
// of goroutines calling Match, MatchParallel, NewStream, Stats and RangeOf
// simultaneously. Run with -race this also verifies that the lazily
// computed structural analyses (symbol ranges, connected components) are
// internally synchronized — the compile-once, share-everywhere model papd
// relies on.
func TestAutomatonSharedConcurrently(t *testing.T) {
	a, err := Compile("shared", []string{"attack", "GET /admin", `[0-9][0-9]:[0-9][0-9]`})
	if err != nil {
		t.Fatal(err)
	}
	input := makeInput(1<<12, 17, "attack", "GET /admin", "12:34")
	want := a.Match(input)
	if len(want) == 0 {
		t.Fatal("baseline found no matches; test input is broken")
	}

	const goroutines = 8
	const iters = 4
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (g + i) % 4 {
				case 0: // sequential matching
					got := a.Match(input)
					if len(got) != len(want) {
						t.Errorf("goroutine %d: Match found %d, want %d", g, len(got), len(want))
						return
					}
				case 1: // parallel matching (exercises planning analyses)
					rep, err := a.MatchParallel(input, Config{Ranks: 1, MaxSegments: 4})
					if err != nil {
						errc <- err
						return
					}
					if len(rep.Matches) != len(want) {
						t.Errorf("goroutine %d: MatchParallel found %d, want %d", g, len(rep.Matches), len(want))
						return
					}
				case 2: // a private Stream over the shared automaton
					s := a.NewStream()
					var got int
					for pos := 0; pos < len(input); pos += 512 {
						end := pos + 512
						if end > len(input) {
							end = len(input)
						}
						got += len(s.Write(input[pos:end]))
					}
					if got != len(want) {
						t.Errorf("goroutine %d: Stream found %d, want %d", g, got, len(want))
						return
					}
				case 3: // structural analyses
					if st := a.Stats(); st.States == 0 {
						t.Errorf("goroutine %d: empty Stats", g)
						return
					}
					for sym := 0; sym < 256; sym += 31 {
						a.RangeOf(byte(sym))
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
