package pap

import (
	"bytes"
	"testing"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder("seq")
	s1, err := b.AddState("[a]", AllInput, NoReport)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := b.AddState("[b-d]", NoStart, 9)
	if err != nil {
		t.Fatal(err)
	}
	b.Connect(s1, s2)
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := a.Match([]byte("xxacxad"))
	if len(m) != 2 || m[0].Code != 9 || m[0].Offset != 3 || m[1].Offset != 6 {
		t.Fatalf("matches = %+v", m)
	}
}

func TestBuilderWildcardAndAnchor(t *testing.T) {
	b := NewBuilder("anchored")
	s1, _ := b.AddState("[x]", StartOfData, NoReport)
	s2, _ := b.AddState("*", NoStart, 0)
	b.Connect(s1, s2)
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Match([]byte("xy")); len(got) != 1 || got[0].Offset != 1 {
		t.Fatalf("matches = %+v", got)
	}
	if got := a.Match([]byte("zxy")); len(got) != 0 {
		t.Fatalf("anchored automaton matched mid-stream: %+v", got)
	}
}

func TestBuilderStickyErrors(t *testing.T) {
	b := NewBuilder("bad")
	if _, err := b.AddState("not-a-set", AllInput, NoReport); err == nil {
		t.Fatal("invalid symbol set accepted")
	}
	// Error sticks.
	if _, err := b.AddState("[a]", AllInput, NoReport); err == nil {
		t.Fatal("error did not stick")
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("Build succeeded after error")
	}

	b2 := NewBuilder("oob")
	s, _ := b2.AddState("[a]", AllInput, NoReport)
	b2.Connect(s, s+5)
	if _, err := b2.Build(); err == nil {
		t.Fatal("out-of-range Connect not caught")
	}

	b3 := NewBuilder("badstart")
	if _, err := b3.AddState("[a]", StartKind(99), NoReport); err == nil {
		t.Fatal("unknown start kind accepted")
	}

	b4 := NewBuilder("nostart")
	b4.AddState("[a]", NoStart, 0)
	if _, err := b4.Build(); err == nil {
		t.Fatal("automaton with no start states accepted")
	}
}

func TestBuilderParallelMatch(t *testing.T) {
	// A custom lattice built via the public Builder must go through the
	// full PAP pipeline.
	b := NewBuilder("custom")
	prev := StateRef(-1)
	word := "signal"
	for i := 0; i < len(word); i++ {
		kind := NoStart
		if i == 0 {
			kind = AllInput
		}
		rep := NoReport
		if i == len(word)-1 {
			rep = 3
		}
		s, err := b.AddState("["+word[i:i+1]+"]", kind, rep)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 {
			b.Connect(prev, s)
		}
		prev = s
	}
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	input := makeInput(1<<14, 21, "signal")
	rep, err := a.MatchParallel(input, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Stats.Verified || len(rep.Matches) == 0 {
		t.Fatalf("stats = %+v, matches = %d", rep.Stats, len(rep.Matches))
	}
}

func TestBuilderANMLRoundTrip(t *testing.T) {
	b := NewBuilder("rt")
	s1, _ := b.AddState("[p]", AllInput, NoReport)
	s2, _ := b.AddState("[q]", NoStart, 1)
	b.Connect(s1, s2)
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.EncodeANML(&buf); err != nil {
		t.Fatal(err)
	}
	a2, err := DecodeANML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	in := []byte("zpqz")
	if len(a2.Match(in)) != len(a.Match(in)) {
		t.Fatal("ANML round trip changed behaviour")
	}
}
