package pap

import (
	"context"
	"errors"

	"pap/internal/engine"
	"pap/internal/prefilter"
)

// ErrStreamClosed is returned by Stream.WriteContext after Close.
var ErrStreamClosed = errors.New("pap: stream closed")

// Stream matches an automaton against input arriving incrementally —
// network captures, log tails, anything that cannot be buffered whole.
// Offsets are global across all written chunks. A Stream corresponds to
// one AP flow processing an unbounded symbol sequence; it uses the
// sequential engine (segment-parallel matching needs the whole input for
// range-guided partitioning).
//
//	s := a.NewStream()
//	for chunk := range chunks {
//	    for _, m := range s.Write(chunk) {
//	        handle(m)
//	    }
//	}
type Stream struct {
	a      *Automaton
	kind   EngineKind
	eng    engine.Engine
	pf     *prefilter.Prefilter // non-nil only when the backend carries a useful one
	bs     engine.BatchStepper  // non-nil when the backend steps in batches
	offset int64
	// skipped counts bytes proven inert by the prefilter and never
	// stepped. Only the class scanner runs here — it is exact per byte,
	// so chunk boundaries (and literals straddling them) need no special
	// handling: the first byte of any viable trace is in the start class
	// and stops the skip.
	skipped int64
	// scratch accumulates the current chunk's matches and reports
	// accumulates its raw report events; both are reused across Write
	// calls, and emit is allocated once here, so steady-state writes
	// allocate nothing.
	scratch []Match
	reports []engine.Report
	emit    engine.EmitFunc
	closed  bool
	// scored: the engine tracks best-path scores (see WithScoring). The
	// score vector lives in the engine alongside the frontier, so scores
	// carry across Write calls exactly like enabled states do — a match
	// whose path straddles any number of chunk boundaries scores
	// identically to the same input matched in one piece.
	scored bool
	// best/bestValid track the maximum match score seen since creation or
	// Reset (valid flag, not a sentinel: scores may be negative).
	best      int64
	bestValid bool
}

// StreamOption configures NewStream.
type StreamOption func(*Stream)

// WithEngine selects the stream's execution backend (default EngineAuto).
func WithEngine(k EngineKind) StreamOption {
	return func(s *Stream) { s.kind = k }
}

// WithScoring forces per-transition score tracking even when the automaton
// carries no scored transitions (every score is then 0 — useful for
// ablation and conformance testing). Streams over scored automata
// (Builder.ConnectScored) always track, with or without this option.
// Scoring remaps EngineLazyDFA and EngineMeta to EngineAuto — those
// backends do not track scores — which also drops the prefilter that rides
// on EngineMeta.
func WithScoring() StreamOption {
	return func(s *Stream) { s.scored = true }
}

// NewStream returns a matcher positioned at input offset 0.
func (a *Automaton) NewStream(opts ...StreamOption) *Stream {
	s := &Stream{a: a, kind: EngineAuto}
	for _, opt := range opts {
		opt(s)
	}
	if a.n.Scored() {
		s.scored = true
	}
	s.eng = s.newEngine()
	s.pf = engine.PrefilterOf(s.eng)
	s.bs, _ = s.eng.(engine.BatchStepper)
	s.emit = func(r engine.Report) { s.reports = append(s.reports, r) }
	return s
}

func (s *Stream) newEngine() engine.Engine {
	kind := s.kind.toKind()
	if s.scored {
		kind = engine.ScoringKind(kind)
	}
	var tab *engine.Tables
	if kind != engine.SparseKind {
		tab = s.a.tables()
	}
	e := engine.New(kind, s.a.n, tab)
	if s.scored {
		engine.SetScoring(e, true)
	}
	return e
}

// collect dedupes the accumulated raw reports into scratch and folds them
// into the running best score.
func (s *Stream) collect() []Match {
	for _, r := range engine.DedupeReports(s.reports) {
		s.scratch = append(s.scratch, Match{Code: r.Code, Offset: r.Offset, Score: r.Score})
		if !s.bestValid || r.Score > s.best {
			s.best, s.bestValid = r.Score, true
		}
	}
	return s.scratch
}

// Write consumes the next chunk and returns the matches it completed, in
// order. The returned slice is reused by the next Write; copy it to
// retain. Matches are deduplicated per (offset, reporting state) within
// the chunk, like AP report events — and this is exactly the whole-input
// Match semantics, regardless of how the input is chunked: the sequential
// engine fires each enabled state at most once per symbol, so a given
// (offset, state) event is emitted by exactly one Step inside exactly one
// Write, and no deduplication opportunity can straddle a chunk boundary.
// (Two distinct reporting states carrying the same code still yield two
// matches at the same offset, in Match and Write alike.)
// Writing to a closed Stream is a no-op returning nil (use WriteContext
// for an explicit ErrStreamClosed).
func (s *Stream) Write(chunk []byte) []Match {
	if s.closed {
		return nil
	}
	s.scratch = s.scratch[:0]
	s.reports = s.reports[:0]
	for i := 0; i < len(chunk); {
		if s.pf != nil && s.eng.Dead() {
			if j := s.pf.Next(chunk, i); j > i {
				s.offset += int64(j - i)
				s.skipped += int64(j - i)
				i = j
				continue
			}
		}
		// Batch-capable backends consume as much of the chunk as one call
		// allows — the vectorized kernel on a live frontier, the exact
		// baseline-skip scan on a dead one. Chunk boundaries need no special
		// handling: both are exact per byte.
		if s.bs != nil {
			c, _, _ := s.bs.StepBatch(chunk[i:], s.offset, s.emit)
			s.offset += int64(c)
			i += c
			continue
		}
		s.eng.Step(chunk[i], s.offset, s.emit)
		s.offset++
		i++
	}
	return s.collect()
}

// streamCtxEvery is the symbol interval between context polls in
// WriteContext — coarse enough to stay off the hot per-symbol path.
const streamCtxEvery = 4096

// WriteContext is Write under a context: the chunk is consumed in
// coarse-grained slices with ctx polled between them, and a cancelled or
// expired ctx stops mid-chunk with ctx's error wrapped in *AbortError
// (Progress reports the global stream offsets covered by this chunk and
// the position reached). Symbols before the stop are consumed — Offset
// advances — and their matches are returned alongside the error, so a
// caller that retries resumes exactly after the last processed symbol.
// Writing to a closed stream returns ErrStreamClosed.
func (s *Stream) WriteContext(ctx context.Context, chunk []byte) ([]Match, error) {
	if s.closed {
		return nil, ErrStreamClosed
	}
	start := s.offset
	s.scratch = s.scratch[:0]
	s.reports = s.reports[:0]
	var ctxErr error
	// ctx is polled every streamCtxEvery consumed symbols. Batches are
	// clamped to the next poll offset so the poll cadence is exact; a
	// prefilter skip may jump over a poll offset, which only delays the
	// next poll — skips are bounded by the chunk and cost no per-symbol
	// work anyway.
	nextPoll := 0
	for i := 0; i < len(chunk); {
		if i >= nextPoll {
			if err := ctx.Err(); err != nil {
				ctxErr = err
				break
			}
			nextPoll = i + streamCtxEvery
		}
		if s.pf != nil && s.eng.Dead() {
			if j := s.pf.Next(chunk, i); j > i {
				s.offset += int64(j - i)
				s.skipped += int64(j - i)
				i = j
				continue
			}
		}
		if s.bs != nil {
			end := nextPoll
			if end > len(chunk) {
				end = len(chunk)
			}
			c, _, _ := s.bs.StepBatch(chunk[i:end], s.offset, s.emit)
			s.offset += int64(c)
			i += c
			continue
		}
		s.eng.Step(chunk[i], s.offset, s.emit)
		s.offset++
		i++
	}
	s.collect()
	if ctxErr != nil {
		return s.scratch, &AbortError{
			Cause: ctxErr,
			Progress: []SegmentProgress{{
				Index: 0,
				Start: int(start),
				End:   int(start) + len(chunk),
				Pos:   int(s.offset),
			}},
		}
	}
	return s.scratch, nil
}

// Close releases the stream: subsequent Write calls return nil and
// WriteContext returns ErrStreamClosed. Close is idempotent and always
// returns nil (the error return mirrors io.Closer). Reset reopens a
// closed stream.
func (s *Stream) Close() error {
	s.closed = true
	return nil
}

// Offset returns the number of bytes consumed so far.
func (s *Stream) Offset() int64 { return s.offset }

// ActiveStates returns the number of currently enabled states beyond the
// always-active baseline — a load indicator for monitoring.
func (s *Stream) ActiveStates() int { return s.eng.FrontierLen() }

// Engine returns the stream's configured backend.
func (s *Stream) Engine() EngineKind { return s.kind }

// Scored reports whether the stream tracks per-transition scores
// (WithScoring, or an automaton with scored transitions).
func (s *Stream) Scored() bool { return s.scored }

// BestScore returns the maximum Match.Score seen since creation or the
// last Reset and whether any match has been seen at all — scores may be
// negative, so the boolean (not 0) is the no-matches signal. On unscored
// streams every score is 0, so it degenerates to a has-matched indicator.
func (s *Stream) BestScore() (int64, bool) { return s.best, s.bestValid }

// EngineSwitches returns the number of sparse⇄dense representation
// switches the backend has made (always 0 for fixed backends; for
// EngineMeta this counts the inner adaptive fallback, if engaged).
func (s *Stream) EngineSwitches() int64 { return engine.SwitchesOf(s.eng) }

// PrefilterSkipped returns the number of input bytes the stream's
// prefilter proved inert and never stepped (0 unless the backend carries
// a prefilter, i.e. EngineMeta over a ruleset with a narrow start class).
func (s *Stream) PrefilterSkipped() int64 { return s.skipped }

// BaselineSkipped returns the number of input bytes the backend's exact
// baseline-skip fast path scanned past instead of stepping (0 for backends
// without the fast path, and for rulesets whose start class is too wide to
// ever skip). Unlike the prefilter this path preserves every observable.
func (s *Stream) BaselineSkipped() int64 { return engine.BaselineSkippedOf(s.eng) }

// EngineInfo returns the stream's cumulative backend observability
// counters since creation or the last Reset.
func (s *Stream) EngineInfo() EngineInfo {
	cs := engine.CacheStatsOf(s.eng)
	return EngineInfo{
		PrefilterSkippedBytes: s.skipped,
		BaselineSkippedBytes:  engine.BaselineSkippedOf(s.eng),
		CacheHits:             cs.Hits,
		CacheMisses:           cs.Misses,
		CacheEvictions:        cs.Evictions,
		CacheFellBack:         cs.FellBack,
	}
}

// Reset rewinds the stream to offset 0 and the start configuration,
// reopening it if it was closed.
func (s *Stream) Reset() {
	s.eng = s.newEngine()
	s.pf = engine.PrefilterOf(s.eng)
	s.bs, _ = s.eng.(engine.BatchStepper)
	s.offset = 0
	s.skipped = 0
	s.scratch = s.scratch[:0]
	s.closed = false
	s.best, s.bestValid = 0, false
}
