package pap

import (
	"pap/internal/engine"
)

// Stream matches an automaton against input arriving incrementally —
// network captures, log tails, anything that cannot be buffered whole.
// Offsets are global across all written chunks. A Stream corresponds to
// one AP flow processing an unbounded symbol sequence; it uses the
// sequential engine (segment-parallel matching needs the whole input for
// range-guided partitioning).
//
//	s := a.NewStream()
//	for chunk := range chunks {
//	    for _, m := range s.Write(chunk) {
//	        handle(m)
//	    }
//	}
type Stream struct {
	a      *Automaton
	eng    *engine.Sparse
	offset int64
	// scratch accumulates the current chunk's matches and reports
	// accumulates its raw report events; both are reused across Write
	// calls, and emit is allocated once here, so steady-state writes
	// allocate nothing.
	scratch []Match
	reports []engine.Report
	emit    engine.EmitFunc
}

// NewStream returns a matcher positioned at input offset 0.
func (a *Automaton) NewStream() *Stream {
	s := &Stream{a: a, eng: engine.NewSparse(a.n)}
	s.emit = func(r engine.Report) { s.reports = append(s.reports, r) }
	return s
}

// Write consumes the next chunk and returns the matches it completed, in
// order. The returned slice is reused by the next Write; copy it to
// retain. Matches are deduplicated per (offset, reporting state) within
// the chunk, like AP report events — and this is exactly the whole-input
// Match semantics, regardless of how the input is chunked: the sequential
// engine fires each enabled state at most once per symbol, so a given
// (offset, state) event is emitted by exactly one Step inside exactly one
// Write, and no deduplication opportunity can straddle a chunk boundary.
// (Two distinct reporting states carrying the same code still yield two
// matches at the same offset, in Match and Write alike.)
func (s *Stream) Write(chunk []byte) []Match {
	s.scratch = s.scratch[:0]
	s.reports = s.reports[:0]
	for _, sym := range chunk {
		s.eng.Step(sym, s.offset, s.emit)
		s.offset++
	}
	for _, r := range engine.DedupeReports(s.reports) {
		s.scratch = append(s.scratch, Match{Code: r.Code, Offset: r.Offset})
	}
	return s.scratch
}

// Offset returns the number of bytes consumed so far.
func (s *Stream) Offset() int64 { return s.offset }

// ActiveStates returns the number of currently enabled states beyond the
// always-active baseline — a load indicator for monitoring.
func (s *Stream) ActiveStates() int { return s.eng.FrontierLen() }

// Reset rewinds the stream to offset 0 and the start configuration.
func (s *Stream) Reset() {
	s.eng = engine.NewSparse(s.a.n)
	s.offset = 0
	s.scratch = s.scratch[:0]
}
