# Convenience targets; everything is plain `go` underneath.

GO ?= go

# Coverage gate: `make cover` fails below this floor. Raise it when coverage
# durably improves; don't lower it casually.
COVER_MIN ?= 85.0

.PHONY: all build test vet race fuzz bench bench-segments bench-prefilter \
	bench-sfa bench-hotloop bench-papd experiments report serve clean \
	conformance cover chaos vulncheck load-smoke

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz passes over the fuzz targets (engine agreement,
# regex-vs-stdlib, end-to-end PAP equivalence, flow-vs-SFA mode
# equivalence, and scored-path-vs-oracle equivalence).
fuzz:
	$(GO) test -run xxx -fuzz FuzzEngineEquivalence -fuzztime 30s ./internal/engine/
	$(GO) test -run xxx -fuzz FuzzBaselineSkip -fuzztime 30s ./internal/engine/
	$(GO) test -run xxx -fuzz FuzzCompileAgainstStdlib -fuzztime 30s ./internal/regex/
	$(GO) test -run xxx -fuzz FuzzParallelEquivalence -fuzztime 30s ./internal/core/
	$(GO) test -run xxx -fuzz FuzzSFAEquivalence -fuzztime 30s ./internal/core/
	$(GO) test -run xxx -fuzz FuzzScoredEquivalence -fuzztime 30s ./internal/conformance/

# Differential conformance sweep against the reference oracle (see
# docs/TESTING.md); `go test ./internal/conformance` runs a smaller one.
conformance:
	$(GO) run ./cmd/papconform -cases 20000

# Chaos suite under the race detector: seeded fault injection (delays,
# failures, panics) across both schedulers plus the robustness regression
# tests (see docs/ROBUSTNESS.md). Full mode sweeps 500 seeded scenarios;
# CHAOS_SHORT=1 runs the short fault matrix for smoke use.
chaos:
	$(GO) test -race $(if $(CHAOS_SHORT),-short) -count=1 \
		-run 'TestChaos' ./internal/core/ \
		-v -timeout 10m
	$(GO) test -race -count=1 ./internal/faultinject/
	$(GO) test -race -count=1 \
		-run 'TestSessionExpiryRaces|TestMatchTimeout|TestMaxMatchDuration|TestStreamWriteTimeout' \
		./internal/server/

# Known-vulnerability scan; needs govulncheck (and network for the vuln DB).
# Skips with a notice when the tool is absent so offline builds stay green.
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# Coverage with a regression gate: fails if total statement coverage drops
# below COVER_MIN.
cover:
	$(GO) test -short -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | awk '{sub(/%/,"",$$3); print $$3}'); \
	awk -v t=$$total -v min=$(COVER_MIN) 'BEGIN { \
		if (t+0 < min+0) { printf "coverage %.1f%% is below the %.1f%% gate\n", t, min; exit 1 } \
		printf "coverage %.1f%% (gate %.1f%%)\n", t, min }'

bench:
	$(GO) test -bench=. -benchmem ./...

# Serial vs parallel cross-segment scheduler comparison (the numbers behind
# BENCH_segments.json; the parallel win scales with real cores).
bench-segments:
	$(GO) test -run xxx -bench BenchmarkExecuteSegments -benchmem -count 3 ./internal/core/

# Flow-enumeration vs SFA function-composition execution modes across
# workload regimes and segment counts (the numbers behind BENCH_sfa.json).
bench-sfa:
	$(GO) test -run xxx -bench BenchmarkModeComparison -benchmem -benchtime 5x -count 3 ./internal/core/

# Prefilter regimes and lazy-DFA density rows (the numbers behind
# BENCH_prefilter.json and the lazydfa/meta rows of BENCH_engines.json),
# then the 5x quiet-regime throughput gate.
bench-prefilter:
	$(GO) test -run xxx -bench 'PrefilterRegime|LazyDensity' ./internal/engine/
	PAP_BENCH_GUARD=1 $(GO) test -run TestQuietRegimeGuard -v ./internal/engine/

# Vectorized hot loop vs the scalar step loop on the sparse intrusion and
# regex-suite workloads (the numbers behind BENCH_hotloop.json), then the
# 5x baseline-skip throughput gate.
bench-hotloop:
	$(GO) test -run xxx -bench BenchmarkHotLoop -benchmem -count 3 ./internal/engine/
	PAP_BENCH_GUARD=1 $(GO) test -run TestHotLoopGuard -v ./internal/engine/

# Load smoke: papload drives a spawned 2-replica papd cluster (shard
# router + coalescing on) in mixed match/stream mode with hot reloads
# mid-run, and fails unless every request succeeded, no streaming session
# lost state, and the coalescer actually batched (see docs/SERVER.md).
load-smoke:
	$(GO) run ./cmd/papload -replicas 2 -mode mixed -duration 3s -conns 8 \
		-reloads 2 -require-zero-errors -require-coalescing

# Replica-scaling load bench: papload sweeps 1..4 spawned replicas and
# writes latency percentiles + throughput per cluster size (the numbers
# behind BENCH_papd.json).
bench-papd:
	$(GO) run ./cmd/papload -bench -bench-max-replicas 4 -mode match \
		-duration 5s -conns 8 -out BENCH_papd.json

# Regenerate every table and figure at the default reduced scale.
experiments:
	$(GO) run ./cmd/papbench -experiment all

report:
	$(GO) run ./cmd/papbench -experiment all -report report.html

# Build and launch the matching daemon (see docs/SERVER.md).
serve:
	$(GO) build -o bin/papd ./cmd/papd
	./bin/papd

clean:
	rm -f report.html test_output.txt bench_output.txt cover.out
	rm -rf bin
