# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet race fuzz bench experiments report serve clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz passes over the two fuzz targets (regex-vs-stdlib and
# end-to-end PAP equivalence).
fuzz:
	$(GO) test -run xxx -fuzz FuzzCompileAgainstStdlib -fuzztime 30s ./internal/regex/
	$(GO) test -run xxx -fuzz FuzzParallelEquivalence -fuzztime 30s ./internal/core/

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure at the default reduced scale.
experiments:
	$(GO) run ./cmd/papbench -experiment all

report:
	$(GO) run ./cmd/papbench -experiment all -report report.html

# Build and launch the matching daemon (see docs/SERVER.md).
serve:
	$(GO) build -o bin/papd ./cmd/papd
	./bin/papd

clean:
	rm -f report.html test_output.txt bench_output.txt
	rm -rf bin
