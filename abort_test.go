package pap

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// cancelAfterPolls is a context whose Err turns non-nil after a fixed
// number of Err calls — a deterministic way to stop WriteContext mid-chunk
// without wall-clock races (the stream only ever consults Err).
type cancelAfterPolls struct {
	context.Context
	left int
}

func (c *cancelAfterPolls) Err() error {
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	return nil
}

func TestStreamWriteAfterClose(t *testing.T) {
	a, err := Compile("t", []string{"needle"})
	if err != nil {
		t.Fatal(err)
	}
	s := a.NewStream()
	s.Write([]byte("nee"))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if ms := s.Write([]byte("dle")); ms != nil {
		t.Fatalf("Write after Close returned %v", ms)
	}
	if s.Offset() != 3 {
		t.Fatalf("closed stream advanced to %d", s.Offset())
	}
	if _, err := s.WriteContext(context.Background(), []byte("dle")); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("WriteContext after Close: %v, want ErrStreamClosed", err)
	}
}

func TestStreamDoubleClose(t *testing.T) {
	a, err := Compile("t", []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	s := a.NewStream()
	if err := s.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestStreamResetReopens(t *testing.T) {
	a, err := Compile("t", []string{"needle"})
	if err != nil {
		t.Fatal(err)
	}
	s := a.NewStream()
	s.Write([]byte("needle"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	ms := s.Write([]byte("xneedle"))
	if len(ms) != 1 || ms[0].Offset != 6 {
		t.Fatalf("reopened stream matches = %+v", ms)
	}
}

func TestStreamWriteContextStopsMidChunk(t *testing.T) {
	a, err := Compile("t", []string{"needle"})
	if err != nil {
		t.Fatal(err)
	}
	s := a.NewStream()
	chunk := make([]byte, 10000)
	copy(chunk, "needle") // a match inside the consumed prefix
	// Two successful polls (offsets 0 and 4096), then cancelled: exactly
	// 8192 symbols are consumed.
	ctx := &cancelAfterPolls{Context: context.Background(), left: 2}
	ms, err := s.WriteContext(ctx, chunk)
	var ab *AbortError
	if !errors.As(err, &ab) {
		t.Fatalf("err = %v, want *AbortError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v does not wrap context.Canceled", err)
	}
	if s.Offset() != 8192 {
		t.Fatalf("offset = %d, want 8192", s.Offset())
	}
	if len(ms) != 1 || ms[0].Offset != 5 {
		t.Fatalf("partial matches = %+v, want the one at 5", ms)
	}
	if len(ab.Progress) != 1 {
		t.Fatalf("progress = %+v", ab.Progress)
	}
	if p := ab.Progress[0]; p.Start != 0 || p.End != 10000 || p.Pos != 8192 {
		t.Fatalf("progress = %+v", p)
	}
	// A retry with the unconsumed tail resumes seamlessly.
	if _, err := s.WriteContext(context.Background(), chunk[8192:]); err != nil {
		t.Fatalf("resume write: %v", err)
	}
	if s.Offset() != 10000 {
		t.Fatalf("offset after resume = %d", s.Offset())
	}
}

func TestMatchContextCancelled(t *testing.T) {
	a, err := Compile("t", []string{"needle"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	input := make([]byte, 1<<16)
	ms, err := a.MatchContext(ctx, input)
	if ms != nil {
		t.Fatalf("matches = %v alongside error", ms)
	}
	var ab *AbortError
	if !errors.As(err, &ab) {
		t.Fatalf("err = %v, want *AbortError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v does not wrap context.Canceled", err)
	}
	if len(ab.Progress) != 1 || ab.Progress[0].End != len(input) {
		t.Fatalf("progress = %+v", ab.Progress)
	}
}

func TestMatchContextCompletes(t *testing.T) {
	a, err := Compile("t", []string{"needle"})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := a.MatchContext(context.Background(), []byte("a needle here"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("matches = %+v", ms)
	}
}

func TestMatchParallelContextCancelled(t *testing.T) {
	a, err := Compile("t", []string{"ab", "cd"})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	input := make([]byte, 1<<16)
	for i := range input {
		input[i] = "abcd  \n"[rng.Intn(7)]
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := a.MatchParallelContext(ctx, input, DefaultConfig(1))
	if rep != nil {
		t.Fatalf("report = %v alongside error", rep)
	}
	var ab *AbortError
	if !errors.As(err, &ab) {
		t.Fatalf("err = %v, want *AbortError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v does not wrap context.Canceled", err)
	}
}

func TestMatchParallelContextDeadline(t *testing.T) {
	a, err := Compile("t", []string{"ab", "cd"})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	input := make([]byte, 1<<20)
	for i := range input {
		input[i] = "abcd  \n"[rng.Intn(7)]
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err = a.MatchParallelContext(ctx, input, DefaultConfig(1))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v does not wrap context.DeadlineExceeded", err)
	}
}
