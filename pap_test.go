package pap

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestCompileAndMatch(t *testing.T) {
	a, err := Compile("t", []string{"cat", "dog"})
	if err != nil {
		t.Fatal(err)
	}
	got := a.Match([]byte("a cat and a dog"))
	if len(got) != 2 {
		t.Fatalf("matches = %+v", got)
	}
	if got[0].Code != 0 || got[0].Offset != 4 {
		t.Fatalf("first match = %+v", got[0])
	}
	if got[1].Code != 1 || got[1].Offset != 14 {
		t.Fatalf("second match = %+v", got[1])
	}
}

func TestCompileError(t *testing.T) {
	if _, err := Compile("t", []string{"("}); err == nil {
		t.Fatal("invalid pattern accepted")
	}
}

func TestCompileRulesCodes(t *testing.T) {
	a, err := CompileRules("t", []Rule{{Pattern: "x", Code: 42}})
	if err != nil {
		t.Fatal(err)
	}
	m := a.Match([]byte("x"))
	if len(m) != 1 || m[0].Code != 42 {
		t.Fatalf("matches = %+v", m)
	}
}

func TestStatsAndRange(t *testing.T) {
	a, err := Compile("t", []string{"abc", "abd"})
	if err != nil {
		t.Fatal(err)
	}
	s := a.Stats()
	if s.States != 6 || s.ConnectedComponents != 2 || s.ReportingStates != 2 {
		t.Fatalf("stats = %+v", s)
	}
	c := a.Compress()
	if c.Stats().States >= s.States {
		t.Fatalf("compression did not reduce: %d -> %d", s.States, c.Stats().States)
	}
	if a.RangeOf('z') != 0 {
		t.Fatal("range of unused symbol not 0")
	}
	if a.RangeOf('a') == 0 {
		t.Fatal("range of 'a' is 0")
	}
}

func TestWriteDOT(t *testing.T) {
	a, _ := Compile("t", []string{"ab"})
	var sb strings.Builder
	if err := a.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "digraph") {
		t.Fatal("not DOT output")
	}
}

func TestHammingAPI(t *testing.T) {
	a, err := Hamming("h", []string{"ACGTACGT"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Match([]byte("ACGAACGT"))) == 0 {
		t.Fatal("1-mismatch window not matched")
	}
	if len(a.Match([]byte("AAAAAAAA"))) != 0 {
		t.Fatal("distant window matched")
	}
	if _, err := Hamming("h", []string{""}, 1); err == nil {
		t.Fatal("empty pattern accepted")
	}
	if _, err := Hamming("h", []string{"ACGT"}, -1); err == nil {
		t.Fatal("negative distance accepted")
	}
}

func TestLevenshteinAPI(t *testing.T) {
	a, err := Levenshtein("l", []string{"ACGTACGT"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Match([]byte("ACGACGT"))) == 0 { // one deletion
		t.Fatal("1-edit window not matched")
	}
	if _, err := Levenshtein("l", []string{"AC"}, 2); err == nil {
		t.Fatal("pattern shorter than distance accepted")
	}
	if _, err := Levenshtein("l", []string{"ACGT"}, -1); err == nil {
		t.Fatal("negative distance accepted")
	}
}

func makeInput(size int, seed int64, inject ...string) []byte {
	rng := rand.New(rand.NewSource(seed))
	alpha := []byte("abcdefgh \n")
	out := make([]byte, 0, size)
	for len(out) < size {
		if len(inject) > 0 && rng.Intn(16) == 0 {
			out = append(out, inject[rng.Intn(len(inject))]...)
			continue
		}
		out = append(out, alpha[rng.Intn(len(alpha))])
	}
	return out[:size]
}

func TestMatchParallelExactAndFaster(t *testing.T) {
	a, err := Compile("t", []string{"attack", "defen[cs]e", "exploi.?t"})
	if err != nil {
		t.Fatal(err)
	}
	input := makeInput(1<<16, 3, "attack", "defence", "exploit")
	seq := a.Match(input)
	rep, err := a.MatchParallel(input, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Stats.Verified {
		t.Fatal("parallel run not verified")
	}
	if len(rep.Matches) != len(seq) {
		t.Fatalf("parallel %d matches, sequential %d", len(rep.Matches), len(seq))
	}
	for i := range seq {
		if seq[i] != rep.Matches[i] {
			t.Fatalf("match %d differs: %+v vs %+v", i, seq[i], rep.Matches[i])
		}
	}
	if rep.Stats.Speedup < 2 {
		t.Fatalf("speedup = %v, want > 2 on 4 ranks", rep.Stats.Speedup)
	}
	if rep.Stats.Segments < 2 || rep.Stats.IdealSpeedup < rep.Stats.Speedup-1e-9 {
		t.Fatalf("stats = %+v", rep.Stats)
	}
	if rep.Stats.ParallelNS <= 0 || rep.Stats.BaselineNS <= rep.Stats.ParallelNS {
		t.Fatalf("times = %+v", rep.Stats)
	}
	if rep.Stats.FalseReportRatio < 1 {
		t.Fatalf("false report ratio %v < 1", rep.Stats.FalseReportRatio)
	}
}

func TestMatchParallelConfigKnobs(t *testing.T) {
	a, err := Compile("t", []string{"abc"})
	if err != nil {
		t.Fatal(err)
	}
	input := makeInput(1<<14, 9, "abc")
	cfg := Config{
		Ranks:            1,
		TDMQuantum:       32,
		ConvergenceEvery: 5,
		MaxSegments:      4,
		HalfCores:        2,
		CutSymbol:        '\n',
		ForceCutSymbol:   true,
		Workers:          2,
	}
	rep, err := a.MatchParallel(input, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.CutSymbol != '\n' {
		t.Fatalf("cut symbol = %q", rep.Stats.CutSymbol)
	}
	if rep.Stats.Segments > 4 {
		t.Fatalf("segments = %d, want <= 4", rep.Stats.Segments)
	}
}

func TestMatchParallelZeroConfig(t *testing.T) {
	a, _ := Compile("t", []string{"ab"})
	rep, err := a.MatchParallel(makeInput(4096, 5, "ab"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Stats.Verified {
		t.Fatal("not verified")
	}
}

func TestMatchParallelEmptyInputErrors(t *testing.T) {
	a, _ := Compile("t", []string{"ab"})
	if _, err := a.MatchParallel(nil, DefaultConfig(1)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestMNRLAPIRoundTrip(t *testing.T) {
	a, err := Compile("m", []string{"net[0-9]+"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.EncodeMNRL(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := DecodeMNRL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	in := []byte("net42 net net7")
	if len(a.Match(in)) != len(b.Match(in)) {
		t.Fatal("MNRL round trip changed behaviour")
	}
}

func TestUnionAPI(t *testing.T) {
	a, _ := CompileRules("a", []Rule{{Pattern: "cat", Code: 1}})
	b, _ := CompileRules("b", []Rule{{Pattern: "dog", Code: 2}})
	u := a.Union(b)
	if u.Stats().ConnectedComponents != 2 {
		t.Fatalf("union CCs = %d", u.Stats().ConnectedComponents)
	}
	m := u.Match([]byte("cat dog"))
	if len(m) != 2 || m[0].Code != 1 || m[1].Code != 2 {
		t.Fatalf("matches = %+v", m)
	}
}
