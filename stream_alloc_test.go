package pap

import (
	"bytes"
	"testing"
)

// TestStreamWriteAllocs pins Stream.Write at zero allocations per call at
// steady state on a quiet stream — the regime where the backend's
// baseline-skip fast path is doing all the work. A warmed stream owns
// every buffer it needs; the batch kernel and the skip scan must not add
// any.
func TestStreamWriteAllocs(t *testing.T) {
	a, err := Compile("t", []string{"attack", "GET /admin"})
	if err != nil {
		t.Fatal(err)
	}
	quiet := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog. "), 64)
	for _, k := range []EngineKind{EngineAuto, EngineBit} {
		t.Run(k.String(), func(t *testing.T) {
			s := a.NewStream(WithEngine(k))
			s.Write(quiet) // warm-up: lazy tables, buffers, skip scanner
			allocs := testing.AllocsPerRun(100, func() { s.Write(quiet) })
			if allocs != 0 {
				t.Fatalf("%v: Write allocates %.1f objects per call, want 0", k, allocs)
			}
			if s.BaselineSkipped() == 0 {
				t.Fatalf("%v: baseline-skip fast path never engaged on a quiet stream", k)
			}
		})
	}
}
