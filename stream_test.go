package pap

import (
	"math/rand"
	"testing"
)

// TestStreamMatchesWholeInput: chunked streaming must produce exactly the
// matches of one-shot matching, for arbitrary chunkings.
func TestStreamMatchesWholeInput(t *testing.T) {
	a, err := Compile("s", []string{"abc", "bc+d", "x.z"})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	input := makeInput(1<<14, 6, "abc", "bccd", "xyz")
	want := a.Match(input)

	for trial := 0; trial < 5; trial++ {
		s := a.NewStream()
		var got []Match
		pos := 0
		for pos < len(input) {
			n := 1 + rng.Intn(700)
			if pos+n > len(input) {
				n = len(input) - pos
			}
			got = append(got, s.Write(input[pos:pos+n])...)
			pos += n
		}
		if s.Offset() != int64(len(input)) {
			t.Fatalf("offset = %d, want %d", s.Offset(), len(input))
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d matches, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d match %d: %+v vs %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestStreamMatchesSFAParallel: chunked streaming and SFA-mode parallel
// matching are independent paths to the same answer. The stream runs the
// sequential engine over arbitrary chunkings; MatchParallel with
// Mode=ExecSFA composes per-segment state mappings. Both must report the
// exact sequential match set.
func TestStreamMatchesSFAParallel(t *testing.T) {
	a, err := Compile("s", []string{"abc", "bc+d", "x.z"})
	if err != nil {
		t.Fatal(err)
	}
	input := makeInput(1<<14, 41, "abc", "bccd", "xyz")

	cfg := DefaultConfig(2)
	cfg.Mode = ExecSFA
	cfg.MaxSegments = 6
	rep, err := a.MatchParallel(input, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Mode != "sfa" {
		t.Fatalf("Stats.Mode = %q, want %q", rep.Stats.Mode, "sfa")
	}
	if !rep.Stats.Verified {
		t.Fatal("SFA-mode match not verified against the golden run")
	}
	want := rep.Matches

	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 5; trial++ {
		s := a.NewStream()
		var got []Match
		pos := 0
		for pos < len(input) {
			n := 1 + rng.Intn(700)
			if pos+n > len(input) {
				n = len(input) - pos
			}
			got = append(got, s.Write(input[pos:pos+n])...)
			pos += n
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: stream %d matches, SFA parallel %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d match %d: stream %+v vs SFA %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestStreamMatchesAcrossChunkBoundary: a pattern split across Write calls
// must still match.
func TestStreamMatchesAcrossChunkBoundary(t *testing.T) {
	a, _ := Compile("s", []string{"needle"})
	s := a.NewStream()
	if got := s.Write([]byte("xxnee")); len(got) != 0 {
		t.Fatalf("premature matches: %+v", got)
	}
	got := s.Write([]byte("dlexx"))
	if len(got) != 1 || got[0].Offset != 7 {
		t.Fatalf("split match = %+v, want one ending at 7", got)
	}
}

func TestStreamReset(t *testing.T) {
	a, _ := Compile("s", []string{"ab"})
	s := a.NewStream()
	s.Write([]byte("a"))
	if s.ActiveStates() != 1 {
		t.Fatalf("active = %d after partial match", s.ActiveStates())
	}
	s.Reset()
	if s.Offset() != 0 || s.ActiveStates() != 0 {
		t.Fatalf("reset incomplete: offset=%d active=%d", s.Offset(), s.ActiveStates())
	}
	if got := s.Write([]byte("b")); len(got) != 0 {
		t.Fatalf("state leaked across Reset: %+v", got)
	}
	if got := s.Write([]byte("ab")); len(got) != 1 || got[0].Offset != 2 {
		t.Fatalf("post-reset offsets wrong: %+v", got)
	}
}

func TestStreamEmptyWrite(t *testing.T) {
	a, _ := Compile("s", []string{"ab"})
	s := a.NewStream()
	if got := s.Write(nil); len(got) != 0 {
		t.Fatalf("nil write matched: %+v", got)
	}
}

// TestStreamDedupeAcrossChunkBoundary pins down the deduplication contract
// under chunking. Report events are deduplicated per (offset, reporting
// state); two identical rules compile to two distinct reporting states, so
// every occurrence yields two same-code same-offset matches — from Match
// and from Stream alike. Because the sequential engine emits a given
// (offset, state) event exactly once, splitting the input at any boundary
// (including right after the reporting symbol) must never change the match
// multiset: nothing that would dedupe within one Write can arrive split
// across two.
func TestStreamDedupeAcrossChunkBoundary(t *testing.T) {
	a, err := CompileRules("dup", []Rule{
		{Pattern: "dup", Code: 7},
		{Pattern: "dup", Code: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("xdupdupydupz")
	want := a.Match(input)
	// Two reporting states per occurrence: expect duplicate (code, offset)
	// pairs in the baseline itself.
	if len(want) != 6 {
		t.Fatalf("whole-input matches = %d, want 6 (two per occurrence): %+v", len(want), want)
	}
	for i := 0; i+1 < len(want); i += 2 {
		if want[i] != want[i+1] {
			t.Fatalf("expected equal-code equal-offset pair at %d: %+v vs %+v", i, want[i], want[i+1])
		}
	}
	for split := 1; split < len(input); split++ {
		s := a.NewStream()
		var got []Match
		got = append(got, s.Write(input[:split])...)
		got = append(got, s.Write(input[split:])...)
		if len(got) != len(want) {
			t.Fatalf("split %d: %d matches, want %d: %+v", split, len(got), len(want), got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("split %d match %d: %+v, want %+v", split, i, got[i], want[i])
			}
		}
	}
}

// TestStreamEngineEquivalence: every backend must produce identical
// matches over identical chunked input, and report its configured kind.
func TestStreamEngineEquivalence(t *testing.T) {
	a, err := Compile("s", []string{"abc", "bc+d", "x.z"})
	if err != nil {
		t.Fatal(err)
	}
	input := makeInput(1<<13, 29, "abc", "bccd", "xyz")
	want := a.Match(input)
	for _, k := range []EngineKind{EngineAuto, EngineSparse, EngineBit} {
		s := a.NewStream(WithEngine(k))
		if s.Engine() != k {
			t.Fatalf("Engine() = %v, want %v", s.Engine(), k)
		}
		var got []Match
		for pos := 0; pos < len(input); pos += 512 {
			end := pos + 512
			if end > len(input) {
				end = len(input)
			}
			got = append(got, s.Write(input[pos:end])...)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: %d matches, want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v match %d: %+v, want %+v", k, i, got[i], want[i])
			}
		}
		if k != EngineAuto && s.EngineSwitches() != 0 {
			t.Fatalf("%v: fixed backend reported %d switches", k, s.EngineSwitches())
		}
	}
}

// BenchmarkStreamWrite measures the steady-state cost of Write on each
// backend. The report and match buffers live on the Stream and are reused,
// so a warmed stream must not allocate per call, whatever the engine.
func BenchmarkStreamWrite(b *testing.B) {
	a, err := Compile("bench", []string{"attack", "GET /admin", `[0-9][0-9][0-9]-[0-9]`})
	if err != nil {
		b.Fatal(err)
	}
	input := makeInput(1<<12, 11, "attack", "GET /admin")
	for _, k := range []EngineKind{EngineAuto, EngineSparse, EngineBit} {
		b.Run(k.String(), func(b *testing.B) {
			s := a.NewStream(WithEngine(k))
			s.Write(input) // warm the buffers (and any lazy match tables)
			b.SetBytes(int64(len(input)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Write(input)
			}
		})
	}
}
