package prefilter_test

import (
	"math/rand"
	"testing"

	"pap/internal/conformance"
	"pap/internal/engine"
	"pap/internal/nfa"
	"pap/internal/prefilter"

	// Link the lazy-DFA backend so engine.MetaKind is constructible in
	// this test binary.
	_ "pap/internal/engine/lazydfa"
)

// FuzzLiteralExtraction is the differential safety net for the whole
// prefilter: on a fuzzer-chosen random automaton and raw input it checks
// the structural extraction invariants, then requires that the
// literal-prefiltered meta match path reproduces the oracle's report
// stream exactly. Any unsound literal, wrong jump, or class-scanner gap
// shows up as a missing or phantom report.
func FuzzLiteralExtraction(f *testing.F) {
	f.Add(int64(1), []byte("GET /admin HTTP/1.1"))
	f.Add(int64(7), []byte("aaaabbbbccccdddd"))
	f.Add(int64(42), []byte("zzzzzzzzzzzzzzzzzzzzzzzzabcz"))
	f.Add(int64(9000), []byte("ab\x00\xffdcba ab dcba"))
	f.Fuzz(func(t *testing.T, seed int64, input []byte) {
		if len(input) > 4096 {
			input = input[:4096]
		}
		rng := rand.New(rand.NewSource(seed))
		spec := conformance.RandomSpec(rng)
		n, err := spec.Build()
		if err != nil {
			t.Skip("degenerate spec")
		}

		info := prefilter.Extract(n)
		// The start class is exactly the union of all all-input labels.
		var want nfa.Class
		for _, q := range n.AllInputStates() {
			want = want.Union(n.Label(q))
		}
		for s := 0; s < 256; s++ {
			if info.StartClass.Test(byte(s)) != want.Test(byte(s)) {
				t.Fatalf("StartClass disagrees on byte %#x (spec %v)", s, spec)
			}
		}
		// Extraction contract: literals only exist when no all-input state
		// reports, and each is at least two bytes.
		if len(info.Literals) > 0 {
			for _, q := range n.AllInputStates() {
				if n.State(q).Flags&nfa.Report != 0 {
					t.Fatalf("literals extracted despite reporting all-input state %d (spec %v)", q, spec)
				}
			}
			for _, l := range info.Literals {
				if len(l) < 2 {
					t.Fatalf("useless literal %q extracted (spec %v)", l, spec)
				}
			}
		}

		oracle := conformance.OracleRun(n, input)
		tab := engine.NewTables(n)
		res := engine.RunEngineOpts(n, input, engine.MetaKind, tab,
			engine.RunOpts{LiteralPrefilter: true})
		if !engine.SameReports(oracle, res.Reports) {
			t.Fatalf("prefiltered meta reports diverge from oracle\nspec: %v\ninput: %q\ngot %d reports, want %d",
				spec, input, len(res.Reports), len(oracle))
		}
	})
}
