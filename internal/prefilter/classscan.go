package prefilter

import (
	"bytes"

	"pap/internal/nfa"
)

// StartClass returns the union of all all-input state labels of n: the
// exact set of bytes that can restart activity on a dead frontier. Every
// baseline-skip fast path scans for this class — the prefilter run loops,
// the bit engine's StepBatch, and core's ASG-flow rounds all share it.
func StartClass(n *nfa.NFA) nfa.Class {
	var c nfa.Class
	for _, q := range n.AllInputStates() {
		c = c.Union(n.Label(q))
	}
	return c
}

// ClassScanner finds the next byte of a fixed class in an input window —
// the memchr-style primitive behind every exact dead-frontier skip. It is
// immutable and safe for concurrent use by any number of engines.
type ClassScanner struct {
	count  int
	single byte // the candidate byte when count == 1
	in     [256]bool
}

// NewClassScanner compiles a scanner for the class.
func NewClassScanner(c nfa.Class) *ClassScanner {
	s := &ClassScanner{count: c.Count()}
	for b := 0; b < 256; b++ {
		if c.Test(byte(b)) {
			s.in[b] = true
			s.single = byte(b)
		}
	}
	return s
}

// Count returns the number of bytes in the class.
func (s *ClassScanner) Count() int { return s.count }

// Contains reports whether b is in the class.
func (s *ClassScanner) Contains(b byte) bool { return s.in[b] }

// Useful reports whether scanning can plausibly beat plain stepping: some
// byte must be skippable, i.e. candidates must not saturate the alphabet.
func (s *ClassScanner) Useful() bool { return s.count <= usefulMaxStartDensity }

// NextIn returns the smallest offset j in [i, hi) with input[j] in the
// class, or hi if none exists (hi is clamped to len(input)). A single-byte
// class scans with bytes.IndexByte (true memchr); wider classes run an
// 8-way unrolled table scan with the block's bounds checks hoisted by the
// full-slice re-slice.
func (s *ClassScanner) NextIn(input []byte, i, hi int) int {
	if hi > len(input) {
		hi = len(input)
	}
	if i >= hi {
		return hi
	}
	switch s.count {
	case 0:
		return hi
	case 1:
		if j := bytes.IndexByte(input[i:hi], s.single); j >= 0 {
			return i + j
		}
		return hi
	}
	in := &s.in
	for hi-i >= 8 {
		w := input[i : i+8 : i+8]
		if in[w[0]] || in[w[1]] || in[w[2]] || in[w[3]] ||
			in[w[4]] || in[w[5]] || in[w[6]] || in[w[7]] {
			break
		}
		i += 8
	}
	for ; i < hi; i++ {
		if in[input[i]] {
			return i
		}
	}
	return hi
}
