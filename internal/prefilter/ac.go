package prefilter

// acMachine is a dense Aho-Corasick automaton over the required literal
// set, specialised to one question: at which offset does the *earliest*
// literal occurrence end? Failure transitions are precomputed into a full
// next[state][byte] table at build time, so the scan is one table load per
// byte; while the machine sits in its root state the scan instead skips
// with a first-byte membership table (the memchr-style fast path), since
// only a literal's first byte can leave the root.
type acMachine struct {
	next     [][256]int32
	terminal []bool
	inFirst  [256]bool // bytes that move the root off itself
	maxLen   int
}

// buildAC compiles the literal set. Literals must be non-empty; the
// machine size is one node per distinct literal prefix, bounded by
// maxLiterals * maxLiteralLen.
func buildAC(lits [][]byte) *acMachine {
	m := &acMachine{}
	// Trie construction over goto edges; 0 is the root.
	m.addNode()
	for _, l := range lits {
		if len(l) > m.maxLen {
			m.maxLen = len(l)
		}
		s := int32(0)
		for _, b := range l {
			if m.next[s][b] == 0 {
				m.next[s][b] = m.addNode()
			}
			s = m.next[s][b]
		}
		m.terminal[s] = true
	}
	for b := 0; b < 256; b++ {
		m.inFirst[b] = m.next[0][b] != 0
	}
	// BFS failure computation, folding fail links directly into next and
	// propagating terminality (a node is terminal if any suffix of its
	// prefix is a literal).
	fail := make([]int32, len(m.next))
	queue := make([]int32, 0, len(m.next))
	for b := 0; b < 256; b++ {
		if c := m.next[0][b]; c != 0 {
			queue = append(queue, c)
		}
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if m.terminal[fail[s]] {
			m.terminal[s] = true
		}
		for b := 0; b < 256; b++ {
			c := m.next[s][b]
			if c != 0 {
				fail[c] = m.next[fail[s]][b]
				queue = append(queue, c)
			} else {
				m.next[s][b] = m.next[fail[s]][b]
			}
		}
	}
	return m
}

func (m *acMachine) addNode() int32 {
	m.next = append(m.next, [256]int32{})
	m.terminal = append(m.terminal, false)
	return int32(len(m.next) - 1)
}

// firstEnd returns the smallest offset e >= i at which some literal
// occurrence (starting at or after i) ends, or -1 if none ends anywhere
// in input[i:].
func (m *acMachine) firstEnd(input []byte, i int) int {
	s := int32(0)
	for j := i; j < len(input); j++ {
		if s == 0 {
			// Root fast path: only first bytes leave the root.
			for j < len(input) && !m.inFirst[input[j]] {
				j++
			}
			if j >= len(input) {
				return -1
			}
		}
		s = m.next[s][input[j]]
		if m.terminal[s] {
			return j
		}
	}
	return -1
}
