// Package prefilter accelerates quiet input regions. Once a flow's
// enumeration frontier has collapsed to the always-active baseline (the
// paper's ASG-only configuration), the only way activity can restart is an
// all-input state firing — and an all-input state fires only on a symbol
// in its label class. A prefilter extracted from the compiled automaton
// therefore lets execution loops *skip* from the current offset straight
// to the next candidate offset instead of stepping the engine symbol by
// symbol, turning quiet regions into a memchr-speed scan (ROADMAP item
// "baseline skip"; the same work-reduction idea PaREM applies statically).
//
// Two scanners are extracted, with different exactness guarantees:
//
//   - The class scanner (Next) finds the next byte in the union of all
//     all-input labels. Skipping to it is *fully exact*: every skipped
//     symbol provably fires no state, traverses no transition, emits no
//     report, and leaves the frontier empty, so every observable —
//     reports, Transitions, frontier statistics, and the modelled
//     ap.Cycles charged per symbol — is preserved bit-for-bit. All
//     execution layers may use it unconditionally.
//
//   - The literal scanner (NextLiteral) runs an Aho-Corasick automaton
//     over required literals rooted at the all-input states and jumps to
//     just before the earliest possible literal completion. It is
//     *report-exact*: the skipped region provably contains no report and
//     no activity that could ever produce one, but doomed partial-literal
//     frontier states are dropped, so frontier-size observables may
//     differ. Only match-only paths (Automaton.Match and friends) use it.
//
// Extraction is conservative: literals are only produced when the
// automaton's entire escape surface is covered (see Extract); otherwise
// the literal scanner degrades to the class scanner, which always exists.
package prefilter

import (
	"pap/internal/nfa"
)

// Extraction limits. Classes wider than maxClassExpand symbols stop a
// literal (they would multiply variants); a branch stops at maxLiteralLen
// bytes; extraction aborts (Literals = nil) beyond maxLiterals total.
const (
	maxClassExpand = 4
	maxLiteralLen  = 16
	maxLiterals    = 64
	// minUsefulLiteralLen: a 1-byte literal triggers on every occurrence of
	// that byte, which the class scanner already handles without the
	// Aho-Corasick machinery — literal extraction only pays past length 1.
	minUsefulLiteralLen = 2
	// usefulMaxStartDensity is the largest start-class size for which byte
	// skipping can plausibly help; beyond it nearly every byte is a
	// candidate and the scan is pure overhead.
	usefulMaxStartDensity = 224
)

// Info is the raw extraction result, exposed for tests and diagnostics.
type Info struct {
	// StartClass is the union of all all-input state labels: the exact set
	// of bytes that can restart activity on a dead frontier.
	StartClass nfa.Class
	// Literals are required literals: whenever the frontier is dead, any
	// future report is preceded by a complete occurrence of one of these
	// literals. nil when no sound-and-useful literal set exists.
	Literals [][]byte
}

// Extract analyses a compiled automaton. The StartClass is always exact.
// Literals are produced only under conditions that make literal skipping
// report-exact (proved in NextLiteral's comment):
//
//   - no all-input state reports (else a single byte can report);
//   - each all-input label expands to at most maxClassExpand symbols;
//   - literals follow "pure chain trees" below each all-input state: a
//     tree state's only predecessor is its tree parent, it carries no
//     start flags, and its label stays narrow. Any violation truncates
//     the literal at the last pure state — a truncated required literal
//     is still required (it is a prefix of every deeper trace);
//   - a reporting tree state ends its literal inclusively (the trace
//     reports only after completing the literal through that state);
//   - every produced literal has length >= minUsefulLiteralLen and the
//     total stays within maxLiterals.
func Extract(n *nfa.NFA) Info {
	return Info{StartClass: StartClass(n), Literals: extractLiterals(n)}
}

func extractLiterals(n *nfa.NFA) [][]byte {
	roots := n.AllInputStates()
	if len(roots) == 0 {
		return nil
	}
	var lits [][]byte
	for _, a := range roots {
		st := n.State(a)
		if st.Flags&nfa.Report != 0 {
			return nil // a lone byte reports: no literal covers it
		}
		syms := st.Label.Symbols(nil)
		if len(syms) == 0 {
			continue // unsatisfiable label: this root can never fire
		}
		if len(syms) > maxClassExpand {
			return nil // root class too wide to enumerate
		}
		prefixes := make([][]byte, len(syms))
		for i, s := range syms {
			prefixes[i] = []byte{s}
		}
		var ok bool
		lits, ok = walkChain(n, a, a, prefixes, lits)
		if !ok {
			return nil
		}
	}
	if len(lits) == 0 {
		return nil
	}
	for _, l := range lits {
		if len(l) < minUsefulLiteralLen {
			return nil
		}
	}
	return dedupeLiterals(lits)
}

// walkChain extends the literal variants in prefixes down the pure chain
// tree below state q (whose bytes prefixes already cover), appending
// completed literals to lits. It returns ok=false when the total literal
// count would exceed maxLiterals.
func walkChain(n *nfa.NFA, root, q nfa.StateID, prefixes [][]byte, lits [][]byte) ([][]byte, bool) {
	emit := func() ([][]byte, bool) {
		if len(lits)+len(prefixes) > maxLiterals {
			return nil, false
		}
		return append(lits, prefixes...), true
	}
	if len(prefixes[0]) >= maxLiteralLen {
		return emit()
	}
	// Children eligible for extension. An edge into an all-input state is
	// inert (engines never enter all-input states), so such children are
	// ignored entirely rather than truncating the chain.
	var chain []nfa.StateID
	for _, c := range n.Succ(q) {
		cs := n.State(c)
		if cs.Flags&nfa.AllInput != 0 {
			continue
		}
		if c == q || cs.Flags&nfa.StartOfData != 0 || !solePred(n, c, q) ||
			cs.Label.Count() == 0 || cs.Label.Count() > maxClassExpand {
			// Impure child: activity can pass q without matching deeper
			// bytes we could append, so the literal ends at q.
			return emit()
		}
		chain = append(chain, c)
	}
	if len(chain) == 0 {
		return emit() // leaf: the literal ends here
	}
	for _, c := range chain {
		cs := n.State(c)
		syms := cs.Label.Symbols(nil)
		if len(prefixes)*len(syms) > maxLiterals {
			return emit()
		}
		ext := make([][]byte, 0, len(prefixes)*len(syms))
		for _, p := range prefixes {
			for _, s := range syms {
				v := make([]byte, len(p)+1)
				copy(v, p)
				v[len(p)] = s
				ext = append(ext, v)
			}
		}
		if cs.Flags&nfa.Report != 0 {
			// Reporting chain state: the literal through it is complete the
			// instant the report fires; end it here, inclusively.
			var ok bool
			if lits, ok = appendAll(lits, ext); !ok {
				return nil, false
			}
			continue
		}
		var ok bool
		if lits, ok = walkChain(n, root, c, ext, lits); !ok {
			return nil, false
		}
	}
	return lits, true
}

func appendAll(lits, ext [][]byte) ([][]byte, bool) {
	if len(lits)+len(ext) > maxLiterals {
		return nil, false
	}
	return append(lits, ext...), true
}

// solePred reports whether parent is state c's only predecessor.
func solePred(n *nfa.NFA, c, parent nfa.StateID) bool {
	preds := n.Pred(c)
	return len(preds) == 1 && preds[0] == parent
}

func dedupeLiterals(lits [][]byte) [][]byte {
	seen := make(map[string]bool, len(lits))
	out := lits[:0]
	for _, l := range lits {
		if !seen[string(l)] {
			seen[string(l)] = true
			out = append(out, l)
		}
	}
	return out
}

// Prefilter is an immutable compiled scanner pair. It is safe for
// concurrent use by any number of engines sharing one automaton.
type Prefilter struct {
	info Info
	scan *ClassScanner // compiled start class (always present)
	ac   *acMachine    // nil when Info.Literals is nil
}

// Build compiles the prefilter for an automaton. It never returns nil;
// consult Useful to decide whether scanning can pay off.
func Build(n *nfa.NFA) *Prefilter {
	return FromInfo(Extract(n))
}

// FromInfo compiles a prefilter from an extraction result (split out so
// tests can exercise scanner construction on synthetic literal sets).
func FromInfo(info Info) *Prefilter {
	p := &Prefilter{info: info, scan: NewClassScanner(info.StartClass)}
	if len(info.Literals) > 0 {
		p.ac = buildAC(info.Literals)
	}
	return p
}

// Info returns the extraction result the prefilter was built from.
func (p *Prefilter) Info() Info { return p.info }

// StartScanner returns the compiled start-class scanner, shared with
// execution layers (the bit engine's baseline skip, core's ASG rounds)
// that scan the same class outside a Prefilter context.
func (p *Prefilter) StartScanner() *ClassScanner { return p.scan }

// HasLiterals reports whether the literal scanner is available (otherwise
// NextLiteral degrades to Next).
func (p *Prefilter) HasLiterals() bool { return p.ac != nil }

// Useful reports whether skipping can plausibly beat plain stepping: some
// byte must be skippable, and candidate bytes must not saturate the
// alphabet (unless literals sharpen the scan further).
func (p *Prefilter) Useful() bool {
	return p.scan.Useful() || p.ac != nil
}

// Next returns the smallest offset j in [i, len(input)) such that
// input[j] can fire an all-input state, or len(input) if none exists.
// Skipping a dead-frontier engine from i to j is fully exact: a symbol
// outside the start class fires nothing on an empty frontier, so the
// engine state and every observable are unchanged over the skipped range.
func (p *Prefilter) Next(input []byte, i int) int {
	return p.NextIn(input, i, len(input))
}

// NextIn is Next bounded to the window [i, hi): it returns the smallest
// candidate offset in the window, or hi if none exists. Execution layers
// with internal boundaries (TDM rounds, segment cuts) use the bound to
// stop skips at the boundary.
func (p *Prefilter) NextIn(input []byte, i, hi int) int {
	return p.scan.NextIn(input, i, hi)
}

// NextLiteral returns an offset j in [i, len(input)] such that skipping a
// dead-frontier engine from i to j preserves the report stream exactly,
// choosing j as far forward as the literal set allows; with no literals it
// falls back to Next.
//
// Soundness: under Extract's conditions, any trace of activity started by
// an all-input state firing at position t can report, or escape its pure
// chain tree, only after a complete occurrence of one of the literals —
// an occurrence starting at t and ending at t+L-1 for that literal's
// length L <= Lmax. Let e be the earliest offset >= i at which any
// literal occurrence ends, and j = max(i, e-Lmax+1). A trace starting at
// t < j would complete its literal by t+Lmax-1 < j+Lmax-1 = e,
// contradicting e's minimality — so every trace starting before j dies
// inside its (non-reporting) tree and never influences anything. Traces
// starting at or after j are replayed faithfully by stepping from j. With
// no occurrence ending anywhere, j = len(input) and the whole tail is
// report-free.
func (p *Prefilter) NextLiteral(input []byte, i int) int {
	if p.ac == nil {
		return p.Next(input, i)
	}
	e := p.ac.firstEnd(input, i)
	if e < 0 {
		return len(input)
	}
	j := e - p.ac.maxLen + 1
	if j < i {
		j = i
	}
	return j
}
