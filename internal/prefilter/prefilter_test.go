package prefilter

import (
	"sort"
	"testing"

	"pap/internal/nfa"
)

// chainNFA builds one all-input root labelled rootSyms followed by a pure
// chain of states labelled by each element of rest. With report set, the
// last chain state reports.
func chainNFA(tb testing.TB, rootSyms string, rest []string, report bool) *nfa.NFA {
	tb.Helper()
	b := nfa.NewBuilder("chain")
	prev := b.AddState(nfa.ClassOf([]byte(rootSyms)...), nfa.AllInput)
	for i, syms := range rest {
		id := b.AddState(nfa.ClassOf([]byte(syms)...), 0)
		b.AddEdge(prev, id)
		if report && i == len(rest)-1 {
			b.SetFlags(id, nfa.Report)
			b.SetReportCode(id, 1)
		}
		prev = id
	}
	n, err := b.Build()
	if err != nil {
		tb.Fatalf("Build: %v", err)
	}
	return n
}

func literalStrings(lits [][]byte) []string {
	out := make([]string, len(lits))
	for i, l := range lits {
		out[i] = string(l)
	}
	sort.Strings(out)
	return out
}

// An automaton with no all-input states (the empty-ruleset analogue for a
// dead frontier: nothing can ever restart) must yield an empty start
// class, no literals, and a Next that skips everything in one step.
func TestExtractNoAllInputStates(t *testing.T) {
	b := nfa.NewBuilder("sod-only")
	b.AddState(nfa.ClassOf('a'), nfa.StartOfData)
	n := b.MustBuild()
	p := Build(n)
	if got := p.Info().StartClass.Count(); got != 0 {
		t.Fatalf("StartClass.Count = %d, want 0", got)
	}
	if p.HasLiterals() {
		t.Fatalf("HasLiterals = true, want false")
	}
	if !p.Useful() {
		t.Fatal("Useful = false; an always-skippable prefilter is maximally useful")
	}
	input := []byte("anything at all")
	if got := p.Next(input, 0); got != len(input) {
		t.Fatalf("Next = %d, want %d (whole input skippable)", got, len(input))
	}
	if got := p.NextLiteral(input, 3); got != len(input) {
		t.Fatalf("NextLiteral = %d, want %d", got, len(input))
	}
}

func TestExtractSingleByteChain(t *testing.T) {
	n := chainNFA(t, "n", []string{"e", "e", "d"}, true)
	p := Build(n)
	if got := literalStrings(p.Info().Literals); len(got) != 1 || got[0] != "need" {
		t.Fatalf("Literals = %q, want [need]", got)
	}
	if !p.HasLiterals() || !p.Useful() {
		t.Fatalf("HasLiterals=%v Useful=%v, want true/true", p.HasLiterals(), p.Useful())
	}
	if got := p.Info().StartClass.Count(); got != 1 {
		t.Fatalf("StartClass.Count = %d, want 1", got)
	}
	// Single-byte start class takes the IndexByte fast path.
	input := []byte("zzzzznzz")
	if got := p.Next(input, 0); got != 5 {
		t.Fatalf("Next = %d, want 5", got)
	}
	if got := p.Next(input, 6); got != len(input) {
		t.Fatalf("Next past the hit = %d, want %d", got, len(input))
	}
}

// Case-folded labels ([Gg][Ee][Tt]) must expand into every case variant —
// the AC scanner then matches any casing.
func TestExtractCaseFoldedLiterals(t *testing.T) {
	n := chainNFA(t, "Gg", []string{"Ee", "Tt"}, true)
	p := Build(n)
	want := []string{"GET", "GEt", "GeT", "Get", "gET", "gEt", "geT", "get"}
	sort.Strings(want)
	if got := literalStrings(p.Info().Literals); len(got) != len(want) {
		t.Fatalf("Literals = %q, want %q", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Literals = %q, want %q", got, want)
			}
		}
	}
	// Any casing is found; the jump lands at the occurrence start.
	input := []byte("zzzzgEt!")
	if got := p.NextLiteral(input, 0); got != 4 {
		t.Fatalf("NextLiteral = %d, want 4", got)
	}
}

// A root class wider than maxClassExpand stops literal extraction (the
// variant product would explode), but the class scanner stays exact.
func TestExtractWideRootClass(t *testing.T) {
	n := chainNFA(t, "abcde", []string{"x", "y"}, true)
	p := Build(n)
	if p.HasLiterals() {
		t.Fatalf("HasLiterals = true for a %d-symbol root, want false", 5)
	}
	if got := p.Info().StartClass.Count(); got != 5 {
		t.Fatalf("StartClass.Count = %d, want 5", got)
	}
	// NextLiteral must degrade to the class scanner.
	input := []byte("zzczz")
	if got, want := p.NextLiteral(input, 0), p.Next(input, 0); got != want {
		t.Fatalf("NextLiteral = %d, Next = %d; want equal fallback", got, want)
	}
}

// An all-input state that itself reports makes literal skipping unsound
// (a single byte produces a report); extraction must refuse.
func TestExtractReportingAllInput(t *testing.T) {
	b := nfa.NewBuilder("rep-root")
	q := b.AddState(nfa.ClassOf('a'), nfa.AllInput)
	b.SetFlags(q, nfa.Report)
	b.SetReportCode(q, 7)
	n := b.MustBuild()
	p := Build(n)
	if p.HasLiterals() {
		t.Fatal("HasLiterals = true with a reporting all-input state")
	}
}

// A lone all-input state yields only a 1-byte literal, which is rejected
// as useless (the class scanner already handles single bytes).
func TestExtractShortLiteralRejected(t *testing.T) {
	n := chainNFA(t, "a", nil, false)
	if p := Build(n); p.HasLiterals() {
		t.Fatal("HasLiterals = true for a 1-byte literal")
	}
}

// An impure chain child (second predecessor) truncates the literal at the
// last pure state; the truncated prefix is still a valid required literal.
func TestExtractImpureChildTruncates(t *testing.T) {
	b := nfa.NewBuilder("impure")
	root := b.AddState(nfa.ClassOf('a'), nfa.AllInput)
	mid := b.AddState(nfa.ClassOf('b'), 0)
	tail := b.AddState(nfa.ClassOf('c'), 0)
	other := b.AddState(nfa.ClassOf('x'), nfa.StartOfData)
	b.SetFlags(tail, nfa.Report)
	b.AddEdge(root, mid)
	b.AddEdge(mid, tail)
	b.AddEdge(other, tail) // second predecessor: tail is impure
	n := b.MustBuild()
	p := Build(n)
	if got := literalStrings(p.Info().Literals); len(got) != 1 || got[0] != "ab" {
		t.Fatalf("Literals = %q, want [ab] (truncated before the impure child)", got)
	}
}

func TestNextInBounds(t *testing.T) {
	p := FromInfo(Info{StartClass: nfa.ClassOf('x', 'y')})
	input := []byte("aaaaxaaya")
	if got := p.NextIn(input, 0, 3); got != 3 {
		t.Fatalf("NextIn bounded before the hit = %d, want 3", got)
	}
	if got := p.NextIn(input, 0, 5); got != 4 {
		t.Fatalf("NextIn spanning the hit = %d, want 4", got)
	}
	if got := p.NextIn(input, 5, 9); got != 7 {
		t.Fatalf("NextIn from mid = %d, want 7", got)
	}
	if got := p.NextIn(input, 8, 4); got != 4 {
		t.Fatalf("NextIn with i >= hi = %d, want hi", got)
	}
}

// The literal jump rule: for the earliest occurrence end e, the landing
// offset is max(i, e-Lmax+1) — far enough back that any trace whose
// literal ends at e is stepped in full.
func TestNextLiteralJumpRule(t *testing.T) {
	p := FromInfo(Info{
		StartClass: nfa.ClassOf('a', 'x'),
		Literals:   [][]byte{[]byte("abc"), []byte("xy")},
	})
	// Earliest end: "xy" ending at index 5; Lmax = 3; jump to 5-3+1 = 3.
	if got := p.NextLiteral([]byte("zzzzxy.."), 0); got != 3 {
		t.Fatalf("NextLiteral = %d, want 3", got)
	}
	// Occurrence ending before i+Lmax clamps to i: never move backward.
	if got := p.NextLiteral([]byte("abczz"), 0); got != 0 {
		t.Fatalf("NextLiteral at an immediate occurrence = %d, want 0", got)
	}
	// No occurrence anywhere: the whole tail is report-free.
	in := []byte("zzzzzzab")
	if got := p.NextLiteral(in, 0); got != len(in) {
		t.Fatalf("NextLiteral with no occurrence = %d, want %d", got, len(in))
	}
}

// Terminality must propagate along AC failure links: a literal that is a
// proper suffix of another's prefix still ends the scan.
func TestACSuffixTerminal(t *testing.T) {
	m := buildAC([][]byte{[]byte("abcd"), []byte("bc")})
	if got := m.firstEnd([]byte("zabcd"), 0); got != 3 {
		t.Fatalf("firstEnd = %d, want 3 (\"bc\" ends inside \"abc\")", got)
	}
	if got := m.firstEnd([]byte("ababab"), 0); got != -1 {
		t.Fatalf("firstEnd = %d, want -1", got)
	}
}

// Overlapping occurrences: the scan must report the earliest end, not the
// end of the first match it happens to complete from the root.
func TestACEarliestEnd(t *testing.T) {
	m := buildAC([][]byte{[]byte("aab"), []byte("ab")})
	// "aab" at 0..2 and "ab" at 1..2 both end at 2.
	if got := m.firstEnd([]byte("aabz"), 0); got != 2 {
		t.Fatalf("firstEnd = %d, want 2", got)
	}
	if got := m.firstEnd([]byte("aabz"), 1); got != 2 {
		t.Fatalf("firstEnd from 1 = %d, want 2", got)
	}
	if got := m.firstEnd([]byte("aabz"), 3); got != -1 {
		t.Fatalf("firstEnd from 3 = %d, want -1", got)
	}
}
