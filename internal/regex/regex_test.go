package regex

import (
	"errors"
	"fmt"
	"math/rand"
	"regexp"
	"strings"
	"testing"

	"pap/internal/engine"
	"pap/internal/nfa"
)

// matchEnds runs our automaton for the pattern over input and returns the
// set of offsets where a match ends.
func matchEnds(t *testing.T, pattern string, input []byte) map[int64]bool {
	t.Helper()
	n, err := Compile(pattern)
	if err != nil {
		t.Fatalf("Compile(%q): %v", pattern, err)
	}
	res := engine.Run(n, input)
	ends := map[int64]bool{}
	for _, r := range res.Reports {
		ends[r.Offset] = true
	}
	return ends
}

// goldenEnds computes the same set with the standard library: offset t is a
// match end iff some suffix of input[:t+1] matches the pattern (anchored at
// its end). Quadratic, for small inputs only.
func goldenEnds(t *testing.T, pattern string, input []byte) map[int64]bool {
	t.Helper()
	anchored := strings.HasPrefix(pattern, "^")
	body := strings.TrimPrefix(pattern, "^")
	var re *regexp.Regexp
	var err error
	if anchored {
		re, err = regexp.Compile(`(?s)\A(?:` + body + `)\z`)
	} else {
		re, err = regexp.Compile(`(?s)(?:` + body + `)\z`)
	}
	if err != nil {
		t.Fatalf("stdlib compile %q: %v", pattern, err)
	}
	ends := map[int64]bool{}
	for e := 1; e <= len(input); e++ {
		if anchored {
			if re.Match(input[:e]) {
				ends[int64(e-1)] = true
			}
			continue
		}
		if re.Match(input[:e]) {
			ends[int64(e-1)] = true
		}
	}
	return ends
}

func sameEnds(a, b map[int64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func checkAgainstStdlib(t *testing.T, pattern string, inputs ...string) {
	t.Helper()
	for _, in := range inputs {
		got := matchEnds(t, pattern, []byte(in))
		want := goldenEnds(t, pattern, []byte(in))
		if !sameEnds(got, want) {
			t.Errorf("pattern %q input %q:\n got %v\nwant %v", pattern, in, got, want)
		}
	}
}

func TestLiteral(t *testing.T) {
	checkAgainstStdlib(t, "abc", "abc", "xabcx", "ababc", "ab", "")
}

func TestAnchored(t *testing.T) {
	checkAgainstStdlib(t, "^abc", "abc", "xabc", "abcabc")
}

func TestAlternation(t *testing.T) {
	checkAgainstStdlib(t, "cat|dog|bird", "a cat and a dog", "bir bird", "")
	checkAgainstStdlib(t, "a(b|c)d", "abd acd add", "abcd")
}

func TestQuantifiers(t *testing.T) {
	checkAgainstStdlib(t, "ab*c", "ac abc abbbbc", "abb")
	checkAgainstStdlib(t, "ab+c", "ac abc abbbbc")
	checkAgainstStdlib(t, "ab?c", "ac abc abbc")
	checkAgainstStdlib(t, "a.*z", "a123z..z", "az", "a\nz") // '.' matches all bytes here
}

func TestDotMatchesNewline(t *testing.T) {
	// Our '.' is any byte (AP semantics); the golden uses (?s) to match.
	checkAgainstStdlib(t, "a.c", "a\nc", "axc")
}

func TestBoundedRepeat(t *testing.T) {
	checkAgainstStdlib(t, "a{3}", "aaaa", "aa")
	checkAgainstStdlib(t, "a{2,4}b", "aab aaab aaaab aaaaab", "ab")
	checkAgainstStdlib(t, "(ab){2,3}", "ababab abab ab")
	checkAgainstStdlib(t, "a{2,}b", "ab aab aaaaab")
	checkAgainstStdlib(t, "x{0,2}y", "y xy xxy xxxy")
}

func TestCharClasses(t *testing.T) {
	checkAgainstStdlib(t, "[abc]+d", "abcd", "zd", "aad")
	checkAgainstStdlib(t, "[a-f0-3]x", "ax 0x 3x gx 4x")
	checkAgainstStdlib(t, "[^a-z]z", "Az az 9z")
	checkAgainstStdlib(t, `\d+`, "a123b", "xyz")
	checkAgainstStdlib(t, `\w+@\w+`, "mail me@example now")
	checkAgainstStdlib(t, `\s`, "a b\tc")
	checkAgainstStdlib(t, `[\d]x`, "1x ax")
	checkAgainstStdlib(t, `a[-x]b`, "a-b axb azb") // literal '-' at class edge
}

func TestEscapes(t *testing.T) {
	checkAgainstStdlib(t, `a\.b`, "a.b axb")
	checkAgainstStdlib(t, `a\\b`, `a\b ab`)
	checkAgainstStdlib(t, `\x41\x42`, "AB ab")
	checkAgainstStdlib(t, "a\\tb", "a\tb a b")
}

func TestEmptyAlternationBranch(t *testing.T) {
	// "a(|b)" matches "a" and "ab"; the empty branch is fine as long as the
	// whole pattern is not nullable.
	checkAgainstStdlib(t, "a(|b)", "a ab abb")
}

func TestGroups(t *testing.T) {
	checkAgainstStdlib(t, "(ab)+c", "ababc abc ac")
	checkAgainstStdlib(t, "(?:ab|cd)e", "abe cde abcde")
	checkAgainstStdlib(t, "((a|b)c)+d", "acbcd acd")
}

func TestLiteralBrace(t *testing.T) {
	// A '{' that is not a valid repetition is a literal.
	checkAgainstStdlib(t, "a\\{b", "a{b")
	n, err := Compile("a{b}c")
	if err != nil {
		t.Fatalf("literal brace rejected: %v", err)
	}
	res := engine.Run(n, []byte("xa{b}c"))
	if len(res.Reports) != 1 || res.Reports[0].Offset != 5 {
		t.Fatalf("reports = %+v", res.Reports)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"a(b", "a)b", "[abc", "a**", "*a", "+", "?x", "a|*",
		"a\\", `a\x1`, `a\xzz`, "[z-a]", "a{4,2}", "a{999}", "[]",
		"a$", "a^b", "(a|)", "()", // nullable subexpressions that make the whole pattern nullable
	}
	for _, p := range bad {
		if n, err := Compile(p); err == nil {
			t.Errorf("Compile(%q) succeeded (%d states), want error", p, n.Len())
		}
	}
	_, err := Compile("a(b")
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Errorf("error %v does not wrap *SyntaxError", err)
	} else if se.Pattern != "a(b" {
		t.Errorf("SyntaxError.Pattern = %q", se.Pattern)
	}
	if !strings.Contains(err.Error(), "rule 0") {
		t.Errorf("error %q lacks rule index", err)
	}
}

func TestNullablePatternRejected(t *testing.T) {
	for _, p := range []string{"a*", "a?", "(a|b)*", "a{0,3}"} {
		if _, err := Compile(p); err == nil {
			t.Errorf("Compile(%q) accepted a nullable pattern", p)
		}
	}
}

func TestCompileSetCodesAndCCs(t *testing.T) {
	n, err := CompileSet("set", []Rule{
		{Pattern: "abc", Code: 100},
		{Pattern: "xyz", Code: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, ccs := n.ConnectedComponents()
	if ccs != 2 {
		t.Fatalf("CCs = %d, want 2", ccs)
	}
	res := engine.Run(n, []byte("abcxyz"))
	if len(res.Reports) != 2 {
		t.Fatalf("reports = %+v", res.Reports)
	}
	codes := map[int32]int64{}
	for _, r := range res.Reports {
		codes[r.Code] = r.Offset
	}
	if codes[100] != 2 || codes[200] != 5 {
		t.Fatalf("codes = %v", codes)
	}
}

func TestCompilePatternsIndexes(t *testing.T) {
	n, err := CompilePatterns("p", []string{"aa", "bb"})
	if err != nil {
		t.Fatal(err)
	}
	res := engine.Run(n, []byte("bb"))
	if len(res.Reports) != 1 || res.Reports[0].Code != 1 {
		t.Fatalf("reports = %+v", res.Reports)
	}
}

func TestGlushkovIsHomogeneous(t *testing.T) {
	// Every state of a compiled NFA must have exactly one class; states'
	// counts must equal the number of literal positions.
	n, err := Compile("(ab|cd)+x{2,3}[0-9]")
	if err != nil {
		t.Fatal(err)
	}
	// positions: a,b,c,d,x,x,x,[0-9] = 8
	if n.Len() != 8 {
		t.Fatalf("states = %d, want 8", n.Len())
	}
}

// randomPattern generates a random pattern from a small grammar that our
// engine and the stdlib both support.
func randomPattern(rng *rand.Rand, depth int) string {
	if depth <= 0 {
		atoms := []string{"a", "b", "c", "d", "[ab]", "[^c]", "."}
		return atoms[rng.Intn(len(atoms))]
	}
	switch rng.Intn(7) {
	case 0:
		return randomPattern(rng, depth-1) + randomPattern(rng, depth-1)
	case 1:
		return "(?:" + randomPattern(rng, depth-1) + "|" + randomPattern(rng, depth-1) + ")"
	case 2:
		return "(?:" + randomPattern(rng, depth-1) + ")+"
	case 3:
		return randomPattern(rng, depth-1) + "(?:" + randomPattern(rng, depth-1) + ")?"
	case 4:
		return "(?:" + randomPattern(rng, depth-1) + "){1,3}"
	case 5:
		return randomPattern(rng, depth-1) + "(?:" + randomPattern(rng, depth-1) + ")*"
	default:
		return randomPattern(rng, depth-1)
	}
}

// TestRandomAgainstStdlib fuzz-compares our compiler+engine against the
// standard library on random patterns and inputs.
func TestRandomAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 150; trial++ {
		pat := randomPattern(rng, 3)
		if rng.Intn(4) == 0 {
			pat = "^" + pat
		}
		in := make([]byte, 1+rng.Intn(24))
		for i := range in {
			in[i] = "abcd"[rng.Intn(4)]
		}
		n, err := Compile(pat)
		if err != nil {
			continue // nullable random pattern; skip
		}
		res := engine.Run(n, in)
		got := map[int64]bool{}
		for _, r := range res.Reports {
			got[r.Offset] = true
		}
		want := goldenEnds(t, pat, in)
		if !sameEnds(got, want) {
			t.Fatalf("trial %d: pattern %q input %q\n got %v\nwant %v", trial, pat, in, got, want)
		}
	}
}

// TestPrefixMergedEquivalence: compression must not change match ends.
func TestPrefixMergedEquivalence(t *testing.T) {
	pats := []string{"GET /index", "GET /images", "POST /login", "HTTP/1[01]"}
	n, err := CompilePatterns("http", pats)
	if err != nil {
		t.Fatal(err)
	}
	m := nfa.MergeCommonPrefixes(n)
	if m.Len() >= n.Len() {
		t.Fatalf("no compression: %d -> %d", n.Len(), m.Len())
	}
	input := []byte("GET /index HTTP/10 POST /login GET /images")
	a := engine.Run(n, input)
	bm := engine.Run(m, input)
	ka := map[string]bool{}
	for _, r := range a.Reports {
		ka[fmt.Sprintf("%d/%d", r.Offset, r.Code)] = true
	}
	kb := map[string]bool{}
	for _, r := range bm.Reports {
		kb[fmt.Sprintf("%d/%d", r.Offset, r.Code)] = true
	}
	if len(ka) != len(kb) {
		t.Fatalf("events differ: %v vs %v", ka, kb)
	}
	for k := range ka {
		if !kb[k] {
			t.Fatalf("merged automaton missing %s", k)
		}
	}
}
