// Package regex compiles a practical subset of PCRE syntax into homogeneous
// NFAs via the Glushkov (position) construction, which yields exactly the
// ANML form the AP consumes: one symbol class per state, transitions with
// no labels of their own.
//
// Supported syntax: literals, '.', escapes (\n \r \t \f \v \0 \xHH \d \D
// \w \W \s \S and escaped metacharacters), character classes with ranges
// and negation, alternation '|', groups '(...)' (non-capturing; '(?:' is
// accepted too), quantifiers '*' '+' '?' and bounded repetition '{m}',
// '{m,}', '{m,n}' (n ≤ 255), and the '^' start anchor. Patterns without a
// leading '^' match anywhere (an implicit '.*' prefix, realised as
// all-input start states, as on the AP). The '$' anchor is not supported:
// the AP has no end-of-data event; rulesets for it do not use '$'.
package regex

import (
	"fmt"
	"strconv"

	"pap/internal/nfa"
)

// node is a parsed regex AST node.
type node interface{}

type litNode struct{ class nfa.Class } // one symbol position
type catNode struct{ subs []node }
type altNode struct{ subs []node }
type starNode struct{ sub node }  // zero or more
type plusNode struct{ sub node }  // one or more
type questNode struct{ sub node } // zero or one
type emptyNode struct{}           // matches the empty string

// SyntaxError describes a parse failure with its position in the pattern.
type SyntaxError struct {
	Pattern string
	Pos     int
	Msg     string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("regex: %s at offset %d in %q", e.Msg, e.Pos, e.Pattern)
}

type parser struct {
	src string
	pos int
}

func (p *parser) fail(msg string) error {
	return &SyntaxError{Pattern: p.src, Pos: p.pos, Msg: msg}
}

func (p *parser) eof() bool     { return p.pos >= len(p.src) }
func (p *parser) peek() byte    { return p.src[p.pos] }
func (p *parser) advance() byte { b := p.src[p.pos]; p.pos++; return b }

// parse parses a full pattern, returning the AST and whether it was
// anchored at the start with '^'.
func parse(pattern string) (root node, anchored bool, err error) {
	p := &parser{src: pattern}
	if !p.eof() && p.peek() == '^' {
		anchored = true
		p.pos++
	}
	root, err = p.alternation()
	if err != nil {
		return nil, false, err
	}
	if !p.eof() {
		return nil, false, p.fail(fmt.Sprintf("unexpected %q", p.peek()))
	}
	return root, anchored, nil
}

func (p *parser) alternation() (node, error) {
	first, err := p.concat()
	if err != nil {
		return nil, err
	}
	subs := []node{first}
	for !p.eof() && p.peek() == '|' {
		p.pos++
		next, err := p.concat()
		if err != nil {
			return nil, err
		}
		subs = append(subs, next)
	}
	if len(subs) == 1 {
		return subs[0], nil
	}
	return &altNode{subs: subs}, nil
}

func (p *parser) concat() (node, error) {
	var subs []node
	for !p.eof() && p.peek() != '|' && p.peek() != ')' {
		atom, err := p.repeatable()
		if err != nil {
			return nil, err
		}
		subs = append(subs, atom)
	}
	switch len(subs) {
	case 0:
		return &emptyNode{}, nil
	case 1:
		return subs[0], nil
	}
	return &catNode{subs: subs}, nil
}

// maxBoundedRepeat caps {m,n} expansion; the AP compiler similarly unrolls
// bounded repetitions into STE chains.
const maxBoundedRepeat = 255

func (p *parser) repeatable() (node, error) {
	atom, err := p.atom()
	if err != nil {
		return nil, err
	}
	for !p.eof() {
		switch p.peek() {
		case '*':
			p.pos++
			atom = &starNode{sub: atom}
		case '+':
			p.pos++
			atom = &plusNode{sub: atom}
		case '?':
			p.pos++
			atom = &questNode{sub: atom}
		case '{':
			rep, ok, err := p.tryBrace()
			if err != nil {
				return nil, err
			}
			if !ok {
				return atom, nil
			}
			atom = expandRepeat(atom, rep.min, rep.max, rep.unbounded)
		default:
			return atom, nil
		}
	}
	return atom, nil
}

type braceRepeat struct {
	min, max  int
	unbounded bool
}

// tryBrace parses "{m}", "{m,}", "{m,n}". A '{' that does not start a valid
// repetition is treated as a literal (common in real rulesets, e.g. ClamAV
// signatures contain raw braces).
func (p *parser) tryBrace() (braceRepeat, bool, error) {
	start := p.pos
	p.pos++ // consume '{'
	numStart := p.pos
	for !p.eof() && p.peek() >= '0' && p.peek() <= '9' {
		p.pos++
	}
	if p.pos == numStart {
		p.pos = start
		return braceRepeat{}, false, nil
	}
	minV, _ := strconv.Atoi(p.src[numStart:p.pos])
	rep := braceRepeat{min: minV, max: minV}
	if !p.eof() && p.peek() == ',' {
		p.pos++
		numStart = p.pos
		for !p.eof() && p.peek() >= '0' && p.peek() <= '9' {
			p.pos++
		}
		if p.pos == numStart {
			rep.unbounded = true
		} else {
			rep.max, _ = strconv.Atoi(p.src[numStart:p.pos])
		}
	}
	if p.eof() || p.peek() != '}' {
		p.pos = start
		return braceRepeat{}, false, nil
	}
	p.pos++ // consume '}'
	if rep.max > maxBoundedRepeat || rep.min > maxBoundedRepeat {
		return braceRepeat{}, false, &SyntaxError{Pattern: p.src, Pos: start,
			Msg: fmt.Sprintf("repetition bound exceeds %d", maxBoundedRepeat)}
	}
	if !rep.unbounded && rep.max < rep.min {
		return braceRepeat{}, false, &SyntaxError{Pattern: p.src, Pos: start,
			Msg: "repetition max < min"}
	}
	return rep, true, nil
}

// expandRepeat unrolls X{m,n} (or X{m,} when unbounded) into concatenation,
// optionals and a trailing star. The sub-AST is shared between copies; the
// Glushkov compiler duplicates positions when it walks the tree via
// countPositions/compile, so sharing is only safe because the AST is
// immutable — which it is.
func expandRepeat(sub node, min, max int, unbounded bool) node {
	var subs []node
	for i := 0; i < min; i++ {
		subs = append(subs, sub)
	}
	if unbounded {
		subs = append(subs, &starNode{sub: sub})
	} else {
		for i := min; i < max; i++ {
			subs = append(subs, &questNode{sub: sub})
		}
	}
	switch len(subs) {
	case 0:
		return &emptyNode{}
	case 1:
		return subs[0]
	}
	return &catNode{subs: subs}
}

func (p *parser) atom() (node, error) {
	switch c := p.peek(); c {
	case '(':
		p.pos++
		// Accept and ignore the non-capturing group marker.
		if p.pos+1 < len(p.src) && p.peek() == '?' && p.src[p.pos+1] == ':' {
			p.pos += 2
		}
		sub, err := p.alternation()
		if err != nil {
			return nil, err
		}
		if p.eof() || p.peek() != ')' {
			return nil, p.fail("missing ')'")
		}
		p.pos++
		return sub, nil
	case ')':
		return nil, p.fail("unexpected ')'")
	case '[':
		cls, err := p.class()
		if err != nil {
			return nil, err
		}
		return &litNode{class: cls}, nil
	case '.':
		p.pos++
		return &litNode{class: nfa.AnyClass()}, nil
	case '\\':
		cls, err := p.escape()
		if err != nil {
			return nil, err
		}
		return &litNode{class: cls}, nil
	case '*', '+', '?':
		return nil, p.fail(fmt.Sprintf("dangling quantifier %q", c))
	case '$':
		return nil, p.fail("'$' end anchor is not supported (no end-of-data event on the AP)")
	case '^':
		return nil, p.fail("'^' is only valid at the start of the pattern")
	default:
		p.pos++
		return &litNode{class: nfa.ClassOf(c)}, nil
	}
}

// escape parses a '\'-escape and returns its symbol class.
func (p *parser) escape() (nfa.Class, error) {
	p.pos++ // consume '\'
	if p.eof() {
		return nfa.Class{}, p.fail("trailing backslash")
	}
	c := p.advance()
	switch c {
	case 'n':
		return nfa.ClassOf('\n'), nil
	case 'r':
		return nfa.ClassOf('\r'), nil
	case 't':
		return nfa.ClassOf('\t'), nil
	case 'f':
		return nfa.ClassOf('\f'), nil
	case 'v':
		return nfa.ClassOf('\v'), nil
	case '0':
		return nfa.ClassOf(0), nil
	case 'a':
		return nfa.ClassOf(7), nil
	case 'e':
		return nfa.ClassOf(27), nil
	case 'd':
		return classDigit, nil
	case 'D':
		return classDigit.Negate(), nil
	case 'w':
		return classWord, nil
	case 'W':
		return classWord.Negate(), nil
	case 's':
		return classSpace, nil
	case 'S':
		return classSpace.Negate(), nil
	case 'x':
		if p.pos+1 >= len(p.src) {
			return nfa.Class{}, p.fail("truncated \\x escape")
		}
		hi, ok1 := unhex(p.advance())
		lo, ok2 := unhex(p.advance())
		if !ok1 || !ok2 {
			return nfa.Class{}, p.fail("invalid \\x escape")
		}
		return nfa.ClassOf(hi<<4 | lo), nil
	default:
		// Escaped metacharacter or any other byte: literal.
		return nfa.ClassOf(c), nil
	}
}

// class parses a bracket expression "[...]" including negation and ranges.
func (p *parser) class() (nfa.Class, error) {
	p.pos++ // consume '['
	var cls nfa.Class
	negate := false
	if !p.eof() && p.peek() == '^' {
		negate = true
		p.pos++
	}
	first := true
	for {
		if p.eof() {
			return nfa.Class{}, p.fail("missing ']'")
		}
		c := p.peek()
		if c == ']' && !first {
			p.pos++
			break
		}
		first = false
		var lo nfa.Class
		if c == '\\' {
			var err error
			lo, err = p.escape()
			if err != nil {
				return nfa.Class{}, err
			}
		} else {
			p.pos++
			lo = nfa.ClassOf(c)
		}
		// Range "a-z": only when lo is a single symbol and '-' is not last.
		if !p.eof() && p.peek() == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] != ']' && lo.Count() == 1 {
			p.pos++ // consume '-'
			var hiCls nfa.Class
			if p.peek() == '\\' {
				var err error
				hiCls, err = p.escape()
				if err != nil {
					return nfa.Class{}, err
				}
			} else {
				hiCls = nfa.ClassOf(p.advance())
			}
			if hiCls.Count() != 1 {
				return nfa.Class{}, p.fail("invalid range endpoint")
			}
			loSym, hiSym := lo.Pick(0), hiCls.Pick(0)
			if hiSym < loSym {
				return nfa.Class{}, p.fail("reversed range")
			}
			cls.AddRange(loSym, hiSym)
			continue
		}
		cls = cls.Union(lo)
	}
	if negate {
		cls = cls.Negate()
	}
	if cls.Empty() {
		return nfa.Class{}, p.fail("empty character class")
	}
	return cls, nil
}

func unhex(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

var (
	classDigit = nfa.ClassRange('0', '9')
	classWord  = func() nfa.Class {
		c := nfa.ClassRange('a', 'z')
		c.AddRange('A', 'Z')
		c.AddRange('0', '9')
		c.Add('_')
		return c
	}()
	classSpace = nfa.ClassOf(' ', '\t', '\n', '\r', '\f', '\v')
)
