package regex

import (
	"testing"
)

// TestSyntaxMatrix is a table-driven sweep over the supported grammar:
// each row gives a pattern, inputs that must match (as a substring ending
// anywhere), and inputs that must not.
func TestSyntaxMatrix(t *testing.T) {
	cases := []struct {
		pattern string
		match   []string
		reject  []string
	}{
		// Literals and escapes.
		{`abc`, []string{"abc", "zabc"}, []string{"ab", "axc"}},
		{`a\+b`, []string{"a+b"}, []string{"aab", "ab"}},
		{`\x00\x01`, []string{"\x00\x01"}, []string{"\x00\x02"}},
		{`\a\e`, []string{"\x07\x1b"}, []string{"ae"}},
		{`\0x`, []string{"\x00x"}, []string{"0x"}},

		// Classes.
		{`[abc]`, []string{"a", "b", "c"}, []string{"d"}},
		{`[^abc]`, []string{"d", "z", "1"}, []string{"a", "c"}},
		{`[a-cx-z]`, []string{"b", "y"}, []string{"d", "w"}},
		{`[\x41-\x43]`, []string{"A", "B", "C"}, []string{"D"}},
		{`[-a]`, []string{"-", "a"}, []string{"b"}},
		{`[a-]`, []string{"-", "a"}, []string{"b"}},
		{`\d\d`, []string{"42"}, []string{"4a"}},
		{`\D`, []string{"x"}, []string{"7"}},
		{`\w\W`, []string{"a "}, []string{"ab"}},
		{`\s\S`, []string{" x"}, []string{"  "}},

		// Quantifiers.
		{`ab*c`, []string{"ac", "abc", "abbbc"}, []string{"adc"}},
		{`ab+c`, []string{"abc", "abbc"}, []string{"ac"}},
		{`ab?c`, []string{"ac", "abc"}, []string{"abbc"}},
		{`a{3}`, []string{"aaa", "aaaa"}, []string{"aa"}},
		{`a{2,3}b`, []string{"aab", "aaab"}, []string{"ab"}},
		{`a{2,}b`, []string{"aab", "aaaaab"}, []string{"ab"}},
		{`ba{0,2}c`, []string{"bc", "bac", "baac"}, []string{"baaac"}},
		{`(ab){2}`, []string{"abab"}, []string{"ab"}},

		// Alternation and grouping.
		{`cat|dog`, []string{"cat", "dog", "hotdog"}, []string{"cow"}},
		{`a(b|c)d`, []string{"abd", "acd"}, []string{"aed", "ad"}},
		{`(a|b)(c|d)`, []string{"ac", "bd", "bc"}, []string{"ab", "cd"}},
		{`(?:xy)+z`, []string{"xyz", "xyxyz"}, []string{"xz"}},
		{`a(|b)c`, []string{"ac", "abc"}, []string{"axc"}},

		// Dot and dotstar.
		{`a.c`, []string{"abc", "a\nc", "a.c"}, []string{"ac", "abbc"}},
		{`a.*z`, []string{"az", "a123z", "a\n\nz"}, []string{"a", "z"}},
		{`a.+z`, []string{"abz", "a12z"}, []string{"az"}},

		// Anchors.
		{`^go`, []string{"go", "gopher"}, []string{"ago"}},
		{`^[ab]+$x`, nil, nil}, // invalid ('$'), checked below

		// Literal braces.
		{`a{b`, []string{"a{b"}, []string{"ab"}},
		{`x{}y`, []string{"x{}y"}, []string{"xy"}},
	}
	for _, c := range cases {
		if c.match == nil && c.reject == nil {
			if _, err := Compile(c.pattern); err == nil {
				t.Errorf("pattern %q compiled, want error", c.pattern)
			}
			continue
		}
		n, err := Compile(c.pattern)
		if err != nil {
			t.Errorf("Compile(%q): %v", c.pattern, err)
			continue
		}
		for _, in := range c.match {
			if len(matchEnds(t, c.pattern, []byte(in))) == 0 {
				t.Errorf("pattern %q did not match %q (states=%d)", c.pattern, in, n.Len())
			}
		}
		for _, in := range c.reject {
			if ends := matchEnds(t, c.pattern, []byte(in)); len(ends) != 0 {
				t.Errorf("pattern %q matched %q at %v", c.pattern, in, ends)
			}
		}
	}
}

// TestStateCounts pins the Glushkov size of representative patterns: one
// state per literal position, independent of operators.
func TestStateCounts(t *testing.T) {
	cases := map[string]int{
		"abc":        3,
		"a|b|c":      3,
		"(abc)+":     3,
		"a.*b":       3,
		"x{4}":       4,
		"x{2,4}":     4,
		"[abc][def]": 2,
		"(ab|cd)ef":  6,
	}
	for pat, want := range cases {
		n, err := Compile(pat)
		if err != nil {
			t.Errorf("Compile(%q): %v", pat, err)
			continue
		}
		if n.Len() != want {
			t.Errorf("states(%q) = %d, want %d", pat, n.Len(), want)
		}
	}
}
