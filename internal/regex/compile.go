package regex

import (
	"fmt"

	"pap/internal/nfa"
)

// glushkov computes the position automaton of an AST: one state ("position")
// per literal/class occurrence, which is exactly the homogeneous form the
// AP executes. Because expandRepeat shares sub-ASTs, positions are assigned
// during the walk, so shared subtrees are correctly duplicated.
type glushkov struct {
	classes []nfa.Class
	follow  [][]int
}

type ginfo struct {
	nullable bool
	first    []int
	last     []int
}

func (g *glushkov) walk(nd node) ginfo {
	switch t := nd.(type) {
	case *emptyNode:
		return ginfo{nullable: true}
	case *litNode:
		p := len(g.classes)
		g.classes = append(g.classes, t.class)
		g.follow = append(g.follow, nil)
		return ginfo{first: []int{p}, last: []int{p}}
	case *catNode:
		acc := ginfo{nullable: true}
		for _, sub := range t.subs {
			in := g.walk(sub)
			// follow(last(acc)) += first(in)
			for _, l := range acc.last {
				g.follow[l] = append(g.follow[l], in.first...)
			}
			if acc.nullable {
				acc.first = append(acc.first, in.first...)
			}
			if in.nullable {
				acc.last = append(acc.last, in.last...)
			} else {
				acc.last = in.last
			}
			acc.nullable = acc.nullable && in.nullable
		}
		return acc
	case *altNode:
		var acc ginfo
		for _, sub := range t.subs {
			in := g.walk(sub)
			acc.nullable = acc.nullable || in.nullable
			acc.first = append(acc.first, in.first...)
			acc.last = append(acc.last, in.last...)
		}
		return acc
	case *starNode:
		in := g.walk(t.sub)
		for _, l := range in.last {
			g.follow[l] = append(g.follow[l], in.first...)
		}
		in.nullable = true
		return in
	case *plusNode:
		in := g.walk(t.sub)
		for _, l := range in.last {
			g.follow[l] = append(g.follow[l], in.first...)
		}
		return in
	case *questNode:
		in := g.walk(t.sub)
		in.nullable = true
		return in
	default:
		panic(fmt.Sprintf("regex: unknown AST node %T", nd))
	}
}

// Rule pairs a pattern with the report code its matches carry.
type Rule struct {
	Pattern string
	Code    int32
}

// CompileSet compiles a ruleset into a single homogeneous NFA named name.
// Each rule becomes an independent sub-automaton (its own connected
// component unless MergeCommonPrefixes later folds shared prefixes);
// matches of rule i report with code rules[i].Code. Unanchored rules match
// anywhere: their first positions become all-input start states, the AP
// realisation of an implicit '.*' prefix.
func CompileSet(name string, rules []Rule) (*nfa.NFA, error) {
	b := nfa.NewBuilder(name)
	for ri, rule := range rules {
		root, anchored, err := parse(rule.Pattern)
		if err != nil {
			return nil, fmt.Errorf("rule %d: %w", ri, err)
		}
		g := &glushkov{}
		in := g.walk(root)
		if in.nullable {
			return nil, fmt.Errorf("rule %d: pattern %q matches the empty string", ri, rule.Pattern)
		}
		base := nfa.StateID(b.Len())
		startFlag := nfa.AllInput
		if anchored {
			startFlag = nfa.StartOfData
		}
		for _, cls := range g.classes {
			b.AddState(cls, 0)
		}
		for _, p := range in.first {
			b.SetFlags(base+nfa.StateID(p), startFlag)
		}
		for _, p := range in.last {
			b.SetFlags(base+nfa.StateID(p), nfa.Report)
			b.SetReportCode(base+nfa.StateID(p), rule.Code)
		}
		for p, fs := range g.follow {
			for _, q := range fs {
				b.AddEdge(base+nfa.StateID(p), base+nfa.StateID(q))
			}
		}
	}
	return b.Build()
}

// CompilePatterns is CompileSet with report codes equal to rule indices.
func CompilePatterns(name string, patterns []string) (*nfa.NFA, error) {
	rules := make([]Rule, len(patterns))
	for i, p := range patterns {
		rules[i] = Rule{Pattern: p, Code: int32(i)}
	}
	return CompileSet(name, rules)
}

// Compile compiles a single pattern; matches report with code 0.
func Compile(pattern string) (*nfa.NFA, error) {
	return CompilePatterns(pattern, []string{pattern})
}
