package regex

import (
	"regexp"
	"strings"
	"testing"

	"pap/internal/engine"
)

// FuzzCompileAgainstStdlib cross-validates the compiler+engine against the
// standard library on arbitrary pattern/input pairs: whenever both accept
// the pattern, the set of match-end offsets must agree.
func FuzzCompileAgainstStdlib(f *testing.F) {
	seeds := []struct{ pat, in string }{
		{"abc", "xxabcxx"},
		{"a.c", "a\nc abc"},
		{"(ab|cd)+e", "ababcde"},
		{"[a-f]{2,4}x", "abcdx"},
		{"^anchor", "anchored"},
		{"a(|b)c", "ac abc"},
		{`\d+\.\d+`, "pi=3.14"},
	}
	for _, s := range seeds {
		f.Add(s.pat, s.in)
	}
	f.Fuzz(func(t *testing.T, pat, in string) {
		if len(pat) > 64 || len(in) > 128 {
			return
		}
		n, err := Compile(pat)
		if err != nil {
			return // our subset rejects it; nothing to compare
		}
		if n.Len() > 512 {
			return // pathological expansion; skip for fuzz speed
		}
		anchored := strings.HasPrefix(pat, "^")
		body := strings.TrimPrefix(pat, "^")
		var re *regexp.Regexp
		if anchored {
			re, err = regexp.Compile(`(?s)\A(?:` + body + `)\z`)
		} else {
			re, err = regexp.Compile(`(?s)(?:` + body + `)\z`)
		}
		if err != nil {
			return // pattern valid for us but not stdlib (e.g. nested repeat quirks)
		}
		res := engine.Run(n, []byte(in))
		got := map[int64]bool{}
		for _, r := range res.Reports {
			got[r.Offset] = true
		}
		want := map[int64]bool{}
		for e := 1; e <= len(in); e++ {
			if re.MatchString(in[:e]) {
				want[int64(e-1)] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("pattern %q input %q: got %v want %v", pat, in, got, want)
		}
		for k := range got {
			if !want[k] {
				t.Fatalf("pattern %q input %q: spurious end %d", pat, in, k)
			}
		}
	})
}
