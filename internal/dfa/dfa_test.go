package dfa

import (
	"errors"
	"math/rand"
	"testing"

	"pap/internal/engine"
	"pap/internal/nfa"
	"pap/internal/regex"
)

func mustCompile(t *testing.T, patterns ...string) *nfa.NFA {
	t.Helper()
	n, err := regex.CompilePatterns("t", patterns)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// sameEvents compares DFA reports with NFA engine reports as
// (offset, code) sets.
func sameEvents(dr []Report, nr []engine.Report) bool {
	type ev struct {
		off  int64
		code int32
	}
	a := map[ev]bool{}
	for _, r := range dr {
		a[ev{r.Offset, r.Code}] = true
	}
	b := map[ev]bool{}
	for _, r := range nr {
		b[ev{r.Offset, r.Code}] = true
	}
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func TestConvertSimple(t *testing.T) {
	n := mustCompile(t, "abc")
	d, err := Convert(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() < 3 {
		t.Fatalf("DFA states = %d", d.Len())
	}
	input := []byte("zzabczzabc")
	if !sameEvents(d.Run(input), engine.Run(n, input).Reports) {
		t.Fatal("DFA and NFA disagree")
	}
}

func TestConvertAnchored(t *testing.T) {
	n := mustCompile(t, "^abc")
	d, err := Convert(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range []string{"abc", "zabc", "abcabc"} {
		if !sameEvents(d.Run([]byte(in)), engine.Run(n, []byte(in)).Reports) {
			t.Fatalf("disagree on %q", in)
		}
	}
}

func TestConvertReportCodesOnSinkStates(t *testing.T) {
	// Two rules whose reporting states have no successors and identical
	// (empty) successor sets but different codes: the tagged identity must
	// keep them apart.
	n := mustCompile(t, "ax", "bx")
	d, err := Convert(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("ax bx abx")
	if !sameEvents(d.Run(input), engine.Run(n, input).Reports) {
		t.Fatal("report codes lost in conversion")
	}
}

func TestConvertLimit(t *testing.T) {
	// Classic exponential case: .*a.{12} needs ~2^12 DFA states.
	n := mustCompile(t, "a.{12}b")
	_, err := Convert(n, 512)
	var lim *ConvertLimitExceeded
	if !errors.As(err, &lim) {
		t.Fatalf("expected ConvertLimitExceeded, got %v", err)
	}
	if lim.Limit != 512 || lim.Explored < 512 {
		t.Fatalf("limit error = %+v", lim)
	}
	if lim.Error() == "" {
		t.Fatal("empty error text")
	}
}

// TestConvertEquivalenceRandom: subset construction must agree with the
// NFA engine on random automata and inputs.
func TestConvertEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := randomNFA(rng, 2+rng.Intn(12))
		d, err := Convert(n, 1<<14)
		if err != nil {
			continue // blow-up: acceptable, tested above
		}
		input := make([]byte, 100)
		for i := range input {
			input[i] = "abcd"[rng.Intn(4)]
		}
		if !sameEvents(d.Run(input), engine.Run(n, input).Reports) {
			t.Fatalf("trial %d: DFA and NFA disagree", trial)
		}
	}
}

func randomNFA(rng *rand.Rand, states int) *nfa.NFA {
	b := nfa.NewBuilder("rand")
	alpha := []byte("abcd")
	for i := 0; i < states; i++ {
		var cls nfa.Class
		for _, s := range alpha {
			if rng.Intn(3) == 0 {
				cls.Add(s)
			}
		}
		if cls.Empty() {
			cls.Add(alpha[rng.Intn(len(alpha))])
		}
		var flags nfa.Flags
		switch rng.Intn(6) {
		case 0:
			flags |= nfa.AllInput
		case 1:
			flags |= nfa.StartOfData
		}
		if rng.Intn(5) == 0 {
			flags |= nfa.Report
		}
		b.AddState(cls, flags)
	}
	b.SetFlags(0, nfa.StartOfData)
	for i := 0; i < states; i++ {
		for k := 0; k < rng.Intn(3); k++ {
			b.AddEdge(nfa.StateID(i), nfa.StateID(rng.Intn(states)))
		}
	}
	return b.MustBuild()
}

func TestRunFrom(t *testing.T) {
	n := mustCompile(t, "ab")
	d, err := Convert(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("abab")
	full := d.Run(input)
	// Split at 2 and stitch.
	mid, first := d.RunFrom(0, input[:2], 0)
	_, second := d.RunFrom(mid, input[2:], 2)
	stitched := append(first, second...)
	if len(stitched) != len(full) {
		t.Fatalf("stitched %d events, full %d", len(stitched), len(full))
	}
	for i := range full {
		if full[i] != stitched[i] {
			t.Fatalf("event %d: %+v vs %+v", i, full[i], stitched[i])
		}
	}
}

// TestRunParallelExact: the Mytkowicz matcher must equal sequential DFA
// execution for any chunking.
func TestRunParallelExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := mustCompile(t, "attack", "defen[cs]e", "(ab|cd)+e")
	d, err := Convert(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	input := make([]byte, 4096)
	corpus := "attack defence abcde xyz "
	for i := range input {
		input[i] = corpus[rng.Intn(len(corpus))]
	}
	seq := d.Run(input)
	for _, chunks := range []int{1, 2, 7, 16, 64} {
		res, err := d.RunParallel(input, chunks, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Reports) != len(seq) {
			t.Fatalf("chunks=%d: %d events, want %d", chunks, len(res.Reports), len(seq))
		}
		for i := range seq {
			if seq[i] != res.Reports[i] {
				t.Fatalf("chunks=%d event %d: %+v vs %+v", chunks, i, seq[i], res.Reports[i])
			}
		}
		if chunks > 1 && res.InitialLanes != d.Len() {
			t.Fatalf("InitialLanes = %d, want %d", res.InitialLanes, d.Len())
		}
		if res.Speedup <= 0 || res.SeqSteps != int64(len(input)) {
			t.Fatalf("stats = %+v", res)
		}
	}
}

// TestRunParallelConvergence: lanes must collapse quickly on real-ish
// rulesets — the observation both Mytkowicz and PAP rely on.
func TestRunParallelConvergence(t *testing.T) {
	n := mustCompile(t, "abcdef")
	d, err := Convert(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	input := make([]byte, 8192)
	for i := range input {
		input[i] = "abcdefxyz"[rng.Intn(9)]
	}
	res, err := d.RunParallel(input, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgLanes >= float64(d.Len())/2 {
		t.Fatalf("lanes did not converge: avg %.1f of %d", res.AvgLanes, d.Len())
	}
	if res.Speedup < 2 {
		t.Fatalf("speedup %.2f too low for a converging DFA", res.Speedup)
	}
}

func TestRunParallelErrors(t *testing.T) {
	n := mustCompile(t, "ab")
	d, _ := Convert(n, 0)
	if _, err := d.RunParallel([]byte("x"), 0, 8); err == nil {
		t.Fatal("chunks=0 accepted")
	}
	// More chunks than input: clamps.
	res, err := d.RunParallel([]byte("ab"), 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chunks > 2 {
		t.Fatalf("chunks = %d", res.Chunks)
	}
}

// TestRandomParallelEquivalence: property over random DFAs and chunkings.
func TestRandomParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := randomNFA(rng, 2+rng.Intn(10))
		d, err := Convert(n, 1<<12)
		if err != nil {
			continue
		}
		input := make([]byte, 200+rng.Intn(400))
		for i := range input {
			input[i] = "abcd"[rng.Intn(4)]
		}
		seq := d.Run(input)
		res, err := d.RunParallel(input, 1+rng.Intn(12), 1+rng.Intn(20))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Reports) != len(seq) {
			t.Fatalf("trial %d: %d events, want %d", trial, len(res.Reports), len(seq))
		}
		for i := range seq {
			if seq[i] != res.Reports[i] {
				t.Fatalf("trial %d event %d differs", trial, i)
			}
		}
	}
}
