// Package dfa provides deterministic finite automata: subset-construction
// conversion from the homogeneous NFAs of package nfa, a table-driven
// engine, and the enumerative data-parallel DFA matcher of Mytkowicz,
// Musuvathi & Schulte (ASPLOS 2014) — the prior work ([25] in the paper)
// whose enumeration-plus-convergence idea PAP generalises to NFAs on the
// AP. The paper argues DFA conversion is untenable for its rulesets
// (exponential state growth, §2.1); Convert's state cap makes that blow-up
// observable and testable.
package dfa

import (
	"fmt"
	"sort"

	"pap/internal/nfa"
)

// StateID identifies a DFA state. State 0 is always the start state.
type StateID int32

// DFA is a dense-transition-table automaton over full 8-bit symbols.
// A DFA state is a pair (enabled NFA subset, report codes fired on entry):
// folding the fired codes into the state identity keeps report semantics
// exact even for reporting NFA states with no successors.
type DFA struct {
	name string
	// next[s*256+sym] is the successor of state s on sym.
	next []StateID
	// reports[s] lists the rule codes that fire when state s is entered
	// (homogeneous-NFA semantics report on the symbol completing a match,
	// which subset construction preserves).
	reports [][]int32
}

// Name returns the automaton's name.
func (d *DFA) Name() string { return d.name }

// Len returns the number of DFA states.
func (d *DFA) Len() int { return len(d.reports) }

// Next returns the successor of s on sym.
func (d *DFA) Next(s StateID, sym byte) StateID {
	return d.next[int(s)*256+int(sym)]
}

// Reports returns the rule codes fired on entering s (nil for most states).
func (d *DFA) Reports(s StateID) []int32 { return d.reports[s] }

// ConvertLimitExceeded is returned when subset construction would exceed
// the state cap — the blow-up the paper cites as the reason DFAs cannot
// replace NFAs for its rulesets.
type ConvertLimitExceeded struct {
	Name     string
	Limit    int
	Explored int
}

func (e *ConvertLimitExceeded) Error() string {
	return fmt.Sprintf("dfa: converting %q exceeded %d states (explored %d)",
		e.Name, e.Limit, e.Explored)
}

// Convert builds the equivalent DFA of a homogeneous NFA via subset
// construction, up to maxStates (0 = 1<<20). The DFA's report events match
// the NFA's exactly: entering the successor of (s, sym) fires code c iff
// some reporting NFA state with code c fires on sym in s's subset.
func Convert(n *nfa.NFA, maxStates int) (*DFA, error) {
	if maxStates <= 0 {
		maxStates = 1 << 20
	}
	isAll := make([]bool, n.Len())
	for _, q := range n.AllInputStates() {
		isAll[q] = true
	}

	// step computes the successor subset (excluding all-input states,
	// which carry no information — they are enabled everywhere and
	// re-injected each step) and the fired report codes.
	mark := make([]int32, n.Len())
	epoch := int32(0)
	step := func(cur []nfa.StateID, sym byte) (next []nfa.StateID, codes []int32) {
		epoch++
		fire := func(q nfa.StateID) {
			st := n.State(q)
			if !st.Label.Test(sym) {
				return
			}
			if st.Flags&nfa.Report != 0 {
				codes = append(codes, st.ReportCode)
			}
			for _, c := range n.Succ(q) {
				if !isAll[c] && mark[c] != epoch {
					mark[c] = epoch
					next = append(next, c)
				}
			}
		}
		for _, q := range cur {
			fire(q)
		}
		for _, q := range n.AllInputStates() {
			fire(q)
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		codes = dedupeCodes(codes)
		return next, codes
	}

	type key string
	encode := func(ids []nfa.StateID, codes []int32) key {
		buf := make([]byte, 0, 4*len(ids)+4*len(codes)+1)
		for _, q := range ids {
			buf = append(buf, byte(q), byte(q>>8), byte(q>>16), byte(q>>24))
		}
		buf = append(buf, 0xff)
		for _, c := range codes {
			buf = append(buf, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
		}
		return key(buf)
	}

	start := make([]nfa.StateID, 0, len(n.StartStates()))
	for _, q := range n.StartStates() {
		if !isAll[q] {
			start = append(start, q)
		}
	}
	sort.Slice(start, func(i, j int) bool { return start[i] < start[j] })

	d := &DFA{name: n.Name()}
	index := map[key]StateID{}
	var worklist [][]nfa.StateID
	add := func(ids []nfa.StateID, codes []int32) (StateID, error) {
		k := encode(ids, codes)
		if id, ok := index[k]; ok {
			return id, nil
		}
		if len(index) >= maxStates {
			return 0, &ConvertLimitExceeded{Name: n.Name(), Limit: maxStates, Explored: len(index)}
		}
		id := StateID(len(index))
		index[k] = id
		worklist = append(worklist, append([]nfa.StateID(nil), ids...))
		d.reports = append(d.reports, codes)
		return id, nil
	}
	if _, err := add(start, nil); err != nil {
		return nil, err
	}
	for head := 0; head < len(worklist); head++ {
		cur := worklist[head]
		row := make([]StateID, 256)
		for sym := 0; sym < 256; sym++ {
			next, codes := step(cur, byte(sym))
			id, err := add(next, codes)
			if err != nil {
				return nil, err
			}
			row[sym] = id
		}
		d.next = append(d.next, row...)
	}
	return d, nil
}

func dedupeCodes(codes []int32) []int32 {
	if len(codes) <= 1 {
		return codes
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
	out := codes[:1]
	for _, c := range codes[1:] {
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}

// Report is one DFA match event.
type Report struct {
	Offset int64
	Code   int32
}

// Run executes the DFA over input from the start state, returning all
// report events.
func (d *DFA) Run(input []byte) []Report {
	var out []Report
	s := StateID(0)
	for i, sym := range input {
		s = d.Next(s, sym)
		for _, c := range d.Reports(s) {
			out = append(out, Report{Offset: int64(i), Code: c})
		}
	}
	return out
}

// RunFrom executes the DFA over input starting in state s0, returning the
// events and the final state — the building block of enumerative
// parallelization.
func (d *DFA) RunFrom(s0 StateID, input []byte, base int64) (final StateID, out []Report) {
	s := s0
	for i, sym := range input {
		s = d.Next(s, sym)
		for _, c := range d.Reports(s) {
			out = append(out, Report{Offset: base + int64(i), Code: c})
		}
	}
	return s, out
}
