package dfa

import (
	"fmt"
	"sort"
)

// RunParallel is the enumerative data-parallel DFA matcher of Mytkowicz et
// al. (the paper's [25]), the CPU-side precursor of PAP:
//
//   - the input splits into chunks; chunk 1 starts from the start state,
//     and every other chunk enumerates all DFA states as possible entry
//     states ("lanes");
//   - lanes that converge to the same current state merge (checked every
//     checkEvery symbols — the property PAP's §3.3.3 convergence checks
//     inherit);
//   - phase 1 produces each chunk's transition function; composing them
//     yields every chunk's true entry state, and phase 2 replays each
//     chunk from it to emit exact reports.
//
// The returned statistics model the algorithm's cost on idealised parallel
// hardware with one processor per chunk: a chunk's phase-1 cost is the sum
// of live lanes over its symbols (SIMD gathers in the original), phase 2
// adds one pass, and the sequential baseline is one transition per symbol.
type ParallelResult struct {
	Reports []Report
	Chunks  int

	// InitialLanes is the enumeration width (= DFA states) of chunks > 1.
	InitialLanes int
	// AvgLanes is the time-averaged live lanes across enumerated chunks.
	AvgLanes float64
	// LaneSteps is the total phase-1 transition count across chunks.
	LaneSteps int64
	// CriticalPath is the modelled parallel completion cost: the largest
	// per-chunk (phase-1 + replay) transition count.
	CriticalPath int64
	// SeqSteps is the sequential baseline cost (one transition/symbol).
	SeqSteps int64
	// Speedup is SeqSteps / CriticalPath.
	Speedup float64
}

// RunParallel runs the matcher with the given chunk count, merging
// converged lanes every checkEvery symbols (0 = every 16).
func (d *DFA) RunParallel(input []byte, chunks, checkEvery int) (*ParallelResult, error) {
	if chunks < 1 {
		return nil, fmt.Errorf("dfa: chunks = %d", chunks)
	}
	if chunks > len(input) {
		chunks = len(input)
		if chunks == 0 {
			chunks = 1
		}
	}
	if checkEvery <= 0 {
		checkEvery = 16
	}
	res := &ParallelResult{
		Chunks:       chunks,
		InitialLanes: d.Len(),
		SeqSteps:     int64(len(input)),
	}

	type chunk struct {
		start, end int
		// curOf[origin] = current state of the lane that started in state
		// `origin` (compressed via lane dedup below).
		entryToFinal []StateID
		cost         int64
	}
	cs := make([]chunk, chunks)
	for j := range cs {
		cs[j].start = j * len(input) / chunks
		cs[j].end = (j + 1) * len(input) / chunks
	}

	var laneTime int64 // Σ lanes over symbols, enumerated chunks only
	var laneSymbols int64

	// Phase 1: per-chunk transition functions.
	for j := range cs {
		c := &cs[j]
		if j == 0 {
			// Known entry: a single lane.
			s := StateID(0)
			for i := c.start; i < c.end; i++ {
				s = d.Next(s, input[i])
			}
			c.entryToFinal = []StateID{s}
			c.cost = int64(c.end - c.start)
			res.LaneSteps += c.cost
			continue
		}
		// Enumerate every DFA state; dedupe lanes as they converge.
		curOf := make([]StateID, d.Len()) // origin -> lane index
		lanes := make([]StateID, d.Len()) // lane index -> current state
		for s := range lanes {
			lanes[s] = StateID(s)
			curOf[s] = StateID(s)
		}
		sinceCheck := 0
		for i := c.start; i < c.end; i++ {
			sym := input[i]
			for l := range lanes {
				lanes[l] = d.Next(lanes[l], sym)
			}
			c.cost += int64(len(lanes))
			laneTime += int64(len(lanes))
			laneSymbols++
			sinceCheck++
			if sinceCheck >= checkEvery {
				sinceCheck = 0
				lanes, curOf = dedupeLanes(lanes, curOf)
			}
		}
		c.entryToFinal = make([]StateID, d.Len())
		for origin := range c.entryToFinal {
			c.entryToFinal[origin] = lanes[curOf[origin]]
		}
		res.LaneSteps += c.cost
	}

	// Compose: entry of chunk j+1 = final of chunk j from its true entry.
	entries := make([]StateID, chunks)
	entries[0] = 0
	state := cs[0].entryToFinal[0]
	for j := 1; j < chunks; j++ {
		entries[j] = state
		state = cs[j].entryToFinal[state]
	}

	// Phase 2: parallel replay from true entries for exact reports.
	for j := range cs {
		c := &cs[j]
		_, reports := d.RunFrom(entries[j], input[c.start:c.end], int64(c.start))
		res.Reports = append(res.Reports, reports...)
		c.cost += int64(c.end - c.start)
		if c.cost > res.CriticalPath {
			res.CriticalPath = c.cost
		}
	}
	sort.Slice(res.Reports, func(a, b int) bool {
		if res.Reports[a].Offset != res.Reports[b].Offset {
			return res.Reports[a].Offset < res.Reports[b].Offset
		}
		return res.Reports[a].Code < res.Reports[b].Code
	})
	if laneSymbols > 0 {
		res.AvgLanes = float64(laneTime) / float64(laneSymbols)
	}
	if res.CriticalPath > 0 {
		res.Speedup = float64(res.SeqSteps) / float64(res.CriticalPath)
	}
	return res, nil
}

// dedupeLanes merges lanes that have converged to the same current state,
// remapping origins to the surviving lane indices.
func dedupeLanes(lanes []StateID, curOf []StateID) ([]StateID, []StateID) {
	remap := make(map[StateID]StateID, len(lanes))
	var out []StateID
	newIdx := make([]StateID, len(lanes))
	for l, s := range lanes {
		if idx, ok := remap[s]; ok {
			newIdx[l] = idx
			continue
		}
		idx := StateID(len(out))
		remap[s] = idx
		out = append(out, s)
		newIdx[l] = idx
	}
	for o := range curOf {
		curOf[o] = newIdx[curOf[o]]
	}
	return out, curOf
}
