package dfa

import (
	"math/rand"
	"testing"
)

func TestMinimizeReducesRedundantStates(t *testing.T) {
	// "abc|abd" compiled without prefix merging has duplicated prefix
	// structure that minimization folds; either way the result must be no
	// larger and behave identically.
	n := mustCompile(t, "abc", "abd")
	d, err := Convert(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := d.Minimize()
	if m.Len() > d.Len() {
		t.Fatalf("minimize grew DFA: %d -> %d", d.Len(), m.Len())
	}
	input := []byte("xxabcxabdxab")
	a, b := d.Run(input), m.Run(input)
	if len(a) != len(b) {
		t.Fatalf("behaviour changed: %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestMinimizeKeepsDistinctCodes(t *testing.T) {
	// Structurally identical rules with different codes must not merge
	// into one reporting state.
	n := mustCompile(t, "ab", "cd")
	d, err := Convert(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := d.Minimize()
	input := []byte("ab cd")
	events := m.Run(input)
	codes := map[int32]bool{}
	for _, e := range events {
		codes[e.Code] = true
	}
	if !codes[0] || !codes[1] {
		t.Fatalf("lost report codes: %+v", events)
	}
}

func TestMinimizeIdempotent(t *testing.T) {
	n := mustCompile(t, "a[bc]+d")
	d, err := Convert(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	m1 := d.Minimize()
	m2 := m1.Minimize()
	if m1.Len() != m2.Len() {
		t.Fatalf("not idempotent: %d -> %d", m1.Len(), m2.Len())
	}
}

// TestMinimizeEquivalenceRandom: minimized DFAs behave identically on
// random automata/inputs, never grow, and parallel matching on them stays
// exact.
func TestMinimizeEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := randomNFA(rng, 2+rng.Intn(10))
		d, err := Convert(n, 1<<12)
		if err != nil {
			continue
		}
		m := d.Minimize()
		if m.Len() > d.Len() {
			t.Fatalf("trial %d: grew %d -> %d", trial, d.Len(), m.Len())
		}
		input := make([]byte, 150)
		for i := range input {
			input[i] = "abcd"[rng.Intn(4)]
		}
		a, b := d.Run(input), m.Run(input)
		if len(a) != len(b) {
			t.Fatalf("trial %d: %d vs %d events", trial, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d event %d differs", trial, i)
			}
		}
		// Parallel matching on the minimized DFA is still exact.
		pr, err := m.RunParallel(input, 4, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(pr.Reports) != len(a) {
			t.Fatalf("trial %d: parallel on minimized differs", trial)
		}
	}
}

func TestMinimizeShrinksEnumerationWidth(t *testing.T) {
	// The practical payoff: fewer lanes for the Mytkowicz baseline.
	n := mustCompile(t, "hello", "help", "hero")
	d, err := Convert(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := d.Minimize()
	rng := rand.New(rand.NewSource(2))
	input := make([]byte, 2048)
	for i := range input {
		input[i] = "helorpx "[rng.Intn(8)]
	}
	pr, err := m.RunParallel(input, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if pr.InitialLanes != m.Len() || m.Len() > d.Len() {
		t.Fatalf("lanes=%d minimized=%d original=%d", pr.InitialLanes, m.Len(), d.Len())
	}
}
