package dfa

import (
	"sort"
)

// Minimize returns the Hopcroft-minimal DFA equivalent to d. States are
// initially partitioned by their report-code sets (reports fire on state
// entry, so two states with different codes are distinguishable by
// definition); partition refinement then splits on transition behaviour.
// Minimizing before RunParallel shrinks the enumeration width (lanes =
// DFA states), making the Mytkowicz baseline as strong as possible.
func (d *DFA) Minimize() *DFA {
	n := d.Len()
	if n == 0 {
		return d
	}

	// Initial partition: group states by report signature.
	block := make([]int, n) // state -> block id
	{
		sig := make(map[string]int)
		for s := 0; s < n; s++ {
			key := codesKey(d.reports[s])
			id, ok := sig[key]
			if !ok {
				id = len(sig)
				sig[key] = id
			}
			block[s] = id
		}
	}

	// Iterative refinement: split blocks whose members disagree on the
	// block of any successor. (Moore's algorithm; O(n·256) per round,
	// rounds bounded by n. Hopcroft's worklist would be asymptotically
	// faster but this is simple, obviously correct, and fast enough for
	// the sizes the repository converts.)
	for {
		next := make([]int, n)
		sig := make(map[string]int)
		for s := 0; s < n; s++ {
			// Signature: own block + successor blocks.
			buf := make([]byte, 0, 4*(256+1))
			buf = appendInt(buf, block[s])
			for sym := 0; sym < 256; sym++ {
				buf = appendInt(buf, block[d.next[s*256+sym]])
			}
			key := string(buf)
			id, ok := sig[key]
			if !ok {
				id = len(sig)
				sig[key] = id
			}
			next[s] = id
		}
		same := true
		// Refinement is stable when the block count stops growing.
		if countDistinct(next) != countDistinct(block) {
			same = false
		}
		block = next
		if same {
			break
		}
	}

	// Rebuild with block 0 = the start state's block, then in first-seen
	// order for determinism.
	remap := make([]StateID, countDistinct(block))
	for i := range remap {
		remap[i] = -1
	}
	var order []int // old representative state per new id
	assign := func(oldState int) StateID {
		b := block[oldState]
		if remap[b] == -1 {
			remap[b] = StateID(len(order))
			order = append(order, oldState)
		}
		return remap[b]
	}
	assign(0)
	for s := 0; s < n; s++ {
		assign(s)
	}

	out := &DFA{name: d.name}
	for _, rep := range order {
		out.reports = append(out.reports, d.reports[rep])
		row := make([]StateID, 256)
		for sym := 0; sym < 256; sym++ {
			row[sym] = remap[block[d.next[rep*256+sym]]]
		}
		out.next = append(out.next, row...)
	}
	return out
}

func codesKey(codes []int32) string {
	cs := append([]int32(nil), codes...)
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	buf := make([]byte, 0, 4*len(cs))
	for _, c := range cs {
		buf = appendInt(buf, int(c))
	}
	return string(buf)
}

func appendInt(buf []byte, v int) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func countDistinct(xs []int) int {
	seen := map[int]struct{}{}
	for _, x := range xs {
		seen[x] = struct{}{}
	}
	return len(seen)
}
