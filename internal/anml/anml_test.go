package anml

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"pap/internal/engine"
	"pap/internal/nfa"
	"pap/internal/regex"
)

const sampleANML = `<automata-network id="demo" name="demo">
  <state-transition-element id="q0" symbol-set="[a]" start="all-input">
    <activate-on-match element="q1"/>
  </state-transition-element>
  <state-transition-element id="q1" symbol-set="[b]">
    <activate-on-match element="q2"/>
  </state-transition-element>
  <state-transition-element id="q2" symbol-set="[c]">
    <report-on-match reportcode="7"/>
  </state-transition-element>
</automata-network>`

func TestDecodeSample(t *testing.T) {
	n, err := Decode(strings.NewReader(sampleANML))
	if err != nil {
		t.Fatal(err)
	}
	if n.Len() != 3 || n.Name() != "demo" {
		t.Fatalf("decoded %d states, name %q", n.Len(), n.Name())
	}
	res := engine.Run(n, []byte("zzabczz"))
	if len(res.Reports) != 1 || res.Reports[0].Offset != 4 || res.Reports[0].Code != 7 {
		t.Fatalf("reports = %+v", res.Reports)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"dup-id": `<automata-network id="x">
			<state-transition-element id="a" symbol-set="[a]" start="all-input"/>
			<state-transition-element id="a" symbol-set="[b]"/>
		</automata-network>`,
		"unknown-target": `<automata-network id="x">
			<state-transition-element id="a" symbol-set="[a]" start="all-input">
				<activate-on-match element="nope"/>
			</state-transition-element>
		</automata-network>`,
		"bad-start": `<automata-network id="x">
			<state-transition-element id="a" symbol-set="[a]" start="sometimes"/>
		</automata-network>`,
		"bad-symbols": `<automata-network id="x">
			<state-transition-element id="a" symbol-set="abc" start="all-input"/>
		</automata-network>`,
		"counter": `<automata-network id="x">
			<state-transition-element id="a" symbol-set="[a]" start="all-input"/>
			<counter id="c1"/>
		</automata-network>`,
		"no-id": `<automata-network id="x">
			<state-transition-element symbol-set="[a]" start="all-input"/>
		</automata-network>`,
		"bad-code": `<automata-network id="x">
			<state-transition-element id="a" symbol-set="[a]" start="all-input">
				<report-on-match reportcode="seven"/>
			</state-transition-element>
		</automata-network>`,
		"not-xml": "not xml at all",
	}
	for name, doc := range cases {
		if _, err := Decode(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
}

func TestParseSymbolSet(t *testing.T) {
	cases := []struct {
		in    string
		count int
		has   []byte
		not   []byte
	}{
		{"[abc]", 3, []byte("abc"), []byte("d")},
		{"[a-f]", 6, []byte("af"), []byte("g")},
		{"[^a]", 255, []byte("bz"), []byte("a")},
		{"*", 256, []byte{0, 255}, nil},
		{`[\x00-\x1f]`, 32, []byte{0, 31}, []byte{32}},
		{`[\n\r\t]`, 3, []byte("\n\r\t"), []byte(" ")},
		{`[\]\[\-]`, 3, []byte("][-"), []byte("a")},
		{`[a\-z]`, 3, []byte("a-z"), []byte("b")}, // escaped dash is literal
		{`[\\]`, 1, []byte{'\\'}, nil},
	}
	for _, c := range cases {
		cls, err := ParseSymbolSet(c.in)
		if err != nil {
			t.Errorf("ParseSymbolSet(%q): %v", c.in, err)
			continue
		}
		if cls.Count() != c.count {
			t.Errorf("ParseSymbolSet(%q).Count = %d, want %d", c.in, cls.Count(), c.count)
		}
		for _, s := range c.has {
			if !cls.Test(s) {
				t.Errorf("ParseSymbolSet(%q) missing %q", c.in, s)
			}
		}
		for _, s := range c.not {
			if cls.Test(s) {
				t.Errorf("ParseSymbolSet(%q) wrongly has %q", c.in, s)
			}
		}
	}
	for _, bad := range []string{"", "abc", "[", "[]", "[z-a]", `[\x1]`, `[\xzz]`, `[a\]`} {
		if _, err := ParseSymbolSet(bad); err == nil {
			t.Errorf("ParseSymbolSet(%q) succeeded", bad)
		}
	}
}

// TestSymbolSetRoundTrip: Format then Parse is the identity on random
// classes.
func TestSymbolSetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		var cls nfa.Class
		for k := 0; k < 1+rng.Intn(40); k++ {
			cls.Add(byte(rng.Intn(256)))
		}
		got, err := ParseSymbolSet(FormatSymbolSet(cls))
		if err != nil {
			t.Fatalf("round trip of %s: %v", cls, err)
		}
		if got != cls {
			t.Fatalf("round trip changed class: %s -> %s (%q)", cls, got, FormatSymbolSet(cls))
		}
	}
	// Full class round trip.
	if got, err := ParseSymbolSet(FormatSymbolSet(nfa.AnyClass())); err != nil || got != nfa.AnyClass() {
		t.Fatalf("wildcard round trip: %v", err)
	}
}

// TestEncodeDecodeRoundTrip: a compiled ruleset survives ANML round trip
// with identical behaviour.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	n, err := regex.CompilePatterns("rt", []string{"abc", "a[xy]{2}z", "p.*q"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, n); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"automata-network", "state-transition-element", "report-on-match", "all-input"} {
		if !strings.Contains(out, want) {
			t.Fatalf("encoded ANML missing %q:\n%s", want, out)
		}
	}
	m, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode of encoded ANML: %v\n%s", err, out)
	}
	if m.Len() != n.Len() || m.Edges() != n.Edges() {
		t.Fatalf("round trip changed structure: %d/%d -> %d/%d",
			n.Len(), n.Edges(), m.Len(), m.Edges())
	}
	rng := rand.New(rand.NewSource(3))
	input := make([]byte, 512)
	for i := range input {
		input[i] = "abcpqxyz"[rng.Intn(8)]
	}
	if !engine.SameReports(engine.Run(n, input).Reports, engine.Run(m, input).Reports) {
		t.Fatal("round trip changed behaviour")
	}
}
