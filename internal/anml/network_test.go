package anml

import (
	"strings"
	"testing"

	"pap/internal/apnet"
)

const counterANML = `<automata-network id="thresh">
  <state-transition-element id="a" symbol-set="[a]" start="all-input">
    <activate-on-match element="b"/>
  </state-transition-element>
  <state-transition-element id="b" symbol-set="[b]">
    <activate-on-match element="c1"/>
  </state-transition-element>
  <counter id="c1" at-target="2" mode="pulse">
    <report-on-target reportcode="5"/>
  </counter>
</automata-network>`

func TestDecodeNetworkCounter(t *testing.T) {
	n, err := DecodeNetwork(strings.NewReader(counterANML))
	if err != nil {
		t.Fatal(err)
	}
	if n.Len() != 3 || n.Counters() != 1 {
		t.Fatalf("len=%d counters=%d", n.Len(), n.Counters())
	}
	// "ab" completes at offsets 1 and 4: the counter pulses on the 2nd.
	rs := apnet.Run(n, []byte("abxab"))
	if len(rs) != 1 || rs[0].Offset != 4 || rs[0].Code != 5 {
		t.Fatalf("reports = %+v, want one at offset 4 code 5", rs)
	}
}

const resetANML = `<automata-network id="rst">
  <state-transition-element id="a" symbol-set="[a]" start="all-input">
    <activate-on-match element="c1"/>
  </state-transition-element>
  <state-transition-element id="z" symbol-set="[z]" start="all-input">
    <activate-on-match element="c1:rst"/>
  </state-transition-element>
  <counter id="c1" at-target="2">
    <report-on-target reportcode="1"/>
  </counter>
</automata-network>`

func TestDecodeNetworkResetPort(t *testing.T) {
	n, err := DecodeNetwork(strings.NewReader(resetANML))
	if err != nil {
		t.Fatal(err)
	}
	rs := apnet.Run(n, []byte("azaa"))
	// 'a' at 0 counts 1; 'z' resets; 'a','a' count to 2 -> fire at 3.
	if len(rs) != 1 || rs[0].Offset != 3 {
		t.Fatalf("reports = %+v, want one at offset 3", rs)
	}
}

const gateANML = `<automata-network id="g">
  <state-transition-element id="s1" symbol-set="[xa]" start="all-input">
    <activate-on-match element="g1"/>
  </state-transition-element>
  <state-transition-element id="s2" symbol-set="[xb]" start="all-input">
    <activate-on-match element="g1"/>
  </state-transition-element>
  <and id="g1">
    <report-on-high reportcode="2"/>
  </and>
</automata-network>`

func TestDecodeNetworkGate(t *testing.T) {
	n, err := DecodeNetwork(strings.NewReader(gateANML))
	if err != nil {
		t.Fatal(err)
	}
	rs := apnet.Run(n, []byte("abx"))
	if len(rs) != 1 || rs[0].Offset != 2 || rs[0].Code != 2 {
		t.Fatalf("reports = %+v, want one at offset 2", rs)
	}
}

func TestDecodeNetworkErrors(t *testing.T) {
	cases := map[string]string{
		"bad-target": `<automata-network id="x">
			<state-transition-element id="a" symbol-set="[a]" start="all-input">
				<activate-on-match element="nope"/>
			</state-transition-element>
		</automata-network>`,
		"zero-counter": `<automata-network id="x">
			<state-transition-element id="a" symbol-set="[a]" start="all-input">
				<activate-on-match element="c"/>
			</state-transition-element>
			<counter id="c" at-target="0"/>
		</automata-network>`,
		"bad-mode": `<automata-network id="x">
			<state-transition-element id="a" symbol-set="[a]" start="all-input">
				<activate-on-match element="c"/>
			</state-transition-element>
			<counter id="c" at-target="2" mode="sticky"/>
		</automata-network>`,
		"dup": `<automata-network id="x">
			<state-transition-element id="a" symbol-set="[a]" start="all-input"/>
			<counter id="a" at-target="1"/>
		</automata-network>`,
	}
	for name, doc := range cases {
		if _, err := DecodeNetwork(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
}

// TestDecodeNetworkAcceptsPureSTE: DecodeNetwork subsumes Decode for pure
// STE documents.
func TestDecodeNetworkAcceptsPureSTE(t *testing.T) {
	n, err := DecodeNetwork(strings.NewReader(sampleANML))
	if err != nil {
		t.Fatal(err)
	}
	rs := apnet.Run(n, []byte("zzabczz"))
	if len(rs) != 1 || rs[0].Offset != 4 || rs[0].Code != 7 {
		t.Fatalf("reports = %+v", rs)
	}
}
