// Package anml reads and writes a practical subset of ANML, the Automata
// Network Markup Language of the Micron AP SDK (the format the ANMLZoo
// benchmark suite distributes its automata in). Supported: networks of
// state-transition elements with symbol sets, start kinds (start-of-data /
// all-input), activate-on-match edges, and report-on-match codes. Counters
// and boolean elements are parsed structurally but rejected with a clear
// error, since the engines in this repository execute pure STE networks
// (the paper's benchmarks are STE-only).
package anml

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"pap/internal/nfa"
)

// xmlNetwork mirrors the ANML document structure.
type xmlNetwork struct {
	XMLName xml.Name   `xml:"automata-network"`
	ID      string     `xml:"id,attr"`
	Name    string     `xml:"name,attr"`
	STEs    []xmlSTE   `xml:"state-transition-element"`
	Counter []xmlOther `xml:"counter"`
	Boolean []xmlOther `xml:"or"`
	And     []xmlOther `xml:"and"`
}

type xmlSTE struct {
	ID        string        `xml:"id,attr"`
	SymbolSet string        `xml:"symbol-set,attr"`
	Start     string        `xml:"start,attr"`
	Activate  []xmlActivate `xml:"activate-on-match"`
	Report    *xmlReport    `xml:"report-on-match"`
}

type xmlActivate struct {
	Element string `xml:"element,attr"`
}

type xmlReport struct {
	Code string `xml:"reportcode,attr"`
}

type xmlOther struct {
	ID string `xml:"id,attr"`
}

// Decode parses an ANML document into a homogeneous NFA.
func Decode(r io.Reader) (*nfa.NFA, error) {
	var doc xmlNetwork
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("anml: %w", err)
	}
	if n := len(doc.Counter) + len(doc.Boolean) + len(doc.And); n > 0 {
		return nil, fmt.Errorf("anml: network %q uses %d counter/boolean elements, which this engine does not execute", doc.ID, n)
	}
	name := doc.Name
	if name == "" {
		name = doc.ID
	}
	if name == "" {
		name = "anml"
	}
	b := nfa.NewBuilder(name)
	ids := make(map[string]nfa.StateID, len(doc.STEs))
	for _, ste := range doc.STEs {
		if ste.ID == "" {
			return nil, fmt.Errorf("anml: state-transition-element without id")
		}
		if _, dup := ids[ste.ID]; dup {
			return nil, fmt.Errorf("anml: duplicate element id %q", ste.ID)
		}
		cls, err := ParseSymbolSet(ste.SymbolSet)
		if err != nil {
			return nil, fmt.Errorf("anml: element %q: %w", ste.ID, err)
		}
		var flags nfa.Flags
		switch ste.Start {
		case "", "none":
		case "start-of-data":
			flags |= nfa.StartOfData
		case "all-input":
			flags |= nfa.AllInput
		default:
			return nil, fmt.Errorf("anml: element %q: unknown start kind %q", ste.ID, ste.Start)
		}
		id := b.AddState(cls, flags)
		if ste.Report != nil {
			b.SetFlags(id, nfa.Report)
			var code int32
			if ste.Report.Code != "" {
				if _, err := fmt.Sscanf(ste.Report.Code, "%d", &code); err != nil {
					return nil, fmt.Errorf("anml: element %q: bad reportcode %q", ste.ID, ste.Report.Code)
				}
			}
			b.SetReportCode(id, code)
		}
		ids[ste.ID] = id
	}
	for _, ste := range doc.STEs {
		from := ids[ste.ID]
		for _, act := range ste.Activate {
			to, ok := ids[act.Element]
			if !ok {
				return nil, fmt.Errorf("anml: element %q activates unknown element %q", ste.ID, act.Element)
			}
			b.AddEdge(from, to)
		}
	}
	return b.Build()
}

// Encode writes the automaton as an ANML document.
func Encode(w io.Writer, n *nfa.NFA) error {
	doc := xmlNetwork{ID: n.Name(), Name: n.Name()}
	for q := 0; q < n.Len(); q++ {
		st := n.State(nfa.StateID(q))
		ste := xmlSTE{
			ID:        fmt.Sprintf("ste%d", q),
			SymbolSet: FormatSymbolSet(st.Label),
		}
		switch {
		case st.Flags&nfa.StartOfData != 0:
			ste.Start = "start-of-data"
		case st.Flags&nfa.AllInput != 0:
			ste.Start = "all-input"
		}
		for _, c := range n.Succ(nfa.StateID(q)) {
			ste.Activate = append(ste.Activate, xmlActivate{Element: fmt.Sprintf("ste%d", c)})
		}
		if st.Flags&nfa.Report != 0 {
			ste.Report = &xmlReport{Code: fmt.Sprintf("%d", st.ReportCode)}
		}
		doc.STEs = append(doc.STEs, ste)
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("anml: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// ParseSymbolSet parses an ANML symbol set: a bracket expression like
// "[abc]", "[\x00-\x1f]", "[^\n]", or the wildcard "*". Escapes: \xHH,
// \n \r \t \\ \- \] \[ \^ \*.
func ParseSymbolSet(s string) (nfa.Class, error) {
	if s == "*" {
		return nfa.AnyClass(), nil
	}
	if len(s) < 2 || s[0] != '[' || s[len(s)-1] != ']' {
		return nfa.Class{}, fmt.Errorf("symbol set %q is not a bracket expression", s)
	}
	body := s[1 : len(s)-1]
	negate := false
	if strings.HasPrefix(body, "^") {
		negate = true
		body = body[1:]
	}
	var cls nfa.Class
	i := 0
	readOne := func() (byte, error) {
		if i >= len(body) {
			return 0, fmt.Errorf("truncated symbol set %q", s)
		}
		c := body[i]
		i++
		if c != '\\' {
			return c, nil
		}
		if i >= len(body) {
			return 0, fmt.Errorf("trailing backslash in %q", s)
		}
		e := body[i]
		i++
		switch e {
		case 'x':
			if i+1 >= len(body) {
				return 0, fmt.Errorf("truncated \\x escape in %q", s)
			}
			var v int
			if _, err := fmt.Sscanf(body[i:i+2], "%02x", &v); err != nil {
				return 0, fmt.Errorf("bad \\x escape in %q", s)
			}
			i += 2
			return byte(v), nil
		case 'n':
			return '\n', nil
		case 'r':
			return '\r', nil
		case 't':
			return '\t', nil
		default:
			return e, nil // escaped literal (\\ \- \] \[ \^ \*)
		}
	}
	if len(body) == 0 {
		return nfa.Class{}, fmt.Errorf("empty symbol set %q", s)
	}
	for i < len(body) {
		lo, err := readOne()
		if err != nil {
			return nfa.Class{}, err
		}
		if i < len(body) && body[i] == '-' && i+1 < len(body) {
			i++ // consume '-'
			hi, err := readOne()
			if err != nil {
				return nfa.Class{}, err
			}
			if hi < lo {
				return nfa.Class{}, fmt.Errorf("reversed range in %q", s)
			}
			cls.AddRange(lo, hi)
			continue
		}
		cls.Add(lo)
	}
	if negate {
		cls = cls.Negate()
	}
	return cls, nil
}

// FormatSymbolSet renders a class in ANML symbol-set syntax, using ranges
// where possible.
func FormatSymbolSet(cls nfa.Class) string {
	if cls.Count() == 256 {
		return "*"
	}
	syms := cls.Symbols(nil)
	sort.Slice(syms, func(a, b int) bool { return syms[a] < syms[b] })
	var sb strings.Builder
	sb.WriteByte('[')
	for i := 0; i < len(syms); {
		j := i
		for j+1 < len(syms) && syms[j+1] == syms[j]+1 {
			j++
		}
		if j-i >= 2 {
			sb.WriteString(escapeSym(syms[i]))
			sb.WriteByte('-')
			sb.WriteString(escapeSym(syms[j]))
		} else {
			for k := i; k <= j; k++ {
				sb.WriteString(escapeSym(syms[k]))
			}
		}
		i = j + 1
	}
	sb.WriteByte(']')
	return sb.String()
}

func escapeSym(c byte) string {
	switch c {
	case '\\', '-', ']', '[', '^', '*':
		return "\\" + string(c)
	}
	if c >= 0x20 && c <= 0x7e {
		return string(c)
	}
	return fmt.Sprintf("\\x%02x", c)
}
