package anml

import (
	"encoding/xml"
	"fmt"
	"io"

	"pap/internal/apnet"
)

// Full-network ANML: unlike Decode (pure STE → NFA, what the parallel
// pipeline executes), DecodeNetwork also accepts counter and boolean
// elements, producing an apnet.Network for sequential matching.

type xmlFullNetwork struct {
	XMLName  xml.Name     `xml:"automata-network"`
	ID       string       `xml:"id,attr"`
	Name     string       `xml:"name,attr"`
	STEs     []xmlSTE     `xml:"state-transition-element"`
	Counters []xmlCounter `xml:"counter"`
	Ors      []xmlGate    `xml:"or"`
	Ands     []xmlGate    `xml:"and"`
	Nots     []xmlGate    `xml:"inverter"`
}

type xmlCounter struct {
	ID       string        `xml:"id,attr"`
	Target   uint32        `xml:"at-target,attr"`
	Mode     string        `xml:"mode,attr"` // "latch" or "pulse" (default)
	Activate []xmlActivate `xml:"activate-on-target"`
	Report   *xmlReport    `xml:"report-on-target"`
}

type xmlGate struct {
	ID       string        `xml:"id,attr"`
	Activate []xmlActivate `xml:"activate-on-high"`
	Report   *xmlReport    `xml:"report-on-high"`
}

// DecodeNetwork parses an ANML document, including counter and boolean
// elements, into an executable element network. Edge semantics: an
// activate-on-match/target/high edge whose target is an STE becomes a
// next-cycle activation; one whose target is a gate becomes a
// combinational gate input; one whose target is a counter feeds its count
// port — ANML expresses the reset port as a ":rst" suffix on the element
// reference (e.g. element="c1:rst").
func DecodeNetwork(r io.Reader) (*apnet.Network, error) {
	var doc xmlFullNetwork
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("anml: %w", err)
	}
	name := doc.Name
	if name == "" {
		name = doc.ID
	}
	if name == "" {
		name = "anml"
	}
	b := apnet.NewBuilder(name)
	ids := map[string]apnet.ElementID{}
	addID := func(id string, el apnet.ElementID) error {
		if id == "" {
			return fmt.Errorf("anml: element without id")
		}
		if _, dup := ids[id]; dup {
			return fmt.Errorf("anml: duplicate element id %q", id)
		}
		ids[id] = el
		return nil
	}

	for _, ste := range doc.STEs {
		cls, err := ParseSymbolSet(ste.SymbolSet)
		if err != nil {
			return nil, fmt.Errorf("anml: element %q: %w", ste.ID, err)
		}
		start := apnet.NoStart
		switch ste.Start {
		case "", "none":
		case "start-of-data":
			start = apnet.StartOfData
		case "all-input":
			start = apnet.AllInput
		default:
			return nil, fmt.Errorf("anml: element %q: unknown start kind %q", ste.ID, ste.Start)
		}
		el := b.AddSTE(cls, start)
		if err := addID(ste.ID, el); err != nil {
			return nil, err
		}
		if ste.Report != nil {
			code, err := parseCode(ste.Report.Code)
			if err != nil {
				return nil, fmt.Errorf("anml: element %q: %w", ste.ID, err)
			}
			b.SetReport(el, code)
		}
	}
	for _, c := range doc.Counters {
		if c.Target == 0 {
			return nil, fmt.Errorf("anml: counter %q needs at-target >= 1", c.ID)
		}
		mode := apnet.CountPulse
		switch c.Mode {
		case "", "pulse":
		case "latch":
			mode = apnet.CountLatch
		default:
			return nil, fmt.Errorf("anml: counter %q: unknown mode %q", c.ID, c.Mode)
		}
		el := b.AddCounter(c.Target, mode)
		if err := addID(c.ID, el); err != nil {
			return nil, err
		}
		if c.Report != nil {
			code, err := parseCode(c.Report.Code)
			if err != nil {
				return nil, fmt.Errorf("anml: counter %q: %w", c.ID, err)
			}
			b.SetReport(el, code)
		}
	}
	gate := func(g xmlGate, op apnet.GateOp) error {
		el := b.AddGate(op)
		if err := addID(g.ID, el); err != nil {
			return err
		}
		if g.Report != nil {
			code, err := parseCode(g.Report.Code)
			if err != nil {
				return fmt.Errorf("anml: gate %q: %w", g.ID, err)
			}
			b.SetReport(el, code)
		}
		return nil
	}
	for _, g := range doc.Ors {
		if err := gate(g, apnet.GateOR); err != nil {
			return nil, err
		}
	}
	for _, g := range doc.Ands {
		if err := gate(g, apnet.GateAND); err != nil {
			return nil, err
		}
	}
	for _, g := range doc.Nots {
		if err := gate(g, apnet.GateNOT); err != nil {
			return nil, err
		}
	}

	// Wire edges now that every element exists.
	connect := func(fromID string, targets []xmlActivate) error {
		from := ids[fromID]
		for _, a := range targets {
			ref, port := splitPort(a.Element)
			to, ok := ids[ref]
			if !ok {
				return fmt.Errorf("anml: element %q activates unknown element %q", fromID, ref)
			}
			switch {
			case port == "rst":
				b.ConnectReset(from, to)
			case isGateRef(doc, ref):
				b.ConnectGate(from, to)
			case isCounterRef(doc, ref):
				b.ConnectCount(from, to)
			default:
				b.Activate(from, to)
			}
		}
		return nil
	}
	for _, ste := range doc.STEs {
		if err := connect(ste.ID, ste.Activate); err != nil {
			return nil, err
		}
	}
	for _, c := range doc.Counters {
		if err := connect(c.ID, c.Activate); err != nil {
			return nil, err
		}
	}
	for _, g := range doc.Ors {
		if err := connect(g.ID, g.Activate); err != nil {
			return nil, err
		}
	}
	for _, g := range doc.Ands {
		if err := connect(g.ID, g.Activate); err != nil {
			return nil, err
		}
	}
	for _, g := range doc.Nots {
		if err := connect(g.ID, g.Activate); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

func parseCode(s string) (int32, error) {
	if s == "" {
		return 0, nil
	}
	var code int32
	if _, err := fmt.Sscanf(s, "%d", &code); err != nil {
		return 0, fmt.Errorf("bad reportcode %q", s)
	}
	return code, nil
}

func splitPort(ref string) (id, port string) {
	for i := len(ref) - 1; i >= 0; i-- {
		if ref[i] == ':' {
			return ref[:i], ref[i+1:]
		}
	}
	return ref, ""
}

func isGateRef(doc xmlFullNetwork, id string) bool {
	for _, g := range doc.Ors {
		if g.ID == id {
			return true
		}
	}
	for _, g := range doc.Ands {
		if g.ID == id {
			return true
		}
	}
	for _, g := range doc.Nots {
		if g.ID == id {
			return true
		}
	}
	return false
}

func isCounterRef(doc xmlFullNetwork, id string) bool {
	for _, c := range doc.Counters {
		if c.ID == id {
			return true
		}
	}
	return false
}
