package mnrl

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"pap/internal/engine"
	"pap/internal/regex"
)

const sampleMNRL = `{
  "id": "demo",
  "nodes": [
    {"id": "n0", "type": "hState", "enable": "always",
     "attributes": {"symbolSet": "[a]"},
     "outputConnections": [{"portId": "main", "activateIds": ["n1"]}]},
    {"id": "n1", "type": "hState",
     "attributes": {"symbolSet": "[b-c]"},
     "report": true, "reportId": 5}
  ]
}`

func TestDecodeSample(t *testing.T) {
	n, err := Decode(strings.NewReader(sampleMNRL))
	if err != nil {
		t.Fatal(err)
	}
	if n.Len() != 2 || n.Name() != "demo" {
		t.Fatalf("decoded %d states name %q", n.Len(), n.Name())
	}
	res := engine.Run(n, []byte("xacxab"))
	if len(res.Reports) != 2 || res.Reports[0].Code != 5 {
		t.Fatalf("reports = %+v", res.Reports)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"not-json":  "nope",
		"no-id":     `{"id":"x","nodes":[{"type":"hState","attributes":{"symbolSet":"[a]"},"enable":"always"}]}`,
		"dup-id":    `{"id":"x","nodes":[{"id":"a","type":"hState","attributes":{"symbolSet":"[a]"},"enable":"always"},{"id":"a","type":"hState","attributes":{"symbolSet":"[b]"}}]}`,
		"bad-type":  `{"id":"x","nodes":[{"id":"a","type":"upCounter","attributes":{"symbolSet":"[a]"}}]}`,
		"bad-set":   `{"id":"x","nodes":[{"id":"a","type":"hState","attributes":{"symbolSet":"abc"},"enable":"always"}]}`,
		"bad-kind":  `{"id":"x","nodes":[{"id":"a","type":"hState","attributes":{"symbolSet":"[a]"},"enable":"sometimes"}]}`,
		"bad-edge":  `{"id":"x","nodes":[{"id":"a","type":"hState","attributes":{"symbolSet":"[a]"},"enable":"always","outputConnections":[{"portId":"main","activateIds":["zz"]}]}]}`,
		"bad-port":  `{"id":"x","nodes":[{"id":"a","type":"hState","attributes":{"symbolSet":"[a]"},"enable":"always","outputConnections":[{"portId":"cnt","activateIds":["a"]}]}]}`,
		"no-starts": `{"id":"x","nodes":[{"id":"a","type":"hState","attributes":{"symbolSet":"[a]"}}]}`,
	}
	for name, doc := range cases {
		if _, err := Decode(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	n, err := regex.CompilePatterns("rt", []string{"^start", "mid.dle", "[0-9]{3}"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, n); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"hState"`, `"onStartAndActivateIn"`, `"always"`, `"reportId"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("encoded MNRL missing %s:\n%s", want, out)
		}
	}
	m, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != n.Len() || m.Edges() != n.Edges() {
		t.Fatalf("structure changed: %d/%d -> %d/%d", n.Len(), n.Edges(), m.Len(), m.Edges())
	}
	rng := rand.New(rand.NewSource(8))
	input := make([]byte, 400)
	corpus := "start middle 0123456789 x"
	for i := range input {
		input[i] = corpus[rng.Intn(len(corpus))]
	}
	if !engine.SameReports(engine.Run(n, input).Reports, engine.Run(m, input).Reports) {
		t.Fatal("round trip changed behaviour")
	}
}
