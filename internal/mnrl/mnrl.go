// Package mnrl reads and writes a practical subset of MNRL, the JSON-based
// automata interchange format of the MNCaRT ecosystem (the successor to
// ANML, used by newer releases of the ANMLZoo tooling). Supported: networks
// of homogeneous states ("hState" nodes) with symbol sets, the three enable
// kinds, report IDs, and main-port activation edges. Other node types
// (counters, booleans, lut) are rejected with a clear error.
package mnrl

import (
	"encoding/json"
	"fmt"
	"io"

	"pap/internal/anml"
	"pap/internal/nfa"
)

// Enable kinds of MNRL nodes.
const (
	enableOnActivateIn         = "onActivateIn"
	enableOnStartAndActivateIn = "onStartAndActivateIn"
	enableAlways               = "always"
)

type document struct {
	ID    string `json:"id"`
	Nodes []node `json:"nodes"`
}

type node struct {
	ID         string       `json:"id"`
	Type       string       `json:"type"`
	Enable     string       `json:"enable,omitempty"`
	Report     bool         `json:"report,omitempty"`
	ReportID   *int32       `json:"reportId,omitempty"`
	Attributes attributes   `json:"attributes"`
	Outputs    []connection `json:"outputConnections,omitempty"`
}

type attributes struct {
	SymbolSet string `json:"symbolSet"`
}

type connection struct {
	PortID      string   `json:"portId"`
	ActivateIDs []string `json:"activateIds"`
}

// Decode parses an MNRL document into a homogeneous NFA.
func Decode(r io.Reader) (*nfa.NFA, error) {
	var doc document
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("mnrl: %w", err)
	}
	name := doc.ID
	if name == "" {
		name = "mnrl"
	}
	b := nfa.NewBuilder(name)
	ids := make(map[string]nfa.StateID, len(doc.Nodes))
	for _, nd := range doc.Nodes {
		if nd.ID == "" {
			return nil, fmt.Errorf("mnrl: node without id")
		}
		if _, dup := ids[nd.ID]; dup {
			return nil, fmt.Errorf("mnrl: duplicate node id %q", nd.ID)
		}
		if nd.Type != "hState" {
			return nil, fmt.Errorf("mnrl: node %q has unsupported type %q (only hState networks execute here)", nd.ID, nd.Type)
		}
		cls, err := anml.ParseSymbolSet(nd.Attributes.SymbolSet)
		if err != nil {
			return nil, fmt.Errorf("mnrl: node %q: %w", nd.ID, err)
		}
		var flags nfa.Flags
		switch nd.Enable {
		case "", enableOnActivateIn:
		case enableOnStartAndActivateIn:
			flags |= nfa.StartOfData
		case enableAlways:
			flags |= nfa.AllInput
		default:
			return nil, fmt.Errorf("mnrl: node %q: unknown enable kind %q", nd.ID, nd.Enable)
		}
		id := b.AddState(cls, flags)
		if nd.Report {
			b.SetFlags(id, nfa.Report)
			if nd.ReportID != nil {
				b.SetReportCode(id, *nd.ReportID)
			}
		}
		ids[nd.ID] = id
	}
	for _, nd := range doc.Nodes {
		from := ids[nd.ID]
		for _, conn := range nd.Outputs {
			if conn.PortID != "" && conn.PortID != "main" {
				return nil, fmt.Errorf("mnrl: node %q: unsupported output port %q", nd.ID, conn.PortID)
			}
			for _, target := range conn.ActivateIDs {
				to, ok := ids[target]
				if !ok {
					return nil, fmt.Errorf("mnrl: node %q activates unknown node %q", nd.ID, target)
				}
				b.AddEdge(from, to)
			}
		}
	}
	return b.Build()
}

// Encode writes the automaton as an MNRL document.
func Encode(w io.Writer, n *nfa.NFA) error {
	doc := document{ID: n.Name()}
	for q := 0; q < n.Len(); q++ {
		st := n.State(nfa.StateID(q))
		nd := node{
			ID:         fmt.Sprintf("q%d", q),
			Type:       "hState",
			Enable:     enableOnActivateIn,
			Attributes: attributes{SymbolSet: anml.FormatSymbolSet(st.Label)},
		}
		switch {
		case st.Flags&nfa.StartOfData != 0:
			nd.Enable = enableOnStartAndActivateIn
		case st.Flags&nfa.AllInput != 0:
			nd.Enable = enableAlways
		}
		if st.Flags&nfa.Report != 0 {
			nd.Report = true
			code := st.ReportCode
			nd.ReportID = &code
		}
		if succ := n.Succ(nfa.StateID(q)); len(succ) > 0 {
			conn := connection{PortID: "main"}
			for _, c := range succ {
				conn.ActivateIDs = append(conn.ActivateIDs, fmt.Sprintf("q%d", c))
			}
			nd.Outputs = []connection{conn}
		}
		doc.Nodes = append(doc.Nodes, nd)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("mnrl: %w", err)
	}
	return nil
}
