package ap

import (
	"testing"

	"pap/internal/nfa"
)

func TestConstants(t *testing.T) {
	// Constants documented in the paper: check derived values.
	if STEsPerHalfCore != 24576 {
		t.Errorf("STEsPerHalfCore = %d", STEsPerHalfCore)
	}
	if StateVectorBits != 59936 {
		t.Errorf("StateVectorBits = %d, want 59936", StateVectorBits)
	}
	if HalfCoresPerRank != 16 {
		t.Errorf("HalfCoresPerRank = %d", HalfCoresPerRank)
	}
}

func TestCyclesNanoseconds(t *testing.T) {
	if got := Cycles(2).Nanoseconds(); got != 15.0 {
		t.Errorf("2 cycles = %v ns, want 15", got)
	}
}

func TestNewBoard(t *testing.T) {
	for _, r := range []int{0, 5, -1} {
		if _, err := NewBoard(r); err == nil {
			t.Errorf("NewBoard(%d) succeeded", r)
		}
	}
	b, err := NewBoard(4)
	if err != nil {
		t.Fatal(err)
	}
	if b.HalfCores() != 64 {
		t.Errorf("HalfCores = %d, want 64", b.HalfCores())
	}
}

func TestPlaceAndSegments(t *testing.T) {
	cases := []struct {
		states             int
		wantHC             int
		wantSeg1, wantSeg4 int
	}{
		{11124, 1, 16, 64}, // Dotstar03 (Table 1)
		{40783, 2, 8, 32},  // Fermi
		{49538, 3, 5, 21},  // ClamAV: 49538/24576 = 2.02 → 3
		{1, 1, 16, 64},
	}
	b1, _ := NewBoard(1)
	b4, _ := NewBoard(4)
	for _, c := range cases {
		p, err := Place(c.states, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if p.HalfCores != c.wantHC {
			t.Errorf("Place(%d).HalfCores = %d, want %d", c.states, p.HalfCores, c.wantHC)
		}
		if got := b1.Segments(p); got != c.wantSeg1 {
			t.Errorf("Segments(1 rank, %d states) = %d, want %d", c.states, got, c.wantSeg1)
		}
		if got := b4.Segments(p); got != c.wantSeg4 {
			t.Errorf("Segments(4 ranks, %d states) = %d, want %d", c.states, got, c.wantSeg4)
		}
	}
}

func TestPlaceErrors(t *testing.T) {
	if _, err := Place(0, 1); err == nil {
		t.Error("Place(0) succeeded")
	}
	if _, err := Place(10, 0); err == nil {
		t.Error("Place(utilization 0) succeeded")
	}
	if _, err := Place(10, 1.5); err == nil {
		t.Error("Place(utilization 1.5) succeeded")
	}
}

func TestPlaceUtilization(t *testing.T) {
	full, _ := Place(20000, 1.0)
	half, _ := Place(20000, 0.5)
	if full.HalfCores != 1 || half.HalfCores != 2 {
		t.Errorf("utilization scaling: full=%d half=%d", full.HalfCores, half.HalfCores)
	}
}

func TestFlowCapacity(t *testing.T) {
	p, _ := Place(10000, 1.0) // 1 device
	if err := CheckFlowCapacity(p, 512); err != nil {
		t.Errorf("512 flows on 1 device rejected: %v", err)
	}
	if err := CheckFlowCapacity(p, 513); err == nil {
		t.Error("513 flows on 1 device accepted")
	}
	p2, _ := Place(60000, 1.0) // 3 half-cores → 2 devices
	if err := CheckFlowCapacity(p2, 1024); err != nil {
		t.Errorf("1024 flows on 2 devices rejected: %v", err)
	}
}

func TestReportCapacity(t *testing.T) {
	p, _ := Place(10000, 1.0)
	if err := CheckReportCapacity(p, 6*1024); err != nil {
		t.Errorf("6144 reporters rejected: %v", err)
	}
	if err := CheckReportCapacity(p, 6*1024+1); err == nil {
		t.Error("6145 reporters accepted")
	}
}

func TestSVCLifecycle(t *testing.T) {
	s := NewSVC(1)
	if s.Capacity() != 512 {
		t.Fatalf("capacity = %d", s.Capacity())
	}
	id1, err := s.Alloc([]nfa.StateID{1, 2, 3}, 0xabc)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Alloc([]nfa.StateID{4}, 0xdef)
	if err != nil {
		t.Fatal(err)
	}
	if s.Active() != 2 {
		t.Fatalf("active = %d", s.Active())
	}
	fr, fp := s.Load(id1)
	if len(fr) != 3 || fp != 0xabc {
		t.Fatalf("Load = %v %x", fr, fp)
	}
	s.Save(id1, []nfa.StateID{9}, 0x9)
	fr, fp = s.Load(id1)
	if len(fr) != 1 || fr[0] != 9 || fp != 0x9 {
		t.Fatalf("after Save: %v %x", fr, fp)
	}
	if s.Fingerprint(id2) != 0xdef {
		t.Fatal("Fingerprint mismatch")
	}
	ids := s.ValidIDs(nil)
	if len(ids) != 2 {
		t.Fatalf("ValidIDs = %v", ids)
	}
	s.Invalidate(id1)
	s.Invalidate(id1) // idempotent
	if s.Active() != 1 || s.Valid(id1) || !s.Valid(id2) {
		t.Fatalf("invalidate bookkeeping wrong: active=%d", s.Active())
	}
	if got := s.ValidIDs(nil); len(got) != 1 || got[0] != id2 {
		t.Fatalf("ValidIDs after invalidate = %v", got)
	}
}

func TestSVCCapacityExhaustion(t *testing.T) {
	s := NewSVC(1)
	for i := 0; i < SVCEntriesPerDevice; i++ {
		if _, err := s.Alloc(nil, 0); err != nil {
			t.Fatalf("alloc %d failed: %v", i, err)
		}
	}
	if _, err := s.Alloc(nil, 0); err == nil {
		t.Fatal("alloc beyond capacity succeeded")
	}
	// Freeing one entry makes room again.
	s.Invalidate(0)
	if _, err := s.Alloc(nil, 0); err != nil {
		t.Fatalf("alloc after free failed: %v", err)
	}
}

func TestSVCAllocOverflow(t *testing.T) {
	s := NewSVC(1)
	for i := 0; i < SVCEntriesPerDevice; i++ {
		s.AllocOverflow(nil, 0)
	}
	if s.Overflow() != 0 {
		t.Fatalf("overflow = %d before exceeding capacity", s.Overflow())
	}
	id := s.AllocOverflow([]nfa.StateID{7}, 9)
	if s.Overflow() != 1 {
		t.Fatalf("overflow = %d, want 1", s.Overflow())
	}
	if fr, fp := s.Load(id); len(fr) != 1 || fr[0] != 7 || fp != 9 {
		t.Fatalf("overflow entry unusable: %v %x", fr, fp)
	}
}

func TestSVCInvalidAccessPanics(t *testing.T) {
	s := NewSVC(1)
	id, _ := s.Alloc([]nfa.StateID{1}, 1)
	s.Invalidate(id)
	for name, fn := range map[string]func(){
		"Load":        func() { s.Load(id) },
		"Save":        func() { s.Save(id, nil, 0) },
		"Fingerprint": func() { s.Fingerprint(id) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on invalid flow did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestEventBuffer(t *testing.T) {
	var b EventBuffer
	b.Append(Event{Flow: 1, Code: 2, Offset: 3})
	b.Append(Event{Flow: 4, Code: 5, Offset: 6})
	if b.Len() != 2 || b.Events[1].Code != 5 {
		t.Fatalf("buffer = %+v", b.Events)
	}
}
