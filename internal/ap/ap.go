// Package ap models the Micron Automata Processor D480 board: its physical
// hierarchy (ranks → devices → half-cores → blocks → rows → STEs), its
// published timing constants, the flow abstraction backed by the per-device
// State Vector Cache (SVC), and the report event stream. The model is the
// substrate the paper evaluates against (via VASim + these constants); no
// physical routing is simulated, but capacity and reporting limits are
// enforced so that plans that would not fit real hardware are rejected.
package ap

import (
	"fmt"
)

// Architectural constants of the D480 generation, from the paper (§2.1,
// §3.2, §4.2) and the AP design notes it cites.
const (
	// SymbolCycleNS is the deterministic symbol processing rate: one 8-bit
	// symbol every 7.5 ns.
	SymbolCycleNS = 7.5

	// STEsPerDevice is the number of State Transition Elements per D480
	// device, organised as 2 half-cores of 192/2 blocks each.
	STEsPerDevice   = 49152
	HalfCoresPerDev = 2
	STEsPerHalfCore = STEsPerDevice / HalfCoresPerDev // 24576
	BlocksPerDevice = 192
	RowsPerBlock    = 256
	STEsPerRow      = 16

	// DevicesPerRank and MaxRanks give the board organisation: the current
	// generation board carries 4 ranks of 8 devices (§2.1).
	DevicesPerRank = 8
	MaxRanks       = 4

	// HalfCoresPerRank is the number of independent processing units per
	// rank; each half-core is the smallest unit of input partitioning.
	HalfCoresPerRank = DevicesPerRank * HalfCoresPerDev // 16

	// StateVectorBits is the size of one flow context: (256 enable bits +
	// 56 counter bits) × 192 blocks + 32 count bits (§3.2).
	StateVectorBits = (256+56)*BlocksPerDevice + 32 // 59936

	// SVCEntriesPerDevice is the State Vector Cache capacity: at most 512
	// concurrently active flows per device (§5.1).
	SVCEntriesPerDevice = 512

	// FlowSwitchCycles is the flow context-switch cost: save the current
	// state vector, fetch the next, load mask register and counters (§3.2).
	FlowSwitchCycles = 3

	// SVTransferCycles is the cost of transferring one final state vector
	// from the AP to the host CPU's save buffer (§3.4).
	SVTransferCycles = 1668

	// FIVTransferCycles is the cost of sending the 512-bit Flow
	// Invalidation Vector from the host back to the AP (§4.2).
	FIVTransferCycles = 15

	// OutputRegionsPerDevice and ReportElementsPerRegion bound reporting
	// (§2.1): 6 output regions per device, ≤1024 reporting elements each.
	OutputRegionsPerDevice  = 6
	ReportElementsPerRegion = 1024

	// CountersPerDevice and BooleansPerDevice augment pattern matching.
	CountersPerDevice = 768
	BooleansPerDevice = 2304
)

// Cycles counts AP symbol cycles (7.5 ns each).
type Cycles int64

// Nanoseconds converts a cycle count to wall time in nanoseconds.
func (c Cycles) Nanoseconds() float64 { return float64(c) * SymbolCycleNS }

// Board describes one AP board configuration.
type Board struct {
	Ranks int
}

// NewBoard returns a board with the given number of ranks (1..MaxRanks).
func NewBoard(ranks int) (Board, error) {
	if ranks < 1 || ranks > MaxRanks {
		return Board{}, fmt.Errorf("ap: ranks must be in [1,%d], got %d", MaxRanks, ranks)
	}
	return Board{Ranks: ranks}, nil
}

// HalfCores returns the total number of half-cores on the board.
func (b Board) HalfCores() int { return b.Ranks * HalfCoresPerRank }

// Placement is the physical footprint of one automaton on the board.
type Placement struct {
	States    int
	HalfCores int // half-cores occupied by one copy of the automaton
	Devices   int // devices spanned by one copy
}

// Place computes the footprint of an automaton with the given number of
// states. utilization models routing pressure: the fraction of a
// half-core's STEs usable by a single densely connected automaton (the AP
// compiler rarely achieves 100% placement density). Use utilization = 1 for
// the paper's Table 1 footprints, which are post-compilation.
func Place(states int, utilization float64) (Placement, error) {
	if states <= 0 {
		return Placement{}, fmt.Errorf("ap: cannot place %d states", states)
	}
	if utilization <= 0 || utilization > 1 {
		return Placement{}, fmt.Errorf("ap: utilization %v out of (0,1]", utilization)
	}
	per := int(float64(STEsPerHalfCore) * utilization)
	hc := (states + per - 1) / per
	return Placement{
		States:    states,
		HalfCores: hc,
		Devices:   (hc + HalfCoresPerDev - 1) / HalfCoresPerDev,
	}, nil
}

// Segments returns how many input segments the board can process in
// parallel for an automaton with the given placement: each segment needs
// its own replica of the automaton (paper Table 1: 16/8/5 segments per rank
// for 1/2/3 half-core automata).
func (b Board) Segments(p Placement) int {
	if p.HalfCores <= 0 {
		return 0
	}
	return b.HalfCores() / p.HalfCores
}

// CheckFlowCapacity verifies that a plan with maxFlows concurrently active
// flows per segment fits the State Vector Cache of the devices hosting one
// replica. The paper notes several benchmarks initially exceed the 512-flow
// limit; flow-merging optimizations must bring them under it.
func CheckFlowCapacity(p Placement, maxFlows int) error {
	cap := SVCEntriesPerDevice * maxInt(1, p.Devices)
	if maxFlows > cap {
		return fmt.Errorf("ap: %d flows exceed SVC capacity %d (%d devices)", maxFlows, cap, p.Devices)
	}
	return nil
}

// CheckReportCapacity verifies the number of reporting elements fits the
// device's output regions.
func CheckReportCapacity(p Placement, reporting int) error {
	cap := OutputRegionsPerDevice * ReportElementsPerRegion * maxInt(1, p.Devices)
	if reporting > cap {
		return fmt.Errorf("ap: %d reporting elements exceed capacity %d", reporting, cap)
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
