package ap

import (
	"fmt"

	"pap/internal/nfa"
)

// FlowID identifies one SVC entry (one flow) within a segment's replica.
type FlowID int

// SVC models the State Vector Cache of the devices hosting one automaton
// replica: up to 512 saved flow contexts per device (§3.2). A context is
// the enabled-state vector of a suspended flow; the simulator stores it
// sparsely together with its Zobrist fingerprint, which stands in for the
// bitwise XOR/wired-AND comparator the paper adds to the SVC for
// convergence checks (§3.3.3).
//
// Concurrency: Alloc and Invalidate must be serialized; Save and Load on
// *distinct* valid entries may run concurrently (each touches only its own
// entry), which is how PAP's per-flow workers use it.
type SVC struct {
	capacity int
	entries  []svcEntry
	active   int
	overflow int
}

type svcEntry struct {
	frontier []nfa.StateID
	fp       uint64
	valid    bool
}

// NewSVC returns an SVC spanning the given number of devices.
func NewSVC(devices int) *SVC {
	if devices < 1 {
		devices = 1
	}
	return &SVC{capacity: SVCEntriesPerDevice * devices}
}

// Capacity returns the maximum number of concurrently valid entries.
func (s *SVC) Capacity() int { return s.capacity }

// Active returns the number of valid entries.
func (s *SVC) Active() int { return s.active }

// Alloc stores a new flow context and returns its ID. It fails when the
// cache is full: plans must merge flows below capacity before execution.
func (s *SVC) Alloc(frontier []nfa.StateID, fp uint64) (FlowID, error) {
	if s.active >= s.capacity {
		return 0, fmt.Errorf("ap: state vector cache full (%d entries)", s.capacity)
	}
	return s.alloc(frontier, fp), nil
}

// AllocOverflow is Alloc for analyses that deliberately exceed capacity
// (e.g. ablations that disable flow merging): allocation always succeeds
// and the excess is counted in Overflow. Real hardware could not run such
// a plan; results remain functionally exact.
func (s *SVC) AllocOverflow(frontier []nfa.StateID, fp uint64) FlowID {
	if s.active >= s.capacity {
		s.overflow++
	}
	return s.alloc(frontier, fp)
}

func (s *SVC) alloc(frontier []nfa.StateID, fp uint64) FlowID {
	ctx := make([]nfa.StateID, len(frontier))
	copy(ctx, frontier)
	s.entries = append(s.entries, svcEntry{frontier: ctx, fp: fp, valid: true})
	s.active++
	return FlowID(len(s.entries) - 1)
}

// Overflow returns how many allocations exceeded the hardware capacity.
func (s *SVC) Overflow() int { return s.overflow }

// Save overwrites the context of an existing valid entry.
func (s *SVC) Save(id FlowID, frontier []nfa.StateID, fp uint64) {
	e := &s.entries[id]
	if !e.valid {
		panic(fmt.Sprintf("ap: Save on invalid flow %d", id))
	}
	e.frontier = append(e.frontier[:0], frontier...)
	e.fp = fp
}

// Load returns the saved context of a valid entry. The returned slice is
// owned by the SVC; callers must copy it before the next Save.
func (s *SVC) Load(id FlowID) ([]nfa.StateID, uint64) {
	e := &s.entries[id]
	if !e.valid {
		panic(fmt.Sprintf("ap: Load on invalid flow %d", id))
	}
	return e.frontier, e.fp
}

// Invalidate frees an entry (flow deactivated, converged, or killed by a
// Flow Invalidation Vector). Invalidating twice is a no-op.
func (s *SVC) Invalidate(id FlowID) {
	e := &s.entries[id]
	if e.valid {
		e.valid = false
		e.frontier = nil
		s.active--
	}
}

// Valid reports whether the entry still holds a live flow.
func (s *SVC) Valid(id FlowID) bool {
	return int(id) < len(s.entries) && s.entries[id].valid
}

// Fingerprint returns the stored comparator fingerprint of a valid entry.
func (s *SVC) Fingerprint(id FlowID) uint64 {
	e := &s.entries[id]
	if !e.valid {
		panic(fmt.Sprintf("ap: Fingerprint on invalid flow %d", id))
	}
	return e.fp
}

// ValidIDs appends the IDs of all valid entries to dst in ascending order.
func (s *SVC) ValidIDs(dst []FlowID) []FlowID {
	for i := range s.entries {
		if s.entries[i].valid {
			dst = append(dst, FlowID(i))
		}
	}
	return dst
}

// Event is one entry of the AP output event buffer: reporting element
// ReportCode fired at input offset Offset while flow Flow was executing
// (§2.1, §3.2: match events encapsulate a flow identifier).
type Event struct {
	Flow   FlowID
	Code   int32
	State  nfa.StateID
	Offset int64
}

// EventBuffer collects report events for host post-processing.
type EventBuffer struct {
	Events []Event
}

// Append records one event.
func (b *EventBuffer) Append(e Event) { b.Events = append(b.Events, e) }

// Len returns the number of buffered events.
func (b *EventBuffer) Len() int { return len(b.Events) }
