package report

import (
	"strings"
	"testing"

	"pap/internal/experiments"
)

func TestGenerate(t *testing.T) {
	env := experiments.NewEnv(experiments.Options{
		Scale:      0.02,
		Size1MB:    8 << 10,
		Size10MB:   16 << 10,
		Seed:       5,
		Workers:    2,
		Benchmarks: []string{"ExactMatch", "Bro217"},
	})
	out, err := GenerateString(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<!DOCTYPE html>",
		"Figure 3",
		"Figure 8",
		"Figure 9",
		"Figure 10",
		"Figure 11",
		"Figure 12",
		"<svg",
		"ExactMatch",
		"Bro217",
		"geomean",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if n := strings.Count(out, "<svg"); n != 7 {
		t.Errorf("got %d charts, want 7", n)
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Error("report contains NaN/Inf values")
	}
}

func TestChartEmpty(t *testing.T) {
	c := &chart{title: "empty"}
	var sb strings.Builder
	c.render(&sb)
	if !strings.Contains(sb.String(), "</svg>") {
		t.Fatal("empty chart did not close SVG")
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		12345: "12345",
		42.19: "42.2",
		3.14:  "3.14",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", v, got, want)
		}
	}
}
