// Package report renders the experiment results as a self-contained HTML
// document with inline SVG bar charts — the repository's equivalent of the
// paper's Figures 3 and 8-12. No external assets or JavaScript.
package report

import (
	"fmt"
	"html"
	"io"
	"math"
	"strings"

	"pap/internal/experiments"
)

// series is one bar group per benchmark.
type series struct {
	label  string
	values []float64
}

// chart is one figure: grouped (possibly log-scale) vertical bars.
type chart struct {
	title    string
	subtitle string
	names    []string // x categories (benchmarks)
	series   []series
	logScale bool
	unit     string
}

const (
	chartW   = 960
	chartH   = 320
	marginL  = 70
	marginB  = 110
	marginT  = 40
	plotW    = chartW - marginL - 20
	plotH    = chartH - marginT - marginB
	palette0 = "#4878a8"
	palette1 = "#e8903a"
	palette2 = "#6aa84f"
	palette3 = "#a85c78"
)

var palette = []string{palette0, palette1, palette2, palette3}

// render writes the chart as inline SVG.
func (c *chart) render(w io.Writer) {
	maxV := 0.0
	minPos := math.Inf(1)
	for _, s := range c.series {
		for _, v := range s.values {
			if v > maxV {
				maxV = v
			}
			if v > 0 && v < minPos {
				minPos = v
			}
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	if math.IsInf(minPos, 1) {
		minPos = 1
	}

	scaleY := func(v float64) float64 {
		if c.logScale {
			lo := math.Log10(math.Max(minPos/2, 1e-3))
			hi := math.Log10(maxV)
			if hi <= lo {
				hi = lo + 1
			}
			if v <= 0 {
				return 0
			}
			return plotH * (math.Log10(v) - lo) / (hi - lo)
		}
		return plotH * v / maxV
	}

	fmt.Fprintf(w, `<svg viewBox="0 0 %d %d" xmlns="http://www.w3.org/2000/svg" role="img">`+"\n", chartW, chartH)
	fmt.Fprintf(w, `<text x="%d" y="20" font-size="15" font-weight="bold">%s</text>`+"\n",
		marginL, html.EscapeString(c.title))
	if c.subtitle != "" {
		fmt.Fprintf(w, `<text x="%d" y="36" font-size="11" fill="#555">%s</text>`+"\n",
			marginL, html.EscapeString(c.subtitle))
	}
	// Axes.
	fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n",
		marginL, marginT, marginL, marginT+plotH)
	// Y reference lines.
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
		v := maxV * frac
		y := float64(marginT+plotH) - scaleY(v)
		fmt.Fprintf(w, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, y, marginL+plotW, y)
		fmt.Fprintf(w, `<text x="%d" y="%.1f" font-size="10" text-anchor="end" fill="#555">%s</text>`+"\n",
			marginL-5, y+3, formatTick(v))
	}

	groups := len(c.names)
	if groups == 0 {
		fmt.Fprint(w, "</svg>\n")
		return
	}
	groupW := float64(plotW) / float64(groups)
	barW := groupW * 0.8 / float64(len(c.series))
	for gi, name := range c.names {
		gx := float64(marginL) + groupW*float64(gi) + groupW*0.1
		for si, s := range c.series {
			v := 0.0
			if gi < len(s.values) {
				v = s.values[gi]
			}
			h := scaleY(v)
			x := gx + barW*float64(si)
			y := float64(marginT+plotH) - h
			fmt.Fprintf(w, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s">`+
				`<title>%s %s: %s%s</title></rect>`+"\n",
				x, y, barW*0.92, h, palette[si%len(palette)],
				html.EscapeString(name), html.EscapeString(s.label), formatTick(v),
				html.EscapeString(c.unit))
		}
		// Rotated category label.
		lx := gx + groupW*0.4
		ly := float64(marginT + plotH + 8)
		fmt.Fprintf(w, `<text x="%.1f" y="%.1f" font-size="10" text-anchor="end" `+
			`transform="rotate(-45 %.1f %.1f)">%s</text>`+"\n",
			lx, ly+6, lx, ly+6, html.EscapeString(name))
	}
	// Legend.
	lx := marginL + plotW - 160
	for si, s := range c.series {
		y := marginT + 14*si
		fmt.Fprintf(w, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n",
			lx, y, palette[si%len(palette)])
		fmt.Fprintf(w, `<text x="%d" y="%d" font-size="10">%s</text>`+"\n",
			lx+14, y+9, html.EscapeString(s.label))
	}
	fmt.Fprint(w, "</svg>\n")
}

func formatTick(v float64) string {
	switch {
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Generate runs every figure through env and writes the HTML report.
func Generate(w io.Writer, env *experiments.Env) error {
	o := env.Options()
	fmt.Fprintf(w, `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>Parallel Automata Processor — regenerated evaluation</title>
<style>body{font-family:sans-serif;max-width:1000px;margin:24px auto;color:#222}
h1{font-size:22px} p.meta{color:#555;font-size:13px} svg{margin:18px 0;border:1px solid #eee}</style>
</head><body>
<h1>Parallel Automata Processor — regenerated evaluation</h1>
<p class="meta">Subramaniyan &amp; Das, ISCA 2017 — reproduced at scale %.2f,
streams %d / %d bytes, seed %d. Shapes, not absolute values, are the
comparison target; see EXPERIMENTS.md.</p>
`, o.Scale, o.Size1MB, o.Size10MB, o.Seed)

	// Figure 3.
	f3, err := env.Fig3()
	if err != nil {
		return err
	}
	c := &chart{
		title:    "Figure 3 — Range of input symbols",
		subtitle: "states vs min/avg/max range over the 256 symbols (log scale)",
		logScale: true,
	}
	var states, minR, avgR, maxR []float64
	for _, r := range f3 {
		c.names = append(c.names, r.Name)
		states = append(states, float64(r.States))
		minR = append(minR, float64(r.MinRange))
		avgR = append(avgR, r.AvgRange)
		maxR = append(maxR, float64(r.MaxRange))
	}
	c.series = []series{{"#states", states}, {"min", minR}, {"avg", avgR}, {"max", maxR}}
	c.render(w)

	// Figure 8, both sizes.
	for _, size := range []experiments.SizeClass{experiments.Size1MB, experiments.Size10MB} {
		sum, err := env.Fig8(size)
		if err != nil {
			return err
		}
		c := &chart{
			title: fmt.Sprintf("Figure 8 — Speedup over sequential AP (%s class)", size),
			subtitle: fmt.Sprintf("geomean %.2fx (1 rank) / %.2fx (4 ranks)",
				sum.Geomean1, sum.Geomean4),
			unit: "x",
		}
		var s1, s4, i1, i4 []float64
		for _, r := range sum.Rows {
			c.names = append(c.names, r.Name)
			s1 = append(s1, r.PAP1Rank)
			s4 = append(s4, r.PAP4Rank)
			i1 = append(i1, r.Ideal1)
			i4 = append(i4, r.Ideal4)
		}
		c.series = []series{{"PAP-1rank", s1}, {"PAP-4ranks", s4}, {"Ideal-1R", i1}, {"Ideal-4R", i4}}
		c.render(w)
	}

	// Figure 9.
	f9, err := env.Fig9()
	if err != nil {
		return err
	}
	c = &chart{
		title:    "Figure 9 — Flow reduction",
		subtitle: "enumeration paths in range → after CC merge → after parent merge → avg active (log scale)",
		logScale: true,
	}
	var inR, afC, afP, act []float64
	for _, r := range f9 {
		c.names = append(c.names, r.Name)
		inR = append(inR, float64(r.FlowsInRange))
		afC = append(afC, float64(r.FlowsAfterCC))
		afP = append(afP, float64(r.FlowsAfterParent))
		act = append(act, r.AvgActiveFlows)
	}
	c.series = []series{{"in range", inR}, {"after CC", afC}, {"after parent", afP}, {"avg active", act}}
	c.render(w)

	// Figures 10-12.
	f10, err := env.Fig10()
	if err != nil {
		return err
	}
	c = &chart{title: "Figure 10 — Flow switching overhead", unit: "%"}
	var ov []float64
	for _, r := range f10 {
		c.names = append(c.names, r.Name)
		ov = append(ov, r.OverheadPct)
	}
	c.series = []series{{"overhead %", ov}}
	c.render(w)

	f11, err := env.Fig11()
	if err != nil {
		return err
	}
	c = &chart{title: "Figure 11 — False-path invalidation time at host", unit: " cycles"}
	var cyc []float64
	for _, r := range f11 {
		c.names = append(c.names, r.Name)
		cyc = append(cyc, float64(r.Cycles))
	}
	c.series = []series{{"Tcpu (symbol cycles)", cyc}}
	c.render(w)

	f12, err := env.Fig12()
	if err != nil {
		return err
	}
	c = &chart{title: "Figure 12 — Increase in output report events", logScale: true, unit: "x"}
	var inc []float64
	for _, r := range f12 {
		c.names = append(c.names, r.Name)
		inc = append(inc, r.Increase)
	}
	c.series = []series{{"emitted / true", inc}}
	c.render(w)

	fmt.Fprint(w, "</body></html>\n")
	return nil
}

// GenerateString is Generate into a string (test helper and API sugar).
func GenerateString(env *experiments.Env) (string, error) {
	var sb strings.Builder
	if err := Generate(&sb, env); err != nil {
		return "", err
	}
	return sb.String(), nil
}
