package nfa

import (
	"testing"
)

// runHomog executes a homogeneous NFA built in this package's tests with
// the same semantics as package engine (duplicated minimally here to avoid
// an import cycle: engine imports nfa).
func runHomog(n *NFA, input []byte) []int {
	enabled := map[StateID]bool{}
	for _, q := range n.StartStates() {
		enabled[q] = true
	}
	var reportOffsets []int
	for i, sym := range input {
		for _, q := range n.AllInputStates() {
			enabled[q] = true
		}
		next := map[StateID]bool{}
		for q := range enabled {
			if !n.Label(q).Test(sym) {
				continue
			}
			if n.State(q).Flags&Report != 0 {
				reportOffsets = append(reportOffsets, i)
			}
			for _, c := range n.Succ(q) {
				next[c] = true
			}
		}
		enabled = next
	}
	return reportOffsets
}

// TestHomogenizeLinear: classical a->b->c with no ε must behave like the
// anchored literal "abc".
func TestHomogenizeLinear(t *testing.T) {
	c := NewClassical("abc")
	s0, s1, s2, s3 := c.AddState(), c.AddState(), c.AddState(), c.AddState()
	c.SetStart(s0)
	c.SetAccept(s3, 1)
	c.AddEdge(s0, s1, ClassOf('a'))
	c.AddEdge(s1, s2, ClassOf('b'))
	c.AddEdge(s2, s3, ClassOf('c'))
	b := NewBuilder("abc")
	if err := c.Homogenize(b, true); err != nil {
		t.Fatal(err)
	}
	n := b.MustBuild()
	if n.Len() != 3 {
		t.Fatalf("states = %d, want 3 (one per labelled edge target)", n.Len())
	}
	if got := runHomog(n, []byte("abc")); len(got) != 1 || got[0] != 2 {
		t.Fatalf("abc reports = %v", got)
	}
	if got := runHomog(n, []byte("abd")); len(got) != 0 {
		t.Fatalf("abd reports = %v", got)
	}
	if got := runHomog(n, []byte("xabc")); len(got) != 0 {
		t.Fatalf("anchored matched mid-stream: %v", got)
	}
}

// TestHomogenizeEpsilon: ε-edges must be eliminated with closure semantics:
// a(b|ε)c accepts "ac" and "abc".
func TestHomogenizeEpsilon(t *testing.T) {
	c := NewClassical("eps")
	s0, s1, s2, s3 := c.AddState(), c.AddState(), c.AddState(), c.AddState()
	c.SetStart(s0)
	c.SetAccept(s3, 0)
	c.AddEdge(s0, s1, ClassOf('a'))
	c.AddEdge(s1, s2, ClassOf('b'))
	c.AddEps(s1, s2) // skip the b
	c.AddEdge(s2, s3, ClassOf('c'))
	b := NewBuilder("eps")
	if err := c.Homogenize(b, true); err != nil {
		t.Fatal(err)
	}
	n := b.MustBuild()
	for _, in := range []string{"ac", "abc"} {
		if got := runHomog(n, []byte(in)); len(got) != 1 {
			t.Fatalf("%s reports = %v", in, got)
		}
	}
	if got := runHomog(n, []byte("abbc")); len(got) != 0 {
		t.Fatalf("abbc reports = %v", got)
	}
}

// TestHomogenizeEpsilonChainToAccept: ε-reaching an accept state makes the
// predecessor's homogeneous state reporting.
func TestHomogenizeEpsilonChainToAccept(t *testing.T) {
	c := NewClassical("epsacc")
	s0, s1, s2 := c.AddState(), c.AddState(), c.AddState()
	c.SetStart(s0)
	c.SetAccept(s2, 5)
	c.AddEdge(s0, s1, ClassOf('a'))
	c.AddEps(s1, s2)
	b := NewBuilder("epsacc")
	if err := c.Homogenize(b, true); err != nil {
		t.Fatal(err)
	}
	n := b.MustBuild()
	if got := runHomog(n, []byte("a")); len(got) != 1 || got[0] != 0 {
		t.Fatalf("reports = %v", got)
	}
	if n.State(0).ReportCode != 5 {
		t.Fatalf("report code = %d", n.State(0).ReportCode)
	}
}

// TestHomogenizeUnanchored: all-input starts fire at any offset.
func TestHomogenizeUnanchored(t *testing.T) {
	c := NewClassical("un")
	s0, s1 := c.AddState(), c.AddState()
	c.SetStart(s0)
	c.SetAccept(s1, 0)
	c.AddEdge(s0, s1, ClassOf('x'))
	b := NewBuilder("un")
	if err := c.Homogenize(b, false); err != nil {
		t.Fatal(err)
	}
	n := b.MustBuild()
	if got := runHomog(n, []byte("aaxaa")); len(got) != 1 || got[0] != 2 {
		t.Fatalf("reports = %v", got)
	}
}

// TestHomogenizeEmptyStringRejected: a start state whose ε-closure accepts
// must be rejected (the AP reports on symbols only).
func TestHomogenizeEmptyStringRejected(t *testing.T) {
	c := NewClassical("empty")
	s0, s1 := c.AddState(), c.AddState()
	c.SetStart(s0)
	c.AddEps(s0, s1)
	c.SetAccept(s1, 0)
	b := NewBuilder("empty")
	if err := c.Homogenize(b, true); err == nil {
		t.Fatal("empty-string acceptor homogenized without error")
	}
}

// TestHomogenizeSharedEdgeClasses: parallel edges with the same target and
// class share one homogeneous state; different classes split.
func TestHomogenizeSharedEdgeClasses(t *testing.T) {
	c := NewClassical("shared")
	s0, s1, s2 := c.AddState(), c.AddState(), c.AddState()
	c.SetStart(s0)
	c.SetAccept(s2, 0)
	c.AddEdge(s0, s2, ClassOf('a'))
	c.AddEdge(s1, s2, ClassOf('a')) // same (target, class): shared
	c.AddEdge(s0, s2, ClassOf('b')) // same target, new class: split
	c.AddEdge(s0, s1, ClassOf('x'))
	b := NewBuilder("shared")
	if err := c.Homogenize(b, true); err != nil {
		t.Fatal(err)
	}
	n := b.MustBuild()
	if n.Len() != 3 { // (s2,'a'), (s2,'b'), (s1,'x')
		t.Fatalf("states = %d, want 3", n.Len())
	}
	for _, in := range []string{"a", "b", "xa"} {
		if got := runHomog(n, []byte(in)); len(got) != 1 {
			t.Fatalf("%s reports = %v", in, got)
		}
	}
}

// TestHomogenizeSelfEps: ε self-loops must not hang closure computation.
func TestHomogenizeSelfEps(t *testing.T) {
	c := NewClassical("selfeps")
	s0, s1 := c.AddState(), c.AddState()
	c.SetStart(s0)
	c.SetAccept(s1, 0)
	c.AddEps(s0, s0)
	c.AddEdge(s0, s1, ClassOf('y'))
	b := NewBuilder("selfeps")
	if err := c.Homogenize(b, true); err != nil {
		t.Fatal(err)
	}
	n := b.MustBuild()
	if got := runHomog(n, []byte("y")); len(got) != 1 {
		t.Fatalf("reports = %v", got)
	}
}
