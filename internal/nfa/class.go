package nfa

import (
	"fmt"
	"math/bits"
	"strings"
)

// Class is a set of 8-bit input symbols, the label of one homogeneous-NFA
// state. On the Micron AP this is exactly the 256-bit column an STE stores
// (one-hot rows per matching symbol). Class is a value type; the zero value
// matches nothing.
type Class [4]uint64

// AnyClass returns the class matching all 256 symbols.
func AnyClass() Class {
	return Class{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}
}

// ClassOf returns the class matching exactly the given symbols.
func ClassOf(syms ...byte) Class {
	var c Class
	for _, s := range syms {
		c.Add(s)
	}
	return c
}

// ClassRange returns the class matching all symbols in [lo, hi].
func ClassRange(lo, hi byte) Class {
	var c Class
	c.AddRange(lo, hi)
	return c
}

// Add includes symbol s in the class.
func (c *Class) Add(s byte) { c[s>>6] |= 1 << (s & 63) }

// AddRange includes all symbols in [lo, hi].
func (c *Class) AddRange(lo, hi byte) {
	for s := int(lo); s <= int(hi); s++ {
		c.Add(byte(s))
	}
}

// Remove excludes symbol s from the class.
func (c *Class) Remove(s byte) { c[s>>6] &^= 1 << (s & 63) }

// Test reports whether symbol s is in the class.
func (c Class) Test(s byte) bool { return c[s>>6]&(1<<(s&63)) != 0 }

// Negate returns the complement of the class.
func (c Class) Negate() Class {
	return Class{^c[0], ^c[1], ^c[2], ^c[3]}
}

// Union returns c ∪ o.
func (c Class) Union(o Class) Class {
	return Class{c[0] | o[0], c[1] | o[1], c[2] | o[2], c[3] | o[3]}
}

// Intersect returns c ∩ o.
func (c Class) Intersect(o Class) Class {
	return Class{c[0] & o[0], c[1] & o[1], c[2] & o[2], c[3] & o[3]}
}

// Count returns the number of symbols in the class.
func (c Class) Count() int {
	return bits.OnesCount64(c[0]) + bits.OnesCount64(c[1]) +
		bits.OnesCount64(c[2]) + bits.OnesCount64(c[3])
}

// Empty reports whether the class matches no symbol.
func (c Class) Empty() bool { return c == Class{} }

// Symbols appends all symbols in the class to dst in ascending order.
func (c Class) Symbols(dst []byte) []byte {
	for wi, w := range c {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			dst = append(dst, byte(wi*64+b))
			w &= w - 1
		}
	}
	return dst
}

// Pick returns the n-th symbol (0-based) of the class in ascending order.
// It panics if n >= Count().
func (c Class) Pick(n int) byte {
	for wi, w := range c {
		cnt := bits.OnesCount64(w)
		if n >= cnt {
			n -= cnt
			continue
		}
		for ; ; n-- {
			b := bits.TrailingZeros64(w)
			if n == 0 {
				return byte(wi*64 + b)
			}
			w &= w - 1
		}
	}
	panic("nfa: Class.Pick index out of range")
}

// String renders the class in a compact regex-like form, e.g. "[a-c x]".
func (c Class) String() string {
	n := c.Count()
	switch {
	case n == 0:
		return "[]"
	case n == 256:
		return "[*]"
	case n == 1:
		return fmt.Sprintf("%q", c.Pick(0))
	}
	var b strings.Builder
	b.WriteByte('[')
	syms := c.Symbols(nil)
	for i := 0; i < len(syms); {
		j := i
		for j+1 < len(syms) && syms[j+1] == syms[j]+1 {
			j++
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		if j > i {
			fmt.Fprintf(&b, "%s-%s", printable(syms[i]), printable(syms[j]))
		} else {
			b.WriteString(printable(syms[i]))
		}
		i = j + 1
	}
	b.WriteByte(']')
	return b.String()
}

func printable(s byte) string {
	if s >= 0x21 && s <= 0x7e {
		return string(rune(s))
	}
	return fmt.Sprintf("\\x%02x", s)
}
