package nfa

import (
	"fmt"
)

// Classical is a builder for textbook NFAs — labelled edges and ε-edges —
// that Homogenize converts into the AP's homogeneous (ANML) form. It exists
// for automata that are naturally expressed with ε-transitions, such as the
// Levenshtein automata (deletions are ε-moves) used by the bioinformatics
// benchmarks.
type Classical struct {
	name   string
	states int
	start  map[int]bool
	accept map[int]int32 // state → report code
	eps    map[int][]int
	edges  []classicalEdge
}

type classicalEdge struct {
	from, to int
	class    Class
}

// NewClassical returns an empty classical-NFA builder.
func NewClassical(name string) *Classical {
	return &Classical{
		name:   name,
		start:  make(map[int]bool),
		accept: make(map[int]int32),
		eps:    make(map[int][]int),
	}
}

// AddState adds a state and returns its index.
func (c *Classical) AddState() int {
	c.states++
	return c.states - 1
}

// SetStart marks a state as a start state.
func (c *Classical) SetStart(s int) { c.start[s] = true }

// SetAccept marks a state as accepting with the given report code.
func (c *Classical) SetAccept(s int, code int32) { c.accept[s] = code }

// AddEdge adds a labelled transition.
func (c *Classical) AddEdge(from, to int, class Class) {
	c.edges = append(c.edges, classicalEdge{from: from, to: to, class: class})
}

// AddEps adds an ε-transition.
func (c *Classical) AddEps(from, to int) {
	c.eps[from] = append(c.eps[from], to)
}

// Homogenize converts the classical NFA into homogeneous form and appends
// it to the builder b. One homogeneous state is created per (classical
// target state, incoming label class) pair; ε-edges are eliminated by
// closure. anchored selects StartOfData (true) or AllInput (false) starts.
// Accepting homogeneous states report with the classical state's code.
//
// If a start state is also accepting (empty-string acceptance), Homogenize
// returns an error: the AP reports on symbols, not on emptiness.
func (c *Classical) Homogenize(b *Builder, anchored bool) error {
	closure := c.epsClosures()
	for s := range c.start {
		for _, t := range closure[s] {
			if _, ok := c.accept[t]; ok {
				return fmt.Errorf("nfa: classical NFA %q accepts the empty string", c.name)
			}
		}
	}

	// One homogeneous state per (target, class). Classes are deduplicated
	// by value so parallel edges with the same class share a state.
	type key struct {
		target int
		class  Class
	}
	ids := make(map[key]StateID)
	var order []key
	for _, e := range c.edges {
		k := key{target: e.to, class: e.class}
		if _, ok := ids[k]; !ok {
			var flags Flags
			id := b.AddState(e.class, flags)
			ids[k] = id
			order = append(order, k)
		}
	}

	startFlag := AllInput
	if anchored {
		startFlag = StartOfData
	}
	// Mark starts: homogeneous states reachable by one labelled edge from
	// the ε-closure of any start state.
	startReach := make(map[int]bool)
	for s := range c.start {
		for _, t := range closure[s] {
			startReach[t] = true
		}
	}
	for _, e := range c.edges {
		if startReach[e.from] {
			b.SetFlags(ids[key{e.to, e.class}], startFlag)
		}
	}

	// Accepting: a homogeneous state reports if its classical target's
	// ε-closure reaches an accepting state.
	for _, k := range order {
		for _, t := range closure[k.target] {
			if code, ok := c.accept[t]; ok {
				b.SetFlags(ids[k], Report)
				b.SetReportCode(ids[k], code)
				break
			}
		}
	}

	// Edges: homogeneous (s,c) → (s',c') iff a labelled edge (t,c',s')
	// exists with t in the ε-closure of s.
	outByFrom := make(map[int][]classicalEdge)
	for _, e := range c.edges {
		outByFrom[e.from] = append(outByFrom[e.from], e)
	}
	for _, k := range order {
		from := ids[k]
		for _, t := range closure[k.target] {
			for _, e := range outByFrom[t] {
				b.AddEdge(from, ids[key{e.to, e.class}])
			}
		}
	}
	return nil
}

// epsClosures returns, for each state, the list of states reachable via
// ε-edges (including itself).
func (c *Classical) epsClosures() [][]int {
	out := make([][]int, c.states)
	for s := 0; s < c.states; s++ {
		seen := map[int]bool{s: true}
		stack := []int{s}
		var cl []int
		for len(stack) > 0 {
			q := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cl = append(cl, q)
			for _, t := range c.eps[q] {
				if !seen[t] {
					seen[t] = true
					stack = append(stack, t)
				}
			}
		}
		out[s] = cl
	}
	return out
}
