package nfa

import (
	"fmt"
	"io"
)

// WriteDOT renders the automaton in Graphviz DOT form for inspection.
// Start-of-data states are drawn as diamonds, all-input states as double
// diamonds (peripheries=2), reporting states as double circles.
func (n *NFA) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n", n.name); err != nil {
		return err
	}
	for q := range n.states {
		s := n.states[q]
		shape := "circle"
		periph := 1
		if s.Flags&StartOfData != 0 {
			shape = "diamond"
		}
		if s.Flags&AllInput != 0 {
			shape = "diamond"
			periph = 2
		}
		if s.Flags&Report != 0 {
			periph = 2
			if shape == "circle" {
				shape = "doublecircle"
			}
		}
		label := s.Label.String()
		if s.Flags&Report != 0 {
			label = fmt.Sprintf("%s\\nR%d", label, s.ReportCode)
		}
		if _, err := fmt.Fprintf(w, "  n%d [shape=%s peripheries=%d label=\"%d:%s\"];\n",
			q, shape, periph, q, label); err != nil {
			return err
		}
	}
	for q := range n.states {
		for _, c := range n.succ[q] {
			if _, err := fmt.Fprintf(w, "  n%d -> n%d;\n", q, c); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
