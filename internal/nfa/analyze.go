package nfa

import (
	"sort"

	"pap/internal/bitset"
)

// ConnectedComponents returns, for each state, the ID of its (undirected)
// connected component, and the number of components. Components are the
// "disconnected sub-graphs" of §3.3.1: patterns that share no states. The
// result is computed once and cached; safe for concurrent use.
func (n *NFA) ConnectedComponents() (ids []int32, count int) {
	n.analysisMu.Lock()
	defer n.analysisMu.Unlock()
	return n.ccLocked()
}

// ccLocked computes/returns the component table; analysisMu must be held.
func (n *NFA) ccLocked() (ids []int32, count int) {
	if n.cc != nil {
		return n.cc, n.ccCount
	}
	ids = make([]int32, len(n.states))
	for i := range ids {
		ids[i] = -1
	}
	var stack []StateID
	count = 0
	for root := range n.states {
		if ids[root] != -1 {
			continue
		}
		id := int32(count)
		count++
		stack = append(stack[:0], StateID(root))
		ids[root] = id
		for len(stack) > 0 {
			q := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, c := range n.succ[q] {
				if ids[c] == -1 {
					ids[c] = id
					stack = append(stack, c)
				}
			}
			for _, p := range n.pred[q] {
				if ids[p] == -1 {
					ids[p] = id
					stack = append(stack, p)
				}
			}
		}
	}
	n.cc, n.ccCount = ids, count
	return ids, count
}

// CCOf returns the connected-component ID of state q.
func (n *NFA) CCOf(q StateID) int32 {
	ids, _ := n.ConnectedComponents()
	return ids[q]
}

// CCMask returns a bitmap of all states in component cc. Masks are the
// per-component bitmaps used to split a merged flow's results (§3.3.1).
// Safe for concurrent use; callers must not modify the result.
func (n *NFA) CCMask(cc int32) *bitset.Set {
	n.analysisMu.Lock()
	defer n.analysisMu.Unlock()
	ids, count := n.ccLocked()
	if n.ccMasks == nil {
		n.ccMasks = make([]*bitset.Set, count)
	}
	if n.ccMasks[cc] == nil {
		m := bitset.New(len(n.states))
		for q, id := range ids {
			if id == cc {
				m.Set(q)
			}
		}
		n.ccMasks[cc] = m
	}
	return n.ccMasks[cc]
}

// Range returns the range of symbol σ (§3.1): the sorted union of the
// children of every state whose label matches σ. During execution, after
// consuming σ the enabled set is always a subset of Range(σ) ∪ AllInput.
// The result is cached; callers must not modify it. Safe for concurrent
// use: each cache entry is written exactly once under analysisMu and never
// mutated afterwards.
func (n *NFA) Range(sym byte) []StateID {
	n.analysisMu.Lock()
	defer n.analysisMu.Unlock()
	e := &n.rangeTab[sym]
	if e.computed {
		return e.states
	}
	seen := make(map[StateID]struct{})
	for q := range n.states {
		if !n.states[q].Label.Test(sym) {
			continue
		}
		for _, c := range n.succ[q] {
			seen[c] = struct{}{}
		}
	}
	out := make([]StateID, 0, len(seen))
	for q := range seen {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	e.computed, e.states = true, out
	return out
}

// RangeSize returns len(Range(sym)) without retaining the slice.
func (n *NFA) RangeSize(sym byte) int { return len(n.Range(sym)) }

// RangeStats summarises Range sizes across all 256 symbols (Figure 3).
type RangeStats struct {
	Min, Max int
	Avg      float64
	MinSym   byte // a symbol achieving Min
}

// RangeStatsAll computes min/avg/max range size over all 256 symbols.
func (n *NFA) RangeStatsAll() RangeStats {
	rs := RangeStats{Min: int(^uint(0) >> 1)}
	total := 0
	for s := 0; s < 256; s++ {
		sz := n.RangeSize(byte(s))
		total += sz
		if sz < rs.Min {
			rs.Min, rs.MinSym = sz, byte(s)
		}
		if sz > rs.Max {
			rs.Max = sz
		}
	}
	rs.Avg = float64(total) / 256
	return rs
}

// ParentGroup is one enumeration unit (§3.3.2): the set of states activated
// together when one parent state fires on the cut symbol. Parents with
// identical child sets are folded into a single group; the group is true at
// a segment boundary iff any of its parents fired on the boundary symbol.
type ParentGroup struct {
	Parents []StateID // σ-labelled parents sharing this child set
	Seed    []StateID // sorted child set (the enumeration start states)
	CC      int32     // component all Seed states belong to
}

// ParentGroups returns the deduplicated enumeration units of symbol σ,
// ordered deterministically (by first parent). Each group's Seed lies in a
// single connected component because a parent and its children are
// connected.
func (n *NFA) ParentGroups(sym byte) []ParentGroup {
	type key string
	groups := make(map[key]*ParentGroup)
	var order []key
	var buf []byte
	for q := range n.states {
		if !n.states[q].Label.Test(sym) || len(n.succ[q]) == 0 {
			continue
		}
		buf = buf[:0]
		for _, c := range n.succ[q] {
			buf = append(buf, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
		}
		k := key(buf)
		g, ok := groups[k]
		if !ok {
			seed := make([]StateID, len(n.succ[q]))
			copy(seed, n.succ[q])
			g = &ParentGroup{Seed: seed, CC: n.CCOf(seed[0])}
			groups[k] = g
			order = append(order, k)
		}
		g.Parents = append(g.Parents, StateID(q))
	}
	out := make([]ParentGroup, 0, len(order))
	for _, k := range order {
		out = append(out, *groups[k])
	}
	return out
}

// Stats summarises an automaton's structure (Table 1 inputs).
type Stats struct {
	Name       string
	States     int
	Edges      int
	CCs        int
	Reporting  int
	AllInput   int
	StartOfDta int
}

// ComputeStats gathers structural statistics.
func (n *NFA) ComputeStats() Stats {
	_, cc := n.ConnectedComponents()
	return Stats{
		Name:       n.name,
		States:     n.Len(),
		Edges:      n.Edges(),
		CCs:        cc,
		Reporting:  len(n.ReportingStates()),
		AllInput:   len(n.allInput),
		StartOfDta: len(n.startOfData),
	}
}

// ReachableFrom returns the set of states reachable (by any symbols) from
// the given seed states, including the seeds. Used by validity checks and
// by the deactivation analysis in tests.
func (n *NFA) ReachableFrom(seed []StateID) *bitset.Set {
	r := bitset.New(n.Len())
	var stack []StateID
	for _, q := range seed {
		if !r.Test(int(q)) {
			r.Set(int(q))
			stack = append(stack, q)
		}
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range n.succ[q] {
			if !r.Test(int(c)) {
				r.Set(int(c))
				stack = append(stack, c)
			}
		}
	}
	return r
}
