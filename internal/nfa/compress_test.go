package nfa

import (
	"math/rand"
	"testing"
)

// trieUnion builds an uncompressed union of literal patterns: each pattern
// is an independent chain, so shared prefixes are duplicated.
func trieUnion(name string, patterns []string) *NFA {
	b := NewBuilder(name)
	for ri, p := range patterns {
		var prev StateID = -1
		for i := 0; i < len(p); i++ {
			flags := Flags(0)
			if i == 0 {
				flags |= AllInput
			}
			id := b.AddState(ClassOf(p[i]), flags)
			if i == len(p)-1 {
				b.SetFlags(id, Report)
				b.SetReportCode(id, int32(ri))
			}
			if prev >= 0 {
				b.AddEdge(prev, id)
			}
			prev = id
		}
	}
	return b.MustBuild()
}

func TestMergeCommonPrefixesReduces(t *testing.T) {
	n := trieUnion("t", []string{"hello", "help", "hero"})
	m := MergeCommonPrefixes(n)
	// "he" is shared by all three and "hel" by two, and the cascade merges
	// h, e, and one l: {h e l r l p o(R0) o(R2)} = 8 states.
	if m.Len() >= n.Len() {
		t.Fatalf("no reduction: %d -> %d", n.Len(), m.Len())
	}
	if m.Len() != 8 {
		t.Fatalf("merged to %d states, want 8", m.Len())
	}
}

func TestMergeCommonPrefixesNoFalseMerge(t *testing.T) {
	// Different report codes on last states must not merge, and states with
	// different labels must not merge.
	n := trieUnion("t", []string{"ab", "ab"})
	// Both rules are "ab" but report codes 0 and 1 differ on the 'b' states,
	// so only the two 'a' states merge: 4 -> 3.
	m := MergeCommonPrefixes(n)
	if m.Len() != 3 {
		t.Fatalf("merged to %d states, want 3", m.Len())
	}
	codes := map[int32]bool{}
	for _, q := range m.ReportingStates() {
		codes[m.State(q).ReportCode] = true
	}
	if !codes[0] || !codes[1] {
		t.Fatalf("lost report codes: %v", codes)
	}
}

func TestMergeFixpoint(t *testing.T) {
	n := trieUnion("t", []string{"abcde", "abcdf"})
	m := MergeCommonPrefixes(n)
	// Shared prefix "abcd" merges fully: 10 -> 6.
	if m.Len() != 6 {
		t.Fatalf("merged to %d states, want 6", m.Len())
	}
	// Idempotent.
	m2 := MergeCommonPrefixes(m)
	if m2.Len() != m.Len() {
		t.Fatalf("second merge changed size: %d -> %d", m.Len(), m2.Len())
	}
}

func TestMergeKeepsSelfLoopsApart(t *testing.T) {
	// Two states with self-loops have themselves in their parent sets, so
	// they must never merge even with identical labels.
	b := NewBuilder("loops")
	a := b.AddState(ClassOf('x'), AllInput)
	c := b.AddState(ClassOf('x'), AllInput)
	b.AddEdge(a, a)
	b.AddEdge(c, c)
	r := b.AddReportState(ClassOf('y'), 0, 0)
	b.AddEdge(a, r)
	n := b.MustBuild()
	m := MergeCommonPrefixes(n)
	if m.Len() != 3 {
		t.Fatalf("self-loop states merged: %d states, want 3", m.Len())
	}
}

// randomTrie generates patterns with heavy prefix sharing for the
// language-preservation test.
func randomTrie(rng *rand.Rand, k int) []string {
	prefixes := []string{"GET /", "POST /", "HTTP", "evil"}
	var out []string
	for i := 0; i < k; i++ {
		p := prefixes[rng.Intn(len(prefixes))]
		for j := 0; j < 2+rng.Intn(5); j++ {
			p += string(rune('a' + rng.Intn(4)))
		}
		out = append(out, p)
	}
	return out
}

// TestMergePreservesStructure checks that compression preserves the set of
// report codes and never increases states, for random pattern sets.
// (Language preservation is verified end-to-end in package engine's tests,
// which execute both versions.)
func TestMergePreservesStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		pats := randomTrie(rng, 8)
		n := trieUnion("t", pats)
		m := MergeCommonPrefixes(n)
		if m.Len() > n.Len() {
			t.Fatalf("merge grew automaton: %d -> %d", n.Len(), m.Len())
		}
		want := map[int32]bool{}
		for _, q := range n.ReportingStates() {
			want[n.State(q).ReportCode] = true
		}
		got := map[int32]bool{}
		for _, q := range m.ReportingStates() {
			got[m.State(q).ReportCode] = true
		}
		if len(got) != len(want) {
			t.Fatalf("report codes changed: %v -> %v", want, got)
		}
	}
}
