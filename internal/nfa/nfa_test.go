package nfa

import (
	"strings"
	"testing"
)

// buildLinear returns the 3-state automaton for the anchored pattern "abc".
func buildLinear(t *testing.T) *NFA {
	t.Helper()
	b := NewBuilder("abc")
	a := b.AddState(ClassOf('a'), StartOfData)
	s2 := b.AddState(ClassOf('b'), 0)
	s3 := b.AddReportState(ClassOf('c'), 0, 7)
	b.AddEdge(a, s2)
	b.AddEdge(s2, s3)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestBuilderBasics(t *testing.T) {
	n := buildLinear(t)
	if n.Len() != 3 || n.Edges() != 2 {
		t.Fatalf("Len=%d Edges=%d, want 3/2", n.Len(), n.Edges())
	}
	if n.Name() != "abc" {
		t.Fatalf("Name = %q", n.Name())
	}
	if got := n.StartStates(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("StartStates = %v", got)
	}
	if len(n.AllInputStates()) != 0 {
		t.Fatal("unexpected all-input states")
	}
	if got := n.ReportingStates(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("ReportingStates = %v", got)
	}
	if n.State(2).ReportCode != 7 {
		t.Fatalf("ReportCode = %d", n.State(2).ReportCode)
	}
	if got := n.Succ(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Succ(0) = %v", got)
	}
	if got := n.Pred(2); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Pred(2) = %v", got)
	}
}

func TestBuilderDedupesEdges(t *testing.T) {
	b := NewBuilder("dup")
	a := b.AddState(AnyClass(), StartOfData)
	c := b.AddState(AnyClass(), 0)
	b.AddEdge(a, c)
	b.AddEdge(a, c)
	b.AddEdge(a, a)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Succ(a); len(got) != 2 {
		t.Fatalf("Succ = %v, want deduped to 2", got)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := NewBuilder("empty").Build(); err == nil {
		t.Fatal("expected error for empty automaton")
	}
	b := NewBuilder("nostart")
	b.AddState(AnyClass(), 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for automaton with no start states")
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	b := NewBuilder("x")
	b.AddState(AnyClass(), StartOfData)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.AddEdge(0, 5)
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder("cc")
	// Component 0: 0 -> 1 -> 2 (2 -> 0 back edge).
	s0 := b.AddState(ClassOf('a'), StartOfData)
	s1 := b.AddState(ClassOf('b'), 0)
	s2 := b.AddState(ClassOf('c'), 0)
	b.AddEdge(s0, s1)
	b.AddEdge(s1, s2)
	b.AddEdge(s2, s0)
	// Component 1: 3 -> 4.
	s3 := b.AddState(ClassOf('x'), AllInput)
	s4 := b.AddState(ClassOf('y'), 0)
	b.AddEdge(s3, s4)
	// Component 2: isolated state 5.
	b.AddState(ClassOf('z'), StartOfData)
	n := b.MustBuild()

	ids, count := n.ConnectedComponents()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if ids[0] != ids[1] || ids[1] != ids[2] {
		t.Fatalf("component 0 split: %v", ids)
	}
	if ids[3] != ids[4] || ids[3] == ids[0] || ids[5] == ids[0] || ids[5] == ids[3] {
		t.Fatalf("bad component ids: %v", ids)
	}
	m := n.CCMask(ids[3])
	if m.Count() != 2 || !m.Test(3) || !m.Test(4) {
		t.Fatalf("CCMask = %v", m)
	}
	if n.CCOf(4) != ids[3] {
		t.Fatal("CCOf mismatch")
	}
}

func TestRange(t *testing.T) {
	// 0:'a' -> {1,2};  3:'a' -> {2};  4:'b' -> {0}
	b := NewBuilder("range")
	s0 := b.AddState(ClassOf('a'), StartOfData)
	s1 := b.AddState(ClassOf('p'), 0)
	s2 := b.AddState(ClassOf('q'), 0)
	s3 := b.AddState(ClassOf('a'), 0)
	s4 := b.AddState(ClassOf('b'), 0)
	b.AddEdge(s0, s1)
	b.AddEdge(s0, s2)
	b.AddEdge(s3, s2)
	b.AddEdge(s4, s0)
	n := b.MustBuild()

	ra := n.Range('a')
	if len(ra) != 2 || ra[0] != 1 || ra[1] != 2 {
		t.Fatalf("Range('a') = %v, want [1 2]", ra)
	}
	rb := n.Range('b')
	if len(rb) != 1 || rb[0] != 0 {
		t.Fatalf("Range('b') = %v, want [0]", rb)
	}
	if n.RangeSize('z') != 0 {
		t.Fatalf("Range('z') should be empty")
	}
	// Cached second call returns same content.
	if got := n.Range('a'); len(got) != 2 {
		t.Fatalf("cached Range = %v", got)
	}
	rs := n.RangeStatsAll()
	if rs.Min != 0 || rs.Max != 2 {
		t.Fatalf("RangeStats = %+v", rs)
	}
}

func TestParentGroups(t *testing.T) {
	// Two 'a'-labelled parents with identical child sets must fold into one
	// group; a third with a different child set stays separate.
	b := NewBuilder("pg")
	p1 := b.AddState(ClassOf('a'), StartOfData)
	p2 := b.AddState(ClassOf('a'), StartOfData)
	p3 := b.AddState(ClassOf('a'), StartOfData)
	c1 := b.AddState(ClassOf('x'), 0)
	c2 := b.AddState(ClassOf('y'), 0)
	b.AddEdge(p1, c1)
	b.AddEdge(p1, c2)
	b.AddEdge(p2, c1)
	b.AddEdge(p2, c2)
	b.AddEdge(p3, c2)
	n := b.MustBuild()

	groups := n.ParentGroups('a')
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	var big, small *ParentGroup
	for i := range groups {
		if len(groups[i].Seed) == 2 {
			big = &groups[i]
		} else {
			small = &groups[i]
		}
	}
	if big == nil || small == nil {
		t.Fatalf("groups = %+v", groups)
	}
	if len(big.Parents) != 2 {
		t.Fatalf("folded group parents = %v", big.Parents)
	}
	if len(small.Parents) != 1 || small.Parents[0] != p3 {
		t.Fatalf("small group = %+v", small)
	}
	if got := n.ParentGroups('z'); len(got) != 0 {
		t.Fatalf("ParentGroups('z') = %v", got)
	}
}

func TestParentGroupSingleCC(t *testing.T) {
	// A parent and its children are in one component by construction.
	b := NewBuilder("cc1")
	p := b.AddState(ClassOf('a'), StartOfData)
	c := b.AddState(ClassOf('b'), 0)
	b.AddEdge(p, c)
	q := b.AddState(ClassOf('a'), StartOfData)
	d := b.AddState(ClassOf('c'), 0)
	b.AddEdge(q, d)
	n := b.MustBuild()
	for _, g := range n.ParentGroups('a') {
		for _, s := range g.Seed {
			if n.CCOf(s) != g.CC {
				t.Fatalf("seed %d outside group CC", s)
			}
		}
	}
}

func TestReachableFrom(t *testing.T) {
	n := buildLinear(t)
	r := n.ReachableFrom([]StateID{0})
	if r.Count() != 3 {
		t.Fatalf("reachable = %v", r)
	}
	r2 := n.ReachableFrom([]StateID{2})
	if r2.Count() != 1 || !r2.Test(2) {
		t.Fatalf("reachable from sink = %v", r2)
	}
}

func TestComputeStats(t *testing.T) {
	n := buildLinear(t)
	st := n.ComputeStats()
	if st.States != 3 || st.Edges != 2 || st.CCs != 1 || st.Reporting != 1 || st.StartOfDta != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWriteDOT(t *testing.T) {
	n := buildLinear(t)
	var sb strings.Builder
	if err := n.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", "n0 ->", "doublecircle", "R7"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestUnion(t *testing.T) {
	b1 := NewBuilder("one")
	s1 := b1.AddState(ClassOf('a'), AllInput)
	r1 := b1.AddReportState(ClassOf('b'), 0, 1)
	b1.AddEdge(s1, r1)
	n1 := b1.MustBuild()

	b2 := NewBuilder("two")
	s2 := b2.AddState(ClassOf('x'), StartOfData)
	r2 := b2.AddReportState(ClassOf('y'), 0, 2)
	b2.AddEdge(s2, r2)
	n2 := b2.MustBuild()

	u := Union(n1, n2)
	if u.Len() != 4 || u.Edges() != 2 {
		t.Fatalf("union: %d states %d edges", u.Len(), u.Edges())
	}
	if _, ccs := u.ConnectedComponents(); ccs != 2 {
		t.Fatalf("union CCs = %d, want 2", ccs)
	}
	if len(u.StartStates()) != 1 || len(u.AllInputStates()) != 1 {
		t.Fatalf("start lists wrong: %v %v", u.StartStates(), u.AllInputStates())
	}
	codes := map[int32]bool{}
	for _, q := range u.ReportingStates() {
		codes[u.State(q).ReportCode] = true
	}
	if !codes[1] || !codes[2] {
		t.Fatalf("report codes lost: %v", codes)
	}
}
