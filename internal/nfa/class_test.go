package nfa

import (
	"testing"
	"testing/quick"
)

func TestClassBasics(t *testing.T) {
	c := ClassOf('a', 'b', 'z')
	for _, s := range []byte{'a', 'b', 'z'} {
		if !c.Test(s) {
			t.Errorf("Test(%q) = false", s)
		}
	}
	if c.Test('c') || c.Test(0) || c.Test(255) {
		t.Error("Test matched symbol not in class")
	}
	if c.Count() != 3 {
		t.Errorf("Count = %d, want 3", c.Count())
	}
	c.Remove('b')
	if c.Test('b') || c.Count() != 2 {
		t.Error("Remove failed")
	}
}

func TestClassRangeAndNegate(t *testing.T) {
	c := ClassRange('0', '9')
	if c.Count() != 10 {
		t.Fatalf("Count = %d, want 10", c.Count())
	}
	n := c.Negate()
	if n.Count() != 246 {
		t.Fatalf("negated Count = %d, want 246", n.Count())
	}
	for s := 0; s < 256; s++ {
		if c.Test(byte(s)) == n.Test(byte(s)) {
			t.Fatalf("negation overlap at %d", s)
		}
	}
}

func TestAnyClass(t *testing.T) {
	a := AnyClass()
	if a.Count() != 256 {
		t.Fatalf("AnyClass Count = %d", a.Count())
	}
	for s := 0; s < 256; s++ {
		if !a.Test(byte(s)) {
			t.Fatalf("AnyClass missing %d", s)
		}
	}
}

func TestClassUnionIntersect(t *testing.T) {
	a := ClassRange('a', 'm')
	b := ClassRange('h', 'z')
	u := a.Union(b)
	if u.Count() != 26 {
		t.Errorf("union Count = %d, want 26", u.Count())
	}
	i := a.Intersect(b)
	if i.Count() != 6 { // h..m
		t.Errorf("intersect Count = %d, want 6", i.Count())
	}
}

func TestClassSymbolsAndPick(t *testing.T) {
	c := ClassOf(0, 63, 64, 128, 255)
	syms := c.Symbols(nil)
	want := []byte{0, 63, 64, 128, 255}
	if len(syms) != len(want) {
		t.Fatalf("Symbols = %v", syms)
	}
	for i := range want {
		if syms[i] != want[i] {
			t.Fatalf("Symbols[%d] = %d, want %d", i, syms[i], want[i])
		}
		if got := c.Pick(i); got != want[i] {
			t.Fatalf("Pick(%d) = %d, want %d", i, got, want[i])
		}
	}
}

func TestClassPickPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pick out of range should panic")
		}
	}()
	ClassOf('x').Pick(1)
}

func TestClassString(t *testing.T) {
	cases := []struct {
		c    Class
		want string
	}{
		{Class{}, "[]"},
		{AnyClass(), "[*]"},
		{ClassOf('a'), `'a'`},
		{ClassRange('a', 'c'), "[a-c]"},
	}
	for _, tc := range cases {
		if got := tc.c.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

// Property: membership after Add matches a model set; Count agrees.
func TestClassQuick(t *testing.T) {
	f := func(adds []byte) bool {
		var c Class
		model := map[byte]bool{}
		for _, s := range adds {
			c.Add(s)
			model[s] = true
		}
		if c.Count() != len(model) {
			return false
		}
		for s := 0; s < 256; s++ {
			if c.Test(byte(s)) != model[byte(s)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Pick(i) enumerates exactly Symbols().
func TestClassPickQuick(t *testing.T) {
	f := func(adds []byte) bool {
		var c Class
		for _, s := range adds {
			c.Add(s)
		}
		syms := c.Symbols(nil)
		for i, s := range syms {
			if c.Pick(i) != s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
