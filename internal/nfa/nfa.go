// Package nfa defines the homogeneous non-deterministic finite automaton
// model used throughout the repository, together with the structural
// analyses the Parallel Automata Processor relies on: symbol ranges,
// connected components, parent groups, and common-prefix compression.
//
// A homogeneous NFA (the "ANML" representation of the Micron AP) labels
// each state with one symbol class; all transitions into a state implicitly
// carry that state's label. Execution semantics (see package engine): a
// state fires at step t if it is enabled and the input symbol matches its
// label; firing reports (if the state reports) and enables its children for
// step t+1. All-input start states are enabled at every step; start-of-data
// states only at step 0.
package nfa

import (
	"fmt"
	"sort"
	"sync"

	"pap/internal/bitset"
)

// StateID identifies a state within one NFA.
type StateID int32

// Flags describe per-state roles.
type Flags uint8

const (
	// StartOfData marks a state enabled at position 0 only.
	StartOfData Flags = 1 << iota
	// AllInput marks a state enabled at every position (ANML "start on all
	// input"); these implement unanchored match-anywhere patterns and are
	// the core of the paper's Active State Group.
	AllInput
	// Report marks an accepting state; firing emits a report event.
	Report
)

// State is the immutable description of one homogeneous-NFA state.
type State struct {
	Label Class
	Flags Flags
	// ReportCode identifies which rule/pattern this reporting state belongs
	// to (the AP's output-region report code). Zero for non-reporting states.
	ReportCode int32
}

// NFA is an immutable homogeneous automaton. Build one with a Builder.
type NFA struct {
	name   string
	states []State
	succ   [][]StateID // children per state, sorted, deduplicated
	succW  [][]int32   // per-edge scores parallel to succ; nil when unscored
	pred   [][]StateID // parents per state, sorted, deduplicated

	startOfData []StateID
	allInput    []StateID

	// lazily computed analyses, guarded by analysisMu so that one compiled
	// NFA can be shared by concurrent planners (compile-once,
	// share-everywhere). Each cache is written exactly once; engines only
	// read precomputed fields and never touch these.
	analysisMu sync.Mutex
	cc         []int32
	ccCount    int
	ccMasks    []*bitset.Set
	rangeTab   []rangeEntry
}

type rangeEntry struct {
	computed bool
	states   []StateID // sorted union of children of all σ-labelled states
}

// Name returns the automaton's name (for reporting).
func (n *NFA) Name() string { return n.name }

// Len returns the number of states.
func (n *NFA) Len() int { return len(n.states) }

// State returns the description of state q.
func (n *NFA) State(q StateID) State { return n.states[q] }

// Label returns the symbol class of state q.
func (n *NFA) Label(q StateID) Class { return n.states[q].Label }

// Succ returns the children of q. The returned slice must not be modified.
func (n *NFA) Succ(q StateID) []StateID { return n.succ[q] }

// Pred returns the parents of q. The returned slice must not be modified.
func (n *NFA) Pred(q StateID) []StateID { return n.pred[q] }

// Scored reports whether any transition carries a score annotation. Unscored
// automata pay nothing for the scoring machinery: succW stays nil and every
// execution path keeps its score-free fast path.
func (n *NFA) Scored() bool { return n.succW != nil }

// SuccScores returns the per-transition scores parallel to Succ(q), or nil
// for an unscored automaton. The returned slice must not be modified.
func (n *NFA) SuccScores(q StateID) []int32 {
	if n.succW == nil {
		return nil
	}
	return n.succW[q]
}

// StartStates returns the start-of-data states. Callers must not modify it.
func (n *NFA) StartStates() []StateID { return n.startOfData }

// AllInputStates returns the all-input (always re-enabled) states.
func (n *NFA) AllInputStates() []StateID { return n.allInput }

// Edges returns the total number of transitions.
func (n *NFA) Edges() int {
	e := 0
	for _, s := range n.succ {
		e += len(s)
	}
	return e
}

// ReportingStates returns all states with the Report flag, ascending.
func (n *NFA) ReportingStates() []StateID {
	var out []StateID
	for q := range n.states {
		if n.states[q].Flags&Report != 0 {
			out = append(out, StateID(q))
		}
	}
	return out
}

// Builder incrementally constructs an NFA.
type Builder struct {
	name   string
	states []State
	succ   [][]StateID
	succW  [][]int32 // parallel to succ; nil until the first scored edge
}

// NewBuilder returns an empty builder for an automaton with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name}
}

// Len returns the number of states added so far.
func (b *Builder) Len() int { return len(b.states) }

// AddState appends a state and returns its ID.
func (b *Builder) AddState(label Class, flags Flags) StateID {
	b.states = append(b.states, State{Label: label, Flags: flags})
	b.succ = append(b.succ, nil)
	if b.succW != nil {
		b.succW = append(b.succW, nil)
	}
	return StateID(len(b.states) - 1)
}

// AddReportState appends a reporting state carrying the given report code.
func (b *Builder) AddReportState(label Class, flags Flags, code int32) StateID {
	id := b.AddState(label, flags|Report)
	b.states[id].ReportCode = code
	return id
}

// SetFlags adds flags to an existing state.
func (b *Builder) SetFlags(q StateID, f Flags) { b.states[q].Flags |= f }

// SetReportCode sets the report code of an existing state.
func (b *Builder) SetReportCode(q StateID, code int32) { b.states[q].ReportCode = code }

// AddEdge adds a transition from → to. Duplicates are removed at Build time.
func (b *Builder) AddEdge(from, to StateID) {
	if int(from) >= len(b.states) || int(to) >= len(b.states) || from < 0 || to < 0 {
		panic(fmt.Sprintf("nfa: AddEdge(%d,%d) out of range (%d states)", from, to, len(b.states)))
	}
	b.succ[from] = append(b.succ[from], to)
	if b.succW != nil {
		b.succW[from] = append(b.succW[from], 0)
	}
}

// AddScoredEdge adds a transition from → to annotated with a score. Scores
// accumulate along a path (tropical max-plus semantics: a state's score is
// the maximum over incoming paths of the sum of edge scores); duplicate
// edges keep the maximum score at Build time. The first scored edge switches
// the whole automaton to scored form — unannotated edges score 0.
func (b *Builder) AddScoredEdge(from, to StateID, score int32) {
	if b.succW == nil {
		b.succW = make([][]int32, len(b.states))
		for q := range b.succ {
			b.succW[q] = make([]int32, len(b.succ[q]))
		}
	}
	b.AddEdge(from, to)
	b.succW[from][len(b.succW[from])-1] = score
}

// Build finalizes the automaton: edges are sorted and deduplicated, parent
// lists are derived, and start-state lists are extracted. Build returns an
// error if the automaton has no states or no start states.
func (b *Builder) Build() (*NFA, error) {
	if len(b.states) == 0 {
		return nil, fmt.Errorf("nfa %q: no states", b.name)
	}
	n := &NFA{
		name:   b.name,
		states: b.states,
		succ:   make([][]StateID, len(b.states)),
		pred:   make([][]StateID, len(b.states)),
	}
	if b.succW != nil {
		n.succW = make([][]int32, len(b.states))
	}
	predCount := make([]int, len(b.states))
	for from, children := range b.succ {
		if b.succW == nil {
			n.succ[from] = dedupeIDs(children)
		} else {
			n.succ[from], n.succW[from] = dedupeScoredIDs(children, b.succW[from])
		}
		for _, to := range n.succ[from] {
			predCount[to]++
		}
		_ = from
	}
	for to, c := range predCount {
		n.pred[to] = make([]StateID, 0, c)
	}
	for from, children := range n.succ {
		for _, to := range children {
			n.pred[to] = append(n.pred[to], StateID(from))
		}
	}
	for q, s := range n.states {
		if s.Flags&StartOfData != 0 {
			n.startOfData = append(n.startOfData, StateID(q))
		}
		if s.Flags&AllInput != 0 {
			n.allInput = append(n.allInput, StateID(q))
		}
	}
	if len(n.startOfData)+len(n.allInput) == 0 {
		return nil, fmt.Errorf("nfa %q: no start states", b.name)
	}
	n.rangeTab = make([]rangeEntry, 256)
	return n, nil
}

// MustBuild is Build that panics on error, for use in generators and tests
// where the construction is known to be valid.
func (b *Builder) MustBuild() *NFA {
	n, err := b.Build()
	if err != nil {
		panic(err)
	}
	return n
}

func dedupeIDs(ids []StateID) []StateID {
	if len(ids) <= 1 {
		return ids
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}

// dedupeScoredIDs is dedupeIDs for a scored edge list: the (id, score) pairs
// are sorted by id and duplicate edges keep the maximum score (max-plus
// semantics — a parallel edge can only improve a path, never worsen it).
func dedupeScoredIDs(ids []StateID, scores []int32) ([]StateID, []int32) {
	if len(ids) <= 1 {
		return ids, scores
	}
	idx := make([]int, len(ids))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return ids[idx[i]] < ids[idx[j]] })
	outIDs := make([]StateID, 0, len(ids))
	outW := make([]int32, 0, len(ids))
	for _, i := range idx {
		if len(outIDs) > 0 && ids[i] == outIDs[len(outIDs)-1] {
			if scores[i] > outW[len(outW)-1] {
				outW[len(outW)-1] = scores[i]
			}
			continue
		}
		outIDs = append(outIDs, ids[i])
		outW = append(outW, scores[i])
	}
	return outIDs, outW
}

// Union returns a new automaton containing disjoint copies of a and b
// (their components never interact; report codes are preserved as-is, so
// callers combining independently numbered rulesets should offset codes
// first). The result is named after a.
func Union(a, b *NFA) *NFA {
	bl := NewBuilder(a.name)
	copyInto := func(src *NFA) StateID {
		base := StateID(bl.Len())
		for q := 0; q < src.Len(); q++ {
			s := src.states[q]
			id := bl.AddState(s.Label, s.Flags)
			bl.SetReportCode(id, s.ReportCode)
		}
		for q := 0; q < src.Len(); q++ {
			for i, c := range src.succ[q] {
				if src.succW != nil {
					bl.AddScoredEdge(base+StateID(q), base+c, src.succW[q][i])
				} else {
					bl.AddEdge(base+StateID(q), base+c)
				}
			}
		}
		return base
	}
	copyInto(a)
	copyInto(b)
	out, err := bl.Build()
	if err != nil {
		panic(err) // cannot happen: inputs were valid automata
	}
	return out
}
