package nfa

import (
	"encoding/binary"
	"hash/fnv"
)

// MergeCommonPrefixes applies the common-prefix compression of Becchi and
// Crowley used by the paper (§4.1) before execution: states that are always
// enabled together — same label, same flags, same report code, identical
// parent sets — are folded into one state whose child set is the union of
// the originals'. The pass runs to a fixpoint (merging parents makes their
// children mergeable). The language and the multiset of (offset, report
// code) events are preserved.
//
// The paper skips this compression for ClamAV, Fermi and RandomForest
// because it reduces the number of connected components with little gain;
// the workload generators make the same choice.
func MergeCommonPrefixes(n *NFA) *NFA {
	// Scored automata are left untouched: the merge criterion is score-blind
	// (two states with identical parent sets can still carry different edge
	// scores), so folding them could change best-score observables.
	if n.Scored() {
		return n
	}
	cur := n
	for pass := 0; pass < 64; pass++ {
		next, reduced := mergeOnce(cur)
		if !reduced {
			return cur
		}
		cur = next
	}
	return cur
}

func mergeOnce(n *NFA) (*NFA, bool) {
	type groupKey uint64
	// Group states by (label, flags, report code, parent set).
	rep := make(map[groupKey][]StateID)
	var order []groupKey
	var buf [8]byte
	for q := range n.states {
		h := fnv.New64a()
		s := n.states[q]
		for _, w := range s.Label {
			binary.LittleEndian.PutUint64(buf[:], w)
			h.Write(buf[:])
		}
		h.Write([]byte{byte(s.Flags)})
		binary.LittleEndian.PutUint32(buf[:4], uint32(s.ReportCode))
		h.Write(buf[:4])
		for _, p := range n.pred[q] {
			binary.LittleEndian.PutUint32(buf[:4], uint32(p))
			h.Write(buf[:4])
		}
		k := groupKey(h.Sum64())
		if _, ok := rep[k]; !ok {
			order = append(order, k)
		}
		rep[k] = append(rep[k], StateID(q))
	}
	if len(order) == len(n.states) {
		return n, false
	}
	// Verify hash groups exactly (guard against collisions) and split
	// non-identical members into their own groups.
	var verified [][]StateID
	for _, k := range order {
		members := rep[k]
		for len(members) > 0 {
			lead := members[0]
			same := []StateID{lead}
			var rest []StateID
			for _, m := range members[1:] {
				if n.sameMergeKey(lead, m) {
					same = append(same, m)
				} else {
					rest = append(rest, m)
				}
			}
			verified = append(verified, same)
			members = rest
		}
	}
	if len(verified) == len(n.states) {
		return n, false
	}
	// Rebuild with one representative per group.
	remap := make([]StateID, len(n.states))
	b := NewBuilder(n.name)
	for gi, g := range verified {
		s := n.states[g[0]]
		id := b.AddState(s.Label, s.Flags)
		b.SetReportCode(id, s.ReportCode)
		if StateID(gi) != id {
			panic("nfa: merge rebuild out of sync")
		}
		for _, m := range g {
			remap[m] = id
		}
	}
	for q := range n.states {
		for _, c := range n.succ[q] {
			b.AddEdge(remap[q], remap[c])
		}
	}
	out, err := b.Build()
	if err != nil {
		panic(err) // cannot happen: input was a valid NFA
	}
	return out, true
}

// sameMergeKey reports whether states a and b satisfy the exact merge
// criterion (label, flags, report code, parent set).
func (n *NFA) sameMergeKey(a, b StateID) bool {
	sa, sb := n.states[a], n.states[b]
	if sa.Label != sb.Label || sa.Flags != sb.Flags || sa.ReportCode != sb.ReportCode {
		return false
	}
	pa, pb := n.pred[a], n.pred[b]
	if len(pa) != len(pb) {
		return false
	}
	for i := range pa {
		if pa[i] != pb[i] {
			return false
		}
	}
	return true
}
