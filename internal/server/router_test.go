package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestRouterDisabled proves the no-peer configuration disables routing
// with a nil router that is safe at every handler touchpoint.
func TestRouterDisabled(t *testing.T) {
	if r := NewRouter("a:1", nil, 0, 0); r != nil {
		t.Fatalf("NewRouter with no peers = %v, want nil", r)
	}
	var r *Router
	if r.Enabled() {
		t.Fatal("nil Router.Enabled() = true")
	}
	req, _ := http.NewRequest("POST", "/v1/automata/x/match", nil)
	if addr, route := r.routeTo(req, "x"); route {
		t.Fatalf("nil Router.routeTo = (%q, true), want no route", addr)
	}
	r.RememberSession("id", "peer")
	if _, ok := r.SessionOwner("id"); ok {
		t.Fatal("nil Router.SessionOwner found a session")
	}
	r.ForgetSession("id")
	if n := r.EjectedPeers(); n != 0 {
		t.Fatalf("nil Router.EjectedPeers = %d, want 0", n)
	}
}

// TestRouterRingAgreement proves every replica computes the same owner
// for every name regardless of which node is "self", and that ownership
// is reasonably balanced.
func TestRouterRingAgreement(t *testing.T) {
	nodes := []string{"10.0.0.1:8461", "10.0.0.2:8461", "10.0.0.3:8461"}
	routers := []*Router{
		NewRouter(nodes[0], nodes[1:], 0, 0),
		NewRouter(nodes[1], []string{nodes[0], nodes[2]}, 0, 0),
		NewRouter(nodes[2], nodes[:2], 0, 0),
	}
	owned := map[string]int{}
	const names = 3000
	for i := 0; i < names; i++ {
		name := fmt.Sprintf("ruleset-%d", i)
		owner := routers[0].OwnerOf(name)
		for j, r := range routers[1:] {
			if got := r.OwnerOf(name); got != owner {
				t.Fatalf("replica %d owner of %q = %q, replica 0 says %q", j+1, name, got, owner)
			}
		}
		owned[owner]++
	}
	for _, n := range nodes {
		if owned[n] < names/10 {
			t.Errorf("node %s owns %d of %d names: ring badly unbalanced", n, owned[n], names)
		}
	}
}

// TestRouterRouteTo pins the serve-locally cases: forwarded requests,
// self-owned names, and ejected owners (which count a fallback).
func TestRouterRouteTo(t *testing.T) {
	nodes := []string{"a:1", "b:2"}
	r := NewRouter(nodes[0], nodes[1:], 2, 50*time.Millisecond)
	fallbacks := 0
	r.onFallback = func() { fallbacks++ }

	// Find one name per owner.
	var mine, theirs string
	for i := 0; mine == "" || theirs == ""; i++ {
		name := fmt.Sprintf("rs-%d", i)
		if r.OwnerOf(name) == nodes[0] {
			mine = name
		} else {
			theirs = name
		}
	}

	req, _ := http.NewRequest("POST", "/v1/automata/x/match", nil)
	if _, route := r.routeTo(req, mine); route {
		t.Error("routeTo forwarded a self-owned name")
	}
	addr, route := r.routeTo(req, theirs)
	if !route || addr != nodes[1] {
		t.Fatalf("routeTo(%q) = (%q, %v), want (%q, true)", theirs, addr, route, nodes[1])
	}

	// A request already forwarded once is always served locally.
	fwd, _ := http.NewRequest("POST", "/v1/automata/x/match", nil)
	fwd.Header.Set(forwardHeader, nodes[1])
	if _, route := r.routeTo(fwd, theirs); route {
		t.Error("routeTo forwarded an already-forwarded request: loop risk")
	}

	// Eject the peer: threshold consecutive failures.
	r.report(nodes[1], false)
	r.report(nodes[1], false)
	if n := r.EjectedPeers(); n != 1 {
		t.Fatalf("EjectedPeers after threshold failures = %d, want 1", n)
	}
	if _, route := r.routeTo(req, theirs); route {
		t.Error("routeTo forwarded to an ejected peer")
	}
	if fallbacks != 1 {
		t.Errorf("fallback callback fired %d times, want 1", fallbacks)
	}

	// The cooldown expires and the peer re-enters routing.
	time.Sleep(70 * time.Millisecond)
	if n := r.EjectedPeers(); n != 0 {
		t.Fatalf("EjectedPeers after cooldown = %d, want 0", n)
	}
	if _, route := r.routeTo(req, theirs); !route {
		t.Error("routeTo still local after the ejection cooldown expired")
	}

	// A success resets the failure streak.
	r.report(nodes[1], false)
	r.report(nodes[1], true)
	r.report(nodes[1], false)
	if n := r.EjectedPeers(); n != 0 {
		t.Fatalf("non-consecutive failures ejected the peer (EjectedPeers = %d)", n)
	}
}

// startCluster boots n papd replicas on real listeners wired as each
// other's peers and returns their servers and advertised addresses.
func startCluster(t *testing.T, n int, mutate func(i int, cfg *Config)) ([]*Server, []string) {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	servers := make([]*Server, n)
	for i := range servers {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		cfg := Config{
			Addr:          addrs[i],
			AdvertiseAddr: addrs[i],
			Peers:         peers,
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		s := New(cfg)
		servers[i] = s
		go s.Serve(lns[i])
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = s.Shutdown(ctx)
		})
	}
	return servers, addrs
}

// nameOwnedBy finds a ruleset name the given replica owns on the ring.
func nameOwnedBy(t *testing.T, r *Router, owner string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		name := fmt.Sprintf("rs-%d", i)
		if r.OwnerOf(name) == owner {
			return name
		}
	}
	t.Fatal("no name found for owner — ring broken")
	return ""
}

// TestRouterForwardsMatchToOwner runs two real replicas and proves a
// match sent to the non-owner executes on the owner: the owner's serving
// counters move, the ingress replica's do not.
func TestRouterForwardsMatchToOwner(t *testing.T) {
	servers, addrs := startCluster(t, 2, nil)
	name := nameOwnedBy(t, servers[0].router, addrs[1])

	// Operators register on every replica (registration is not routed).
	reg := []byte(fmt.Sprintf(`{"name": %q, "patterns": ["needle"]}`, name))
	for _, a := range addrs {
		if code, body := doJSON(t, "POST", "http://"+a+"/v1/automata", reg, nil); code != 201 {
			t.Fatalf("register on %s = %d: %s", a, code, body)
		}
	}

	var res struct {
		Matches []struct{ End int64 } `json:"matches"`
	}
	url := "http://" + addrs[0] + "/v1/automata/" + name + "/match"
	if code, body := doJSON(t, "POST", url, []byte("xx needle xx"), &res); code != 200 {
		t.Fatalf("match via non-owner = %d: %s", code, body)
	}
	if len(res.Matches) != 1 {
		t.Fatalf("forwarded match returned %d matches, want 1", len(res.Matches))
	}

	e0, _ := servers[0].Registry().Get(name)
	e1, _ := servers[1].Registry().Get(name)
	if got := e1.Requests.Load(); got != 1 {
		t.Errorf("owner served %d requests, want 1", got)
	}
	if got := e0.Requests.Load(); got != 0 {
		t.Errorf("ingress replica served %d requests locally, want 0 (should forward)", got)
	}
}

// TestRouterStreamAffinity proves streaming sessions follow the ruleset
// to its owner and that every later request for the session — from the
// replica that never hosted it — forwards to where the session lives.
func TestRouterStreamAffinity(t *testing.T) {
	servers, addrs := startCluster(t, 2, nil)
	name := nameOwnedBy(t, servers[0].router, addrs[1])

	reg := []byte(fmt.Sprintf(`{"name": %q, "patterns": ["needle"]}`, name))
	for _, a := range addrs {
		if code, body := doJSON(t, "POST", "http://"+a+"/v1/automata", reg, nil); code != 201 {
			t.Fatalf("register on %s = %d: %s", a, code, body)
		}
	}

	// Open via the non-owner: the session must land on the owner.
	var si SessionInfo
	open := []byte(fmt.Sprintf(`{"automaton": %q}`, name))
	if code, body := doJSON(t, "POST", "http://"+addrs[0]+"/v1/streams", open, &si); code != 201 {
		t.Fatalf("open stream via non-owner = %d: %s", code, body)
	}
	if _, err := servers[1].sessions.Get(si.ID); err != nil {
		t.Fatalf("session %s not on the owner replica: %v", si.ID, err)
	}
	if _, err := servers[0].sessions.Get(si.ID); err == nil {
		t.Fatalf("session %s also exists on the ingress replica", si.ID)
	}

	// Write through the non-owner; the match must come back.
	var wr struct {
		Matches []struct{ End int64 } `json:"matches"`
		Offset  int64                 `json:"offset"`
	}
	wurl := "http://" + addrs[0] + "/v1/streams/" + si.ID + "/write"
	if code, body := doJSON(t, "POST", wurl, []byte("xx needle"), &wr); code != 200 {
		t.Fatalf("forwarded stream write = %d: %s", code, body)
	}
	if len(wr.Matches) != 1 || wr.Offset != 9 {
		t.Fatalf("forwarded write = %d matches at offset %d, want 1 at 9", len(wr.Matches), wr.Offset)
	}

	// Info and close also follow the session.
	var got SessionInfo
	if code, body := doJSON(t, "GET", "http://"+addrs[0]+"/v1/streams/"+si.ID, nil, &got); code != 200 {
		t.Fatalf("forwarded stream get = %d: %s", code, body)
	}
	if got.Writes != 1 {
		t.Fatalf("forwarded info writes = %d, want 1", got.Writes)
	}
	if code, _ := doJSON(t, "DELETE", "http://"+addrs[0]+"/v1/streams/"+si.ID, nil, nil); code != 204 {
		t.Fatalf("forwarded close = %d, want 204", code)
	}
	if _, ok := servers[0].router.SessionOwner(si.ID); ok {
		t.Error("session routing entry survived the close")
	}
	if _, err := servers[1].sessions.Get(si.ID); err == nil {
		t.Error("session survived forwarded close on the owner")
	}
}

// TestRouterFallbackWhenOwnerDown proves a replica keeps serving a
// ruleset locally when its owner is unreachable, and ejects the dead
// peer after the failure threshold.
func TestRouterFallbackWhenOwnerDown(t *testing.T) {
	// One real replica plus one dead peer address (a listener we open to
	// reserve the port, then close).
	deadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := deadLn.Addr().String()
	deadLn.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	self := ln.Addr().String()
	s := New(Config{
		Addr: self, AdvertiseAddr: self, Peers: []string{dead},
		PeerFailThreshold: 2, PeerCooldown: time.Minute,
	})
	go s.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})

	name := nameOwnedBy(t, s.router, dead)
	reg := []byte(fmt.Sprintf(`{"name": %q, "patterns": ["needle"]}`, name))
	if code, body := doJSON(t, "POST", "http://"+self+"/v1/automata", reg, nil); code != 201 {
		t.Fatalf("register = %d: %s", code, body)
	}

	url := "http://" + self + "/v1/automata/" + name + "/match"
	for i := 0; i < 3; i++ {
		var res struct {
			Matches []json.RawMessage `json:"matches"`
		}
		if code, body := doJSON(t, "POST", url, []byte("xx needle xx"), &res); code != 200 {
			t.Fatalf("match %d with dead owner = %d: %s", i, code, body)
		}
		if len(res.Matches) != 1 {
			t.Fatalf("match %d: %d matches, want 1 (local fallback)", i, len(res.Matches))
		}
	}
	if n := s.router.EjectedPeers(); n != 1 {
		t.Errorf("EjectedPeers = %d, want 1 after repeated forward failures", n)
	}
	e, _ := s.Registry().Get(name)
	if got := e.Requests.Load(); got != 3 {
		t.Errorf("local fallback served %d requests, want 3", got)
	}
}
