// Package server implements papd, the Parallel Automata Processor daemon:
// a long-running, stdlib-only HTTP service that hosts a registry of
// compiled automata and matches payloads against them — sequentially, in
// parallel via the paper's enumerative segment-parallel algorithm
// (pap.MatchParallel), or incrementally over persistent streaming
// sessions (pap.Stream).
//
// Automata are compiled once at registration and shared immutably by
// every request. Matching work runs on a bounded worker pool sized to
// GOMAXPROCS with per-request timeouts; when the queue is full the
// server sheds load with 429 instead of queueing unboundedly. The
// service exposes Prometheus text-format metrics on /metrics,
// liveness/readiness probes on /healthz and /readyz, and drains
// in-flight matches on shutdown.
package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"pap"
)

// Config controls a papd server. Zero values select sensible defaults.
type Config struct {
	// Addr is the listen address (default ":8461").
	Addr string
	// Workers bounds concurrent matching work (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds queued matching work beyond the workers; a full
	// queue returns 429 (default 4×Workers).
	QueueDepth int
	// MatchTimeout bounds one match or stream write, queueing included
	// (default 30s).
	MatchTimeout time.Duration
	// MaxMatchDuration, when > 0, caps the execution deadline of every
	// match and stream write — including ones that ask for a longer
	// per-request timeout_ms — so a single adversarial request (a
	// pathological enumeration input, say) can never hold a worker
	// longer than the operator allows. 0 leaves MatchTimeout as the only
	// bound.
	MaxMatchDuration time.Duration
	// MaxBodyBytes bounds request payloads (default 16 MiB).
	MaxBodyBytes int64
	// StreamIdleTimeout expires streaming sessions with no writes for this
	// long (default 10m; negative disables expiry).
	StreamIdleTimeout time.Duration
	// MaxAutomata bounds the registry (default 1024).
	MaxAutomata int
	// MaxStreams bounds live streaming sessions (default 4096).
	MaxStreams int
	// SerialSegments makes /match?mode=parallel requests default to the
	// serial cross-segment scheduler (requests may override per call with
	// serial_segments=). Results and modelled stats are identical either
	// way; serial mode only changes simulator wall-clock behaviour.
	SerialSegments bool
	// DefaultExecMode is the parallel execution strategy served when a
	// request does not pick one (mode=parallel uses it; mode=sfa forces
	// pap.ExecSFA per call). Matches are identical across strategies;
	// modelled stats differ.
	DefaultExecMode pap.ExecMode

	// Peers lists the advertised addresses of the other replicas in a
	// sharded deployment; empty disables the shard router. Each ruleset
	// name is owned by one replica on a consistent-hash ring over
	// AdvertiseAddr+Peers, and requests for rulesets owned elsewhere are
	// forwarded there (with local fallback when the owner is down).
	Peers []string
	// AdvertiseAddr is this replica's own address as its peers reach it
	// (default Addr). It must appear in every peer's ring under exactly
	// this spelling for the replicas to agree on ownership.
	AdvertiseAddr string
	// PeerFailThreshold ejects a peer from routing after this many
	// consecutive forward failures (default 3).
	PeerFailThreshold int
	// PeerCooldown is how long an ejected peer stays out of routing
	// before being retried (default 10s).
	PeerCooldown time.Duration

	// BatchWindow coalesces small sequential match requests sharing a
	// ruleset version and engine into single worker-pool tasks: requests
	// arriving within the window are served by one task and demuxed.
	// 0 disables coalescing.
	BatchWindow time.Duration
	// BatchMaxSize flushes a batch early when it reaches this many
	// requests (default 64).
	BatchMaxSize int
	// BatchMaxBytes is the largest payload eligible for coalescing
	// (default 4096); larger payloads always dispatch alone.
	BatchMaxBytes int

	// TenantRPS grants each tenant (X-API-Key header, or "anonymous")
	// this many match/stream-write requests per second on the worker
	// pool, answering 429 with Retry-After beyond it. 0 disables quotas.
	TenantRPS float64
	// TenantBurst is the per-tenant burst allowance (default
	// max(TenantRPS, 1)).
	TenantBurst float64
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8461"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.MatchTimeout <= 0 {
		c.MatchTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.StreamIdleTimeout == 0 {
		c.StreamIdleTimeout = 10 * time.Minute
	} else if c.StreamIdleTimeout < 0 {
		c.StreamIdleTimeout = 0 // disabled
	}
	if c.AdvertiseAddr == "" {
		c.AdvertiseAddr = c.Addr
	}
	if c.BatchMaxSize <= 0 {
		c.BatchMaxSize = 64
	}
	if c.BatchMaxBytes <= 0 {
		c.BatchMaxBytes = 4096
	}
	return c
}

// Server is one papd instance. Create with New, serve with ListenAndServe
// (or mount Handler on your own listener), stop with Shutdown.
type Server struct {
	cfg       Config
	reg       *Registry
	pool      *Pool
	sessions  *SessionManager
	metrics   *Metrics
	router    *Router    // nil unless Peers configured
	coalescer *Coalescer // nil unless BatchWindow > 0
	quotas    *Quotas    // nil unless TenantRPS > 0
	mux       *http.ServeMux
	httpSrv   *http.Server
	ready     atomic.Bool
	started   time.Time

	// Pre-created instruments on hot paths.
	latency          map[string]*Histogram
	poolRejected     *Counter
	streamBytes      *Counter
	cancellations    map[string]*Counter
	speedupHist      *Histogram
	engineSteps      []*Counter // indexed by pap.EngineKind
	engineSwitches   *Counter
	prefilterSkipped *Counter
	baselineSkipped  *Counter
	lazyCacheHits    *Counter
	lazyCacheMisses  *Counter
	lazyCacheEvicts  *Counter
	sfaMappings      *Counter
	sfaCompositions  *Counter
	scoredMatches    *Counter
}

// New assembles a server from the config.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		reg:      NewRegistry(cfg.MaxAutomata),
		pool:     NewPool(cfg.Workers, cfg.QueueDepth),
		sessions: NewSessionManager(cfg.MaxStreams, cfg.StreamIdleTimeout),
		metrics:  NewMetrics(),
		router:   NewRouter(cfg.AdvertiseAddr, cfg.Peers, cfg.PeerFailThreshold, cfg.PeerCooldown),
		quotas:   NewQuotas(cfg.TenantRPS, cfg.TenantBurst),
		mux:      http.NewServeMux(),
		latency:  make(map[string]*Histogram),
		started:  time.Now(),
	}
	s.coalescer = NewCoalescer(s.pool, cfg.BatchWindow, cfg.BatchMaxSize, cfg.MatchTimeout)

	m := s.metrics
	s.poolRejected = m.Counter("papd_worker_pool_rejected_total",
		"Requests shed with 429 because the worker-pool queue was full.", "")
	s.streamBytes = m.Counter("papd_stream_bytes_total",
		"Bytes consumed by streaming sessions.", "")
	s.speedupHist = m.Histogram("papd_parallel_speedup",
		"Modelled AP speedup of parallel matches over the sequential AP baseline.",
		"", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256})
	names := pap.EngineKindNames()
	s.engineSteps = make([]*Counter, len(names))
	for k := range names {
		s.engineSteps[k] = m.Counter("papd_engine_steps_total",
			"Input symbols stepped through execution engines, by configured engine.",
			fmt.Sprintf("engine=%q", pap.EngineKind(k)))
	}
	s.engineSwitches = m.Counter("papd_engine_switches_total",
		"Sparse-dense representation switches made by adaptive engines.", "")
	s.prefilterSkipped = m.Counter("papd_prefilter_skipped_bytes_total",
		"Input bytes the literal/class prefilter proved inert and never stepped.", "")
	s.baselineSkipped = m.Counter("papd_baseline_skipped_bytes_total",
		"Input bytes the exact baseline-skip fast path scanned past instead of stepping.", "")
	s.lazyCacheHits = m.Counter("papd_lazydfa_cache_hits_total",
		"Lazy-DFA state-cache edge hits.", "")
	s.lazyCacheMisses = m.Counter("papd_lazydfa_cache_misses_total",
		"Lazy-DFA state-cache edge misses (determinizations).", "")
	s.lazyCacheEvicts = m.Counter("papd_lazydfa_cache_evictions_total",
		"Lazy-DFA cached states discarded by cache flushes.", "")
	s.sfaMappings = m.Counter("papd_sfa_mappings_total",
		"Entry-to-exit mapping flows run by SFA-mode parallel matches.", "")
	s.sfaCompositions = m.Counter("papd_sfa_compositions_total",
		"Boundary composition operations performed by SFA-mode parallel matches.", "")
	s.scoredMatches = m.Counter("papd_scored_matches_total",
		"Matches returned with per-transition scores attached (scored matches and stream writes).", "")
	s.cancellations = make(map[string]*Counter)
	for _, reason := range []string{"deadline", "client_gone"} {
		s.cancellations[reason] = m.Counter("papd_match_cancellations_total",
			"Matches and stream writes cancelled before completion, by reason.",
			fmt.Sprintf("reason=%q", reason))
	}
	m.GaugeFunc("papd_worker_pool_workers", "Size of the matching worker pool.", "",
		func() float64 { return float64(s.pool.Workers()) })
	m.GaugeFunc("papd_worker_pool_active", "Matching tasks currently executing.", "",
		func() float64 { return float64(s.pool.Active()) })
	m.GaugeFunc("papd_worker_pool_queue_depth", "Matching tasks waiting in the queue.", "",
		func() float64 { return float64(s.pool.QueueDepth()) })
	m.GaugeFunc("papd_worker_pool_queue_capacity", "Capacity of the matching queue.", "",
		func() float64 { return float64(s.pool.QueueCap()) })
	m.GaugeFunc("papd_streams_active", "Live streaming sessions.", "",
		func() float64 { return float64(s.sessions.Len()) })
	m.GaugeFunc("papd_automata_registered", "Automata in the registry.", "",
		func() float64 { return float64(s.reg.Len()) })
	m.GaugeFunc("papd_uptime_seconds", "Seconds since the server started.", "",
		func() float64 { return time.Since(s.started).Seconds() })
	m.GaugeFunc("papd_segment_parallelism",
		"1 when parallel-mode matches default to the cross-segment parallel scheduler, 0 when serial.", "",
		func() float64 {
			if s.cfg.SerialSegments {
				return 0
			}
			return 1
		})
	s.sessions.SetExpiredCounter(m.Counter("papd_streams_expired_total",
		"Streaming sessions expired for idleness.", ""))
	m.GaugeFunc("papd_worker_pool_abandoned",
		"Cumulative tasks abandoned while queued; abandoned tasks never run.", "",
		func() float64 { return float64(s.pool.Abandoned()) })

	// Every installed ruleset version (registration or hot reload) gets a
	// papd_ruleset_version gauge; it reads the live registry, so a delete
	// shows 0 and a reload shows the bumped version immediately.
	s.reg.SetInstallHook(func(e *Entry) {
		name := e.Name
		m.GaugeFunc("papd_ruleset_version",
			"Currently served version of each registered ruleset (0 = deleted).",
			fmt.Sprintf("automaton=%q", EscapeLabelValue(name)),
			func() float64 { return float64(s.reg.Version(name)) })
	})

	if s.coalescer != nil {
		s.coalescer.batchesTotal = m.Counter("papd_batches_total",
			"Coalesced match batches flushed to the worker pool.", "")
		s.coalescer.requestsTotal = m.Counter("papd_batched_requests_total",
			"Match requests served through coalesced batches.", "")
		s.coalescer.sizeHist = m.Histogram("papd_batch_size",
			"Requests per coalesced batch.", "",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128})
	}

	if s.router != nil {
		fallback := m.Counter("papd_router_local_fallback_total",
			"Requests served locally because their owning replica was ejected.", "")
		s.router.onForward = func(peer string, ok bool) {
			name := "papd_router_forwarded_total"
			help := "Requests forwarded to their owning replica, by peer."
			if !ok {
				name = "papd_router_forward_errors_total"
				help = "Forwards that failed in transport, by peer."
			}
			m.Counter(name, help, fmt.Sprintf("peer=%q", EscapeLabelValue(peer))).Inc()
		}
		s.router.onFallback = func() { fallback.Inc() }
		s.router.onEject = func(peer string) {
			m.Counter("papd_router_peer_ejections_total",
				"Peers ejected from routing after consecutive forward failures.",
				fmt.Sprintf("peer=%q", EscapeLabelValue(peer))).Inc()
		}
		m.GaugeFunc("papd_router_peers_ejected",
			"Peers currently ejected from routing.", "",
			func() float64 { return float64(s.router.EjectedPeers()) })
		m.GaugeFunc("papd_router_peers",
			"Peer replicas in the shard ring (excluding self).", "",
			func() float64 { return float64(len(s.cfg.Peers)) })
	}

	s.routes()
	s.ready.Store(true)
	return s
}

// Handler returns the server's root handler (also usable under httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the metrics registry (for preloading hooks and tests).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Registry exposes the automata registry (for preloading rulesets).
func (s *Server) Registry() *Registry { return s.reg }

// ListenAndServe serves until Shutdown or listener failure.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve serves on ln until Shutdown or listener failure.
func (s *Server) Serve(ln net.Listener) error {
	s.httpSrv = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	err := s.httpSrv.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Addr returns the configured listen address.
func (s *Server) Addr() string { return s.cfg.Addr }

// Shutdown drains the server: readiness flips to draining (load balancers
// stop sending), the HTTP server stops accepting and waits for in-flight
// requests up to ctx, the worker pool finishes every accepted match, and
// the session reaper stops.
func (s *Server) Shutdown(ctx context.Context) error {
	s.ready.Store(false)
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	s.pool.Close()
	s.sessions.Stop()
	return err
}

// countCancellation increments papd_match_cancellations_total for the
// given reason ("deadline" or "client_gone"). Both series are registered
// at startup so dashboards see explicit zeros before the first abort.
func (s *Server) countCancellation(reason string) {
	if c, ok := s.cancellations[reason]; ok {
		c.Inc()
	}
}

// instrument wraps h with request counting and latency observation under
// the given handler label.
func (s *Server) instrument(handler string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.metrics.Histogram("papd_http_request_seconds",
		"HTTP request latency in seconds.",
		fmt.Sprintf("handler=%q", handler), DefaultLatencyBuckets)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		hist.Observe(time.Since(start).Seconds())
		s.metrics.Counter("papd_http_requests_total",
			"HTTP requests by handler and status code.",
			fmt.Sprintf("handler=%q,code=\"%d\"", handler, sw.code)).Inc()
	}
}

type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}
