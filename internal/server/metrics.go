package server

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metrics is a minimal, dependency-free metrics registry that renders the
// Prometheus text exposition format (version 0.0.4). It supports exactly
// what papd needs — counters, function-backed gauges, and fixed-bucket
// histograms, each optionally carrying one preformatted label set — and
// nothing more. All instruments are safe for concurrent use.
type Metrics struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{byName: make(map[string]*family)}
}

type family struct {
	name, help, typ string

	mu     sync.Mutex
	order  []string // label-set insertion order, for stable rendering
	counts map[string]*Counter
	gauges map[string]func() float64
	hists  map[string]*Histogram
}

func (m *Metrics) family(name, help, typ string) *family {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.byName[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("metrics: %s registered as %s and %s", name, f.typ, typ))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		counts: make(map[string]*Counter),
		gauges: make(map[string]func() float64),
		hists:  make(map[string]*Histogram),
	}
	m.byName[name] = f
	m.families = append(m.families, f)
	return f
}

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Counter returns (creating on first use) the counter for the given label
// set. labels is a preformatted Prometheus label body such as
// `code="200",handler="match"`, or "" for an unlabelled metric; label
// values must already be escaped.
func (m *Metrics) Counter(name, help, labels string) *Counter {
	f := m.family(name, help, "counter")
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.counts[labels]
	if !ok {
		c = &Counter{}
		f.counts[labels] = c
		f.order = append(f.order, labels)
	}
	return c
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
// Registering the same (name, labels) twice replaces the function.
func (m *Metrics) GaugeFunc(name, help, labels string, fn func() float64) {
	f := m.family(name, help, "gauge")
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.gauges[labels]; !ok {
		f.order = append(f.order, labels)
	}
	f.gauges[labels] = fn
}

// Histogram is a fixed-bucket histogram with cumulative bucket semantics.
type Histogram struct {
	upper   []float64 // sorted upper bounds, exclusive of +Inf
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	for i, ub := range h.upper {
		if v <= ub {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DefaultLatencyBuckets covers 100µs .. ~100s, the range papd requests
// plausibly span.
var DefaultLatencyBuckets = []float64{
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30,
}

// Histogram returns (creating on first use) the histogram for the given
// label set, with the given bucket upper bounds (sorted ascending; +Inf is
// implicit). Buckets are fixed at first creation.
func (m *Metrics) Histogram(name, help, labels string, buckets []float64) *Histogram {
	f := m.family(name, help, "histogram")
	f.mu.Lock()
	defer f.mu.Unlock()
	h, ok := f.hists[labels]
	if !ok {
		upper := make([]float64, len(buckets))
		copy(upper, buckets)
		sort.Float64s(upper)
		h = &Histogram{upper: upper, buckets: make([]atomic.Int64, len(upper))}
		f.hists[labels] = h
		f.order = append(f.order, labels)
	}
	return h
}

// WritePrometheus renders every registered metric in the Prometheus text
// format, families in registration order.
func (m *Metrics) WritePrometheus(w io.Writer) {
	m.mu.Lock()
	fams := make([]*family, len(m.families))
	copy(fams, m.families)
	m.mu.Unlock()

	for _, f := range fams {
		f.mu.Lock()
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, labels := range f.order {
			switch f.typ {
			case "counter":
				fmt.Fprintf(w, "%s %d\n", instName(f.name, labels), f.counts[labels].Value())
			case "gauge":
				fmt.Fprintf(w, "%s %s\n", instName(f.name, labels), formatFloat(f.gauges[labels]()))
			case "histogram":
				h := f.hists[labels]
				cum := int64(0)
				for i, ub := range h.upper {
					cum += h.buckets[i].Load()
					fmt.Fprintf(w, "%s %d\n", instName(f.name+"_bucket", joinLabels(labels, fmt.Sprintf(`le="%s"`, formatFloat(ub)))), cum)
				}
				fmt.Fprintf(w, "%s %d\n", instName(f.name+"_bucket", joinLabels(labels, `le="+Inf"`)), h.Count())
				fmt.Fprintf(w, "%s %s\n", instName(f.name+"_sum", labels), formatFloat(h.Sum()))
				fmt.Fprintf(w, "%s %d\n", instName(f.name+"_count", labels), h.Count())
			}
		}
		f.mu.Unlock()
	}
}

func instName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func formatFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}

// EscapeLabelValue escapes a string for use as a Prometheus label value.
func EscapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
