package server

import (
	"context"
	"sync"
	"time"

	"pap"
)

// Coalescer batches small sequential match requests that share a ruleset
// version and execution backend. Requests arriving within one batch
// window are grouped and served by a single worker-pool task that steps
// the shared automaton over each payload in turn, then demuxes the
// per-request results — so a burst of N small payloads costs one queue
// slot and one worker wakeup instead of N, which is what keeps the pool
// available for large payloads when millions of small probes arrive.
//
// Batches key on the *Entry pointer, not the name: a hot reload installs
// a new entry, so requests pinned to different ruleset versions can
// never share a batch.
type Coalescer struct {
	window       time.Duration
	maxBatch     int
	pool         *Pool
	queueTimeout time.Duration

	mu      sync.Mutex
	batches map[batchKey]*batch

	// Metrics, optional (nil-safe): flushed batches, requests served
	// through batches, and the batch-size distribution.
	batchesTotal  *Counter
	requestsTotal *Counter
	sizeHist      *Histogram
}

type batchKey struct {
	e   *Entry
	eng pap.EngineKind
}

type batch struct {
	items []*batchItem
	timer *time.Timer
}

type batchItem struct {
	ctx     context.Context
	payload []byte

	once sync.Once
	done chan struct{}
	ms   []pap.Match
	info pap.EngineInfo
	err  error
}

func (it *batchItem) deliver(ms []pap.Match, info pap.EngineInfo, err error) {
	it.once.Do(func() {
		it.ms, it.info, it.err = ms, info, err
		close(it.done)
	})
}

// NewCoalescer returns a coalescer flushing batches after window (or
// earlier, at maxBatch requests), submitting each batch as one task to
// pool with queueTimeout bounding the queue wait. window <= 0 disables
// coalescing and returns nil.
func NewCoalescer(pool *Pool, window time.Duration, maxBatch int, queueTimeout time.Duration) *Coalescer {
	if window <= 0 {
		return nil
	}
	if maxBatch <= 0 {
		maxBatch = 64
	}
	if queueTimeout <= 0 {
		queueTimeout = 30 * time.Second
	}
	return &Coalescer{
		window:       window,
		maxBatch:     maxBatch,
		pool:         pool,
		queueTimeout: queueTimeout,
		batches:      make(map[batchKey]*batch),
	}
}

// Enabled reports whether the coalescer is active (nil-safe).
func (c *Coalescer) Enabled() bool { return c != nil }

// Match joins (or opens) the batch for (e, eng), waits for the batch
// task to run its payload, and returns this request's demuxed result.
// ctx bounds the execution of this request's payload inside the batch
// task; a request whose ctx expires before its turn is skipped with
// ctx.Err() and costs the batch nothing.
func (c *Coalescer) Match(ctx context.Context, e *Entry, eng pap.EngineKind, payload []byte) ([]pap.Match, pap.EngineInfo, error) {
	it := &batchItem{ctx: ctx, payload: payload, done: make(chan struct{})}
	key := batchKey{e: e, eng: eng}

	c.mu.Lock()
	b := c.batches[key]
	if b == nil {
		b = &batch{}
		c.batches[key] = b
		b.timer = time.AfterFunc(c.window, func() {
			if c.detach(key, b) {
				c.run(key, b)
			}
		})
	}
	b.items = append(b.items, it)
	if len(b.items) >= c.maxBatch {
		// Full before the window closed: flush immediately.
		delete(c.batches, key)
		b.timer.Stop()
		c.mu.Unlock()
		go c.run(key, b)
	} else {
		c.mu.Unlock()
	}

	<-it.done
	return it.ms, it.info, it.err
}

// detach removes b from the live map if it is still the current batch
// for key, claiming the right to run it (the size trigger in Match may
// have claimed it first).
func (c *Coalescer) detach(key batchKey, b *batch) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.batches[key] != b {
		return false
	}
	delete(c.batches, key)
	return true
}

// run submits one pool task that serves every item in the batch. Pool
// errors (queue full, pool closed, queue-wait timeout) fan out to every
// still-undelivered item so each request answers with the same
// backpressure signal it would have seen submitting alone.
func (c *Coalescer) run(key batchKey, b *batch) {
	if c.batchesTotal != nil {
		c.batchesTotal.Inc()
		c.requestsTotal.Add(int64(len(b.items)))
		c.sizeHist.Observe(float64(len(b.items)))
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.queueTimeout)
	defer cancel()
	err := c.pool.Do(ctx, func() {
		for _, it := range b.items {
			if it.ctx.Err() != nil {
				it.deliver(nil, pap.EngineInfo{}, it.ctx.Err())
				continue
			}
			ms, info, err := key.e.Automaton.MatchWithInfoContext(it.ctx, it.payload, key.eng)
			it.deliver(ms, info, err)
		}
	})
	if err != nil {
		for _, it := range b.items {
			it.deliver(nil, pap.EngineInfo{}, err)
		}
	}
}
