package server

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsTasks(t *testing.T) {
	p := NewPool(4, 8)
	defer p.Close()
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				err := p.Do(context.Background(), func() { n.Add(1) })
				if err == nil {
					return
				}
				if err != ErrQueueFull {
					t.Errorf("unexpected error: %v", err)
					return
				}
				time.Sleep(time.Millisecond) // backpressure: retry
			}
		}()
	}
	wg.Wait()
	if n.Load() != 64 {
		t.Fatalf("ran %d tasks, want 64", n.Load())
	}
}

func TestPoolBackpressure(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()

	block := make(chan struct{})
	running := make(chan struct{})
	go p.Do(context.Background(), func() { close(running); <-block }) //nolint:errcheck
	<-running

	// Fill the single queue slot.
	queued := make(chan error, 1)
	go func() { queued <- p.Do(context.Background(), func() {}) }()

	// Wait until the slot is actually occupied, then expect rejection.
	deadline := time.After(2 * time.Second)
	for p.QueueDepth() == 0 {
		select {
		case <-deadline:
			t.Fatal("queued task never appeared")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if err := p.Do(context.Background(), func() {}); err != ErrQueueFull {
		t.Fatalf("expected ErrQueueFull, got %v", err)
	}
	if p.Rejected() != 1 {
		t.Fatalf("rejected = %d, want 1", p.Rejected())
	}
	close(block)
	if err := <-queued; err != nil {
		t.Fatalf("queued task failed: %v", err)
	}
}

func TestPoolTimeoutWhileQueued(t *testing.T) {
	p := NewPool(1, 4)
	defer p.Close()

	block := make(chan struct{})
	running := make(chan struct{})
	go p.Do(context.Background(), func() { close(running); <-block }) //nolint:errcheck
	<-running

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	ran := false
	err := p.Do(ctx, func() { ran = true })
	if err != context.DeadlineExceeded {
		t.Fatalf("expected DeadlineExceeded, got %v", err)
	}
	close(block)
	p.Close() // drain
	if ran {
		t.Fatal("abandoned queued task still ran")
	}
}

func TestPoolCloseDrains(t *testing.T) {
	p := NewPool(2, 16)
	var n atomic.Int64
	done := make(chan struct{}, 16)
	for i := 0; i < 16; i++ {
		go func() {
			_ = p.Do(context.Background(), func() {
				time.Sleep(time.Millisecond)
				n.Add(1)
			})
			done <- struct{}{}
		}()
	}
	// Give the submitters a moment to enqueue, then close: every accepted
	// task must still run.
	time.Sleep(20 * time.Millisecond)
	accepted := n.Load() + int64(p.QueueDepth()) + p.Active()
	p.Close()
	if got := n.Load(); got < accepted {
		t.Fatalf("drained %d tasks, but %d were accepted", got, accepted)
	}
	if err := p.Do(context.Background(), func() {}); err != ErrPoolClosed {
		t.Fatalf("expected ErrPoolClosed after Close, got %v", err)
	}
}

// TestPoolAbandonedAccounting pins the abandonment contract: a task whose
// caller gives up while it is still queued is counted in Abandoned() and
// never appears in Started or Active — the pool's utilization metrics
// reflect only work that actually ran.
func TestPoolAbandonedAccounting(t *testing.T) {
	p := NewPool(1, 8)
	defer p.Close()

	// Occupy the single worker so later submissions stay queued.
	block := make(chan struct{})
	running := make(chan struct{})
	go p.Do(context.Background(), func() {
		close(running)
		<-block
	})
	<-running

	// Queue tasks whose contexts are already dead, then let them abandon.
	const n = 4
	var wg sync.WaitGroup
	var ran atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
			defer cancel()
			if err := p.Do(ctx, func() { ran.Add(1) }); err != context.DeadlineExceeded {
				t.Errorf("queued-then-abandoned Do = %v, want DeadlineExceeded", err)
			}
		}()
	}
	wg.Wait()
	close(block)
	p.Close() // drain: the worker walks past the abandoned tasks

	if got := p.Abandoned(); got != n {
		t.Errorf("Abandoned = %d, want %d", got, n)
	}
	if got := ran.Load(); got != 0 {
		t.Errorf("%d abandoned tasks ran, want 0", got)
	}
	if got := p.Started(); got != 1 {
		t.Errorf("Started = %d, want 1 (only the blocker): abandoned tasks must not count", got)
	}
	if got := p.Active(); got != 0 {
		t.Errorf("Active = %d, want 0 after drain", got)
	}
}
