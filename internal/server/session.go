package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"sort"
	"sync"
	"time"

	"pap"
)

// Session is one persistent streaming match: a pap.Stream bound to a
// registered automaton, fed by successive write requests with offsets
// global across all chunks — one modelled AP flow over an unbounded
// symbol sequence. Sessions survive deletion of their automaton from the
// registry and hot reloads that replace it (the compiled automaton is
// immutable, and the session stays pinned to the version it was opened
// against); they die on explicit close, server shutdown, or idle expiry.
type Session struct {
	ID        string
	Automaton string
	Version   int // registry version the session is pinned to
	Engine    pap.EngineKind
	Scored    bool // the stream tracks per-transition scores
	Created   time.Time

	mu        sync.Mutex
	stream    *pap.Stream
	lastUsed  time.Time
	matches   int64
	writes    int64
	lastSwtch int64          // stream switch count at the previous Write, for deltas
	lastInfo  pap.EngineInfo // stream engine counters at the previous Write, for deltas
	closed    bool
}

// WriteStats is the per-write delta of backend counters, for metrics:
// how many adaptive representation switches, prefilter-skipped bytes and
// lazy-DFA cache events this one write caused.
type WriteStats struct {
	Switches         int64
	PrefilterSkipped int64
	BaselineSkipped  int64
	CacheHits        int64
	CacheMisses      int64
	CacheEvictions   int64
}

// delta computes the counter movement since the previous write and
// advances the high-water marks. Callers hold s.mu.
func (s *Session) delta() WriteStats {
	sw := s.stream.EngineSwitches()
	info := s.stream.EngineInfo()
	d := WriteStats{
		Switches:         sw - s.lastSwtch,
		PrefilterSkipped: info.PrefilterSkippedBytes - s.lastInfo.PrefilterSkippedBytes,
		BaselineSkipped:  info.BaselineSkippedBytes - s.lastInfo.BaselineSkippedBytes,
		CacheHits:        info.CacheHits - s.lastInfo.CacheHits,
		CacheMisses:      info.CacheMisses - s.lastInfo.CacheMisses,
		CacheEvictions:   info.CacheEvictions - s.lastInfo.CacheEvictions,
	}
	s.lastSwtch = sw
	s.lastInfo = info
	return d
}

// ErrSessionNotFound is returned for unknown or expired session IDs.
var ErrSessionNotFound = errors.New("server: stream session not found")

// ErrTooManySessions is returned when the session limit is reached.
var ErrTooManySessions = errors.New("server: stream session limit reached")

// SessionInfo is a point-in-time snapshot of a session for JSON responses.
type SessionInfo struct {
	ID             string    `json:"id"`
	Automaton      string    `json:"automaton"`
	RulesetVersion int       `json:"ruleset_version"`
	Engine         string    `json:"engine"`
	Created        time.Time `json:"created"`
	LastUsed       time.Time `json:"last_used"`
	Offset         int64     `json:"offset"`
	Writes         int64     `json:"writes"`
	Matches        int64     `json:"matches"`
	ActiveStates   int       `json:"active_states"`
	EngineSwitches int64     `json:"engine_switches"`
	// Scored reports whether the session's stream tracks per-transition
	// scores (opened with scored=true, or over a scored automaton).
	Scored bool `json:"scored,omitempty"`
	// BestScore is the maximum match score the session has seen; present
	// only on scored sessions that have matched at least once (scores may
	// be negative, so omission — not 0 — is the no-matches signal).
	BestScore *int64 `json:"best_score,omitempty"`

	// The backend counters below are pointers so that omission means
	// exactly "this engine doesn't support the counter": a session on a
	// supporting engine always carries the field, including a legitimate
	// zero, where `omitempty` on a plain integer used to erase it.

	// PrefilterSkipped counts input bytes the stream's prefilter proved
	// inert and never stepped (EngineMeta only).
	PrefilterSkipped *int64 `json:"prefilter_skipped,omitempty"`
	// BaselineSkipped counts input bytes the backend's exact baseline-skip
	// fast path scanned past instead of stepping (every engine except the
	// pure sparse frontier list).
	BaselineSkipped *int64 `json:"baseline_skipped,omitempty"`
	// CacheHits/CacheMisses/CacheEvictions are lazy-DFA state-cache
	// counters (EngineLazyDFA and EngineMeta only).
	CacheHits      *int64 `json:"cache_hits,omitempty"`
	CacheMisses    *int64 `json:"cache_misses,omitempty"`
	CacheEvictions *int64 `json:"cache_evictions,omitempty"`
}

// supportsPrefilter reports whether the engine runs a literal/class
// prefilter (see docs/ENGINES.md).
func supportsPrefilter(k pap.EngineKind) bool { return k == pap.EngineMeta }

// supportsBaselineSkip reports whether the engine has the exact
// baseline-skip fast path: every backend except the pure sparse frontier
// list (bit natively, adaptive and lazydfa/meta through their inner
// engines).
func supportsBaselineSkip(k pap.EngineKind) bool { return k != pap.EngineSparse }

// supportsLazyCache reports whether the engine keeps a lazy-DFA state
// cache.
func supportsLazyCache(k pap.EngineKind) bool {
	return k == pap.EngineLazyDFA || k == pap.EngineMeta
}

// Write feeds one chunk to the session's stream and returns a copy of the
// completed matches, the stream offset after the write, and the backend
// counter deltas this write caused.
func (s *Session) Write(chunk []byte) ([]pap.Match, int64, WriteStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, 0, WriteStats{}, ErrSessionNotFound
	}
	ms := s.stream.Write(chunk)
	out := make([]pap.Match, len(ms))
	copy(out, ms) // the stream reuses its slice; callers get a stable copy
	s.matches += int64(len(ms))
	s.writes++
	d := s.delta()
	s.lastUsed = time.Now().UTC()
	return out, s.stream.Offset(), d, nil
}

// WriteContext is Write under a context: a cancelled or expired ctx stops
// the write mid-chunk at the stream's next cancellation point. Symbols
// consumed before the stop are committed — the session offset advances and
// their matches are returned alongside the error — so a caller that
// retries resumes exactly after the last processed symbol. The session
// mutex is held for the duration, so an expiry racing an in-flight write
// either waits for it or closes the session before it starts; a write
// never lands on a closed stream.
func (s *Session) WriteContext(ctx context.Context, chunk []byte) ([]pap.Match, int64, WriteStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, 0, WriteStats{}, ErrSessionNotFound
	}
	ms, err := s.stream.WriteContext(ctx, chunk)
	out := make([]pap.Match, len(ms))
	copy(out, ms) // the stream reuses its slice; callers get a stable copy
	s.matches += int64(len(ms))
	s.writes++
	d := s.delta()
	s.lastUsed = time.Now().UTC()
	return out, s.stream.Offset(), d, err
}

// BestScore returns the session's running maximum match score and whether
// any match has been seen since creation.
func (s *Session) BestScore() (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stream.BestScore()
}

// Info snapshots the session state.
func (s *Session) Info() SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	info := s.stream.EngineInfo()
	si := SessionInfo{
		ID:             s.ID,
		Automaton:      s.Automaton,
		RulesetVersion: s.Version,
		Engine:         s.Engine.String(),
		Created:        s.Created,
		LastUsed:       s.lastUsed,
		Offset:         s.stream.Offset(),
		Writes:         s.writes,
		Matches:        s.matches,
		ActiveStates:   s.stream.ActiveStates(),
		EngineSwitches: s.stream.EngineSwitches(),
		Scored:         s.Scored,
	}
	if s.Scored {
		if best, ok := s.stream.BestScore(); ok {
			si.BestScore = &best
		}
	}
	if supportsPrefilter(s.Engine) {
		v := info.PrefilterSkippedBytes
		si.PrefilterSkipped = &v
	}
	if supportsBaselineSkip(s.Engine) {
		v := info.BaselineSkippedBytes
		si.BaselineSkipped = &v
	}
	if supportsLazyCache(s.Engine) {
		h, m, e := info.CacheHits, info.CacheMisses, info.CacheEvictions
		si.CacheHits, si.CacheMisses, si.CacheEvictions = &h, &m, &e
	}
	return si
}

// SessionManager tracks live sessions and expires idle ones.
type SessionManager struct {
	mu       sync.Mutex
	sessions map[string]*Session
	reserved int // Create slots claimed but not yet installed
	max      int
	idle     time.Duration
	stop     chan struct{}
	stopOnce sync.Once
	expired  *Counter // optional, set by the server for metrics
}

// NewSessionManager returns a manager expiring sessions idle longer than
// idle (0 disables expiry), holding at most max sessions (<= 0 means
// 4096). Call Stop when done to release the reaper goroutine.
func NewSessionManager(max int, idle time.Duration) *SessionManager {
	if max <= 0 {
		max = 4096
	}
	m := &SessionManager{
		sessions: make(map[string]*Session),
		max:      max,
		idle:     idle,
		stop:     make(chan struct{}),
	}
	if idle > 0 {
		go m.reap()
	}
	return m
}

func (m *SessionManager) reap() {
	tick := time.NewTicker(m.idle / 4)
	defer tick.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-tick.C:
			m.reapOnce(time.Now().Add(-m.idle))
		}
	}
}

// reapOnce expires every session idle since before cutoff, in three
// phases so the manager lock is never held while a session lock is
// acquired: Session.WriteContext holds s.mu for the full duration of a
// write, so the old single-phase reap (s.mu acquired under m.mu) let one
// slow streaming write stall every Get/Create/List server-wide — the
// head-of-line block TestReapDoesNotBlockManager pins. Phase 1 snapshots
// the session pointers under m.mu; phase 2 closes idle ones under each
// s.mu only (re-checking liveness there, so a write that lands between
// the phases refreshes lastUsed and survives); phase 3 deletes the
// closed ones under m.mu, re-checking identity before each delete.
func (m *SessionManager) reapOnce(cutoff time.Time) {
	m.mu.Lock()
	candidates := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		candidates = append(candidates, s)
	}
	m.mu.Unlock()

	var expired []*Session
	for _, s := range candidates {
		s.mu.Lock()
		idleTooLong := !s.closed && s.lastUsed.Before(cutoff)
		if idleTooLong {
			s.closed = true
		}
		s.mu.Unlock()
		if idleTooLong {
			expired = append(expired, s)
		}
	}

	if len(expired) == 0 {
		return
	}
	m.mu.Lock()
	for _, s := range expired {
		if m.sessions[s.ID] == s {
			delete(m.sessions, s.ID)
			if m.expired != nil {
				m.expired.Inc()
			}
		}
	}
	m.mu.Unlock()
}

// streamBuildHook, when non-nil, observes every stream build Create pays
// for. Tests use it to prove a Create rejected at the session limit
// never builds a stream.
var streamBuildHook func()

// Create opens a session over the given registry entry, streaming on the
// given execution backend. The slot is reserved under the lock before
// the stream is built, so a Create doomed to ErrTooManySessions fails
// before paying the stream construction, and concurrent Creates racing
// for the last slots can never overshoot the limit.
func (m *SessionManager) Create(e *Entry, eng pap.EngineKind) (*Session, error) {
	return m.create(e, eng, false)
}

// CreateScored is Create with per-transition score tracking forced on the
// session's stream (pap.WithScoring); matches and session snapshots then
// carry scores. Sessions over scored automata track regardless.
func (m *SessionManager) CreateScored(e *Entry, eng pap.EngineKind) (*Session, error) {
	return m.create(e, eng, true)
}

func (m *SessionManager) create(e *Entry, eng pap.EngineKind, scored bool) (*Session, error) {
	id, err := newSessionID()
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if len(m.sessions)+m.reserved >= m.max {
		m.mu.Unlock()
		return nil, ErrTooManySessions
	}
	m.reserved++
	m.mu.Unlock()

	// Both timestamps are kept in UTC so SessionInfo JSON exposes created
	// and last_used in the same zone.
	now := time.Now().UTC()
	if streamBuildHook != nil {
		streamBuildHook()
	}
	opts := []pap.StreamOption{pap.WithEngine(eng)}
	if scored {
		opts = append(opts, pap.WithScoring())
	}
	s := &Session{
		ID:        id,
		Automaton: e.Name,
		Version:   e.Version,
		Engine:    eng,
		Scored:    scored || e.Automaton.Scored(),
		Created:   now,
		stream:    e.Automaton.NewStream(opts...),
		lastUsed:  now,
	}
	m.mu.Lock()
	m.reserved--
	m.sessions[id] = s
	m.mu.Unlock()
	return s, nil
}

// Get returns the live session with the given ID.
func (m *SessionManager) Get(id string) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return nil, ErrSessionNotFound
	}
	return s, nil
}

// Close ends a session and removes it.
func (m *SessionManager) Close(id string) error {
	m.mu.Lock()
	s, ok := m.sessions[id]
	if ok {
		delete(m.sessions, id)
	}
	m.mu.Unlock()
	if !ok {
		return ErrSessionNotFound
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return nil
}

// Len returns the number of live sessions.
func (m *SessionManager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// List returns snapshots of all live sessions, sorted by creation time.
func (m *SessionManager) List() []SessionInfo {
	m.mu.Lock()
	ss := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		ss = append(ss, s)
	}
	m.mu.Unlock()
	out := make([]SessionInfo, len(ss))
	for i, s := range ss {
		out[i] = s.Info()
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Created.Equal(out[j].Created) {
			return out[i].Created.Before(out[j].Created)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// SetExpiredCounter wires a counter incremented per idle-expired session.
func (m *SessionManager) SetExpiredCounter(c *Counter) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expired = c
}

// Stop halts the reaper. Live sessions are left to the GC.
func (m *SessionManager) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
}

func newSessionID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}
