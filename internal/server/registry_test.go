package server

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// withCompileHook installs fn as the registry compile observer for the
// duration of the test. Tests using it must not run in parallel.
func withCompileHook(t *testing.T, fn func(name string)) {
	t.Helper()
	prev := compileHook
	compileHook = fn
	t.Cleanup(func() { compileHook = prev })
}

// TestRegistryConcurrentSameName proves the reserve seam: of many
// concurrent registrations for one name, exactly one pays a compile and
// installs; the rest fail fast with ErrExists while the winner is still
// compiling.
func TestRegistryConcurrentSameName(t *testing.T) {
	r := NewRegistry(16)

	var compiles atomic.Int64
	entered := make(chan struct{})        // winner reached its compile
	release := make(chan struct{})        // let the winner finish
	withCompileHook(t, func(name string) {
		compiles.Add(1)
		entered <- struct{}{}
		<-release
	})

	winnerErr := make(chan error, 1)
	go func() {
		_, err := r.Register("shared", "regex", []string{"abc"}, 0, "")
		winnerErr <- err
	}()
	<-entered // the name is now reserved and the compile is in flight

	const losers = 8
	var wg sync.WaitGroup
	errs := make([]error, losers)
	for i := 0; i < losers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = r.Register("shared", "regex", []string{"abc"}, 0, "")
		}(i)
	}
	wg.Wait() // losers return while the winner still holds the reservation

	for i, err := range errs {
		if !errors.Is(err, ErrExists) {
			t.Errorf("loser %d: err = %v, want ErrExists", i, err)
		}
	}
	if got := compiles.Load(); got != 1 {
		t.Errorf("compiles while losers ran = %d, want 1 (losers must not compile)", got)
	}

	close(release)
	if err := <-winnerErr; err != nil {
		t.Fatalf("winner Register: %v", err)
	}
	e, err := r.Get("shared")
	if err != nil || e.Version != 1 {
		t.Fatalf("Get after winner install: entry=%+v err=%v, want version 1", e, err)
	}
}

// TestRegistryLimitCountsPendingWithoutCompile proves the limit is
// enforced against installed + reserved names before any compile work.
func TestRegistryLimitCountsPendingWithoutCompile(t *testing.T) {
	r := NewRegistry(2)
	if _, err := r.Register("a", "regex", []string{"x"}, 0, ""); err != nil {
		t.Fatal(err)
	}

	var compiles atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	withCompileHook(t, func(name string) {
		compiles.Add(1)
		if name == "b" {
			entered <- struct{}{}
			<-release
		}
	})

	done := make(chan error, 1)
	go func() {
		_, err := r.Register("b", "regex", []string{"y"}, 0, "")
		done <- err
	}()
	<-entered // "b" is reserved but not yet installed: registry is full

	before := compiles.Load()
	if _, err := r.Register("c", "regex", []string{"z"}, 0, ""); !errors.Is(err, ErrTooMany) {
		t.Fatalf("Register over limit: err = %v, want ErrTooMany", err)
	}
	if got := compiles.Load(); got != before {
		t.Errorf("rejected registration compiled (%d -> %d compiles)", before, got)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Register b: %v", err)
	}
	// A hot reload of an installed name must still work at the limit: it
	// replaces rather than consuming a slot.
	if e, err := r.Register("a", "regex", []string{"xx"}, 0, ""); err != nil || e.Version != 2 {
		t.Fatalf("reload at limit: entry=%+v err=%v, want version 2", e, err)
	}
}

// TestRegistryHotReloadPinsOldEntry proves a reload installs v+1 while
// work holding the old *Entry keeps its compiled automaton.
func TestRegistryHotReloadPinsOldEntry(t *testing.T) {
	r := NewRegistry(4)
	v1, err := r.Register("rs", "regex", []string{"alpha"}, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if v1.Version != 1 {
		t.Fatalf("fresh version = %d, want 1", v1.Version)
	}

	v2, err := r.Register("rs", "regex", []string{"bravo"}, 0, "")
	if err != nil {
		t.Fatalf("hot reload: %v", err)
	}
	if v2.Version != 2 {
		t.Fatalf("reload version = %d, want 2", v2.Version)
	}
	cur, err := r.Get("rs")
	if err != nil || cur != v2 {
		t.Fatalf("Get after reload returned %p, want new entry %p (err %v)", cur, v2, err)
	}
	if got := r.Version("rs"); got != 2 {
		t.Fatalf("Version = %d, want 2", got)
	}

	// The pinned v1 automaton still matches its own patterns, and the two
	// versions are genuinely different compiled artifacts.
	if ms := v1.Automaton.Match([]byte("alpha")); len(ms) != 1 {
		t.Errorf("pinned v1 match(alpha) = %d matches, want 1", len(ms))
	}
	if ms := v1.Automaton.Match([]byte("bravo")); len(ms) != 0 {
		t.Errorf("pinned v1 match(bravo) = %d matches, want 0", len(ms))
	}
	if ms := v2.Automaton.Match([]byte("bravo")); len(ms) != 1 {
		t.Errorf("v2 match(bravo) = %d matches, want 1", len(ms))
	}
}

// TestRegistryVersionsSurviveDelete proves version numbers are monotone
// per name for the registry's lifetime, so papd_ruleset_version never
// regresses across a delete + re-register.
func TestRegistryVersionsSurviveDelete(t *testing.T) {
	r := NewRegistry(4)
	if _, err := r.Register("rs", "regex", []string{"a"}, 0, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("rs", "regex", []string{"b"}, 0, ""); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("rs"); err != nil {
		t.Fatal(err)
	}
	if got := r.Version("rs"); got != 0 {
		t.Fatalf("Version after delete = %d, want 0", got)
	}
	e, err := r.Register("rs", "regex", []string{"c"}, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if e.Version != 3 {
		t.Fatalf("version after delete + re-register = %d, want 3 (monotone)", e.Version)
	}
}

// TestRegistryFailedCompileReleasesReservation proves a compile error
// frees the name and its slot for the next caller.
func TestRegistryFailedCompileReleasesReservation(t *testing.T) {
	r := NewRegistry(1)
	if _, err := r.Register("bad", "regex", []string{"("}, 0, ""); err == nil {
		t.Fatal("Register with invalid pattern succeeded")
	}
	if got := r.Len(); got != 0 {
		t.Fatalf("Len after failed compile = %d, want 0", got)
	}
	// The slot and the name are both free again.
	e, err := r.Register("bad", "regex", []string{"ok"}, 0, "")
	if err != nil {
		t.Fatalf("Register after failed compile: %v", err)
	}
	if e.Version != 1 {
		t.Fatalf("version = %d, want 1 (failed compiles don't burn versions)", e.Version)
	}
}
