package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"pap"
)

// routes mounts every endpoint. The API is documented in docs/SERVER.md.
func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /readyz", s.instrument("readyz", s.handleReadyz))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))

	s.mux.HandleFunc("POST /v1/automata", s.instrument("automata_register", s.handleRegister))
	s.mux.HandleFunc("GET /v1/automata", s.instrument("automata_list", s.handleListAutomata))
	s.mux.HandleFunc("GET /v1/automata/{name}", s.instrument("automata_get", s.handleGetAutomaton))
	s.mux.HandleFunc("DELETE /v1/automata/{name}", s.instrument("automata_delete", s.handleDeleteAutomaton))
	s.mux.HandleFunc("POST /v1/automata/{name}/match", s.instrument("match", s.handleMatch))

	s.mux.HandleFunc("POST /v1/streams", s.instrument("stream_open", s.handleOpenStream))
	s.mux.HandleFunc("GET /v1/streams", s.instrument("stream_list", s.handleListStreams))
	s.mux.HandleFunc("GET /v1/streams/{id}", s.instrument("stream_get", s.handleGetStream))
	s.mux.HandleFunc("POST /v1/streams/{id}/write", s.instrument("stream_write", s.handleStreamWrite))
	s.mux.HandleFunc("DELETE /v1/streams/{id}", s.instrument("stream_close", s.handleCloseStream))
}

// ---- JSON shapes ----

type errorResponse struct {
	Error string `json:"error"`
}

type registerRequest struct {
	Name     string   `json:"name"`
	Kind     string   `json:"kind,omitempty"` // "regex" (default), "hamming", "levenshtein"
	Patterns []string `json:"patterns"`
	Distance int      `json:"distance,omitempty"`
	Engine   string   `json:"engine,omitempty"` // "auto" (default), "sparse", "bit"
}

type automatonJSON struct {
	Name     string    `json:"name"`
	Version  int       `json:"version"`
	Kind     string    `json:"kind"`
	Patterns int       `json:"patterns"`
	Distance int       `json:"distance,omitempty"`
	Engine   string    `json:"engine"`
	Created  time.Time `json:"created"`

	States      int `json:"states"`
	Transitions int `json:"transitions"`
	Components  int `json:"components"`
	Reporting   int `json:"reporting"`

	Requests int64 `json:"requests"`
	Matches  int64 `json:"matches"`
}

type matchJSON struct {
	Code   int32 `json:"code"`
	Offset int64 `json:"offset"`
	// Score is present exactly on scored runs (scored=true, or a scored
	// automaton), including legitimate zero scores; it is the match's best
	// path score under max-plus scoring.
	Score *int64 `json:"score,omitempty"`
}

type apStatsJSON struct {
	Segments          int     `json:"segments"`
	Speedup           float64 `json:"speedup"`
	IdealSpeedup      float64 `json:"ideal_speedup"`
	BaselineNS        float64 `json:"baseline_ns"`
	ParallelNS        float64 `json:"parallel_ns"`
	CutSymbol         byte    `json:"cut_symbol"`
	CutRange          int     `json:"cut_range"`
	AvgActiveFlows    float64 `json:"avg_active_flows"`
	SwitchOverheadPct float64 `json:"switch_overhead_pct"`
	FalseReportRatio  float64 `json:"false_report_ratio"`
	EngineSwitches    int64   `json:"engine_switches"`
	PrefilterSkipped  int64   `json:"prefilter_skipped"`
	BaselineSkipped   int64   `json:"baseline_skipped"`
	ExecMode          string  `json:"exec_mode"`
	SFAMappings       int64   `json:"sfa_mappings,omitempty"`
	SFAComposeOps     int64   `json:"sfa_compose_ops,omitempty"`
	FPCollisions      int64   `json:"fingerprint_collisions,omitempty"`
	Scored            bool    `json:"scored,omitempty"`
	ScoredReports     int     `json:"scored_reports,omitempty"`
	Verified          bool    `json:"verified"`
}

type matchResponse struct {
	Automaton  string      `json:"automaton"`
	Mode       string      `json:"mode"`
	Engine     string      `json:"engine"`
	InputBytes int         `json:"input_bytes"`
	Matches    []matchJSON `json:"matches"`
	// Scored reports that score tracking was on; BestScore is then the
	// maximum match score, present only when at least one match exists
	// (scores may be negative, so omission — not 0 — means no matches).
	Scored    bool         `json:"scored,omitempty"`
	BestScore *int64       `json:"best_score,omitempty"`
	ElapsedMS float64      `json:"elapsed_ms"`
	AP        *apStatsJSON `json:"ap,omitempty"` // parallel mode only
}

type openStreamRequest struct {
	Automaton string `json:"automaton"`
	Engine    string `json:"engine,omitempty"` // overrides the ruleset default
	Scored    bool   `json:"scored,omitempty"` // track per-transition scores
}

type streamWriteResponse struct {
	Matches []matchJSON `json:"matches"`
	Offset  int64       `json:"offset"`
	// BestScore is the session-wide maximum match score, present only on
	// scored sessions that have matched at least once.
	BestScore *int64 `json:"best_score,omitempty"`
}

// abortResponse is the 503 body for a match or stream write that was
// cancelled mid-execution: the error, the metrics reason label, and
// whatever partial progress the execution pipeline reported. Stream writes
// additionally carry the matches completed and the offset reached before
// the stop, so callers can resume from exactly there.
type abortResponse struct {
	Error    string                `json:"error"`
	Reason   string                `json:"reason"`
	Progress []pap.SegmentProgress `json:"progress,omitempty"`
	Matches  []matchJSON           `json:"matches,omitempty"`
	Offset   int64                 `json:"offset,omitempty"`
}

// ---- plumbing ----

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// readBody reads the request body up to the configured limit, translating
// overflow into 413.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				"payload exceeds %d bytes", tooBig.Limit)
		} else {
			writeErr(w, http.StatusBadRequest, "reading body: %v", err)
		}
		return nil, false
	}
	return body, true
}

// tenantOf labels the request's tenant for quotas and metrics: the
// X-API-Key header, or "anonymous".
func tenantOf(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	return "anonymous"
}

// checkQuota spends one token from the request tenant's bucket. On an
// empty bucket it writes the 429 with Retry-After and reports false.
// Quotas guard the worker pool, so they run where the work runs: a
// request forwarded to its owning replica is charged there, not here.
func (s *Server) checkQuota(w http.ResponseWriter, r *http.Request) bool {
	if s.quotas == nil {
		return true
	}
	tenant := tenantOf(r)
	ok, wait := s.quotas.Allow(tenant)
	if ok {
		return true
	}
	sec := retryAfterSeconds(wait)
	w.Header().Set("Retry-After", strconv.Itoa(sec))
	s.metrics.Counter("papd_quota_rejected_total",
		"Requests rejected by per-tenant quotas, by tenant.",
		fmt.Sprintf("tenant=%q", EscapeLabelValue(tenant))).Inc()
	writeErr(w, http.StatusTooManyRequests,
		"tenant over quota, retry in %ds", sec)
	return false
}

// dispatch runs fn on the worker pool under the match timeout, translating
// pool backpressure into 429 and timeouts into 503. Returns true when fn
// ran to completion and the caller should write its success response.
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request, fn func()) bool {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.MatchTimeout)
	defer cancel()
	switch err := s.pool.Do(ctx, fn); {
	case err == nil:
		return true
	case errors.Is(err, ErrQueueFull):
		s.poolRejected.Inc()
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, "matching queue full, retry later")
	case errors.Is(err, ErrPoolClosed):
		writeErr(w, http.StatusServiceUnavailable, "server draining")
	case errors.Is(err, context.DeadlineExceeded):
		s.countCancellation("deadline")
		writeErr(w, http.StatusServiceUnavailable,
			"match timed out after %s", s.cfg.MatchTimeout)
	default: // client went away (context canceled) or similar
		s.countCancellation("client_gone")
		writeErr(w, http.StatusServiceUnavailable, "request aborted: %v", err)
	}
	return false
}

// execContext derives the execution deadline for one match or stream
// write: r.Context() bounded by the tightest of MatchTimeout, the
// server-wide MaxMatchDuration cap, and the request's own timeout_ms
// parameter. The returned context is what the matching pipeline polls, so
// whichever bound fires first stops the run at its next cancellation
// point. An invalid timeout_ms yields an error for a 400.
func (s *Server) execContext(r *http.Request, q map[string][]string) (context.Context, context.CancelFunc, error) {
	d := s.cfg.MatchTimeout
	if s.cfg.MaxMatchDuration > 0 && s.cfg.MaxMatchDuration < d {
		d = s.cfg.MaxMatchDuration
	}
	if vs := q["timeout_ms"]; len(vs) > 0 && vs[0] != "" {
		ms, err := strconv.Atoi(vs[0])
		if err != nil || ms <= 0 {
			return nil, nil, fmt.Errorf("timeout_ms must be a positive integer, got %q", vs[0])
		}
		if t := time.Duration(ms) * time.Millisecond; t < d {
			d = t
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

// abortReason classifies a cancelled execution for the
// papd_match_cancellations_total reason label.
func abortReason(err error) string {
	if errors.Is(err, context.DeadlineExceeded) {
		return "deadline"
	}
	return "client_gone"
}

// writeAbort translates a cancelled execution into 503 with partial
// progress and counts it. extra, when non-nil, decorates the response
// (stream writes attach the matches and offset reached before the stop).
func (s *Server) writeAbort(w http.ResponseWriter, err error, extra func(*abortResponse)) {
	reason := abortReason(err)
	s.countCancellation(reason)
	resp := abortResponse{Error: err.Error(), Reason: reason}
	var ab *pap.AbortError
	if errors.As(err, &ab) {
		resp.Progress = ab.Progress
	}
	if extra != nil {
		extra(&resp)
	}
	writeJSON(w, http.StatusServiceUnavailable, resp)
}

// isAbort reports whether err is a cancellation (as opposed to, say, a bad
// parallel configuration): an *pap.AbortError or a bare context error.
func isAbort(err error) bool {
	var ab *pap.AbortError
	return errors.As(err, &ab) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled)
}

// toMatchJSON converts matches for the wire; scored runs attach each
// match's score (a pointer so legitimate zeros survive omitempty).
func toMatchJSON(ms []pap.Match, scored bool) []matchJSON {
	out := make([]matchJSON, len(ms))
	for i, m := range ms {
		out[i] = matchJSON{Code: m.Code, Offset: m.Offset}
		if scored {
			sc := m.Score
			out[i].Score = &sc
		}
	}
	return out
}

func (s *Server) automatonJSON(e *Entry) automatonJSON {
	st := e.Automaton.Stats()
	return automatonJSON{
		Name:        e.Name,
		Version:     e.Version,
		Kind:        e.Kind,
		Patterns:    e.Patterns,
		Distance:    e.Distance,
		Engine:      e.Engine.String(),
		Created:     e.Created,
		States:      st.States,
		Transitions: st.Transitions,
		Components:  st.ConnectedComponents,
		Reporting:   st.ReportingStates,
		Requests:    e.Requests.Load(),
		Matches:     e.Matches.Load(),
	}
}

func (s *Server) countEngineSteps(k pap.EngineKind, symbols int) {
	if int(k) < len(s.engineSteps) {
		s.engineSteps[k].Add(int64(symbols))
	}
}

// countEngineInfo feeds one match's (or stream write's delta of) backend
// observability counters into the prefilter and lazy-DFA cache metrics.
func (s *Server) countEngineInfo(info pap.EngineInfo) {
	s.prefilterSkipped.Add(info.PrefilterSkippedBytes)
	s.baselineSkipped.Add(info.BaselineSkippedBytes)
	s.lazyCacheHits.Add(info.CacheHits)
	s.lazyCacheMisses.Add(info.CacheMisses)
	s.lazyCacheEvicts.Add(info.CacheEvictions)
}

// engineNames is the valid-kinds list quoted in engine parse errors.
func engineNames() string {
	return `"` + strings.Join(pap.EngineKindNames(), `", "`) + `"`
}

func (s *Server) countMatches(e *Entry, n int) {
	e.Requests.Add(1)
	e.Matches.Add(int64(n))
	s.metrics.Counter("papd_automaton_matches_total",
		"Matches reported, by automaton.",
		fmt.Sprintf("automaton=%q", EscapeLabelValue(e.Name))).Add(int64(n))
}

// ---- probes and metrics ----

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w)
}

// ---- automata ----

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req registerRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	e, err := s.reg.Register(req.Name, req.Kind, req.Patterns, req.Distance, req.Engine)
	switch {
	case err == nil:
		// A fresh name is a 201; re-registering an existing name is a
		// zero-downtime hot reload to version v+1 and answers 200.
		code := http.StatusCreated
		if e.Version > 1 {
			code = http.StatusOK
		}
		writeJSON(w, code, s.automatonJSON(e))
	case errors.Is(err, ErrExists):
		writeErr(w, http.StatusConflict, "%v", err)
	case errors.Is(err, ErrTooMany):
		writeErr(w, http.StatusInsufficientStorage, "%v", err)
	default:
		writeErr(w, http.StatusBadRequest, "%v", err)
	}
}

func (s *Server) handleListAutomata(w http.ResponseWriter, r *http.Request) {
	entries := s.reg.List()
	out := make([]automatonJSON, len(entries))
	for i, e := range entries {
		out[i] = s.automatonJSON(e)
	}
	writeJSON(w, http.StatusOK, map[string]any{"automata": out})
}

func (s *Server) handleGetAutomaton(w http.ResponseWriter, r *http.Request) {
	e, err := s.reg.Get(r.PathValue("name"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.automatonJSON(e))
}

func (s *Server) handleDeleteAutomaton(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.Delete(r.PathValue("name")); err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ---- matching ----

// parseParallelConfig builds a pap.Config from match query parameters.
func parseParallelConfig(q map[string][]string, serialDefault bool) (pap.Config, error) {
	get := func(k string) string {
		if vs := q[k]; len(vs) > 0 {
			return vs[0]
		}
		return ""
	}
	cfg := pap.DefaultConfig(1)
	cfg.SerialSegments = serialDefault
	if v := get("ranks"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > 4 {
			return cfg, fmt.Errorf("ranks must be 1..4, got %q", v)
		}
		cfg.Ranks = n
	}
	if v := get("segments"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return cfg, fmt.Errorf("segments must be >= 1, got %q", v)
		}
		cfg.MaxSegments = n
	}
	if v := get("speculate"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return cfg, fmt.Errorf("speculate must be a bool, got %q", v)
		}
		cfg.Speculate = b
	}
	if v := get("serial_segments"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return cfg, fmt.Errorf("serial_segments must be a bool, got %q", v)
		}
		cfg.SerialSegments = b
	}
	return cfg, nil
}

// resolveEngine picks the execution backend for a request: the "engine"
// query parameter when present, the ruleset's registered default otherwise.
func resolveEngine(q map[string][]string, e *Entry) (pap.EngineKind, error) {
	if vs := q["engine"]; len(vs) > 0 && vs[0] != "" {
		k, err := pap.ParseEngineKind(vs[0])
		if err != nil {
			return pap.EngineAuto, fmt.Errorf("engine must be one of %s, got %q", engineNames(), vs[0])
		}
		return k, nil
	}
	return e.Engine, nil
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	payload, ok := s.readBody(w, r)
	if !ok {
		return
	}
	// Shard routing: a ruleset owned by a healthy peer is matched there
	// (concentrating its caches and batches on one replica); if the
	// forward fails in transport we fall back to serving locally.
	if addr, route := s.router.routeTo(r, name); route {
		if s.router.Forward(w, r, addr, payload) {
			return
		}
	}
	e, err := s.reg.Get(name)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	if !s.checkQuota(w, r) {
		return
	}
	q := r.URL.Query()
	mode := q.Get("mode")
	if mode == "" || mode == "seq" {
		mode = "sequential"
	}
	// mode=sfa is parallel matching under the SFA function-composition
	// strategy; mode=parallel serves the operator's configured default.
	execMode := s.cfg.DefaultExecMode
	if mode == "sfa" {
		mode = "parallel"
		execMode = pap.ExecSFA
	}
	eng, err := resolveEngine(q, e)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	// scored=true tracks per-transition scores; scored automata always do.
	scored := e.Automaton.Scored()
	if v := q.Get("scored"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "scored must be a bool, got %q", v)
			return
		}
		scored = scored || b
	}
	execCtx, cancelExec, err := s.execContext(r, q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancelExec()

	var (
		resp     matchResponse
		matchErr error
	)
	start := time.Now()
	switch mode {
	case "sequential":
		var (
			ms   []pap.Match
			info pap.EngineInfo
		)
		if s.coalescer.Enabled() && len(payload) <= s.cfg.BatchMaxBytes {
			// Small payload: join the batch for this ruleset version and
			// engine. Pool-level errors surface exactly as they would on
			// the solo dispatch path.
			ms, info, matchErr = s.coalescer.Match(execCtx, e, eng, payload)
			switch {
			case matchErr == nil || isAbort(matchErr):
			case errors.Is(matchErr, ErrQueueFull):
				s.poolRejected.Inc()
				w.Header().Set("Retry-After", "1")
				writeErr(w, http.StatusTooManyRequests, "matching queue full, retry later")
				return
			case errors.Is(matchErr, ErrPoolClosed):
				writeErr(w, http.StatusServiceUnavailable, "server draining")
				return
			default:
				s.countCancellation("client_gone")
				writeErr(w, http.StatusServiceUnavailable, "request aborted: %v", matchErr)
				return
			}
		} else if !s.dispatch(w, r, func() {
			ms, info, matchErr = e.Automaton.MatchWithInfoContext(execCtx, payload, eng)
		}) {
			return
		}
		s.countEngineInfo(info)
		if matchErr != nil {
			s.writeAbort(w, matchErr, nil)
			return
		}
		resp.Matches = toMatchJSON(ms, scored)
		s.countEngineSteps(eng, len(payload))
	case "parallel":
		cfg, err := parseParallelConfig(q, s.cfg.SerialSegments)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		cfg.Engine = eng
		cfg.Mode = execMode
		cfg.Scoring = scored
		var rep *pap.Report
		if !s.dispatch(w, r, func() {
			rep, matchErr = e.Automaton.MatchParallelContext(execCtx, payload, cfg)
		}) {
			return
		}
		if matchErr != nil {
			if isAbort(matchErr) {
				s.writeAbort(w, matchErr, nil)
				return
			}
			writeErr(w, http.StatusUnprocessableEntity, "parallel match: %v", matchErr)
			return
		}
		resp.Matches = toMatchJSON(rep.Matches, rep.Stats.Scored)
		st := rep.Stats
		resp.AP = &apStatsJSON{
			Segments:          st.Segments,
			Speedup:           st.Speedup,
			IdealSpeedup:      st.IdealSpeedup,
			BaselineNS:        st.BaselineNS,
			ParallelNS:        st.ParallelNS,
			CutSymbol:         st.CutSymbol,
			CutRange:          st.CutRange,
			AvgActiveFlows:    st.AvgActiveFlows,
			SwitchOverheadPct: st.SwitchOverheadPct,
			FalseReportRatio:  st.FalseReportRatio,
			EngineSwitches:    st.EngineSwitches,
			PrefilterSkipped:  st.PrefilterSkippedBytes,
			BaselineSkipped:   st.BaselineSkippedBytes,
			ExecMode:          st.Mode,
			SFAMappings:       st.SFAMappings,
			SFAComposeOps:     st.SFAComposeOps,
			FPCollisions:      st.FingerprintCollisions,
			Scored:            st.Scored,
			ScoredReports:     st.ScoredReports,
			Verified:          st.Verified,
		}
		s.speedupHist.Observe(st.Speedup)
		s.countEngineSteps(eng, len(payload))
		s.engineSwitches.Add(st.EngineSwitches)
		s.prefilterSkipped.Add(st.PrefilterSkippedBytes)
		s.baselineSkipped.Add(st.BaselineSkippedBytes)
		s.sfaMappings.Add(st.SFAMappings)
		s.sfaCompositions.Add(st.SFAComposeOps)
	default:
		writeErr(w, http.StatusBadRequest,
			`mode must be "sequential" (default), "parallel" or "sfa", got %q`, mode)
		return
	}

	resp.Automaton = e.Name
	resp.Mode = mode
	resp.Engine = eng.String()
	resp.InputBytes = len(payload)
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	if scored {
		resp.Scored = true
		for _, m := range resp.Matches {
			if m.Score != nil && (resp.BestScore == nil || *m.Score > *resp.BestScore) {
				resp.BestScore = m.Score
			}
		}
		s.scoredMatches.Add(int64(len(resp.Matches)))
	}
	s.countMatches(e, len(resp.Matches))
	if resp.Matches == nil {
		resp.Matches = []matchJSON{}
	}
	writeJSON(w, http.StatusOK, resp)
}

// ---- streaming sessions ----

func (s *Server) handleOpenStream(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req openStreamRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	// A stream for a peer-owned ruleset opens on the owner; remember
	// where the session lives so writes through this replica follow it.
	if addr, route := s.router.routeTo(r, req.Automaton); route {
		if code, respBody, done := s.router.ForwardCapture(w, r, addr, body); done {
			if code == http.StatusCreated {
				var si SessionInfo
				if json.Unmarshal(respBody, &si) == nil && si.ID != "" {
					s.router.RememberSession(si.ID, addr)
				}
			}
			return
		}
	}
	e, err := s.reg.Get(req.Automaton)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	eng := e.Engine
	if req.Engine != "" {
		if eng, err = pap.ParseEngineKind(req.Engine); err != nil {
			writeErr(w, http.StatusBadRequest,
				"engine must be one of %s, got %q", engineNames(), req.Engine)
			return
		}
	}
	var sess *Session
	if req.Scored {
		sess, err = s.sessions.CreateScored(e, eng)
	} else {
		sess, err = s.sessions.Create(e, eng)
	}
	if err != nil {
		if errors.Is(err, ErrTooManySessions) {
			writeErr(w, http.StatusTooManyRequests, "%v", err)
		} else {
			writeErr(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusCreated, sess.Info())
}

func (s *Server) handleListStreams(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"streams": s.sessions.List()})
}

// forwardSession relays a request for a session that lives on a peer
// (learned when its open was forwarded there). A 404 from the owner, or
// final being true (the close path), drops the routing entry. Reports
// whether the response was written; a transport failure falls through to
// local handling.
func (s *Server) forwardSession(w http.ResponseWriter, r *http.Request, id string, body []byte, final bool) bool {
	if r.Header.Get(forwardHeader) != "" {
		return false
	}
	addr, owned := s.router.SessionOwner(id)
	if !owned {
		return false
	}
	code, _, done := s.router.ForwardCapture(w, r, addr, body)
	if !done {
		return false
	}
	if final || code == http.StatusNotFound {
		s.router.ForgetSession(id)
	}
	return true
}

func (s *Server) handleGetStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.forwardSession(w, r, id, nil, false) {
		return
	}
	sess, err := s.sessions.Get(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, sess.Info())
}

func (s *Server) handleStreamWrite(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	chunk, ok := s.readBody(w, r)
	if !ok {
		return
	}
	if s.forwardSession(w, r, id, chunk, false) {
		return
	}
	sess, err := s.sessions.Get(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	if !s.checkQuota(w, r) {
		return
	}
	execCtx, cancelExec, err := s.execContext(r, r.URL.Query())
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancelExec()
	var (
		ms        []pap.Match
		offset    int64
		ws        WriteStats
		writeErr2 error
	)
	if !s.dispatch(w, r, func() {
		ms, offset, ws, writeErr2 = sess.WriteContext(execCtx, chunk)
	}) {
		return
	}
	countWrite := func() {
		s.engineSwitches.Add(ws.Switches)
		s.countEngineInfo(pap.EngineInfo{
			PrefilterSkippedBytes: ws.PrefilterSkipped,
			BaselineSkippedBytes:  ws.BaselineSkipped,
			CacheHits:             ws.CacheHits,
			CacheMisses:           ws.CacheMisses,
			CacheEvictions:        ws.CacheEvictions,
		})
	}
	if writeErr2 != nil {
		if isAbort(writeErr2) {
			// The symbols before the stop were consumed: account for them
			// and hand back their matches with the resume offset.
			if e, err := s.reg.Get(sess.Automaton); err == nil {
				s.countMatches(e, len(ms))
			}
			countWrite()
			s.writeAbort(w, writeErr2, func(resp *abortResponse) {
				resp.Matches = toMatchJSON(ms, sess.Scored)
				resp.Offset = offset
			})
			return
		}
		writeErr(w, http.StatusNotFound, "%v", writeErr2)
		return
	}
	if e, err := s.reg.Get(sess.Automaton); err == nil {
		s.countMatches(e, len(ms))
	}
	s.streamBytes.Add(int64(len(chunk)))
	s.countEngineSteps(sess.Engine, len(chunk))
	countWrite()
	resp := streamWriteResponse{Matches: toMatchJSON(ms, sess.Scored), Offset: offset}
	if sess.Scored {
		if best, ok := sess.BestScore(); ok {
			resp.BestScore = &best
		}
		s.scoredMatches.Add(int64(len(ms)))
	}
	if resp.Matches == nil {
		resp.Matches = []matchJSON{}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCloseStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.forwardSession(w, r, id, nil, true) {
		return
	}
	if err := s.sessions.Close(id); err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
