package server

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded worker pool: a fixed number of workers drain a bounded
// queue. A full queue rejects immediately (ErrQueueFull → HTTP 429
// backpressure) instead of letting latency grow without bound; a request
// whose context expires while its task is still queued is abandoned
// without ever running. Close drains everything already accepted, which is
// what lets papd shut down gracefully with no match dropped mid-flight.
type Pool struct {
	tasks     chan *poolTask
	wg        sync.WaitGroup // workers
	active    atomic.Int64
	started   atomic.Int64
	rejected  atomic.Int64
	abandoned atomic.Int64

	mu      sync.RWMutex // guards closed vs. sends on tasks
	closed  bool
	workers int
}

type poolTask struct {
	fn      func()
	claimed atomic.Bool // set by the worker (run it) or by Do (abandon it)
	done    chan struct{}
}

// ErrQueueFull is returned by Do when the queue has no room; callers
// should translate it to a retryable backpressure signal (HTTP 429).
var ErrQueueFull = errors.New("server: worker pool queue full")

// ErrPoolClosed is returned by Do after Close.
var ErrPoolClosed = errors.New("server: worker pool closed")

// NewPool starts a pool with the given worker count and queue depth.
// workers <= 0 defaults to GOMAXPROCS; queue <= 0 defaults to 2×workers.
func NewPool(workers, queue int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queue <= 0 {
		queue = 2 * workers
	}
	p := &Pool{tasks: make(chan *poolTask, queue), workers: workers}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for t := range p.tasks {
		if !t.claimed.CompareAndSwap(false, true) {
			continue // abandoned while queued (caller timed out)
		}
		p.active.Add(1)
		p.started.Add(1)
		t.fn()
		p.active.Add(-1)
		close(t.done)
	}
}

// Do submits fn and waits until it completes or ctx is done. It returns
// ErrQueueFull without blocking when the queue is full, and ctx.Err() when
// the context expires first — in which case fn either never runs (it was
// still queued and is dropped) or is already running on a worker and will
// finish in the background; either way its results must be discarded.
func (p *Pool) Do(ctx context.Context, fn func()) error {
	t := &poolTask{fn: fn, done: make(chan struct{})}

	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return ErrPoolClosed
	}
	select {
	case p.tasks <- t:
		p.mu.RUnlock()
	default:
		p.mu.RUnlock()
		p.rejected.Add(1)
		return ErrQueueFull
	}

	select {
	case <-t.done:
		return nil
	case <-ctx.Done():
		if t.claimed.CompareAndSwap(false, true) {
			// Still queued: abandoned, will never run — and therefore
			// never counted in Started or Active.
			p.abandoned.Add(1)
			return ctx.Err()
		}
		// Already running. Report the timeout; the worker finishes and
		// discards into the abandoned task.
		return ctx.Err()
	}
}

// QueueDepth returns the number of tasks currently waiting in the queue.
func (p *Pool) QueueDepth() int { return len(p.tasks) }

// QueueCap returns the queue capacity.
func (p *Pool) QueueCap() int { return cap(p.tasks) }

// Active returns the number of tasks currently executing.
func (p *Pool) Active() int64 { return p.active.Load() }

// Workers returns the worker count.
func (p *Pool) Workers() int { return p.workers }

// Started returns the cumulative number of tasks that began executing.
func (p *Pool) Started() int64 { return p.started.Load() }

// Rejected returns the cumulative number of ErrQueueFull rejections.
func (p *Pool) Rejected() int64 { return p.rejected.Load() }

// Abandoned returns the cumulative number of tasks whose caller gave up
// while they were still queued; abandoned tasks never run and never
// appear in Started or Active.
func (p *Pool) Abandoned() int64 { return p.abandoned.Load() }

// Close stops accepting work, drains every task already queued, and waits
// for all workers to exit. Safe to call more than once.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
