package server

import (
	"strings"
	"sync"
	"testing"
)

func TestMetricsPrometheusFormat(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("papd_test_total", "A test counter.", `kind="a"`)
	c.Add(3)
	m.Counter("papd_test_total", "A test counter.", `kind="b"`).Inc()
	m.GaugeFunc("papd_test_gauge", "A test gauge.", "", func() float64 { return 2.5 })
	h := m.Histogram("papd_test_seconds", "A test histogram.", "", []float64{0.1, 1})
	h.Observe(0.0625) // exactly representable: the _sum line stays exact
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	m.WritePrometheus(&b)
	out := b.String()

	for _, want := range []string{
		"# HELP papd_test_total A test counter.",
		"# TYPE papd_test_total counter",
		`papd_test_total{kind="a"} 3`,
		`papd_test_total{kind="b"} 1`,
		"# TYPE papd_test_gauge gauge",
		"papd_test_gauge 2.5",
		"# TYPE papd_test_seconds histogram",
		`papd_test_seconds_bucket{le="0.1"} 1`,
		`papd_test_seconds_bucket{le="1"} 2`,
		`papd_test_seconds_bucket{le="+Inf"} 3`,
		"papd_test_seconds_sum 5.5625",
		"papd_test_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n%s", want, out)
		}
	}
}

func TestMetricsSameInstrumentReturned(t *testing.T) {
	m := NewMetrics()
	a := m.Counter("x_total", "h", "")
	b := m.Counter("x_total", "h", "")
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m.Counter("c_total", "h", "").Inc()
				m.Histogram("h_seconds", "h", "", DefaultLatencyBuckets).Observe(0.01)
				var b strings.Builder
				if i%50 == 0 {
					m.WritePrometheus(&b)
				}
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("c_total", "h", "").Value(); got != 1600 {
		t.Fatalf("counter = %d, want 1600", got)
	}
	if got := m.Histogram("h_seconds", "h", "", DefaultLatencyBuckets).Count(); got != 1600 {
		t.Fatalf("histogram count = %d, want 1600", got)
	}
}

func TestEscapeLabelValue(t *testing.T) {
	if got := EscapeLabelValue("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Fatalf("escaped = %q", got)
	}
}
