package server

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestQuotasDisabled proves rps <= 0 disables limiting and that the nil
// receiver is safe everywhere handlers touch it.
func TestQuotasDisabled(t *testing.T) {
	q := NewQuotas(0, 10)
	if q != nil {
		t.Fatalf("NewQuotas(0, _) = %v, want nil", q)
	}
	if ok, wait := q.Allow("anyone"); !ok || wait != 0 {
		t.Fatalf("nil Quotas.Allow = (%v, %v), want (true, 0)", ok, wait)
	}
	if n := q.Tenants(); n != 0 {
		t.Fatalf("nil Quotas.Tenants = %d, want 0", n)
	}
}

// TestQuotasBucketMath drives the token bucket with an injected clock:
// burst allows an initial flood, then tokens arrive at exactly rps, and
// the reported wait is the time to the next whole token.
func TestQuotasBucketMath(t *testing.T) {
	q := NewQuotas(2, 4) // 2 tokens/s, bucket of 4
	now := time.Unix(1000, 0)
	q.now = func() time.Time { return now }

	for i := 0; i < 4; i++ {
		if ok, _ := q.Allow("t"); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, wait := q.Allow("t")
	if ok {
		t.Fatal("5th request within burst allowed, want denied")
	}
	// Bucket is at 0 tokens; the next token lands in 1/rps = 500ms.
	if wait != 500*time.Millisecond {
		t.Fatalf("wait = %v, want 500ms", wait)
	}

	now = now.Add(500 * time.Millisecond)
	if ok, _ := q.Allow("t"); !ok {
		t.Fatal("request after exactly one refill interval denied")
	}
	if ok, _ := q.Allow("t"); ok {
		t.Fatal("second request after one refill interval allowed, want denied")
	}

	// Refill caps at burst: a long idle period grants burst, not more.
	now = now.Add(time.Hour)
	for i := 0; i < 4; i++ {
		if ok, _ := q.Allow("t"); !ok {
			t.Fatalf("post-idle burst request %d denied", i)
		}
	}
	if ok, _ := q.Allow("t"); ok {
		t.Fatal("post-idle 5th request allowed: refill exceeded burst")
	}
}

// TestQuotasTenantIsolation proves one tenant draining its bucket never
// costs another tenant a token.
func TestQuotasTenantIsolation(t *testing.T) {
	q := NewQuotas(1, 2)
	now := time.Unix(1000, 0)
	q.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if ok, _ := q.Allow("noisy"); !ok {
			t.Fatalf("noisy request %d denied", i)
		}
	}
	if ok, _ := q.Allow("noisy"); ok {
		t.Fatal("noisy over-budget request allowed")
	}
	for i := 0; i < 2; i++ {
		if ok, _ := q.Allow("quiet"); !ok {
			t.Fatalf("quiet tenant throttled by noisy neighbour (request %d)", i)
		}
	}
	if q.Tenants() != 2 {
		t.Fatalf("Tenants = %d, want 2", q.Tenants())
	}
}

// TestQuotasRetryAfterSeconds pins the header formatting: whole seconds,
// rounded up, never below 1.
func TestQuotasRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{10 * time.Millisecond, 1},
		{time.Second, 1},
		{1100 * time.Millisecond, 2},
		{5 * time.Second, 5},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.d); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestQuotasEvictIdle proves the bucket map stays bounded: once a tenant
// has been idle long enough to refill completely, its bucket is
// reclaimable and a fresh bucket behaves identically.
func TestQuotasEvictIdle(t *testing.T) {
	q := NewQuotas(100, 1)
	now := time.Unix(1000, 0)
	q.now = func() time.Time { return now }

	for i := 0; i < 10; i++ {
		q.Allow(fmt.Sprintf("tenant-%d", i))
	}
	if q.Tenants() != 10 {
		t.Fatalf("Tenants = %d, want 10", q.Tenants())
	}
	now = now.Add(time.Minute) // everyone refills completely
	q.mu.Lock()
	q.evictIdleLocked()
	q.mu.Unlock()
	if q.Tenants() != 0 {
		t.Fatalf("Tenants after idle eviction = %d, want 0", q.Tenants())
	}
}

// TestQuotasConcurrent hammers one shared and many private tenants under
// the race detector and checks token conservation for the shared one.
func TestQuotasConcurrent(t *testing.T) {
	q := NewQuotas(1, 50) // effectively fixed budget of 50 within the test window
	var allowed int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if ok, _ := q.Allow("shared"); ok {
					mu.Lock()
					allowed++
					mu.Unlock()
				}
				q.Allow(fmt.Sprintf("private-%d", g))
			}
		}(g)
	}
	wg.Wait()
	// 800 attempts against a burst of 50 at 1 rps: the test runs far
	// under a second, so at most burst + a couple refilled tokens pass.
	if allowed < 50 || allowed > 55 {
		t.Fatalf("shared tenant allowed %d of 800, want ~50 (burst)", allowed)
	}
}
