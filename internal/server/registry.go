package server

import (
	"errors"
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pap"
)

// Registry holds the compiled automata papd serves. Compilation happens
// once, at registration; every match request and streaming session then
// shares the same immutable *pap.Automaton (the package-level concurrency
// contract makes this safe), so serving cost is pure matching cost.
type Registry struct {
	mu    sync.RWMutex
	autos map[string]*Entry
	max   int
}

// Entry is one registered ruleset with its serving statistics.
type Entry struct {
	Name      string
	Kind      string // "regex", "hamming" or "levenshtein"
	Patterns  int
	Distance  int            // for hamming/levenshtein
	Engine    pap.EngineKind // default execution backend for this ruleset
	Created   time.Time
	Automaton *pap.Automaton

	// Serving counters, updated atomically by handlers.
	Requests atomic.Int64 // match + stream-write requests served
	Matches  atomic.Int64 // total matches reported
}

// Registration errors.
var (
	ErrExists      = errors.New("server: automaton already registered")
	ErrNotFound    = errors.New("server: automaton not found")
	ErrTooMany     = errors.New("server: automata limit reached")
	ErrBadName     = errors.New(`server: name must match [A-Za-z0-9_.:-]{1,64}`)
	ErrNoPatterns  = errors.New("server: at least one pattern required")
	ErrUnknownKind = errors.New(`server: kind must be "regex", "hamming" or "levenshtein"`)
	ErrBadEngine   = errors.New("server: engine must be one of " +
		`"` + strings.Join(pap.EngineKindNames(), `", "`) + `"`)
)

var nameRE = regexp.MustCompile(`^[A-Za-z0-9_.:-]{1,64}$`)

// NewRegistry returns an empty registry holding at most max automata
// (max <= 0 means 1024).
func NewRegistry(max int) *Registry {
	if max <= 0 {
		max = 1024
	}
	return &Registry{autos: make(map[string]*Entry), max: max}
}

// Register compiles patterns under the given kind and stores the result.
// kind "" defaults to "regex"; distance is only meaningful for "hamming"
// and "levenshtein". engineName sets the ruleset's default execution
// backend ("" means "auto"); individual requests may override it. Names
// are restricted so they can be embedded in metric labels without
// escaping surprises.
func (r *Registry) Register(name, kind string, patterns []string, distance int, engineName string) (*Entry, error) {
	if !nameRE.MatchString(name) {
		return nil, ErrBadName
	}
	if len(patterns) == 0 {
		return nil, ErrNoPatterns
	}
	eng, engErr := pap.ParseEngineKind(engineName)
	if engErr != nil {
		return nil, ErrBadEngine
	}
	var (
		a   *pap.Automaton
		err error
	)
	switch kind {
	case "", "regex":
		kind = "regex"
		a, err = pap.Compile(name, patterns)
	case "hamming":
		a, err = pap.Hamming(name, patterns, distance)
	case "levenshtein":
		a, err = pap.Levenshtein(name, patterns, distance)
	default:
		return nil, ErrUnknownKind
	}
	if err != nil {
		return nil, fmt.Errorf("server: compile %q: %w", name, err)
	}
	e := &Entry{
		Name:      name,
		Kind:      kind,
		Patterns:  len(patterns),
		Distance:  distance,
		Engine:    eng,
		Created:   time.Now().UTC(),
		Automaton: a,
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.autos[name]; dup {
		return nil, ErrExists
	}
	if len(r.autos) >= r.max {
		return nil, ErrTooMany
	}
	r.autos[name] = e
	return e, nil
}

// Get returns the entry for name, or ErrNotFound.
func (r *Registry) Get(name string) (*Entry, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.autos[name]
	if !ok {
		return nil, ErrNotFound
	}
	return e, nil
}

// Delete removes name from the registry. Streaming sessions already bound
// to the automaton keep working — the compiled automaton is immutable and
// simply becomes unreachable for new work.
func (r *Registry) Delete(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.autos[name]; !ok {
		return ErrNotFound
	}
	delete(r.autos, name)
	return nil
}

// List returns all entries sorted by name.
func (r *Registry) List() []*Entry {
	r.mu.RLock()
	out := make([]*Entry, 0, len(r.autos))
	for _, e := range r.autos {
		out = append(out, e)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered automata.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.autos)
}
