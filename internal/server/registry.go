package server

import (
	"errors"
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pap"
)

// Registry holds the compiled automata papd serves, versioned per name.
// Compilation happens once, at registration; every match request and
// streaming session then shares the same immutable *pap.Automaton (the
// package-level concurrency contract makes this safe), so serving cost
// is pure matching cost.
//
// Registering a name that already exists is a zero-downtime hot reload:
// the new patterns compile off-lock, then atomically replace the old
// entry as version v+1. Work that already resolved the old *Entry — an
// in-flight match, a streaming session — keeps its pinned, immutable
// automaton; only new lookups see the new version. Versions are
// monotone per name for the life of the registry, surviving deletes, so
// a dashboard watching papd_ruleset_version never sees it regress.
type Registry struct {
	mu      sync.RWMutex
	autos   map[string]*Entry
	pending map[string]bool // names reserved by an in-flight registration
	lastVer map[string]int  // highest version ever installed per name
	max     int

	// onInstall, when set, runs after each successful install (outside
	// r.mu) — the server uses it to register the per-ruleset version
	// gauge for preloaded and API-registered rulesets alike.
	onInstall func(*Entry)
}

// Entry is one registered ruleset version with its serving statistics.
type Entry struct {
	Name      string
	Version   int // 1 for a fresh name, v+1 on each hot reload
	Kind      string // "regex", "hamming" or "levenshtein"
	Patterns  int
	Distance  int            // for hamming/levenshtein
	Engine    pap.EngineKind // default execution backend for this ruleset
	Created   time.Time
	Automaton *pap.Automaton

	// Serving counters, updated atomically by handlers.
	Requests atomic.Int64 // match + stream-write requests served
	Matches  atomic.Int64 // total matches reported
}

// Registration errors.
var (
	ErrExists      = errors.New("server: registration for this name already in flight")
	ErrNotFound    = errors.New("server: automaton not found")
	ErrTooMany     = errors.New("server: automata limit reached")
	ErrBadName     = errors.New(`server: name must match [A-Za-z0-9_.:-]{1,64}`)
	ErrNoPatterns  = errors.New("server: at least one pattern required")
	ErrUnknownKind = errors.New(`server: kind must be "regex", "hamming" or "levenshtein"`)
	ErrBadEngine   = errors.New("server: engine must be one of " +
		`"` + strings.Join(pap.EngineKindNames(), `", "`) + `"`)
)

var nameRE = regexp.MustCompile(`^[A-Za-z0-9_.:-]{1,64}$`)

// compileHook, when non-nil, observes every compile the registry pays
// for. Tests use it to prove that rejected registrations never compile.
var compileHook func(name string)

// NewRegistry returns an empty registry holding at most max automata
// (max <= 0 means 1024).
func NewRegistry(max int) *Registry {
	if max <= 0 {
		max = 1024
	}
	return &Registry{
		autos:   make(map[string]*Entry),
		pending: make(map[string]bool),
		lastVer: make(map[string]int),
		max:     max,
	}
}

// SetInstallHook wires a callback invoked after every successful install
// (registration or hot reload), outside the registry lock.
func (r *Registry) SetInstallHook(fn func(*Entry)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onInstall = fn
}

// reserve claims name under the lock before any compile work: duplicate
// concurrent registrations fail fast with ErrExists and the automata
// limit is enforced against installed + reserved names, so a losing
// caller never pays a compile. The returned release must be called
// exactly once, with the compiled entry to install or nil to abort.
func (r *Registry) reserve(name string) (func(e *Entry), error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pending[name] {
		return nil, ErrExists
	}
	if _, reload := r.autos[name]; !reload {
		// Only genuinely new names consume a slot; hot reloads replace.
		if len(r.autos)+len(r.pending) >= r.max {
			return nil, ErrTooMany
		}
	}
	r.pending[name] = true
	return func(e *Entry) {
		r.mu.Lock()
		delete(r.pending, name)
		var hook func(*Entry)
		if e != nil {
			e.Version = r.lastVer[name] + 1
			r.lastVer[name] = e.Version
			r.autos[name] = e
			hook = r.onInstall
		}
		r.mu.Unlock()
		if hook != nil {
			hook(e)
		}
	}, nil
}

// Register compiles patterns under the given kind and installs the
// result. kind "" defaults to "regex"; distance is only meaningful for
// "hamming" and "levenshtein". engineName sets the ruleset's default
// execution backend ("" means "auto"); individual requests may override
// it. Names are restricted so they can be embedded in metric labels
// without escaping surprises.
//
// Registering an existing name is a hot reload: the entry is replaced
// with version v+1 once compilation succeeds, while everything pinned to
// the old entry keeps serving it. The name is reserved before the
// compile starts, so of several concurrent registrations for one name
// exactly one compiles and installs; the rest fail immediately with
// ErrExists.
func (r *Registry) Register(name, kind string, patterns []string, distance int, engineName string) (*Entry, error) {
	if !nameRE.MatchString(name) {
		return nil, ErrBadName
	}
	if len(patterns) == 0 {
		return nil, ErrNoPatterns
	}
	eng, engErr := pap.ParseEngineKind(engineName)
	if engErr != nil {
		return nil, ErrBadEngine
	}
	if kind == "" {
		kind = "regex"
	}
	switch kind {
	case "regex", "hamming", "levenshtein":
	default:
		return nil, ErrUnknownKind
	}

	install, err := r.reserve(name)
	if err != nil {
		return nil, err
	}

	// Compile outside the lock: reads, lists and unrelated registrations
	// proceed while this (potentially large) ruleset builds.
	if compileHook != nil {
		compileHook(name)
	}
	var a *pap.Automaton
	switch kind {
	case "regex":
		a, err = pap.Compile(name, patterns)
	case "hamming":
		a, err = pap.Hamming(name, patterns, distance)
	case "levenshtein":
		a, err = pap.Levenshtein(name, patterns, distance)
	}
	if err != nil {
		install(nil)
		return nil, fmt.Errorf("server: compile %q: %w", name, err)
	}
	e := &Entry{
		Name:      name,
		Kind:      kind,
		Patterns:  len(patterns),
		Distance:  distance,
		Engine:    eng,
		Created:   time.Now().UTC(),
		Automaton: a,
	}
	install(e)
	return e, nil
}

// Get returns the current entry for name, or ErrNotFound.
func (r *Registry) Get(name string) (*Entry, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.autos[name]
	if !ok {
		return nil, ErrNotFound
	}
	return e, nil
}

// Version returns the currently served version of name, or 0 when the
// name is not registered (papd_ruleset_version reads this).
func (r *Registry) Version(name string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if e, ok := r.autos[name]; ok {
		return e.Version
	}
	return 0
}

// Delete removes name from the registry. Streaming sessions already bound
// to the automaton keep working — the compiled automaton is immutable and
// simply becomes unreachable for new work. A later re-registration of the
// name continues the version sequence rather than restarting it.
func (r *Registry) Delete(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.autos[name]; !ok {
		return ErrNotFound
	}
	delete(r.autos, name)
	return nil
}

// List returns all current entries sorted by name.
func (r *Registry) List() []*Entry {
	r.mu.RLock()
	out := make([]*Entry, 0, len(r.autos))
	for _, e := range r.autos {
		out = append(out, e)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered automata.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.autos)
}
