package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

func doJSON(t *testing.T, method, url string, body []byte, out any) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decoding %s %s response %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode, data
}

// testInput builds a payload with plantings of the given needles, like the
// root package's test generator.
func testInput(size int, seed int64, inject ...string) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, size)
	const alpha = "abcdefghijklmnopqrstuvwxyz 0123456789"
	for i := range b {
		b[i] = alpha[rng.Intn(len(alpha))]
	}
	for _, s := range inject {
		for k := 0; k < 1+size/2048; k++ {
			p := rng.Intn(size - len(s))
			copy(b[p:], s)
		}
	}
	return b
}

// TestServerEndToEnd drives the full API surface the way a client would:
// register a ruleset, match a payload sequentially and in parallel, run a
// chunked streaming session, and check the metrics output mentions all of
// it. This is the integration test the issue's acceptance criteria name.
func TestServerEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Probes.
	if code, body := doJSON(t, "GET", ts.URL+"/healthz", nil, nil); code != 200 || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz = %d %q", code, body)
	}
	if code, body := doJSON(t, "GET", ts.URL+"/readyz", nil, nil); code != 200 || !strings.Contains(string(body), "ready") {
		t.Fatalf("readyz = %d %q", code, body)
	}

	// Register.
	reg, _ := json.Marshal(registerRequest{
		Name:     "ids",
		Patterns: []string{"attack", "GET /admin", `[0-9][0-9]:[0-9][0-9]`},
	})
	var auto automatonJSON
	if code, body := doJSON(t, "POST", ts.URL+"/v1/automata", reg, &auto); code != 201 {
		t.Fatalf("register = %d %q", code, body)
	}
	if auto.Name != "ids" || auto.States == 0 {
		t.Fatalf("registered automaton = %+v", auto)
	}

	// Re-registering an existing name is a hot reload: 200, version 2.
	var reloaded automatonJSON
	if code, body := doJSON(t, "POST", ts.URL+"/v1/automata", reg, &reloaded); code != 200 {
		t.Fatalf("reload register = %d %q, want 200", code, body)
	}
	if auto.Version != 1 || reloaded.Version != 2 {
		t.Fatalf("versions = %d then %d, want 1 then 2", auto.Version, reloaded.Version)
	}

	// List.
	var list struct {
		Automata []automatonJSON `json:"automata"`
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/automata", nil, &list); code != 200 || len(list.Automata) != 1 {
		t.Fatalf("list = %d %+v", code, list)
	}

	payload := testInput(1<<15, 42, "attack", "GET /admin", "13:37")

	// Sequential match.
	var seq matchResponse
	if code, body := doJSON(t, "POST", ts.URL+"/v1/automata/ids/match", payload, &seq); code != 200 {
		t.Fatalf("sequential match = %d %q", code, body)
	}
	if seq.Mode != "sequential" || len(seq.Matches) == 0 {
		t.Fatalf("sequential response = %+v", seq)
	}

	// Parallel match must agree exactly and report modelled AP stats.
	var par matchResponse
	if code, body := doJSON(t, "POST", ts.URL+"/v1/automata/ids/match?mode=parallel&ranks=2&segments=8", payload, &par); code != 200 {
		t.Fatalf("parallel match = %d %q", code, body)
	}
	if par.AP == nil || !par.AP.Verified || par.AP.Segments < 2 || par.AP.Speedup <= 0 {
		t.Fatalf("parallel AP stats = %+v", par.AP)
	}
	if len(par.Matches) != len(seq.Matches) {
		t.Fatalf("parallel found %d matches, sequential %d", len(par.Matches), len(seq.Matches))
	}
	for i := range seq.Matches {
		if par.Matches[i] != seq.Matches[i] {
			t.Fatalf("match %d differs: %+v vs %+v", i, par.Matches[i], seq.Matches[i])
		}
	}

	// SFA-mode match: same matches again, SFA stats in the AP block.
	var sfa matchResponse
	if code, body := doJSON(t, "POST", ts.URL+"/v1/automata/ids/match?mode=sfa&ranks=2&segments=8", payload, &sfa); code != 200 {
		t.Fatalf("sfa match = %d %q", code, body)
	}
	if sfa.AP == nil || !sfa.AP.Verified || sfa.AP.ExecMode != "sfa" {
		t.Fatalf("sfa AP stats = %+v", sfa.AP)
	}
	if len(sfa.Matches) != len(seq.Matches) {
		t.Fatalf("sfa found %d matches, sequential %d", len(sfa.Matches), len(seq.Matches))
	}
	if par.AP.ExecMode != "flows" {
		t.Fatalf("parallel default exec mode = %q, want flows", par.AP.ExecMode)
	}

	// Bad parallel params.
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/automata/ids/match?mode=parallel&ranks=9", payload, nil); code != 400 {
		t.Fatalf("ranks=9 = %d, want 400", code)
	}
	// Unknown automaton.
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/automata/nope/match", payload, nil); code != 404 {
		t.Fatalf("unknown automaton = %d, want 404", code)
	}

	// Streaming session: chunked writes, global offsets, same match set.
	open, _ := json.Marshal(openStreamRequest{Automaton: "ids"})
	var sess SessionInfo
	if code, body := doJSON(t, "POST", ts.URL+"/v1/streams", open, &sess); code != 201 {
		t.Fatalf("open stream = %d %q", code, body)
	}
	var streamed []matchJSON
	rng := rand.New(rand.NewSource(7))
	for pos := 0; pos < len(payload); {
		n := 1 + rng.Intn(4096)
		if pos+n > len(payload) {
			n = len(payload) - pos
		}
		var wr streamWriteResponse
		code, body := doJSON(t, "POST", ts.URL+"/v1/streams/"+sess.ID+"/write", payload[pos:pos+n], &wr)
		if code != 200 {
			t.Fatalf("stream write = %d %q", code, body)
		}
		pos += n
		if wr.Offset != int64(pos) {
			t.Fatalf("stream offset = %d, want %d", wr.Offset, pos)
		}
		streamed = append(streamed, wr.Matches...)
	}
	if len(streamed) != len(seq.Matches) {
		t.Fatalf("streamed %d matches, sequential %d", len(streamed), len(seq.Matches))
	}
	for i := range seq.Matches {
		if streamed[i] != seq.Matches[i] {
			t.Fatalf("streamed match %d differs: %+v vs %+v", i, streamed[i], seq.Matches[i])
		}
	}

	// Session info and close.
	var info SessionInfo
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/streams/"+sess.ID, nil, &info); code != 200 || info.Offset != int64(len(payload)) {
		t.Fatalf("stream info = %d %+v", code, info)
	}
	if code, _ := doJSON(t, "DELETE", ts.URL+"/v1/streams/"+sess.ID, nil, nil); code != 204 {
		t.Fatalf("close stream = %d, want 204", code)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/streams/"+sess.ID, nil, nil); code != 404 {
		t.Fatalf("closed stream get = %d, want 404", code)
	}

	// Metrics: request counters, latency histogram, pool gauges, speedup.
	code, metrics := doJSON(t, "GET", ts.URL+"/metrics", nil, nil)
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	for _, want := range []string{
		`papd_http_requests_total{handler="match",code="200"}`,
		`papd_http_request_seconds_bucket{handler="match",le="+Inf"}`,
		"papd_worker_pool_workers",
		"papd_worker_pool_queue_depth",
		"papd_worker_pool_active",
		"papd_streams_active 0",
		"papd_automata_registered 1",
		`papd_automaton_matches_total{automaton="ids"}`,
		"papd_parallel_speedup_count 2",
		"papd_stream_bytes_total 32768",
		"papd_segment_parallelism 1",
		"papd_sfa_mappings_total",
		"papd_sfa_compositions_total",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("metrics output:\n%s", metrics)
	}

	// Delete the automaton.
	if code, _ := doJSON(t, "DELETE", ts.URL+"/v1/automata/ids", nil, nil); code != 204 {
		t.Fatalf("delete automaton = %d, want 204", code)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/automata/ids", nil, nil); code != 404 {
		t.Fatalf("deleted automaton get = %d, want 404", code)
	}
}

// TestServerConcurrentMatches hammers one automaton from many clients —
// the compile-once share-everywhere model under real HTTP concurrency.
func TestServerConcurrentMatches(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	reg, _ := json.Marshal(registerRequest{Name: "w", Patterns: []string{"needle", "ha[ys]+tack"}})
	if code, body := doJSON(t, "POST", ts.URL+"/v1/automata", reg, nil); code != 201 {
		t.Fatalf("register = %d %q", code, body)
	}
	payload := testInput(1<<13, 3, "needle", "haystack")
	var ref matchResponse
	doJSON(t, "POST", ts.URL+"/v1/automata/w/match", payload, &ref)

	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			mode := "?mode=parallel&segments=4"
			if g%2 == 0 {
				mode = ""
			}
			for i := 0; i < 3; i++ {
				var resp matchResponse
				code, body := doJSON(t, "POST", ts.URL+"/v1/automata/w/match"+mode, payload, &resp)
				if code == http.StatusTooManyRequests {
					continue // backpressure is a legal answer
				}
				if code != 200 {
					t.Errorf("match = %d %q", code, body)
					return
				}
				if len(resp.Matches) != len(ref.Matches) {
					t.Errorf("got %d matches, want %d", len(resp.Matches), len(ref.Matches))
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestServerBackpressure forces the tiny pool to reject with 429.
func TestServerBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, MatchTimeout: 5 * time.Second})
	reg, _ := json.Marshal(registerRequest{Name: "b", Patterns: []string{"x"}})
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/automata", reg, nil); code != 201 {
		t.Fatal("register failed")
	}

	// Occupy the single worker.
	block := make(chan struct{})
	running := make(chan struct{})
	go s.pool.Do(context.Background(), func() { close(running); <-block }) //nolint:errcheck
	<-running
	// Fill the single queue slot.
	go s.pool.Do(context.Background(), func() {}) //nolint:errcheck
	deadline := time.After(2 * time.Second)
	for s.pool.QueueDepth() == 0 {
		select {
		case <-deadline:
			t.Fatal("queue never filled")
		default:
			time.Sleep(time.Millisecond)
		}
	}

	code, body := doJSON(t, "POST", ts.URL+"/v1/automata/b/match", []byte("xxx"), nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("match under full queue = %d %q, want 429", code, body)
	}
	close(block)

	_, metrics := doJSON(t, "GET", ts.URL+"/metrics", nil, nil)
	if !strings.Contains(string(metrics), "papd_worker_pool_rejected_total 1") {
		t.Errorf("rejected counter missing:\n%s", metrics)
	}
}

// TestServerGracefulShutdown verifies readiness flips and the pool drains.
func TestServerGracefulShutdown(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after shutdown = %d, want 503", resp.StatusCode)
	}
	if err := s.pool.Do(context.Background(), func() {}); err != ErrPoolClosed {
		t.Fatalf("pool after shutdown: %v, want ErrPoolClosed", err)
	}
}

// TestServerPayloadTooLarge checks the body limit translates to 413.
func TestServerPayloadTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 64})
	reg, _ := json.Marshal(registerRequest{Name: "s", Patterns: []string{"x"}})
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/automata", reg, nil); code != 201 {
		t.Fatal("register failed")
	}
	code, _ := doJSON(t, "POST", ts.URL+"/v1/automata/s/match", bytes.Repeat([]byte("y"), 128), nil)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized match = %d, want 413", code)
	}
}

// TestRegisterValidation exercises the error paths of registration.
func TestRegisterValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		req  registerRequest
		want int
	}{
		{registerRequest{Name: "bad name!", Patterns: []string{"x"}}, 400},
		{registerRequest{Name: "ok", Patterns: nil}, 400},
		{registerRequest{Name: "ok", Kind: "quantum", Patterns: []string{"x"}}, 400},
		{registerRequest{Name: "ok", Patterns: []string{"("}}, 400},
		{registerRequest{Name: "ham", Kind: "hamming", Patterns: []string{"abcdef"}, Distance: 1}, 201},
		{registerRequest{Name: "lev", Kind: "levenshtein", Patterns: []string{"abcdef"}, Distance: 1}, 201},
	}
	for _, c := range cases {
		body, _ := json.Marshal(c.req)
		code, resp := doJSON(t, "POST", ts.URL+"/v1/automata", body, nil)
		if code != c.want {
			t.Errorf("register %+v = %d %q, want %d", c.req, code, resp, c.want)
		}
	}
	// The fuzzy automata actually serve.
	var m matchResponse
	if code, body := doJSON(t, "POST", ts.URL+"/v1/automata/ham/match", []byte("zzabcXefzz"), &m); code != 200 || len(m.Matches) == 0 {
		t.Fatalf("hamming match = %d %q %+v", code, body, m)
	}
}

// TestServerEngineSelection covers the engine plumbing: ruleset defaults
// set at registration, per-request overrides on match and stream open,
// rejection of unknown engine names, and the per-engine metrics.
func TestServerEngineSelection(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Register with a sparse default; bad engine names are rejected.
	reg, _ := json.Marshal(registerRequest{Name: "e", Patterns: []string{"attack"}, Engine: "sparse"})
	var auto automatonJSON
	if code, body := doJSON(t, "POST", ts.URL+"/v1/automata", reg, &auto); code != 201 || auto.Engine != "sparse" {
		t.Fatalf("register = %d %q engine=%q", code, body, auto.Engine)
	}
	bad, _ := json.Marshal(registerRequest{Name: "b", Patterns: []string{"x"}, Engine: "quantum"})
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/automata", bad, nil); code != 400 {
		t.Fatalf("bad engine register = %d, want 400", code)
	}

	// Every backend returns the same matches; the response echoes the
	// engine, defaulting to the ruleset's.
	payload := testInput(4096, 3, "attack")
	var want matchResponse
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/automata/e/match", payload, &want); code != 200 || want.Engine != "sparse" {
		t.Fatalf("default match engine = %q", want.Engine)
	}
	for _, eng := range []string{"auto", "bit"} {
		var m matchResponse
		if code, body := doJSON(t, "POST", ts.URL+"/v1/automata/e/match?engine="+eng, payload, &m); code != 200 {
			t.Fatalf("%s match = %d %q", eng, code, body)
		}
		if m.Engine != eng || len(m.Matches) != len(want.Matches) {
			t.Fatalf("%s: engine=%q matches=%d, want %d", eng, m.Engine, len(m.Matches), len(want.Matches))
		}
	}
	var par matchResponse
	if code, body := doJSON(t, "POST", ts.URL+"/v1/automata/e/match?mode=parallel&engine=bit", payload, &par); code != 200 || par.AP == nil {
		t.Fatalf("parallel bit match = %d %q", code, body)
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/automata/e/match?engine=quantum", payload, nil); code != 400 {
		t.Fatal("unknown engine accepted on match")
	}

	// Streams: ruleset default, request override, bad name rejected.
	open, _ := json.Marshal(openStreamRequest{Automaton: "e"})
	var sess SessionInfo
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/streams", open, &sess); code != 201 || sess.Engine != "sparse" {
		t.Fatalf("stream default engine = %q", sess.Engine)
	}
	open, _ = json.Marshal(openStreamRequest{Automaton: "e", Engine: "bit"})
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/streams", open, &sess); code != 201 || sess.Engine != "bit" {
		t.Fatalf("stream override engine = %q", sess.Engine)
	}
	var wr streamWriteResponse
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/streams/"+sess.ID+"/write", payload, &wr); code != 200 {
		t.Fatal("stream write failed")
	}
	open, _ = json.Marshal(openStreamRequest{Automaton: "e", Engine: "quantum"})
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/streams", open, nil); code != 400 {
		t.Fatal("unknown engine accepted on stream open")
	}

	// Metrics report per-engine step counts.
	_, metrics := doJSON(t, "GET", ts.URL+"/metrics", nil, nil)
	for _, want := range []string{
		`papd_engine_steps_total{engine="sparse"}`,
		`papd_engine_steps_total{engine="bit"}`,
		"papd_engine_switches_total",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestSerialSegmentsScheduler covers the cross-segment scheduler plumbing:
// a server configured with SerialSegments defaults parallel-mode matches to
// the serial scheduler (gauge at 0), a request can override it per call,
// and both schedulers return identical matches and modelled AP stats.
func TestSerialSegmentsScheduler(t *testing.T) {
	_, ts := newTestServer(t, Config{SerialSegments: true})

	reg, _ := json.Marshal(registerRequest{Name: "r", Patterns: []string{"attack", "needle"}})
	if code, body := doJSON(t, "POST", ts.URL+"/v1/automata", reg, nil); code != 201 {
		t.Fatalf("register = %d %q", code, body)
	}
	payload := testInput(1<<15, 7, "attack", "needle")

	var serial, parallel matchResponse
	if code, body := doJSON(t, "POST", ts.URL+"/v1/automata/r/match?mode=parallel&segments=8", payload, &serial); code != 200 {
		t.Fatalf("serial-default match = %d %q", code, body)
	}
	if code, body := doJSON(t, "POST", ts.URL+"/v1/automata/r/match?mode=parallel&segments=8&serial_segments=false", payload, &parallel); code != 200 {
		t.Fatalf("parallel-override match = %d %q", code, body)
	}
	if serial.AP == nil || parallel.AP == nil {
		t.Fatalf("missing AP stats: %+v vs %+v", serial.AP, parallel.AP)
	}
	if !serial.AP.Verified || !parallel.AP.Verified {
		t.Fatalf("unverified results: %+v vs %+v", serial.AP, parallel.AP)
	}
	if len(serial.Matches) != len(parallel.Matches) {
		t.Fatalf("match counts differ: %d vs %d", len(serial.Matches), len(parallel.Matches))
	}
	for i := range serial.Matches {
		if serial.Matches[i] != parallel.Matches[i] {
			t.Fatalf("match %d differs: %+v vs %+v", i, serial.Matches[i], parallel.Matches[i])
		}
	}
	// Modelled stats are scheduler-independent (engine_switches excepted,
	// which is worker-scheduling-dependent by design).
	if serial.AP.Segments != parallel.AP.Segments ||
		serial.AP.Speedup != parallel.AP.Speedup ||
		serial.AP.BaselineNS != parallel.AP.BaselineNS ||
		serial.AP.ParallelNS != parallel.AP.ParallelNS ||
		serial.AP.AvgActiveFlows != parallel.AP.AvgActiveFlows ||
		serial.AP.SwitchOverheadPct != parallel.AP.SwitchOverheadPct ||
		serial.AP.FalseReportRatio != parallel.AP.FalseReportRatio {
		t.Fatalf("modelled stats differ:\nserial:   %+v\nparallel: %+v", serial.AP, parallel.AP)
	}

	if code, _ := doJSON(t, "POST", ts.URL+"/v1/automata/r/match?mode=parallel&serial_segments=zzz", payload, nil); code != 400 {
		t.Fatalf("bad serial_segments = %d, want 400", code)
	}

	_, metrics := doJSON(t, "GET", ts.URL+"/metrics", nil, nil)
	if !strings.Contains(string(metrics), "papd_segment_parallelism 0") {
		t.Errorf("metrics missing papd_segment_parallelism 0:\n%s", metrics)
	}
}
