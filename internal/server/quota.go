package server

import (
	"math"
	"sync"
	"time"
)

// Quotas enforces per-tenant fairness on the worker pool with one token
// bucket per tenant label (papd takes the label from the X-API-Key
// header, falling back to "anonymous"). Every match and stream-write
// request spends one token before it may touch the pool; an empty bucket
// yields a 429 with a Retry-After telling the tenant exactly when the
// next token lands. One tenant flooding the server therefore throttles
// only itself — everyone else's buckets refill independently.
type Quotas struct {
	rps   float64 // tokens added per second
	burst float64 // bucket capacity
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time // last refill instant
}

// maxTenants bounds the bucket map: beyond it, fully-refilled (idle)
// buckets are discarded — semantically a no-op, since a fresh bucket
// also starts full.
const maxTenants = 8192

// NewQuotas returns a limiter granting each tenant rps requests per
// second with bursts up to burst (burst < 1 is raised to max(rps, 1) so
// a configured tenant can always make progress). rps <= 0 disables
// limiting entirely and returns nil.
func NewQuotas(rps, burst float64) *Quotas {
	if rps <= 0 {
		return nil
	}
	if burst < 1 {
		burst = math.Max(rps, 1)
	}
	return &Quotas{
		rps:     rps,
		burst:   burst,
		now:     time.Now,
		buckets: make(map[string]*bucket),
	}
}

// Allow spends one token from tenant's bucket. When the bucket is empty
// it reports false with the duration until the next token is available —
// the Retry-After the handler sends with the 429.
func (q *Quotas) Allow(tenant string) (bool, time.Duration) {
	if q == nil {
		return true, 0
	}
	now := q.now()
	q.mu.Lock()
	defer q.mu.Unlock()
	b, ok := q.buckets[tenant]
	if !ok {
		if len(q.buckets) >= maxTenants {
			q.evictIdleLocked()
		}
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[tenant] = b
	}
	// Lazy refill since the last spend.
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(q.burst, b.tokens+dt*q.rps)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / q.rps
	return false, time.Duration(math.Ceil(need*1000)) * time.Millisecond
}

// evictIdleLocked drops buckets that have refilled completely: a tenant
// idle long enough to be full again is indistinguishable from one we
// have never seen. Callers hold q.mu.
func (q *Quotas) evictIdleLocked() {
	now := q.now()
	for t, b := range q.buckets {
		if math.Min(q.burst, b.tokens+now.Sub(b.last).Seconds()*q.rps) >= q.burst {
			delete(q.buckets, t)
		}
	}
}

// Tenants returns the number of tracked tenant buckets.
func (q *Quotas) Tenants() int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buckets)
}

// retryAfterSeconds formats a Retry-After header value from a wait
// duration: whole seconds, rounded up, at least 1.
func retryAfterSeconds(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}
