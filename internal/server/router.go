package server

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Router shards rulesets across a static set of papd replicas with a
// consistent-hash ring: each ruleset name has one owning replica, and a
// replica receiving a request for a ruleset it does not own forwards the
// request there, so every replica's lazy-DFA caches, batches and
// streaming sessions for a ruleset concentrate on one process instead of
// being diluted N ways. Peer health is tracked passively: a peer that
// fails forwardFailThreshold consecutive forwards is ejected from
// routing for a cooldown, during which its rulesets are served locally
// (every replica can serve every ruleset — ownership is an optimization,
// not a partition), then retried.
//
// Forwarded requests carry the X-Papd-Forwarded header and are always
// served locally by the receiving replica, so a stale or disagreeing
// ring can never loop a request.
//
// Streaming sessions live on the replica that created them. The router
// forwards stream opens to the ruleset's owner and remembers which peer
// answered, so follow-up writes/gets/closes for that session id forward
// to the same peer from any replica.
type Router struct {
	self   string   // this replica's advertised address
	nodes  []string // self + peers, as configured
	ring   []ringPoint
	client *http.Client

	failThreshold int
	cooldown      time.Duration

	mu           sync.Mutex
	peers        map[string]*peerState
	sessionOwner map[string]string // forwarded session id -> owning peer

	// Metrics callbacks, optional (nil-safe): wired by the server.
	onForward  func(peer string, ok bool)
	onFallback func()
	onEject    func(peer string)
}

type ringPoint struct {
	h    uint64
	addr string
}

type peerState struct {
	fails        int
	ejectedUntil time.Time
}

// forwardHeader marks a request as already routed once; receivers serve
// it locally unconditionally.
const forwardHeader = "X-Papd-Forwarded"

// ringVnodes is the number of virtual nodes per replica; 64 keeps the
// keyspace split within a few percent of even for small clusters.
const ringVnodes = 64

// NewRouter builds a router for this replica (advertised as self) and
// its peers. Empty peers disables routing and returns nil.
// failThreshold <= 0 defaults to 3 consecutive failures; cooldown <= 0
// defaults to 10s.
func NewRouter(self string, peers []string, failThreshold int, cooldown time.Duration) *Router {
	if len(peers) == 0 {
		return nil
	}
	if failThreshold <= 0 {
		failThreshold = 3
	}
	if cooldown <= 0 {
		cooldown = 10 * time.Second
	}
	r := &Router{
		self:          self,
		nodes:         append([]string{self}, peers...),
		client:        &http.Client{Timeout: 60 * time.Second},
		failThreshold: failThreshold,
		cooldown:      cooldown,
		peers:         make(map[string]*peerState),
		sessionOwner:  make(map[string]string),
	}
	for _, n := range r.nodes {
		for v := 0; v < ringVnodes; v++ {
			r.ring = append(r.ring, ringPoint{h: hash64(fmt.Sprintf("%s#%d", n, v)), addr: n})
		}
		if n != self {
			r.peers[n] = &peerState{}
		}
	}
	sort.Slice(r.ring, func(i, j int) bool { return r.ring[i].h < r.ring[j].h })
	return r
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, s)
	return h.Sum64()
}

// Enabled reports whether routing is active (nil-safe).
func (r *Router) Enabled() bool { return r != nil }

// Nodes returns the configured ring membership (self first).
func (r *Router) Nodes() []string { return r.nodes }

// OwnerOf returns the replica owning name on the consistent-hash ring.
func (r *Router) OwnerOf(name string) string {
	h := hash64(name)
	i := sort.Search(len(r.ring), func(i int) bool { return r.ring[i].h >= h })
	if i == len(r.ring) {
		i = 0
	}
	return r.ring[i].addr
}

// routeTo decides whether a request for name should be forwarded, and to
// whom: the owner, when it is a healthy remote peer. A request already
// carrying the forwarded header, an owner that is self, or an ejected
// owner all serve locally.
func (r *Router) routeTo(req *http.Request, name string) (string, bool) {
	if r == nil || req.Header.Get(forwardHeader) != "" {
		return "", false
	}
	owner := r.OwnerOf(name)
	if owner == r.self {
		return "", false
	}
	if !r.healthy(owner) {
		if r.onFallback != nil {
			r.onFallback()
		}
		return "", false
	}
	return owner, true
}

func (r *Router) healthy(addr string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.peers[addr]
	if !ok {
		return false
	}
	return !time.Now().Before(p.ejectedUntil)
}

// report records a forward outcome for addr: consecutive failures eject
// the peer from routing for the cooldown.
func (r *Router) report(addr string, ok bool) {
	var ejected bool
	r.mu.Lock()
	if p, found := r.peers[addr]; found {
		if ok {
			p.fails = 0
		} else {
			p.fails++
			if p.fails >= r.failThreshold {
				p.ejectedUntil = time.Now().Add(r.cooldown)
				p.fails = 0
				ejected = true
			}
		}
	}
	r.mu.Unlock()
	if r.onForward != nil {
		r.onForward(addr, ok)
	}
	if ejected && r.onEject != nil {
		r.onEject(addr)
	}
}

// EjectedPeers returns the number of peers currently ejected from
// routing (the papd_router_peers_ejected gauge).
func (r *Router) EjectedPeers() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	n := 0
	for _, p := range r.peers {
		if now.Before(p.ejectedUntil) {
			n++
		}
	}
	return n
}

// forward replays the request (with the already-consumed body) to addr
// and returns the peer's response. A transport failure counts against
// the peer's health and reports ok=false so the caller serves locally
// instead; any HTTP response — including errors like 404 or 429 — is the
// owner's authoritative answer and is relayed as-is.
func (r *Router) forward(req *http.Request, addr string, body []byte) (*http.Response, bool) {
	url := "http://" + addr + req.URL.Path
	if req.URL.RawQuery != "" {
		url += "?" + req.URL.RawQuery
	}
	out, err := http.NewRequestWithContext(req.Context(), req.Method, url, bytes.NewReader(body))
	if err != nil {
		return nil, false
	}
	if ct := req.Header.Get("Content-Type"); ct != "" {
		out.Header.Set("Content-Type", ct)
	}
	if key := req.Header.Get("X-API-Key"); key != "" {
		out.Header.Set("X-API-Key", key)
	}
	out.Header.Set(forwardHeader, r.self)
	resp, err := r.client.Do(out)
	if err != nil {
		r.report(addr, false)
		return nil, false
	}
	r.report(addr, true)
	return resp, true
}

// Forward proxies the request to addr and relays the peer's response to
// w. It returns false — having written nothing — when the peer is
// unreachable, so the caller can fall back to serving locally.
func (r *Router) Forward(w http.ResponseWriter, req *http.Request, addr string, body []byte) bool {
	resp, ok := r.forward(req, addr, body)
	if !ok {
		return false
	}
	defer resp.Body.Close()
	relay(w, resp)
	return true
}

// ForwardCapture proxies like Forward but also returns the response
// status and body (stream opens parse it to learn the session id).
func (r *Router) ForwardCapture(w http.ResponseWriter, req *http.Request, addr string, body []byte) (int, []byte, bool) {
	resp, ok := r.forward(req, addr, body)
	if !ok {
		return 0, nil, false
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		r.report(addr, false)
		return 0, nil, false
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	copyRetryAfter(w, resp)
	w.WriteHeader(resp.StatusCode)
	w.Write(data)
	return resp.StatusCode, data, true
}

func relay(w http.ResponseWriter, resp *http.Response) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	copyRetryAfter(w, resp)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func copyRetryAfter(w http.ResponseWriter, resp *http.Response) {
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
}

// RememberSession records that session id lives on peer addr, so
// follow-up requests for it forward there.
func (r *Router) RememberSession(id, addr string) {
	if r == nil || id == "" {
		return
	}
	r.mu.Lock()
	r.sessionOwner[id] = addr
	r.mu.Unlock()
}

// SessionOwner returns the peer a forwarded session lives on, if known.
func (r *Router) SessionOwner(id string) (string, bool) {
	if r == nil {
		return "", false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	addr, ok := r.sessionOwner[id]
	return addr, ok
}

// ForgetSession drops the routing entry for a closed or expired session.
func (r *Router) ForgetSession(id string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	delete(r.sessionOwner, id)
	r.mu.Unlock()
}
