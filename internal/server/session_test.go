package server

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pap"
)

func testEntry(t *testing.T) *Entry {
	t.Helper()
	r := NewRegistry(0)
	e, err := r.Register("t", "regex", []string{"needle"}, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSessionWriteAcrossChunks(t *testing.T) {
	m := NewSessionManager(0, 0)
	defer m.Stop()
	s, err := m.Create(testEntry(t), pap.EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	ms, off, _, err := s.Write([]byte("xxnee"))
	if err != nil || len(ms) != 0 || off != 5 {
		t.Fatalf("first write: ms=%v off=%d err=%v", ms, off, err)
	}
	ms, off, _, err = s.Write([]byte("dlexx"))
	if err != nil || off != 10 {
		t.Fatalf("second write: off=%d err=%v", off, err)
	}
	if len(ms) != 1 || ms[0].Offset != 7 {
		t.Fatalf("split match = %+v, want one ending at 7", ms)
	}
	info := s.Info()
	if info.Writes != 2 || info.Matches != 1 || info.Offset != 10 {
		t.Fatalf("info = %+v", info)
	}
}

// TestSessionTimestampsUTC is the regression for Create storing Created in
// UTC but lastUsed in the local zone, which leaked two different zones into
// one SessionInfo JSON object.
func TestSessionTimestampsUTC(t *testing.T) {
	m := NewSessionManager(0, 0)
	defer m.Stop()
	s, err := m.Create(testEntry(t), pap.EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	info := s.Info()
	if info.Created.Location() != time.UTC {
		t.Fatalf("Created zone = %v, want UTC", info.Created.Location())
	}
	if info.LastUsed.Location() != time.UTC {
		t.Fatalf("LastUsed zone = %v, want UTC", info.LastUsed.Location())
	}
	if info.Created.Location() != info.LastUsed.Location() {
		t.Fatalf("zones differ: created=%v last_used=%v",
			info.Created.Location(), info.LastUsed.Location())
	}
	if _, _, _, err := s.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := s.Info().LastUsed.Location(); got != time.UTC {
		t.Fatalf("LastUsed zone after Write = %v, want UTC", got)
	}
}

func TestSessionLimit(t *testing.T) {
	m := NewSessionManager(2, 0)
	defer m.Stop()
	e := testEntry(t)
	if _, err := m.Create(e, pap.EngineAuto); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(e, pap.EngineAuto); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(e, pap.EngineAuto); err != ErrTooManySessions {
		t.Fatalf("expected ErrTooManySessions, got %v", err)
	}
}

func TestSessionCloseAndGet(t *testing.T) {
	m := NewSessionManager(0, 0)
	defer m.Stop()
	s, _ := m.Create(testEntry(t), pap.EngineAuto)
	if _, err := m.Get(s.ID); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(s.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(s.ID); err != ErrSessionNotFound {
		t.Fatalf("expected ErrSessionNotFound, got %v", err)
	}
	if _, _, _, err := s.Write([]byte("x")); err != ErrSessionNotFound {
		t.Fatalf("write after close: %v", err)
	}
	if err := m.Close(s.ID); err != ErrSessionNotFound {
		t.Fatalf("double close: %v", err)
	}
}

func TestSessionIdleExpiry(t *testing.T) {
	m := NewSessionManager(0, 40*time.Millisecond)
	defer m.Stop()
	c := &Counter{}
	m.SetExpiredCounter(c)
	s, _ := m.Create(testEntry(t), pap.EngineAuto)
	deadline := time.After(2 * time.Second)
	for {
		if _, err := m.Get(s.ID); err == ErrSessionNotFound {
			break
		}
		select {
		case <-deadline:
			t.Fatal("session never expired")
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	if c.Value() != 1 {
		t.Fatalf("expired counter = %d, want 1", c.Value())
	}
	if m.Len() != 0 {
		t.Fatalf("sessions remaining: %d", m.Len())
	}
}

// TestReapDoesNotBlockManager is the regression for the reaper's
// head-of-line blocking: the old reap held the manager-wide m.mu while
// acquiring each session's s.mu, and Session.WriteContext holds s.mu for
// the full duration of a write — so one slow streaming write stalled
// every Get/Create/List server-wide. The fixed reaper snapshots under
// m.mu, closes under each s.mu only, then deletes under m.mu again; a
// reap stuck behind one session's write lock must not delay an
// unrelated Get beyond a small bound.
func TestReapDoesNotBlockManager(t *testing.T) {
	m := NewSessionManager(0, 0) // no background reaper; we drive reapOnce
	defer m.Stop()
	e := testEntry(t)
	slow, err := m.Create(e, pap.EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	other, err := m.Create(e, pap.EngineAuto)
	if err != nil {
		t.Fatal(err)
	}

	// Make the slow session idle-expired, then hold its mutex — exactly
	// the lock WriteContext holds while a long write is in flight.
	slow.mu.Lock()
	slow.lastUsed = time.Now().Add(-time.Hour)
	reaping := make(chan struct{})
	reaped := make(chan struct{})
	go func() {
		close(reaping)
		m.reapOnce(time.Now().Add(-time.Minute))
		close(reaped)
	}()
	<-reaping
	time.Sleep(10 * time.Millisecond) // let the reaper reach slow's s.mu

	// An unrelated Get must answer promptly even though the reaper is
	// parked on the write-locked session.
	got := make(chan error, 1)
	go func() {
		_, err := m.Get(other.ID)
		got <- err
	}()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("Get(other) = %v", err)
		}
	case <-time.After(500 * time.Millisecond):
		t.Fatal("Get blocked behind the reaper: head-of-line blocking is back")
	}

	// Creates must be just as unaffected. (List would block here — not on
	// the manager lock, but on snapshotting the write-locked session
	// itself, which is inherent to Info and not head-of-line blocking.)
	if _, err := m.Create(e, pap.EngineAuto); err != nil {
		t.Fatalf("Create during stuck reap: %v", err)
	}

	// Release the "write"; the reap completes and expires only slow.
	slow.mu.Unlock()
	select {
	case <-reaped:
	case <-time.After(2 * time.Second):
		t.Fatal("reap never finished after the write lock was released")
	}
	if _, err := m.Get(slow.ID); err != ErrSessionNotFound {
		t.Fatalf("expired session still live: %v", err)
	}
	if _, err := m.Get(other.ID); err != nil {
		t.Fatalf("fresh session reaped: %v", err)
	}
}

// TestReapDuringLongWrite hammers sessions with concurrent writes, Gets
// and reap passes under -race: a write landing between the reaper's
// snapshot and close phases must refresh lastUsed and survive, and
// nothing may deadlock or corrupt.
func TestReapDuringLongWrite(t *testing.T) {
	m := NewSessionManager(0, 0)
	defer m.Stop()
	e := testEntry(t)
	const sessions = 8
	ss := make([]*Session, sessions)
	for i := range ss {
		s, err := m.Create(e, pap.EngineAuto)
		if err != nil {
			t.Fatal(err)
		}
		ss[i] = s
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, s := range ss {
		wg.Add(1)
		go func(s *Session) {
			defer wg.Done()
			chunk := []byte("xxneedlexx")
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, _, _, err := s.Write(chunk)
				if errors.Is(err, ErrSessionNotFound) {
					return
				}
			}
		}(s)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		cutoff := time.Now().Add(-time.Second) // before every session's birth
		for i := 0; i < 50; i++ {
			// No session can be idle since before its own creation, so
			// every pass must leave all of them alive.
			m.reapOnce(cutoff)
			for _, s := range ss {
				m.Get(s.ID) //nolint:errcheck
			}
			time.Sleep(time.Millisecond)
		}
	}()
	time.Sleep(60 * time.Millisecond)
	close(stop)
	wg.Wait()
	if n := m.Len(); n != sessions {
		t.Fatalf("active sessions reaped: %d live, want %d", n, sessions)
	}
}

// TestSessionCreateReservesSlot is the regression for Create building
// the stream before the max check: a Create doomed to
// ErrTooManySessions must fail before paying stream construction, and
// concurrent Creates racing for the last slot can never overshoot max.
func TestSessionCreateReservesSlot(t *testing.T) {
	e := testEntry(t)

	m := NewSessionManager(2, 0)
	defer m.Stop()
	for i := 0; i < 2; i++ {
		if _, err := m.Create(e, pap.EngineAuto); err != nil {
			t.Fatal(err)
		}
	}
	builds := 0
	streamBuildHook = func() { builds++ }
	defer func() { streamBuildHook = nil }()
	if _, err := m.Create(e, pap.EngineAuto); err != ErrTooManySessions {
		t.Fatalf("over-limit Create = %v, want ErrTooManySessions", err)
	}
	if builds != 0 {
		t.Fatalf("over-limit Create built %d streams, want 0", builds)
	}
	streamBuildHook = nil

	// Concurrent creates at the limit: exactly max succeed.
	m2 := NewSessionManager(4, 0)
	defer m2.Stop()
	var ok, full atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			switch _, err := m2.Create(e, pap.EngineAuto); err {
			case nil:
				ok.Add(1)
			case ErrTooManySessions:
				full.Add(1)
			default:
				t.Errorf("unexpected Create error: %v", err)
			}
		}()
	}
	wg.Wait()
	if ok.Load() != 4 || full.Load() != 12 {
		t.Fatalf("creates: %d ok %d full, want 4/12", ok.Load(), full.Load())
	}
	if m2.Len() != 4 {
		t.Fatalf("sessions live = %d, want 4", m2.Len())
	}
}

// TestSessionInfoCounterScoping pins the SessionInfo JSON contract: a
// backend counter is present — including legitimate zeros — exactly when
// the session's engine supports it, and absent otherwise, so a zero is
// never confused with "engine doesn't track this". It is also the
// regression for CacheEvictions, which WriteStats and the Prometheus
// metrics tracked but SessionInfo never exposed.
func TestSessionInfoCounterScoping(t *testing.T) {
	m := NewSessionManager(0, 0)
	defer m.Stop()
	e := testEntry(t)

	sparse, _ := m.Create(e, pap.EngineSparse)
	meta, _ := m.Create(e, pap.EngineMeta)
	lazy, _ := m.Create(e, pap.EngineLazyDFA)
	for _, s := range []*Session{sparse, meta, lazy} {
		if _, _, _, err := s.Write([]byte("quiet input, no matches")); err != nil {
			t.Fatal(err)
		}
	}

	si := sparse.Info()
	if si.PrefilterSkipped != nil || si.BaselineSkipped != nil ||
		si.CacheHits != nil || si.CacheMisses != nil || si.CacheEvictions != nil {
		t.Fatalf("sparse session leaks unsupported counters: %+v", si)
	}
	mi := meta.Info()
	if mi.PrefilterSkipped == nil || mi.BaselineSkipped == nil ||
		mi.CacheHits == nil || mi.CacheMisses == nil || mi.CacheEvictions == nil {
		t.Fatalf("meta session missing supported counters: %+v", mi)
	}
	li := lazy.Info()
	if li.PrefilterSkipped != nil {
		t.Fatalf("lazydfa session claims a prefilter: %+v", li)
	}
	if li.CacheHits == nil || li.CacheMisses == nil || li.CacheEvictions == nil {
		t.Fatalf("lazydfa session missing cache counters: %+v", li)
	}

	// A zero survives serialization on a supporting engine; on an
	// unsupported one the key is absent, not zero.
	metaJSON, _ := json.Marshal(mi)
	for _, key := range []string{"cache_evictions", "cache_hits", "prefilter_skipped"} {
		if !strings.Contains(string(metaJSON), `"`+key+`"`) {
			t.Errorf("meta session JSON missing %q: %s", key, metaJSON)
		}
	}
	sparseJSON, _ := json.Marshal(si)
	for _, key := range []string{"cache_evictions", "cache_hits", "prefilter_skipped", "baseline_skipped"} {
		if strings.Contains(string(sparseJSON), `"`+key+`"`) {
			t.Errorf("sparse session JSON leaks %q: %s", key, sparseJSON)
		}
	}
}
