package server

import (
	"testing"
	"time"

	"pap"
)

func testEntry(t *testing.T) *Entry {
	t.Helper()
	r := NewRegistry(0)
	e, err := r.Register("t", "regex", []string{"needle"}, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSessionWriteAcrossChunks(t *testing.T) {
	m := NewSessionManager(0, 0)
	defer m.Stop()
	s, err := m.Create(testEntry(t), pap.EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	ms, off, _, err := s.Write([]byte("xxnee"))
	if err != nil || len(ms) != 0 || off != 5 {
		t.Fatalf("first write: ms=%v off=%d err=%v", ms, off, err)
	}
	ms, off, _, err = s.Write([]byte("dlexx"))
	if err != nil || off != 10 {
		t.Fatalf("second write: off=%d err=%v", off, err)
	}
	if len(ms) != 1 || ms[0].Offset != 7 {
		t.Fatalf("split match = %+v, want one ending at 7", ms)
	}
	info := s.Info()
	if info.Writes != 2 || info.Matches != 1 || info.Offset != 10 {
		t.Fatalf("info = %+v", info)
	}
}

// TestSessionTimestampsUTC is the regression for Create storing Created in
// UTC but lastUsed in the local zone, which leaked two different zones into
// one SessionInfo JSON object.
func TestSessionTimestampsUTC(t *testing.T) {
	m := NewSessionManager(0, 0)
	defer m.Stop()
	s, err := m.Create(testEntry(t), pap.EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	info := s.Info()
	if info.Created.Location() != time.UTC {
		t.Fatalf("Created zone = %v, want UTC", info.Created.Location())
	}
	if info.LastUsed.Location() != time.UTC {
		t.Fatalf("LastUsed zone = %v, want UTC", info.LastUsed.Location())
	}
	if info.Created.Location() != info.LastUsed.Location() {
		t.Fatalf("zones differ: created=%v last_used=%v",
			info.Created.Location(), info.LastUsed.Location())
	}
	if _, _, _, err := s.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := s.Info().LastUsed.Location(); got != time.UTC {
		t.Fatalf("LastUsed zone after Write = %v, want UTC", got)
	}
}

func TestSessionLimit(t *testing.T) {
	m := NewSessionManager(2, 0)
	defer m.Stop()
	e := testEntry(t)
	if _, err := m.Create(e, pap.EngineAuto); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(e, pap.EngineAuto); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(e, pap.EngineAuto); err != ErrTooManySessions {
		t.Fatalf("expected ErrTooManySessions, got %v", err)
	}
}

func TestSessionCloseAndGet(t *testing.T) {
	m := NewSessionManager(0, 0)
	defer m.Stop()
	s, _ := m.Create(testEntry(t), pap.EngineAuto)
	if _, err := m.Get(s.ID); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(s.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(s.ID); err != ErrSessionNotFound {
		t.Fatalf("expected ErrSessionNotFound, got %v", err)
	}
	if _, _, _, err := s.Write([]byte("x")); err != ErrSessionNotFound {
		t.Fatalf("write after close: %v", err)
	}
	if err := m.Close(s.ID); err != ErrSessionNotFound {
		t.Fatalf("double close: %v", err)
	}
}

func TestSessionIdleExpiry(t *testing.T) {
	m := NewSessionManager(0, 40*time.Millisecond)
	defer m.Stop()
	c := &Counter{}
	m.SetExpiredCounter(c)
	s, _ := m.Create(testEntry(t), pap.EngineAuto)
	deadline := time.After(2 * time.Second)
	for {
		if _, err := m.Get(s.ID); err == ErrSessionNotFound {
			break
		}
		select {
		case <-deadline:
			t.Fatal("session never expired")
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	if c.Value() != 1 {
		t.Fatalf("expired counter = %d, want 1", c.Value())
	}
	if m.Len() != 0 {
		t.Fatalf("sessions remaining: %d", m.Len())
	}
}
