package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pap"
)

func coalesceEntry(t *testing.T, patterns ...string) *Entry {
	t.Helper()
	a, err := pap.Compile("coalesce-test", patterns)
	if err != nil {
		t.Fatal(err)
	}
	return &Entry{Name: "coalesce-test", Version: 1, Kind: "regex",
		Patterns: len(patterns), Automaton: a}
}

// TestCoalescerDisabled proves window <= 0 disables coalescing and that
// the nil receiver answers Enabled safely.
func TestCoalescerDisabled(t *testing.T) {
	p := NewPool(1, 4)
	defer p.Close()
	if c := NewCoalescer(p, 0, 8, time.Second); c != nil {
		t.Fatalf("NewCoalescer(window=0) = %v, want nil", c)
	}
	var c *Coalescer
	if c.Enabled() {
		t.Fatal("nil Coalescer.Enabled() = true")
	}
}

// TestCoalescerBatchesAndDemuxes sends a burst of concurrent small
// matches through one coalescer and checks (a) every request gets its
// own correct result and (b) the burst consumed strictly fewer pool
// tasks than requests.
func TestCoalescerBatchesAndDemuxes(t *testing.T) {
	p := NewPool(2, 64)
	defer p.Close()
	c := NewCoalescer(p, 20*time.Millisecond, 64, time.Second)
	m := NewMetrics()
	c.batchesTotal = m.Counter("b", "", "")
	c.requestsTotal = m.Counter("r", "", "")
	c.sizeHist = m.Histogram("s", "", "", []float64{1, 2, 4, 8, 16})

	e := coalesceEntry(t, "needle")
	const n = 24
	var wg sync.WaitGroup
	var hits atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := []byte("haystack")
			if i%2 == 0 {
				payload = []byte("xx needle xx")
			}
			ms, _, err := c.Match(context.Background(), e, pap.EngineAuto, payload)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			if len(ms) > 0 {
				hits.Add(1)
			}
			if i%2 == 0 && len(ms) != 1 {
				t.Errorf("request %d: %d matches, want 1", i, len(ms))
			}
			if i%2 == 1 && len(ms) != 0 {
				t.Errorf("request %d: %d matches, want 0", i, len(ms))
			}
		}(i)
	}
	wg.Wait()

	if got := hits.Load(); got != n/2 {
		t.Errorf("demuxed hits = %d, want %d", got, n/2)
	}
	batches, reqs := c.batchesTotal.Value(), c.requestsTotal.Value()
	if reqs != n {
		t.Errorf("batched requests = %d, want %d", reqs, n)
	}
	if batches < 1 || batches >= n {
		t.Errorf("batches = %d for %d requests, want coalescing (1 <= batches < %d)", batches, n, n)
	}
	if p.Started() >= n {
		t.Errorf("pool tasks started = %d for %d requests, want fewer (one per batch)", p.Started(), n)
	}
}

// TestCoalescerMaxBatchFlushesEarly proves a batch reaching maxBatch is
// flushed immediately rather than waiting out the window.
func TestCoalescerMaxBatchFlushesEarly(t *testing.T) {
	p := NewPool(1, 16)
	defer p.Close()
	// A window so long the test would time out if the size trigger failed.
	c := NewCoalescer(p, time.Hour, 4, time.Second)
	e := coalesceEntry(t, "x")

	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := c.Match(context.Background(), e, pap.EngineAuto, []byte("x")); err != nil {
				t.Errorf("Match: %v", err)
			}
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("full batch took %v, want immediate flush", elapsed)
	}
}

// TestCoalescerCancelledItemSkipped proves a request whose context died
// before its turn is answered with its ctx error and costs the batch no
// matching work, while its batch-mates complete normally.
func TestCoalescerCancelledItemSkipped(t *testing.T) {
	p := NewPool(1, 16)
	defer p.Close()
	c := NewCoalescer(p, 30*time.Millisecond, 64, time.Second)
	e := coalesceEntry(t, "x")

	cancelled, cancel := context.WithCancel(context.Background())
	cancel() // dead before the batch window even closes

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _, err := c.Match(cancelled, e, pap.EngineAuto, []byte("x"))
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled item err = %v, want context.Canceled", err)
		}
	}()
	go func() {
		defer wg.Done()
		ms, _, err := c.Match(context.Background(), e, pap.EngineAuto, []byte("x"))
		if err != nil || len(ms) != 1 {
			t.Errorf("live batch-mate = (%d matches, %v), want (1, nil)", len(ms), err)
		}
	}()
	wg.Wait()
}

// TestCoalescerPoolErrorFansOut proves that when the batch task cannot
// be queued every member of the batch receives the pool's error, exactly
// as if each had submitted alone.
func TestCoalescerPoolErrorFansOut(t *testing.T) {
	p := NewPool(1, 1)
	c := NewCoalescer(p, 10*time.Millisecond, 64, time.Second)
	e := coalesceEntry(t, "x")
	p.Close() // every submission now fails with ErrPoolClosed

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, err := c.Match(context.Background(), e, pap.EngineAuto, []byte("x"))
			if !errors.Is(err, ErrPoolClosed) {
				t.Errorf("item %d err = %v, want ErrPoolClosed", i, err)
			}
		}(i)
	}
	wg.Wait()
}

// TestCoalescerVersionsNeverShareBatches proves batches key on the entry
// pointer: requests pinned to different ruleset versions of the same
// name run in separate batches against their own automata.
func TestCoalescerVersionsNeverShareBatches(t *testing.T) {
	p := NewPool(2, 16)
	defer p.Close()
	c := NewCoalescer(p, 20*time.Millisecond, 64, time.Second)

	r := NewRegistry(4)
	v1, err := r.Register("rs", "regex", []string{"alpha"}, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := r.Register("rs", "regex", []string{"bravo"}, 0, "")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		ms, _, err := c.Match(context.Background(), v1, pap.EngineAuto, []byte("alpha bravo"))
		if err != nil || len(ms) != 1 {
			t.Errorf("v1 batch = (%d matches, %v), want 1 alpha match", len(ms), err)
		}
	}()
	go func() {
		defer wg.Done()
		ms, _, err := c.Match(context.Background(), v2, pap.EngineAuto, []byte("alpha bravo"))
		if err != nil || len(ms) != 1 {
			t.Errorf("v2 batch = (%d matches, %v), want 1 bravo match", len(ms), err)
		}
	}()
	wg.Wait()
}
