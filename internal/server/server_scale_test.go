package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// doJSONKey is doJSON with an X-API-Key header, for tenant-quota tests.
func doJSONKey(t *testing.T, method, url, key string, body []byte, out any) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decoding %s %s response %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode, resp.Header, data
}

// TestServerHotReloadPinsSessions proves the zero-downtime reload
// contract over HTTP: a streaming session opened against v1 keeps
// matching v1's patterns after the ruleset is re-registered, new match
// requests see v2, and the version gauge reports the live version.
func TestServerHotReloadPinsSessions(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	reg := func(pattern string) []byte {
		return []byte(fmt.Sprintf(`{"name": "rs", "patterns": [%q]}`, pattern))
	}
	var v1 automatonJSON
	if code, body := doJSON(t, "POST", ts.URL+"/v1/automata", reg("alpha"), &v1); code != 201 {
		t.Fatalf("register v1 = %d: %s", code, body)
	}

	var si SessionInfo
	if code, body := doJSON(t, "POST", ts.URL+"/v1/streams", []byte(`{"automaton": "rs"}`), &si); code != 201 {
		t.Fatalf("open stream = %d: %s", code, body)
	}
	if si.RulesetVersion != 1 {
		t.Fatalf("session ruleset_version = %d, want 1", si.RulesetVersion)
	}

	// Hot reload: same name, new pattern, version 2 — while the session
	// stays open.
	var v2 automatonJSON
	if code, body := doJSON(t, "POST", ts.URL+"/v1/automata", reg("bravo"), &v2); code != 200 {
		t.Fatalf("hot reload = %d: %s", code, body)
	}
	if v2.Version != 2 {
		t.Fatalf("reloaded version = %d, want 2", v2.Version)
	}

	// The pinned session still speaks v1: alpha matches, bravo does not.
	var wr streamWriteResponse
	wurl := ts.URL + "/v1/streams/" + si.ID + "/write"
	if code, body := doJSON(t, "POST", wurl, []byte("alpha bravo "), &wr); code != 200 {
		t.Fatalf("post-reload stream write = %d: %s", code, body)
	}
	if len(wr.Matches) != 1 {
		t.Fatalf("pinned session found %d matches in %q, want 1 (alpha only)", len(wr.Matches), "alpha bravo ")
	}

	// New one-shot matches run against v2: bravo matches, alpha does not.
	var mr matchResponse
	if code, body := doJSON(t, "POST", ts.URL+"/v1/automata/rs/match", []byte("alpha bravo "), &mr); code != 200 {
		t.Fatalf("post-reload match = %d: %s", code, body)
	}
	if len(mr.Matches) != 1 {
		t.Fatalf("post-reload match found %d matches, want 1 (bravo only)", len(mr.Matches))
	}

	// The session info still reports its pinned version, both directly
	// and in the session listing.
	var got SessionInfo
	if code, body := doJSON(t, "GET", ts.URL+"/v1/streams/"+si.ID, nil, &got); code != 200 {
		t.Fatalf("stream get = %d: %s", code, body)
	}
	if got.RulesetVersion != 1 {
		t.Fatalf("post-reload session ruleset_version = %d, want 1 (pinned)", got.RulesetVersion)
	}
	var list struct {
		Streams []SessionInfo `json:"streams"`
	}
	if code, body := doJSON(t, "GET", ts.URL+"/v1/streams", nil, &list); code != 200 {
		t.Fatalf("stream list = %d: %s", code, body)
	}
	if len(list.Streams) != 1 || list.Streams[0].RulesetVersion != 1 {
		t.Fatalf("stream list = %+v, want one session pinned to version 1", list.Streams)
	}

	_, metrics := doJSON(t, "GET", ts.URL+"/metrics", nil, nil)
	if !strings.Contains(string(metrics), `papd_ruleset_version{automaton="rs"} 2`) {
		t.Errorf("metrics missing papd_ruleset_version 2:\n%s", metrics)
	}
}

// TestServerTenantQuota proves per-tenant throttling over HTTP: a tenant
// over budget gets 429 with a Retry-After header while other tenants are
// untouched.
func TestServerTenantQuota(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, TenantRPS: 0.5, TenantBurst: 2})

	reg := []byte(`{"name": "rs", "patterns": ["needle"]}`)
	if code, _, body := doJSONKey(t, "POST", ts.URL+"/v1/automata", "", reg, nil); code != 201 {
		t.Fatalf("register = %d: %s", code, body)
	}

	url := ts.URL + "/v1/automata/rs/match"
	for i := 0; i < 2; i++ {
		if code, _, body := doJSONKey(t, "POST", url, "alice", []byte("xx needle"), nil); code != 200 {
			t.Fatalf("alice burst request %d = %d: %s", i, code, body)
		}
	}
	code, hdr, body := doJSONKey(t, "POST", url, "alice", []byte("xx needle"), nil)
	if code != 429 {
		t.Fatalf("alice over-quota request = %d: %s, want 429", code, body)
	}
	if ra := hdr.Get("Retry-After"); ra == "" {
		t.Error("429 response missing Retry-After header")
	}

	// Bob is a different bucket and sails through.
	if code, _, body := doJSONKey(t, "POST", url, "bob", []byte("xx needle"), nil); code != 200 {
		t.Fatalf("bob request while alice throttled = %d: %s", code, body)
	}
	// So does the anonymous tenant (no key at all).
	if code, _, body := doJSONKey(t, "POST", url, "", []byte("xx needle"), nil); code != 200 {
		t.Fatalf("anonymous request while alice throttled = %d: %s", code, body)
	}

	_, metrics := doJSON(t, "GET", ts.URL+"/metrics", nil, nil)
	if !strings.Contains(string(metrics), `papd_quota_rejected_total{tenant="alice"} 1`) {
		t.Errorf("metrics missing alice's quota rejection:\n%s", metrics)
	}
}

// TestServerCoalescingHTTP proves a burst of small concurrent matches is
// served in shared batches: every request answers correctly and the
// batch counters show fewer batches than requests.
func TestServerCoalescingHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, BatchWindow: 15 * time.Millisecond})

	reg := []byte(`{"name": "rs", "patterns": ["needle"]}`)
	if code, body := doJSON(t, "POST", ts.URL+"/v1/automata", reg, nil); code != 201 {
		t.Fatalf("register = %d: %s", code, body)
	}

	const n = 24
	var wg sync.WaitGroup
	var ok atomic.Int64
	url := ts.URL + "/v1/automata/rs/match"
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var mr matchResponse
			code, body := doJSON(t, "POST", url, []byte(fmt.Sprintf("payload %d needle", i)), &mr)
			if code != 200 {
				t.Errorf("request %d = %d: %s", i, code, body)
				return
			}
			if len(mr.Matches) != 1 {
				t.Errorf("request %d: %d matches, want 1", i, len(mr.Matches))
				return
			}
			ok.Add(1)
		}(i)
	}
	wg.Wait()
	if got := ok.Load(); got != n {
		t.Fatalf("%d of %d coalesced requests succeeded", got, n)
	}

	_, metrics := doJSON(t, "GET", ts.URL+"/metrics", nil, nil)
	var batches, reqs int64
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.HasPrefix(line, "papd_batches_total ") {
			fmt.Sscanf(line, "papd_batches_total %d", &batches)
		}
		if strings.HasPrefix(line, "papd_batched_requests_total ") {
			fmt.Sscanf(line, "papd_batched_requests_total %d", &reqs)
		}
	}
	if reqs != n {
		t.Errorf("papd_batched_requests_total = %d, want %d", reqs, n)
	}
	if batches < 1 || batches >= n {
		t.Errorf("papd_batches_total = %d for %d requests, want coalescing", batches, n)
	}
}

// TestServerLargePayloadSkipsCoalescing proves payloads over
// BatchMaxBytes dispatch alone even with coalescing on.
func TestServerLargePayloadSkipsCoalescing(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 2, BatchWindow: 10 * time.Millisecond, BatchMaxBytes: 64,
	})
	reg := []byte(`{"name": "rs", "patterns": ["needle"]}`)
	if code, body := doJSON(t, "POST", ts.URL+"/v1/automata", reg, nil); code != 201 {
		t.Fatalf("register = %d: %s", code, body)
	}
	payload := append(bytes.Repeat([]byte("x"), 200), []byte("needle")...)
	var mr matchResponse
	if code, body := doJSON(t, "POST", ts.URL+"/v1/automata/rs/match", payload, &mr); code != 200 {
		t.Fatalf("large match = %d: %s", code, body)
	}
	if len(mr.Matches) != 1 {
		t.Fatalf("large match found %d matches, want 1", len(mr.Matches))
	}
	_, metrics := doJSON(t, "GET", ts.URL+"/metrics", nil, nil)
	if strings.Contains(string(metrics), "papd_batched_requests_total 1") {
		t.Error("payload over BatchMaxBytes went through the coalescer")
	}
}
