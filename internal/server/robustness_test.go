package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"pap"
)

// TestSessionExpiryRacesInFlightWrite hammers a session with concurrent
// context-aware writes while the idle reaper expires it (run under -race):
// every write must either land fully before the expiry or fail with
// ErrSessionNotFound — never corrupt state or panic — and once one write
// has seen the session closed, all later ones must too.
func TestSessionExpiryRacesInFlightWrite(t *testing.T) {
	for round := 0; round < 20; round++ {
		m := NewSessionManager(0, 10*time.Millisecond)
		s, err := m.Create(testEntry(t), pap.EngineAuto)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				chunk := []byte("xxneedlexx")
				closed := false
				for i := 0; i < 50; i++ {
					_, _, _, err := s.WriteContext(context.Background(), chunk)
					switch {
					case errors.Is(err, ErrSessionNotFound):
						closed = true
					case err != nil:
						t.Errorf("unexpected write error: %v", err)
						return
					case closed:
						t.Error("write succeeded after the session was seen closed")
						return
					}
				}
			}()
		}
		wg.Wait()
		m.Stop()
		if t.Failed() {
			return
		}
	}
}

// slowPayload is random text over the patterns' alphabet, big enough that
// matching it takes well over a millisecond on any machine.
func slowPayload(n int) []byte {
	rng := rand.New(rand.NewSource(99))
	out := make([]byte, n)
	for i := range out {
		out[i] = "abcd  \n"[rng.Intn(7)]
	}
	return out
}

func registerSlow(t *testing.T, ts string) {
	t.Helper()
	body, _ := json.Marshal(registerRequest{Name: "slow", Patterns: []string{"ab", "cd"}})
	code, _ := doJSON(t, http.MethodPost, ts+"/v1/automata", body, nil)
	if code != http.StatusCreated {
		t.Fatalf("register: %d", code)
	}
}

// metricValue extracts a counter sample from the /metrics exposition.
func metricValue(t *testing.T, ts, sample string) float64 {
	t.Helper()
	resp, err := http.Get(ts + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(sample) + ` ([0-9.e+-]+)$`)
	mm := re.FindSubmatch(raw)
	if mm == nil {
		t.Fatalf("sample %q not found in /metrics:\n%s", sample, raw)
	}
	v, err := strconv.ParseFloat(string(mm[1]), 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestMatchTimeoutMS is the tentpole acceptance check: a match with
// timeout_ms=10 against a payload that needs much longer comes back
// promptly as 503 with partial progress, and the deadline cancellation
// metric is incremented.
func TestMatchTimeoutMS(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerSlow(t, ts.URL)
	sample := `papd_match_cancellations_total{reason="deadline"}`
	if v := metricValue(t, ts.URL, sample); v != 0 {
		t.Fatalf("deadline cancellations = %v before any request", v)
	}

	for _, mode := range []string{"sequential", "parallel"} {
		start := time.Now()
		resp, err := http.Post(ts.URL+"/v1/automata/slow/match?mode="+mode+"&timeout_ms=10",
			"application/octet-stream", bytes.NewReader(slowPayload(64<<20/8))) // 8 MiB
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("%s: 10ms timeout took %v to come back", mode, elapsed)
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s: status %d, body %s", mode, resp.StatusCode, raw)
		}
		var ab abortResponse
		if err := json.Unmarshal(raw, &ab); err != nil {
			t.Fatalf("%s: bad abort body %s: %v", mode, raw, err)
		}
		if ab.Reason != "deadline" {
			t.Fatalf("%s: reason %q, want deadline", mode, ab.Reason)
		}
		if len(ab.Progress) == 0 {
			t.Fatalf("%s: no partial progress in %s", mode, raw)
		}
		for _, p := range ab.Progress {
			if p.Start > p.Pos || p.Pos > p.End {
				t.Fatalf("%s: progress out of range: %+v", mode, p)
			}
		}
	}
	if v := metricValue(t, ts.URL, sample); v < 2 {
		t.Fatalf("deadline cancellations = %v after two timed-out matches", v)
	}
}

// TestMatchTimeoutMSValidation rejects malformed timeout_ms with 400.
func TestMatchTimeoutMSValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerSlow(t, ts.URL)
	for _, bad := range []string{"0", "-5", "abc", "1.5"} {
		resp, err := http.Post(ts.URL+"/v1/automata/slow/match?timeout_ms="+bad,
			"application/octet-stream", strings.NewReader("abcd"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("timeout_ms=%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestMaxMatchDuration: the server-wide cap fires even when the request
// asks for a much longer timeout_ms.
func TestMaxMatchDuration(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxMatchDuration: 10 * time.Millisecond})
	registerSlow(t, ts.URL)
	resp, err := http.Post(ts.URL+"/v1/automata/slow/match?timeout_ms=60000",
		"application/octet-stream", bytes.NewReader(slowPayload(8<<20)))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, body %s", resp.StatusCode, raw)
	}
	var ab abortResponse
	if err := json.Unmarshal(raw, &ab); err != nil || ab.Reason != "deadline" {
		t.Fatalf("abort body %s (err %v)", raw, err)
	}
}

// TestStreamWriteTimeoutMS: a stream write under timeout_ms comes back 503
// with the offset it reached, and a follow-up write resumes from there.
func TestStreamWriteTimeoutMS(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerSlow(t, ts.URL)
	body, _ := json.Marshal(openStreamRequest{Automaton: "slow"})
	var info SessionInfo
	code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/streams", body, &info)
	if code != http.StatusCreated {
		t.Fatalf("open stream: %d", code)
	}

	resp, err := http.Post(ts.URL+"/v1/streams/"+info.ID+"/write?timeout_ms=10",
		"application/octet-stream", bytes.NewReader(slowPayload(8<<20)))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, body %s", resp.StatusCode, raw)
	}
	var ab abortResponse
	if err := json.Unmarshal(raw, &ab); err != nil {
		t.Fatalf("abort body %s: %v", raw, err)
	}
	if ab.Reason != "deadline" || ab.Offset <= 0 || ab.Offset >= 8<<20 {
		t.Fatalf("abort = %+v, want a deadline stop strictly inside the chunk", ab)
	}

	// The next write picks up at the committed offset.
	var wr streamWriteResponse
	code, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/streams/"+info.ID+"/write", []byte("abcd"), &wr)
	if code != http.StatusOK {
		t.Fatalf("resume write: %d", code)
	}
	if wr.Offset != ab.Offset+4 {
		t.Fatalf("resume offset %d, want %d", wr.Offset, ab.Offset+4)
	}
}
