// Package tracegen synthesizes input traces for automata benchmarks. The
// main generator reimplements the scheme of Becchi et al.'s workload tools
// (cited by the paper, §4.1): with probability pm — the probability that a
// state matches on an input character and activates subsequent states, as
// in a depth-wise traversal — the next symbol is chosen to match a
// currently active state; otherwise it is drawn from the base alphabet.
// pm = 0.75 is representative of real-world traffic.
package tracegen

import (
	"math/rand"

	"pap/internal/engine"
	"pap/internal/nfa"
)

// Config parameterises trace synthesis.
type Config struct {
	// PM is the match probability (paper default 0.75).
	PM float64
	// Alphabet supplies miss symbols (and match symbols when nothing is
	// active). Defaults to all 256 byte values when empty.
	Alphabet []byte
	// Seed makes traces reproducible.
	Seed int64
}

// Becchi generates a trace of the given size for automaton n.
func Becchi(n *nfa.NFA, size int, cfg Config) []byte {
	if cfg.PM < 0 || cfg.PM > 1 {
		panic("tracegen: PM out of [0,1]")
	}
	alpha := cfg.Alphabet
	if len(alpha) == 0 {
		alpha = make([]byte, 256)
		for i := range alpha {
			alpha[i] = byte(i)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	e := engine.New(engine.SparseKind, n, nil)
	allIn := n.AllInputStates()
	out := make([]byte, size)
	var frontier []nfa.StateID
	for i := range out {
		var sym byte
		if rng.Float64() < cfg.PM {
			// Deep traversal: extend a currently active path.
			frontier = e.AppendFrontier(frontier[:0])
			if q, ok := pickActive(rng, frontier, allIn); ok {
				cls := n.Label(q)
				sym = cls.Pick(rng.Intn(cls.Count()))
			} else {
				sym = alpha[rng.Intn(len(alpha))]
			}
		} else {
			sym = alpha[rng.Intn(len(alpha))]
		}
		out[i] = sym
		e.Step(sym, int64(i), nil)
	}
	return out
}

// pickActive selects a random enabled state, preferring the deep frontier
// over the always-enabled baseline (which would bias toward restarting
// matches rather than extending them).
func pickActive(rng *rand.Rand, frontier, allInput []nfa.StateID) (nfa.StateID, bool) {
	if len(frontier) > 0 {
		return frontier[rng.Intn(len(frontier))], true
	}
	if len(allInput) > 0 {
		return allInput[rng.Intn(len(allInput))], true
	}
	return 0, false
}

// Uniform generates a trace of symbols drawn uniformly from alphabet.
func Uniform(size int, alphabet []byte, seed int64) []byte {
	if len(alphabet) == 0 {
		panic("tracegen: empty alphabet")
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, size)
	for i := range out {
		out[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return out
}

// WithDelimiters copies trace, overwriting symbols with delim at
// approximately every 1/freq positions (jittered), so that range-guided
// partitioning always finds cut points. It never writes two consecutive
// delimiters.
func WithDelimiters(trace []byte, delim byte, freq float64, seed int64) []byte {
	if freq <= 0 {
		out := make([]byte, len(trace))
		copy(out, trace)
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, len(trace))
	copy(out, trace)
	step := int(1 / freq)
	if step < 2 {
		step = 2
	}
	for i := step / 2; i < len(out); i += step/2 + rng.Intn(step) {
		if i > 0 && out[i-1] == delim {
			continue
		}
		out[i] = delim
	}
	return out
}
