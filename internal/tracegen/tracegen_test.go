package tracegen

import (
	"testing"

	"pap/internal/engine"
	"pap/internal/nfa"
	"pap/internal/regex"
)

func buildTestNFA(t *testing.T) *nfa.NFA {
	t.Helper()
	n, err := regex.CompilePatterns("t", []string{"abcd", "bcda", "cdab"})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestBecchiDeterministic(t *testing.T) {
	n := buildTestNFA(t)
	cfg := Config{PM: 0.75, Alphabet: []byte("abcdxyz"), Seed: 3}
	a := Becchi(n, 4096, cfg)
	b := Becchi(n, 4096, cfg)
	if string(a) != string(b) {
		t.Fatal("same seed produced different traces")
	}
	cfg.Seed = 4
	c := Becchi(n, 4096, cfg)
	if string(a) == string(c) {
		t.Fatal("different seeds produced identical traces")
	}
	if len(a) != 4096 {
		t.Fatalf("length %d", len(a))
	}
}

func TestBecchiAlphabetRespected(t *testing.T) {
	n := buildTestNFA(t)
	// PM = 0: only alphabet symbols appear.
	tr := Becchi(n, 2048, Config{PM: 0, Alphabet: []byte("xy"), Seed: 1})
	for i, s := range tr {
		if s != 'x' && s != 'y' {
			t.Fatalf("symbol %q at %d outside alphabet", s, i)
		}
	}
}

func TestBecchiDrivesActivity(t *testing.T) {
	n := buildTestNFA(t)
	deep := Becchi(n, 8192, Config{PM: 0.75, Alphabet: []byte("abcdwxyz"), Seed: 5})
	shallow := Becchi(n, 8192, Config{PM: 0.05, Alphabet: []byte("abcdwxyz"), Seed: 5})
	rd := engine.Run(n, deep)
	rs := engine.Run(n, shallow)
	if rd.Transitions <= rs.Transitions {
		t.Fatalf("pm=0.75 drove %d transitions, pm=0.05 drove %d; expected deeper activity",
			rd.Transitions, rs.Transitions)
	}
}

func TestBecchiDefaultAlphabet(t *testing.T) {
	n := buildTestNFA(t)
	tr := Becchi(n, 1024, Config{PM: 0.5, Seed: 9})
	if len(tr) != 1024 {
		t.Fatalf("length %d", len(tr))
	}
}

func TestBecchiPMValidation(t *testing.T) {
	n := buildTestNFA(t)
	defer func() {
		if recover() == nil {
			t.Fatal("PM out of range did not panic")
		}
	}()
	Becchi(n, 10, Config{PM: 1.5})
}

func TestUniform(t *testing.T) {
	tr := Uniform(4096, []byte("AC"), 2)
	counts := map[byte]int{}
	for _, s := range tr {
		counts[s]++
	}
	if counts['A'] == 0 || counts['C'] == 0 || counts['A']+counts['C'] != 4096 {
		t.Fatalf("counts = %v", counts)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty alphabet did not panic")
		}
	}()
	Uniform(10, nil, 1)
}

func TestWithDelimiters(t *testing.T) {
	base := Uniform(8192, []byte("ab"), 3)
	out := WithDelimiters(base, '\n', 1.0/64, 4)
	if len(out) != len(base) {
		t.Fatalf("length changed: %d", len(out))
	}
	count := 0
	for i, s := range out {
		if s == '\n' {
			count++
			if i > 0 && out[i-1] == '\n' {
				t.Fatalf("consecutive delimiters at %d", i)
			}
		}
	}
	if count < 8192/256 || count > 8192/16 {
		t.Fatalf("delimiter count %d out of expected band", count)
	}
	// Original trace untouched.
	for _, s := range base {
		if s == '\n' {
			t.Fatal("WithDelimiters mutated its input")
		}
	}
	// freq <= 0: plain copy.
	same := WithDelimiters(base, '\n', 0, 4)
	if string(same) != string(base) {
		t.Fatal("freq=0 changed trace")
	}
}
