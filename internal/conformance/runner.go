package conformance

import (
	"fmt"
	"runtime"
	"sync"
)

// Options configures one conformance sweep.
type Options struct {
	// Seed is the sweep's base seed; case i runs with seed CaseSeed(Seed, i),
	// so any failing case replays independently of case count and ordering.
	Seed int64
	// Cases is the number of generated cases to run.
	Cases int
	// Workers bounds the goroutines running cases (0 = GOMAXPROCS). Case
	// seeds do not depend on scheduling, so results are deterministic.
	Workers int
	// MaxFailures stops the sweep early after this many failures (0 = 10).
	MaxFailures int
	// NoShrink skips minimisation of failing cases (useful when a caller
	// only needs the seed, e.g. the CLI's -quick mode).
	NoShrink bool
	// Progress, when non-nil, receives a line every few thousand cases.
	Progress func(done, total int)
}

// Failure describes one violated invariant, minimised and replayable.
type Failure struct {
	Seed      int64  // case seed: replay with -conformance.case=<Seed>
	Invariant string // which equivalence broke, e.g. "segment-resume-k7/bit"
	Detail    string // first divergence, compactly
	Spec      *NFASpec
	Input     []byte
}

// Repro returns the one-line command that replays exactly this case.
func (f *Failure) Repro() string {
	return fmt.Sprintf("go test ./internal/conformance -run TestConformance -conformance.case=%d", f.Seed)
}

// String renders the failure as the canonical multi-line report.
func (f *Failure) String() string {
	return fmt.Sprintf("invariant %s violated: %s\n  shrunk automaton: %s\n  shrunk input (%d bytes): %q\n  repro: %s",
		f.Invariant, f.Detail, f.Spec, len(f.Input), f.Input, f.Repro())
}

// Summary is the outcome of one sweep.
type Summary struct {
	Cases    int
	Failures []Failure
}

// CaseSeed derives the seed of case i in a sweep (splitmix64 over the base
// seed, so neighbouring sweeps share no cases).
func CaseSeed(base int64, i int) int64 {
	z := uint64(base)*0x9e3779b97f4a7c15 + uint64(i) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// RunOne generates and checks the single case for a seed, shrinking on
// failure. It returns nil when every invariant holds.
func RunOne(seed int64, shrink bool) (*Failure, error) {
	c, err := NewCase(seed)
	if err != nil {
		return nil, fmt.Errorf("conformance: case %d failed to generate: %v", seed, err)
	}
	inv, detail := CheckCase(c)
	if inv == "" {
		return nil, nil
	}
	f := &Failure{Seed: seed, Invariant: inv, Detail: detail, Spec: c.Spec, Input: c.Input}
	if shrink {
		f.Spec, f.Input, f.Invariant, f.Detail = shrinkFailure(c)
	}
	return f, nil
}

// Run executes a sweep of generated cases and returns its summary. Case
// generation errors are reported as failures of a pseudo-invariant
// "generate" (they indicate a generator bug, not a library bug).
func Run(opts Options) Summary {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	maxFail := opts.MaxFailures
	if maxFail <= 0 {
		maxFail = 10
	}

	var (
		mu       sync.Mutex
		failures []Failure
		done     int
		wg       sync.WaitGroup
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				f, err := RunOne(CaseSeed(opts.Seed, i), !opts.NoShrink)
				mu.Lock()
				if err != nil {
					failures = append(failures, Failure{
						Seed:      CaseSeed(opts.Seed, i),
						Invariant: "generate",
						Detail:    err.Error(),
						Spec:      &NFASpec{},
					})
				} else if f != nil {
					failures = append(failures, *f)
				}
				done++
				if opts.Progress != nil && done%5000 == 0 {
					opts.Progress(done, opts.Cases)
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < opts.Cases; i++ {
		mu.Lock()
		stop := len(failures) >= maxFail
		mu.Unlock()
		if stop {
			break
		}
		next <- i
	}
	close(next)
	wg.Wait()
	return Summary{Cases: done, Failures: failures}
}
