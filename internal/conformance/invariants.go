package conformance

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"

	"pap/internal/core"
	"pap/internal/engine"
	"pap/internal/faultinject"
	"pap/internal/nfa"
)

// segmentCounts are the parallel segment counts every case is checked
// under (the segment-count-invariance property: results must not depend on
// how the input is cut).
var segmentCounts = []int{2, 3, 7, 16}

// engineKinds are the execution backends every case is checked on.
var engineKinds = []engine.Kind{
	engine.SparseKind, engine.BitKind, engine.Auto,
	engine.LazyDFAKind, engine.MetaKind,
}

// Case is one generated conformance check: a random automaton and an
// adversarial input, fully determined by Seed.
type Case struct {
	Seed  int64
	Spec  *NFASpec
	NFA   *nfa.NFA
	Input []byte
}

// NewCase deterministically generates the case for a seed.
func NewCase(seed int64) (*Case, error) {
	rng := rand.New(rand.NewSource(seed))
	spec := RandomSpec(rng)
	n, err := spec.Build()
	if err != nil {
		return nil, err
	}
	return &Case{Seed: seed, Spec: spec, NFA: n, Input: RandomInput(rng, spec)}, nil
}

// CheckCase runs every invariant on the case and returns the first
// violation, or "" if all hold. The checks themselves are deterministic
// functions of the case seed (chunk splits and config toggles are drawn
// from a sub-generator seeded by it).
func CheckCase(c *Case) (invariant, detail string) {
	oracle := OracleRun(c.NFA, c.Input)
	sub := rand.New(rand.NewSource(c.Seed ^ 0x5eedc0de))
	if inv, d := checkEngineRuns(c, oracle); inv != "" {
		return inv, d
	}
	if inv, d := checkPrefilteredMeta(c, oracle, sub); inv != "" {
		return inv, d
	}
	if inv, d := checkBaselineSkip(c, oracle, sub); inv != "" {
		return inv, d
	}
	if inv, d := checkSegmented(c, oracle); inv != "" {
		return inv, d
	}
	if inv, d := checkChunkedStream(c, oracle, sub); inv != "" {
		return inv, d
	}
	if inv, d := checkParallel(c, oracle, sub); inv != "" {
		return inv, d
	}
	if inv, d := checkSchedulerParity(c, oracle, sub); inv != "" {
		return inv, d
	}
	if inv, d := checkSFAMode(c, oracle, sub); inv != "" {
		return inv, d
	}
	if inv, d := checkCancellation(c, oracle, sub); inv != "" {
		return inv, d
	}
	if inv, d := checkScored(c, sub); inv != "" {
		return inv, d
	}
	return "", ""
}

// checkEngineRuns asserts oracle ≡ sequential Run on every backend, plus
// cross-engine agreement on the final frontier, fingerprint and transition
// count (stepwise agreement is the engine package's own property test; the
// end-state check here catches divergence on generated shapes cheaply).
func checkEngineRuns(c *Case, oracle []engine.Report) (string, string) {
	tab := engine.NewTables(c.NFA)
	for _, kind := range engineKinds {
		res := engine.RunEngine(c.NFA, c.Input, kind, tab)
		if d := diffReports(oracle, res.Reports); d != "" {
			return "oracle-vs-run/" + kind.String(), d
		}
	}
	o := NewOracle(c.NFA)
	engines := make([]engine.Engine, len(engineKinds))
	for i, kind := range engineKinds {
		engines[i] = engine.New(kind, c.NFA, tab)
	}
	for i, sym := range c.Input {
		o.Step(sym, nil)
		for _, e := range engines {
			e.Step(sym, int64(i), nil)
		}
	}
	want := o.Enabled()
	for i, e := range engines {
		got := sortedIDs(e.AppendFrontier(nil))
		if !equalIDs(want, got) {
			return "oracle-vs-frontier/" + engineKinds[i].String(),
				fmt.Sprintf("final frontier %v, oracle %v", got, want)
		}
		if e.Fingerprint() != engines[0].Fingerprint() {
			return "engine-fingerprint/" + engineKinds[i].String(),
				fmt.Sprintf("fingerprint %#x, %s %#x",
					e.Fingerprint(), engineKinds[0], engines[0].Fingerprint())
		}
		if e.Transitions() != engines[0].Transitions() {
			return "engine-transitions/" + engineKinds[i].String(),
				fmt.Sprintf("transitions %d, %s %d",
					e.Transitions(), engineKinds[0], engines[0].Transitions())
		}
	}
	return "", ""
}

// checkPrefilteredMeta asserts the meta stack's prefilter never changes
// observable behaviour. Three sub-checks:
//
//  1. Class-skip path (match-any run loop, no literal scanning): every
//     observable — reports, transition count, frontier statistics — is
//     bit-identical to the sparse reference, because a byte outside the
//     start class stepped on a dead frontier provably fires nothing.
//  2. Literal-skip path (RunOpts.LiteralPrefilter, the pap Match* mode):
//     the report set equals the oracle's. Only report-exactness is
//     claimed here — literal skipping may jump bytes that would have
//     fired non-reporting baseline work.
//  3. Chunked-stream skip, exactly as Stream.Write performs it: a Meta
//     engine fed in random chunks with dead-frontier class skips must
//     reproduce the oracle's reports, including literals that straddle
//     chunk boundaries.
func checkPrefilteredMeta(c *Case, oracle []engine.Report, rng *rand.Rand) (string, string) {
	tab := engine.NewTables(c.NFA)
	sp := engine.RunEngine(c.NFA, c.Input, engine.SparseKind, tab)

	cls := engine.RunEngine(c.NFA, c.Input, engine.MetaKind, tab)
	if d := diffReports(oracle, cls.Reports); d != "" {
		return "prefilter-class/reports", d
	}
	if cls.Transitions != sp.Transitions {
		return "prefilter-class/transitions",
			fmt.Sprintf("meta %d, sparse %d", cls.Transitions, sp.Transitions)
	}
	if cls.MaxFrontier != sp.MaxFrontier || cls.SumFrontier != sp.SumFrontier {
		return "prefilter-class/frontier",
			fmt.Sprintf("meta max %d sum %d, sparse max %d sum %d",
				cls.MaxFrontier, cls.SumFrontier, sp.MaxFrontier, sp.SumFrontier)
	}

	lit := engine.RunEngineOpts(c.NFA, c.Input, engine.MetaKind, tab,
		engine.RunOpts{LiteralPrefilter: true})
	if d := diffReports(oracle, lit.Reports); d != "" {
		return "prefilter-literal/reports", d
	}

	e := engine.New(engine.MetaKind, c.NFA, tab)
	pf := engine.PrefilterOf(e)
	var all, chunk []engine.Report
	emit := func(r engine.Report) { chunk = append(chunk, r) }
	pos := 0
	for pos < len(c.Input) {
		n := 1 + rng.Intn(32)
		if pos+n > len(c.Input) {
			n = len(c.Input) - pos
		}
		chunk = chunk[:0]
		piece := c.Input[pos : pos+n]
		for i := 0; i < len(piece); i++ {
			if pf != nil && e.Dead() {
				if j := pf.Next(piece, i); j > i {
					i = j
					if i >= len(piece) {
						break
					}
				}
			}
			e.Step(piece[i], int64(pos+i), emit)
		}
		pos += n
		all = append(all, engine.DedupeReports(chunk)...)
	}
	if d := diffReports(oracle, all); d != "" {
		return "prefilter-stream-chunks/meta", d
	}
	return "", ""
}

// checkBaselineSkip asserts the baseline-skip fast path is invisible:
// oracle ≡ skip-enabled run ≡ skip-disabled run (the new ablation), on
// every backend, with every observable — reports, transition count,
// frontier statistics — bit-identical between the two runs, and with the
// full PAP parallelization equally unchanged by the ablation (every
// modelled metric except the skip counter itself).
func checkBaselineSkip(c *Case, oracle []engine.Report, rng *rand.Rand) (string, string) {
	tab := engine.NewTables(c.NFA)
	for _, kind := range engineKinds {
		name := "baseline-skip/" + kind.String()
		on := engine.RunEngine(c.NFA, c.Input, kind, tab)
		off := engine.RunEngineOpts(c.NFA, c.Input, kind, tab,
			engine.RunOpts{DisableBaselineSkip: true})
		if d := diffReports(oracle, on.Reports); d != "" {
			return name, "skip-enabled vs oracle: " + d
		}
		if d := diffReports(oracle, off.Reports); d != "" {
			return name, "skip-disabled vs oracle: " + d
		}
		if on.Transitions != off.Transitions {
			return name, fmt.Sprintf("transitions: enabled %d, disabled %d",
				on.Transitions, off.Transitions)
		}
		if on.MaxFrontier != off.MaxFrontier || on.SumFrontier != off.SumFrontier {
			return name, fmt.Sprintf("frontier stats: enabled max %d sum %d, disabled max %d sum %d",
				on.MaxFrontier, on.SumFrontier, off.MaxFrontier, off.SumFrontier)
		}
		if off.BaselineSkippedBytes != 0 {
			return name, fmt.Sprintf("disabled run still skipped %d bytes", off.BaselineSkippedBytes)
		}
	}

	if len(c.Input) < 8 {
		return "", "" // too short to partition meaningfully
	}
	base := parallelConfig(rng, false)
	base.DisableBaselineSkip = false
	abl := base
	abl.DisableBaselineSkip = true
	ron, err := core.Run(c.NFA, c.Input, base)
	if err != nil {
		return "baseline-skip/parallel", fmt.Sprintf("core.Run: %v (cfg %+v)", err, base)
	}
	roff, err := core.Run(c.NFA, c.Input, abl)
	if err != nil {
		return "baseline-skip/parallel", fmt.Sprintf("ablated core.Run: %v (cfg %+v)", err, abl)
	}
	if d := diffReports(oracle, roff.Reports); d != "" {
		return "baseline-skip/parallel", "ablated vs oracle: " + d
	}
	if roff.BaselineSkipped != 0 {
		return "baseline-skip/parallel",
			fmt.Sprintf("ablated run still skipped %d bytes", roff.BaselineSkipped)
	}
	if d := diffResultMetrics(zeroBaselineSkip(ron), zeroBaselineSkip(roff)); d != "" {
		return "baseline-skip/parallel", "ablation changed a metric: " + d + fmt.Sprintf(" (cfg %+v)", base)
	}
	return "", ""
}

// zeroBaselineSkip returns a copy of res with the baseline-skip counters
// cleared, so diffResultMetrics can compare a skip-enabled and a
// skip-ablated run on everything else.
func zeroBaselineSkip(res *core.Result) *core.Result {
	out := *res
	out.BaselineSkipped = 0
	out.Golden.BaselineSkippedBytes = 0
	out.Segments = append([]core.SegmentStats(nil), res.Segments...)
	for i := range out.Segments {
		out.Segments[i].BaselineSkipped = 0
	}
	return &out
}

// cutsFor returns the equal-division cut positions for k segments, clipped
// to valid strictly-increasing positions inside (0, len).
func cutsFor(inputLen, k int) []int {
	var cuts []int
	for j := 1; j < k; j++ {
		p := j * inputLen / k
		if p <= 0 || p >= inputLen {
			continue
		}
		if len(cuts) > 0 && cuts[len(cuts)-1] >= p {
			continue
		}
		cuts = append(cuts, p)
	}
	return cuts
}

// checkSegmented asserts, for every segment count k: the boundary-recording
// run reproduces the oracle's reports; each recorded boundary frontier
// equals the oracle's enabled set at that cut; and k independent engines,
// each re-seeded from the previous boundary's frontier, together reproduce
// exactly the oracle's reports (segment-count invariance). Backends rotate
// with k so every kind serves both roles.
func checkSegmented(c *Case, oracle []engine.Report) (string, string) {
	tab := engine.NewTables(c.NFA)
	for ki, k := range segmentCounts {
		kind := engineKinds[ki%len(engineKinds)]
		cuts := cutsFor(len(c.Input), k)
		res, bounds := engine.RunWithBoundariesEngine(c.NFA, c.Input, cuts, kind, tab)
		name := fmt.Sprintf("boundaries-k%d/%s", k, kind)
		if d := diffReports(oracle, res.Reports); d != "" {
			return name, d
		}
		if len(bounds) != len(cuts) {
			return name, fmt.Sprintf("%d boundaries for %d cuts", len(bounds), len(cuts))
		}
		_, fronts := OracleRunCuts(c.NFA, c.Input, cuts)
		for i, b := range bounds {
			if !equalIDs(fronts[i], b.Enabled) {
				return name, fmt.Sprintf("boundary %d (pos %d): enabled %v, oracle %v",
					i, b.Pos, b.Enabled, fronts[i])
			}
		}
		// Segment resume: segment 0 runs from the start configuration; each
		// later segment runs on a fresh engine seeded with the previous
		// boundary's enabled set. The union must be exactly the oracle set.
		var union []engine.Report
		emit := func(r engine.Report) { union = append(union, r) }
		for i := 0; i <= len(cuts); i++ {
			start, end := 0, len(c.Input)
			if i > 0 {
				start = cuts[i-1]
			}
			if i < len(cuts) {
				end = cuts[i]
			}
			e := engine.New(kind, c.NFA, tab)
			if i > 0 {
				e.Reset(bounds[i-1].Enabled)
			}
			for p := start; p < end; p++ {
				e.Step(c.Input[p], int64(p), emit)
			}
		}
		if d := diffReports(oracle, union); d != "" {
			return fmt.Sprintf("segment-resume-k%d/%s", k, kind), d
		}
	}
	return "", ""
}

// checkChunkedStream asserts that feeding the input through an engine in
// randomly split chunks — deduplicating per chunk, exactly as Stream.Write
// does — yields the oracle's report set on every backend.
func checkChunkedStream(c *Case, oracle []engine.Report, rng *rand.Rand) (string, string) {
	tab := engine.NewTables(c.NFA)
	for _, kind := range engineKinds {
		e := engine.New(kind, c.NFA, tab)
		var all, chunk []engine.Report
		emit := func(r engine.Report) { chunk = append(chunk, r) }
		pos := 0
		for pos < len(c.Input) {
			n := 1 + rng.Intn(32)
			if pos+n > len(c.Input) {
				n = len(c.Input) - pos
			}
			chunk = chunk[:0]
			for _, sym := range c.Input[pos : pos+n] {
				e.Step(sym, int64(pos), emit)
				pos++
			}
			all = append(all, engine.DedupeReports(chunk)...)
		}
		if d := diffReports(oracle, all); d != "" {
			return "stream-chunks/" + kind.String(), d
		}
	}
	return "", ""
}

// checkParallel asserts oracle ≡ the full PAP parallelization, under a
// default configuration and under a toggled one (CC-merge, parent-merge,
// convergence, deactivation, FIV and speculation flipped pseudo-randomly),
// across rotating backends, segment caps and TDM quanta.
func checkParallel(c *Case, oracle []engine.Report, rng *rand.Rand) (string, string) {
	if len(c.Input) < 8 {
		return "", "" // too short to partition meaningfully
	}
	configs := []struct {
		name string
		cfg  core.Config
	}{
		{"default", parallelConfig(rng, false)},
		{"toggled", parallelConfig(rng, true)},
	}
	for _, tc := range configs {
		res, err := core.Run(c.NFA, c.Input, tc.cfg)
		if err != nil {
			return "parallel-" + tc.name, fmt.Sprintf("core.Run: %v (cfg %+v)", err, tc.cfg)
		}
		if err := res.CheckCorrect(); err != nil {
			return "parallel-" + tc.name, fmt.Sprintf("%v (cfg %+v)", err, tc.cfg)
		}
		if d := diffReports(oracle, res.Reports); d != "" {
			return "parallel-" + tc.name, d + fmt.Sprintf(" (cfg %+v)", tc.cfg)
		}
	}
	return "", ""
}

// checkSchedulerParity asserts the cross-segment parallel scheduler is
// observationally identical to the serial one: same reports as the oracle,
// and every modelled metric — whole-run and per-segment — bit-identical.
// (Only EngineSwitches is exempt: which pool worker, and thus which
// adaptive engine instance with its hysteresis state, picks up each flow
// round is wall-clock-scheduling-dependent by design.)
func checkSchedulerParity(c *Case, oracle []engine.Report, rng *rand.Rand) (string, string) {
	if len(c.Input) < 8 {
		return "", "" // too short to partition meaningfully
	}
	for _, toggled := range []bool{false, true} {
		cfg := parallelConfig(rng, toggled)
		ser := cfg
		ser.SegmentParallel = false
		par := cfg
		par.SegmentParallel = true
		name := "scheduler-parity-default"
		if toggled {
			name = "scheduler-parity-toggled"
		}
		rs, err := core.Run(c.NFA, c.Input, ser)
		if err != nil {
			return name, fmt.Sprintf("serial core.Run: %v (cfg %+v)", err, ser)
		}
		rp, err := core.Run(c.NFA, c.Input, par)
		if err != nil {
			return name, fmt.Sprintf("parallel core.Run: %v (cfg %+v)", err, par)
		}
		if d := diffReports(oracle, rp.Reports); d != "" {
			return name, "parallel vs oracle: " + d + fmt.Sprintf(" (cfg %+v)", par)
		}
		if d := diffResultMetrics(rs, rp); d != "" {
			return name, d + fmt.Sprintf(" (cfg %+v)", cfg)
		}
	}
	return "", ""
}

// checkSFAMode asserts the SFA function-composition execution mode is a
// third must-agree path: oracle ≡ flow mode ≡ SFA mode, on every engine
// backend and under both schedulers, with the serial and parallel SFA
// runs additionally bit-identical in every modelled metric (the same
// parity contract flow mode honours).
func checkSFAMode(c *Case, oracle []engine.Report, rng *rand.Rand) (string, string) {
	if len(c.Input) < 8 {
		return "", "" // too short to partition meaningfully
	}
	base := parallelConfig(rng, false)
	base.Speculate = false // SFA mode rejects speculation by contract
	flowRef, err := core.Run(c.NFA, c.Input, base)
	if err != nil {
		return "sfa-mode", fmt.Sprintf("flow-mode reference core.Run: %v (cfg %+v)", err, base)
	}
	for _, kind := range engineKinds {
		cfg := base
		cfg.Engine = kind
		cfg.Mode = core.ModeSFA
		name := "sfa-mode/" + kind.String()

		ser := cfg
		ser.SegmentParallel = false
		par := cfg
		par.SegmentParallel = true
		rs, err := core.Run(c.NFA, c.Input, ser)
		if err != nil {
			return name, fmt.Sprintf("serial core.Run: %v (cfg %+v)", err, ser)
		}
		rp, err := core.Run(c.NFA, c.Input, par)
		if err != nil {
			return name, fmt.Sprintf("parallel core.Run: %v (cfg %+v)", err, par)
		}
		if err := rs.CheckCorrect(); err != nil {
			return name, fmt.Sprintf("%v (cfg %+v)", err, ser)
		}
		if d := diffReports(oracle, rs.Reports); d != "" {
			return name, "sfa vs oracle: " + d + fmt.Sprintf(" (cfg %+v)", ser)
		}
		if d := diffReports(flowRef.Reports, rs.Reports); d != "" {
			return name, "sfa vs flow mode: " + d + fmt.Sprintf(" (cfg %+v)", ser)
		}
		if d := diffResultMetrics(rs, rp); d != "" {
			return name, "scheduler parity: " + d + fmt.Sprintf(" (cfg %+v)", cfg)
		}
	}
	return "", ""
}

// checkCancellation asserts the cancellation contract on both schedulers:
// a run cancelled at a pseudo-random modelled round boundary returns the
// context error (wrapped in *core.Aborted with sane per-segment progress)
// and no result — it never emits reports the oracle wouldn't, because it
// emits none at all — and a clean re-run afterwards still reproduces the
// oracle exactly, proving cancellation leaves no residue in shared state.
// The cancel is driven through the fault-injection hook so it lands at a
// deterministic modelled coordinate, not a wall-clock race.
func checkCancellation(c *Case, oracle []engine.Report, rng *rand.Rand) (string, string) {
	if len(c.Input) < 8 {
		return "", "" // too short to partition meaningfully
	}
	for _, par := range []bool{false, true} {
		name := "cancellation-serial"
		if par {
			name = "cancellation-parallel"
		}
		cfg := parallelConfig(rng, false)
		cfg.SegmentParallel = par
		targetSeg, targetRound := rng.Intn(4), rng.Intn(3)

		ctx, cancel := context.WithCancel(context.Background())
		var fired atomic.Bool
		cfg.Fault = func(p faultinject.Point) error {
			if p.Stage == faultinject.RoundStep && p.Segment == targetSeg && p.Round == targetRound {
				fired.Store(true)
				cancel()
			}
			return nil
		}
		res, err := core.RunContext(ctx, c.NFA, c.Input, cfg)
		cancel()

		if fired.Load() {
			if err == nil {
				return name, fmt.Sprintf("cancel at seg %d round %d fired but the run succeeded (cfg %+v)",
					targetSeg, targetRound, cfg)
			}
			if res != nil {
				return name, fmt.Sprintf("non-nil result alongside %v", err)
			}
			if !errors.Is(err, context.Canceled) {
				return name, fmt.Sprintf("error %v does not wrap context.Canceled", err)
			}
			var ab *core.Aborted
			if !errors.As(err, &ab) {
				return name, fmt.Sprintf("error %v is not *core.Aborted", err)
			}
			for _, p := range ab.Segments {
				if p.Start > p.Pos || p.Pos > p.End {
					return name, fmt.Sprintf("progress out of range: %+v", p)
				}
			}
		} else {
			// The target coordinate was never reached (fewer segments or
			// rounds than drawn): the run must have completed normally.
			if err != nil {
				return name, fmt.Sprintf("unfired cancel but run failed: %v (cfg %+v)", err, cfg)
			}
			if d := diffReports(oracle, res.Reports); d != "" {
				return name, "uncancelled run vs oracle: " + d
			}
		}

		// Clean re-run: cancellation must leave no residue anywhere shared.
		cfg.Fault = nil
		clean, err := core.Run(c.NFA, c.Input, cfg)
		if err != nil {
			return name, fmt.Sprintf("clean re-run failed: %v (cfg %+v)", err, cfg)
		}
		if d := diffReports(oracle, clean.Reports); d != "" {
			return name, "clean re-run vs oracle: " + d
		}
	}
	return "", ""
}

// checkScored is the scored-match invariant: with score tracking on, every
// execution path must reproduce the scored oracle's report set score for
// score and agree on the best score — sequential runs on all five engine
// kinds (lazy DFA and meta fall back to the adaptive scorer), the
// baseline-skip ablation, chunked streaming exactly as Stream.Write chunks,
// boundary-recording runs whose recorded frontier scores must equal the
// oracle's at every cut, boundary-re-seeded segment resume, and the full
// PAP parallelization under both schedulers, both execution modes and
// speculation. Roughly a third of generated specs carry edge weights
// (negative, zero and tied); on the unscored rest the scored paths must
// still run and produce all-zero scores — the all-zero ≡ unscored
// degenerate case, checked here on every single case.
func checkScored(c *Case, rng *rand.Rand) (string, string) {
	oracle := OracleRunScored(c.NFA, c.Input)
	oracleBest, hasReports := engine.BestReportScore(oracle)
	tab := engine.NewTables(c.NFA)

	// Sequential scored runs on every backend.
	for _, kind := range engineKinds {
		res := engine.RunEngineOpts(c.NFA, c.Input, kind, tab, engine.RunOpts{Scored: true})
		if d := diffReports(oracle, res.Reports); d != "" {
			return "scored-match/" + kind.String(), d
		}
		if hasReports && res.BestScore != oracleBest {
			return "scored-match/" + kind.String(),
				fmt.Sprintf("best score %d, oracle %d", res.BestScore, oracleBest)
		}
	}

	// The baseline-skip fast path must stay invisible under scoring (a
	// skipped symbol fires nothing, so no score can change).
	ablKind := engineKinds[rng.Intn(len(engineKinds))]
	abl := engine.RunEngineOpts(c.NFA, c.Input, ablKind, tab,
		engine.RunOpts{Scored: true, DisableBaselineSkip: true})
	if d := diffReports(oracle, abl.Reports); d != "" {
		return "scored-skip-ablation/" + ablKind.String(), d
	}

	// Chunked streaming with scoring on, per-chunk dedup exactly as
	// Stream.Write performs it: scores must carry across chunk straddles.
	for _, kind := range engineKinds {
		e := engine.New(engine.ScoringKind(kind), c.NFA, tab)
		engine.SetScoring(e, true)
		var all, chunk []engine.Report
		emit := func(r engine.Report) { chunk = append(chunk, r) }
		pos := 0
		for pos < len(c.Input) {
			n := 1 + rng.Intn(32)
			if pos+n > len(c.Input) {
				n = len(c.Input) - pos
			}
			chunk = chunk[:0]
			for _, sym := range c.Input[pos : pos+n] {
				e.Step(sym, int64(pos), emit)
				pos++
			}
			all = append(all, engine.DedupeReports(chunk)...)
		}
		if d := diffReports(oracle, all); d != "" {
			return "scored-stream-chunks/" + kind.String(), d
		}
	}

	// Scored boundary recording + segment resume, rotating backends with the
	// segment count: each recorded boundary's frontier scores must equal the
	// oracle's at that cut, and re-seeding each segment from the previous
	// boundary's (enabled, scores) pair must reproduce the oracle exactly.
	for ki, k := range segmentCounts {
		kind := engineKinds[ki%len(engineKinds)]
		cuts := cutsFor(len(c.Input), k)
		name := fmt.Sprintf("scored-boundaries-k%d/%s", k, kind)
		res, bounds, _, err := engine.RunWithBoundariesEngineContext(
			context.Background(), c.NFA, c.Input, cuts, kind, tab, 0, engine.RunOpts{Scored: true})
		if err != nil {
			return name, fmt.Sprintf("boundary run: %v", err)
		}
		if d := diffReports(oracle, res.Reports); d != "" {
			return name, d
		}
		_, fronts, fscores := OracleRunScoredCuts(c.NFA, c.Input, cuts)
		for i, b := range bounds {
			if !equalIDs(fronts[i], b.Enabled) {
				return name, fmt.Sprintf("boundary %d (pos %d): enabled %v, oracle %v",
					i, b.Pos, b.Enabled, fronts[i])
			}
			for j, q := range b.Enabled {
				if b.Scores[j] != fscores[i][j] {
					return name, fmt.Sprintf("boundary %d (pos %d) state %d: score %d, oracle %d",
						i, b.Pos, q, b.Scores[j], fscores[i][j])
				}
			}
		}
		var union []engine.Report
		emit := func(r engine.Report) { union = append(union, r) }
		for i := 0; i <= len(cuts); i++ {
			start, end := 0, len(c.Input)
			if i > 0 {
				start = cuts[i-1]
			}
			if i < len(cuts) {
				end = cuts[i]
			}
			e := engine.New(engine.ScoringKind(kind), c.NFA, tab)
			engine.SetScoring(e, true)
			if i > 0 {
				engine.ResetScoredOf(e, bounds[i-1].Enabled, bounds[i-1].Scores)
			}
			for p := start; p < end; p++ {
				e.Step(c.Input[p], int64(p), emit)
			}
		}
		if d := diffReports(oracle, union); d != "" {
			return fmt.Sprintf("scored-segment-resume-k%d/%s", k, kind), d
		}
	}

	// Full PAP parallelization: both schedulers × both execution modes, plus
	// a speculative flow-mode run. CheckCorrect covers score exactness too
	// (SameReports compares scores), so Correct doubles as the internal
	// golden-vs-composed scored agreement.
	if len(c.Input) < 8 {
		return "", "" // too short to partition meaningfully
	}
	base := parallelConfig(rng, false)
	base.Scored = true
	type coreCase struct {
		name string
		cfg  core.Config
	}
	var cases []coreCase
	for _, mode := range []core.Mode{core.ModeFlows, core.ModeSFA} {
		for _, par := range []bool{false, true} {
			cfg := base
			cfg.Mode = mode
			cfg.SegmentParallel = par
			name := fmt.Sprintf("scored-parallel/%v-serial", mode)
			if par {
				name = fmt.Sprintf("scored-parallel/%v-parallel", mode)
			}
			cases = append(cases, coreCase{name, cfg})
		}
	}
	spec := base
	spec.Mode = core.ModeFlows
	spec.Speculate = true
	cases = append(cases, coreCase{"scored-parallel/speculative", spec})
	for _, tc := range cases {
		res, err := core.Run(c.NFA, c.Input, tc.cfg)
		if err != nil {
			return tc.name, fmt.Sprintf("core.Run: %v (cfg %+v)", err, tc.cfg)
		}
		if err := res.CheckCorrect(); err != nil {
			return tc.name, fmt.Sprintf("%v (cfg %+v)", err, tc.cfg)
		}
		if d := diffReports(oracle, res.Reports); d != "" {
			return tc.name, d + fmt.Sprintf(" (cfg %+v)", tc.cfg)
		}
		if hasReports && res.BestScore != oracleBest {
			return tc.name, fmt.Sprintf("best score %d, oracle %d (cfg %+v)",
				res.BestScore, oracleBest, tc.cfg)
		}
	}
	return "", ""
}

// diffResultMetrics compares every modelled metric of a serial and a
// parallel result, EngineSwitches excepted, returning "" when bit-identical.
func diffResultMetrics(a, b *core.Result) string {
	if d := diffReports(a.Reports, b.Reports); d != "" {
		return "reports: " + d
	}
	scalars := []struct {
		name string
		a, b interface{}
	}{
		{"Correct", a.Correct, b.Correct},
		{"BaselineCycles", a.BaselineCycles, b.BaselineCycles},
		{"TotalCycles", a.TotalCycles, b.TotalCycles},
		{"RawTotalCycles", a.RawTotalCycles, b.RawTotalCycles},
		{"Clamped", a.Clamped, b.Clamped},
		{"Speedup", a.Speedup, b.Speedup},
		{"IdealSpeedup", a.IdealSpeedup, b.IdealSpeedup},
		{"AvgActiveFlows", a.AvgActiveFlows, b.AvgActiveFlows},
		{"SwitchOverheadPct", a.SwitchOverheadPct, b.SwitchOverheadPct},
		{"AvgHostCycles", a.AvgHostCycles, b.AvgHostCycles},
		{"TotalEvents", a.TotalEvents, b.TotalEvents},
		{"ReportIncrease", a.ReportIncrease, b.ReportIncrease},
		{"TransitionRatio", a.TransitionRatio, b.TransitionRatio},
		{"MispredictedSegments", a.MispredictedSegments, b.MispredictedSegments},
		{"PrefilterSkipped", a.PrefilterSkipped, b.PrefilterSkipped},
		{"BaselineSkipped", a.BaselineSkipped, b.BaselineSkipped},
		{"CapacityNote", a.CapacityNote, b.CapacityNote},
		{"Mode", a.Mode, b.Mode},
		{"SFAMappings", a.SFAMappings, b.SFAMappings},
		{"SFAComposeOps", a.SFAComposeOps, b.SFAComposeOps},
		{"FingerprintCollisions", a.FingerprintCollisions, b.FingerprintCollisions},
	}
	for _, s := range scalars {
		if s.a != s.b {
			return fmt.Sprintf("%s: serial %v, parallel %v", s.name, s.a, s.b)
		}
	}
	if len(a.Segments) != len(b.Segments) {
		return fmt.Sprintf("segment count: serial %d, parallel %d", len(a.Segments), len(b.Segments))
	}
	for i := range a.Segments {
		sa, sb := a.Segments[i], b.Segments[i]
		sa.EngineSwitches, sb.EngineSwitches = 0, 0
		if sa != sb {
			return fmt.Sprintf("segment %d: serial %+v, parallel %+v", i, sa, sb)
		}
	}
	return ""
}

// parallelConfig draws a PAP configuration from rng. With toggled set, the
// ablation switches are flipped pseudo-randomly (always at least one).
func parallelConfig(rng *rand.Rand, toggled bool) core.Config {
	cfg := core.DefaultConfig(1)
	cfg.Workers = 1 + rng.Intn(2)
	cfg.MaxSegments = 2 + rng.Intn(7)
	cfg.TDMQuantum = []int{4, 8, 16}[rng.Intn(3)]
	cfg.ConvergenceEvery = 1 + rng.Intn(4)
	cfg.Engine = engineKinds[rng.Intn(len(engineKinds))]
	if toggled {
		cfg.DisableCCMerge = rng.Intn(2) == 0
		cfg.DisableParentMerge = rng.Intn(2) == 0
		cfg.DisableConvergence = rng.Intn(2) == 0
		cfg.DisableDeactivation = rng.Intn(2) == 0
		cfg.DisableFIV = rng.Intn(2) == 0
		cfg.DisablePrefilter = rng.Intn(2) == 0
		cfg.DisableBaselineSkip = rng.Intn(2) == 0
		cfg.AbsorbDeactivation = rng.Intn(2) == 0
		if rng.Intn(3) == 0 {
			cfg.Speculate = true
		}
		if !(cfg.DisableCCMerge || cfg.DisableParentMerge || cfg.DisableConvergence ||
			cfg.DisableDeactivation || cfg.DisableFIV || cfg.Speculate) {
			cfg.DisableConvergence = true
		}
	}
	return cfg
}

// diffReports returns "" when got (after dedup) equals the canonical want
// set, else a compact description of the first divergence. Scores are part
// of the comparison: unscored paths are checked against a score-stripped
// oracle set and carry all-zero scores themselves, so for them this reduces
// to (offset, state, code) equality; for scored paths it is score-for-score.
func diffReports(want, got []engine.Report) string {
	g := engine.DedupeReports(append([]engine.Report(nil), got...))
	for i := 0; i < len(want) || i < len(g); i++ {
		switch {
		case i >= len(want):
			return fmt.Sprintf("%d reports, want %d; first extra (off %d, state %d)",
				len(g), len(want), g[i].Offset, g[i].State)
		case i >= len(g):
			return fmt.Sprintf("%d reports, want %d; first missing (off %d, state %d)",
				len(g), len(want), want[i].Offset, want[i].State)
		case want[i].Offset != g[i].Offset || want[i].State != g[i].State || want[i].Code != g[i].Code:
			return fmt.Sprintf("report %d = (off %d, state %d, code %d), want (off %d, state %d, code %d)",
				i, g[i].Offset, g[i].State, g[i].Code, want[i].Offset, want[i].State, want[i].Code)
		case want[i].Score != g[i].Score:
			return fmt.Sprintf("report %d (off %d, state %d): score %d, want %d",
				i, g[i].Offset, g[i].State, g[i].Score, want[i].Score)
		}
	}
	return ""
}

func sortedIDs(ids []nfa.StateID) []nfa.StateID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func equalIDs(a, b []nfa.StateID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
