package conformance

import "pap/internal/nfa"

// shrinkBudget bounds the number of predicate evaluations one shrink is
// allowed; each evaluation re-runs the full invariant suite on a candidate,
// so the cap keeps failure handling fast even on stubborn cases.
const shrinkBudget = 1500

// Shrink minimises a failing (spec, input) pair: it greedily removes input
// bytes, states, edges, label symbols and flags while the fails predicate
// keeps returning true, and returns the smallest still-failing pair. The
// predicate receives candidates that may be degenerate (it must return
// false for specs that no longer build). Shrinking is deterministic.
func Shrink(spec *NFASpec, input []byte, fails func(*NFASpec, []byte) bool) (*NFASpec, []byte) {
	budget := shrinkBudget
	try := func(s *NFASpec, in []byte) bool {
		if budget <= 0 {
			return false
		}
		budget--
		return fails(s, in)
	}

	// Pass 1: input reduction, ddmin-style — remove chunks of halving size.
	for chunk := len(input) / 2; chunk >= 1; chunk /= 2 {
		for pos := 0; pos+chunk <= len(input); {
			cand := append(append([]byte(nil), input[:pos]...), input[pos+chunk:]...)
			if try(spec, cand) {
				input = cand
			} else {
				pos += chunk
			}
		}
	}

	// Pass 2/3/4: structural reduction, repeated to a fixpoint (removing a
	// state can make an edge removable and vice versa).
	for changed := true; changed && budget > 0; {
		changed = false
		// Remove states (highest first, so indices shift predictably).
		for q := len(spec.States) - 1; q >= 0; q-- {
			cand := spec.clone()
			cand.States = append(cand.States[:q], cand.States[q+1:]...)
			var edges [][2]int32
			var weights []int32
			for i, e := range cand.Edges {
				if int(e[0]) == q || int(e[1]) == q {
					continue
				}
				if int(e[0]) > q {
					e[0]--
				}
				if int(e[1]) > q {
					e[1]--
				}
				edges = append(edges, e)
				if cand.scored() {
					weights = append(weights, cand.Weights[i])
				}
			}
			cand.Edges, cand.Weights = edges, weights
			if try(cand, input) {
				spec = cand
				changed = true
			}
		}
		// Remove edges (with their weight, when scored).
		for i := len(spec.Edges) - 1; i >= 0; i-- {
			cand := spec.clone()
			cand.Edges = append(cand.Edges[:i], cand.Edges[i+1:]...)
			if cand.scored() {
				cand.Weights = append(cand.Weights[:i], cand.Weights[i+1:]...)
			}
			if try(cand, input) {
				spec = cand
				changed = true
			}
		}
		// Simplify scores: drop the weights entirely (unscore the spec), or
		// failing that zero individual weights — a score-dependent failure
		// shrinks to the minimal set of nonzero weights it needs.
		if spec.scored() {
			cand := spec.clone()
			cand.Weights = nil
			if try(cand, input) {
				spec = cand
				changed = true
			} else {
				for i := range spec.Weights {
					if spec.Weights[i] == 0 {
						continue
					}
					cand := spec.clone()
					cand.Weights[i] = 0
					if try(cand, input) {
						spec = cand
						changed = true
					}
				}
			}
		}
		// Simplify states: drop label symbols and non-essential flags.
		for q := range spec.States {
			for len(spec.States[q].Syms) > 1 {
				cand := spec.clone()
				cand.States[q].Syms = cand.States[q].Syms[1:]
				if !try(cand, input) {
					break
				}
				spec = cand
				changed = true
			}
			for _, f := range []nfa.Flags{nfa.AllInput, nfa.Report} {
				if spec.States[q].Flags&f == 0 {
					continue
				}
				cand := spec.clone()
				cand.States[q].Flags &^= f
				if try(cand, input) {
					spec = cand
					changed = true
				}
			}
		}
	}

	// Final input polish: single-byte removals enabled by structural shrink.
	for pos := 0; pos < len(input); {
		cand := append(append([]byte(nil), input[:pos]...), input[pos+1:]...)
		if try(spec, cand) {
			input = cand
		} else {
			pos++
		}
	}
	return spec, input
}

// shrinkFailure reduces a failing case and re-derives the invariant that
// fails on the minimal pair (structural shrinking may shift which check
// trips first; the minimal reproduction is what matters for debugging).
func shrinkFailure(c *Case) (spec *NFASpec, input []byte, invariant, detail string) {
	fails := func(s *NFASpec, in []byte) bool {
		n, err := s.Build()
		if err != nil {
			return false
		}
		inv, _ := CheckCase(&Case{Seed: c.Seed, Spec: s, NFA: n, Input: in})
		return inv != ""
	}
	spec, input = Shrink(c.Spec, c.Input, fails)
	n, err := spec.Build()
	if err != nil {
		// Cannot happen: Shrink only keeps building candidates. Fall back to
		// the original case.
		spec, input = c.Spec, c.Input
		n = c.NFA
	}
	invariant, detail = CheckCase(&Case{Seed: c.Seed, Spec: spec, NFA: n, Input: input})
	return spec, input, invariant, detail
}
