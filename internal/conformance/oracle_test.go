package conformance

import (
	"bytes"
	"strings"
	"testing"

	"pap/internal/engine"
	"pap/internal/nfa"
)

// TestOracleHandComputed pins the oracle to hand-computed report sets on a
// tiny automaton: start 'a' -> report 'b', plus an all-input reporter 'c'.
func TestOracleHandComputed(t *testing.T) {
	b := nfa.NewBuilder("hand")
	a0 := b.AddState(nfa.ClassOf('a'), nfa.StartOfData)
	b1 := b.AddReportState(nfa.ClassOf('b'), 0, 1)
	b.AddEdge(a0, b1)
	b.AddReportState(nfa.ClassOf('c'), nfa.AllInput, 2)
	n := b.MustBuild()

	got := OracleRun(n, []byte("abcb"))
	want := []engine.Report{
		{Offset: 1, State: b1, Code: 1}, // "ab" completed
		{Offset: 2, State: 2, Code: 2},  // all-input 'c' at offset 2
	}
	if len(got) != len(want) {
		t.Fatalf("reports = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("report %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// Start-of-data must not rearm: a second "ab" only reports via nothing
	// (state 0 is dead after step 0).
	if rs := OracleRun(n, []byte("xbab")); len(rs) != 0 {
		t.Fatalf("start-of-data rearmed: %+v", rs)
	}
}

// TestOracleEmptyAndTinyInputs: zero and one-byte inputs run cleanly.
func TestOracleEmptyAndTinyInputs(t *testing.T) {
	b := nfa.NewBuilder("tiny")
	b.AddReportState(nfa.ClassOf('a'), nfa.AllInput, 7)
	n := b.MustBuild()
	if rs := OracleRun(n, nil); len(rs) != 0 {
		t.Fatalf("empty input reported %+v", rs)
	}
	rs := OracleRun(n, []byte("a"))
	if len(rs) != 1 || rs[0].Offset != 0 || rs[0].Code != 7 {
		t.Fatalf("1-byte input = %+v", rs)
	}
}

// TestNewCaseDeterministic: the same seed must regenerate the identical
// case — the property every repro line depends on.
func TestNewCaseDeterministic(t *testing.T) {
	for _, seed := range []int64{1, -7, 123456789} {
		a, err := NewCase(seed)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewCase(seed)
		if err != nil {
			t.Fatal(err)
		}
		if a.Spec.String() != b.Spec.String() || !bytes.Equal(a.Input, b.Input) {
			t.Fatalf("seed %d not deterministic", seed)
		}
	}
}

// TestCaseSeedSpread: sweeps from adjacent base seeds share no case seeds.
func TestCaseSeedSpread(t *testing.T) {
	seen := map[int64]bool{}
	for base := int64(0); base < 4; base++ {
		for i := 0; i < 256; i++ {
			s := CaseSeed(base, i)
			if seen[s] {
				t.Fatalf("duplicate case seed %d (base %d, i %d)", s, base, i)
			}
			seen[s] = true
		}
	}
}

// TestShrinkMinimises drives Shrink with a synthetic failure predicate and
// requires a near-minimal result: the shrinker must strip the case down to
// the essence the predicate demands.
func TestShrinkMinimises(t *testing.T) {
	c, err := NewCase(42)
	if err != nil {
		t.Fatal(err)
	}
	// Synthetic "bug": any automaton with >= 1 reporting state fails on any
	// input containing >= 2 'a' bytes.
	fails := func(s *NFASpec, in []byte) bool {
		if _, err := s.Build(); err != nil {
			return false
		}
		reports := 0
		for _, st := range s.States {
			if st.Flags&nfa.Report != 0 {
				reports++
			}
		}
		return reports >= 1 && bytes.Count(in, []byte("a")) >= 2
	}
	if !fails(c.Spec, append(c.Input, "aa"...)) {
		t.Skip("seed no longer produces a reporting state; adjust test seed")
	}
	spec, input := Shrink(c.Spec, append(c.Input, "aa"...), fails)
	if !fails(spec, input) {
		t.Fatal("shrunk pair no longer fails")
	}
	if len(input) != 2 {
		t.Errorf("shrunk input = %q, want exactly 2 bytes", input)
	}
	if len(spec.States) > 2 {
		t.Errorf("shrunk spec has %d states, want <= 2: %s", len(spec.States), spec)
	}
	if len(spec.Edges) != 0 {
		t.Errorf("shrunk spec kept edges: %s", spec)
	}
}

// TestHarnessDetectsInjectedBug runs CheckCase against a case whose input
// was tampered with after oracle evaluation — simulated by checking a
// mutated oracle set — and requires a diagnostic. This guards the guard:
// diffReports must actually flag divergences.
func TestHarnessDetectsInjectedBug(t *testing.T) {
	c, err := NewCase(7)
	if err != nil {
		t.Fatal(err)
	}
	oracle := OracleRun(c.NFA, c.Input)
	tampered := append([]engine.Report(nil), oracle...)
	tampered = append(tampered, engine.Report{Offset: int64(len(c.Input) + 5), State: 0})
	res := engine.RunEngine(c.NFA, c.Input, engine.Auto, nil)
	if d := diffReports(tampered, res.Reports); d == "" {
		t.Fatal("diffReports accepted a tampered oracle set")
	}
	if d := diffReports(oracle, res.Reports); d != "" {
		t.Fatalf("unexpected divergence on seed 7: %s", d)
	}
}

// TestFailureReportFormat: the failure report must carry the replay seed,
// the shrunk automaton and the shrunk input — everything §repro needs.
func TestFailureReportFormat(t *testing.T) {
	f := &Failure{
		Seed:      99,
		Invariant: "oracle-vs-run/bit",
		Detail:    "0 reports, want 1",
		Spec:      &NFASpec{States: []StateSpec{{Syms: []byte("a"), Flags: nfa.StartOfData}}},
		Input:     []byte("aa"),
	}
	s := f.String()
	for _, want := range []string{"-conformance.case=99", "oracle-vs-run/bit", `"aa"`, "1 states"} {
		if !strings.Contains(s, want) {
			t.Errorf("failure report missing %q:\n%s", want, s)
		}
	}
}

// TestRunOneKnownGood: a handful of fixed seeds must pass — these double as
// regression anchors for the generator (a generator change that breaks
// determinism shows up here as a sweep-vs-replay mismatch).
func TestRunOneKnownGood(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, CaseSeed(1, 0), CaseSeed(1, 999)} {
		f, err := RunOne(seed, false)
		if err != nil {
			t.Fatal(err)
		}
		if f != nil {
			t.Fatalf("case %d:\n%s", seed, f)
		}
	}
}
