package conformance

import (
	"flag"
	"testing"
	"time"
)

var (
	flagSeed = flag.Int64("conformance.seed", 1,
		"base seed of the conformance sweep")
	flagCases = flag.Int("conformance.cases", 0,
		"number of generated cases (0 = 1000 in -short mode, 2000 otherwise)")
	flagCase = flag.Int64("conformance.case", 0,
		"replay exactly one case by its seed (as printed in a failure report)")
)

// TestConformance is the randomized metamorphic sweep: every generated
// (automaton, input) case must satisfy every invariant — oracle ≡
// sequential Run ≡ boundary/segment-resume runs for k ∈ {2,3,7,16} ≡ all
// three engines ≡ chunked streaming ≡ the PAP parallelization under its
// ablation toggles. A failure prints a shrunk NFA + input and a one-line
// repro seed.
//
// Replay one case:   go test ./internal/conformance -run TestConformance -conformance.case=SEED
// Bigger sweep:      go test ./internal/conformance -run TestConformance -conformance.cases=50000
func TestConformance(t *testing.T) {
	if *flagCase != 0 {
		f, err := RunOne(*flagCase, true)
		if err != nil {
			t.Fatal(err)
		}
		if f != nil {
			t.Fatalf("case %d:\n%s", f.Seed, f)
		}
		return
	}
	cases := *flagCases
	if cases == 0 {
		cases = 2000
		if testing.Short() {
			cases = 1000
		}
	}
	start := time.Now()
	sum := Run(Options{
		Seed:  *flagSeed,
		Cases: cases,
		Progress: func(done, total int) {
			t.Logf("conformance: %d/%d cases (%.1fs)", done, total, time.Since(start).Seconds())
		},
	})
	for i := range sum.Failures {
		t.Errorf("case %d:\n%s", sum.Failures[i].Seed, &sum.Failures[i])
	}
	if sum.Cases < cases && len(sum.Failures) == 0 {
		t.Errorf("sweep stopped after %d/%d cases without failures", sum.Cases, cases)
	}
	t.Logf("conformance: %d cases, %d failures in %v", sum.Cases, len(sum.Failures), time.Since(start))
}
