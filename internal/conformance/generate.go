package conformance

import (
	"fmt"
	"math/rand"
	"strings"

	"pap/internal/nfa"
)

// StateSpec is the shrinkable description of one state: its label symbols,
// role flags, and report code.
type StateSpec struct {
	Syms  []byte
	Flags nfa.Flags
	Code  int32
}

// NFASpec is a concrete, serializable automaton description — the unit the
// shrinker edits and failure reports print. Build converts it to an NFA.
type NFASpec struct {
	States []StateSpec
	Edges  [][2]int32 // from, to
	// Weights holds per-edge score annotations parallel to Edges. Empty
	// means an unscored automaton; non-empty means every edge is added with
	// nfa.AddScoredEdge (zero weights included, so all-zero scored specs
	// exercise the scored paths without changing any score).
	Weights []int32
}

// scored reports whether the spec builds a scored automaton.
func (s *NFASpec) scored() bool { return len(s.Weights) > 0 }

// Build constructs the NFA, or returns an error for degenerate specs (no
// states, no start states) — the shrinker treats those as "not failing".
func (s *NFASpec) Build() (*nfa.NFA, error) {
	b := nfa.NewBuilder("conformance")
	for _, st := range s.States {
		cls := nfa.ClassOf(st.Syms...)
		if cls.Empty() {
			cls = nfa.ClassOf('a')
		}
		id := b.AddState(cls, st.Flags&^nfa.Report)
		if st.Flags&nfa.Report != 0 {
			b.SetFlags(id, nfa.Report)
			b.SetReportCode(id, st.Code)
		}
	}
	if s.scored() && len(s.Weights) != len(s.Edges) {
		return nil, fmt.Errorf("conformance: %d weights for %d edges", len(s.Weights), len(s.Edges))
	}
	for i, e := range s.Edges {
		if e[0] < 0 || int(e[0]) >= len(s.States) || e[1] < 0 || int(e[1]) >= len(s.States) {
			return nil, fmt.Errorf("conformance: edge %v out of range", e)
		}
		if s.scored() {
			b.AddScoredEdge(nfa.StateID(e[0]), nfa.StateID(e[1]), s.Weights[i])
		} else {
			b.AddEdge(nfa.StateID(e[0]), nfa.StateID(e[1]))
		}
	}
	return b.Build()
}

// String renders the spec compactly, for failure reports:
// "5 states; 0:[ab]SR 1:[a]A ...; edges 0>1 1>2 2>2".
func (s *NFASpec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d states;", len(s.States))
	for i, st := range s.States {
		fmt.Fprintf(&b, " %d:[%s]", i, st.Syms)
		if st.Flags&nfa.StartOfData != 0 {
			b.WriteByte('S')
		}
		if st.Flags&nfa.AllInput != 0 {
			b.WriteByte('A')
		}
		if st.Flags&nfa.Report != 0 {
			fmt.Fprintf(&b, "R%d", st.Code)
		}
	}
	b.WriteString("; edges")
	if len(s.Edges) == 0 {
		b.WriteString(" none")
	}
	for i, e := range s.Edges {
		if s.scored() {
			fmt.Fprintf(&b, " %d>%d%+d", e[0], e[1], s.Weights[i])
		} else {
			fmt.Fprintf(&b, " %d>%d", e[0], e[1])
		}
	}
	return b.String()
}

// clone deep-copies the spec so shrink passes can edit candidates freely.
func (s *NFASpec) clone() *NFASpec {
	out := &NFASpec{
		States: make([]StateSpec, len(s.States)),
		Edges:  make([][2]int32, len(s.Edges)),
	}
	for i, st := range s.States {
		out.States[i] = StateSpec{Syms: append([]byte(nil), st.Syms...), Flags: st.Flags, Code: st.Code}
	}
	copy(out.Edges, s.Edges)
	if s.scored() {
		out.Weights = append([]int32(nil), s.Weights...)
	}
	return out
}

// genAlphabet is the symbol pool generated automata draw labels from. A
// small alphabet keeps random inputs hitting labels often enough to exercise
// dense frontiers; 'z' is reserved as a guaranteed-miss symbol for
// sparse-match inputs.
var genAlphabet = []byte("abcd")

// RandomSpec generates one random automaton spec from rng. The shape is
// deliberately varied: 1-4 disjoint connected components, each with its own
// fan-out, self-loop rate, all-input (ASG) rate, and symbol-class skew;
// occasionally a component is entirely all-input states (the all-ASG edge
// case), or a single chain (boundary-straddling matches).
func RandomSpec(rng *rand.Rand) *NFASpec {
	spec := &NFASpec{}
	components := 1 + rng.Intn(4)
	for c := 0; c < components; c++ {
		base := int32(len(spec.States))
		size := 1 + rng.Intn(14)
		shape := rng.Intn(5)
		// Per-component symbol skew: a biased subset of the alphabet.
		skew := 1 + rng.Intn(len(genAlphabet))
		randClass := func() []byte {
			var syms []byte
			for _, s := range genAlphabet[:skew] {
				if rng.Intn(3) == 0 {
					syms = append(syms, s)
				}
			}
			if len(syms) == 0 {
				syms = []byte{genAlphabet[rng.Intn(skew)]}
			}
			return syms
		}
		for i := 0; i < size; i++ {
			st := StateSpec{Syms: randClass()}
			switch {
			case shape == 4: // all-ASG component
				st.Flags |= nfa.AllInput
			case i == 0 && rng.Intn(2) == 0:
				st.Flags |= nfa.AllInput
			case rng.Intn(6) == 0:
				st.Flags |= nfa.StartOfData
			case rng.Intn(12) == 0:
				st.Flags |= nfa.AllInput
			}
			if rng.Intn(4) == 0 {
				st.Flags |= nfa.Report
				st.Code = int32(rng.Intn(8))
			}
			spec.States = append(spec.States, st)
		}
		// Make the last state of a chain-shaped component report, so
		// boundary-straddling inputs have something to complete.
		if shape == 3 {
			spec.States[base+int32(size-1)].Flags |= nfa.Report
		}
		edge := func(from, to int32) { spec.Edges = append(spec.Edges, [2]int32{base + from, base + to}) }
		switch shape {
		case 3: // chain: state i -> i+1, matching runs straddle boundaries
			for i := int32(0); i < int32(size-1); i++ {
				edge(i, i+1)
			}
		default: // random fan-out within the component
			fanout := 1 + rng.Intn(3)
			for i := int32(0); i < int32(size); i++ {
				for k := 0; k < rng.Intn(fanout+1); k++ {
					edge(i, int32(rng.Intn(size)))
				}
			}
		}
		// Self-loops model .*-style persistent activity.
		if rng.Intn(2) == 0 {
			q := int32(rng.Intn(size))
			edge(q, q)
		}
	}
	// Builder rejects automata with no start states; anchor state 0.
	if len(spec.States) > 0 {
		hasStart := false
		for _, st := range spec.States {
			if st.Flags&(nfa.StartOfData|nfa.AllInput) != 0 {
				hasStart = true
				break
			}
		}
		if !hasStart {
			spec.States[0].Flags |= nfa.StartOfData
		}
	}
	// A third of the specs are scored: per-edge weights from a deliberately
	// tiny range, so negatives, zeros and score ties between competing paths
	// all occur constantly (ties are where a wrong max-merge hides).
	if len(spec.Edges) > 0 && rng.Intn(3) == 0 {
		spec.Weights = make([]int32, len(spec.Edges))
		for i := range spec.Weights {
			spec.Weights[i] = int32(rng.Intn(8) - 3) // [-3, 4]
		}
	}
	return spec
}

// RandomInput generates an adversarial input for the spec: dense-match
// (symbols drawn from the automaton's own labels, so frontiers stay hot),
// sparse-match (mostly the guaranteed-miss symbol), or boundary-straddling
// (label-drawn runs centred on the cut positions the harness will use, so
// matches span segment boundaries).
func RandomInput(rng *rand.Rand, spec *NFASpec) []byte {
	var labels []byte
	for _, st := range spec.States {
		labels = append(labels, st.Syms...)
	}
	if len(labels) == 0 {
		labels = []byte{'a'}
	}
	hot := func() byte { return labels[rng.Intn(len(labels))] }
	size := 1 + rng.Intn(256)
	out := make([]byte, size)
	switch rng.Intn(3) {
	case 0: // dense-match
		for i := range out {
			out[i] = hot()
		}
	case 1: // sparse-match
		for i := range out {
			if rng.Intn(8) == 0 {
				out[i] = hot()
			} else {
				out[i] = 'z'
			}
		}
	default: // boundary-straddling: hot runs across the k-segment cuts
		for i := range out {
			out[i] = 'z'
		}
		for _, k := range segmentCounts {
			for j := 1; j < k; j++ {
				cut := j * size / k
				for p := cut - 4; p < cut+4; p++ {
					if p >= 0 && p < size {
						out[p] = hot()
					}
				}
			}
		}
	}
	return out
}
