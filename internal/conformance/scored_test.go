package conformance

import (
	"context"
	"math/rand"
	"testing"

	"pap/internal/core"
	"pap/internal/engine"
	"pap/internal/nfa"
)

// TestScoredSpecsGenerated guards the guard: the generator must actually
// emit scored specs (with nonzero and negative weights) often enough, and
// the scored oracle must see nonzero report scores on some of them —
// otherwise the scored-match invariant would be vacuously green.
func TestScoredSpecsGenerated(t *testing.T) {
	scored, nonzero, negative, scoredReports := 0, 0, 0, 0
	for seed := int64(0); seed < 200; seed++ {
		c, err := NewCase(seed)
		if err != nil {
			t.Fatal(err)
		}
		if !c.Spec.scored() {
			continue
		}
		scored++
		for _, w := range c.Spec.Weights {
			if w != 0 {
				nonzero++
			}
			if w < 0 {
				negative++
			}
		}
		for _, r := range OracleRunScored(c.NFA, c.Input) {
			if r.Score != 0 {
				scoredReports++
				break
			}
		}
	}
	if scored < 30 {
		t.Errorf("only %d/200 generated specs are scored; want roughly a third", scored)
	}
	if nonzero == 0 || negative == 0 {
		t.Errorf("weights lack variety: %d nonzero, %d negative", nonzero, negative)
	}
	if scoredReports < 10 {
		t.Errorf("only %d scored specs produced a nonzero-score report", scoredReports)
	}
}

// TestScoredAllZeroEqualsUnscored: an automaton whose every edge weight is
// zero must behave bit-for-bit like the identical unscored automaton — same
// reports (all score 0), same transition count, same frontier statistics,
// same baseline-skip behaviour — on every backend, with scoring on or off.
func TestScoredAllZeroEqualsUnscored(t *testing.T) {
	for _, seed := range []int64{3, 11, 19, 27} {
		c, err := NewCase(seed)
		if err != nil {
			t.Fatal(err)
		}
		plain := c.Spec.clone()
		plain.Weights = nil
		zeroed := c.Spec.clone()
		zeroed.Weights = make([]int32, len(zeroed.Edges))
		np, err := plain.Build()
		if err != nil {
			t.Fatal(err)
		}
		nz, err := zeroed.Build()
		if err != nil {
			t.Fatal(err)
		}
		if !nz.Scored() || np.Scored() {
			t.Fatalf("seed %d: scored flags wrong (zeroed %v, plain %v)", seed, nz.Scored(), np.Scored())
		}
		for _, kind := range engineKinds {
			ref := engine.RunEngine(np, c.Input, kind, nil)
			// diffReports wants a canonical (deduped, sorted) reference set.
			want := engine.DedupeReports(append([]engine.Report(nil), ref.Reports...))
			for _, scored := range []bool{false, true} {
				got := engine.RunEngineOpts(nz, c.Input, kind, nil, engine.RunOpts{Scored: scored})
				if d := diffReports(want, got.Reports); d != "" {
					t.Fatalf("seed %d %s scored=%v: %s", seed, kind, scored, d)
				}
				if got.BestScore != 0 {
					t.Fatalf("seed %d %s scored=%v: best score %d, want 0", seed, kind, scored, got.BestScore)
				}
				// The scored run remaps lazydfa/meta to the adaptive scorer,
				// whose transition accounting legitimately differs; on the
				// natively scoring backends every observable must match.
				if scored && (kind == engine.LazyDFAKind || kind == engine.MetaKind) {
					continue
				}
				if got.Transitions != ref.Transitions ||
					got.MaxFrontier != ref.MaxFrontier || got.SumFrontier != ref.SumFrontier {
					t.Fatalf("seed %d %s scored=%v: transitions %d/%d, frontier max %d/%d sum %d/%d",
						seed, kind, scored, got.Transitions, ref.Transitions,
						got.MaxFrontier, ref.MaxFrontier, got.SumFrontier, ref.SumFrontier)
				}
			}
		}
	}
}

// scoredChain builds a linear a→b→c→… automaton over the given symbols with
// the given per-edge weights (len(weights) == len(syms)-1), reporting code
// 9 at the end of the chain.
func scoredChain(t *testing.T, syms string, weights []int32) *nfa.NFA {
	t.Helper()
	b := nfa.NewBuilder("chain")
	prev := nfa.StateID(-1)
	for i := 0; i < len(syms); i++ {
		var flags nfa.Flags
		if i == 0 {
			flags = nfa.AllInput
		}
		id := b.AddState(nfa.ClassOf(syms[i]), flags)
		if i == len(syms)-1 {
			b.SetFlags(id, nfa.Report)
			b.SetReportCode(id, 9)
		}
		if prev >= 0 {
			b.AddScoredEdge(prev, id, weights[i-1])
		}
		prev = id
	}
	return b.MustBuild()
}

// TestScoredNegativeScores: a chain whose weights are all negative reports a
// negative best score, and BestReportScore must not confuse it with the 0
// sentinel-that-isn't.
func TestScoredNegativeScores(t *testing.T) {
	n := scoredChain(t, "abc", []int32{-1, -2})
	want := OracleRunScored(n, []byte("xabcx"))
	if len(want) != 1 || want[0].Score != -3 {
		t.Fatalf("oracle = %+v, want one report with score -3", want)
	}
	for _, kind := range engineKinds {
		res := engine.RunEngineOpts(n, []byte("xabcx"), kind, nil, engine.RunOpts{Scored: true})
		if d := diffReports(want, res.Reports); d != "" {
			t.Fatalf("%s: %s", kind, d)
		}
		if res.BestScore != -3 {
			t.Fatalf("%s: best score %d, want -3", kind, res.BestScore)
		}
	}
	if best, ok := engine.BestReportScore(want); !ok || best != -3 {
		t.Fatalf("BestReportScore = (%d, %v), want (-3, true)", best, ok)
	}
	if _, ok := engine.BestReportScore(nil); ok {
		t.Fatal("BestReportScore on an empty set must report not-ok")
	}
}

// TestScoredTieMaxMerge: two paths converging on the same report state must
// merge by max — both when they tie exactly and when one dominates.
func TestScoredTieMaxMerge(t *testing.T) {
	build := func(wHigh, wLow int32) *nfa.NFA {
		b := nfa.NewBuilder("diamond")
		s := b.AddState(nfa.ClassOf('a'), nfa.AllInput)
		hi := b.AddState(nfa.ClassOf('b'), 0)
		lo := b.AddState(nfa.ClassOf('b'), 0)
		end := b.AddReportState(nfa.ClassOf('c'), 0, 5)
		b.AddScoredEdge(s, hi, wHigh)
		b.AddScoredEdge(s, lo, wLow)
		b.AddScoredEdge(hi, end, 0)
		b.AddScoredEdge(lo, end, 0)
		return b.MustBuild()
	}
	for _, tc := range []struct {
		hi, lo int32
		want   int64
	}{
		{5, 1, 5},  // dominating path wins
		{2, 2, 2},  // exact tie: merged score is the tied value
		{-1, -4, -1},
	} {
		n := build(tc.hi, tc.lo)
		oracle := OracleRunScored(n, []byte("abc"))
		if len(oracle) != 1 || oracle[0].Score != tc.want {
			t.Fatalf("weights (%d,%d): oracle = %+v, want one report scoring %d",
				tc.hi, tc.lo, oracle, tc.want)
		}
		for _, kind := range engineKinds {
			res := engine.RunEngineOpts(n, []byte("abc"), kind, nil, engine.RunOpts{Scored: true})
			if d := diffReports(oracle, res.Reports); d != "" {
				t.Fatalf("weights (%d,%d) %s: %s", tc.hi, tc.lo, kind, d)
			}
		}
	}
}

// TestScoredSegmentBoundaryExact pins the cross-boundary score carry on a
// hand-computed chain: the recorded boundary score mid-pattern equals the
// prefix sum, and a fresh engine re-seeded with (enabled, scores) finishes
// the match with the exact whole-run score.
func TestScoredSegmentBoundaryExact(t *testing.T) {
	n := scoredChain(t, "abcd", []int32{3, -1, 4}) // full-match score 6
	input := []byte("zabcdz")
	cuts := []int{3} // mid-pattern: after "zab"
	res, bounds, _, err := engine.RunWithBoundariesEngineContext(
		context.Background(), n, input, cuts, engine.SparseKind, nil, 0, engine.RunOpts{Scored: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 1 || res.Reports[0].Score != 6 {
		t.Fatalf("whole-run reports = %+v, want one scoring 6", res.Reports)
	}
	// After "zab" the sole enabled state is the 'c' state, reached via
	// a→b (+3) then b→c (-1): boundary score 2.
	if len(bounds) != 1 || len(bounds[0].Enabled) != 1 || bounds[0].Scores[0] != 2 {
		t.Fatalf("boundary = %+v, want one enabled state scoring 2", bounds[0])
	}
	for _, kind := range engineKinds {
		e := engine.New(engine.ScoringKind(kind), n, nil)
		engine.SetScoring(e, true)
		engine.ResetScoredOf(e, bounds[0].Enabled, bounds[0].Scores)
		var got []engine.Report
		for p := cuts[0]; p < len(input); p++ {
			e.Step(input[p], int64(p), func(r engine.Report) { got = append(got, r) })
		}
		if len(got) != 1 || got[0].Score != 6 {
			t.Fatalf("%s resumed reports = %+v, want one scoring 6", kind, got)
		}
	}
}

// TestScoredChunkStraddle: a scored match assembled across 2-byte stream
// chunks scores identically to the whole-input run.
func TestScoredChunkStraddle(t *testing.T) {
	n := scoredChain(t, "abcdefgh", []int32{1, 2, 3, 4, 5, 6, 7}) // full score 28
	input := []byte("zzabcdefghzz")
	want := OracleRunScored(n, input)
	if len(want) != 1 || want[0].Score != 28 {
		t.Fatalf("oracle = %+v, want one report scoring 28", want)
	}
	for _, kind := range engineKinds {
		e := engine.New(engine.ScoringKind(kind), n, nil)
		engine.SetScoring(e, true)
		var all, chunk []engine.Report
		emit := func(r engine.Report) { chunk = append(chunk, r) }
		for pos := 0; pos < len(input); pos += 2 {
			end := pos + 2
			if end > len(input) {
				end = len(input)
			}
			chunk = chunk[:0]
			for p := pos; p < end; p++ {
				e.Step(input[p], int64(p), emit)
			}
			all = append(all, engine.DedupeReports(chunk)...)
		}
		if d := diffReports(want, all); d != "" {
			t.Fatalf("%s: %s", kind, d)
		}
	}
}

// TestScoredPrefilterAblation: scored runs never use the literal prefilter
// (it is only report-exact, and a dropped doomed frontier could carry the
// best score) — requesting it alongside Scored must still be score-exact,
// and the parallel pipeline must agree with the prefilter disabled outright.
func TestScoredPrefilterAblation(t *testing.T) {
	n := scoredChain(t, "abcdef", []int32{2, 2, 2, 2, 2})
	rng := rand.New(rand.NewSource(1))
	input := make([]byte, 256)
	for i := range input {
		input[i] = "abcdefz"[rng.Intn(7)]
	}
	copy(input[100:], "abcdef")
	want := OracleRunScored(n, input)
	res := engine.RunEngineOpts(n, input, engine.MetaKind, nil,
		engine.RunOpts{Scored: true, LiteralPrefilter: true})
	if d := diffReports(want, res.Reports); d != "" {
		t.Fatalf("meta + literal prefilter + scored: %s", d)
	}

	for _, disable := range []bool{false, true} {
		cfg := core.DefaultConfig(1)
		cfg.MaxSegments = 4
		cfg.Scored = true
		cfg.DisablePrefilter = disable
		r, err := core.Run(n, input, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.CheckCorrect(); err != nil {
			t.Fatalf("DisablePrefilter=%v: %v", disable, err)
		}
		if d := diffReports(want, r.Reports); d != "" {
			t.Fatalf("DisablePrefilter=%v: %s", disable, d)
		}
	}
}

// TestScoredShrinkKeepsWeights: shrinking a scored failure keeps Weights
// parallel to Edges through state and edge removal, and shrinks toward the
// unscored/zero-weight form when scores are irrelevant to the failure.
func TestScoredShrinkKeepsWeights(t *testing.T) {
	c, err := NewCase(5)
	if err != nil {
		t.Fatal(err)
	}
	spec := c.Spec.clone()
	if !spec.scored() {
		spec.Weights = make([]int32, len(spec.Edges))
		for i := range spec.Weights {
			spec.Weights[i] = int32(i%5 - 2)
		}
	}
	// Score-independent synthetic bug: fails whenever the spec still builds
	// and the input has >= 1 byte. The shrinker should strip the weights.
	fails := func(s *NFASpec, in []byte) bool {
		if s.scored() && len(s.Weights) != len(s.Edges) {
			t.Fatalf("shrinker produced %d weights for %d edges: %s", len(s.Weights), len(s.Edges), s)
		}
		if _, err := s.Build(); err != nil {
			return false
		}
		return len(in) >= 1
	}
	shrunk, input := Shrink(spec, c.Input, fails)
	if !fails(shrunk, input) {
		t.Fatal("shrunk pair no longer fails")
	}
	if shrunk.scored() {
		t.Errorf("score-independent failure kept weights: %s", shrunk)
	}

	// Score-dependent synthetic bug: fails only while some weight is
	// negative. The shrinker must keep the spec scored.
	specNeg := spec.clone()
	hasNeg := false
	for _, w := range specNeg.Weights {
		if w < 0 {
			hasNeg = true
		}
	}
	if !hasNeg && len(specNeg.Weights) > 0 {
		specNeg.Weights[0] = -1
	}
	failsNeg := func(s *NFASpec, in []byte) bool {
		if _, err := s.Build(); err != nil {
			return false
		}
		for _, w := range s.Weights {
			if w < 0 {
				return true
			}
		}
		return false
	}
	shrunkNeg, _ := Shrink(specNeg, c.Input, failsNeg)
	if !shrunkNeg.scored() {
		t.Errorf("score-dependent failure lost its weights: %s", shrunkNeg)
	}
	if len(shrunkNeg.Weights) != len(shrunkNeg.Edges) {
		t.Errorf("shrunk weights out of sync: %d weights, %d edges", len(shrunkNeg.Weights), len(shrunkNeg.Edges))
	}
}
