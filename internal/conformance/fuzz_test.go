package conformance

import (
	"math/rand"
	"testing"
)

// FuzzScoredEquivalence drives the scored-match invariant with
// fuzzer-chosen generator seeds and raw inputs: the seed deterministically
// generates an automaton (a third of seeds scored; forceScore weights the
// rest, so the scored paths are always exercised) and the fuzzed input runs
// through every scored execution path — all engine backends, chunked
// streaming, scored boundary resume, and the PAP parallelization under both
// schedulers and both modes — which must agree with the scored oracle
// score for score.
func FuzzScoredEquivalence(f *testing.F) {
	f.Add(int64(1), []byte("abcdabcdabcdabcd"), true)
	f.Add(int64(42), []byte("aaaaaaaazzzzbbbbccc"), false)
	f.Add(int64(-7), []byte("abababababababab"), true)
	f.Add(int64(1234), []byte("zzzzzzzzccccddddz"), false)
	f.Fuzz(func(t *testing.T, seed int64, input []byte, forceScore bool) {
		if len(input) == 0 || len(input) > 512 {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		spec := RandomSpec(rng)
		if forceScore && !spec.scored() && len(spec.Edges) > 0 {
			spec.Weights = make([]int32, len(spec.Edges))
			for i := range spec.Weights {
				spec.Weights[i] = int32(rng.Intn(11) - 5)
			}
		}
		n, err := spec.Build()
		if err != nil {
			t.Fatalf("generated spec failed to build: %v (%s)", err, spec)
		}
		c := &Case{Seed: seed, Spec: spec, NFA: n, Input: input}
		if inv, d := checkScored(c, rand.New(rand.NewSource(seed^0x5c07ed))); inv != "" {
			t.Fatalf("invariant %s violated: %s\n  automaton: %s\n  input (%d bytes): %q",
				inv, d, spec, len(input), input)
		}
	})
}
