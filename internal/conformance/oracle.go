// Package conformance is the repository's differential-testing subsystem:
// a deliberately naive reference oracle, seeded generators for random
// homogeneous NFAs and adversarial inputs, and a metamorphic invariant
// harness asserting that every execution path of the library — sequential
// runs on all three engines, boundary-recording runs, independently
// re-seeded segment runs for several segment counts, chunked streaming, and
// the full PAP parallelization under its ablation toggles — produces
// exactly the oracle's report set.
//
// The design follows the standard practice for keeping parallel matchers
// honest: PaREM validates parallel DFA runs against sequential matching,
// and the Simultaneous Finite Automata work proves segment-count invariance
// as its core correctness property. Here both are enforced mechanically
// over randomized cases, and failures shrink to a minimal NFA + input with
// a one-line replayable seed.
//
// Entry points: Run (the sweep), CheckCase (one case), NewCase
// (deterministic generation from a seed). See docs/TESTING.md.
package conformance

import (
	"sort"

	"pap/internal/engine"
	"pap/internal/nfa"
)

// Oracle executes an NFA by direct per-symbol simulation over plain maps:
// no match tables, no frontier lists, no merging, no speculation, nothing
// shared with the production engines beyond the NFA accessors. It exists to
// be obviously correct, not fast.
//
// Semantics (the AP symbol cycle): at step t every enabled state whose
// label matches input[t] fires — reporting if it is a reporting state and
// enabling its successors for step t+1. Start-of-data states are enabled at
// step 0 only; all-input states are enabled at every step.
type Oracle struct {
	n *nfa.NFA
	// enabled is the next step's enabled set, excluding all-input states
	// (they are added at every step when the oracle fires states).
	enabled map[nfa.StateID]bool
	off     int64
}

// NewOracle returns an oracle at the automaton's start configuration.
func NewOracle(n *nfa.NFA) *Oracle {
	o := &Oracle{n: n, enabled: make(map[nfa.StateID]bool)}
	for _, q := range n.StartStates() {
		o.enabled[q] = true
	}
	return o
}

// Reset replaces the enabled set (all-input states are implicit and may be
// included or not; they are ignored) and rewinds nothing else.
func (o *Oracle) Reset(seed []nfa.StateID) {
	o.enabled = make(map[nfa.StateID]bool)
	for _, q := range seed {
		o.enabled[q] = true
	}
}

// Step consumes one symbol, appending any report events to dst.
func (o *Oracle) Step(sym byte, dst []engine.Report) []engine.Report {
	next := make(map[nfa.StateID]bool)
	fire := func(q nfa.StateID) {
		st := o.n.State(q)
		if !st.Label.Test(sym) {
			return
		}
		if st.Flags&nfa.Report != 0 {
			dst = append(dst, engine.Report{Offset: o.off, State: q, Code: st.ReportCode})
		}
		for _, c := range o.n.Succ(q) {
			next[c] = true
		}
	}
	for q := range o.enabled {
		fire(q)
	}
	seen := o.enabled
	for _, q := range o.n.AllInputStates() {
		if !seen[q] { // don't fire a state twice in one step
			fire(q)
		}
	}
	o.enabled = next
	o.off++
	return dst
}

// Enabled returns the currently enabled states excluding all-input states,
// sorted ascending — the canonical frontier the engines must agree with.
func (o *Oracle) Enabled() []nfa.StateID {
	isAll := make(map[nfa.StateID]bool)
	for _, q := range o.n.AllInputStates() {
		isAll[q] = true
	}
	var out []nfa.StateID
	for q := range o.enabled {
		if !isAll[q] {
			out = append(out, q)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OracleRun simulates the whole input and returns the canonical
// (offset, state)-deduplicated, sorted report set.
func OracleRun(n *nfa.NFA, input []byte) []engine.Report {
	rs, _ := OracleRunCuts(n, input, nil)
	return rs
}

// OracleRunCuts is OracleRun, additionally recording the enabled set
// (excluding all-input states, sorted) at each cut position. cuts must be
// strictly increasing, in (0, len(input)].
func OracleRunCuts(n *nfa.NFA, input []byte, cuts []int) ([]engine.Report, [][]nfa.StateID) {
	o := NewOracle(n)
	var rs []engine.Report
	fronts := make([][]nfa.StateID, 0, len(cuts))
	ci := 0
	for i := range input {
		rs = o.Step(input[i], rs)
		if ci < len(cuts) && cuts[ci] == i+1 {
			fronts = append(fronts, o.Enabled())
			ci++
		}
	}
	return engine.DedupeReports(rs), fronts
}
