// Package conformance is the repository's differential-testing subsystem:
// a deliberately naive reference oracle, seeded generators for random
// homogeneous NFAs and adversarial inputs, and a metamorphic invariant
// harness asserting that every execution path of the library — sequential
// runs on all three engines, boundary-recording runs, independently
// re-seeded segment runs for several segment counts, chunked streaming, and
// the full PAP parallelization under its ablation toggles — produces
// exactly the oracle's report set.
//
// The design follows the standard practice for keeping parallel matchers
// honest: PaREM validates parallel DFA runs against sequential matching,
// and the Simultaneous Finite Automata work proves segment-count invariance
// as its core correctness property. Here both are enforced mechanically
// over randomized cases, and failures shrink to a minimal NFA + input with
// a one-line replayable seed.
//
// Entry points: Run (the sweep), CheckCase (one case), NewCase
// (deterministic generation from a seed). See docs/TESTING.md.
package conformance

import (
	"sort"

	"pap/internal/engine"
	"pap/internal/nfa"
)

// Oracle executes an NFA by direct per-symbol simulation over plain maps:
// no match tables, no frontier lists, no merging, no speculation, nothing
// shared with the production engines beyond the NFA accessors. It exists to
// be obviously correct, not fast.
//
// Semantics (the AP symbol cycle): at step t every enabled state whose
// label matches input[t] fires — reporting if it is a reporting state and
// enabling its successors for step t+1. Start-of-data states are enabled at
// step 0 only; all-input states are enabled at every step.
//
// The oracle also tracks max-plus path scores unconditionally (it is built
// to be obviously correct, not fast): a firing state contributes its score
// plus the edge weight to each successor, successors reached along several
// paths keep the maximum, all-input states always fire with score 0, and a
// report event carries the firing state's score. On unscored automata every
// weight is zero, so every score is zero — identical to before.
type Oracle struct {
	n *nfa.NFA
	// enabled is the next step's enabled set, excluding all-input states
	// (they are added at every step when the oracle fires states).
	enabled map[nfa.StateID]bool
	// scores holds the best-path score of each enabled state. Entries for
	// all-input states are ignored: they score 0 by definition.
	scores map[nfa.StateID]int64
	isAll  map[nfa.StateID]bool
	off    int64
}

// NewOracle returns an oracle at the automaton's start configuration.
func NewOracle(n *nfa.NFA) *Oracle {
	o := &Oracle{
		n:       n,
		enabled: make(map[nfa.StateID]bool),
		scores:  make(map[nfa.StateID]int64),
		isAll:   make(map[nfa.StateID]bool),
	}
	for _, q := range n.AllInputStates() {
		o.isAll[q] = true
	}
	for _, q := range n.StartStates() {
		o.enabled[q] = true
	}
	return o
}

// Reset replaces the enabled set (all-input states are implicit and may be
// included or not; they are ignored) and rewinds nothing else. All seed
// states score 0.
func (o *Oracle) Reset(seed []nfa.StateID) {
	o.ResetScored(seed, nil)
}

// ResetScored is Reset with per-seed entry scores parallel to seed (nil:
// all zero), mirroring engine.Scorer.ResetScored: duplicate seed states
// keep their maximum score.
func (o *Oracle) ResetScored(seed []nfa.StateID, scores []int64) {
	o.enabled = make(map[nfa.StateID]bool)
	o.scores = make(map[nfa.StateID]int64)
	for i, q := range seed {
		var sc int64
		if scores != nil {
			sc = scores[i]
		}
		if !o.enabled[q] || sc > o.scores[q] {
			o.scores[q] = sc
		}
		o.enabled[q] = true
	}
}

// Step consumes one symbol, appending any report events to dst.
func (o *Oracle) Step(sym byte, dst []engine.Report) []engine.Report {
	next := make(map[nfa.StateID]bool)
	nextScores := make(map[nfa.StateID]int64)
	fire := func(q nfa.StateID, base int64) {
		st := o.n.State(q)
		if !st.Label.Test(sym) {
			return
		}
		if st.Flags&nfa.Report != 0 {
			dst = append(dst, engine.Report{Offset: o.off, State: q, Code: st.ReportCode, Score: base})
		}
		w := o.n.SuccScores(q)
		for i, c := range o.n.Succ(q) {
			cand := base
			if w != nil {
				cand += int64(w[i])
			}
			if !next[c] || cand > nextScores[c] {
				nextScores[c] = cand
			}
			next[c] = true
		}
	}
	for q := range o.enabled {
		base := int64(0)
		if !o.isAll[q] {
			base = o.scores[q]
		}
		fire(q, base)
	}
	seen := o.enabled
	for _, q := range o.n.AllInputStates() {
		if !seen[q] { // don't fire a state twice in one step
			fire(q, 0)
		}
	}
	o.enabled, o.scores = next, nextScores
	o.off++
	return dst
}

// Enabled returns the currently enabled states excluding all-input states,
// sorted ascending — the canonical frontier the engines must agree with.
func (o *Oracle) Enabled() []nfa.StateID {
	isAll := make(map[nfa.StateID]bool)
	for _, q := range o.n.AllInputStates() {
		isAll[q] = true
	}
	var out []nfa.StateID
	for q := range o.enabled {
		if !isAll[q] {
			out = append(out, q)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EnabledScores returns Enabled() together with each state's best-path
// score, parallel to it — the canonical scored frontier a boundary-recording
// scored run must agree with.
func (o *Oracle) EnabledScores() ([]nfa.StateID, []int64) {
	ids := o.Enabled()
	scores := make([]int64, len(ids))
	for i, q := range ids {
		scores[i] = o.scores[q]
	}
	return ids, scores
}

// OracleRun simulates the whole input and returns the canonical
// (offset, state)-deduplicated, sorted report set, with scores stripped —
// the reference for unscored execution paths (which report score 0 even on
// scored automata, because score tracking is opt-in).
func OracleRun(n *nfa.NFA, input []byte) []engine.Report {
	rs, _ := OracleRunCuts(n, input, nil)
	return rs
}

// OracleRunScored is OracleRun with the max-plus report scores kept — the
// reference for score-tracking execution paths.
func OracleRunScored(n *nfa.NFA, input []byte) []engine.Report {
	rs, _, _ := OracleRunScoredCuts(n, input, nil)
	return rs
}

// OracleRunCuts is OracleRun, additionally recording the enabled set
// (excluding all-input states, sorted) at each cut position. cuts must be
// strictly increasing, in (0, len(input)].
func OracleRunCuts(n *nfa.NFA, input []byte, cuts []int) ([]engine.Report, [][]nfa.StateID) {
	rs, fronts, _ := OracleRunScoredCuts(n, input, cuts)
	for i := range rs {
		rs[i].Score = 0
	}
	return rs, fronts
}

// OracleRunScoredCuts is OracleRunCuts with scores kept, additionally
// recording each cut frontier's best-path scores parallel to its enabled
// set — the reference for scored boundary recording and segment re-seeding.
func OracleRunScoredCuts(n *nfa.NFA, input []byte, cuts []int) ([]engine.Report, [][]nfa.StateID, [][]int64) {
	o := NewOracle(n)
	var rs []engine.Report
	fronts := make([][]nfa.StateID, 0, len(cuts))
	fscores := make([][]int64, 0, len(cuts))
	ci := 0
	for i := range input {
		rs = o.Step(input[i], rs)
		if ci < len(cuts) && cuts[ci] == i+1 {
			ids, sc := o.EnabledScores()
			fronts = append(fronts, ids)
			fscores = append(fscores, sc)
			ci++
		}
	}
	return engine.DedupeReports(rs), fronts, fscores
}
