package apnet

import (
	"testing"

	"pap/internal/nfa"
)

// steChain builds a linear STE chain for a literal and returns first/last.
func steChain(b *Builder, word string, start StartKind) (ElementID, ElementID) {
	var first, prev ElementID = -1, -1
	for i := 0; i < len(word); i++ {
		kind := NoStart
		if i == 0 {
			kind = start
		}
		id := b.AddSTE(nfa.ClassOf(word[i]), kind)
		if first == -1 {
			first = id
		}
		if prev != -1 {
			b.Activate(prev, id)
		}
		prev = id
	}
	return first, prev
}

func offsets(rs []Report) []int64 {
	var out []int64
	for _, r := range rs {
		out = append(out, r.Offset)
	}
	return out
}

func TestPureSTENetwork(t *testing.T) {
	b := NewBuilder("abc")
	_, last := steChain(b, "abc", AllInput)
	b.SetReport(last, 3)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rs := Run(n, []byte("xabcabx abc"))
	if len(rs) != 2 || rs[0].Offset != 3 || rs[1].Offset != 10 || rs[0].Code != 3 {
		t.Fatalf("reports = %+v", rs)
	}
}

// TestCounterThreshold: report only after the pattern occurred 3 times —
// the canonical AP counter use (the paper's Levenshtein/Hamming rulesets
// use counters this way for thresholded matching).
func TestCounterThreshold(t *testing.T) {
	b := NewBuilder("count3")
	_, last := steChain(b, "ab", AllInput)
	c := b.AddCounter(3, CountPulse)
	b.ConnectCount(last, c)
	b.SetReport(c, 1)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// "ab" ends at offsets 1, 4, 7, 10; the counter fires on the 3rd.
	rs := Run(n, []byte("abxabxabxab"))
	if len(rs) != 2 {
		t.Fatalf("reports = %+v (want pulses at 3rd and saturated 4th)", rs)
	}
	if rs[0].Offset != 7 {
		t.Fatalf("first counter fire at %d, want 7", rs[0].Offset)
	}
}

func TestCounterLatch(t *testing.T) {
	b := NewBuilder("latch")
	_, last := steChain(b, "a", AllInput)
	c := b.AddCounter(2, CountLatch)
	b.ConnectCount(last, c)
	b.SetReport(c, 0)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// 'a' at 0,1,3; latch reaches 2 at offset 1 and stays high every cycle
	// after (output persists without further count inputs).
	rs := Run(n, []byte("aaxa"))
	got := offsets(rs)
	want := []int64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("latch reports at %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("latch reports at %v, want %v", got, want)
		}
	}
}

func TestCounterReset(t *testing.T) {
	b := NewBuilder("reset")
	_, a := steChain(b, "a", AllInput)
	_, r := steChain(b, "z", AllInput)
	c := b.AddCounter(2, CountPulse)
	b.ConnectCount(a, c)
	b.ConnectReset(r, c)
	b.SetReport(c, 0)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// a a -> fires at 1; z resets; a a -> fires again at 5.
	rs := Run(n, []byte("aazaa"))
	got := offsets(rs)
	if len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("reports at %v, want [1 4]", got)
	}
}

func TestGateAND(t *testing.T) {
	// Report when both 'a'-chain and 'b'-chain fire in the same cycle:
	// only possible when... two STEs matching different symbols can't fire
	// the same cycle, so use classes that overlap on 'x'.
	b := NewBuilder("and")
	s1 := b.AddSTE(nfa.ClassOf('x', 'a'), AllInput)
	s2 := b.AddSTE(nfa.ClassOf('x', 'b'), AllInput)
	g := b.AddGate(GateAND)
	b.ConnectGate(s1, g)
	b.ConnectGate(s2, g)
	b.SetReport(g, 9)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rs := Run(n, []byte("abxb"))
	if len(rs) != 1 || rs[0].Offset != 2 || rs[0].Code != 9 {
		t.Fatalf("reports = %+v, want one at offset 2", rs)
	}
}

func TestGateNOTAndActivation(t *testing.T) {
	// 'a' followed by a non-'b' symbol: NOT gate output activates nothing
	// here, but gating a report through an inverter exercises combinational
	// NOT semantics. (NOT is high whenever its input is low, including at
	// offset 0.)
	b := NewBuilder("not")
	s := b.AddSTE(nfa.ClassOf('b'), AllInput)
	g := b.AddGate(GateNOT)
	b.ConnectGate(s, g)
	b.SetReport(g, 0)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rs := Run(n, []byte("ab"))
	// offset 0: 'a' -> s low -> NOT high (report); offset 1: 'b' -> s high -> low.
	if len(rs) != 1 || rs[0].Offset != 0 {
		t.Fatalf("reports = %+v", rs)
	}
}

func TestGateChainTopological(t *testing.T) {
	// g2 = NOT(g1), g1 = OR(s): order must evaluate g1 before g2.
	b := NewBuilder("chain")
	s := b.AddSTE(nfa.ClassOf('a'), AllInput)
	g1 := b.AddGate(GateOR)
	b.ConnectGate(s, g1)
	g2 := b.AddGate(GateNOT)
	b.ConnectGate(g1, g2)
	b.SetReport(g2, 0)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rs := Run(n, []byte("ab"))
	if len(rs) != 1 || rs[0].Offset != 1 {
		t.Fatalf("reports = %+v, want one at offset 1", rs)
	}
}

func TestCounterGatesSTEActivation(t *testing.T) {
	// The counter's output enables a downstream STE: "after two 'a's, the
	// next 'z' reports" — stateful sequence logic no pure NFA state count
	// bound by the pattern length can express as compactly.
	b := NewBuilder("gateSTE")
	_, a := steChain(b, "a", AllInput)
	c := b.AddCounter(2, CountLatch)
	b.ConnectCount(a, c)
	z := b.AddSTE(nfa.ClassOf('z'), NoStart)
	b.Activate(c, z)
	b.SetReport(z, 7)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if rs := Run(n, []byte("azaaz")); len(rs) != 1 || rs[0].Offset != 4 {
		t.Fatalf("reports = %+v, want one at offset 4", rs)
	}
}

func TestBuildErrors(t *testing.T) {
	// Gate loop.
	b := NewBuilder("loop")
	s := b.AddSTE(nfa.ClassOf('a'), AllInput)
	g1 := b.AddGate(GateOR)
	g2 := b.AddGate(GateOR)
	b.ConnectGate(s, g1)
	b.ConnectGate(g2, g1)
	b.ConnectGate(g1, g2)
	if _, err := b.Build(); err == nil {
		t.Error("combinational loop accepted")
	}

	// Gate with no inputs.
	b2 := NewBuilder("noin")
	b2.AddSTE(nfa.ClassOf('a'), AllInput)
	b2.AddGate(GateOR)
	if _, err := b2.Build(); err == nil {
		t.Error("input-less gate accepted")
	}

	// NOT with two inputs.
	b3 := NewBuilder("not2")
	s3 := b3.AddSTE(nfa.ClassOf('a'), AllInput)
	g3 := b3.AddGate(GateNOT)
	b3.ConnectGate(s3, g3)
	b3.ConnectGate(s3, g3)
	if _, err := b3.Build(); err == nil {
		t.Error("two-input NOT accepted")
	}

	// Counter without count inputs.
	b4 := NewBuilder("nocnt")
	b4.AddSTE(nfa.ClassOf('a'), AllInput)
	b4.AddCounter(2, CountPulse)
	if _, err := b4.Build(); err == nil {
		t.Error("count-less counter accepted")
	}

	// Zero counter target.
	b5 := NewBuilder("zero")
	b5.AddSTE(nfa.ClassOf('a'), AllInput)
	b5.AddCounter(0, CountPulse)
	if _, err := b5.Build(); err == nil {
		t.Error("zero target accepted")
	}

	// No start STEs.
	b6 := NewBuilder("nostart")
	b6.AddSTE(nfa.ClassOf('a'), NoStart)
	if _, err := b6.Build(); err == nil {
		t.Error("no-start network accepted")
	}

	// Activate a non-STE.
	b7 := NewBuilder("badact")
	s7 := b7.AddSTE(nfa.ClassOf('a'), AllInput)
	g7 := b7.AddGate(GateOR)
	b7.ConnectGate(s7, g7)
	b7.Activate(s7, g7)
	if _, err := b7.Build(); err == nil {
		t.Error("activate-to-gate accepted")
	}

	// Wrong element kinds on counter ports.
	b8 := NewBuilder("badport")
	s8 := b8.AddSTE(nfa.ClassOf('a'), AllInput)
	b8.ConnectCount(s8, s8)
	if _, err := b8.Build(); err == nil {
		t.Error("ConnectCount to STE accepted")
	}

	// Empty network.
	if _, err := NewBuilder("empty").Build(); err == nil {
		t.Error("empty network accepted")
	}

	// Out-of-range id.
	b9 := NewBuilder("oob")
	s9 := b9.AddSTE(nfa.ClassOf('a'), AllInput)
	b9.Activate(s9, s9+5)
	if _, err := b9.Build(); err == nil {
		t.Error("out-of-range id accepted")
	}
}

func TestNetworkStats(t *testing.T) {
	b := NewBuilder("stats")
	s := b.AddSTE(nfa.ClassOf('a'), AllInput)
	c := b.AddCounter(2, CountPulse)
	b.ConnectCount(s, c)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if n.Len() != 2 || n.Counters() != 1 || n.Name() != "stats" {
		t.Fatalf("stats: len=%d counters=%d name=%q", n.Len(), n.Counters(), n.Name())
	}
}

func TestEngineReset(t *testing.T) {
	b := NewBuilder("reset")
	_, a := steChain(b, "a", AllInput)
	c := b.AddCounter(2, CountPulse)
	b.ConnectCount(a, c)
	b.SetReport(c, 0)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(n)
	var count int
	emit := func(Report) { count++ }
	for i, sym := range []byte("aa") {
		e.Step(sym, int64(i), emit)
	}
	if count != 1 {
		t.Fatalf("pre-reset reports = %d", count)
	}
	e.Reset()
	count = 0
	for i, sym := range []byte("a") {
		e.Step(sym, int64(i), emit)
	}
	if count != 0 {
		t.Fatalf("counter state survived Reset: %d reports", count)
	}
}
