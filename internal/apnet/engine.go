package apnet

// Engine executes an element network sequentially, one symbol per cycle.
// Not safe for concurrent use.
type Engine struct {
	n *Network
	// enabled[e]: STE e is enabled for the current cycle.
	enabled []bool
	// nextEnabled is built during Step.
	nextEnabled []bool
	// out[e]: element e's output signal in the current cycle.
	out []bool
	// count[e]: counter state.
	count []uint32
	// reached[e]: latch-mode counter has hit its target.
	reached []bool
}

// Report is one output event of the network.
type Report struct {
	Offset  int64
	Element ElementID
	Code    int32
}

// NewEngine returns an engine at the network's start configuration.
func NewEngine(n *Network) *Engine {
	e := &Engine{
		n:           n,
		enabled:     make([]bool, n.Len()),
		nextEnabled: make([]bool, n.Len()),
		out:         make([]bool, n.Len()),
		count:       make([]uint32, n.Len()),
		reached:     make([]bool, n.Len()),
	}
	e.Reset()
	return e
}

// Reset returns to the start configuration: start-of-data and all-input
// STEs enabled, counters cleared.
func (e *Engine) Reset() {
	for i := range e.enabled {
		el := &e.n.elems[i]
		e.enabled[i] = el.kind == KindSTE && el.start != NoStart
		e.count[i] = 0
		e.reached[i] = false
	}
}

// Step consumes one input symbol; emit (may be nil) receives the cycle's
// report events.
func (e *Engine) Step(sym byte, offset int64, emit func(Report)) {
	n := e.n
	// Phase 1: STE firing.
	for i := range n.elems {
		el := &n.elems[i]
		switch el.kind {
		case KindSTE:
			e.out[i] = e.enabled[i] && el.label.Test(sym)
		default:
			e.out[i] = false
		}
	}
	// Phase 2a: counters. A counter's output this cycle reflects this
	// cycle's count input (it can reach the target "live"). Inputs to
	// counters are STE outputs or other counters' previous-latch state;
	// gates may also feed counters, but gate evaluation may in turn read
	// counter outputs, so we evaluate counters fed only by STEs first,
	// then gates in topological order, then counters fed by gates.
	gateFed := make(map[ElementID]bool)
	for i := range n.elems {
		el := &n.elems[i]
		if el.kind != KindCounter {
			continue
		}
		fed := false
		for _, in := range append(append([]ElementID{}, el.countInputs...), el.resetInputs...) {
			if n.elems[in].kind == KindGate {
				fed = true
			}
		}
		if fed {
			gateFed[ElementID(i)] = true
			continue
		}
		e.stepCounter(ElementID(i))
	}
	// Phase 2b: gates in topological order (inputs: STE outputs, counter
	// outputs computed above, earlier gates).
	for _, g := range n.gateOrder {
		el := &n.elems[g]
		high := 0
		for _, in := range el.gateInputs {
			if e.out[in] {
				high++
			}
		}
		switch el.op {
		case GateOR:
			e.out[g] = high > 0
		case GateAND:
			e.out[g] = high == len(el.gateInputs)
		case GateNOT:
			e.out[g] = high == 0
		case GateNOR:
			e.out[g] = high == 0
		case GateNAND:
			e.out[g] = high < len(el.gateInputs)
		}
	}
	// Phase 2c: gate-fed counters.
	for i := range n.elems {
		if gateFed[ElementID(i)] {
			e.stepCounter(ElementID(i))
		}
	}
	// Phase 3: reports and next-cycle activation.
	for i := range e.nextEnabled {
		e.nextEnabled[i] = false
	}
	for i := range n.elems {
		if !e.out[i] {
			continue
		}
		el := &n.elems[i]
		if el.report && emit != nil {
			emit(Report{Offset: offset, Element: ElementID(i), Code: el.reportCode})
		}
		for _, t := range el.activate {
			e.nextEnabled[t] = true
		}
	}
	// All-input STEs re-enable every cycle.
	for i := range n.elems {
		el := &n.elems[i]
		if el.kind == KindSTE && el.start == AllInput {
			e.nextEnabled[i] = true
		}
	}
	e.enabled, e.nextEnabled = e.nextEnabled, e.enabled
}

// stepCounter updates one counter's state for this cycle and sets its
// output signal.
func (e *Engine) stepCounter(id ElementID) {
	el := &e.n.elems[id]
	cnt := false
	for _, in := range el.countInputs {
		if e.out[in] {
			cnt = true
			break
		}
	}
	rst := false
	for _, in := range el.resetInputs {
		if e.out[in] {
			rst = true
			break
		}
	}
	switch {
	case rst:
		e.count[id] = 0
		e.reached[id] = false
		e.out[id] = false
	case cnt:
		if e.count[id] < el.target {
			e.count[id]++
		}
		hit := e.count[id] >= el.target
		if hit {
			e.reached[id] = true
		}
		if el.mode == CountLatch {
			e.out[id] = e.reached[id]
		} else {
			e.out[id] = hit
		}
	default:
		if el.mode == CountLatch {
			e.out[id] = e.reached[id]
		} else {
			e.out[id] = false
		}
	}
}

// Run executes the network over the whole input and returns all reports.
func Run(n *Network, input []byte) []Report {
	e := NewEngine(n)
	var out []Report
	for i, sym := range input {
		e.Step(sym, int64(i), func(r Report) { out = append(out, r) })
	}
	return out
}
