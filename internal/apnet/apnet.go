// Package apnet models the AP's full element network: STEs augmented with
// the counter and programmable boolean elements the D480 provides (§2.1 of
// the paper: 768 counters and 2304 boolean elements per device "to augment
// pattern matching functionality"). The pure-STE subset is what packages
// nfa/engine/core execute and parallelize; counters and booleans are
// supported here for *sequential* matching only — their stateful, non-
// monotone semantics break the additivity PAP's enumeration relies on, so
// parallel composition would be unsound (see docs/CORRECTNESS.md).
//
// Cycle semantics (one 8-bit symbol per cycle):
//
//  1. Every enabled STE whose symbol set contains the input fires.
//  2. Signals propagate combinationally through boolean gates (the gate
//     graph must be acyclic); a counter's output is high in the same cycle
//     its count reaches the target.
//  3. Elements with a high output activate their targets' enables for the
//     next cycle, and reporting elements emit a report event.
//  4. Counters latch: on a high count input the count increments at the
//     end of the cycle; a high reset input clears it (reset wins). In
//     Latch mode the output stays high once reached; in Pulse mode it is
//     high only in cycles where the count input arrives at/past target.
package apnet

import (
	"fmt"

	"pap/internal/nfa"
)

// ElementID identifies an element within one Network.
type ElementID int32

// Kind discriminates element types.
type Kind uint8

const (
	// KindSTE is a state-transition element (symbol matcher).
	KindSTE Kind = iota
	// KindCounter counts activations of its count port up to a target.
	KindCounter
	// KindGate is a programmable boolean element.
	KindGate
)

// GateOp selects a boolean element's function.
type GateOp uint8

const (
	GateOR GateOp = iota
	GateAND
	GateNOT // single input
	GateNOR
	GateNAND
)

// CounterMode selects output behaviour at the target count.
type CounterMode uint8

const (
	// CountLatch: output stays high once the target is reached (until
	// reset).
	CountLatch CounterMode = iota
	// CountPulse: output is high only in cycles whose count input lands
	// at or past the target.
	CountPulse
)

// StartKind mirrors the NFA start flags for STEs.
type StartKind uint8

const (
	NoStart StartKind = iota
	StartOfData
	AllInput
)

// element is the internal description of one node.
type element struct {
	kind Kind

	// STE fields.
	label nfa.Class
	start StartKind

	// Counter fields.
	target uint32
	mode   CounterMode

	// Gate fields.
	op GateOp

	report     bool
	reportCode int32

	// activate targets (STE enables for the next cycle).
	activate []ElementID
	// gateInputs: elements feeding this gate (combinational).
	gateInputs []ElementID
	// countInputs / resetInputs: elements feeding a counter's two ports.
	countInputs []ElementID
	resetInputs []ElementID
}

// Network is a built element network. Create with NewBuilder.
type Network struct {
	name  string
	elems []element
	// gateOrder is a topological order of gate elements.
	gateOrder []ElementID
}

// Name returns the network's name.
func (n *Network) Name() string { return n.name }

// Len returns the number of elements.
func (n *Network) Len() int { return len(n.elems) }

// Counters returns the number of counter elements (capacity checks against
// ap.CountersPerDevice are the caller's concern).
func (n *Network) Counters() int {
	c := 0
	for _, e := range n.elems {
		if e.kind == KindCounter {
			c++
		}
	}
	return c
}

// Builder incrementally constructs a Network.
type Builder struct {
	name  string
	elems []element
	err   error
}

// NewBuilder returns an empty network builder.
func NewBuilder(name string) *Builder { return &Builder{name: name} }

func (b *Builder) add(e element) ElementID {
	b.elems = append(b.elems, e)
	return ElementID(len(b.elems) - 1)
}

// AddSTE appends a state-transition element.
func (b *Builder) AddSTE(label nfa.Class, start StartKind) ElementID {
	return b.add(element{kind: KindSTE, label: label, start: start})
}

// AddCounter appends a counter with the given target count and mode.
func (b *Builder) AddCounter(target uint32, mode CounterMode) ElementID {
	if target == 0 {
		b.fail(fmt.Errorf("apnet: counter target must be >= 1"))
	}
	return b.add(element{kind: KindCounter, target: target, mode: mode})
}

// AddGate appends a boolean element.
func (b *Builder) AddGate(op GateOp) ElementID {
	return b.add(element{kind: KindGate, op: op})
}

// SetReport marks an element as reporting with the given code.
func (b *Builder) SetReport(id ElementID, code int32) {
	if !b.check(id) {
		return
	}
	b.elems[id].report = true
	b.elems[id].reportCode = code
}

// Activate wires from's output to STE to's enable (next cycle).
func (b *Builder) Activate(from, to ElementID) {
	if !b.check(from) || !b.check(to) {
		return
	}
	if b.elems[to].kind != KindSTE {
		b.fail(fmt.Errorf("apnet: activate target %d is not an STE (use ConnectGate/ConnectCount)", to))
		return
	}
	b.elems[from].activate = append(b.elems[from].activate, to)
}

// ConnectGate wires from's output into gate's input (same cycle).
func (b *Builder) ConnectGate(from, gate ElementID) {
	if !b.check(from) || !b.check(gate) {
		return
	}
	if b.elems[gate].kind != KindGate {
		b.fail(fmt.Errorf("apnet: element %d is not a gate", gate))
		return
	}
	b.elems[gate].gateInputs = append(b.elems[gate].gateInputs, from)
}

// ConnectCount wires from's output into counter's count port.
func (b *Builder) ConnectCount(from, counter ElementID) {
	b.connectCounter(from, counter, false)
}

// ConnectReset wires from's output into counter's reset port.
func (b *Builder) ConnectReset(from, counter ElementID) {
	b.connectCounter(from, counter, true)
}

func (b *Builder) connectCounter(from, counter ElementID, reset bool) {
	if !b.check(from) || !b.check(counter) {
		return
	}
	if b.elems[counter].kind != KindCounter {
		b.fail(fmt.Errorf("apnet: element %d is not a counter", counter))
		return
	}
	if reset {
		b.elems[counter].resetInputs = append(b.elems[counter].resetInputs, from)
	} else {
		b.elems[counter].countInputs = append(b.elems[counter].countInputs, from)
	}
}

func (b *Builder) check(id ElementID) bool {
	if b.err != nil {
		return false
	}
	if id < 0 || int(id) >= len(b.elems) {
		b.fail(fmt.Errorf("apnet: element id %d out of range (%d elements)", id, len(b.elems)))
		return false
	}
	return true
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Build validates and finalizes the network: gates must form a DAG (their
// combinational evaluation order is computed here), gates need inputs, NOT
// gates exactly one, and at least one STE must be a start element.
func (b *Builder) Build() (*Network, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.elems) == 0 {
		return nil, fmt.Errorf("apnet %q: no elements", b.name)
	}
	starts := 0
	for i, e := range b.elems {
		switch e.kind {
		case KindSTE:
			if e.start != NoStart {
				starts++
			}
		case KindGate:
			if len(e.gateInputs) == 0 {
				return nil, fmt.Errorf("apnet %q: gate %d has no inputs", b.name, i)
			}
			if e.op == GateNOT && len(e.gateInputs) != 1 {
				return nil, fmt.Errorf("apnet %q: NOT gate %d needs exactly one input", b.name, i)
			}
		case KindCounter:
			if len(e.countInputs) == 0 {
				return nil, fmt.Errorf("apnet %q: counter %d has no count inputs", b.name, i)
			}
		}
	}
	if starts == 0 {
		return nil, fmt.Errorf("apnet %q: no start STEs", b.name)
	}
	n := &Network{name: b.name, elems: b.elems}
	order, err := n.topoGates()
	if err != nil {
		return nil, err
	}
	n.gateOrder = order
	return n, nil
}

// topoGates orders gate elements so every gate's gate-inputs precede it;
// cycles among gates are an error (combinational loop).
func (n *Network) topoGates() ([]ElementID, error) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]uint8, len(n.elems))
	var order []ElementID
	var visit func(id ElementID) error
	visit = func(id ElementID) error {
		if n.elems[id].kind != KindGate || color[id] == black {
			return nil
		}
		if color[id] == grey {
			return fmt.Errorf("apnet %q: combinational loop through gate %d", n.name, id)
		}
		color[id] = grey
		for _, in := range n.elems[id].gateInputs {
			if err := visit(in); err != nil {
				return err
			}
		}
		color[id] = black
		order = append(order, id)
		return nil
	}
	for i := range n.elems {
		if err := visit(ElementID(i)); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Element is a read-only view of one network element, for encoders and
// inspection tools.
type Element struct {
	Kind       Kind
	Label      nfa.Class
	Start      StartKind
	Target     uint32
	Mode       CounterMode
	Op         GateOp
	Report     bool
	ReportCode int32
	Activate   []ElementID
	GateInputs []ElementID
	CountFrom  []ElementID
	ResetFrom  []ElementID
}

// Element returns the description of element id. The contained slices are
// owned by the network and must not be modified.
func (n *Network) Element(id ElementID) Element {
	e := &n.elems[id]
	return Element{
		Kind:       e.kind,
		Label:      e.label,
		Start:      e.start,
		Target:     e.target,
		Mode:       e.mode,
		Op:         e.op,
		Report:     e.report,
		ReportCode: e.reportCode,
		Activate:   e.activate,
		GateInputs: e.gateInputs,
		CountFrom:  e.countInputs,
		ResetFrom:  e.resetInputs,
	}
}
