// Package workloads synthesizes the 19 benchmark automata of the paper's
// Table 1 (the Regex suite of Becchi et al. and the ANMLZoo suite of Wadden
// et al.). The original rulesets are not redistributable (Snort snapshots,
// ClamAV databases, IBM PowerEN rules, ANMLZoo ANML files), so each
// generator reproduces its benchmark's *structural profile* — state count,
// cut-symbol range, number of connected components, placement footprint,
// alphabet, density — which is what every PAP mechanism depends on. The
// paper-reported characteristics are kept alongside each Spec so the
// Table 1 experiment can print paper-vs-generated columns.
package workloads

import (
	"fmt"
	"math/rand"

	"pap/internal/nfa"
	"pap/internal/tracegen"
)

// Spec describes one benchmark: how to build its automaton and synthesize
// its input traces, plus the characteristics Table 1 reports for it.
type Spec struct {
	Name        string
	Suite       string // "Regex" or "ANMLZoo"
	Description string

	// Paper-reported characteristics (Table 1).
	PaperStates    int
	PaperRange     int
	PaperCCs       int
	PaperHalfCores int

	// DisableCompression mirrors §4.1: ClamAV, Fermi and RandomForest skip
	// common-prefix merging because it reduces the number of connected
	// components with little state reduction. (We extend this to SPM and
	// Hamming/Levenshtein, whose generators already emit merged automata.)
	DisableCompression bool

	build func(scale float64, seed int64) (*nfa.NFA, error)
	trace func(n *nfa.NFA, size int, seed int64) []byte
}

// Build constructs the benchmark automaton. scale (0,1] scales pattern
// counts relative to the paper's full-size rulesets; common-prefix
// compression is applied unless the benchmark opts out.
func (s *Spec) Build(scale float64, seed int64) (*nfa.NFA, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("workloads: scale %v out of (0,1]", scale)
	}
	n, err := s.build(scale, seed)
	if err != nil {
		return nil, err
	}
	if !s.DisableCompression {
		n = nfa.MergeCommonPrefixes(n)
	}
	return n, nil
}

// Trace synthesizes an input trace of the given size for the built
// automaton, using the benchmark's domain alphabet and the Becchi match
// probability pm = 0.75 (§4.1).
func (s *Spec) Trace(n *nfa.NFA, size int, seed int64) []byte {
	return s.trace(n, size, seed)
}

// All returns the 19 benchmarks in Table 1 order.
func All() []*Spec {
	return []*Spec{
		dotstar03(), dotstar06(), dotstar09(),
		ranges05(), ranges1(), exactMatch(),
		bro217(), tcp(), powerEN1(),
		fermi(), randomForest(), spm(),
		dotstarZoo(), hamming(), protomata(),
		levenshtein(), entityResolution(), snort(), clamAV(),
	}
}

// Get returns the benchmark with the given name, searching Table 1 (All)
// and the non-Table-1 extras (Extras).
func Get(name string) (*Spec, error) {
	for _, s := range append(All(), Extras()...) {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// Names returns all benchmark names in Table 1 order.
func Names() []string {
	var out []string
	for _, s := range All() {
		out = append(out, s.Name)
	}
	return out
}

// ---- shared alphabets and trace helpers ----

var (
	printable = func() []byte {
		var a []byte
		for c := byte(0x20); c <= 0x7e; c++ {
			a = append(a, c)
		}
		return a
	}()
	dna    = []byte("ACGT")
	aminos = []byte("ACDEFGHIKLMNPQRSTVWY")
)

// networkTrace is the Becchi pm=0.75 trace over printable bytes with
// newline delimiters, used by the network/text benchmarks.
func networkTrace(n *nfa.NFA, size int, seed int64) []byte {
	t := tracegen.Becchi(n, size, tracegen.Config{PM: 0.75, Alphabet: printable, Seed: seed})
	return tracegen.WithDelimiters(t, '\n', 1.0/64, seed+1)
}

func alphaTrace(alphabet []byte) func(*nfa.NFA, int, int64) []byte {
	return func(n *nfa.NFA, size int, seed int64) []byte {
		return tracegen.Becchi(n, size, tracegen.Config{PM: 0.75, Alphabet: alphabet, Seed: seed})
	}
}

// scaleCount scales a paper-size count, keeping at least min.
func scaleCount(count int, scale float64, min int) int {
	n := int(float64(count) * scale)
	if n < min {
		n = min
	}
	return n
}

// randLiteral returns a random literal of length k over alphabet, escaping
// regex metacharacters.
func randLiteral(rng *rand.Rand, alphabet []byte, k int) string {
	out := make([]byte, 0, 2*k)
	for i := 0; i < k; i++ {
		c := alphabet[rng.Intn(len(alphabet))]
		switch c {
		case '.', '*', '+', '?', '(', ')', '[', ']', '{', '}', '|', '^', '$', '\\', '-':
			out = append(out, '\\', c)
		default:
			out = append(out, c)
		}
	}
	return string(out)
}

// randClass returns a random character class of width w over alphabet,
// avoiding metacharacter escaping issues by using only alphanumerics.
func randClass(rng *rand.Rand, alphabet []byte, w int) string {
	out := []byte{'['}
	seen := map[byte]bool{}
	for len(seen) < w {
		c := alphabet[rng.Intn(len(alphabet))]
		switch c {
		case ']', '\\', '^', '-':
			continue
		}
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return string(append(out, ']'))
}
