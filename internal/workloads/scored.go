package workloads

// Generators beyond Table 1: scored sequence-alignment automata (the
// scored-NFA model behind Config.Scored / pap.Match.Score) and a
// large-ruleset stress generator. They are not part of All() — the Table 1
// experiments iterate exactly the paper's 19 benchmarks — but Get resolves
// them by name, so papgen/papbench and the conformance sweeps can use them.

import (
	"math/rand"

	"pap/internal/nfa"
)

// Extras returns the non-Table-1 benchmarks: ScoredMotif and LargeRuleset.
func Extras() []*Spec {
	return []*Spec{ScoredMotif(), LargeRuleset()}
}

// BuildScoredHamming appends one (len(pattern), d) Hamming automaton whose
// transitions carry alignment scores: every edge into a match state scores
// matchScore and every edge into a mismatch state scores missScore
// (typically negative). Under max-plus scoring a report's score is then
// matchScore·(matched transitions) + missScore·(mismatched transitions)
// along the best alignment — the classical match/mismatch scoring of
// sequence alignment, restricted to substitutions. The lattice itself is
// BuildHammingLattice's.
func BuildScoredHamming(b *nfa.Builder, pattern []byte, d int, code, matchScore, missScore int32) {
	L := len(pattern)
	type node struct{ match, miss nfa.StateID }
	grid := make([][]node, L+1) // grid[i][e], i in 1..L
	for i := range grid {
		grid[i] = make([]node, d+1)
		for e := range grid[i] {
			grid[i][e] = node{match: -1, miss: -1}
		}
	}
	for i := 1; i <= L; i++ {
		sym := pattern[i-1]
		matchCls := nfa.ClassOf(sym)
		missCls := matchCls.Negate()
		for e := 0; e <= d && e <= i; e++ {
			var flags nfa.Flags
			if i == 1 {
				flags = nfa.AllInput
			}
			if e <= i-1 {
				id := b.AddState(matchCls, flags)
				if i == L {
					b.SetFlags(id, nfa.Report)
					b.SetReportCode(id, code)
				}
				grid[i][e].match = id
			}
			if e >= 1 {
				id := b.AddState(missCls, flags)
				if i == L {
					b.SetFlags(id, nfa.Report)
					b.SetReportCode(id, code)
				}
				grid[i][e].miss = id
			}
		}
	}
	connect := func(from nfa.StateID, i, e int) {
		if i > L || from < 0 {
			return
		}
		if e <= d {
			if to := grid[i][e].match; to >= 0 {
				b.AddScoredEdge(from, to, matchScore)
			}
		}
		if e+1 <= d {
			if to := grid[i][e+1].miss; to >= 0 {
				b.AddScoredEdge(from, to, missScore)
			}
		}
	}
	for i := 1; i < L; i++ {
		for e := 0; e <= d; e++ {
			connect(grid[i][e].match, i+1, e)
			connect(grid[i][e].miss, i+1, e)
		}
	}
}

// ScoredMotif is an ANMLZoo-style scored benchmark: Hamming (28,3) DNA
// motif automata like the Hamming benchmark, with +2 match / -3 mismatch
// alignment scores on every transition. A report's score separates exact
// motif hits (54 = 27·2) from 1-, 2- and 3-error alignments (49, 44, 39),
// so best-score runs rank approximate occurrences — the scored-NFA
// sequence-alignment model end to end.
func ScoredMotif() *Spec {
	return &Spec{
		Name:               "ScoredMotif",
		Suite:              "Scored",
		Description:        "Scored Hamming-distance (28,3) DNA motif automata (+2 match / -3 mismatch)",
		DisableCompression: true, // scored automata are never prefix-merged
		build: func(scale float64, seed int64) (*nfa.NFA, error) {
			rng := rand.New(rand.NewSource(seed))
			k := scaleCount(49, scale, 3)
			b := nfa.NewBuilder("ScoredMotif")
			for p := 0; p < k; p++ {
				BuildScoredHamming(b, randDNA(rng, 28), 3, int32(p), 2, -3)
			}
			return b.Build()
		},
		trace: alphaTrace(dna),
	}
}

// LargeRuleset is a planning stress generator: thousands of independent
// literal-chain components over the printable alphabet (full scale ≈ 4000
// patterns ≈ 48k states), far beyond any Table 1 ruleset's component
// count. It exercises enumeration-unit packing, SVC sizing and report
// attribution at scale; the chains themselves are trivial.
func LargeRuleset() *Spec {
	return &Spec{
		Name:        "LargeRuleset",
		Suite:       "Scored",
		Description: "4000 independent literal chains over printable bytes",
		build: func(scale float64, seed int64) (*nfa.NFA, error) {
			rng := rand.New(rand.NewSource(seed))
			k := scaleCount(4000, scale, 50)
			b := nfa.NewBuilder("LargeRuleset")
			for p := 0; p < k; p++ {
				lit := make([]byte, 8+rng.Intn(9))
				for i := range lit {
					lit[i] = printable[rng.Intn(len(printable))]
				}
				prev := nfa.StateID(-1)
				for i := 0; i < len(lit); i++ {
					var flags nfa.Flags
					if i == 0 {
						flags = nfa.AllInput
					}
					id := b.AddState(nfa.ClassOf(lit[i]), flags)
					if i == len(lit)-1 {
						b.SetFlags(id, nfa.Report)
						b.SetReportCode(id, int32(p))
					}
					if prev >= 0 {
						b.AddEdge(prev, id)
					}
					prev = id
				}
			}
			return b.Build()
		},
		trace: networkTrace,
	}
}
