package workloads

import (
	"testing"

	"pap/internal/core"
	"pap/internal/engine"
	"pap/internal/nfa"
)

func TestRegistry(t *testing.T) {
	specs := All()
	if len(specs) != 19 {
		t.Fatalf("got %d benchmarks, want 19 (Table 1)", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Fatalf("duplicate benchmark %q", s.Name)
		}
		seen[s.Name] = true
		if s.Suite != "Regex" && s.Suite != "ANMLZoo" {
			t.Errorf("%s: bad suite %q", s.Name, s.Suite)
		}
		if s.PaperStates <= 0 || s.PaperHalfCores <= 0 {
			t.Errorf("%s: missing paper characteristics", s.Name)
		}
	}
	if _, err := Get("Snort"); err != nil {
		t.Fatal(err)
	}
	if _, err := Get("NoSuch"); err == nil {
		t.Fatal("Get(NoSuch) succeeded")
	}
	if got := Names(); len(got) != 19 || got[0] != "Dotstar03" {
		t.Fatalf("Names() = %v", got)
	}
}

func TestBuildScaleValidation(t *testing.T) {
	s, _ := Get("ExactMatch")
	for _, scale := range []float64{0, -1, 1.5} {
		if _, err := s.Build(scale, 1); err == nil {
			t.Errorf("Build(scale=%v) succeeded", scale)
		}
	}
}

// TestBuildAllSmall builds every benchmark at tiny scale, checks basic
// structure, and verifies determinism.
func TestBuildAllSmall(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			n, err := s.Build(0.02, 42)
			if err != nil {
				t.Fatal(err)
			}
			if n.Len() == 0 {
				t.Fatal("empty automaton")
			}
			st := n.ComputeStats()
			if st.Reporting == 0 {
				t.Fatal("no reporting states")
			}
			if st.CCs < 1 {
				t.Fatal("no components")
			}
			// Deterministic for equal seeds.
			n2, err := s.Build(0.02, 42)
			if err != nil {
				t.Fatal(err)
			}
			if n2.Len() != n.Len() || n2.Edges() != n.Edges() {
				t.Fatalf("non-deterministic build: %d/%d vs %d/%d states/edges",
					n.Len(), n.Edges(), n2.Len(), n2.Edges())
			}
			// Trace generation works and is deterministic.
			tr := s.Trace(n, 2048, 7)
			tr2 := s.Trace(n, 2048, 7)
			if len(tr) != 2048 {
				t.Fatalf("trace length %d", len(tr))
			}
			if string(tr) != string(tr2) {
				t.Fatal("non-deterministic trace")
			}
			// The trace must exercise the automaton (pm-walk guarantee),
			// except for workloads whose reports are rare by construction.
			res := engine.Run(n, tr)
			if res.Transitions == 0 {
				t.Error("trace drives no transitions")
			}
		})
	}
}

// TestPAPCorrectOnWorkloads runs the full PAP pipeline on every benchmark
// at tiny scale and requires exact composition.
func TestPAPCorrectOnWorkloads(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			n, err := s.Build(0.02, 1)
			if err != nil {
				t.Fatal(err)
			}
			tr := s.Trace(n, 1<<14, 2)
			cfg := core.DefaultConfig(1)
			cfg.Workers = 2
			cfg.HalfCoresOverride = s.PaperHalfCores
			res, err := core.Run(n, tr, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := res.CheckCorrect(); err != nil {
				t.Fatal(err)
			}
			if res.Speedup < 1 {
				t.Fatalf("speedup %v < 1", res.Speedup)
			}
		})
	}
}

// TestStructuralShapes spot-checks the structural profiles that drive the
// paper's optimizations.
func TestStructuralShapes(t *testing.T) {
	// ExactMatch/Ranges: the newline delimiter labels no state, so its
	// range is ~0 — the "Range = 1" rows of Table 1.
	em, _ := Get("ExactMatch")
	n, err := em.Build(0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r := n.RangeSize('\n'); r != 0 {
		t.Errorf("ExactMatch range('\\n') = %d, want 0", r)
	}

	// Dotstar: .* self-loop states make the delimiter's range grow with
	// the dotstar fraction.
	d3, _ := Get("Dotstar03")
	d9, _ := Get("Dotstar09")
	n3, err := d3.Build(0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	n9, err := d9.Build(0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	if n3.RangeSize('\n') >= n9.RangeSize('\n') {
		t.Errorf("range('\\n'): Dotstar03 %d !< Dotstar09 %d",
			n3.RangeSize('\n'), n9.RangeSize('\n'))
	}

	// Hamming: almost every state is reachable on any DNA symbol.
	hm, _ := Get("Hamming")
	nh, err := hm.Build(0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r := nh.RangeSize('A'); r < nh.Len()/2 {
		t.Errorf("Hamming range('A') = %d of %d states, want > half", r, nh.Len())
	}

	// Levenshtein: few, dense components.
	lv, _ := Get("Levenshtein")
	nl, err := lv.Build(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ccs := nl.ConnectedComponents(); ccs != 4 {
		t.Errorf("Levenshtein CCs = %d, want 4", ccs)
	}

	// SPM: one component per candidate sequence.
	sp, _ := Get("SPM")
	ns, err := sp.Build(0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ccs := ns.ConnectedComponents(); ccs < 40 {
		t.Errorf("SPM CCs = %d, want ~#patterns", ccs)
	}
}

// TestHammingSemantics verifies the hand-built Hamming lattice against a
// brute-force mismatch count.
func TestHammingSemantics(t *testing.T) {
	b := nfa.NewBuilder("test")
	pattern := []byte("ACGTACGT")
	BuildHammingLattice(b, pattern, 2, 0)
	n := b.MustBuild()

	check := func(window []byte) bool {
		mism := 0
		for i := range pattern {
			if window[i] != pattern[i] {
				mism++
			}
		}
		return mism <= 2
	}
	inputs := []string{
		"ACGTACGT", // exact
		"ACGAACGT", // 1 mismatch
		"TCGAACGT", // 2
		"TCGAACGA", // 3 -> reject
		"GGGGACGT", // 4 -> reject
	}
	for _, in := range inputs {
		res := engine.Run(n, []byte(in))
		got := len(res.Reports) > 0
		want := check([]byte(in))
		if got != want {
			t.Errorf("input %s: matched=%v, want %v", in, got, want)
		}
	}
}

// TestLevenshteinSemantics verifies the homogenized Levenshtein automaton
// against a brute-force edit-distance computation over window endings.
func TestLevenshteinSemantics(t *testing.T) {
	b := nfa.NewBuilder("test")
	pattern := []byte("ACGTAC")
	if err := BuildLevenshtein(b, pattern, 1, 0); err != nil {
		t.Fatal(err)
	}
	n := b.MustBuild()

	cases := []struct {
		in   string
		want bool // some substring within edit distance 1 of pattern
	}{
		{"ACGTAC", true},  // exact
		{"ACGAC", true},   // one deletion
		{"ACGGTAC", true}, // one insertion
		{"ACGTTC", true},  // one substitution
		{"AGGTTC", false}, // two substitutions
		{"TTTTTT", false},
	}
	for _, c := range cases {
		res := engine.Run(n, []byte(c.in))
		if got := len(res.Reports) > 0; got != c.want {
			t.Errorf("input %s: matched=%v, want %v", c.in, got, c.want)
		}
	}
}
