package workloads

import (
	"fmt"
	"math/rand"
	"strings"

	"pap/internal/nfa"
	"pap/internal/tracegen"
)

// The ANMLZoo suite (Wadden et al., §4.1): diverse automata applications
// not necessarily derived from regular expressions.

var fullByteAlpha = func() []byte {
	a := make([]byte, 256)
	for i := range a {
		a[i] = byte(i)
	}
	return a
}()

func snort() *Spec {
	return &Spec{
		Name:           "Snort",
		Suite:          "ANMLZoo",
		Description:    "network intrusion detection ruleset (Snort 2.9.7.0 style)",
		PaperStates:    34480,
		PaperRange:     792,
		PaperCCs:       90,
		PaperHalfCores: 3,
		build: func(scale float64, seed int64) (*nfa.NFA, error) {
			rng := rand.New(rand.NewSource(seed))
			k := scaleCount(2000, scale, 12)
			pats := make([]string, 0, k)
			for i := 0; i < k; i++ {
				l := 12 + rng.Intn(12)
				if rng.Float64() < 0.2 {
					// pcre-style rule: content plus class/repetition tail.
					var sb strings.Builder
					sb.WriteString(randLiteral(rng, patternAlpha, l/2))
					for j := 0; j < 3; j++ {
						switch rng.Intn(4) {
						case 0:
							sb.WriteString(randClass(rng, patternAlpha, 3+rng.Intn(8)) + "+")
						case 1:
							sb.WriteString(".*" + randLiteral(rng, patternAlpha, 3))
						case 2:
							sb.WriteString(fmt.Sprintf("%s{%d,%d}",
								randClass(rng, patternAlpha, 2+rng.Intn(4)), 1+rng.Intn(2), 3+rng.Intn(3)))
						default:
							sb.WriteString(randLiteral(rng, patternAlpha, 2+rng.Intn(3)))
						}
					}
					pats = append(pats, sb.String())
				} else {
					pats = append(pats, randLiteral(rng, patternAlpha, l))
				}
			}
			return compileRules("Snort", pats)
		},
		trace: networkTrace,
	}
}

func clamAV() *Spec {
	return &Spec{
		Name:               "ClamAV",
		Suite:              "ANMLZoo",
		Description:        "virus signature database: long byte literals with wildcard gaps",
		PaperStates:        49538,
		PaperRange:         5452,
		PaperCCs:           515,
		PaperHalfCores:     3,
		DisableCompression: true, // §4.1
		build: func(scale float64, seed int64) (*nfa.NFA, error) {
			rng := rand.New(rand.NewSource(seed))
			k := scaleCount(515, scale, 6)
			pats := make([]string, 0, k)
			for i := 0; i < k; i++ {
				segments := 2 + rng.Intn(3)
				var sb strings.Builder
				for j := 0; j < segments; j++ {
					if j > 0 {
						if rng.Intn(3) == 0 {
							sb.WriteString(".*")
						} else {
							fmt.Fprintf(&sb, ".{%d}", 2+rng.Intn(14)) // fixed-distance gap
						}
					}
					segLen := 18 + rng.Intn(16)
					for b := 0; b < segLen; b++ {
						fmt.Fprintf(&sb, "\\x%02x", rng.Intn(256))
					}
				}
				pats = append(pats, sb.String())
			}
			return compileRules("ClamAV", pats)
		},
		trace: func(n *nfa.NFA, size int, seed int64) []byte {
			return tracegen.Becchi(n, size, tracegen.Config{PM: 0.75, Alphabet: fullByteAlpha, Seed: seed})
		},
	}
}

func dotstarZoo() *Spec {
	return &Spec{
		Name:           "Dotstar",
		Suite:          "ANMLZoo",
		Description:    "combined 5%/10%/20% unbounded .* rulesets",
		PaperStates:    38951,
		PaperRange:     600,
		PaperCCs:       90,
		PaperHalfCores: 2,
		build: func(scale float64, seed int64) (*nfa.NFA, error) {
			rng := rand.New(rand.NewSource(seed))
			third := scaleCount(2300, scale, 12) / 3
			var pats []string
			for _, p := range []float64{0.05, 0.10, 0.20} {
				pats = append(pats, dotstarPatterns(rng, third, 15, p)...)
			}
			return compileRules("Dotstar", pats)
		},
		trace: networkTrace,
	}
}

// hamming builds Hamming-distance automata directly as a mismatch lattice:
// state (i,e) means i pattern symbols consumed with e mismatches. Each
// lattice node appears twice in homogeneous form — once labelled with the
// pattern symbol (match) and once with its complement (mismatch).
func hamming() *Spec {
	return &Spec{
		Name:               "Hamming",
		Suite:              "ANMLZoo",
		Description:        "Hamming-distance (28,3) automata over DNA sequences",
		PaperStates:        11254,
		PaperRange:         8151,
		PaperCCs:           49,
		PaperHalfCores:     2,
		DisableCompression: true, // generator emits the merged lattice directly
		build: func(scale float64, seed int64) (*nfa.NFA, error) {
			rng := rand.New(rand.NewSource(seed))
			k := scaleCount(49, scale, 3)
			b := nfa.NewBuilder("Hamming")
			for p := 0; p < k; p++ {
				BuildHammingLattice(b, randDNA(rng, 28), 3, int32(p))
			}
			return b.Build()
		},
		trace: alphaTrace(dna),
	}
}

// BuildHammingLattice appends one (len(pattern), d) Hamming automaton.
func BuildHammingLattice(b *nfa.Builder, pattern []byte, d int, code int32) {
	L := len(pattern)
	type node struct{ match, miss nfa.StateID }
	grid := make([][]node, L+1) // grid[i][e], i in 1..L
	for i := range grid {
		grid[i] = make([]node, d+1)
		for e := range grid[i] {
			grid[i][e] = node{match: -1, miss: -1}
		}
	}
	for i := 1; i <= L; i++ {
		sym := pattern[i-1]
		matchCls := nfa.ClassOf(sym)
		missCls := matchCls.Negate()
		for e := 0; e <= d && e <= i; e++ {
			var flags nfa.Flags
			if i == 1 {
				flags = nfa.AllInput
			}
			// Match state consumes pattern[i-1] without a new error.
			if e <= i-1 { // e errors must have happened in the first i-1 symbols
				id := b.AddState(matchCls, flags)
				if i == L {
					b.SetFlags(id, nfa.Report)
					b.SetReportCode(id, code)
				}
				grid[i][e].match = id
			}
			// Mismatch state consumes anything else, adding one error.
			if e >= 1 {
				id := b.AddState(missCls, flags)
				if i == L {
					b.SetFlags(id, nfa.Report)
					b.SetReportCode(id, code)
				}
				grid[i][e].miss = id
			}
		}
	}
	connect := func(from nfa.StateID, i, e int) {
		if i > L || from < 0 {
			return
		}
		if e <= d {
			if to := grid[i][e].match; to >= 0 {
				b.AddEdge(from, to)
			}
		}
		if e+1 <= d {
			if to := grid[i][e+1].miss; to >= 0 {
				b.AddEdge(from, to)
			}
		}
	}
	for i := 1; i < L; i++ {
		for e := 0; e <= d; e++ {
			connect(grid[i][e].match, i+1, e)
			connect(grid[i][e].miss, i+1, e)
		}
	}
}

// levenshtein builds Levenshtein automata via the classical lattice with
// ε-deletions, homogenized for the AP (the construction of Roy & Aluru's
// motif-search work, which the paper draws its (24,3) configuration from).
func levenshtein() *Spec {
	return &Spec{
		Name:               "Levenshtein",
		Suite:              "ANMLZoo",
		Description:        "Levenshtein-distance (24,3) automata over DNA sequences",
		PaperStates:        2660,
		PaperRange:         2090,
		PaperCCs:           4,
		PaperHalfCores:     3,
		DisableCompression: true, // lattice is already minimal for our purposes
		build: func(scale float64, seed int64) (*nfa.NFA, error) {
			rng := rand.New(rand.NewSource(seed))
			k := scaleCount(4, scale, 2)
			b := nfa.NewBuilder("Levenshtein")
			for p := 0; p < k; p++ {
				if err := BuildLevenshtein(b, randDNA(rng, 24), 3, int32(p)); err != nil {
					return nil, err
				}
			}
			return b.Build()
		},
		trace: alphaTrace(dna),
	}
}

// BuildLevenshtein appends one (len(pattern), d) Levenshtein automaton.
func BuildLevenshtein(b *nfa.Builder, pattern []byte, d int, code int32) error {
	L := len(pattern)
	c := nfa.NewClassical(fmt.Sprintf("lev-%d", code))
	grid := make([][]int, L+1)
	for i := range grid {
		grid[i] = make([]int, d+1)
		for e := range grid[i] {
			grid[i][e] = c.AddState()
		}
	}
	c.SetStart(grid[0][0])
	for e := 0; e <= d; e++ {
		c.SetAccept(grid[L][e], code)
	}
	anyCls := nfa.AnyClass()
	for i := 0; i <= L; i++ {
		for e := 0; e <= d; e++ {
			if i < L {
				// Match.
				c.AddEdge(grid[i][e], grid[i+1][e], nfa.ClassOf(pattern[i]))
				if e < d {
					// Substitution and deletion.
					c.AddEdge(grid[i][e], grid[i+1][e+1], anyCls)
					c.AddEps(grid[i][e], grid[i+1][e+1])
				}
			}
			if e < d {
				// Insertion.
				c.AddEdge(grid[i][e], grid[i][e+1], anyCls)
			}
		}
	}
	return c.Homogenize(b, false)
}

func randDNA(rng *rand.Rand, k int) []byte {
	out := make([]byte, k)
	for i := range out {
		out[i] = dna[rng.Intn(len(dna))]
	}
	return out
}

// entityResolution builds one dense automaton per entity: fuzzy chains for
// many name variants (orderings, initials, optional middle tokens) that all
// feed a shared last-name suffix chain, so each entity is a single, densely
// connected component. Every position matches a tolerance class (adjacent
// letters — OCR/typo fuzziness), which makes symbol ranges a large fraction
// of the state space; as in the paper, flow optimizations then struggle and
// EntityResolution's speedup is limited (§5.1).
func entityResolution() *Spec {
	return &Spec{
		Name:               "EntityResolution",
		Suite:              "ANMLZoo",
		Description:        "fuzzy name matching with initials, truncations and optional tokens",
		PaperStates:        5689,
		PaperRange:         1515,
		PaperCCs:           5,
		PaperHalfCores:     3,
		DisableCompression: true, // density is the benchmark's defining trait
		build: func(scale float64, seed int64) (*nfa.NFA, error) {
			rng := rand.New(rand.NewSource(seed))
			k := scaleCount(5, scale, 4)
			b := nfa.NewBuilder("EntityResolution")
			for e := 0; e < k; e++ {
				buildEntity(b, rng, int32(e))
			}
			return b.Build()
		},
		trace: func(n *nfa.NFA, size int, seed int64) []byte {
			// ER inputs are name lists: their letter distribution matches
			// the entities being resolved, so draw only from the letters
			// the automaton covers (plus separators).
			alpha := coveredAlphabet(n)
			return tracegen.Becchi(n, size, tracegen.Config{PM: 0.75, Alphabet: alpha, Seed: seed})
		},
	}
}

// coveredAlphabet returns the symbols that at least one state label
// matches — the symbol distribution of domain-realistic inputs.
func coveredAlphabet(n *nfa.NFA) []byte {
	var out []byte
	for s := 0; s < 256; s++ {
		for q := 0; q < n.Len(); q++ {
			if n.Label(nfa.StateID(q)).Test(byte(s)) {
				out = append(out, byte(s))
				break
			}
		}
	}
	return out
}

// fuzzyNameClass returns the tolerance class of one name character: the
// letter and its alphabet neighbours, or the separator class.
func fuzzyNameClass(c byte) nfa.Class {
	if c == ' ' || c == '.' || c == ',' {
		return nfa.ClassOf(' ', '.', ',')
	}
	lo, hi := c-3, c+3
	if lo < 'a' {
		lo = 'a'
	}
	if hi > 'z' {
		hi = 'z'
	}
	return nfa.ClassRange(lo, hi)
}

// buildEntity appends one entity's resolver: variant prefix chains joined
// into a shared last-name suffix chain (one connected component).
func buildEntity(b *nfa.Builder, rng *rand.Rand, code int32) {
	letters := []byte("abcdefghijklmnopqrstuvwxyz")
	word := func(k int) []byte {
		w := make([]byte, k)
		for i := range w {
			w[i] = letters[rng.Intn(len(letters))]
		}
		return w
	}
	first := word(6 + rng.Intn(4))
	middle := word(6 + rng.Intn(4))
	last := word(7 + rng.Intn(4))

	// Shared suffix: " last", reporting at its end.
	suffix := append([]byte{' '}, last...)
	var suffixHead, prev nfa.StateID = -1, -1
	for i, c := range suffix {
		id := b.AddState(fuzzyNameClass(c), 0)
		if i == 0 {
			suffixHead = id
		}
		if i == len(suffix)-1 {
			b.SetFlags(id, nfa.Report)
			b.SetReportCode(id, code)
		}
		if prev >= 0 {
			b.AddEdge(prev, id)
		}
		prev = id
	}

	// Variant prefixes: initials, truncations, optional middles, multiple
	// separator forms — all feeding the shared suffix head. Kept
	// uncompressed: the many near-duplicate chains are what makes the
	// benchmark's components dense.
	fi, mi := first[:1], middle[:1]
	firstForms := [][]byte{first, fi, first[:3], first[:len(first)-1]}
	middleForms := [][]byte{middle, mi, middle[:3], nil}
	var variants [][]byte
	sepForms := [][]byte{{' '}, {'.', ' '}, {','}}
	for _, f := range firstForms {
		for _, m := range middleForms {
			for _, sep := range sepForms {
				v := append(append([]byte{}, f...), sep...)
				if m != nil {
					v = append(append(v, m...), sep...)
				}
				// Trim the trailing separator: the suffix supplies it.
				variants = append(variants, v[:len(v)-len(sep)])
			}
		}
	}
	// One unbounded gap per entity between any matched prefix and the last
	// name: the tokens may be separated by arbitrary text (titles,
	// suffixes, other columns of the record). The gap state matches
	// everything and self-loops, so enumeration flows that capture it stay
	// alive for the rest of the segment -- the density that limits
	// EntityResolution's speedup in the paper (S5.1). Sharing one gap per
	// entity keeps the persistent enumeration-unit count per component
	// small, as the paper's ER automata exhibit.
	gap := b.AddState(nfa.AnyClass(), 0)
	b.AddEdge(gap, gap)
	b.AddEdge(gap, suffixHead)
	for _, v := range variants {
		var prev nfa.StateID = -1
		for i, c := range v {
			var flags nfa.Flags
			if i == 0 {
				flags = nfa.AllInput
			}
			id := b.AddState(fuzzyNameClass(c), flags)
			if prev >= 0 {
				b.AddEdge(prev, id)
			}
			prev = id
		}
		b.AddEdge(prev, gap)
	}
}

func protomata() *Spec {
	return &Spec{
		Name:           "Protomata",
		Suite:          "ANMLZoo",
		Description:    "2340 PROSITE protein motifs over the 20-letter amino alphabet",
		PaperStates:    38251,
		PaperRange:     667,
		PaperCCs:       513,
		PaperHalfCores: 2,
		build: func(scale float64, seed int64) (*nfa.NFA, error) {
			rng := rand.New(rand.NewSource(seed))
			k := scaleCount(2340, scale, 12)
			aminoClass := "[" + string(aminos) + "]"
			pats := make([]string, 0, k)
			for i := 0; i < k; i++ {
				elems := 8 + rng.Intn(12)
				var sb strings.Builder
				for j := 0; j < elems; j++ {
					r := rng.Float64()
					switch {
					case r < 0.60: // exact residue
						sb.WriteByte(aminos[rng.Intn(len(aminos))])
					case r < 0.85: // residue class
						sb.WriteString(randClass(rng, aminos, 2+rng.Intn(3)))
					case r < 0.92: // x: any residue
						sb.WriteString(aminoClass)
					default: // x(n) gap
						fmt.Fprintf(&sb, "%s{%d}", aminoClass, 1+rng.Intn(4))
					}
				}
				pats = append(pats, sb.String())
			}
			return compileRules("Protomata", pats)
		},
		trace: alphaTrace(aminos),
	}
}

func fermi() *Spec {
	return &Spec{
		Name:               "Fermi",
		Suite:              "ANMLZoo",
		Description:        "high-energy particle track matching: wide-tolerance hit windows",
		PaperStates:        40783,
		PaperRange:         30027,
		PaperCCs:           2399,
		PaperHalfCores:     2,
		DisableCompression: true, // §4.1
		build: func(scale float64, seed int64) (*nfa.NFA, error) {
			rng := rand.New(rand.NewSource(seed))
			k := scaleCount(2399, scale, 12)
			b := nfa.NewBuilder("Fermi")
			for p := 0; p < k; p++ {
				buildTrack(b, rng, int32(p))
			}
			return b.Build()
		},
		trace: func(n *nfa.NFA, size int, seed int64) []byte {
			return tracegen.Becchi(n, size, tracegen.Config{PM: 0.75, Alphabet: fullByteAlpha, Seed: seed})
		},
	}
}

// buildTrack appends one Fermi track automaton: an entry hit group
// followed by two alternative continuation branches (the particle may be
// picked up by either downstream detector arm), each an unbounded gap --
// other events' hits interleave with the track's -- followed by its own
// hit group and reporting hit. The any-labelled self-looping gap states
// put most of the automaton in every symbol's range (Figure 3: min ~= avg
// ~= max for Fermi) and give each enumeration flow a distinct persistent
// absorbing set, so flows neither die nor converge -- which is what limits
// Fermi's speedup in the paper (S5.1).
func buildTrack(b *nfa.Builder, rng *rand.Rand, code int32) {
	window := func(width int) nfa.Class {
		c := rng.Intn(256)
		lo, hi := c-width/2, c+width/2
		if lo < 0 {
			lo = 0
		}
		if hi > 255 {
			hi = 255
		}
		return nfa.ClassRange(byte(lo), byte(hi))
	}
	wide := func() int { return 96 + rng.Intn(128) }
	chain := func(from nfa.StateID, positions, width int, entry bool) nfa.StateID {
		prev := from
		for j := 0; j < positions; j++ {
			var flags nfa.Flags
			if entry && j == 0 && prev < 0 {
				flags = nfa.AllInput
			}
			id := b.AddState(window(width), flags)
			if prev >= 0 {
				b.AddEdge(prev, id)
			}
			prev = id
		}
		return prev
	}
	// Entry hits are selective (a genuine track seed), so background
	// traffic essentially never walks into the gaps: the enumerated gap
	// flows stay distinct from the baseline and are never absorbed -- the
	// non-reducible flow population that limits Fermi in the paper.
	entryEnd := chain(-1, 4+rng.Intn(3), 24+rng.Intn(24), true)
	for branch := 0; branch < 2; branch++ {
		gap := b.AddState(nfa.AnyClass(), 0)
		b.AddEdge(entryEnd, gap)
		b.AddEdge(gap, gap)
		mid := chain(gap, 3+rng.Intn(3), wide(), false)
		// The final two hits are precise (narrow windows): a track trigger
		// fires on an exact hit signature, so reports stay rare even while
		// the gap states keep most of the automaton active.
		tight := b.AddState(window(8+rng.Intn(8)), 0)
		b.AddEdge(mid, tight)
		last := b.AddState(window(8+rng.Intn(8)), 0)
		b.AddEdge(tight, last)
		b.SetFlags(last, nfa.Report)
		b.SetReportCode(last, code)
	}
}

func randomForest() *Spec {
	return &Spec{
		Name:               "RandomForest",
		Suite:              "ANMLZoo",
		Description:        "decision-tree chains of feature-threshold comparisons",
		PaperStates:        33220,
		PaperRange:         1616,
		PaperCCs:           1661,
		PaperHalfCores:     2,
		DisableCompression: true, // §4.1
		build: func(scale float64, seed int64) (*nfa.NFA, error) {
			rng := rand.New(rand.NewSource(seed))
			k := scaleCount(1661, scale, 12)
			b := nfa.NewBuilder("RandomForest")
			for p := 0; p < k; p++ {
				depth := 20
				var prev nfa.StateID = -1
				for j := 0; j < depth; j++ {
					t := byte(40 + rng.Intn(176))
					var cls nfa.Class
					if rng.Intn(2) == 0 {
						cls = nfa.ClassRange(0, t) // feature <= threshold
					} else {
						cls = nfa.ClassRange(t, 255) // feature > threshold
					}
					var flags nfa.Flags
					if j == 0 {
						flags = nfa.AllInput
					}
					id := b.AddState(cls, flags)
					if j == depth-1 {
						b.SetFlags(id, nfa.Report)
						b.SetReportCode(id, int32(p%10)) // digit class label
					}
					if prev >= 0 {
						b.AddEdge(prev, id)
					}
					prev = id
				}
			}
			return b.Build()
		},
		trace: func(n *nfa.NFA, size int, seed int64) []byte {
			return tracegen.Uniform(size, fullByteAlpha, seed)
		},
	}
}

func spm() *Spec {
	return &Spec{
		Name:               "SPM",
		Suite:              "ANMLZoo",
		Description:        "sequential pattern mining: itemset sequences with unbounded gaps",
		PaperStates:        100500,
		PaperRange:         20100,
		PaperCCs:           5025,
		PaperHalfCores:     2,
		DisableCompression: true, // keeps one component per candidate sequence, as in Table 1
		build: func(scale float64, seed int64) (*nfa.NFA, error) {
			rng := rand.New(rand.NewSource(seed))
			k := scaleCount(5025, scale, 12)
			items := []byte("@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~")
			pats := make([]string, 0, k)
			for i := 0; i < k; i++ {
				sets := 4
				var parts []string
				for j := 0; j < sets; j++ {
					parts = append(parts, randLiteral(rng, items, 3+rng.Intn(2)))
				}
				pats = append(pats, strings.Join(parts, ".*"))
			}
			return compileRules("SPM", pats)
		},
		trace: func(n *nfa.NFA, size int, seed int64) []byte {
			items := []byte("@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~")
			return tracegen.Becchi(n, size, tracegen.Config{PM: 0.75, Alphabet: items, Seed: seed})
		},
	}
}
