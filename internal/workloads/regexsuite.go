package workloads

import (
	"fmt"
	"math/rand"
	"strings"

	"pap/internal/nfa"
	"pap/internal/regex"
)

// The Regex suite (Becchi et al., §4.1): real-world and synthetic rulesets
// for network intrusion detection. Each generator reproduces the structural
// profile of its Table 1 row. The letters-only sub-alphabet keeps pattern
// symbols disjoint from the '\n' delimiter injected into traces, matching
// the suite's tiny cut-symbol ranges.

var patternAlpha = []byte("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789/:._ ")

func compileRules(name string, patterns []string) (*nfa.NFA, error) {
	n, err := regex.CompilePatterns(name, patterns)
	if err != nil {
		return nil, fmt.Errorf("workloads %s: %w", name, err)
	}
	return n, nil
}

// dotstarPatterns generates k patterns of average length avgLen where a
// fraction pDotstar contain one or two unbounded ".*" infixes.
func dotstarPatterns(rng *rand.Rand, k, avgLen int, pDotstar float64) []string {
	out := make([]string, 0, k)
	for i := 0; i < k; i++ {
		l := avgLen - 3 + rng.Intn(7)
		if rng.Float64() < pDotstar {
			stars := 1 + rng.Intn(2)
			parts := make([]string, stars+1)
			for j := range parts {
				seg := l / (stars + 1)
				if seg < 2 {
					seg = 2
				}
				parts[j] = randLiteral(rng, patternAlpha, seg)
			}
			out = append(out, strings.Join(parts, ".*"))
		} else {
			out = append(out, randLiteral(rng, patternAlpha, l))
		}
	}
	return out
}

func dotstarSpec(name string, p float64, paperStates, paperRange, paperCCs int) *Spec {
	return &Spec{
		Name:  name,
		Suite: "Regex",
		Description: fmt.Sprintf("synthetic ruleset with %.0f%% unbounded .* repetitions",
			p*100),
		PaperStates:    paperStates,
		PaperRange:     paperRange,
		PaperCCs:       paperCCs,
		PaperHalfCores: 1,
		build: func(scale float64, seed int64) (*nfa.NFA, error) {
			rng := rand.New(rand.NewSource(seed))
			return compileRules(name, dotstarPatterns(rng, scaleCount(700, scale, 8), 15, p))
		},
		trace: networkTrace,
	}
}

func dotstar03() *Spec { return dotstarSpec("Dotstar03", 0.3, 11124, 163, 56) }
func dotstar06() *Spec { return dotstarSpec("Dotstar06", 0.6, 11598, 315, 54) }
func dotstar09() *Spec { return dotstarSpec("Dotstar09", 0.9, 11229, 314, 51) }

// rangesPatterns: a fraction pClass of the rules contain character classes.
func rangesPatterns(rng *rand.Rand, k, avgLen int, pClass float64) []string {
	out := make([]string, 0, k)
	for i := 0; i < k; i++ {
		l := avgLen - 3 + rng.Intn(7)
		if rng.Float64() >= pClass {
			out = append(out, randLiteral(rng, patternAlpha, l))
			continue
		}
		var sb strings.Builder
		for j := 0; j < l; j++ {
			if rng.Intn(4) == 0 {
				sb.WriteString(randClass(rng, patternAlpha, 2+rng.Intn(6)))
			} else {
				sb.WriteString(randLiteral(rng, patternAlpha, 1))
			}
		}
		out = append(out, sb.String())
	}
	return out
}

func rangesSpec(name string, p float64, paperStates, paperCCs int) *Spec {
	return &Spec{
		Name:           name,
		Suite:          "Regex",
		Description:    fmt.Sprintf("ruleset where %.0f%% of rules use character classes", p*100),
		PaperStates:    paperStates,
		PaperRange:     1,
		PaperCCs:       paperCCs,
		PaperHalfCores: 1,
		build: func(scale float64, seed int64) (*nfa.NFA, error) {
			rng := rand.New(rand.NewSource(seed))
			return compileRules(name, rangesPatterns(rng, scaleCount(720, scale, 8), 15, p))
		},
		trace: networkTrace,
	}
}

func ranges05() *Spec { return rangesSpec("Ranges05", 0.5, 11596, 63) }
func ranges1() *Spec  { return rangesSpec("Ranges1", 1.0, 11418, 57) }

func exactMatch() *Spec {
	return &Spec{
		Name:           "ExactMatch",
		Suite:          "Regex",
		Description:    "exact string patterns (no classes, no repetition)",
		PaperStates:    11270,
		PaperRange:     1,
		PaperCCs:       53,
		PaperHalfCores: 1,
		build: func(scale float64, seed int64) (*nfa.NFA, error) {
			rng := rand.New(rand.NewSource(seed))
			k := scaleCount(705, scale, 8)
			pats := make([]string, k)
			for i := range pats {
				pats[i] = randLiteral(rng, patternAlpha, 13+rng.Intn(7))
			}
			return compileRules("ExactMatch", pats)
		},
		trace: networkTrace,
	}
}

func bro217() *Spec {
	return &Spec{
		Name:           "Bro217",
		Suite:          "Regex",
		Description:    "217 packet-sniffing rules in the style of the Bro IDS",
		PaperStates:    1893,
		PaperRange:     6,
		PaperCCs:       59,
		PaperHalfCores: 1,
		build: func(scale float64, seed int64) (*nfa.NFA, error) {
			rng := rand.New(rand.NewSource(seed))
			k := scaleCount(217, scale, 8)
			methods := []string{"GET", "POST", "HEAD", "PUT"}
			exts := []string{"ida", "exe", "dll", "cgi", "php", "asp", "jsp", "pl"}
			pats := make([]string, 0, k)
			for i := 0; i < k; i++ {
				switch i % 3 {
				case 0: // HTTP request line fragments
					pats = append(pats, fmt.Sprintf("%s /%s",
						methods[rng.Intn(len(methods))], randLiteral(rng, patternAlpha[:36], 3+rng.Intn(4))))
				case 1: // suspicious file extensions
					pats = append(pats, fmt.Sprintf("%s\\.%s",
						randLiteral(rng, patternAlpha[:36], 2+rng.Intn(3)), exts[rng.Intn(len(exts))]))
				default: // protocol keywords
					pats = append(pats, randLiteral(rng, patternAlpha[:36], 5+rng.Intn(5)))
				}
			}
			return compileRules("Bro217", pats)
		},
		trace: networkTrace,
	}
}

func tcp() *Spec {
	return &Spec{
		Name:           "TCP",
		Suite:          "Regex",
		Description:    "packet-header filtering rules preceding payload inspection",
		PaperStates:    13834,
		PaperRange:     550,
		PaperCCs:       57,
		PaperHalfCores: 1,
		build: func(scale float64, seed int64) (*nfa.NFA, error) {
			rng := rand.New(rand.NewSource(seed))
			k := scaleCount(820, scale, 8)
			pats := make([]string, 0, k)
			for i := 0; i < k; i++ {
				var sb strings.Builder
				l := 13 + rng.Intn(7)
				for j := 0; j < l; j++ {
					switch rng.Intn(12) {
					case 0: // header byte with any-value wildcard
						sb.WriteString(".")
					case 1, 2: // port/flag value classes
						sb.WriteString(randClass(rng, patternAlpha, 4+rng.Intn(12)))
					default:
						sb.WriteString(randLiteral(rng, patternAlpha, 1))
					}
				}
				pats = append(pats, sb.String())
			}
			return compileRules("TCP", pats)
		},
		trace: networkTrace,
	}
}

func powerEN1() *Spec {
	return &Spec{
		Name:           "PowerEN1",
		Suite:          "Regex",
		Description:    "complex mixed ruleset in the style of IBM PowerEN",
		PaperStates:    12195,
		PaperRange:     466,
		PaperCCs:       62,
		PaperHalfCores: 1,
		build: func(scale float64, seed int64) (*nfa.NFA, error) {
			rng := rand.New(rand.NewSource(seed))
			k := scaleCount(740, scale, 8)
			pats := make([]string, 0, k)
			for i := 0; i < k; i++ {
				var sb strings.Builder
				l := 12 + rng.Intn(8)
				for j := 0; j < l; j++ {
					switch rng.Intn(14) {
					case 0:
						sb.WriteString(".*")
						sb.WriteString(randLiteral(rng, patternAlpha, 2))
						j += 2
					case 1:
						sb.WriteString(randClass(rng, patternAlpha, 3+rng.Intn(8)))
					case 2:
						sb.WriteString(fmt.Sprintf("%s{%d,%d}",
							randClass(rng, patternAlpha, 2+rng.Intn(4)), 1+rng.Intn(2), 2+rng.Intn(3)))
					default:
						sb.WriteString(randLiteral(rng, patternAlpha, 1))
					}
				}
				pats = append(pats, sb.String())
			}
			return compileRules("PowerEN1", pats)
		},
		trace: networkTrace,
	}
}
