package core

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"

	"pap/internal/ap"
	"pap/internal/engine"
	"pap/internal/faultinject"
)

// Cross-segment scheduler: the paper's machine model runs the k input
// segments simultaneously on k half-cores from t=0 (§3, Figure 6), with the
// only serial dependency being truth propagation — segment j's decoded
// boundary truth (and the Flow Invalidation Vector derived from it) reaches
// segment j+1 FIVTransferCycles after segment j's truth is known (§3.4).
//
// The simulator mirrors that shape: executeParallel drives every segment on
// its own goroutine, all drawing flow work from one shared bounded pool
// (exec.go), and chains truth through per-segment truthCells. The subtle
// part is keeping modelled time exact while real time is concurrent:
// segment j+1 must decide, at each of its own round boundaries, whether the
// FIV "has arrived by now" in modelled cycles — before segment j has
// necessarily finished computing its KnownAt. The truthCell protocol makes
// that decision safe:
//
//   - Segment j publishes a monotone lower bound on its final KnownAt after
//     every round (its accumulated busy cycles; KnownAt >= final Cycles by
//     construction in chainSegment).
//   - Segment j+1, at a round boundary at modelled time c, waits only while
//     the truth is unknown AND bound + FIVTransferCycles <= c. Once
//     bound + FIVTransferCycles > c the FIV provably cannot have arrived by
//     c, so the round loop continues without blocking; once the truth is
//     known the comparison is exact.
//
// Decisions that cannot affect the remaining loop are deferred instead of
// blocking: the check after the final round, and checks while no
// enumeration flow is alive (nothing to kill). finishFIV resolves them
// after the loop from the final, monotone seg.Cycles — producing the same
// FIVApplied flag and kill set the serial scheduler computes in-loop.
//
// Everything else the chain needs (the truth content seg.unitTrue) is
// derived from the golden run before any segment starts, so only timing —
// never truth values — flows through the cells. The result: every modelled
// ap.Cycles metric is bit-identical between executeSerial and
// executeParallel (the conformance parity invariant asserts this); only
// wall-clock changes.

// maxCycles stands in for "never" (an FIV that cannot arrive).
const maxCycles = ap.Cycles(1<<62 - 1)

// truthCell carries one segment's truth timing to its successor.
type truthCell struct {
	mu       sync.Mutex
	cond     *sync.Cond
	progress ap.Cycles // monotone lower bound on the final knownAt
	known    bool
	knownAt  ap.Cycles // final KnownAt, valid once known
	aborted  bool      // publisher died without resolving; truth never arrives
}

func newTruthCell() *truthCell {
	t := &truthCell{}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// advance raises the published lower bound on this segment's KnownAt.
func (t *truthCell) advance(c ap.Cycles) {
	t.mu.Lock()
	if c > t.progress {
		t.progress = c
		t.cond.Broadcast()
	}
	t.mu.Unlock()
}

// resolve publishes the final KnownAt and wakes every waiter.
func (t *truthCell) resolve(knownAt ap.Cycles) {
	t.mu.Lock()
	t.known = true
	t.knownAt = knownAt
	if knownAt > t.progress {
		t.progress = knownAt
	}
	t.cond.Broadcast()
	t.mu.Unlock()
}

// abort marks the cell as never-resolving and wakes every waiter; a no-op
// once the cell is resolved. Every segment goroutine aborts its own cell
// on exit (deferred), so a cancelled, failed, or panicked publisher can
// never strand a waiting successor.
func (t *truthCell) abort() {
	t.mu.Lock()
	if !t.known {
		t.aborted = true
	}
	t.cond.Broadcast()
	t.mu.Unlock()
}

// waitKnown blocks until the final KnownAt is published, or the publisher
// aborts (ok = false: the truth will never arrive).
func (t *truthCell) waitKnown() (knownAt ap.Cycles, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for !t.known && !t.aborted {
		t.cond.Wait()
	}
	return t.knownAt, t.known
}

// waitDecidable blocks until the FIV question at modelled time c is
// decidable: either the truth is known (exact comparison), or the
// publisher's progress guarantees the FIV cannot arrive by c, or the
// publisher aborted (the FIV then never arrives; the caller's own round
// loop notices the run abort at its next boundary).
func (t *truthCell) waitDecidable(c ap.Cycles) (knownAt ap.Cycles, known bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for !t.known && !t.aborted && t.progress+ap.FIVTransferCycles <= c {
		t.cond.Wait()
	}
	return t.knownAt, t.known
}

// pipelineFIV is the parallel scheduler's per-segment policy (see
// segScheduler in exec.go): publish progress every round, answer FIV checks
// from the predecessor's truth cell.
type pipelineFIV struct {
	pred *truthCell // nil for segment 0 (no FIV ever arrives)
	self *truthCell
}

func (s *pipelineFIV) tick(seg *segmentResult) { s.self.advance(seg.Cycles) }

func (s *pipelineFIV) fivArrived(seg *segmentResult, last bool) bool {
	if s.pred == nil {
		return false
	}
	if last || !anyAliveEnum(seg) {
		// Nothing a kill could change in the remaining loop; decided by
		// finishFIV once the predecessor's truth is known, without blocking.
		return false
	}
	knownAt, known := s.pred.waitDecidable(seg.Cycles)
	return known && seg.Cycles >= knownAt+ap.FIVTransferCycles
}

// anyAliveEnum reports whether any enumeration flow is still alive.
func anyAliveEnum(seg *segmentResult) bool {
	for _, f := range seg.flows[1:] {
		if f.alive {
			return true
		}
	}
	return false
}

// finishFIV resolves a deferred FIV decision after the round loop: the
// serial scheduler would have checked seg.Cycles >= fivAt at the skipped
// round boundaries, and because seg.Cycles is monotone the final value
// decides identically.
func (p *Plan) finishFIV(seg *segmentResult, fivAt ap.Cycles) {
	if !p.fivEnabled() || seg.FIVApplied {
		return
	}
	if seg.Cycles >= fivAt {
		if err := p.Cfg.fire(faultinject.FIVTransfer, seg.Index, -1); err != nil {
			seg.err = err
			return
		}
		applyFIV(seg)
	}
}

// guardSegment is the panic-recovery boundary of one segment's execution:
// it runs body and converts a panic — engine bug, injected fault — into an
// error on the segment, annotated with the segment's progress and, via the
// panic value (faultinject.InjectedPanic), the offending seed. The run
// then aborts cleanly instead of crashing the process, with all other
// segments drained and no goroutine or pool worker leaked.
func (p *Plan) guardSegment(seg *segmentResult, body func()) {
	defer func() {
		if r := recover(); r != nil {
			seg.err = fmt.Errorf("core: segment %d panicked at pos %d (%d rounds): %v\n%s",
				seg.Index, seg.progress(), seg.Rounds, r, debug.Stack())
		}
	}()
	body()
}

// executeSerial runs segments one after another — the original scheduler,
// kept (Config.SegmentParallel = false) as the determinism baseline the
// parallel scheduler is checked against. The first segment error (context
// cancellation, fault, recovered panic) stops the chain; later segments
// keep their zero progress for the abort report.
func (p *Plan) executeSerial(ctx context.Context, segs []*segmentResult, input []byte, bounds []engine.Boundary, pool *flowPool) {
	var prevKnown ap.Cycles
	for j, seg := range segs {
		fivAt := maxCycles
		if j > 0 && p.fivEnabled() {
			fivAt = prevKnown + ap.FIVTransferCycles
		}
		p.guardSegment(seg, func() {
			p.runSegmentRounds(ctx, seg, input, pool, serialFIV{fivAt})
			if seg.err != nil {
				return
			}
			done := seg.Cycles
			if p.Cfg.Speculate && j > 0 {
				done = p.runSpeculative(seg, input, bounds[j-1], prevKnown+ap.FIVTransferCycles, pool)
			}
			var next *segmentResult
			if j+1 < len(segs) {
				next = segs[j+1]
			}
			prevKnown = p.chainSegment(seg, next, done, prevKnown)
		})
		if seg.err != nil {
			return
		}
	}
}

// executeParallel runs every segment on its own goroutine from t=0,
// chaining truth through truthCells. Segment j resolves its cell the moment
// chainSegment computes its KnownAt; segment j+1's in-loop FIV gate fires on
// receipt. All goroutines share the one bounded flow pool.
//
// Failure protocol: the first segment that errors cancels the run context,
// so every sibling stops at its next round boundary, and every goroutine
// aborts its own truth cell on exit (deferred), so no successor blocks on
// a truth that will never be published. executeParallel always joins all
// segment goroutines before returning — cancellation leaks nothing.
func (p *Plan) executeParallel(ctx context.Context, segs []*segmentResult, input []byte, bounds []engine.Boundary, pool *flowPool) {
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	cells := make([]*truthCell, len(segs))
	for j := range cells {
		cells[j] = newTruthCell()
	}
	var wg sync.WaitGroup
	for j, seg := range segs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer cells[j].abort() // no-op when resolve already ran
			var pred *truthCell
			if j > 0 {
				pred = cells[j-1]
			}
			p.guardSegment(seg, func() {
				p.runSegmentRounds(runCtx, seg, input, pool, &pipelineFIV{pred: pred, self: cells[j]})
				if seg.err != nil {
					return
				}
				var prevKnown ap.Cycles
				if j > 0 {
					pk, ok := pred.waitKnown()
					if !ok {
						return // predecessor aborted; its error names the cause
					}
					prevKnown = pk
					p.finishFIV(seg, prevKnown+ap.FIVTransferCycles)
					if seg.err != nil {
						return
					}
				}
				done := seg.Cycles
				if p.Cfg.Speculate && j > 0 {
					done = p.runSpeculative(seg, input, bounds[j-1], prevKnown+ap.FIVTransferCycles, pool)
				}
				var next *segmentResult
				if j+1 < len(segs) {
					next = segs[j+1]
				}
				known := p.chainSegment(seg, next, done, prevKnown)
				if seg.err != nil {
					return
				}
				cells[j].resolve(known)
			})
			if seg.err != nil {
				cancelRun()
			}
		}()
	}
	wg.Wait()
}
