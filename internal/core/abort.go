package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"pap/internal/faultinject"
)

// SegmentProgress is how far one segment had advanced when a run aborted.
// Pos is the next unprocessed input offset: Pos == Start means the segment
// never ran a round, Pos == End means its round loop had finished.
type SegmentProgress struct {
	Index      int
	Start, End int
	Pos        int
	Rounds     int
}

func (p SegmentProgress) String() string {
	return fmt.Sprintf("seg %d: %d/%d bytes (%d..%d), %d rounds",
		p.Index, p.Pos-p.Start, p.End-p.Start, p.Start, p.End, p.Rounds)
}

// Aborted is the error of a run stopped before completion — by context
// cancellation or deadline, an injected fault, or a recovered panic. It
// wraps the underlying cause (errors.Is(err, context.DeadlineExceeded)
// etc. see through it) and carries every segment's progress at the stop.
type Aborted struct {
	Cause    error
	Segments []SegmentProgress
}

func (e *Aborted) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core: run aborted: %v", e.Cause)
	for _, s := range e.Segments {
		b.WriteString("; ")
		b.WriteString(s.String())
	}
	return b.String()
}

func (e *Aborted) Unwrap() error { return e.Cause }

// fire invokes the configured fault hook at a pipeline point; nil hooks
// cost one comparison.
func (c *Config) fire(stage faultinject.Stage, segment, round int) error {
	if c.Fault == nil {
		return nil
	}
	return c.Fault(faultinject.Point{Stage: stage, Segment: segment, Round: round})
}

// ctxAborted reports whether err is a context cancellation or deadline —
// the errors a sibling-triggered run abort also manifests as.
func ctxAborted(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// abortError assembles the Aborted error for a run whose segments carry
// the given errors, preferring a root cause (fault, panic) over the
// secondary context errors that sibling segments die with when the run
// context is cancelled on first failure. ctxErr is the caller context's
// own error (nil when only a fault aborted the run).
func abortError(segs []*segmentResult, ctxErr error) error {
	var cause, anyErr error
	for _, seg := range segs {
		if seg.err == nil {
			continue
		}
		if anyErr == nil {
			anyErr = seg.err
		}
		if cause == nil && !ctxAborted(seg.err) {
			cause = seg.err
		}
	}
	if cause == nil {
		cause = ctxErr
	}
	if cause == nil {
		cause = anyErr
	}
	if cause == nil {
		return nil
	}
	e := &Aborted{Cause: cause}
	for _, seg := range segs {
		e.Segments = append(e.Segments, SegmentProgress{
			Index:  seg.Index,
			Start:  seg.Start,
			End:    seg.End,
			Pos:    seg.progress(),
			Rounds: seg.Rounds,
		})
	}
	return e
}
