package core

import (
	"fmt"
	"slices"

	"pap/internal/engine"
	"pap/internal/faultinject"
	"pap/internal/nfa"
)

// Mode selects the parallel execution strategy. The zero value is the
// paper's flow enumeration; ModeSFA replaces enumeration with SFA-style
// function composition (Sin'ya et al.: run each segment once per distinct
// entry frontier, compose the resulting entry→exit mappings left-to-right).
type Mode uint8

const (
	// ModeFlows is the paper's strategy: enumerate one flow per packed
	// enumeration unit, kill false flows via deactivation, convergence and
	// Flow Invalidation Vectors, and filter reports by decoded unit truth.
	ModeFlows Mode = iota
	// ModeSFA runs each segment once per frontier-equivalence class (units
	// whose non-baseline seeds coincide), records each class's entry→exit
	// state mapping, and composes mappings at segment boundaries after the
	// round loops finish — no FIV traffic, truth falls out of composition.
	ModeSFA

	maxMode = ModeSFA
)

var modeNames = [...]string{"flows", "sfa"}

// ModeNames lists the accepted ParseMode spellings in Mode order.
func ModeNames() []string { return append([]string(nil), modeNames[:]...) }

func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// ParseMode converts a mode name to a Mode.
func ParseMode(s string) (Mode, error) {
	for i, name := range modeNames {
		if s == name {
			return Mode(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown execution mode %q (want one of %v)", s, modeNames[:])
}

// execMode is the execution-strategy seam of the round loop: how a
// segment's flows are seeded before execution, and what (if anything) runs
// after every segment's round loop has finished. The TDM loop itself
// (runSegmentRounds), deactivation, convergence, the SVC, and both
// schedulers are shared by all modes; a mode only decides what the flows
// *mean* and how boundary truth is established.
type execMode interface {
	// usesFIV reports whether the mode consumes Flow Invalidation Vectors
	// in-loop. When false, neither scheduler ever gates on a predecessor's
	// truth cell and FIVApplied stays false on every segment.
	usesFIV() bool
	// seedSegment populates the enumeration flows (seg.flows[1:]) of one
	// segment with Index > 0; the ASG flow and the golden flow of segment 0
	// are seeded by the mode-independent buildSegments shell.
	seedSegment(p *Plan, seg *segmentResult, bounds []engine.Boundary)
	// finalize runs once after every segment's round loop has joined and
	// before report composition, on the caller's goroutine. Errors (and
	// recovered panics) land on the offending segment's err field.
	finalize(p *Plan, segs []*segmentResult, bounds []engine.Boundary)
}

// execMode returns the strategy implementation for the configured Mode.
func (p *Plan) execMode() execMode {
	if p.Cfg.Mode == ModeSFA {
		return sfaMode{}
	}
	return flowMode{}
}

// fivEnabled reports whether this run sends Flow Invalidation Vectors:
// the mode must use them and the ablation switch must not disable them.
func (p *Plan) fivEnabled() bool {
	return p.execMode().usesFIV() && !p.Cfg.DisableFIV
}

// flowMode is the paper's enumeration strategy (§3.3): one flow per packed
// FlowSpec, truth decoded from the golden boundary before execution, false
// flows killed in-loop by the FIV.
type flowMode struct{}

func (flowMode) usesFIV() bool { return true }

func (flowMode) seedSegment(p *Plan, seg *segmentResult, bounds []engine.Boundary) {
	sp := p.SymbolPlanFor(seg.Sym)
	seg.unitTrue = unitTruth(sp, bounds[seg.Index-1])
	for fi, spec := range sp.Flows {
		f := &flowRun{
			id:    fi + 1,
			alive: true,
		}
		seed := dropAllInput(sortedIDs(spec.Seed), p.NFA)
		f.svcID = seg.svc.AllocOverflow(seed, fingerprintOf(seed, p.NFA))
		if p.Cfg.Scored {
			f.scoreBuf = entryScores(bounds[seg.Index-1], seed)
		}
		for _, ui := range spec.Units {
			f.attrib = append(f.attrib, attribEntry{
				CC:   sp.Units[ui].CC,
				Unit: ui,
				From: int64(seg.Start),
			})
		}
		seg.flows = append(seg.flows, f)
	}
}

// Flow mode needs no post-pass: truth was decoded before execution.
func (flowMode) finalize(*Plan, []*segmentResult, []engine.Boundary) {}

// sfaMode is the SFA composition strategy. Seeding groups the segment's
// enumeration units into frontier-equivalence classes — units whose
// non-baseline seeds are identical start the segment in the same frontier,
// so one run covers them all — and runs exactly one flow per class over
// the unchanged TDM machinery. Each class flow's saved SVC context at the
// segment's end IS the entry→exit state mapping restricted to that entry
// class (NFA frontier evolution is additive, so per-class images suffice).
// finalize then composes left-to-right: segment j's true exit union is the
// entry set of segment j+1, unit truth is a subset test against it, and
// the Zobrist fingerprints make the boundary cross-checks against the
// golden run O(1) hash compares (full compares only on hash hits, with
// verified collisions counted).
type sfaMode struct{}

func (sfaMode) usesFIV() bool { return false }

func (sfaMode) seedSegment(p *Plan, seg *segmentResult, bounds []engine.Boundary) {
	sp := p.SymbolPlanFor(seg.Sym)
	// Truth is unknown until finalize composes the boundary mappings.
	seg.unitTrue = make([]bool, len(sp.Units))

	// Frontier-equivalence classes: units keyed by the fingerprint of their
	// non-baseline seed, verified on hash match (a colliding pair stays in
	// separate classes and is counted). Units with an empty non-baseline
	// seed are never true (unitTruth's len(seedCheck) > 0 rule) and their
	// runs could never contribute a true exit, so they get no flow.
	type entryClass struct {
		fp    uint64
		seed  []nfa.StateID // borrowed from Unit.seedCheck (sorted)
		units []int
	}
	var classes []entryClass
	byFP := map[uint64][]int{}
	for ui, u := range sp.Units {
		if len(u.seedCheck) == 0 {
			continue
		}
		fp := fingerprintOf(u.seedCheck, p.NFA)
		found := -1
		for _, ci := range byFP[fp] {
			if equalContexts(classes[ci].seed, u.seedCheck) {
				found = ci
				break
			}
			seg.FPCollisions++ // verified: same hash, different seeds
		}
		if found >= 0 {
			classes[found].units = append(classes[found].units, ui)
			continue
		}
		byFP[fp] = append(byFP[fp], len(classes))
		classes = append(classes, entryClass{fp: fp, seed: u.seedCheck, units: []int{ui}})
	}

	for ci, c := range classes {
		f := &flowRun{
			id:        ci + 1,
			alive:     true,
			classUnit: c.units[0],
		}
		// Copy the seed: the SVC owns its context and the plan's unit
		// seeds are shared across executions of the same Plan.
		f.svcID = seg.svc.AllocOverflow(slices.Clone(c.seed), c.fp)
		if p.Cfg.Scored {
			f.scoreBuf = entryScores(bounds[seg.Index-1], c.seed)
		}
		for _, ui := range c.units {
			f.attrib = append(f.attrib, attribEntry{
				CC:   sp.Units[ui].CC,
				Unit: ui,
				From: int64(seg.Start),
			})
		}
		seg.flows = append(seg.flows, f)
	}
	seg.SFAMappings = len(classes)
}

// finalize composes the per-segment entry→exit mappings left-to-right.
// Segment j's exit under the true entry set is the union of its ASG/golden
// exit with the exits of its true entry classes; unit truth of segment j+1
// is the whole-seed subset test against that union — the same criterion
// unitTruth applies to the golden boundary, so composition reproduces flow
// mode's truth (and therefore its reports) exactly. Each boundary is
// cross-checked against the golden run by fingerprint.
func (sfaMode) finalize(p *Plan, segs []*segmentResult, bounds []engine.Boundary) {
	entry := map[nfa.StateID]struct{}{}
	var entryIDs []nfa.StateID // sorted materialisation for the cross-check
	for j := 1; j < len(segs); j++ {
		prev, seg := segs[j-1], segs[j]
		p.guardSegment(seg, func() {
			if err := p.Cfg.fire(faultinject.SFACompose, seg.Index, -1); err != nil {
				seg.err = err
				return
			}

			// Compose: union the predecessor's surviving exit mappings.
			clear(entry)
			sfaExit(prev, entry)
			seg.ComposeOps += int64(len(entry))

			// Truth of this segment's units at the composed boundary.
			sp := p.SymbolPlanFor(seg.Sym)
			for ui, u := range sp.Units {
				ok := len(u.seedCheck) > 0
				for _, q := range u.seedCheck {
					seg.ComposeOps++
					if _, in := entry[q]; !in {
						ok = false
						break
					}
				}
				seg.unitTrue[ui] = ok
			}

			// Fingerprint cross-check against the golden boundary: equal
			// hashes are trusted unless the full compare disagrees (a
			// verified collision); a hash mismatch means the composed
			// frontier diverged, which compose()'s report comparison
			// (Result.Correct) surfaces.
			entryIDs = entryIDs[:0]
			for q := range entry {
				entryIDs = append(entryIDs, q)
			}
			slices.Sort(entryIDs)
			want := bounds[j-1].Enabled
			if fingerprintOf(entryIDs, p.NFA) == fingerprintOf(want, p.NFA) &&
				!equalContexts(entryIDs, want) {
				seg.FPCollisions++
			}
		})
		if seg.err != nil {
			return
		}
	}
}

// entryScores returns the entry-score vector for a flow seed (sorted, no
// all-input states), drawn from the golden boundary: seed states the golden
// run had enabled at the cut inherit their exact best-path scores, so every
// boundary-crossing path resumes with the true sequential score. Seed states
// the golden run did NOT have enabled score 0 — they only exist in false
// flows (or false units), whose reports the truth filter drops, so the value
// is observably irrelevant; 0 keeps the vector deterministic. Both slices
// are sorted, so this is one merge walk.
func entryScores(b engine.Boundary, seed []nfa.StateID) []int64 {
	scores := make([]int64, len(seed))
	j := 0
	for i, q := range seed {
		for j < len(b.Enabled) && b.Enabled[j] < q {
			j++
		}
		if j < len(b.Enabled) && b.Enabled[j] == q && b.Scores != nil {
			scores[i] = b.Scores[j]
		}
	}
	return scores
}

// sfaExit adds one finished segment's true exit states to dst: the
// ASG/golden flow's exit plus each class flow's exit when its class is
// true. Flows absorbed by convergence contribute their survivor's exit
// (equal vectors evolve identically); flows whose SVC entry was freed by
// deactivation contribute nothing — a zero-mask kill exits empty and an
// absorption kill exits inside the ASG exit, so the union is unchanged.
func sfaExit(seg *segmentResult, dst map[nfa.StateID]struct{}) {
	base := seg.flows[0]
	if seg.svc.Valid(base.svcID) {
		ctx, _ := seg.svc.Load(base.svcID)
		for _, q := range ctx {
			dst[q] = struct{}{}
		}
	}
	for _, f := range seg.flows[1:] {
		if !seg.unitTrue[f.classUnit] {
			continue
		}
		g := f
		for g.mergedInto != nil {
			g = g.mergedInto
		}
		if !seg.svc.Valid(g.svcID) {
			continue
		}
		ctx, _ := seg.svc.Load(g.svcID)
		for _, q := range ctx {
			dst[q] = struct{}{}
		}
	}
}
