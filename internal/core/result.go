package core

import (
	"context"
	"fmt"

	"pap/internal/ap"
	"pap/internal/engine"
	"pap/internal/faultinject"
	"pap/internal/nfa"
)

// SegmentStats is the exported per-segment view of one PAP execution.
type SegmentStats struct {
	Index          int
	Start, End     int
	BoundarySym    byte
	InitFlows      int
	Rounds         int
	AvgFlows       float64
	Deactivations  int
	Convergences   int
	FIVKills       int
	FIVApplied     bool
	Cycles         ap.Cycles
	SwitchCycles   ap.Cycles
	HostCycles     ap.Cycles
	KnownAt        ap.Cycles
	Events         int64
	Transitions    int64
	EngineSwitches int64 // adaptive-backend representation switches
	// PrefilterSkipped counts input bytes this segment's flows covered by
	// dead-frontier skips instead of stepping — a simulator fast-path
	// figure; the modelled cycle metrics charge every covered symbol.
	PrefilterSkipped int64
	// BaselineSkipped counts input bytes this segment's ASG flow covered by
	// the exact baseline-skip scan (start-class scanner over a dead
	// enumeration frontier); the same charging rule applies.
	BaselineSkipped int64
	// SFAMappings is the number of frontier-equivalence classes (entry→exit
	// mappings) this segment ran; 0 in flow mode and for segment 0.
	SFAMappings int
	// ComposeOps counts boundary-composition set operations (exit unions
	// and unit subset probes) charged to this segment's SFA finalize pass.
	ComposeOps int64
	// FPCollisions counts verified fingerprint collisions — hash compares
	// that matched but whose full vector compare disagreed — across
	// convergence, deactivation, class grouping, and SFA boundary checks.
	FPCollisions int64
	Mispredicted bool      // speculation only
	RerunCycles  ap.Cycles // speculation only
}

// Result is the outcome of one PAP execution: the composed (exact) report
// set plus every modelled metric of the paper's evaluation.
type Result struct {
	Plan   *Plan
	Golden engine.Result

	// Reports is the composed, deduplicated output — provably equal to the
	// sequential run's (Correct is the check's outcome; under Config.Scored
	// the check also covers every report's score, since SameReports compares
	// scores and unscored runs carry all-zero scores).
	Reports []engine.Report
	Correct bool

	// BestScore is the maximum report score of a scored run (Config.Scored),
	// meaningful only when Reports is non-empty — scores may be negative, so
	// 0 is not a sentinel. Always 0 for unscored runs.
	BestScore int64

	BaselineCycles ap.Cycles // sequential AP: one symbol per cycle + host report scan
	TotalCycles    ap.Cycles // PAP completion time (after the golden-execution bound)
	RawTotalCycles ap.Cycles // before the never-worse clamp
	Clamped        bool      // true when golden execution won the race (§5.1)
	Speedup        float64
	IdealSpeedup   float64 // number of parallel segments

	Segments []SegmentStats

	// Figure 9: time-averaged number of active flows across enumeration
	// segments.
	AvgActiveFlows float64
	// Figure 10: flow switching cycles as a percentage of segment cycles.
	SwitchOverheadPct float64
	// Figure 11: average host-side false-path decode + FIV cost.
	AvgHostCycles ap.Cycles
	// Figure 12: emitted output events (all flows) / true output events.
	TotalEvents    int64
	ReportIncrease float64
	// §5.3 energy proxy: PAP transitions per symbol / sequential
	// transitions per symbol.
	TransitionRatio float64
	// EngineSwitches counts adaptive-backend representation switches
	// across all segment engines (0 for the fixed backends) — a simulator
	// observability figure, not an AP cost.
	EngineSwitches int64
	// PrefilterSkipped counts input bytes covered by dead-frontier
	// prefilter skips across all segment flows plus the golden run —
	// like EngineSwitches a simulator observability figure, never an AP
	// cost (skipped symbols are still charged their modelled cycles).
	PrefilterSkipped int64
	// BaselineSkipped counts input bytes covered by the exact baseline-skip
	// fast path (start-class scan over ASG-only regions) across all segment
	// flows plus the golden run. Unlike PrefilterSkipped this path is exact
	// for every observable, so it is deterministic across schedulers and
	// engine kinds; it too charges every covered symbol its modelled round.
	BaselineSkipped int64

	// Mode is the execution strategy that produced this result.
	Mode Mode
	// SFAMappings is the total number of entry→exit mappings (frontier-
	// equivalence classes) run across segments; 0 in flow mode.
	SFAMappings int64
	// SFAComposeOps is the total boundary-composition work of the SFA
	// finalize pass; 0 in flow mode.
	SFAComposeOps int64
	// FingerprintCollisions counts verified fingerprint collisions across
	// all hash fast paths (convergence, deactivation, class grouping, SFA
	// boundary cross-checks) — hash hits whose full compare disagreed.
	FingerprintCollisions int64

	// CapacityNote is non-empty when the flow plan exceeds the SVC limit
	// (the run still simulates, as the paper's pre-optimization analyses do).
	CapacityNote string

	// MispredictedSegments counts segments that needed a speculative
	// re-run (Config.Speculate only).
	MispredictedSegments int
}

// Run plans and executes PAP for one automaton and input, returning the
// composed reports and all modelled metrics.
func Run(n *nfa.NFA, input []byte, cfg Config) (*Result, error) {
	return RunContext(context.Background(), n, input, cfg)
}

// RunContext is Run under a context: a cancelled or expired ctx stops the
// run at the next round boundary of every segment (and at coarse-grained
// polls of the golden execution) and returns ctx's error wrapped in
// *Aborted together with per-segment progress. Configured faults
// (Config.Fault) abort the same way. The final deferred recover is the
// backstop for panics outside any segment (plan build); segment panics
// are converted at the segment-goroutine boundary by guardSegment.
func RunContext(ctx context.Context, n *nfa.NFA, input []byte, cfg Config) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, &Aborted{Cause: fmt.Errorf("core: pre-processing panicked: %v", r)}
		}
	}()
	plan, err := NewPlan(n, input, cfg)
	if err != nil {
		return nil, err
	}
	return plan.ExecuteContext(ctx, input)
}

// Baseline returns the sequential AP cycle cost for an input and its
// golden run: one symbol per cycle plus host event decoding (§4.1 accounts
// report post-processing in both baseline and PAP).
func Baseline(inputLen int, events int) ap.Cycles {
	return ap.Cycles(inputLen) + ap.Cycles(events*eventDecodeCycles)
}

// Execute runs the plan against the input it was built for.
func (p *Plan) Execute(input []byte) (*Result, error) {
	return p.ExecuteContext(context.Background(), input)
}

// ExecuteContext is Execute under a context; see RunContext for the
// cancellation contract.
func (p *Plan) ExecuteContext(ctx context.Context, input []byte) (*Result, error) {
	res := &Result{Plan: p, Mode: p.Cfg.Mode, IdealSpeedup: float64(p.Segments)}
	golden, bounds, goldenPos, err := engine.RunWithBoundariesEngineContext(ctx, p.NFA, input, p.Cuts, p.Cfg.Engine, p.tables, 0,
		engine.RunOpts{DisableBaselineSkip: p.Cfg.DisableBaselineSkip, Scored: p.Cfg.Scored})
	if err != nil {
		// Aborted before any segment ran: report the golden execution's
		// own position as whole-input progress.
		return nil, &Aborted{
			Cause: fmt.Errorf("golden execution: %w", err),
			Segments: []SegmentProgress{
				{Index: 0, Start: 0, End: len(input), Pos: goldenPos},
			},
		}
	}
	res.Golden = golden
	res.BaselineCycles = Baseline(len(input), len(golden.Reports))
	if err := p.CheckCapacity(); err != nil {
		res.CapacityNote = err.Error()
	}

	if p.Segments == 1 {
		// Nothing to parallelize: PAP degenerates to the baseline.
		res.Reports = engine.DedupeReports(append([]engine.Report(nil), golden.Reports...))
		res.Correct = true
		res.BestScore, _ = engine.BestReportScore(res.Reports)
		res.TotalCycles, res.RawTotalCycles = res.BaselineCycles, res.BaselineCycles
		res.Speedup, res.IdealSpeedup = 1, 1
		res.TransitionRatio = 1
		res.ReportIncrease = 1
		res.TotalEvents = int64(len(golden.Reports))
		return res, nil
	}

	segs := p.buildSegments(input, bounds)

	// Execute the segments, chaining truth through the timeline (§3.4,
	// Figure 6): each segment's state-vector transfer and event scan start
	// when it finishes and overlap everything else; only the
	// truth-propagation step chains serially. The FIV for segment j+1
	// departs as soon as segment j's truth is known. Both schedulers share
	// one bounded flow pool and produce bit-identical modelled metrics; the
	// parallel one (sched.go, the default) also overlaps the segments'
	// wall-clock simulation the way the hardware overlaps its half-cores.
	pool := p.newFlowPool(p.Cfg.Workers)
	defer pool.close() // always drained, even on abort: no worker leaks
	if p.Cfg.SegmentParallel {
		p.executeParallel(ctx, segs, input, bounds, pool)
	} else {
		p.executeSerial(ctx, segs, input, bounds, pool)
	}
	if err := abortError(segs, ctx.Err()); err != nil {
		return nil, err
	}
	// Mode post-pass: SFA composes the per-segment entry→exit mappings
	// left-to-right here, establishing every segment's unit truth before
	// report composition (a no-op in flow mode, where truth was decoded
	// from the golden boundaries before execution).
	p.execMode().finalize(p, segs, bounds)
	if err := abortError(segs, ctx.Err()); err != nil {
		return nil, err
	}
	res.RawTotalCycles = segs[len(segs)-1].KnownAt
	res.TotalCycles = res.RawTotalCycles
	if res.TotalCycles > res.BaselineCycles {
		// Golden execution (§5.1): the half-core that ran segment 1 keeps
		// processing the remaining segments sequentially with known start
		// states, so PAP never loses to the baseline.
		res.TotalCycles = res.BaselineCycles
		res.Clamped = true
	}
	res.Speedup = float64(res.BaselineCycles) / float64(res.TotalCycles)

	p.compose(res, segs)
	p.aggregate(res, segs)
	return res, nil
}

// buildSegments constructs the runtime flows of every segment: segment 0
// gets the golden flow (true start states known); segments j>0 get the ASG
// flow plus the execution mode's enumeration flows — one per FlowSpec of
// the boundary symbol's plan in flow mode (with unit truth decoded from
// the golden boundary), one per frontier-equivalence class in SFA mode
// (truth left to boundary composition).
func (p *Plan) buildSegments(input []byte, bounds []engine.Boundary) []*segmentResult {
	mode := p.execMode()
	segs := make([]*segmentResult, p.Segments)
	for j := 0; j < p.Segments; j++ {
		start, end := 0, len(input)
		if j > 0 {
			start = p.Cuts[j-1]
		}
		if j < len(p.Cuts) {
			end = p.Cuts[j]
		}
		seg := &segmentResult{
			Index: j,
			Start: start,
			End:   end,
			svc:   ap.NewSVC(p.Placement.Devices),
		}
		if j == 0 {
			golden := &flowRun{
				id:     0,
				asg:    true,
				alive:  true,
				attrib: []attribEntry{{CC: -1, Unit: -1, From: 0}},
			}
			seed := dropAllInput(sortedIDs(p.NFA.StartStates()), p.NFA)
			golden.svcID = seg.svc.AllocOverflow(seed, fingerprintOf(seed, p.NFA))
			seg.flows = []*flowRun{golden}
			seg.InitFlows = 1
			segs[j] = seg
			continue
		}
		seg.Sym = input[start-1]
		asg := &flowRun{
			id:     0,
			asg:    true,
			alive:  true,
			attrib: []attribEntry{{CC: -1, Unit: -1, From: int64(start)}},
		}
		asg.svcID = seg.svc.AllocOverflow(nil, 0)
		seg.flows = append(seg.flows, asg)
		if p.Cfg.Speculate {
			// Speculation: predict an idle boundary; no enumeration flows.
			seg.InitFlows = 1
			segs[j] = seg
			continue
		}
		mode.seedSegment(p, seg, bounds)
		seg.InitFlows = len(seg.flows)
		segs[j] = seg
	}
	return segs
}

// chainSegment performs the host-side truth-propagation step for one
// finished segment (§3.4): count the surviving flows, decode against the
// next segment's units, and fold the predecessor's KnownAt into this one —
// the serial link of the timeline. done is the segment's completion time
// (post-rerun under speculation); prevKnown is the predecessor's KnownAt (0
// for segment 0). Returns — and records — this segment's KnownAt.
func (p *Plan) chainSegment(seg *segmentResult, next *segmentResult, done, prevKnown ap.Cycles) ap.Cycles {
	if err := p.Cfg.fire(faultinject.TruthPublish, seg.Index, -1); err != nil {
		seg.err = err
		return 0 // callers check seg.err and never use this KnownAt
	}
	aliveFlows := 0
	for _, f := range seg.flows {
		if f.alive {
			aliveFlows++
		}
	}
	nextUnits := 0
	if next != nil && !p.Cfg.Speculate {
		nextUnits = len(p.SymbolPlanFor(next.Sym).Units)
	}
	par := hostParallelCycles(p.Placement.Devices, seg.EventsEmitted, nextUnits, aliveFlows)
	ser := hostSerialCycles(nextUnits, aliveFlows)
	seg.HostCycles = par + ser
	known := done + par
	if seg.Index > 0 && prevKnown > known {
		known = prevKnown
	}
	seg.KnownAt = known + ser
	return seg.KnownAt
}

// unitTruth evaluates every unit of a symbol plan against the golden
// enabled set at a boundary: a unit is true iff its whole (non-baseline)
// seed is enabled — the host-computable criterion that is sound (subset
// activity is subset reports) and complete (a fired parent enables all its
// children).
func unitTruth(sp *SymbolPlan, b engine.Boundary) []bool {
	enabled := make(map[nfa.StateID]struct{}, len(b.Enabled))
	for _, q := range b.Enabled {
		enabled[q] = struct{}{}
	}
	out := make([]bool, len(sp.Units))
	for i, u := range sp.Units {
		ok := true
		for _, q := range u.seedCheck {
			if _, in := enabled[q]; !in {
				ok = false
				break
			}
		}
		out[i] = ok && len(u.seedCheck) > 0
	}
	return out
}

func fingerprintOf(seed []nfa.StateID, n *nfa.NFA) uint64 {
	var fp uint64
	var prev nfa.StateID = -1
	for _, q := range seed { // sorted; skip duplicates
		if q != prev {
			fp ^= engine.Key(q)
			prev = q
		}
	}
	return fp
}

// dropAllInput removes always-enabled states (and duplicates) from a
// sorted seed: they are implicit in every flow's vector.
func dropAllInput(sorted []nfa.StateID, n *nfa.NFA) []nfa.StateID {
	isAll := make(map[nfa.StateID]bool, len(n.AllInputStates()))
	for _, q := range n.AllInputStates() {
		isAll[q] = true
	}
	out := sorted[:0]
	var prev nfa.StateID = -1
	for _, q := range sorted {
		if !isAll[q] && q != prev {
			out = append(out, q)
			prev = q
		}
	}
	return out
}

// compose filters every flow's reports by unit truth and unions them
// (§3.4): a report in connected component c of flow f is kept iff an
// attribution entry of f covers c with a true unit at or before the
// report's offset. Baseline-caused reports are kept via the always-true
// entries of the ASG/golden flows. The result is compared against the
// golden sequential run.
func (p *Plan) compose(res *Result, segs []*segmentResult) {
	ccIDs, _ := p.NFA.ConnectedComponents()
	var out []engine.Report
	for _, seg := range segs {
		for _, f := range seg.flows {
			for _, r := range f.reports {
				if attribTrue(f.attrib, seg.unitTrue, ccIDs[r.State], r.Offset) {
					out = append(out, r)
				}
			}
		}
	}
	res.Reports = engine.DedupeReports(out)
	res.Correct = engine.SameReports(res.Reports, res.Golden.Reports)
	res.BestScore, _ = engine.BestReportScore(res.Reports)
}

// aggregate fills the whole-run metrics from per-segment results.
func (p *Plan) aggregate(res *Result, segs []*segmentResult) {
	var flowRounds, rounds int64
	var switchCyc, cyc, hostCyc ap.Cycles
	var events, trans int64
	hostSamples := 0
	for _, seg := range segs {
		res.Segments = append(res.Segments, SegmentStats{
			Index:          seg.Index,
			Start:          seg.Start,
			End:            seg.End,
			BoundarySym:    seg.Sym,
			InitFlows:      seg.InitFlows,
			Rounds:         seg.Rounds,
			AvgFlows:       safeDiv(float64(seg.FlowRounds), float64(seg.Rounds)),
			Deactivations:  seg.Deactivations,
			Convergences:   seg.Convergences,
			FIVKills:       seg.FIVKills,
			FIVApplied:     seg.FIVApplied,
			Cycles:         seg.Cycles,
			SwitchCycles:   seg.SwitchCycles,
			HostCycles:     seg.HostCycles,
			KnownAt:        seg.KnownAt,
			Events:         seg.EventsEmitted,
			Transitions:      seg.Transitions,
			EngineSwitches:   seg.EngSwitches,
			PrefilterSkipped: seg.PrefilterSkip,
			BaselineSkipped:  seg.BaselineSkip,
			SFAMappings:      seg.SFAMappings,
			ComposeOps:       seg.ComposeOps,
			FPCollisions:     seg.FPCollisions,
			Mispredicted:     seg.Mispredicted,
			RerunCycles:      seg.RerunCycles,
		})
		if seg.Mispredicted {
			res.MispredictedSegments++
		}
		cyc += seg.Cycles
		switchCyc += seg.SwitchCycles
		events += seg.EventsEmitted
		trans += seg.Transitions
		res.EngineSwitches += seg.EngSwitches
		res.PrefilterSkipped += seg.PrefilterSkip
		res.BaselineSkipped += seg.BaselineSkip
		res.SFAMappings += int64(seg.SFAMappings)
		res.SFAComposeOps += seg.ComposeOps
		res.FingerprintCollisions += seg.FPCollisions
		if seg.Index > 0 {
			flowRounds += seg.FlowRounds
			rounds += int64(seg.Rounds)
		}
		if seg.Index < len(segs)-1 {
			hostCyc += seg.HostCycles
			hostSamples++
		}
	}
	res.PrefilterSkipped += res.Golden.PrefilterSkipped
	res.BaselineSkipped += res.Golden.BaselineSkippedBytes
	res.AvgActiveFlows = safeDiv(float64(flowRounds), float64(rounds))
	res.SwitchOverheadPct = 100 * safeDiv(float64(switchCyc), float64(cyc))
	if hostSamples > 0 {
		res.AvgHostCycles = hostCyc / ap.Cycles(hostSamples)
	}
	res.TotalEvents = events
	res.ReportIncrease = safeDiv(float64(events), float64(len(res.Golden.Reports)))
	if len(res.Golden.Reports) == 0 {
		res.ReportIncrease = float64(events + 1)
	}
	res.TransitionRatio = safeDiv(float64(trans), float64(res.Golden.Transitions))
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// CheckCorrect returns an error when the composed reports differ from the
// sequential run — which would indicate a bug in the parallelization, never
// an expected condition.
func (r *Result) CheckCorrect() error {
	if !r.Correct {
		return fmt.Errorf("core: composed reports differ from sequential execution (%d vs %d events)",
			len(r.Reports), len(r.Golden.Reports))
	}
	return nil
}
