// Package core implements the Parallel Automata Processor (PAP): the
// enumerative parallelization of NFA execution on the Micron AP described
// in Subramaniyan & Das, ISCA 2017.
//
// The pipeline (paper §3.5, Figure 7):
//
//	preprocessing: range profiling → cut-symbol choice → enumeration units
//	               (common-parent groups, §3.3.2) → CC-aware flow packing
//	               (§3.3.1) → State Vector Cache contents
//	runtime:       per-segment time-division-multiplexed flow execution with
//	               deactivation checks (§3.3.4), convergence checks (§3.3.3)
//	               and Flow Invalidation Vectors from preceding segments
//	               (§3.4), then host-side composition of true-flow reports.
//
// Run both executes the automaton functionally (producing exactly the
// sequential report set; this is checked) and models AP cycle costs with
// the published timing constants, yielding the speedups of Figure 8 and the
// overhead breakdowns of Figures 9-12.
package core

import (
	"fmt"
	"runtime"

	"pap/internal/ap"
	"pap/internal/engine"

	// Link the lazy-DFA backend so engine.LazyDFAKind and engine.MetaKind
	// are constructible on every core execution path (the backend
	// registers itself via engine.RegisterLazyDFA in its init).
	_ "pap/internal/engine/lazydfa"
	"pap/internal/faultinject"
)

// Config controls planning, execution, and the timing model. The zero
// value is not valid; start from DefaultConfig.
type Config struct {
	// Ranks selects the board size (1..4). The paper evaluates 1 and 4.
	Ranks int

	// TDMQuantum is k, the number of symbols each flow processes before a
	// context switch (§3.2). Larger quanta amortize switching; smaller
	// quanta deactivate false flows sooner.
	TDMQuantum int

	// ConvergenceEvery is the number of TDM steps between convergence
	// checks (§3.3.3; the paper invokes them every ten TDM steps).
	ConvergenceEvery int

	// SwitchCycles is the flow context-switch cost in symbol cycles
	// (default ap.FlowSwitchCycles = 3; §5.3 studies 2× and 4×).
	SwitchCycles int

	// Utilization is the STE placement density passed to ap.Place.
	Utilization float64

	// HalfCoresOverride, when > 0, forces the per-replica footprint instead
	// of deriving it from the state count (Table 1 footprints reflect the
	// proprietary place&route, which deviates from pure counting for some
	// benchmarks, e.g. SPM).
	HalfCoresOverride int

	// MaxSegments, when > 0, caps the number of input segments below the
	// board limit.
	MaxSegments int

	// CutSymbol, when >= 0, forces the partition symbol instead of
	// profiling the input for a frequent low-range symbol (§3.1).
	CutSymbol int

	// Workers bounds the simulator goroutines of the shared flow-execution
	// pool (one pool per run; every segment draws from it). It affects
	// wall-clock simulation speed only, never modelled AP cycles.
	// Default: GOMAXPROCS.
	Workers int

	// SegmentParallel executes the k input segments concurrently from t=0
	// on their own goroutines — the paper's actual machine model (§3,
	// Figure 6) — chaining boundary truth through channels so each
	// segment's Flow Invalidation Vector fires the moment its predecessor's
	// truth is known. Modelled ap.Cycles metrics are bit-identical to the
	// serial scheduler (the conformance parity invariant asserts this);
	// only real wall-clock time changes. Default true (DefaultConfig); set
	// false for the serial scheduler, kept for the timing model's
	// determinism checks and single-threaded debugging.
	SegmentParallel bool

	// Engine selects the execution backend for every engine this run
	// creates — the golden run, the per-flow TDM engines, and speculative
	// re-runs. The zero value (engine.Auto) adapts between the sparse
	// frontier-list and dense bit-vector representations by frontier
	// density; engine.SparseKind and engine.BitKind force one. The choice
	// affects simulator wall-clock speed only, never modelled AP cycles or
	// results (the backends are observably equivalent).
	Engine engine.Kind

	// Mode selects the parallel execution strategy: ModeFlows (zero value)
	// is the paper's flow enumeration with FIV/convergence kills; ModeSFA
	// runs one flow per frontier-equivalence class and composes the
	// per-segment entry→exit state mappings at segment boundaries instead
	// of sending Flow Invalidation Vectors (see mode.go). Both modes
	// produce exactly the sequential report set (checked); modelled cycle
	// metrics differ because the strategies do different work.
	Mode Mode

	// Speculate replaces enumeration with speculative execution (the
	// paper's §6 future-work direction): each segment predicts that its
	// boundary carries no enumeration activity and runs only the ASG flow;
	// mispredicted segments re-execute with the true start states once the
	// truth chain delivers them. Exactness is preserved. See
	// internal/core/speculate.go and the Speculation experiment.
	Speculate bool

	// Scored enables per-transition score tracking (the scored-NFA sequence
	// alignment model; see engine.Scorer): every engine the run creates
	// tracks best-path scores, reports carry them, flows inherit exact entry
	// scores from the golden boundaries, and Result gains BestScore.
	// Modelled cycles are unchanged — scores ride on the flows the machinery
	// already runs. validate() forces DisableConvergence on and
	// AbsorbDeactivation off: both merges compare frontiers score-blind, and
	// two flows with equal frontiers can carry different score vectors, so
	// merging could lose the best score. (The zero-frontier deactivation
	// check is unaffected: a dead flow carries no scores.)
	Scored bool

	// AbsorbDeactivation kills a flow whose enumeration activity has been
	// absorbed by the always-active baseline: at that instant its full
	// hardware vector equals the ASG flow's, and equal vectors evolve
	// identically forever. On the real machine this happens naturally —
	// the ASG flow is an SVC entry like any other, so the §3.3.3 pairwise
	// convergence checks merge absorbed flows into it. Default true
	// (paper-faithful); disable to study zero-mask-only deactivation.
	AbsorbDeactivation bool

	// Ablation switches (used by the design-choice benchmarks).
	DisableCCMerge      bool // one flow per enumeration unit
	DisableParentMerge  bool // one unit per range state
	DisableConvergence  bool // skip §3.3.3 checks
	DisableDeactivation bool // skip §3.3.4 checks
	DisableFIV          bool // never send Flow Invalidation Vectors
	DisablePrefilter    bool // never skip dead-frontier input regions
	// DisableBaselineSkip turns off the exact baseline-skip fast path
	// (start-class scan over ASG-only regions). Unlike DisablePrefilter it
	// never changes any observable — reports, frontiers, and modelled
	// cycles are bit-identical either way — so it exists purely as a
	// conformance ablation and for isolating the fast path in benchmarks.
	DisableBaselineSkip bool

	// Fault, when non-nil, is fired at every instrumented pipeline point
	// (plan build, each TDM round boundary, FIV transfers, truth
	// publication, SFA boundary composition) and may delay the stage,
	// fail it with an error, or
	// panic — the deterministic chaos layer (internal/faultinject). A
	// returned error aborts the run with *Aborted; a panic is recovered
	// at the segment-goroutine boundary and converted likewise. nil (the
	// default) costs one comparison per round and nothing per symbol.
	Fault faultinject.Hook
}

// DefaultConfig returns the paper's operating point for the given number
// of ranks.
func DefaultConfig(ranks int) Config {
	return Config{
		Ranks:              ranks,
		TDMQuantum:         64,
		ConvergenceEvery:   10,
		SwitchCycles:       ap.FlowSwitchCycles,
		Utilization:        1.0,
		CutSymbol:          -1,
		Workers:            runtime.GOMAXPROCS(0),
		SegmentParallel:    true,
		AbsorbDeactivation: true,
	}
}

// validate normalises and checks the configuration.
func (c *Config) validate() error {
	if c.Ranks < 1 || c.Ranks > ap.MaxRanks {
		return fmt.Errorf("core: Ranks = %d out of [1,%d]", c.Ranks, ap.MaxRanks)
	}
	if c.TDMQuantum < 1 {
		return fmt.Errorf("core: TDMQuantum = %d must be >= 1", c.TDMQuantum)
	}
	if c.ConvergenceEvery < 1 {
		return fmt.Errorf("core: ConvergenceEvery = %d must be >= 1", c.ConvergenceEvery)
	}
	if c.SwitchCycles < 0 {
		return fmt.Errorf("core: SwitchCycles = %d must be >= 0", c.SwitchCycles)
	}
	if c.Utilization <= 0 || c.Utilization > 1 {
		return fmt.Errorf("core: Utilization = %v out of (0,1]", c.Utilization)
	}
	if c.CutSymbol > 255 {
		return fmt.Errorf("core: CutSymbol = %d out of [-1,255]", c.CutSymbol)
	}
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Engine > engine.MaxKind {
		return fmt.Errorf("core: unknown engine kind %d", c.Engine)
	}
	if c.Mode > maxMode {
		return fmt.Errorf("core: unknown execution mode %d", c.Mode)
	}
	if c.Mode == ModeSFA && c.Speculate {
		return fmt.Errorf("core: Mode=sfa is incompatible with Speculate (speculation predicts boundaries instead of composing mappings)")
	}
	if c.Scored {
		// Score-blind flow merges are inexact (see the Scored field docs);
		// forcing them off is trivially exact and keeps serial/parallel
		// modelled-cycle parity.
		c.DisableConvergence = true
		c.AbsorbDeactivation = false
	}
	return nil
}

// Host-side cost model, in AP symbol cycles (7.5 ns each), for the false
// path decoding of §3.4 (Figure 11). The host transfers one state vector
// per device, scans it, walks the flow table, and runs the per-unit subset
// checks that identify true flows; the same pass assembles the FIV and the
// Boolean array used to filter the output event buffer.
const (
	// svScanCycles is the host time to interpret one transferred state
	// vector ("another few tens of symbol cycles", §3.4).
	svScanCycles = 60
	// flowTableCycles is charged per SVC entry visited.
	flowTableCycles = 2
	// unitCheckDiv divides the (units × flows) subset-check work done in
	// the overlapped phase, and the per-unit table lookups of the serial
	// phase: both are 64-bit vectorised on the host.
	unitCheckDiv = 64
	// eventDecodeCycles is charged per output-buffer entry parsed, in both
	// the sequential baseline and PAP (§4.1: post-processing accounted in
	// both).
	eventDecodeCycles = 2
)

// The host work for one finished segment splits into two parts that the
// timeline treats differently (§3.4, Figure 6):
//
//   - hostParallelCycles: transferring and scanning the segment's state
//     vectors and parsing its output events. This starts as soon as the
//     segment finishes and overlaps both other segments' decodes (the host
//     has many cores) and remaining AP processing.
//   - hostSerialCycles: the truth-propagation step, which depends on the
//     previous segment's truth and therefore chains serially. Because each
//     next-segment unit lies in exactly one connected component, its subset
//     test against every candidate flow vector can be precomputed during
//     the overlapped phase; the serial step only selects the true flow per
//     component, looks up the precomputed unit answers, and emits the
//     Boolean array + FIV — per-flow table work plus vectorised lookups.
func hostParallelCycles(devices int, events int64, units, flows int) ap.Cycles {
	if devices < 1 {
		devices = 1
	}
	return ap.Cycles(devices*(ap.SVTransferCycles+svScanCycles)) +
		ap.Cycles(events*eventDecodeCycles) +
		ap.Cycles(units*flows/unitCheckDiv)
}

func hostSerialCycles(units, flows int) ap.Cycles {
	return ap.Cycles(flows*flowTableCycles + units/unitCheckDiv)
}

// hostDecodeCycles is the total Tcpu for one segment (Figure 11).
func hostDecodeCycles(devices, units, flows int) ap.Cycles {
	return hostParallelCycles(devices, 0, units, flows) + hostSerialCycles(units, flows)
}
