package core

import (
	"math/rand"
	"testing"

	"pap/internal/ap"
	"pap/internal/engine"
	"pap/internal/nfa"
)

func TestParseMode(t *testing.T) {
	for i, name := range ModeNames() {
		m, err := ParseMode(name)
		if err != nil || m != Mode(i) {
			t.Fatalf("ParseMode(%q) = %v, %v", name, m, err)
		}
		if m.String() != name {
			t.Fatalf("Mode(%d).String() = %q, want %q", i, m.String(), name)
		}
	}
	if _, err := ParseMode("nope"); err == nil {
		t.Fatal("ParseMode accepted an unknown mode")
	}
}

func TestSFAModeRejectsSpeculate(t *testing.T) {
	cfg := testConfig(1)
	cfg.Mode = ModeSFA
	cfg.Speculate = true
	if err := cfg.validate(); err == nil {
		t.Fatal("Mode=sfa with Speculate validated")
	}
	cfg.Mode = maxMode + 1
	cfg.Speculate = false
	if err := cfg.validate(); err == nil {
		t.Fatal("out-of-range Mode validated")
	}
}

// TestSFAModeExact: SFA composition must reproduce the sequential report
// set on pattern workloads, under both schedulers and several segment
// counts, and must actually run mapping flows (SFAMappings > 0 whenever
// there is enumeration work).
func TestSFAModeExact(t *testing.T) {
	n := mustCompile(t, "abc", "abd", "a.c", "xyz+")
	rng := rand.New(rand.NewSource(21))
	input := genInput(rng, 1<<14, []string{"abc", "abd", "xyz"})
	for _, segs := range []int{2, 4, 8} {
		for _, parallel := range []bool{false, true} {
			cfg := testConfig(4)
			cfg.MaxSegments = segs
			cfg.SegmentParallel = parallel
			cfg.Mode = ModeSFA
			res, err := Run(n, input, cfg)
			if err != nil {
				t.Fatalf("segs=%d parallel=%v: %v", segs, parallel, err)
			}
			if err := res.CheckCorrect(); err != nil {
				t.Fatalf("segs=%d parallel=%v: %v", segs, parallel, err)
			}
			if res.Mode != ModeSFA {
				t.Fatalf("Result.Mode = %v, want sfa", res.Mode)
			}
			if res.Plan.Segments > 1 && res.SFAMappings == 0 {
				t.Fatalf("segs=%d: no SFA mappings ran", segs)
			}
			if res.Plan.Segments > 1 && res.SFAComposeOps == 0 {
				t.Fatalf("segs=%d: no compose ops recorded", segs)
			}
			for _, ss := range res.Segments {
				if ss.FIVApplied || ss.FIVKills != 0 {
					t.Fatalf("segment %d saw FIV traffic in SFA mode: %+v", ss.Index, ss)
				}
			}
		}
	}
}

// TestSFAModeMatchesFlowMode: both modes must agree on reports — and on
// every unit-truth decision, which the report comparison implies — across
// random NFAs, inputs and configs.
func TestSFAModeMatchesFlowMode(t *testing.T) {
	trials := 40
	if testing.Short() {
		trials = 10
	}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < trials; trial++ {
		n := randomNFA(rng, 4+rng.Intn(24))
		input := make([]byte, 512+rng.Intn(1<<13))
		alpha := []byte("abcd")
		for i := range input {
			input[i] = alpha[rng.Intn(len(alpha))]
		}
		cfg := testConfig(1 + rng.Intn(4))
		cfg.Workers = 1 + rng.Intn(4)
		cfg.TDMQuantum = 8 << rng.Intn(4)
		cfg.ConvergenceEvery = 1 + rng.Intn(12)
		cfg.AbsorbDeactivation = rng.Intn(4) != 0
		cfg.SegmentParallel = rng.Intn(2) == 0

		flows := cfg
		flows.Mode = ModeFlows
		sfa := cfg
		sfa.Mode = ModeSFA
		rf, err := Run(n, input, flows)
		if err != nil {
			t.Fatalf("trial %d: flows: %v", trial, err)
		}
		rs, err := Run(n, input, sfa)
		if err != nil {
			t.Fatalf("trial %d: sfa: %v", trial, err)
		}
		if err := rf.CheckCorrect(); err != nil {
			t.Fatalf("trial %d: flows incorrect: %v", trial, err)
		}
		if err := rs.CheckCorrect(); err != nil {
			t.Fatalf("trial %d: sfa incorrect: %v", trial, err)
		}
		if !engine.SameReports(rf.Reports, rs.Reports) {
			t.Fatalf("trial %d: modes disagree: %d vs %d reports", trial, len(rf.Reports), len(rs.Reports))
		}
	}
}

// TestSFASchedulerParity: within SFA mode, the serial and parallel
// schedulers must produce bit-identical modelled metrics, exactly like
// flow mode (the composition pass runs after the scheduler joins, so it
// cannot observe interleaving).
func TestSFASchedulerParity(t *testing.T) {
	n := mustCompile(t, "abc", "abd", "a.c", "xyz+")
	rng := rand.New(rand.NewSource(42))
	input := genInput(rng, 1<<15, []string{"abc", "abd", "xyz"})
	for _, v := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"default", func(*Config) {}},
		{"workers1", func(c *Config) { c.Workers = 1 }},
		{"quantum8", func(c *Config) { c.TDMQuantum = 8 }},
		{"no-convergence", func(c *Config) { c.DisableConvergence = true }},
		{"no-absorb", func(c *Config) { c.AbsorbDeactivation = false }},
		{"bit-engine", func(c *Config) { c.Engine = engine.BitKind }},
	} {
		cfg := testConfig(4)
		cfg.Mode = ModeSFA
		v.mutate(&cfg)
		runBoth(t, "sfa-"+v.name, n, input, cfg)
	}
}

// TestSFASingleSegmentIdentity: a single-segment plan never composes —
// the identity composition degenerates to the golden run, with no
// mappings, no compose ops, and exact reports.
func TestSFASingleSegmentIdentity(t *testing.T) {
	n := mustCompile(t, "abc")
	cfg := testConfig(1)
	cfg.MaxSegments = 1
	cfg.Mode = ModeSFA
	res, err := Run(n, []byte("zzabczz"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckCorrect(); err != nil {
		t.Fatal(err)
	}
	if res.Plan.Segments != 1 {
		t.Fatalf("Segments = %d, want 1", res.Plan.Segments)
	}
	if res.Mode != ModeSFA {
		t.Fatalf("Mode = %v, want sfa", res.Mode)
	}
	if res.SFAMappings != 0 || res.SFAComposeOps != 0 {
		t.Fatalf("degenerate run recorded SFA work: %d mappings, %d ops",
			res.SFAMappings, res.SFAComposeOps)
	}
}

// TestSFATinyInputs mirrors TestRunTinyInputs under SFA mode: degenerate
// and near-degenerate inputs must stay exact, never panic.
func TestSFATinyInputs(t *testing.T) {
	n := edgeNFA(t)
	for _, tc := range []struct {
		name  string
		input string
		segs  int
	}{
		{"one-byte", "b", 4},
		{"shorter-than-k", "abab", 16},
		{"equal-to-k", "abababab", 8},
		{"boundary-heavy", "xyababab", 7},
	} {
		cfg := DefaultConfig(1)
		cfg.MaxSegments = tc.segs
		cfg.TDMQuantum = 2
		cfg.Workers = 1
		cfg.Mode = ModeSFA
		res, err := Run(n, []byte(tc.input), cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := res.CheckCorrect(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
	}
}

// TestSFAZeroLengthSegment: a hand-built degenerate segment (Start == End)
// must compose as the identity mapping — its exit is exactly its entry
// seeds — so a successor's truth derived from it matches flow mode's.
func TestSFAZeroLengthSegment(t *testing.T) {
	n := mustCompile(t, "abc")
	input := []byte("abcabcabc")
	cfg := testConfig(1)
	cfg.Mode = ModeSFA
	p, err := NewPlan(n, input, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seg := &segmentResult{Index: 1, Start: 5, End: 5, Sym: input[4], svc: ap.NewSVC(1)}
	asg := &flowRun{id: 0, asg: true, alive: true}
	asg.svcID = seg.svc.AllocOverflow(nil, 0)
	seg.flows = []*flowRun{asg}
	p.execMode().seedSegment(p, seg, nil)
	p.runSegment(seg, input, maxCycles)
	if seg.Rounds != 0 {
		t.Fatalf("Rounds = %d, want 0", seg.Rounds)
	}
	// Zero rounds means no Save ever ran: each class flow's SVC context is
	// still its seed, so with every unit true the exit union must equal
	// the union of the plan's unit seeds — the identity mapping.
	for ui := range seg.unitTrue {
		seg.unitTrue[ui] = true
	}
	exit := map[nfa.StateID]struct{}{}
	sfaExit(seg, exit)
	want := map[nfa.StateID]struct{}{}
	for _, u := range p.SymbolPlanFor(seg.Sym).Units {
		for _, q := range u.seedCheck {
			want[q] = struct{}{}
		}
	}
	if len(exit) != len(want) {
		t.Fatalf("identity exit has %d states, want %d", len(exit), len(want))
	}
	for q := range want {
		if _, ok := exit[q]; !ok {
			t.Fatalf("identity exit missing state %d", q)
		}
	}
}
