package core

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"pap/internal/faultinject"
)

// chaosConfig is a run shape that exercises every fault stage: several
// segments (so FIV transfers and truth publications happen), a small TDM
// quantum (so every segment runs many rounds), both schedulers.
func chaosConfig(parallel bool) Config {
	cfg := DefaultConfig(1)
	cfg.Workers = 2
	cfg.MaxSegments = 4
	cfg.TDMQuantum = 8
	cfg.SegmentParallel = parallel
	return cfg
}

// waitGoroutines fails the test if the goroutine count has not drained
// back to the baseline (plus slack for runtime helpers) within 2s.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d running, baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// checkAbortProgress asserts the per-segment progress attached to an abort
// is internally consistent.
func checkAbortProgress(t *testing.T, err error) {
	t.Helper()
	var ab *Aborted
	if !errors.As(err, &ab) {
		return // plan-build faults abort before any segment exists
	}
	for _, p := range ab.Segments {
		if p.Start > p.Pos || p.Pos > p.End || p.Start > p.End {
			t.Errorf("segment progress out of range: %+v", p)
		}
		if p.Rounds < 0 {
			t.Errorf("negative rounds: %+v", p)
		}
	}
}

// TestChaosStages injects every action at every pipeline stage, under both
// schedulers, and asserts the documented failure contract: a clean error
// carrying the injected cause (or the deadline, for delays), a nil result,
// and no goroutine left behind.
func TestChaosStages(t *testing.T) {
	nfa := mustCompile(t, "abc", "abd", "xyz")
	rng := rand.New(rand.NewSource(7))
	input := genInput(rng, 8192, []string{"abc", "xyz"})

	// FIV transfers only happen when enumeration flows are still alive at
	// the modelled arrival time, so that stage gets the workload from
	// TestFIVKillsFalseFlows: open-ended patterns, FIV as the only flow
	// killer, a forced cut symbol with a non-empty range.
	fivNFA := mustCompile(t, "Xab.*y", "Xcd.*y")
	fivInput := make([]byte, 1<<15)
	for i := range fivInput {
		fivInput[i] = "Xabcdy  "[rng.Intn(8)]
	}

	stages := []faultinject.Stage{
		faultinject.PlanBuild,
		faultinject.RoundStep,
		faultinject.FIVTransfer,
		faultinject.TruthPublish,
		faultinject.SFACompose,
	}
	actions := []faultinject.Action{faultinject.Fail, faultinject.Panic, faultinject.Delay}

	baseline := runtime.NumGoroutine()
	for _, parallel := range []bool{false, true} {
		for _, stage := range stages {
			for _, action := range actions {
				name := stage.String() + "/" + action.String()
				if parallel {
					name += "/parallel"
				} else {
					name += "/serial"
				}
				t.Run(name, func(t *testing.T) {
					set := faultinject.New(faultinject.Fault{
						Stage:   stage,
						Segment: -1,
						Round:   -1,
						Action:  action,
						Sleep:   2 * time.Millisecond,
						Once:    action != faultinject.Delay,
					})
					cfg := chaosConfig(parallel)
					cfg.Fault = set.Hook
					n, in := nfa, input
					if stage == faultinject.FIVTransfer {
						n, in = fivNFA, fivInput
						cfg.DisableConvergence = true
						cfg.DisableDeactivation = true
						cfg.CutSymbol = 'X'
					}
					if stage == faultinject.SFACompose {
						// The boundary-composition pass only exists in
						// SFA mode.
						cfg.Mode = ModeSFA
					}

					ctx := context.Background()
					var cancel context.CancelFunc
					if action == faultinject.Delay {
						// A persistent delay alone never fails the run; pair
						// it with a deadline the repeated sleeps must blow.
						ctx, cancel = context.WithTimeout(ctx, 5*time.Millisecond)
						defer cancel()
					}
					res, err := RunContext(ctx, n, in, cfg)

					if err == nil {
						if action != faultinject.Delay {
							t.Fatalf("run succeeded despite %s fault (fired: %v)", action, set.Fired())
						}
						// Delay at a stage the run never reached (e.g. a
						// plan-build delay is brief) may still finish in time.
						if res == nil {
							t.Fatal("nil result with nil error")
						}
						return
					}
					if res != nil {
						t.Fatalf("non-nil result alongside error %v", err)
					}
					if len(set.Fired()) == 0 && action != faultinject.Delay {
						// (A delay run can hit its deadline before the
						// instrumented stage is ever reached.)
						t.Fatalf("error %v but no fault fired", err)
					}
					checkAbortProgress(t, err)
					switch action {
					case faultinject.Fail:
						if !errors.Is(err, faultinject.ErrInjected) {
							t.Fatalf("error %v does not wrap ErrInjected", err)
						}
					case faultinject.Panic:
						if !strings.Contains(err.Error(), "panic") {
							t.Fatalf("error %v does not mention the panic", err)
						}
					case faultinject.Delay:
						if !errors.Is(err, context.DeadlineExceeded) {
							t.Fatalf("error %v is not the deadline", err)
						}
					}
				})
			}
		}
	}
	waitGoroutines(t, baseline)
}

// TestChaosSeeded sweeps seeded random fault sets — 500 of them in full
// mode, exercising arbitrary combinations of delays, failures and panics
// across both schedulers — and asserts the run always ends in one of the
// two legal outcomes: a correct result, or a nil result with a
// well-formed abort error. Every scenario is reproducible from its seed.
func TestChaosSeeded(t *testing.T) {
	scenarios := 500
	if testing.Short() {
		scenarios = 60
	}
	nfa := mustCompile(t, "abc", "abd", "xyz")
	rng := rand.New(rand.NewSource(11))
	input := genInput(rng, 4096, []string{"abc", "xyz"})

	baseline := runtime.NumGoroutine()
	for seed := int64(1); seed <= int64(scenarios); seed++ {
		set := faultinject.NewSeeded(seed, 3)
		cfg := chaosConfig(seed%2 == 0)
		cfg.TDMQuantum = 16
		if seed%3 == 0 {
			// A third of the scenarios run SFA mode, so seeded faults
			// (including the sfa-compose stage NewSeeded can draw) land on
			// the composition path too.
			cfg.Mode = ModeSFA
		}
		cfg.Fault = set.Hook

		// The deadline bounds scenarios dominated by persistent delays;
		// hitting it is a legal outcome, not a failure.
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		res, err := RunContext(ctx, nfa, input, cfg)
		cancel()

		switch {
		case err == nil:
			if res == nil {
				t.Fatalf("seed %d: nil result with nil error", seed)
			}
			if err := res.CheckCorrect(); err != nil {
				t.Fatalf("seed %d: surviving run incorrect: %v", seed, err)
			}
		default:
			if res != nil {
				t.Fatalf("seed %d: non-nil result alongside error %v", seed, err)
			}
			var ab *Aborted
			legal := errors.As(err, &ab) ||
				errors.Is(err, faultinject.ErrInjected) ||
				errors.Is(err, context.DeadlineExceeded)
			if !legal {
				t.Fatalf("seed %d: unexpected error shape: %v", seed, err)
			}
			checkAbortProgress(t, err)
		}
	}
	waitGoroutines(t, baseline)
}

// TestChaosCancelMidRun cancels a run from the outside mid-flight and
// asserts the context error comes back wrapped with progress, under both
// schedulers, with no goroutines left behind.
func TestChaosCancelMidRun(t *testing.T) {
	nfa := mustCompile(t, "abc", "abd", "xyz")
	rng := rand.New(rand.NewSource(13))
	input := genInput(rng, 8192, []string{"abc", "xyz"})

	baseline := runtime.NumGoroutine()
	for _, parallel := range []bool{false, true} {
		ctx, cancel := context.WithCancel(context.Background())
		cfg := chaosConfig(parallel)
		// Cancel from inside the pipeline at a deterministic modelled point
		// so the test does not depend on wall-clock racing.
		cfg.Fault = func(p faultinject.Point) error {
			if p.Stage == faultinject.RoundStep && p.Round == 2 {
				cancel()
			}
			return nil
		}
		res, err := RunContext(ctx, nfa, input, cfg)
		cancel()
		if err == nil {
			t.Fatalf("parallel=%v: run survived cancellation", parallel)
		}
		if res != nil {
			t.Fatalf("parallel=%v: non-nil result alongside %v", parallel, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallel=%v: error %v does not wrap context.Canceled", parallel, err)
		}
		var ab *Aborted
		if !errors.As(err, &ab) {
			t.Fatalf("parallel=%v: error %v is not *Aborted", parallel, err)
		}
		checkAbortProgress(t, err)
	}
	waitGoroutines(t, baseline)
}

// TestChaosReplayDeterminism replays a failing seeded scenario and asserts
// the same fault fires at the same modelled coordinates: the replay
// contract that makes chaos failures debuggable.
func TestChaosReplayDeterminism(t *testing.T) {
	nfa := mustCompile(t, "abc", "abd", "xyz")
	rng := rand.New(rand.NewSource(17))
	input := genInput(rng, 4096, []string{"abc", "xyz"})

	run := func(seed int64) (error, []faultinject.Point) {
		set := faultinject.NewSeeded(seed, 3)
		cfg := chaosConfig(false) // serial scheduler: fully deterministic firing order
		cfg.TDMQuantum = 16
		cfg.Fault = set.Hook
		_, err := Run(nfa, input, cfg)
		return err, set.Fired()
	}
	for seed := int64(1); seed <= 40; seed++ {
		err1, fired1 := run(seed)
		err2, fired2 := run(seed)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("seed %d: outcome diverged: %v vs %v", seed, err1, err2)
		}
		if len(fired1) != len(fired2) {
			t.Fatalf("seed %d: fired %d points, then %d", seed, len(fired1), len(fired2))
		}
		for i := range fired1 {
			if fired1[i] != fired2[i] {
				t.Fatalf("seed %d: firing %d diverged: %v vs %v", seed, i, fired1[i], fired2[i])
			}
		}
	}
}
