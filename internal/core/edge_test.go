package core

import (
	"testing"

	"pap/internal/nfa"
)

// edgeNFA is a small two-component automaton with both start kinds.
func edgeNFA(t *testing.T) *nfa.NFA {
	t.Helper()
	b := nfa.NewBuilder("edge")
	q0 := b.AddState(nfa.ClassOf('a'), nfa.AllInput)
	q1 := b.AddReportState(nfa.ClassOf('b'), 0, 1)
	b.AddEdge(q0, q1)
	q2 := b.AddState(nfa.ClassOf('x'), nfa.StartOfData)
	q3 := b.AddReportState(nfa.ClassOf('y'), 0, 2)
	b.AddEdge(q2, q3)
	b.AddEdge(q3, q3)
	return b.MustBuild()
}

// allASGNFA is an automaton of only all-input states: no start-of-data
// states, no enumeration activity, every flow identical to the baseline.
func allASGNFA(t *testing.T) *nfa.NFA {
	t.Helper()
	b := nfa.NewBuilder("all-asg")
	q0 := b.AddReportState(nfa.ClassOf('a'), nfa.AllInput, 1)
	q1 := b.AddReportState(nfa.ClassOf('b'), nfa.AllInput, 2)
	b.AddEdge(q0, q1)
	b.AddEdge(q1, q0)
	return b.MustBuild()
}

// TestRunTinyInputs: 1-byte inputs and inputs shorter than the requested
// segment count must degrade gracefully (fewer or single segments), never
// panic, and stay exact.
func TestRunTinyInputs(t *testing.T) {
	n := edgeNFA(t)
	for _, tc := range []struct {
		name  string
		input string
		segs  int
	}{
		{"one-byte", "b", 4},
		{"shorter-than-k", "abab", 16},
		{"equal-to-k", "abababab", 8},
		{"boundary-heavy", "xyababab", 7},
	} {
		cfg := DefaultConfig(1)
		cfg.MaxSegments = tc.segs
		cfg.TDMQuantum = 2
		cfg.Workers = 1
		res, err := Run(n, []byte(tc.input), cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := res.CheckCorrect(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Plan.Segments > len(tc.input) {
			t.Errorf("%s: %d segments for %d bytes", tc.name, res.Plan.Segments, len(tc.input))
		}
	}
}

// TestRunEmptyInputRejected: empty input must error cleanly, not panic.
func TestRunEmptyInputRejected(t *testing.T) {
	if _, err := Run(edgeNFA(t), nil, DefaultConfig(1)); err == nil {
		t.Fatal("empty input accepted")
	}
}

// TestRunAllASG: a pure-ASG automaton parallelizes with empty enumeration
// plans (every boundary range is all-input states only); flows deactivate
// immediately and composition must still be exact.
func TestRunAllASG(t *testing.T) {
	n := allASGNFA(t)
	input := []byte("ababbaabab, abba! abab? abbaabab")
	for _, segs := range []int{2, 5, 16} {
		cfg := DefaultConfig(1)
		cfg.MaxSegments = segs
		cfg.TDMQuantum = 2
		cfg.Workers = 2
		res, err := Run(n, input, cfg)
		if err != nil {
			t.Fatalf("segs=%d: %v", segs, err)
		}
		if err := res.CheckCorrect(); err != nil {
			t.Fatalf("segs=%d: %v", segs, err)
		}
	}
}

// TestRunAllASGSpeculative: the speculation path on an all-ASG automaton —
// every boundary is trivially idle, so no segment may mispredict.
func TestRunAllASGSpeculative(t *testing.T) {
	n := allASGNFA(t)
	cfg := DefaultConfig(1)
	cfg.MaxSegments = 4
	cfg.TDMQuantum = 2
	cfg.Speculate = true
	res, err := Run(n, []byte("abbaababbaababbaabba"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckCorrect(); err != nil {
		t.Fatal(err)
	}
	if res.MispredictedSegments != 0 {
		t.Errorf("%d mispredicted segments on an idle-boundary automaton", res.MispredictedSegments)
	}
}
