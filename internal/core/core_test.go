package core

import (
	"math/rand"
	"testing"

	"pap/internal/ap"
	"pap/internal/engine"
	"pap/internal/nfa"
	"pap/internal/regex"
)

func testConfig(ranks int) Config {
	cfg := DefaultConfig(ranks)
	cfg.Workers = 2
	return cfg
}

func mustCompile(t *testing.T, patterns ...string) *nfa.NFA {
	t.Helper()
	n, err := regex.CompilePatterns("test", patterns)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// genInput builds an input with embedded pattern occurrences and frequent
// delimiter symbols for cutting.
func genInput(rng *rand.Rand, size int, inject []string) []byte {
	out := make([]byte, 0, size)
	alpha := []byte("abcdefgh \n")
	for len(out) < size {
		if len(inject) > 0 && rng.Intn(12) == 0 {
			out = append(out, inject[rng.Intn(len(inject))]...)
			continue
		}
		out = append(out, alpha[rng.Intn(len(alpha))])
	}
	return out[:size]
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Ranks: 0, TDMQuantum: 8, ConvergenceEvery: 1, Utilization: 1},
		{Ranks: 9, TDMQuantum: 8, ConvergenceEvery: 1, Utilization: 1},
		{Ranks: 1, TDMQuantum: 0, ConvergenceEvery: 1, Utilization: 1},
		{Ranks: 1, TDMQuantum: 8, ConvergenceEvery: 0, Utilization: 1},
		{Ranks: 1, TDMQuantum: 8, ConvergenceEvery: 1, Utilization: 0},
		{Ranks: 1, TDMQuantum: 8, ConvergenceEvery: 1, Utilization: 1, SwitchCycles: -1},
		{Ranks: 1, TDMQuantum: 8, ConvergenceEvery: 1, Utilization: 1, CutSymbol: 300},
	}
	for i, c := range bad {
		if err := c.validate(); err == nil {
			t.Errorf("case %d: config %+v validated", i, c)
		}
	}
	good := DefaultConfig(1)
	if err := good.validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if good.Workers < 1 {
		t.Fatal("default Workers < 1")
	}
}

func TestPlanBasics(t *testing.T) {
	n := mustCompile(t, "abc", "abd", "xyz")
	rng := rand.New(rand.NewSource(1))
	input := genInput(rng, 8192, []string{"abc", "xyz"})
	cfg := testConfig(1)
	p, err := NewPlan(n, input, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Segments < 2 {
		t.Fatalf("Segments = %d, want >= 2", p.Segments)
	}
	if len(p.Cuts) != p.Segments-1 {
		t.Fatalf("cuts %d for %d segments", len(p.Cuts), p.Segments)
	}
	for i := 1; i < len(p.Cuts); i++ {
		if p.Cuts[i] <= p.Cuts[i-1] {
			t.Fatalf("cuts not increasing: %v", p.Cuts)
		}
	}
	sp := p.SymbolPlanFor(p.CutSym)
	if sp.RangeSize < 0 || len(sp.Flows) > len(sp.Units) && len(sp.Units) > 0 {
		t.Fatalf("suspicious plan: range=%d flows=%d units=%d", sp.RangeSize, len(sp.Flows), len(sp.Units))
	}
	if p.MaxFlows() < 1 {
		t.Fatal("MaxFlows < 1")
	}
}

func TestPlanErrors(t *testing.T) {
	n := mustCompile(t, "abc")
	if _, err := NewPlan(n, nil, testConfig(1)); err == nil {
		t.Error("empty input accepted")
	}
	bad := testConfig(1)
	bad.Ranks = 0
	if _, err := NewPlan(n, []byte("x"), bad); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestCutPositions(t *testing.T) {
	input := []byte("aaaXaaaXaaaXaaaX") // X at 3,7,11,15
	cuts, exact := cutPositions(input, 'X', 4)
	if len(cuts) != 3 {
		t.Fatalf("cuts = %v", cuts)
	}
	for _, c := range cuts {
		if input[c-1] != 'X' {
			t.Fatalf("cut %d not after X", c)
		}
	}
	if exact != 3 {
		t.Fatalf("exact = %d", exact)
	}
	// No occurrences: falls back to ideal positions.
	cuts2, exact2 := cutPositions([]byte("aaaaaaaaaaaaaaaa"), 'X', 4)
	if len(cuts2) != 3 || exact2 != 0 {
		t.Fatalf("fallback cuts = %v exact=%d", cuts2, exact2)
	}
	if cuts2[0] != 4 || cuts2[1] != 8 || cuts2[2] != 12 {
		t.Fatalf("fallback positions = %v", cuts2)
	}
	// One segment: no cuts.
	if c, _ := cutPositions(input, 'X', 1); c != nil {
		t.Fatalf("single segment cuts = %v", c)
	}
}

func TestChooseCutSymbolPrefersSmallRange(t *testing.T) {
	// 'z' appears in no pattern (range 0); 'a' starts patterns (range > 0).
	n := mustCompile(t, "abc", "aXc")
	var freq [256]int
	freq['z'] = 100
	freq['a'] = 100
	sym := chooseCutSymbol(n, freq, 4)
	if sym != 'z' {
		t.Fatalf("chose %q, want 'z' (range %d vs %d)", sym, n.RangeSize(sym), n.RangeSize('z'))
	}
}

func TestBuildSymbolPlanShapes(t *testing.T) {
	// Automaton from the paper's Figure 5 shape: two parents with
	// overlapping child sets.
	b := nfa.NewBuilder("fig5")
	s0 := b.AddState(nfa.ClassOf('a'), nfa.StartOfData)
	s1 := b.AddState(nfa.ClassOf('a'), nfa.StartOfData)
	c2 := b.AddState(nfa.ClassOf('x'), 0)
	c5 := b.AddState(nfa.ClassOf('x'), 0)
	c17 := b.AddState(nfa.ClassOf('x'), 0)
	c18 := b.AddState(nfa.ClassOf('x'), 0)
	c46 := b.AddState(nfa.ClassOf('x'), 0)
	for _, c := range []nfa.StateID{c2, c5, c46} {
		b.AddEdge(s0, c)
	}
	for _, c := range []nfa.StateID{c17, c18, c46} {
		b.AddEdge(s1, c)
	}
	n := b.MustBuild()

	cfg := testConfig(1)
	sp := buildSymbolPlan(n, 'a', cfg)
	if sp.RangeSize != 5 {
		t.Fatalf("range = %d, want 5", sp.RangeSize)
	}
	if len(sp.Units) != 2 {
		t.Fatalf("units = %d, want 2 (one per parent)", len(sp.Units))
	}
	// One CC, so flows = units.
	if len(sp.Flows) != 2 {
		t.Fatalf("flows = %d, want 2", len(sp.Flows))
	}
	// S46 must be in both units.
	for _, u := range sp.Units {
		found := false
		for _, q := range u.Seed {
			if q == c46 {
				found = true
			}
		}
		if !found {
			t.Fatalf("unit %v missing shared child", u.Seed)
		}
	}

	// Ablations.
	cfg.DisableParentMerge = true
	sp2 := buildSymbolPlan(n, 'a', cfg)
	if len(sp2.Units) != 5 {
		t.Fatalf("per-state units = %d, want 5", len(sp2.Units))
	}
	cfg.DisableCCMerge = true
	sp3 := buildSymbolPlan(n, 'a', cfg)
	if len(sp3.Flows) != len(sp3.Units) {
		t.Fatalf("no-CC flows = %d, units = %d", len(sp3.Flows), len(sp3.Units))
	}
}

func TestCCPackingSharesFlows(t *testing.T) {
	// Two disjoint patterns: their units must share flows.
	n := mustCompile(t, "XabY", "XcdY")
	cfg := testConfig(1)
	sp := buildSymbolPlan(n, 'X', cfg)
	if sp.RangeSize != 2 {
		t.Fatalf("range = %d, want 2", sp.RangeSize)
	}
	if len(sp.Units) != 2 {
		t.Fatalf("units = %d, want 2", len(sp.Units))
	}
	if len(sp.Flows) != 1 {
		t.Fatalf("flows = %d, want 1 (CC merging)", len(sp.Flows))
	}
	if len(sp.Flows[0].Units) != 2 {
		t.Fatalf("flow units = %v", sp.Flows[0].Units)
	}
}

func TestRunCorrectSmall(t *testing.T) {
	n := mustCompile(t, "abc", "a.c", "xy+z")
	rng := rand.New(rand.NewSource(7))
	input := genInput(rng, 4096, []string{"abc", "xyz", "xyyyz"})
	for _, ranks := range []int{1, 4} {
		res, err := Run(n, input, testConfig(ranks))
		if err != nil {
			t.Fatal(err)
		}
		if err := res.CheckCorrect(); err != nil {
			t.Fatalf("ranks %d: %v", ranks, err)
		}
		if res.Speedup < 1 {
			t.Fatalf("ranks %d: speedup %v < 1", ranks, res.Speedup)
		}
		if res.IdealSpeedup < res.Speedup-1e-9 {
			t.Fatalf("ranks %d: speedup %v exceeds ideal %v", ranks, res.Speedup, res.IdealSpeedup)
		}
		if len(res.Segments) != res.Plan.Segments {
			t.Fatalf("segment stats = %d, want %d", len(res.Segments), res.Plan.Segments)
		}
	}
}

func TestRunSingleSegmentDegenerates(t *testing.T) {
	n := mustCompile(t, "ab")
	cfg := testConfig(1)
	cfg.MaxSegments = 1
	res, err := Run(n, []byte("xxabxxabxx"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup != 1 || !res.Correct {
		t.Fatalf("degenerate run: speedup=%v correct=%v", res.Speedup, res.Correct)
	}
	if len(res.Reports) != 2 {
		t.Fatalf("reports = %+v", res.Reports)
	}
}

func TestRunTinyInput(t *testing.T) {
	n := mustCompile(t, "ab")
	res, err := Run(n, []byte("ab"), testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct || len(res.Reports) != 1 {
		t.Fatalf("tiny input: %+v", res.Reports)
	}
}

// TestEquivalenceRandom is the central property: for random rulesets,
// random inputs, random segment counts and all ablations, the composed PAP
// reports equal sequential execution.
func TestEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	pats := [][]string{
		{"abc", "bca", "cab"},
		{"a.c", "ab+c", "ca{2,4}b"},
		{"hello", "help", "hero", "x[yz]+w"},
		{"^start", "end", "(ab|cd)+e"},
	}
	for trial := 0; trial < 12; trial++ {
		ps := pats[trial%len(pats)]
		n := mustCompile(t, ps...)
		input := genInput(rng, 1024+rng.Intn(4096), []string{"abc", "hello", "start", "abe", "xyzw", "end"})
		cfg := testConfig(1 + 3*(trial%2))
		cfg.TDMQuantum = []int{8, 32, 64}[trial%3]
		cfg.ConvergenceEvery = 1 + trial%10
		switch trial % 6 {
		case 1:
			cfg.DisableCCMerge = true
		case 2:
			cfg.DisableParentMerge = true
		case 3:
			cfg.DisableConvergence = true
		case 4:
			cfg.DisableDeactivation = true
		case 5:
			cfg.DisableFIV = true
		}
		res, err := Run(n, input, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.CheckCorrect(); err != nil {
			t.Fatalf("trial %d (%v, quantum %d): %v", trial, ps, cfg.TDMQuantum, err)
		}
	}
}

// TestEquivalenceRandomNFA repeats the property on structurally random
// automata (not regex-derived), including self-loops and dense CCs.
func TestEquivalenceRandomNFA(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 15; trial++ {
		n := randomNFA(rng, 4+rng.Intn(40))
		input := make([]byte, 512+rng.Intn(2048))
		for i := range input {
			input[i] = "abcd"[rng.Intn(4)]
		}
		cfg := testConfig(1)
		cfg.TDMQuantum = 16
		cfg.MaxSegments = 2 + rng.Intn(8)
		res, err := Run(n, input, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.CheckCorrect(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func randomNFA(rng *rand.Rand, states int) *nfa.NFA {
	b := nfa.NewBuilder("rand")
	alpha := []byte("abcd")
	for i := 0; i < states; i++ {
		var cls nfa.Class
		for _, s := range alpha {
			if rng.Intn(3) == 0 {
				cls.Add(s)
			}
		}
		if cls.Empty() {
			cls.Add(alpha[rng.Intn(len(alpha))])
		}
		var flags nfa.Flags
		switch rng.Intn(6) {
		case 0:
			flags |= nfa.AllInput
		case 1:
			flags |= nfa.StartOfData
		}
		if rng.Intn(5) == 0 {
			flags |= nfa.Report
		}
		b.AddState(cls, flags)
	}
	b.SetFlags(0, nfa.StartOfData)
	for i := 0; i < states; i++ {
		for k := 0; k < rng.Intn(4); k++ {
			b.AddEdge(nfa.StateID(i), nfa.StateID(rng.Intn(states)))
		}
	}
	return b.MustBuild()
}

func TestSpeedupScalesWithSegments(t *testing.T) {
	// A small-range benchmark should speed up nearly linearly with
	// segments: delimiter 'z' never appears in patterns.
	n := mustCompile(t, "abc", "def")
	rng := rand.New(rand.NewSource(5))
	input := make([]byte, 1<<17)
	for i := range input {
		if rng.Intn(10) == 0 {
			input[i] = 'z'
		} else {
			input[i] = "abcdef"[rng.Intn(6)]
		}
	}
	cfg1 := testConfig(1)
	res1, err := Run(n, input, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	cfg4 := testConfig(4)
	res4, err := Run(n, input, cfg4)
	if err != nil {
		t.Fatal(err)
	}
	if err := res1.CheckCorrect(); err != nil {
		t.Fatal(err)
	}
	if err := res4.CheckCorrect(); err != nil {
		t.Fatal(err)
	}
	if res1.Speedup < float64(res1.Plan.Segments)/2 {
		t.Fatalf("1-rank speedup %v too far below ideal %d", res1.Speedup, res1.Plan.Segments)
	}
	if res4.Speedup <= res1.Speedup {
		t.Fatalf("4-rank speedup %v not above 1-rank %v", res4.Speedup, res1.Speedup)
	}
}

func TestGoldenExecutionBound(t *testing.T) {
	// Even in the worst case (huge ranges, no convergence), PAP must never
	// report a slowdown thanks to the golden-execution fallback.
	rng := rand.New(rand.NewSource(31))
	n := randomNFA(rng, 30)
	input := make([]byte, 8192)
	for i := range input {
		input[i] = "abcd"[rng.Intn(4)]
	}
	cfg := testConfig(1)
	cfg.DisableConvergence = true
	cfg.DisableDeactivation = true
	cfg.DisableFIV = true
	res, err := Run(n, input, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup < 1 {
		t.Fatalf("speedup %v < 1 despite golden-execution bound", res.Speedup)
	}
	if err := res.CheckCorrect(); err != nil {
		t.Fatal(err)
	}
}

func TestForcedCutSymbol(t *testing.T) {
	n := mustCompile(t, "ab")
	cfg := testConfig(1)
	cfg.CutSymbol = 'q'
	input := []byte("ababqababqababqababqababqababqababqababqababqababqababqababqababq")
	res, err := Run(n, input, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.CutSym != 'q' {
		t.Fatalf("CutSym = %q", res.Plan.CutSym)
	}
	if err := res.CheckCorrect(); err != nil {
		t.Fatal(err)
	}
}

func TestHalfCoresOverride(t *testing.T) {
	n := mustCompile(t, "ab")
	cfg := testConfig(1)
	cfg.HalfCoresOverride = 4
	p, err := NewPlan(n, make([]byte, 4096), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Placement.HalfCores != 4 || p.Placement.Devices != 2 {
		t.Fatalf("placement = %+v", p.Placement)
	}
	if p.Segments > 4 { // 16 half-cores / 4 per replica
		t.Fatalf("segments = %d", p.Segments)
	}
}

func TestStatsPopulated(t *testing.T) {
	n := mustCompile(t, "abc", "def")
	rng := rand.New(rand.NewSource(17))
	input := genInput(rng, 16384, []string{"abc", "def"})
	res, err := Run(n, input, testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineCycles <= 0 || res.TotalCycles <= 0 {
		t.Fatal("cycle counts not populated")
	}
	if res.TransitionRatio < 1 {
		t.Fatalf("transition ratio %v < 1 (false paths add transitions)", res.TransitionRatio)
	}
	if res.ReportIncrease < 1 {
		t.Fatalf("report increase %v < 1", res.ReportIncrease)
	}
	if res.AvgActiveFlows < 1 {
		t.Fatalf("avg active flows %v < 1", res.AvgActiveFlows)
	}
	for _, s := range res.Segments[1:] {
		if s.InitFlows < 1 || s.Rounds < 1 {
			t.Fatalf("segment stats empty: %+v", s)
		}
	}
}

func TestHostDecodeCyclesModel(t *testing.T) {
	small := hostDecodeCycles(1, 10, 2)
	big := hostDecodeCycles(2, 10000, 400)
	if small <= ap.SVTransferCycles {
		t.Fatalf("hostDecode too small: %d", small)
	}
	if big <= small {
		t.Fatalf("host model not monotone: %d vs %d", big, small)
	}
	if got := hostDecodeCycles(0, 0, 0); got < ap.SVTransferCycles {
		t.Fatalf("zero-device decode = %d", got)
	}
}

func TestBaselineCycles(t *testing.T) {
	if got := Baseline(1000, 10); got != 1020 {
		t.Fatalf("Baseline = %d, want 1020", got)
	}
}

func TestUnitTruth(t *testing.T) {
	sp := &SymbolPlan{Units: []Unit{
		{Seed: []nfa.StateID{1, 2}, seedCheck: []nfa.StateID{1, 2}},
		{Seed: []nfa.StateID{3}, seedCheck: []nfa.StateID{3}},
		{Seed: []nfa.StateID{9}}, // all-baseline unit: never "true"
	}}
	b := engine.Boundary{Enabled: []nfa.StateID{1, 2, 4}}
	truth := unitTruth(sp, b)
	if !truth[0] || truth[1] || truth[2] {
		t.Fatalf("truth = %v", truth)
	}
}

func TestAttribTrue(t *testing.T) {
	unitTrue := []bool{true, false}
	attrib := []attribEntry{
		{CC: 0, Unit: 0, From: 100},
		{CC: 1, Unit: 1, From: 0},
		{CC: 2, Unit: -1, From: 50},
	}
	cases := []struct {
		cc   int32
		off  int64
		want bool
	}{
		{0, 150, true},  // true unit, after From
		{0, 50, false},  // before From
		{1, 500, false}, // false unit
		{2, 60, true},   // always-true entry
		{2, 40, false},  // always-true but before From
		{3, 999, false}, // no entry for CC
	}
	for i, c := range cases {
		if got := attribTrue(attrib, unitTrue, c.cc, c.off); got != c.want {
			t.Errorf("case %d: attribTrue = %v, want %v", i, got, c.want)
		}
	}
}
