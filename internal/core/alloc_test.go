package core

import (
	"testing"

	"pap/internal/ap"
	"pap/internal/nfa"
)

// convergenceFixture builds a segment with n alive enumeration flows whose
// SVC contexts and fingerprints are chosen by the caller.
func convergenceFixture(t testing.TB, contexts [][]nfa.StateID, fps []uint64) *segmentResult {
	t.Helper()
	seg := &segmentResult{svc: ap.NewSVC(1)}
	asg := &flowRun{id: 0, asg: true, alive: true}
	asg.svcID = seg.svc.AllocOverflow(nil, 0)
	seg.flows = []*flowRun{asg}
	for i, ctx := range contexts {
		f := &flowRun{id: i + 1, alive: true, attrib: []attribEntry{{CC: 0, Unit: i, From: 0}}}
		f.svcID = seg.svc.AllocOverflow(ctx, fps[i])
		seg.flows = append(seg.flows, f)
	}
	return seg
}

// TestConvergenceAllocs is the regression test for the convergence
// bugfix: the old implementation built a map[uint64][]*flowRun on every
// check and re-walked sorted slices even when fingerprints already
// disagreed. The rewrite must run allocation-free at steady state.
func TestConvergenceAllocs(t *testing.T) {
	n := mustCompile(t, "abc")
	p, err := NewPlan(n, []byte("abcabcabcabc"), testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	// Distinct fingerprints: nothing merges, so repeated checks exercise
	// the grouping walk without mutating the segment.
	contexts := make([][]nfa.StateID, 12)
	fps := make([]uint64, 12)
	for i := range contexts {
		contexts[i] = []nfa.StateID{nfa.StateID(i), nfa.StateID(i + 100)}
		fps[i] = uint64(i + 1)
	}
	seg := convergenceFixture(t, contexts, fps)
	p.convergeFlows(seg, 0) // warm-up: grows the reusable scratch once
	allocs := testing.AllocsPerRun(100, func() {
		p.convergeFlows(seg, 0)
	})
	if allocs != 0 {
		t.Fatalf("convergeFlows allocates %.1f objects per check, want 0", allocs)
	}
}

// TestConvergenceFingerprintFastPath verifies the rewritten convergence
// check decision-for-decision: identical vectors merge (lowest-id flow
// survives, absorbed flows record their survivor), hash collisions are
// detected by the full compare, counted, and kept separate, and the
// comparator-access accounting matches the paper's model (one access per
// alive vector visited plus one per merge candidate).
func TestConvergenceFingerprintFastPath(t *testing.T) {
	n := mustCompile(t, "abc")
	p, err := NewPlan(n, []byte("abcabcabcabc"), testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	seg := convergenceFixture(t,
		[][]nfa.StateID{
			{1, 2}, // flow 1: merges with flow 2
			{1, 2}, // flow 2
			{3, 4}, // flow 3: same fp as flow 4, different vector (collision)
			{3, 5}, // flow 4
			{7},    // flow 5: unique fp, untouched
		},
		[]uint64{10, 10, 20, 20, 30},
	)
	p.convergeFlows(seg, 42)

	if seg.Convergences != 1 {
		t.Fatalf("Convergences = %d, want 1", seg.Convergences)
	}
	if seg.FPCollisions != 1 {
		t.Fatalf("FPCollisions = %d, want 1", seg.FPCollisions)
	}
	// 5 alive vectors visited + 1 candidate in each of the two hash groups.
	if seg.ConvCompares != 7 {
		t.Fatalf("ConvCompares = %d, want 7", seg.ConvCompares)
	}
	f1, f2, f3, f4, f5 := seg.flows[1], seg.flows[2], seg.flows[3], seg.flows[4], seg.flows[5]
	if !f1.alive || f2.alive || !f2.merged || f2.mergedInto != f1 {
		t.Fatalf("merge bookkeeping wrong: f1.alive=%v f2.alive=%v f2.mergedInto=%p",
			f1.alive, f2.alive, f2.mergedInto)
	}
	if seg.svc.Valid(f2.svcID) {
		t.Fatal("merged flow's SVC entry not freed")
	}
	if !f3.alive || !f4.alive || f3.mergedInto != nil || f4.mergedInto != nil {
		t.Fatal("collision pair was merged")
	}
	if !f5.alive {
		t.Fatal("singleton flow killed")
	}
	// The survivor inherits the absorbed flow's attribution at the merge
	// offset.
	found := false
	for _, a := range f1.attrib {
		if a.Unit == 1 && a.From == 42 {
			found = true
		}
	}
	if !found {
		t.Fatalf("survivor attribution missing merged unit: %+v", f1.attrib)
	}
}

// TestSubsetOfSorted covers the allocation-free probe helper.
func TestSubsetOfSorted(t *testing.T) {
	b := []nfa.StateID{1, 3, 5, 7, 9}
	cases := []struct {
		a    []nfa.StateID
		want bool
	}{
		{nil, true},
		{[]nfa.StateID{3}, true},
		{[]nfa.StateID{9, 1, 5}, true},
		{[]nfa.StateID{2}, false},
		{[]nfa.StateID{1, 3, 5, 7, 9, 11}, false},
		{[]nfa.StateID{7, 8}, false},
	}
	for i, c := range cases {
		if got := subsetOfSorted(c.a, b); got != c.want {
			t.Errorf("case %d: subsetOfSorted(%v) = %v, want %v", i, c.a, got, c.want)
		}
	}
}
