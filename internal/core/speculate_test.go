package core

import (
	"math/rand"
	"testing"
)

// TestSpeculativeExactness: speculation must compose exactly for hot and
// cold inputs, with and without mispredictions.
func TestSpeculativeExactness(t *testing.T) {
	n := mustCompile(t, "abc", "ab.*z")
	rng := rand.New(rand.NewSource(3))

	hot := genInput(rng, 1<<14, []string{"abc", "abz"})
	cold := make([]byte, 1<<14)
	for i := range cold {
		cold[i] = "qrstuv"[rng.Intn(6)] // never touches the patterns
	}
	for name, input := range map[string][]byte{"hot": hot, "cold": cold} {
		cfg := testConfig(1)
		cfg.Speculate = true
		res, err := Run(n, input, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := res.CheckCorrect(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == "cold" && res.MispredictedSegments != 0 {
			t.Fatalf("cold input mispredicted %d segments", res.MispredictedSegments)
		}
		if name == "hot" && res.MispredictedSegments == 0 {
			t.Fatalf("hot input never mispredicted")
		}
	}
}

// TestSpeculationTradeoff: on cold inputs speculation matches enumeration's
// near-ideal speedup; on hot inputs it collapses toward the baseline while
// enumeration holds up — the reason the paper chose enumeration (§6).
func TestSpeculationTradeoff(t *testing.T) {
	// "vw.*z" keeps a self-looping state enabled forever once "vw" is seen,
	// so every boundary of the hot input carries enumeration activity.
	n := mustCompile(t, "abcde", "vw.*z")
	rng := rand.New(rand.NewSource(8))

	cold := make([]byte, 1<<16)
	for i := range cold {
		cold[i] = "jklmnopq"[rng.Intn(8)]
	}
	hot := make([]byte, 1<<16)
	for i := range hot {
		hot[i] = "abcdevwxyz"[rng.Intn(10)]
	}

	speedup := func(input []byte, speculate bool) float64 {
		cfg := testConfig(1)
		cfg.Speculate = speculate
		res, err := Run(n, input, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.CheckCorrect(); err != nil {
			t.Fatal(err)
		}
		return res.Speedup
	}

	coldSpec := speedup(cold, true)
	coldEnum := speedup(cold, false)
	hotSpec := speedup(hot, true)
	hotEnum := speedup(hot, false)

	if coldSpec < coldEnum*0.8 {
		t.Errorf("cold: speculation %.2fx far below enumeration %.2fx", coldSpec, coldEnum)
	}
	if hotSpec > hotEnum {
		t.Errorf("hot: speculation %.2fx beat enumeration %.2fx (unexpected for hot traffic)",
			hotSpec, hotEnum)
	}
	if hotSpec > 4 {
		t.Errorf("hot speculation speedup %.2fx suspiciously high (re-runs serialize)", hotSpec)
	}
}
