package core

import (
	"context"
	"slices"
	"sync"

	"pap/internal/ap"
	"pap/internal/engine"
	"pap/internal/faultinject"
	"pap/internal/nfa"
	"pap/internal/prefilter"
)

// attribEntry maps reports of a flow in one connected component to the
// enumeration unit that caused them, from input offset From onward. Entries
// with Unit == -1 mark always-true activity (the golden flow of segment 1
// and the ASG flow). Convergence merges append the absorbed flow's entries
// to the survivor with From set to the merge offset (§3.3.3).
type attribEntry struct {
	CC   int32
	Unit int // index into the segment's SymbolPlan.Units; -1 = always true
	From int64
}

// flowRun is the runtime state of one flow of one segment.
type flowRun struct {
	id      int
	asg     bool // flow 0: ASG flow (or the golden flow of segment 1)
	alive   bool
	merged  bool // absorbed by convergence (results continue in survivor)
	svcID   ap.FlowID
	attrib  []attribEntry
	reports []engine.Report
	symbols int64 // symbols actually processed (early kills process fewer)
	trans   int64
	skipped int64 // symbols covered by prefilter skips (subset of symbols)
	// baseSkipped counts symbols covered by the exact baseline-skip scan
	// (ASG flow, dead frontier, start-class scanner). Like skipped it is a
	// subset of symbols: every covered symbol still charges its modelled
	// round.
	baseSkipped int64

	// classUnit is the index of one unit of this flow's frontier-
	// equivalence class (SFA mode only; every unit of the class shares one
	// truth value, so one index suffices for the exit-composition lookup).
	classUnit int
	// mergedInto records the convergence survivor that absorbed this flow:
	// equal state vectors evolve identically, so the survivor's exit
	// context stands in for this flow's (SFA composition follows the
	// chain). nil for live, deactivated, and FIV-killed flows.
	mergedInto *flowRun
	// ctxBuf is the flow's reusable frontier scratch: the per-round SVC
	// save and the round-0 probe compares fill it in place instead of
	// allocating a fresh sorted slice per round (the SVC copies on Save).
	ctxBuf []nfa.StateID
	// scoreBuf (scored runs only) carries the flow's best-path scores across
	// TDM rounds, parallel to the sorted context the flow last saved to the
	// SVC: the engine pool hands flows different engines round to round, so
	// scores travel with the flow, exactly like the context itself. Seeded
	// by seedSegment with the golden boundary scores; nil for the ASG flow
	// (baseline paths start at score 0 by definition).
	scoreBuf []int64
}

// segmentResult aggregates one segment's functional and timing outcomes.
type segmentResult struct {
	Index      int
	Start, End int
	Sym        byte // boundary symbol that defined this segment's plan
	InitFlows  int  // flows at segment start (incl. ASG/golden)

	Cycles       ap.Cycles // busy time on this segment's half-cores
	SwitchCycles ap.Cycles
	HostCycles   ap.Cycles // Tcpu: decode + FIV construction (Figure 11)
	KnownAt      ap.Cycles // wall time when this segment's truth is known

	Rounds        int
	FlowRounds    int64     // Σ alive flows over rounds (avg active = /Rounds)
	Mispredicted  bool      // speculation only: boundary was not idle
	RerunCycles   ap.Cycles // speculation only: misprediction penalty
	Deactivations int
	Convergences  int
	FIVKills      int
	FIVApplied    bool
	ConvCompares  int64 // comparator accesses (overlapped, §3.3.3)
	EventsEmitted int64 // all output-buffer entries, true and false paths
	Transitions   int64 // successor traversals (energy proxy, §5.3)
	EngSwitches   int64 // adaptive-engine representation switches (Auto only)
	PrefilterSkip int64 // input bytes covered by prefilter skips (simulator
	// fast path; the modelled cycles still charge every covered symbol)
	BaselineSkip int64 // input bytes covered by the exact baseline-skip
	// scan (ASG-only frontier, start-class scanner); same charging rule

	SFAMappings  int   // SFA mode: frontier-equivalence classes run
	ComposeOps   int64 // SFA mode: boundary-composition set operations
	FPCollisions int64 // verified fingerprint collisions (hash hit, sets differ)

	flows    []*flowRun
	svc      *ap.SVC // flow context store (one SVC per replica)
	unitTrue []bool  // truth of this segment's units at its start boundary

	convScratch []convEntry // reusable convergence sort buffer (no per-check allocs)

	// err and pos record an aborted segment: the cancellation, injected
	// fault, or recovered panic that stopped it, and the input offset its
	// round loop had reached. A segment with err != nil never contributes
	// reports — the whole run returns *Aborted.
	err error
	pos int

	mu sync.Mutex // guards Deactivations during round-0 parallel probes
}

// progress returns the next unprocessed input offset: Start for a segment
// that never ran a round, End for one whose round loop finished.
func (seg *segmentResult) progress() int {
	if seg.pos < seg.Start {
		return seg.Start
	}
	return seg.pos
}

// deactivationProbe is the spacing of the extra early deactivation checks
// the paper inserts before the first TDM step completes (§3.3.4: "many
// flows get deactivated within processing few symbols").
const deactivationProbe = 16

// snapshot is one recorded ASG frontier during round 0.
type snapshot struct {
	after    int // symbols into the round
	fp       uint64
	frontier []nfa.StateID // sorted
}

// flowPool is the bounded worker pool that executes flow-rounds. One pool
// is shared by every segment of a run (replacing the per-segment, per-round
// goroutine fan-out the scheduler used to spawn): Config.Workers goroutines,
// each lazily creating and then owning one engine, drain a single task
// channel. Pool sizing therefore bounds both simulator threads and engine
// allocations for the whole run, regardless of segment count.
type flowPool struct {
	work chan func(engine.Engine)
	wg   sync.WaitGroup
}

// newFlowPool starts a pool of the given width. Close it with close().
func (p *Plan) newFlowPool(workers int) *flowPool {
	if workers < 1 {
		workers = 1
	}
	fp := &flowPool{work: make(chan func(engine.Engine), 4*workers)}
	fp.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer fp.wg.Done()
			var e engine.Engine
			for fn := range fp.work {
				if e == nil {
					e = p.newEngine()
				}
				fn(e)
			}
		}()
	}
	return fp
}

func (fp *flowPool) close() {
	close(fp.work)
	fp.wg.Wait()
}

// segScheduler is the per-segment policy hook of the TDM round loop: what
// bookkeeping runs after every round, and how the "has the Flow
// Invalidation Vector arrived by now?" question is answered at each round
// boundary. The serial scheduler knows fivAt before the segment starts; the
// cross-segment parallel scheduler (sched.go) answers from the
// predecessor's live truth cell, blocking only while the answer is genuinely
// undetermined.
type segScheduler interface {
	// tick runs after each round's cycle accounting, with seg.Cycles at the
	// round's end time.
	tick(seg *segmentResult)
	// fivArrived reports whether the FIV has arrived by seg.Cycles. last
	// marks the check after the final round; implementations may defer the
	// decision to finishFIV (sched.go), which yields an identical outcome
	// because a kill at the end of the final round has no further in-loop
	// effect.
	fivArrived(seg *segmentResult, last bool) bool
}

// serialFIV is the serial scheduler's policy: the FIV arrival time is known
// up front from the already-finished predecessor.
type serialFIV struct{ fivAt ap.Cycles }

func (serialFIV) tick(*segmentResult) {}
func (s serialFIV) fivArrived(seg *segmentResult, _ bool) bool {
	return seg.Cycles >= s.fivAt
}

// applyFIV kills every alive enumeration flow whose attribution holds no
// true unit (§3.4): the Flow Invalidation Vector has arrived.
func applyFIV(seg *segmentResult) {
	seg.FIVApplied = true
	for _, f := range seg.flows[1:] {
		if f.alive && !anyAttribTrue(f.attrib, seg.unitTrue) {
			f.alive = false
			seg.FIVKills++
		}
	}
}

// runSegment executes one segment's flows under TDM, applying deactivation,
// convergence, and (unless disabled) the Flow Invalidation Vector that
// arrives at wall-clock cycle fivAt carrying the truth in seg.unitTrue. It
// owns a private flow pool; the run-wide schedulers in result.go and
// sched.go share one pool across all segments instead.
func (p *Plan) runSegment(seg *segmentResult, input []byte, fivAt ap.Cycles) {
	pool := p.newFlowPool(p.Cfg.Workers)
	defer pool.close()
	p.runSegmentRounds(context.Background(), seg, input, pool, serialFIV{fivAt})
}

// runSegmentRounds is the TDM round loop shared by both schedulers. All
// modelled quantities it computes depend only on (plan, segment, input) —
// never on pool width or scheduler interleaving — which is what makes the
// serial and parallel schedulers bit-identical in ap.Cycles metrics.
//
// Cancellation (and fault injection) is checked once per round, at the
// flow context-switch boundary the paper's §3.2 TDM model already pays
// for — the per-symbol inner loop stays check-free. On cancellation the
// segment records ctx's error and its progress and returns; no flow task
// is left in flight (every round joins its pool work before returning).
func (p *Plan) runSegmentRounds(ctx context.Context, seg *segmentResult, input []byte, pool *flowPool, sched segScheduler) {
	cfg := p.Cfg
	asgFlow := seg.flows[0]

	pos := seg.Start
	round := 0
	fivApplied := !p.fivEnabled()
	for pos < seg.End {
		seg.pos = pos
		if err := cfg.fire(faultinject.RoundStep, seg.Index, round); err != nil {
			seg.err = err
			return
		}
		if err := ctx.Err(); err != nil {
			seg.err = err
			return
		}
		k := cfg.TDMQuantum
		if seg.End-pos < k {
			k = seg.End - pos
		}
		var live []*flowRun
		var symsBefore int64
		for _, f := range seg.flows {
			if f.alive {
				live = append(live, f)
				symsBefore += f.symbols
			}
		}
		seg.Rounds++
		seg.FlowRounds += int64(len(live))
		if len(live) > 1 {
			seg.SwitchCycles += ap.Cycles(cfg.SwitchCycles * len(live))
			seg.Cycles += ap.Cycles(cfg.SwitchCycles * len(live))
		}

		// Dispatch the round's flows to the shared pool. The ASG/golden
		// flow records the probe snapshots the other flows are compared
		// against in round 0, so there it must finish first; later rounds
		// have no cross-flow dependency and dispatch everything at once.
		first := round == 0
		var wg sync.WaitGroup
		var asgTrace []snapshot
		runFlow := func(f *flowRun, trace []snapshot, out *[]snapshot) {
			wg.Add(1)
			pool.work <- func(e engine.Engine) {
				defer wg.Done()
				sw := adaptiveSwitches(e)
				tr := p.runFlowRound(seg, f, input, e, pos, k, first, trace)
				if d := adaptiveSwitches(e) - sw; d != 0 {
					seg.mu.Lock()
					seg.EngSwitches += d
					seg.mu.Unlock()
				}
				if out != nil {
					*out = tr
				}
			}
		}
		if first {
			runFlow(asgFlow, nil, &asgTrace)
			wg.Wait()
			for _, f := range live[1:] {
				runFlow(f, asgTrace, nil)
			}
		} else {
			for _, f := range live {
				runFlow(f, nil, nil)
			}
		}
		wg.Wait()

		pos += k
		// TDM: the half-core processes each alive flow's k symbols in
		// turn, so the round's busy time is the sum of symbols actually
		// processed (early-killed flows stop short).
		var symsAfter int64
		for _, f := range live {
			symsAfter += f.symbols
		}
		seg.Cycles += ap.Cycles(symsAfter - symsBefore)
		sched.tick(seg)

		// Deactivation sweep at the context switch (§3.3.4): a flow whose
		// enumeration activity has died (zero-mask compare on the state
		// vector, always-active states excepted) is unproductive; its
		// continuation is the baseline, which the always-true ASG flow
		// reports. With AbsorbDeactivation, activity absorbed *into* the
		// baseline also kills the flow: its full vector then equals the
		// ASG flow's and the two evolve identically forever.
		if !cfg.DisableDeactivation && asgFlow.asg {
			asgCtx, asgFP := seg.svc.Load(asgFlow.svcID)
			for _, f := range seg.flows[1:] {
				if !f.alive {
					continue
				}
				ctx, fp := seg.svc.Load(f.svcID)
				dead := len(ctx) == 0
				if !dead && cfg.AbsorbDeactivation {
					// Equal-length subset means equality, which the SVC
					// comparator decides by fingerprint: a hash mismatch
					// skips the sorted walk entirely, a hash hit is
					// verified (collisions counted). Shorter vectors
					// still need the containment walk.
					if len(ctx) == len(asgCtx) {
						if fp == asgFP {
							dead = equalContexts(ctx, asgCtx)
							if !dead {
								seg.FPCollisions++
							}
						}
					} else {
						dead = subsetOf(ctx, asgCtx)
					}
				}
				if dead {
					f.alive = false
					seg.Deactivations++
				}
			}
		}

		// Convergence checks every ConvergenceEvery TDM steps (§3.3.3);
		// compares run on the SVC comparator, overlapped with symbol
		// processing, so they cost no cycles but are counted.
		round++
		if !cfg.DisableConvergence && round%cfg.ConvergenceEvery == 0 {
			p.convergeFlows(seg, int64(pos))
		}

		// Release the SVC entries of flows that died this round (round-0
		// probe kills happen on worker goroutines, which must not touch
		// the allocator; the bookkeeping lands here).
		for _, f := range seg.flows {
			if !f.alive && seg.svc.Valid(f.svcID) {
				seg.svc.Invalidate(f.svcID)
			}
		}

		// Flow Invalidation Vector: once the previous segment's truth is
		// known (and transferred), false flows are killed (§3.4).
		if !fivApplied && sched.fivArrived(seg, pos >= seg.End) {
			if err := cfg.fire(faultinject.FIVTransfer, seg.Index, round); err != nil {
				seg.err = err
				return
			}
			fivApplied = true
			applyFIV(seg)
		}
	}
	seg.pos = pos
	// Hardware-faithful totals: on the AP every alive flow re-fires the
	// always-enabled baseline each cycle, so the baseline's transitions and
	// report events are duplicated across flows (the simulator computes
	// them once, in the ASG flow — see engine.SetBaseline). Scale the
	// baseline share by the time-averaged alive-flow count. A degenerate
	// zero-round segment (Start == End) has no baseline duplication; the
	// guard matters because 0/0 is NaN and int64(NaN) is unspecified.
	var enumTrans, enumEvents int64
	for _, f := range seg.flows[1:] {
		enumTrans += f.trans
		enumEvents += int64(len(f.reports))
	}
	for _, f := range seg.flows {
		seg.PrefilterSkip += f.skipped
		seg.BaselineSkip += f.baseSkipped
	}
	dup := 0.0
	if seg.Rounds > 0 {
		dup = float64(seg.FlowRounds) / float64(seg.Rounds)
	}
	seg.Transitions = enumTrans + int64(float64(asgFlow.trans)*dup)
	seg.EventsEmitted = enumEvents + int64(float64(len(asgFlow.reports))*dup)
}

// runFlowRound advances one flow by up to k symbols starting at pos, using
// (and then saving back to the flow's context) the given engine — exactly
// an SVC context switch. For the ASG flow in round 0 it records and returns
// probe snapshots; for other flows in round 0 it compares against the
// provided snapshots and kills the flow at the first probe where it has
// fully converged onto the baseline.
func (p *Plan) runFlowRound(seg *segmentResult, f *flowRun, input []byte, e engine.Engine,
	pos, k int, firstRound bool, asgTrace []snapshot) []snapshot {

	// The ASG/golden flow simulates the shared baseline (all-input states
	// firing every cycle); enumeration flows track only their seed-derived
	// activity — the union of the two is the flow's hardware state vector
	// (see engine.SetBaseline). Contexts live in the segment's State
	// Vector Cache; this load/run/save is exactly an AP flow switch.
	ctx, _ := seg.svc.Load(f.svcID)
	e.SetBaseline(f.asg)
	// The scheduler-parity contract requires every modelled count to be a
	// function of (plan, segment, input) alone, but under Auto engines the
	// live representation depends on pool scheduling history — so skipping
	// happens here, above the engine, representation-independently, and the
	// engine's own baseline-skip fast path stays off. (It could never fire
	// anyway: this loop checks Dead() before every step.)
	engine.SetBaselineSkip(e, false)
	if p.Cfg.Scored {
		engine.ResetScoredOf(e, ctx, f.scoreBuf)
	} else {
		e.Reset(ctx)
	}
	t0 := e.Transitions()
	emit := func(r engine.Report) { f.reports = append(f.reports, r) }
	var trace []snapshot
	isASG := f.asg && f.id == 0
	probe := 0
	scan := p.baselineSkip()
	deadSkipOK := !firstRound && !p.Cfg.DisablePrefilter
	baseSkipOK := !firstRound && !p.Cfg.DisableBaselineSkip
	bs, _ := e.(engine.BatchStepper)
	for i := 0; i < k; {
		// Dead-frontier fast paths, both bit-identical to stepping: an
		// enumeration flow (baseline off) can never revive, so the round's
		// remainder is inert; a baseline flow can only revive on a
		// start-class byte, which the exact class scanner finds. Every
		// covered symbol is still charged to f.symbols, so modelled
		// ap.Cycles are unchanged. Round 0 is excluded so the deactivation
		// probe schedule (and its Deactivations counts) stays identical.
		if e.Dead() {
			if !f.asg {
				if deadSkipOK {
					f.symbols += int64(k - i)
					f.skipped += int64(k - i)
					break
				}
			} else if baseSkipOK && scan != nil {
				if j := scan.NextIn(input, pos+i, pos+k) - pos; j > i {
					f.symbols += int64(j - i)
					f.baseSkipped += int64(j - i)
					i = j
					continue
				}
			}
		}
		// Rounds past the first have no probe schedule, so the whole
		// remaining quantum can go through the engine's vectorized batch
		// kernel in one call (identical observables; see BatchStepper).
		if bs != nil && !firstRound {
			c, _, _ := bs.StepBatch(input[pos+i:pos+k], int64(pos+i), emit)
			f.symbols += int64(c)
			i += c
			continue
		}
		e.Step(input[pos+i], int64(pos+i), emit)
		f.symbols++
		i++
		if !firstRound || i%deactivationProbe != 0 {
			continue
		}
		if isASG {
			trace = append(trace, snapshot{
				after:    i,
				fp:       e.Fingerprint(),
				frontier: frontierOf(e),
			})
			continue
		}
		if !p.Cfg.DisableDeactivation && probe < len(asgTrace) && asgTrace[probe].after == i {
			s := asgTrace[probe]
			probe++
			dead := e.FrontierLen() == 0
			if !dead && p.Cfg.AbsorbDeactivation {
				// The flow's hardware vector equals the ASG flow's exactly
				// when its enumeration activity is inside the baseline's.
				// The snapshot is sorted, so containment is a binary
				// search per state — no per-probe sort or allocation.
				f.ctxBuf = e.AppendFrontier(f.ctxBuf[:0])
				dead = subsetOfSorted(f.ctxBuf, s.frontier)
			}
			if dead {
				f.alive = false
				seg.mu.Lock()
				seg.Deactivations++
				seg.mu.Unlock()
				break
			}
		} else {
			probe++
		}
	}
	// Save through the flow's reusable buffer: the SVC copies on Save, so
	// the per-round sorted-frontier allocation frontierOf used to pay is
	// gone from the hot loop.
	f.ctxBuf = appendFrontierSorted(e, f.ctxBuf)
	seg.svc.Save(f.svcID, f.ctxBuf, e.Fingerprint())
	if p.Cfg.Scored {
		f.scoreBuf = engine.AppendScoresOf(e, f.ctxBuf, f.scoreBuf[:0])
	}
	f.trans += e.Transitions() - t0
	return trace
}

// baselineSkip returns the plan's shared start-class scanner for the exact
// baseline-skip fast path, or nil when ablated or useless (a saturated
// start class can never skip). Skipping is fully exact, so it applies
// under every engine kind; DisableBaselineSkip is the ablation switch that
// forces symbol-by-symbol stepping of ASG-only regions.
func (p *Plan) baselineSkip() *prefilter.ClassScanner {
	if p.Cfg.DisableBaselineSkip {
		return nil
	}
	return p.tables.BaselineSkip()
}

// frontierOf materialises an engine's frontier as a fresh sorted slice.
// Round-0 snapshots need owned copies; the per-round hot paths use
// appendFrontierSorted over a reusable buffer instead.
func frontierOf(e engine.Engine) []nfa.StateID {
	return appendFrontierSorted(e, nil)
}

// appendFrontierSorted fills buf (reusing its capacity) with the engine's
// frontier in sorted order and returns it.
func appendFrontierSorted(e engine.Engine, buf []nfa.StateID) []nfa.StateID {
	buf = e.AppendFrontier(buf[:0])
	slices.Sort(buf)
	return buf
}

// adaptiveSwitches returns the representation-switch count of an adaptive
// engine (or of one wrapped inside the meta/lazy-DFA backends), and 0 for
// the fixed backends.
func adaptiveSwitches(e engine.Engine) int64 {
	return engine.SwitchesOf(e)
}

// convEntry pairs an alive flow with its comparator fingerprint for the
// convergence grouping sort.
type convEntry struct {
	fp uint64
	f  *flowRun
}

// convergeFlows merges flows with identical state vectors (§3.3.3). The
// survivor inherits the absorbed flows' attribution from the merge offset
// onward, so composition can still credit their units with the shared
// continuation.
//
// Grouping sorts the alive flows by fingerprint in a reusable buffer
// (stable, so the survivor is still the lowest-id flow of its group) —
// the hash compare alone separates almost every pair, and the sorted
// vector walk runs only on hash hits, where it either confirms the merge
// or counts a verified collision. Zero allocations at steady state.
func (p *Plan) convergeFlows(seg *segmentResult, off int64) {
	sc := seg.convScratch[:0]
	for _, f := range seg.flows[1:] {
		if f.alive {
			sc = append(sc, convEntry{seg.svc.Fingerprint(f.svcID), f})
			seg.ConvCompares++ // one comparator access per vector visited
		}
	}
	seg.convScratch = sc
	// Stable insertion sort by fingerprint: flow counts are small (bounded
	// by the SVC plan), and stability keeps flows in id order within a
	// group, matching the survivor choice of the map-based predecessor.
	for i := 1; i < len(sc); i++ {
		for k := i; k > 0 && sc[k].fp < sc[k-1].fp; k-- {
			sc[k], sc[k-1] = sc[k-1], sc[k]
		}
	}
	for i := 0; i < len(sc); {
		k := i + 1
		for k < len(sc) && sc[k].fp == sc[i].fp {
			k++
		}
		if k-i >= 2 {
			survivor := sc[i].f
			sctx, _ := seg.svc.Load(survivor.svcID)
			for _, e := range sc[i+1 : k] {
				f := e.f
				seg.ConvCompares++
				ctx, _ := seg.svc.Load(f.svcID)
				if !equalContexts(ctx, sctx) {
					seg.FPCollisions++ // verified: same hash, vectors differ
					continue
				}
				f.alive = false
				f.merged = true
				f.mergedInto = survivor
				seg.svc.Invalidate(f.svcID)
				seg.Convergences++
				for _, a := range f.attrib {
					survivor.attrib = append(survivor.attrib, attribEntry{CC: a.CC, Unit: a.Unit, From: off})
				}
			}
		}
		i = k
	}
}

// subsetOf reports whether sorted slice a is contained in sorted slice b.
func subsetOf(a, b []nfa.StateID) bool {
	if len(a) > len(b) {
		return false
	}
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j >= len(b) || b[j] != x {
			return false
		}
		j++
	}
	return true
}

// subsetOfSorted reports whether every id of a (any order, no duplicates —
// an engine frontier) is contained in the sorted slice b.
func subsetOfSorted(a, b []nfa.StateID) bool {
	if len(a) > len(b) {
		return false
	}
	for _, x := range a {
		if _, ok := slices.BinarySearch(b, x); !ok {
			return false
		}
	}
	return true
}

func equalContexts(a, b []nfa.StateID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortedIDs(ids []nfa.StateID) []nfa.StateID {
	out := slices.Clone(ids)
	slices.Sort(out)
	return out
}

// anyAttribTrue reports whether any attribution entry of a flow references
// a true unit (or is always-true).
func anyAttribTrue(attrib []attribEntry, unitTrue []bool) bool {
	for _, a := range attrib {
		if a.Unit == -1 || (a.Unit >= 0 && a.Unit < len(unitTrue) && unitTrue[a.Unit]) {
			return true
		}
	}
	return false
}

// attribTrue reports whether a report in component cc at offset off is
// covered by a true attribution entry. Always-true entries (Unit == -1)
// apply to every component when their CC is -1 (the ASG/golden flows).
func attribTrue(attrib []attribEntry, unitTrue []bool, cc int32, off int64) bool {
	for _, a := range attrib {
		if a.From > off {
			continue
		}
		if a.Unit == -1 {
			if a.CC == -1 || a.CC == cc {
				return true
			}
			continue
		}
		if a.CC == cc && a.Unit < len(unitTrue) && unitTrue[a.Unit] {
			return true
		}
	}
	return false
}
