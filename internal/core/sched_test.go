package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"pap/internal/ap"
	"pap/internal/engine"
	"pap/internal/nfa"
	"pap/internal/regex"
)

// stripEngineSwitches zeroes the only scheduler-dependent metric: adaptive
// representation switches depend on which pool worker (and thus which
// engine instance, with its hysteresis state) picks up each flow round —
// already nondeterministic with Workers > 1 before this scheduler existed.
func stripEngineSwitches(r *Result) {
	r.EngineSwitches = 0
	for i := range r.Segments {
		r.Segments[i].EngineSwitches = 0
	}
}

// diffResults compares every modelled metric of two results and returns a
// description of the first mismatch ("" when bit-identical).
func diffResults(a, b *Result) string {
	if !engine.SameReports(a.Reports, b.Reports) {
		return fmt.Sprintf("Reports differ: %d vs %d", len(a.Reports), len(b.Reports))
	}
	type scalar struct {
		name string
		a, b interface{}
	}
	scalars := []scalar{
		{"Correct", a.Correct, b.Correct},
		{"BaselineCycles", a.BaselineCycles, b.BaselineCycles},
		{"TotalCycles", a.TotalCycles, b.TotalCycles},
		{"RawTotalCycles", a.RawTotalCycles, b.RawTotalCycles},
		{"Clamped", a.Clamped, b.Clamped},
		{"Speedup", a.Speedup, b.Speedup},
		{"IdealSpeedup", a.IdealSpeedup, b.IdealSpeedup},
		{"AvgActiveFlows", a.AvgActiveFlows, b.AvgActiveFlows},
		{"SwitchOverheadPct", a.SwitchOverheadPct, b.SwitchOverheadPct},
		{"AvgHostCycles", a.AvgHostCycles, b.AvgHostCycles},
		{"TotalEvents", a.TotalEvents, b.TotalEvents},
		{"ReportIncrease", a.ReportIncrease, b.ReportIncrease},
		{"TransitionRatio", a.TransitionRatio, b.TransitionRatio},
		{"MispredictedSegments", a.MispredictedSegments, b.MispredictedSegments},
		{"CapacityNote", a.CapacityNote, b.CapacityNote},
		{"Mode", a.Mode, b.Mode},
		{"SFAMappings", a.SFAMappings, b.SFAMappings},
		{"SFAComposeOps", a.SFAComposeOps, b.SFAComposeOps},
		{"FingerprintCollisions", a.FingerprintCollisions, b.FingerprintCollisions},
	}
	for _, s := range scalars {
		if s.a != s.b {
			return fmt.Sprintf("%s: %v vs %v", s.name, s.a, s.b)
		}
	}
	if len(a.Segments) != len(b.Segments) {
		return fmt.Sprintf("segment count: %d vs %d", len(a.Segments), len(b.Segments))
	}
	for i := range a.Segments {
		if !reflect.DeepEqual(a.Segments[i], b.Segments[i]) {
			return fmt.Sprintf("segment %d: %+v vs %+v", i, a.Segments[i], b.Segments[i])
		}
	}
	return ""
}

// runBoth executes the same (nfa, input, cfg) under the serial and the
// parallel scheduler and fails the test on any modelled-metric divergence.
func runBoth(t *testing.T, tag string, n *nfa.NFA, input []byte, cfg Config) {
	t.Helper()
	ser := cfg
	ser.SegmentParallel = false
	par := cfg
	par.SegmentParallel = true
	rs, err := Run(n, input, ser)
	if err != nil {
		t.Fatalf("%s: serial: %v", tag, err)
	}
	rp, err := Run(n, input, par)
	if err != nil {
		t.Fatalf("%s: parallel: %v", tag, err)
	}
	stripEngineSwitches(rs)
	stripEngineSwitches(rp)
	if d := diffResults(rs, rp); d != "" {
		t.Fatalf("%s: serial/parallel diverge: %s", tag, d)
	}
	if err := rp.CheckCorrect(); err != nil {
		t.Fatalf("%s: parallel incorrect: %v", tag, err)
	}
}

func TestSchedulerParityPatterns(t *testing.T) {
	n := mustCompile(t, "abc", "abd", "a.c", "xyz+")
	rng := rand.New(rand.NewSource(42))
	input := genInput(rng, 1<<15, []string{"abc", "abd", "xyz"})

	variants := []struct {
		name   string
		mutate func(*Config)
	}{
		{"default", func(*Config) {}},
		{"workers1", func(c *Config) { c.Workers = 1 }},
		{"workers8", func(c *Config) { c.Workers = 8 }},
		{"quantum8", func(c *Config) { c.TDMQuantum = 8 }},
		{"speculate", func(c *Config) { c.Speculate = true }},
		{"no-fiv", func(c *Config) { c.DisableFIV = true }},
		{"no-convergence", func(c *Config) { c.DisableConvergence = true }},
		{"no-deactivation", func(c *Config) { c.DisableDeactivation = true }},
		{"no-absorb", func(c *Config) { c.AbsorbDeactivation = false }},
		{"no-ccmerge", func(c *Config) { c.DisableCCMerge = true }},
		{"bit-engine", func(c *Config) { c.Engine = engine.BitKind }},
	}
	for _, v := range variants {
		cfg := testConfig(4)
		v.mutate(&cfg)
		runBoth(t, v.name, n, input, cfg)
	}
}

func TestSchedulerParityRandom(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 15
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < trials; trial++ {
		n := randomNFA(rng, 4+rng.Intn(24))
		input := make([]byte, 512+rng.Intn(1<<14))
		alpha := []byte("abcd")
		for i := range input {
			input[i] = alpha[rng.Intn(len(alpha))]
		}
		cfg := testConfig(1 + rng.Intn(4))
		cfg.Workers = 1 + rng.Intn(4)
		cfg.TDMQuantum = 8 << rng.Intn(4)
		cfg.ConvergenceEvery = 1 + rng.Intn(12)
		cfg.Speculate = rng.Intn(4) == 0
		cfg.DisableFIV = rng.Intn(5) == 0
		cfg.AbsorbDeactivation = rng.Intn(4) != 0
		runBoth(t, fmt.Sprintf("trial-%d", trial), n, input, cfg)
	}
}

// TestSchedulerParityRepeatedParallel guards against nondeterminism within
// the parallel scheduler itself: the same run repeated must agree with
// itself, not just with the serial path once.
func TestSchedulerParityRepeatedParallel(t *testing.T) {
	n := mustCompile(t, "abc", "abd")
	rng := rand.New(rand.NewSource(11))
	input := genInput(rng, 1<<14, []string{"abc"})
	cfg := testConfig(4)
	var first *Result
	for i := 0; i < 5; i++ {
		r, err := Run(n, input, cfg)
		if err != nil {
			t.Fatal(err)
		}
		stripEngineSwitches(r)
		if first == nil {
			first = r
			continue
		}
		if d := diffResults(first, r); d != "" {
			t.Fatalf("repeat %d diverges: %s", i, d)
		}
	}
}

// TestSymbolPlanForConcurrent is the -race regression for the unsynchronized
// lazy write SymbolPlanFor used to perform: concurrent goroutines request
// plans for symbols NewPlan did not prebuild.
func TestSymbolPlanForConcurrent(t *testing.T) {
	n := mustCompile(t, "abc", "abd", "xyz")
	rng := rand.New(rand.NewSource(3))
	input := genInput(rng, 4096, []string{"abc"})
	p, err := NewPlan(n, input, testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for s := 0; s < 256; s++ {
				sym := byte((s + g*37) % 256)
				if sp := p.SymbolPlanFor(sym); sp == nil || sp.Sym != sym {
					t.Errorf("SymbolPlanFor(%d) wrong plan", sym)
					return
				}
				_ = p.MaxFlows()
			}
		}(g)
	}
	wg.Wait()
}

// TestRunSegmentZeroRounds is the NaN regression: a degenerate segment with
// Start == End runs zero rounds, and the baseline-duplication factor
// FlowRounds/Rounds used to be 0/0 = NaN, silently poisoning Transitions
// and EventsEmitted through the unspecified int64(NaN) conversion.
func TestRunSegmentZeroRounds(t *testing.T) {
	n := mustCompile(t, "abc")
	input := []byte("abcabcabc")
	p, err := NewPlan(n, input, testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	seg := &segmentResult{Index: 1, Start: 5, End: 5, svc: ap.NewSVC(1)}
	asg := &flowRun{id: 0, asg: true, alive: true}
	asg.svcID = seg.svc.AllocOverflow(nil, 0)
	seg.flows = []*flowRun{asg}
	p.runSegment(seg, input, maxCycles)
	if seg.Rounds != 0 {
		t.Fatalf("Rounds = %d, want 0", seg.Rounds)
	}
	if seg.Transitions != 0 {
		t.Fatalf("Transitions = %d, want 0 (NaN conversion leaked)", seg.Transitions)
	}
	if seg.EventsEmitted != 0 {
		t.Fatalf("EventsEmitted = %d, want 0 (NaN conversion leaked)", seg.EventsEmitted)
	}
}

// BenchmarkExecuteSegments compares the serial and parallel cross-segment
// schedulers on a multi-segment plan. The parallel win scales with real
// cores (each segment goroutine feeds the shared pool); on a single-core
// host the two are expected to tie, since total simulation work is equal by
// construction (modelled metrics are bit-identical).
func BenchmarkExecuteSegments(b *testing.B) {
	n, err := regex.CompilePatterns("bench", []string{"abc", "abd", "a.c", "xyz+"})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	input := genInput(rng, 1<<18, []string{"abc", "abd", "xyz"})
	for _, segments := range []int{4, 8} {
		for _, mode := range []struct {
			name     string
			parallel bool
		}{{"serial", false}, {"parallel", true}} {
			b.Run(fmt.Sprintf("segments=%d/%s", segments, mode.name), func(b *testing.B) {
				cfg := DefaultConfig(4)
				cfg.MaxSegments = segments
				cfg.SegmentParallel = mode.parallel
				plan, err := NewPlan(n, input, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if plan.Segments < segments {
					b.Fatalf("plan built %d segments, want %d", plan.Segments, segments)
				}
				b.SetBytes(int64(len(input)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := plan.Execute(input)
					if err != nil {
						b.Fatal(err)
					}
					if !res.Correct {
						b.Fatal("incorrect result")
					}
				}
			})
		}
	}
}
