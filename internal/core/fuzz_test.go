package core

import (
	"testing"

	"pap/internal/regex"
)

// FuzzParallelEquivalence drives the full PAP pipeline with arbitrary
// inputs and knob settings against a fixed ruleset and requires exact
// composition every time.
func FuzzParallelEquivalence(f *testing.F) {
	f.Add([]byte("abcXdefXabcXdefXabcXdefXabcXdef"), uint8(4), uint8(16), false)
	f.Add([]byte("xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"), uint8(8), uint8(8), true)
	f.Add([]byte("ab.*cdab.*cdab.*cd"), uint8(2), uint8(32), false)
	f.Fuzz(func(t *testing.T, input []byte, segs, quantum uint8, ablate bool) {
		if len(input) < 8 || len(input) > 4096 {
			return
		}
		n, err := regex.CompilePatterns("fuzz", []string{"abc", "de.?f", "x{3,5}y?z"})
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(1)
		cfg.Workers = 2
		cfg.MaxSegments = 1 + int(segs%16)
		cfg.TDMQuantum = 1 + int(quantum%64)
		cfg.ConvergenceEvery = 1 + int(segs%5)
		if ablate {
			cfg.DisableDeactivation = true
			cfg.DisableFIV = true
		}
		res, err := Run(n, input, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.CheckCorrect(); err != nil {
			t.Fatalf("input %q cfg %+v: %v", input, cfg, err)
		}
	})
}
