package core

import (
	"testing"

	"pap/internal/engine"
	"pap/internal/regex"
)

// FuzzParallelEquivalence drives the full PAP pipeline with arbitrary
// inputs and knob settings against a fixed ruleset and requires exact
// composition every time.
func FuzzParallelEquivalence(f *testing.F) {
	f.Add([]byte("abcXdefXabcXdefXabcXdefXabcXdef"), uint8(4), uint8(16), false)
	f.Add([]byte("xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"), uint8(8), uint8(8), true)
	f.Add([]byte("ab.*cdab.*cdab.*cd"), uint8(2), uint8(32), false)
	f.Fuzz(func(t *testing.T, input []byte, segs, quantum uint8, ablate bool) {
		if len(input) < 8 || len(input) > 4096 {
			return
		}
		n, err := regex.CompilePatterns("fuzz", []string{"abc", "de.?f", "x{3,5}y?z"})
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(1)
		cfg.Workers = 2
		cfg.MaxSegments = 1 + int(segs%16)
		cfg.TDMQuantum = 1 + int(quantum%64)
		cfg.ConvergenceEvery = 1 + int(segs%5)
		if ablate {
			cfg.DisableDeactivation = true
			cfg.DisableFIV = true
		}
		res, err := Run(n, input, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.CheckCorrect(); err != nil {
			t.Fatalf("input %q cfg %+v: %v", input, cfg, err)
		}
	})
}

// FuzzSFAEquivalence drives both execution modes over the same arbitrary
// input and knobs and requires three-way agreement: flow mode exact, SFA
// mode exact, and the two report sets identical.
func FuzzSFAEquivalence(f *testing.F) {
	f.Add([]byte("abcXdefXabcXdefXabcXdefXabcXdef"), uint8(4), uint8(16), false)
	f.Add([]byte("xxxxxyzxxxxxyzxxxxxyzxxxxxyz"), uint8(8), uint8(8), true)
	f.Add([]byte("abcabcabcabcabcabcabcabcabcabc"), uint8(2), uint8(32), false)
	f.Add([]byte("de fde fde fde fde fde fde f"), uint8(15), uint8(1), true)
	f.Fuzz(func(t *testing.T, input []byte, segs, quantum uint8, ablate bool) {
		if len(input) < 8 || len(input) > 4096 {
			return
		}
		n, err := regex.CompilePatterns("fuzz", []string{"abc", "de.?f", "x{3,5}y?z"})
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(1)
		cfg.Workers = 2
		cfg.MaxSegments = 1 + int(segs%16)
		cfg.TDMQuantum = 1 + int(quantum%64)
		cfg.ConvergenceEvery = 1 + int(segs%5)
		cfg.SegmentParallel = quantum%2 == 0
		if ablate {
			cfg.DisableConvergence = true
			cfg.AbsorbDeactivation = false
		}
		flows := cfg
		flows.Mode = ModeFlows
		sfa := cfg
		sfa.Mode = ModeSFA
		rf, err := Run(n, input, flows)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := Run(n, input, sfa)
		if err != nil {
			t.Fatal(err)
		}
		if err := rf.CheckCorrect(); err != nil {
			t.Fatalf("flow mode: input %q cfg %+v: %v", input, flows, err)
		}
		if err := rs.CheckCorrect(); err != nil {
			t.Fatalf("sfa mode: input %q cfg %+v: %v", input, sfa, err)
		}
		if !engine.SameReports(rf.Reports, rs.Reports) {
			t.Fatalf("modes disagree on %q: %d vs %d reports (cfg %+v)",
				input, len(rf.Reports), len(rs.Reports), cfg)
		}
	})
}
