package core

import (
	"fmt"
	"math/rand"
	"testing"

	"pap/internal/regex"
)

// benchProfile is one workload regime of the mode-comparison benchmark:
// a ruleset plus an input generator chosen to stress a different part of
// the enumeration/composition trade-off.
type benchProfile struct {
	name     string
	patterns []string
	input    func(rng *rand.Rand, size int) []byte
}

// modeProfiles are the three regimes of BenchmarkModeComparison (and
// BENCH_sfa.json):
//
//   - quiet: sparse matches in mostly-inert input — enumeration flows die
//     fast, composition has few classes to map.
//   - dense-fanout: wildcard patterns over a small alphabet keep many
//     states active, so flow mode carries many live flows per round while
//     SFA mode amortizes them into few equivalence classes.
//   - intrusion-like: literal-heavy Snort-flavoured rules over log-like
//     text, the paper's headline workload shape.
var modeProfiles = []benchProfile{
	{
		name:     "quiet",
		patterns: []string{"attack", "defen[cs]e", "xy{2,4}z"},
		input: func(rng *rand.Rand, size int) []byte {
			return genInput(rng, size, []string{"attack", "defense"})
		},
	},
	{
		name:     "dense-fanout",
		patterns: []string{"a.c", "ab.?d", "a[bc]{2,4}e", "c.*d"},
		input: func(rng *rand.Rand, size int) []byte {
			alpha := []byte("abcde")
			in := make([]byte, size)
			for i := range in {
				in[i] = alpha[rng.Intn(len(alpha))]
			}
			return in
		},
	},
	{
		name:     "intrusion-like",
		patterns: []string{"GET /admin", "etc/passwd", "SELECT.{0,16}FROM", "[0-9][0-9]:[0-9][0-9]"},
		input: func(rng *rand.Rand, size int) []byte {
			in := genInput(rng, size, nil)
			for _, s := range []string{"GET /admin", "etc/passwd", "SELECT x FROM", "13:37"} {
				for k := 0; k < 4; k++ {
					pos := rng.Intn(size - len(s))
					copy(in[pos:], s)
				}
			}
			return in
		},
	},
}

// BenchmarkModeComparison sweeps the two execution modes across workload
// regimes and segment counts: the numbers behind BENCH_sfa.json (make
// bench-sfa). Both modes produce identical matches on every iteration
// (checked); wall-clock and modelled-cycle differences are the point.
func BenchmarkModeComparison(b *testing.B) {
	const size = 1 << 16
	for _, p := range modeProfiles {
		n, err := regex.CompilePatterns(p.name, p.patterns)
		if err != nil {
			b.Fatal(err)
		}
		input := p.input(rand.New(rand.NewSource(33)), size)
		for _, segs := range []int{1, 2, 4, 8} {
			for _, mode := range []Mode{ModeFlows, ModeSFA} {
				b.Run(fmt.Sprintf("%s/segments=%d/%s", p.name, segs, mode), func(b *testing.B) {
					cfg := DefaultConfig(4)
					cfg.MaxSegments = segs
					cfg.Mode = mode
					plan, err := NewPlan(n, input, cfg)
					if err != nil {
						b.Fatal(err)
					}
					b.SetBytes(int64(len(input)))
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						res, err := plan.Execute(input)
						if err != nil {
							b.Fatal(err)
						}
						if !res.Correct {
							b.Fatal("incorrect result")
						}
					}
				})
			}
		}
	}
}
