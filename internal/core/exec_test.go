package core

import (
	"math/rand"
	"testing"

	"pap/internal/nfa"
)

func TestSubsetOf(t *testing.T) {
	cases := []struct {
		a, b []nfa.StateID
		want bool
	}{
		{nil, nil, true},
		{nil, []nfa.StateID{1}, true},
		{[]nfa.StateID{1}, nil, false},
		{[]nfa.StateID{1, 3}, []nfa.StateID{1, 2, 3}, true},
		{[]nfa.StateID{1, 4}, []nfa.StateID{1, 2, 3}, false},
		{[]nfa.StateID{2}, []nfa.StateID{1, 2, 3}, true},
		{[]nfa.StateID{0}, []nfa.StateID{1, 2}, false},
		{[]nfa.StateID{1, 2, 3}, []nfa.StateID{1, 2, 3}, true},
	}
	for i, c := range cases {
		if got := subsetOf(c.a, c.b); got != c.want {
			t.Errorf("case %d: subsetOf(%v, %v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

// TestAbsorbDeactivationEquivalence: the strengthened deactivation check is
// an optimization, never a correctness change.
func TestAbsorbDeactivationEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		n := randomNFA(rng, 5+rng.Intn(30))
		input := make([]byte, 2048+rng.Intn(2048))
		for i := range input {
			input[i] = "abcd"[rng.Intn(4)]
		}
		base := testConfig(1)
		base.TDMQuantum = 16
		base.MaxSegments = 4
		base.AbsorbDeactivation = false

		plain, err := Run(n, input, base)
		if err != nil {
			t.Fatal(err)
		}
		absorb := base
		absorb.AbsorbDeactivation = true
		strong, err := Run(n, input, absorb)
		if err != nil {
			t.Fatal(err)
		}
		if err := plain.CheckCorrect(); err != nil {
			t.Fatalf("trial %d plain: %v", trial, err)
		}
		if err := strong.CheckCorrect(); err != nil {
			t.Fatalf("trial %d absorb: %v", trial, err)
		}
		// The stronger check can only kill flows earlier.
		var dPlain, dStrong int
		for _, s := range plain.Segments {
			dPlain += s.Deactivations
		}
		for _, s := range strong.Segments {
			dStrong += s.Deactivations
		}
		if dStrong < dPlain {
			t.Fatalf("trial %d: absorb deactivated fewer flows (%d < %d)", trial, dStrong, dPlain)
		}
	}
}

// TestConvergenceAttribution forces convergence-heavy execution and checks
// exactness: with frequent checks, tiny quanta and no deactivation, merged
// flows' post-merge reports must still compose correctly through the
// survivor's inherited attribution.
func TestConvergenceAttribution(t *testing.T) {
	// Patterns over one component that converge: after 'X', both "Xa" and
	// "Xb" paths collapse to the same suffix automaton.
	n := mustCompile(t, "X[ab]cde", "cde")
	rng := rand.New(rand.NewSource(5))
	input := make([]byte, 8192)
	for i := range input {
		input[i] = "Xabcde"[rng.Intn(6)]
	}
	cfg := testConfig(1)
	cfg.TDMQuantum = 8
	cfg.ConvergenceEvery = 1
	cfg.DisableDeactivation = true
	cfg.DisableFIV = true
	res, err := Run(n, input, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckCorrect(); err != nil {
		t.Fatal(err)
	}
	conv := 0
	for _, s := range res.Segments {
		conv += s.Convergences
	}
	if conv == 0 {
		t.Log("no convergence events observed; scenario may be too weak")
	}
}

// TestFIVKillsFalseFlows: with convergence and deactivation disabled, FIV
// is the only flow killer; segments beyond the first must see kills once
// the truth chain catches up.
func TestFIVKillsFalseFlows(t *testing.T) {
	n := mustCompile(t, "Xab.*y", "Xcd.*y")
	rng := rand.New(rand.NewSource(9))
	input := make([]byte, 1<<15)
	for i := range input {
		input[i] = "Xabcdy  "[rng.Intn(8)]
	}
	cfg := testConfig(1)
	cfg.DisableConvergence = true
	cfg.DisableDeactivation = true
	// Force a cut symbol with a non-empty range so enumeration flows exist
	// (the planner would otherwise pick a zero-range symbol and leave FIV
	// nothing to do).
	cfg.CutSymbol = 'X'
	res, err := Run(n, input, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckCorrect(); err != nil {
		t.Fatal(err)
	}
	kills, applied := 0, 0
	for _, s := range res.Segments[1:] {
		kills += s.FIVKills
		if s.FIVApplied {
			applied++
		}
	}
	if applied == 0 {
		t.Fatal("FIV never applied despite being the only reduction mechanism")
	}
	if kills == 0 {
		t.Log("FIV applied but killed nothing (all flows true?); acceptable but unusual")
	}
}

// TestSVCBookkeeping: after a run, every dead flow's SVC entry is released
// and the per-segment SVC never reports overflow for default plans.
func TestSVCBookkeeping(t *testing.T) {
	n := mustCompile(t, "abc", "def", "gh.*i")
	rng := rand.New(rand.NewSource(13))
	input := genInput(rng, 1<<14, []string{"abc", "def", "ghi"})
	cfg := testConfig(1)
	res, err := Run(n, input, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckCorrect(); err != nil {
		t.Fatal(err)
	}
	if res.CapacityNote != "" {
		t.Fatalf("unexpected capacity note: %s", res.CapacityNote)
	}
}

// TestTransitionAccounting: the hardware-faithful transition total must be
// at least the golden run's (the baseline runs at least once).
func TestTransitionAccounting(t *testing.T) {
	n := mustCompile(t, "ab.*cd")
	rng := rand.New(rand.NewSource(15))
	input := genInput(rng, 1<<14, []string{"abxcd"})
	res, err := Run(n, input, testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, s := range res.Segments {
		total += s.Transitions
	}
	if total < res.Golden.Transitions {
		t.Fatalf("PAP transitions %d < golden %d", total, res.Golden.Transitions)
	}
	if res.TransitionRatio < 1 {
		t.Fatalf("TransitionRatio = %v", res.TransitionRatio)
	}
}
