package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pap/internal/nfa"
)

// planFromSeed builds a random automaton and a symbol plan from quick's
// fuzz values.
func planFromSeed(seed int64, sym byte, ablateParent, ablateCC bool) (*nfa.NFA, *SymbolPlan) {
	rng := rand.New(rand.NewSource(seed))
	n := randomNFA(rng, 3+rng.Intn(40))
	cfg := DefaultConfig(1)
	cfg.DisableParentMerge = ablateParent
	cfg.DisableCCMerge = ablateCC
	return n, buildSymbolPlan(n, sym, cfg)
}

// TestQuickFlowPackingInvariants checks, for random automata and symbols:
//  1. every flow contains at most one unit per connected component (the
//     property that makes per-CC report attribution unambiguous);
//  2. unit seeds are exactly covered by the symbol's range;
//  3. every unit is assigned to exactly one flow;
//  4. flow count equals the largest per-CC unit count (packing is tight).
func TestQuickFlowPackingInvariants(t *testing.T) {
	f := func(seed int64, sym byte, ablateParent bool) bool {
		n, sp := planFromSeed(seed, sym%4+'a', ablateParent, false)

		inRange := map[nfa.StateID]bool{}
		for _, q := range n.Range(sym%4 + 'a') {
			inRange[q] = true
		}

		// (2) seeds within range.
		for _, u := range sp.Units {
			for _, q := range u.Seed {
				if !inRange[q] {
					return false
				}
			}
		}

		// (1) one unit per CC per flow; (3) exact cover.
		assigned := make([]int, len(sp.Units))
		perCC := map[int32]int{}
		for _, fl := range sp.Flows {
			seen := map[int32]bool{}
			for _, ui := range fl.Units {
				cc := sp.Units[ui].CC
				if seen[cc] {
					return false
				}
				seen[cc] = true
				assigned[ui]++
			}
		}
		for _, c := range assigned {
			if c != 1 {
				return false
			}
		}

		// (4) tight packing.
		for _, u := range sp.Units {
			perCC[u.CC]++
		}
		max := 0
		for _, c := range perCC {
			if c > max {
				max = c
			}
		}
		return len(sp.Flows) == max && sp.FlowsAfterParent == len(sp.Flows)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickUnitsCoverRange: the union of unit seeds equals the range — no
// possible start state is lost (completeness of enumeration).
func TestQuickUnitsCoverRange(t *testing.T) {
	f := func(seed int64, symRaw byte, ablateParent bool) bool {
		sym := symRaw%4 + 'a'
		n, sp := planFromSeed(seed, sym, ablateParent, false)
		covered := map[nfa.StateID]bool{}
		for _, u := range sp.Units {
			for _, q := range u.Seed {
				covered[q] = true
			}
		}
		for _, q := range n.Range(sym) {
			if !covered[q] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickUnitsSingleCC: every unit's seed stays inside one component.
func TestQuickUnitsSingleCC(t *testing.T) {
	f := func(seed int64, symRaw byte) bool {
		sym := symRaw%4 + 'a'
		n, sp := planFromSeed(seed, sym, false, false)
		for _, u := range sp.Units {
			for _, q := range u.Seed {
				if n.CCOf(q) != u.CC {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNoCCMergeIsOnePerFlow: with CC merging ablated, each unit gets
// its own flow.
func TestQuickNoCCMergeIsOnePerFlow(t *testing.T) {
	f := func(seed int64, symRaw byte) bool {
		sym := symRaw%4 + 'a'
		_, sp := planFromSeed(seed, sym, false, true)
		if len(sp.Flows) != len(sp.Units) {
			return false
		}
		for i, fl := range sp.Flows {
			if len(fl.Units) != 1 || fl.Units[0] != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCutPositions: cuts are strictly increasing interior positions,
// and every exact cut lands after the chosen symbol.
func TestQuickCutPositions(t *testing.T) {
	f := func(raw []byte, segsRaw uint8) bool {
		if len(raw) < 4 {
			return true
		}
		segments := 2 + int(segsRaw%16)
		sym := raw[0]
		cuts, exact := cutPositions(raw, sym, segments)
		prev := 0
		landed := 0
		for _, c := range cuts {
			if c <= prev || c >= len(raw) {
				return false
			}
			if raw[c-1] == sym {
				landed++
			}
			prev = c
		}
		return landed >= exact // exact counts only window hits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
