package core

// Speculative execution (the paper's §6 future-work direction, after Zhao &
// Shen's principled speculation): instead of enumerating every possible
// start state of a segment, predict that a segment boundary carries no
// enumeration activity at all — only the always-active baseline — and run
// just the ASG flow. When the truth chain catches up and the prediction was
// wrong (the golden boundary state is non-empty), the segment re-executes
// from its boundary with the now-known true start states on its own
// half-core.
//
// The prediction is free when right (zero flows, zero switching) and costs
// one extra segment pass when wrong, serialized behind the truth chain —
// so speculation wins on cold streams (rare boundary activity) and
// collapses toward the sequential baseline on hot ones. The Speculation
// experiment quantifies exactly this trade-off against enumeration, which
// is why the paper chose enumeration for pm = 0.75 traffic.

import (
	"sync"

	"pap/internal/ap"
	"pap/internal/engine"
)

// runSpeculative executes one segment under speculation. The ASG-only pass
// has already run (seg.flows == {ASG}); this applies the misprediction
// penalty: re-running the segment with the true boundary state, starting
// once that state is known (readyAt) and the pass has finished. The
// functional re-execution draws an engine from the run's shared pool, so
// concurrent mispredicted segments still respect the Config.Workers bound.
// It returns the segment's completion time.
func (p *Plan) runSpeculative(seg *segmentResult, input []byte,
	boundary engine.Boundary, readyAt ap.Cycles, pool *flowPool) ap.Cycles {

	done := seg.Cycles
	if len(boundary.Enabled) == 0 {
		return done // prediction correct: nothing was missed
	}
	seg.Mispredicted = true

	// Functional re-execution: the enumeration part only (the ASG pass
	// already produced the baseline's reports), seeded with the true
	// boundary state. Its reports are true by construction.
	rerun := &flowRun{
		id:     len(seg.flows),
		alive:  true,
		attrib: []attribEntry{{CC: -1, Unit: -1, From: int64(seg.Start)}},
	}
	var wg sync.WaitGroup
	wg.Add(1)
	pool.work <- func(e engine.Engine) {
		defer wg.Done()
		sw := adaptiveSwitches(e)
		t0 := e.Transitions()
		e.SetBaseline(false)
		engine.SetBaselineSkip(e, false) // skipping is core's job (see runFlowRound)
		if p.Cfg.Scored {
			// The golden boundary carries exact best-path scores for every
			// enabled state; seeding with them makes the re-run's reports
			// score-exact just like enumeration flows (see entryScores).
			engine.ResetScoredOf(e, boundary.Enabled, boundary.Scores)
		} else {
			e.Reset(boundary.Enabled)
		}
		emit := func(r engine.Report) { rerun.reports = append(rerun.reports, r) }
		bs, _ := e.(engine.BatchStepper)
		for i := seg.Start; i < seg.End; {
			if !p.Cfg.DisablePrefilter && e.Dead() {
				// Baseline is off: a dead enumeration frontier can never
				// revive, so the remainder is inert (and still charged).
				rerun.symbols += int64(seg.End - i)
				rerun.skipped += int64(seg.End - i)
				break
			}
			if bs != nil {
				c, _, _ := bs.StepBatch(input[i:seg.End], int64(i), emit)
				rerun.symbols += int64(c)
				i += c
				continue
			}
			e.Step(input[i], int64(i), emit)
			rerun.symbols++
			i++
		}
		rerun.trans = e.Transitions() - t0
		seg.EngSwitches += adaptiveSwitches(e) - sw
	}
	wg.Wait()
	seg.flows = append(seg.flows, rerun)

	// Timing: the re-run occupies the segment's half-core for its full
	// length, starting when both the speculative pass is done and the true
	// boundary state has arrived from the previous segment.
	start := done
	if readyAt > start {
		start = readyAt
	}
	rerunCycles := ap.Cycles(seg.End - seg.Start)
	seg.Cycles += rerunCycles
	seg.RerunCycles = rerunCycles
	seg.Transitions += rerun.trans
	seg.EventsEmitted += int64(len(rerun.reports))
	seg.PrefilterSkip += rerun.skipped
	return start + rerunCycles
}
