package core

import (
	"fmt"
	"sort"
	"sync"

	"pap/internal/ap"
	"pap/internal/engine"
	"pap/internal/faultinject"
	"pap/internal/nfa"
)

// Unit is one enumeration unit after common-parent merging (§3.3.2): the
// child set of one (or several, when child sets coincide) cut-symbol-
// labelled parent state. A unit is entirely contained in one connected
// component. At a segment boundary the unit is true iff its whole seed is
// enabled in the golden run — which the host checks against the previous
// segment's decoded state vector.
type Unit struct {
	Parents []nfa.StateID
	Seed    []nfa.StateID // sorted
	CC      int32
	// seedCheck is Seed minus all-input states: the subset test only needs
	// the states that are not trivially always enabled.
	seedCheck []nfa.StateID
}

// FlowSpec is one packed flow: at most one unit per connected component
// (§3.3.1, Figure 4), so per-CC masking attributes every report of the flow
// to exactly one unit.
type FlowSpec struct {
	Units []int         // indices into SymbolPlan.Units
	Seed  []nfa.StateID // union of unit seeds
}

// SymbolPlan is the enumeration plan for one boundary symbol: the flow
// reduction chain of Figure 9.
type SymbolPlan struct {
	Sym              byte
	RangeSize        int // states in Range(σ) = flows before any merging
	FlowsAfterCC     int // after connected-component packing of raw states
	FlowsAfterParent int // after common-parent merging too (= len(Flows))
	Units            []Unit
	Flows            []FlowSpec
}

// Plan is the complete pre-processing result for one (automaton, input,
// config) triple: placement, cut positions, and per-boundary-symbol flow
// plans.
type Plan struct {
	NFA       *nfa.NFA
	Cfg       Config
	Board     ap.Board
	Placement ap.Placement
	Segments  int
	CutSym    byte
	CutFreq   int   // occurrences of CutSym in the input
	Cuts      []int // segment start positions, ascending, len = Segments-1
	// ExactCuts counts boundaries that landed on the chosen symbol;
	// boundaries that had to fall back to another position use that
	// position's actual preceding symbol (correct, but usually with a
	// larger range).
	ExactCuts int

	// symMu guards symPlans: NewPlan prebuilds the plan for every boundary
	// symbol in use, but SymbolPlanFor lazily builds plans for other symbols
	// on demand, and a Plan is driven from many goroutines (the segment
	// drivers and the flow pool).
	symMu    sync.RWMutex
	symPlans map[byte]*SymbolPlan

	// tables is the automaton's symbol→match-vector table, shared by every
	// bit-capable engine this plan creates. Fills are atomic, so the many
	// flow engines of one run (and their goroutines) share it race-free.
	tables *engine.Tables
}

// newEngine creates one execution engine of the configured backend kind,
// sharing the plan's match tables. Scored runs remap score-less backends
// (lazy DFA, meta) to the adaptive engine and switch score tracking on.
func (p *Plan) newEngine() engine.Engine {
	kind := p.Cfg.Engine
	if p.Cfg.Scored {
		kind = engine.ScoringKind(kind)
	}
	e := engine.New(kind, p.NFA, p.tables)
	if p.Cfg.Scored {
		engine.SetScoring(e, true)
	}
	return e
}

// NewPlan runs the pre-processing pipeline of §3.5: choose the cut symbol
// by profiling the input (unless forced), place the automaton, derive the
// number of segments from the board, compute cut positions, and build the
// flow plan for every boundary symbol in use.
func NewPlan(n *nfa.NFA, input []byte, cfg Config) (*Plan, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := cfg.fire(faultinject.PlanBuild, -1, -1); err != nil {
		return nil, fmt.Errorf("core: plan build: %w", err)
	}
	if len(input) == 0 {
		return nil, fmt.Errorf("core: empty input")
	}
	board, err := ap.NewBoard(cfg.Ranks)
	if err != nil {
		return nil, err
	}
	var placement ap.Placement
	if cfg.HalfCoresOverride > 0 {
		placement = ap.Placement{
			States:    n.Len(),
			HalfCores: cfg.HalfCoresOverride,
			Devices:   (cfg.HalfCoresOverride + ap.HalfCoresPerDev - 1) / ap.HalfCoresPerDev,
		}
	} else {
		placement, err = ap.Place(n.Len(), cfg.Utilization)
		if err != nil {
			return nil, err
		}
	}
	segments := board.Segments(placement)
	if segments < 1 {
		return nil, fmt.Errorf("core: automaton (%d half-cores) does not fit a %d-rank board",
			placement.HalfCores, cfg.Ranks)
	}
	if cfg.MaxSegments > 0 && segments > cfg.MaxSegments {
		segments = cfg.MaxSegments
	}
	// Don't create segments shorter than one TDM quantum.
	if maxSeg := len(input) / cfg.TDMQuantum; segments > maxSeg {
		segments = maxSeg
	}
	if segments < 1 {
		segments = 1
	}

	p := &Plan{
		NFA:       n,
		Cfg:       cfg,
		Board:     board,
		Placement: placement,
		Segments:  segments,
		symPlans:  make(map[byte]*SymbolPlan),
		tables:    engine.NewTables(n),
	}
	freq := profile(input)
	if cfg.CutSymbol >= 0 {
		p.CutSym = byte(cfg.CutSymbol)
	} else {
		p.CutSym = chooseCutSymbol(n, freq, segments)
	}
	p.CutFreq = freq[p.CutSym]
	p.Cuts, p.ExactCuts = cutPositions(input, p.CutSym, segments)
	p.Segments = len(p.Cuts) + 1
	// Build symbol plans for every boundary symbol actually used.
	for _, c := range p.Cuts {
		sym := input[c-1]
		if _, ok := p.symPlans[sym]; !ok {
			p.symPlans[sym] = buildSymbolPlan(n, sym, cfg)
		}
	}
	if _, ok := p.symPlans[p.CutSym]; !ok {
		p.symPlans[p.CutSym] = buildSymbolPlan(n, p.CutSym, cfg)
	}
	return p, nil
}

// SymbolPlanFor returns the flow plan for one boundary symbol, building and
// caching it on first use. Safe for concurrent callers.
func (p *Plan) SymbolPlanFor(sym byte) *SymbolPlan {
	p.symMu.RLock()
	sp, ok := p.symPlans[sym]
	p.symMu.RUnlock()
	if ok {
		return sp
	}
	p.symMu.Lock()
	defer p.symMu.Unlock()
	if sp, ok = p.symPlans[sym]; !ok {
		sp = buildSymbolPlan(p.NFA, sym, p.Cfg)
		p.symPlans[sym] = sp
	}
	return sp
}

// MaxFlows returns the largest flow count across boundary symbols in use
// (+1 for the ASG flow), the figure checked against SVC capacity.
func (p *Plan) MaxFlows() int {
	p.symMu.RLock()
	defer p.symMu.RUnlock()
	m := 0
	for _, sp := range p.symPlans {
		if len(sp.Flows) > m {
			m = len(sp.Flows)
		}
	}
	return m + 1
}

// CheckCapacity verifies the plan fits the State Vector Cache (§5.1: the
// current AP supports 512 active flows per device; flow reduction must
// bring plans under this limit).
func (p *Plan) CheckCapacity() error {
	return ap.CheckFlowCapacity(p.Placement, p.MaxFlows())
}

// profile counts symbol occurrences.
func profile(input []byte) [256]int {
	var freq [256]int
	for _, s := range input {
		freq[s]++
	}
	return freq
}

// chooseCutSymbol picks a frequently occurring symbol with a small range
// (§3.1): among symbols frequent enough to place every boundary within a
// small window, it minimises the range size; ties go to the more frequent
// symbol. Offline range profiling is cheap (one pass per symbol present).
func chooseCutSymbol(n *nfa.NFA, freq [256]int, segments int) byte {
	need := 2 * (segments - 1)
	if need < 4 {
		need = 4
	}
	best, bestRange, bestFreq := -1, 0, 0
	for s := 0; s < 256; s++ {
		if freq[s] < need {
			continue
		}
		r := n.RangeSize(byte(s))
		if best == -1 || r < bestRange || (r == bestRange && freq[s] > bestFreq) {
			best, bestRange, bestFreq = s, r, freq[s]
		}
	}
	if best == -1 {
		// Input too small or skewed: fall back to the most frequent symbol.
		for s := 0; s < 256; s++ {
			if freq[s] > bestFreq {
				best, bestFreq = s, freq[s]
			}
		}
	}
	return byte(best)
}

// cutPositions places segment boundaries at occurrences of sym nearest to
// the ideal equal-division points. A boundary with no occurrence of sym
// within ±len/(4·segments) falls back to the ideal point (its actual
// preceding symbol then defines that boundary's enumeration plan).
// Returned positions are strictly increasing segment start offsets.
func cutPositions(input []byte, sym byte, segments int) (cuts []int, exact int) {
	if segments <= 1 {
		return nil, 0
	}
	n := len(input)
	window := n / (4 * segments)
	prev := 0
	for i := 1; i < segments; i++ {
		ideal := i * n / segments
		pos := -1
		// Scan outward from the ideal point for input[pos-1] == sym.
		for d := 0; d <= window; d++ {
			if q := ideal + d; q > prev+1 && q < n && input[q-1] == sym {
				pos = q
				break
			}
			if q := ideal - d; d > 0 && q > prev+1 && q < n && input[q-1] == sym {
				pos = q
				break
			}
		}
		if pos == -1 {
			pos = ideal
			if pos <= prev+1 || pos >= n {
				continue // segment would be empty; skip this boundary
			}
		} else {
			exact++
		}
		cuts = append(cuts, pos)
		prev = pos
	}
	return cuts, exact
}

// buildSymbolPlan computes enumeration units and packs them into flows for
// one boundary symbol, honouring the ablation switches.
func buildSymbolPlan(n *nfa.NFA, sym byte, cfg Config) *SymbolPlan {
	sp := &SymbolPlan{Sym: sym}
	rangeStates := n.Range(sym)
	sp.RangeSize = len(rangeStates)

	// Figure 9's "after CC" stage: raw range states packed one per CC.
	perCCStates := map[int32]int{}
	for _, q := range rangeStates {
		perCCStates[n.CCOf(q)]++
	}
	for _, c := range perCCStates {
		if c > sp.FlowsAfterCC {
			sp.FlowsAfterCC = c
		}
	}

	// Enumeration units: common-parent groups, or raw states when ablated.
	isAll := map[nfa.StateID]bool{}
	for _, q := range n.AllInputStates() {
		isAll[q] = true
	}
	if cfg.DisableParentMerge {
		for _, q := range rangeStates {
			u := Unit{Seed: []nfa.StateID{q}, CC: n.CCOf(q)}
			if !isAll[q] {
				u.seedCheck = u.Seed
			}
			sp.Units = append(sp.Units, u)
		}
	} else {
		for _, g := range n.ParentGroups(sym) {
			u := Unit{Parents: g.Parents, Seed: g.Seed, CC: g.CC}
			for _, q := range g.Seed {
				if !isAll[q] {
					u.seedCheck = append(u.seedCheck, q)
				}
			}
			sp.Units = append(sp.Units, u)
		}
	}

	// Pack units into flows: one unit per CC per flow (Figure 4). Within a
	// component, units whose seeds contain self-looping states (unbounded
	// gaps, .* repetitions — activity that can persist indefinitely) are
	// packed first, concentrating long-lived enumeration into the lowest
	// flow columns so the remaining flows die and free their TDM slots
	// quickly. This packing-order heuristic is ours, not the paper's.
	if cfg.DisableCCMerge {
		for i, u := range sp.Units {
			sp.Flows = append(sp.Flows, FlowSpec{Units: []int{i}, Seed: u.Seed})
		}
	} else {
		persistent := func(u Unit) bool {
			for _, q := range u.Seed {
				for _, c := range n.Succ(q) {
					if c == q {
						return true
					}
				}
			}
			return false
		}
		byCC := map[int32][]int{}
		var ccs []int32
		for i, u := range sp.Units {
			if _, ok := byCC[u.CC]; !ok {
				ccs = append(ccs, u.CC)
			}
			byCC[u.CC] = append(byCC[u.CC], i)
		}
		for _, us := range byCC {
			sort.SliceStable(us, func(a, b int) bool {
				pa, pb := persistent(sp.Units[us[a]]), persistent(sp.Units[us[b]])
				return pa && !pb
			})
		}
		// Deterministic packing: components with the most units first.
		sort.Slice(ccs, func(a, b int) bool {
			if len(byCC[ccs[a]]) != len(byCC[ccs[b]]) {
				return len(byCC[ccs[a]]) > len(byCC[ccs[b]])
			}
			return ccs[a] < ccs[b]
		})
		depth := 0
		if len(ccs) > 0 {
			depth = len(byCC[ccs[0]])
		}
		for col := 0; col < depth; col++ {
			var f FlowSpec
			for _, cc := range ccs {
				us := byCC[cc]
				if col < len(us) {
					f.Units = append(f.Units, us[col])
					f.Seed = append(f.Seed, sp.Units[us[col]].Seed...)
				}
			}
			sp.Flows = append(sp.Flows, f)
		}
	}
	sp.FlowsAfterParent = len(sp.Flows)
	return sp
}
