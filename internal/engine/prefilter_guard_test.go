package engine_test

import (
	"math/rand"
	"os"
	"testing"
	"time"

	"pap/internal/engine"
)

// TestQuietRegimeGuard is the CI regression guard on prefilter throughput:
// on the quiet workload from BenchmarkPrefilterRegime the meta stack must
// stay at least 5x faster than the sparse baseline (the acceptance bar;
// measured headroom is ~44x, see BENCH_prefilter.json). The ratio is
// relative, so the guard is hardware-independent. Gated behind
// PAP_BENCH_GUARD=1 because it burns ~2s of wall clock and timing asserts
// don't belong in the default -race matrix.
func TestQuietRegimeGuard(t *testing.T) {
	if os.Getenv("PAP_BENCH_GUARD") == "" {
		t.Skip("set PAP_BENCH_GUARD=1 to run the throughput regression guard")
	}
	n := needleNFA()
	input := quietInput(rand.New(rand.NewSource(23)), 1<<16, 4)
	tab := engine.NewTables(n).BuildAll()

	// Best-of-N wall time per kind: the minimum is the least noisy
	// estimator of the achievable per-run cost.
	measure := func(kind engine.Kind) time.Duration {
		best := time.Duration(1<<62 - 1)
		for r := 0; r < 8; r++ {
			start := time.Now()
			engine.RunEngineOpts(n, input, kind, tab,
				engine.RunOpts{LiteralPrefilter: true})
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	// Warm both paths (table builds, first-touch cache misses) before timing.
	measure(engine.SparseKind)
	measure(engine.MetaKind)

	sparse := measure(engine.SparseKind)
	meta := measure(engine.MetaKind)
	ratio := float64(sparse) / float64(meta)
	t.Logf("quiet regime: sparse %v, meta %v, ratio %.1fx", sparse, meta, ratio)
	if ratio < 5 {
		t.Fatalf("quiet-regime meta/sparse ratio %.2fx fell below the 5x floor (sparse %v, meta %v)",
			ratio, sparse, meta)
	}
}
