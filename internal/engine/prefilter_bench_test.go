package engine_test

import (
	"math/rand"
	"testing"

	"pap/internal/engine"
	"pap/internal/nfa"

	// Link the lazy-DFA backend so LazyDFAKind/MetaKind are constructible.
	_ "pap/internal/engine/lazydfa"
)

// needleNFA recognises the fixed literal "needle": one all-input root on
// 'n' and a pure chain for the rest. Its narrow start class and extractable
// literal make it the best case for both prefilter tiers.
func needleNFA() *nfa.NFA {
	b := nfa.NewBuilder("needle")
	prev := b.AddState(nfa.ClassOf('n'), nfa.AllInput)
	for _, c := range []byte("eedle") {
		id := b.AddState(nfa.ClassOf(c), 0)
		b.AddEdge(prev, id)
		prev = id
	}
	b.SetFlags(prev, nfa.Report)
	b.SetReportCode(prev, 1)
	return b.MustBuild()
}

// wideRootNFA has a 6-symbol all-input root — too wide for literal
// extraction (maxClassExpand) and dense enough in the input alphabet that
// the class scanner almost never skips. The prefilter's worst case.
func wideRootNFA() *nfa.NFA {
	b := nfa.NewBuilder("wide")
	root := b.AddState(nfa.ClassOf([]byte("abcdef")...), nfa.AllInput)
	mid := b.AddState(nfa.ClassOf([]byte("abcdef")...), 0)
	tail := b.AddState(nfa.ClassOf('!'), 0)
	b.SetFlags(tail, nfa.Report)
	b.SetReportCode(tail, 1)
	b.AddEdge(root, mid)
	b.AddEdge(mid, tail)
	return b.MustBuild()
}

// quietInput is haystack text whose bytes never include 'n' except for
// occasional planted "needle"s — start-class hit rate well under 1%.
func quietInput(rng *rand.Rand, size, plants int) []byte {
	out := make([]byte, size)
	alphabet := []byte("abcdefghijklm opqrstuvwxyz.,!? ")
	for i := range out {
		out[i] = alphabet[rng.Intn(len(alphabet))]
	}
	for p := 0; p < plants; p++ {
		at := rng.Intn(size - 8)
		copy(out[at:], "needle")
	}
	return out
}

// burstyInput alternates long quiet stretches with dense bursts of
// start-class bytes — the regime where the prefilter's restart cost after
// every hit shows up.
func burstyInput(rng *rand.Rand, size int) []byte {
	out := make([]byte, size)
	i := 0
	for i < size {
		quiet := 256 + rng.Intn(1024)
		for j := 0; j < quiet && i < size; j++ {
			out[i] = " abcdemopqrstuvwxyz"[rng.Intn(19)]
			i++
		}
		burst := 32 + rng.Intn(96)
		for j := 0; j < burst && i < size; j++ {
			out[i] = "needl"[rng.Intn(5)]
			i++
		}
	}
	return out
}

// denseInput is uniformly drawn from the wide root's own class: every byte
// is a start-class hit, so the prefilter can never skip.
func denseInput(rng *rand.Rand, size int) []byte {
	out := make([]byte, size)
	for i := range out {
		out[i] = "abcdef"[rng.Intn(6)]
	}
	return out
}

// BenchmarkPrefilterRegime measures every backend on the three prefilter
// regimes from docs/ENGINES.md: quiet (rare start-class bytes, literal
// extractable — prefilter heaven), bursty (alternating quiet stretches and
// hit clusters), and adversarial (wide root class, no literal, every byte
// a hit — prefilter can only get in the way). Throughput is reported via
// b.SetBytes; BENCH_prefilter.json records a sampled run.
func BenchmarkPrefilterRegime(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	regimes := []struct {
		name  string
		n     *nfa.NFA
		input []byte
	}{
		{"quiet", needleNFA(), quietInput(rng, 1<<16, 4)},
		{"bursty", needleNFA(), burstyInput(rng, 1<<16)},
		{"adversarial", wideRootNFA(), denseInput(rng, 1<<16)},
	}
	kinds := []engine.Kind{engine.SparseKind, engine.BitKind, engine.Auto,
		engine.LazyDFAKind, engine.MetaKind}
	for _, reg := range regimes {
		b.Run(reg.name, func(b *testing.B) {
			tab := engine.NewTables(reg.n).BuildAll()
			for _, kind := range kinds {
				b.Run(kind.String(), func(b *testing.B) {
					b.SetBytes(int64(len(reg.input)))
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						engine.RunEngineOpts(reg.n, reg.input, kind, tab,
							engine.RunOpts{LiteralPrefilter: true})
					}
				})
			}
		})
	}
}

// BenchmarkLazyDensity reruns the BenchmarkEngineDensity workload (same
// fanout automaton and hit-rate inputs) for the two backends that live
// outside the engine package, producing comparable rows for
// BENCH_engines.json.
func BenchmarkLazyDensity(b *testing.B) {
	const states = 2048
	bd := nfa.NewBuilder("fanout")
	for i := 0; i < states; i++ {
		flags := nfa.Flags(0)
		if i == 0 {
			flags = nfa.AllInput
		}
		bd.AddState(nfa.ClassOf('a'), flags)
	}
	for i := 0; i < states; i++ {
		bd.AddEdge(nfa.StateID(i), nfa.StateID((i+1)%states))
		bd.AddEdge(nfa.StateID(i), nfa.StateID((i+17)%states))
	}
	n := bd.MustBuild()

	regimes := []struct {
		name string
		rate float64
	}{
		{"sparse", 0.02},
		{"mixed", 0.50},
		{"dense", 0.98},
	}
	for _, reg := range regimes {
		rng := rand.New(rand.NewSource(17))
		input := make([]byte, 1<<14)
		for i := range input {
			if rng.Float64() < reg.rate {
				input[i] = 'a'
			} else {
				input[i] = 'z'
			}
		}
		b.Run(reg.name, func(b *testing.B) {
			for _, kind := range []engine.Kind{engine.LazyDFAKind, engine.MetaKind} {
				b.Run(kind.String(), func(b *testing.B) {
					tab := engine.NewTables(n).BuildAll()
					e := engine.New(kind, n, tab)
					b.SetBytes(int64(len(input)))
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						for j, sym := range input {
							e.Step(sym, int64(j), nil)
						}
					}
				})
			}
		})
	}
}
