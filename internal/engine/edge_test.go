package engine

import (
	"testing"

	"pap/internal/nfa"
)

// allASGNFA builds an automaton consisting only of all-input states — the
// pure Active State Group shape (every state re-enabled every step), which
// has no start-of-data states and an always-empty enumeration frontier.
func allASGNFA() *nfa.NFA {
	b := nfa.NewBuilder("all-asg")
	q0 := b.AddReportState(nfa.ClassOf('a'), nfa.AllInput, 1)
	q1 := b.AddReportState(nfa.ClassOf('b'), nfa.AllInput, 2)
	b.AddEdge(q0, q1)
	b.AddEdge(q1, q0)
	return b.MustBuild()
}

// TestRunEdgeInputs: empty and 1-byte inputs must run cleanly on every
// backend, with and without boundary recording.
func TestRunEdgeInputs(t *testing.T) {
	ns := map[string]*nfa.NFA{
		"all-asg": allASGNFA(),
		"chain": func() *nfa.NFA {
			b := nfa.NewBuilder("chain")
			q0 := b.AddState(nfa.ClassOf('a'), nfa.StartOfData)
			q1 := b.AddReportState(nfa.ClassOf('b'), 0, 1)
			b.AddEdge(q0, q1)
			return b.MustBuild()
		}(),
	}
	for name, n := range ns {
		for _, kind := range []Kind{SparseKind, BitKind, Auto} {
			res := RunEngine(n, nil, kind, nil)
			if len(res.Reports) != 0 || res.Transitions != 0 {
				t.Errorf("%s/%s: empty input produced %+v", name, kind, res)
			}
			res, bounds := RunWithBoundariesEngine(n, []byte("a"), nil, kind, nil)
			if len(bounds) != 0 {
				t.Errorf("%s/%s: boundaries on cut-free run: %+v", name, kind, bounds)
			}
			if name == "all-asg" && len(res.Reports) != 1 {
				t.Errorf("%s/%s: 1-byte input reports = %+v, want 1", name, kind, res.Reports)
			}
		}
	}
}

// TestAllASGAcrossEngines: on a pure-ASG automaton the enumeration frontier
// stays empty (all activity is baseline), every engine agrees, and reports
// still flow — the degenerate case the deactivation logic leans on.
func TestAllASGAcrossEngines(t *testing.T) {
	n := allASGNFA()
	input := []byte("abbaab")
	var want []Report
	for _, kind := range []Kind{SparseKind, BitKind, Auto} {
		e := New(kind, n, nil)
		var got []Report
		for i, sym := range input {
			e.Step(sym, int64(i), func(r Report) { got = append(got, r) })
			if e.FrontierLen() != 0 || !e.Dead() {
				t.Fatalf("%s: enumeration frontier non-empty on all-ASG automaton", kind)
			}
		}
		if kind == SparseKind {
			want = got
			if len(want) != len(input) {
				t.Fatalf("reports = %d, want one per symbol", len(want))
			}
			continue
		}
		if !SameReports(want, got) {
			t.Fatalf("%s reports diverged from sparse: %+v vs %+v", kind, got, want)
		}
	}
}

// TestBoundaryAtEveryPosition: cuts at every interior position of a short
// input — the densest possible segmentation — must record consistent golden
// state everywhere.
func TestBoundaryAtEveryPosition(t *testing.T) {
	b := nfa.NewBuilder("loop")
	q0 := b.AddState(nfa.ClassOf('a'), nfa.AllInput)
	q1 := b.AddReportState(nfa.ClassOf('a', 'b'), 0, 3)
	b.AddEdge(q0, q1)
	b.AddEdge(q1, q1)
	n := b.MustBuild()

	input := []byte("ababa")
	cuts := []int{1, 2, 3, 4}
	res, bounds := RunWithBoundaries(n, input, cuts)
	if len(bounds) != len(cuts) {
		t.Fatalf("%d boundaries, want %d", len(bounds), len(cuts))
	}
	// Resume from each boundary and finish the input; the tail reports must
	// match the golden run's tail.
	for _, bd := range bounds {
		e := NewSparse(n)
		e.Reset(bd.Enabled)
		var tail []Report
		for p := bd.Pos; p < len(input); p++ {
			e.Step(input[p], int64(p), func(r Report) { tail = append(tail, r) })
		}
		var want []Report
		for _, r := range res.Reports {
			if r.Offset >= int64(bd.Pos) {
				want = append(want, r)
			}
		}
		if !SameReports(want, tail) {
			t.Fatalf("resume at %d: tail %+v, want %+v", bd.Pos, tail, want)
		}
	}
}
