package engine

import "pap/internal/nfa"

// Scoring semantics (the scored-NFA sequence-alignment model): every
// transition carries an int32 score annotation (nfa.AddScoredEdge; 0 when
// absent), a path's score is the sum of its edge scores, and an enabled
// state's score is the maximum over all paths that enabled it — tropical
// max-plus semantics, the classical alignment recurrence. All-input start
// states always score 0: they begin fresh paths at every position, which is
// what keeps the ASG/enumeration decomposition additive for scores exactly
// as it is for truth (a baseline path and an enumeration path never need to
// exchange score mass; the max at a shared child is reconstructed by the
// max-merging report dedup). A report event carries the firing state's score
// at fire time.
//
// Scoring is strictly opt-in per engine: with it off (the default) no score
// array is touched and the unscored hot paths are byte-identical to before.

// Scorer is implemented by backends that can track per-state best-path
// scores alongside the frontier (Sparse, Bit, Adaptive). Backends without
// score support (lazy DFA, meta) are mapped away by ScoringKind before
// construction.
type Scorer interface {
	// SetScoring switches score tracking (off by default). Turning it on
	// allocates the score arrays on first use; turning it off restores the
	// score-free fast paths.
	SetScoring(on bool)
	// ResetScored is Reset with per-seed entry scores parallel to seed
	// (scores may be nil: all entries score 0). Duplicate seed states keep
	// their maximum score; all-input seeds are dropped as in Reset.
	ResetScored(seed []nfa.StateID, scores []int64)
	// FrontierScore returns the best-path score of state q. Valid only for
	// currently enabled states; all-input states score 0.
	FrontierScore(q nfa.StateID) int64
}

// ScoringKind maps an engine selection to one that supports scoring: the
// lazy-DFA and meta backends have no score channel (a determinized state
// collapses frontiers score-blind), so they fall back to the adaptive
// engine. Other kinds pass through.
func ScoringKind(k Kind) Kind {
	if k == LazyDFAKind || k == MetaKind {
		return Auto
	}
	return k
}

// SetScoring switches score tracking on e, returning false for backends
// without score support.
func SetScoring(e Engine, on bool) bool {
	if s, ok := e.(Scorer); ok {
		s.SetScoring(on)
		return true
	}
	return false
}

// ResetScoredOf seeds e with per-state entry scores, falling back to a
// plain Reset (dropping the scores) for backends without score support.
func ResetScoredOf(e Engine, seed []nfa.StateID, scores []int64) {
	if s, ok := e.(Scorer); ok {
		s.ResetScored(seed, scores)
		return
	}
	e.Reset(seed)
}

// AppendScoresOf appends e's current score for each state in states to dst
// and returns it (zeros for backends without score support). states must
// all be currently enabled.
func AppendScoresOf(e Engine, states []nfa.StateID, dst []int64) []int64 {
	s, ok := e.(Scorer)
	for _, q := range states {
		if ok {
			dst = append(dst, s.FrontierScore(q))
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// BestReportScore returns the maximum Score over the reports, and whether
// there was any report at all (the score of an empty report set is
// meaningless — scores may be negative, so 0 is not a safe sentinel).
func BestReportScore(rs []Report) (int64, bool) {
	if len(rs) == 0 {
		return 0, false
	}
	best := rs[0].Score
	for _, r := range rs[1:] {
		if r.Score > best {
			best = r.Score
		}
	}
	return best, true
}

var (
	_ Scorer = (*Sparse)(nil)
	_ Scorer = (*Bit)(nil)
	_ Scorer = (*Adaptive)(nil)
)
