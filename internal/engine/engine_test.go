package engine

import (
	"math/rand"
	"testing"

	"pap/internal/nfa"
)

// buildABC returns the unanchored automaton for pattern "abc" (match
// anywhere), reporting code 9.
func buildABC() *nfa.NFA {
	b := nfa.NewBuilder("abc")
	a := b.AddState(nfa.ClassOf('a'), nfa.AllInput)
	s2 := b.AddState(nfa.ClassOf('b'), 0)
	s3 := b.AddReportState(nfa.ClassOf('c'), 0, 9)
	b.AddEdge(a, s2)
	b.AddEdge(s2, s3)
	return b.MustBuild()
}

// buildAnchoredABC returns "^abc".
func buildAnchoredABC() *nfa.NFA {
	b := nfa.NewBuilder("^abc")
	a := b.AddState(nfa.ClassOf('a'), nfa.StartOfData)
	s2 := b.AddState(nfa.ClassOf('b'), 0)
	s3 := b.AddReportState(nfa.ClassOf('c'), 0, 1)
	b.AddEdge(a, s2)
	b.AddEdge(s2, s3)
	return b.MustBuild()
}

func TestRunFindsAllOccurrences(t *testing.T) {
	n := buildABC()
	res := Run(n, []byte("abcxabcabc"))
	want := []int64{2, 6, 9} // offsets of each final 'c'
	if len(res.Reports) != len(want) {
		t.Fatalf("reports = %+v, want offsets %v", res.Reports, want)
	}
	for i, r := range res.Reports {
		if r.Offset != want[i] || r.Code != 9 {
			t.Fatalf("report %d = %+v, want offset %d code 9", i, r, want[i])
		}
	}
}

func TestAnchoredMatchesOnlyAtStart(t *testing.T) {
	n := buildAnchoredABC()
	if res := Run(n, []byte("abcabc")); len(res.Reports) != 1 || res.Reports[0].Offset != 2 {
		t.Fatalf("anchored reports = %+v", res.Reports)
	}
	if res := Run(n, []byte("xabc")); len(res.Reports) != 0 {
		t.Fatalf("anchored matched mid-stream: %+v", res.Reports)
	}
}

func TestOverlappingMatches(t *testing.T) {
	// "aa" anywhere over "aaaa" must report at offsets 1, 2, 3.
	b := nfa.NewBuilder("aa")
	s1 := b.AddState(nfa.ClassOf('a'), nfa.AllInput)
	s2 := b.AddReportState(nfa.ClassOf('a'), 0, 0)
	b.AddEdge(s1, s2)
	n := b.MustBuild()
	res := Run(n, []byte("aaaa"))
	if len(res.Reports) != 3 {
		t.Fatalf("reports = %+v, want 3", res.Reports)
	}
	for i, r := range res.Reports {
		if r.Offset != int64(i+1) {
			t.Fatalf("report %d at %d, want %d", i, r.Offset, i+1)
		}
	}
}

func TestSelfLoopStarState(t *testing.T) {
	// /x.*y/ style: x enables a self-looping any-state which enables y.
	b := nfa.NewBuilder("xy")
	x := b.AddState(nfa.ClassOf('x'), nfa.AllInput)
	star := b.AddState(nfa.AnyClass(), 0)
	y := b.AddReportState(nfa.ClassOf('y'), 0, 0)
	b.AddEdge(x, star)
	b.AddEdge(star, star)
	b.AddEdge(star, y)
	b.AddEdge(x, y) // xy with nothing between
	n := b.MustBuild()
	res := Run(n, []byte("x123y..y"))
	// y at 4 (x..y) and y at 7 (star still looping).
	if len(res.Reports) != 2 || res.Reports[0].Offset != 4 || res.Reports[1].Offset != 7 {
		t.Fatalf("reports = %+v", res.Reports)
	}
}

func TestSparseResetAndFrontier(t *testing.T) {
	n := buildABC()
	e := NewSparse(n)
	if e.FrontierLen() != 0 {
		// state 0 is all-input, so the initial frontier excludes it.
		t.Fatalf("initial frontier = %v", e.Frontier())
	}
	e.Step('a', 0, nil)
	if e.FrontierLen() != 1 || e.Frontier()[0] != 1 {
		t.Fatalf("after 'a': %v", e.Frontier())
	}
	if got := e.FiredLast(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("fired = %v", got)
	}
	e.Step('z', 1, nil)
	if !e.Dead() {
		t.Fatalf("frontier should be dead after mismatch: %v", e.Frontier())
	}
	// Reset with duplicate and all-input seeds.
	e.Reset([]nfa.StateID{1, 1, 0, 2})
	if e.FrontierLen() != 2 {
		t.Fatalf("reset frontier = %v", e.Frontier())
	}
}

func TestFingerprintMatchesFrontier(t *testing.T) {
	n := buildABC()
	a, b := NewSparse(n), NewSparse(n)
	input := []byte("ababcabc")
	for i, sym := range input {
		a.Step(sym, int64(i), nil)
		b.Step(sym, int64(i), nil)
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("identical runs diverged at %d", i)
		}
		if !EqualFrontier(a, b) {
			t.Fatalf("EqualFrontier false for identical runs at %d", i)
		}
	}
	// Different frontiers ⇒ (almost surely) different fingerprints and
	// EqualFrontier false.
	b.Reset([]nfa.StateID{2})
	if EqualFrontier(a, b) && a.FrontierLen() != b.FrontierLen() {
		t.Fatal("EqualFrontier true for different frontiers")
	}
}

func TestTransitionsCounted(t *testing.T) {
	n := buildABC()
	e := NewSparse(n)
	e.Step('a', 0, nil) // state 0 fires, 1 successor traversed
	if e.Transitions() != 1 {
		t.Fatalf("transitions = %d, want 1", e.Transitions())
	}
	e.Step('b', 1, nil) // state 1 fires
	if e.Transitions() != 2 {
		t.Fatalf("transitions = %d, want 2", e.Transitions())
	}
}

func TestRunWithBoundaries(t *testing.T) {
	n := buildABC()
	input := []byte("abcabc")
	res, bounds := RunWithBoundaries(n, input, []int{3})
	if len(res.Reports) != 2 {
		t.Fatalf("reports = %+v", res.Reports)
	}
	if len(bounds) != 1 || bounds[0].Pos != 3 {
		t.Fatalf("bounds = %+v", bounds)
	}
	// At pos 3, input[2]='c' fired state 2; nothing enabled after except
	// the all-input baseline.
	if len(bounds[0].Fired) != 1 || bounds[0].Fired[0] != 2 {
		t.Fatalf("Fired = %v", bounds[0].Fired)
	}
	if len(bounds[0].Enabled) != 0 {
		t.Fatalf("Enabled = %v", bounds[0].Enabled)
	}
}

func TestDedupeAndSameReports(t *testing.T) {
	rs := []Report{{Offset: 5, State: 1}, {Offset: 2, State: 3}, {Offset: 5, State: 1}, {Offset: 2, State: 1}}
	d := DedupeReports(rs)
	if len(d) != 3 {
		t.Fatalf("deduped = %+v", d)
	}
	if d[0].Offset != 2 || d[0].State != 1 || d[2].Offset != 5 {
		t.Fatalf("order wrong: %+v", d)
	}
	if !SameReports(rs, d) {
		t.Fatal("SameReports(rs, dedupe(rs)) = false")
	}
	if SameReports(d, d[:2]) {
		t.Fatal("SameReports with missing report = true")
	}
	if !SameReports(nil, nil) {
		t.Fatal("SameReports(nil, nil) = false")
	}
}

// randomNFA builds a random homogeneous NFA for property tests: small
// alphabet to get dense activity.
func randomNFA(rng *rand.Rand, states int) *nfa.NFA {
	b := nfa.NewBuilder("rand")
	alpha := []byte("abcd")
	for i := 0; i < states; i++ {
		var cls nfa.Class
		for _, s := range alpha {
			if rng.Intn(3) == 0 {
				cls.Add(s)
			}
		}
		if cls.Empty() {
			cls.Add(alpha[rng.Intn(len(alpha))])
		}
		var flags nfa.Flags
		switch rng.Intn(6) {
		case 0:
			flags |= nfa.AllInput
		case 1:
			flags |= nfa.StartOfData
		}
		if rng.Intn(5) == 0 {
			flags |= nfa.Report
		}
		b.AddState(cls, flags)
	}
	if states > 0 {
		b.SetFlags(0, nfa.StartOfData) // ensure at least one start
	}
	for i := 0; i < states; i++ {
		for k := 0; k < rng.Intn(4); k++ {
			b.AddEdge(nfa.StateID(i), nfa.StateID(rng.Intn(states)))
		}
	}
	return b.MustBuild()
}

func randomInput(rng *rand.Rand, n int) []byte {
	alpha := []byte("abcd")
	out := make([]byte, n)
	for i := range out {
		out[i] = alpha[rng.Intn(len(alpha))]
	}
	return out
}

// TestSparseBitEquivalence: the two engines must agree on fired sets,
// frontiers and reports on random automata and inputs.
func TestSparseBitEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := randomNFA(rng, 2+rng.Intn(30))
		tab := NewTables(n)
		sp := NewSparse(n)
		bt := NewBit(n, tab)
		input := randomInput(rng, 60)
		var rsSp, rsBt []Report
		for i, sym := range input {
			sp.Step(sym, int64(i), func(r Report) { rsSp = append(rsSp, r) })
			bt.Step(sym, int64(i), func(r Report) { rsBt = append(rsBt, r) })
			fs := sp.FrontierSet()
			if !fs.Equal(bt.Enabled()) {
				t.Fatalf("trial %d: frontiers diverged at step %d:\nsparse %v\nbit    %v",
					trial, i, fs, bt.Enabled())
			}
		}
		if !SameReports(rsSp, rsBt) {
			t.Fatalf("trial %d: reports diverged:\nsparse %+v\nbit    %+v", trial, rsSp, rsBt)
		}
		if sp.Transitions() != bt.Transitions() {
			t.Fatalf("trial %d: transitions %d vs %d", trial, sp.Transitions(), bt.Transitions())
		}
	}
}

// TestBoundaryConsistency: the enabled frontier recorded at a cut must be
// reproducible by resetting a fresh engine with it and continuing, giving
// the same reports as the uncut run.
func TestBoundaryConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := randomNFA(rng, 2+rng.Intn(30))
		input := randomInput(rng, 80)
		cut := 1 + rng.Intn(len(input)-1)
		full := Run(n, input)
		e := NewSparse(n)
		var reports []Report
		emit := func(r Report) { reports = append(reports, r) }
		for i := 0; i < cut; i++ {
			e.Step(input[i], int64(i), emit)
		}
		// Resume from the recorded frontier in a fresh engine.
		e2 := NewSparse(n)
		e2.Reset(e.Frontier())
		for i := cut; i < len(input); i++ {
			e2.Step(input[i], int64(i), emit)
		}
		if !SameReports(reports, full.Reports) {
			t.Fatalf("trial %d: split run diverged", trial)
		}
	}
}

// TestRangeSoundness: after consuming σ, the frontier is a subset of
// Range(σ) — the invariant range-guided partitioning rests on (§3.1).
func TestRangeSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := randomNFA(rng, 2+rng.Intn(40))
		input := randomInput(rng, 60)
		e := NewSparse(n)
		for i, sym := range input {
			e.Step(sym, int64(i), nil)
			rg := n.Range(sym)
			inRange := make(map[nfa.StateID]bool, len(rg))
			for _, q := range rg {
				inRange[q] = true
			}
			for _, q := range e.Frontier() {
				if !inRange[q] {
					t.Fatalf("trial %d: state %d enabled after %q but not in range", trial, q, sym)
				}
			}
		}
	}
}

// TestPrefixMergePreservesLanguage executes original and compressed
// automata on random inputs and requires identical (offset, code) events.
func TestPrefixMergePreservesLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		n := randomNFA(rng, 2+rng.Intn(30))
		m := nfa.MergeCommonPrefixes(n)
		input := randomInput(rng, 80)
		rn := Run(n, input)
		rm := Run(m, input)
		kn := reportCodeSet(rn.Reports)
		km := reportCodeSet(rm.Reports)
		if len(kn) != len(km) {
			t.Fatalf("trial %d: merged automaton changed events: %d vs %d", trial, len(kn), len(km))
		}
		for k := range kn {
			if !km[k] {
				t.Fatalf("trial %d: merged automaton lost event %+v", trial, k)
			}
		}
	}
}

type offsetCode struct {
	off  int64
	code int32
}

func reportCodeSet(rs []Report) map[offsetCode]bool {
	m := make(map[offsetCode]bool, len(rs))
	for _, r := range rs {
		m[offsetCode{r.Offset, r.Code}] = true
	}
	return m
}

func BenchmarkSparseStep(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n := randomNFA(rng, 512)
	input := randomInput(rng, 4096)
	e := NewSparse(n)
	b.ResetTimer()
	b.SetBytes(int64(len(input)))
	for i := 0; i < b.N; i++ {
		for j, sym := range input {
			e.Step(sym, int64(j), nil)
		}
	}
}

func BenchmarkBitStep(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n := randomNFA(rng, 512)
	input := randomInput(rng, 4096)
	e := NewBit(n, nil)
	b.ResetTimer()
	b.SetBytes(int64(len(input)))
	for i := 0; i < b.N; i++ {
		for j, sym := range input {
			e.Step(sym, int64(j), nil)
		}
	}
}
