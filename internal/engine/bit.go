package engine

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"pap/internal/bitset"
	"pap/internal/nfa"
	"pap/internal/prefilter"
)

// Tables holds per-automaton precomputed match vectors: for each symbol σ,
// the set of states whose label contains σ. On the AP this is the DRAM row
// addressed by σ; reading it is the state-match phase. Tables are built
// lazily per symbol with atomic publication, so one Tables may be shared by
// any number of engines across goroutines (the engines themselves remain
// single-goroutine). Call BuildAll to pay the whole construction cost up
// front instead.
type Tables struct {
	n     *nfa.NFA
	match [256]atomic.Pointer[bitset.Set]

	// pfOnce/pf lazily build the automaton's prefilter, shared by every
	// meta engine and run loop over this automaton (see Prefilter).
	pfOnce sync.Once
	pf     *prefilter.Prefilter

	// edgeOnce flattens the successor lists into CSR form and caches the
	// reporting-state mask, so the bit engine's batched kernel walks plain
	// arrays instead of calling back into the NFA per fired state.
	edgeOnce sync.Once
	succOff  []int32        // CSR offsets, len n.Len()+1
	succ     []nfa.StateID  // flattened successor lists
	repWord  []uint64       // reporting-state mask, bit-vector word layout
	repCode  []int32        // per-state report code

	// skipOnce compiles the baseline-skip scanner: the byte class that can
	// move a frontier off the ASG-only baseline (exactly the prefilter
	// start class), or nil when scanning cannot pay off.
	skipOnce sync.Once
	skip     *prefilter.ClassScanner
}

// Prefilter returns the automaton's compiled prefilter, built on first
// use and shared by every engine over these tables (it is immutable and
// safe for concurrent use).
func (t *Tables) Prefilter() *prefilter.Prefilter {
	t.pfOnce.Do(func() { t.pf = prefilter.Build(t.n) })
	return t.pf
}

// NewTables returns empty (lazily filled) match tables for n.
func NewTables(n *nfa.NFA) *Tables { return &Tables{n: n} }

// Match returns the match vector for symbol sym, building it on first use.
// Concurrent first uses may build duplicate vectors; exactly one wins the
// publication race and all callers observe that one thereafter.
func (t *Tables) Match(sym byte) *bitset.Set {
	if m := t.match[sym].Load(); m != nil {
		return m
	}
	m := bitset.New(t.n.Len())
	for q := 0; q < t.n.Len(); q++ {
		if t.n.Label(nfa.StateID(q)).Test(sym) {
			m.Set(q)
		}
	}
	if t.match[sym].CompareAndSwap(nil, m) {
		return m
	}
	return t.match[sym].Load()
}

// BuildAll eagerly fills every symbol's match vector and returns t.
func (t *Tables) BuildAll() *Tables {
	for s := 0; s < 256; s++ {
		t.Match(byte(s))
	}
	return t
}

// edges builds (once) and returns the CSR successor arrays and the
// reporting-state mask shared by every bit engine over these tables.
func (t *Tables) edges() (succOff []int32, succ []nfa.StateID, repWord []uint64, repCode []int32) {
	t.edgeOnce.Do(func() {
		n := t.n
		t.succOff = make([]int32, n.Len()+1)
		t.succ = make([]nfa.StateID, 0, n.Edges())
		t.repWord = make([]uint64, (n.Len()+63)/64)
		t.repCode = make([]int32, n.Len())
		for q := 0; q < n.Len(); q++ {
			t.succOff[q] = int32(len(t.succ))
			t.succ = append(t.succ, n.Succ(nfa.StateID(q))...)
			st := n.State(nfa.StateID(q))
			if st.Flags&nfa.Report != 0 {
				t.repWord[q>>6] |= 1 << (uint(q) & 63)
			}
			t.repCode[q] = st.ReportCode
		}
		t.succOff[n.Len()] = int32(len(t.succ))
	})
	return t.succOff, t.succ, t.repWord, t.repCode
}

// BaselineSkip returns the automaton's baseline-skip scanner — the exact
// byte class that can fire an all-input state, compiled once per Tables —
// or nil when the class saturates the alphabet and scanning cannot pay
// off. It shares the prefilter's start-class machinery and is safe for
// concurrent use.
func (t *Tables) BaselineSkip() *prefilter.ClassScanner {
	t.skipOnce.Do(func() {
		if s := prefilter.NewClassScanner(prefilter.StartClass(t.n)); s.Useful() {
			t.skip = s
		}
	})
	return t.skip
}

// Bit is the dense state-vector engine, mirroring the AP's per-STE enable
// mask. It is slower than Sparse for sparse frontiers but is the reference
// for state-vector semantics (SVC entries, convergence compares).
type Bit struct {
	n        *nfa.NFA
	tab      *Tables
	baseline bool
	enabled  *bitset.Set // excluding all-input states
	firedBs  *bitset.Set
	scratch  *bitset.Set
	allIn    *bitset.Set
	trans    int64

	// Batched hot loop + baseline skip (StepBatch): CSR edges and the
	// reporting mask cached from the shared Tables, the start-class
	// scanner, and the fast-path switch and counter.
	succOff []int32
	succ    []nfa.StateID
	repWord []uint64
	repCode []int32
	skip    *prefilter.ClassScanner
	skipOn  bool
	skipped int64

	// Score tracking (see Scorer): per-state arrays parallel to the enabled
	// and scratch bit vectors, swapped alongside them each step. A slot is
	// valid only while its bit is set, so stale values are never read.
	scoring  bool
	scoreCur []int64
	scoreNxt []int64
}

// NewBit returns a Bit engine at the start configuration, sharing tab.
func NewBit(n *nfa.NFA, tab *Tables) *Bit {
	if tab == nil {
		tab = NewTables(n)
	}
	e := &Bit{
		n:        n,
		tab:      tab,
		baseline: true,
		enabled:  bitset.New(n.Len()),
		firedBs:  bitset.New(n.Len()),
		scratch:  bitset.New(n.Len()),
		allIn:    bitset.New(n.Len()),
		skip:     tab.BaselineSkip(),
		skipOn:   true,
	}
	e.succOff, e.succ, e.repWord, e.repCode = tab.edges()
	for _, q := range n.AllInputStates() {
		e.allIn.Set(int(q))
	}
	e.Reset(n.StartStates())
	return e
}

// Reset replaces the enabled vector with the given seed states.
func (e *Bit) Reset(seed []nfa.StateID) {
	e.ResetScored(seed, nil)
}

// SetScoring switches score tracking (see Scorer).
func (e *Bit) SetScoring(on bool) {
	e.scoring = on
	if on && e.scoreCur == nil {
		e.scoreCur = make([]int64, e.n.Len())
		e.scoreNxt = make([]int64, e.n.Len())
	}
}

// ResetScored is Reset with per-seed entry scores (see Scorer). scores may
// be nil; ignored unless scoring is on.
func (e *Bit) ResetScored(seed []nfa.StateID, scores []int64) {
	e.enabled.Reset()
	for i, q := range seed {
		if e.scoring {
			var sc int64
			if scores != nil {
				sc = scores[i]
			}
			if !e.enabled.Test(int(q)) || sc > e.scoreCur[q] {
				e.scoreCur[q] = sc
			}
		}
		e.enabled.Set(int(q))
	}
	e.enabled.AndNot(e.allIn)
}

// FrontierScore returns the best-path score of enabled state q.
func (e *Bit) FrontierScore(q nfa.StateID) int64 {
	if !e.scoring || e.allIn.Test(int(q)) {
		return 0
	}
	return e.scoreCur[q]
}

// SetBaseline switches baseline injection; see Sparse.SetBaseline.
func (e *Bit) SetBaseline(on bool) { e.baseline = on }

// Step consumes one symbol at the given offset. emit may be nil.
func (e *Bit) Step(sym byte, off int64, emit EmitFunc) {
	if e.scoring {
		e.stepScored(sym, off, emit)
		return
	}
	// State match phase: fired = (enabled ∪ allInput) ∩ match[sym].
	fired := e.firedBs
	fired.Copy(e.enabled)
	if e.baseline {
		fired.Or(e.allIn)
	}
	fired.And(e.tab.Match(sym))
	// State transition phase: next = ∪ succ(fired).
	next := e.scratch
	next.Reset()
	n := e.n
	fired.ForEach(func(i int) bool {
		q := nfa.StateID(i)
		st := n.State(q)
		if st.Flags&nfa.Report != 0 && emit != nil {
			emit(Report{Offset: off, State: q, Code: st.ReportCode})
		}
		succ := n.Succ(q)
		e.trans += int64(len(succ))
		for _, c := range succ {
			next.Set(int(c))
		}
		return true
	})
	next.AndNot(e.allIn)
	e.scratch, e.enabled = e.enabled, next
}

// stepScored is Step with score propagation — the scored twin of Step,
// kept separate so the unscored path (and the vectorized StepBatch kernel)
// stays score-free. Scores live in per-state arrays keyed by the frontier
// bitset: scoreCur is valid where enabled is set, scoreNxt is built where
// next is set, and the arrays swap with the vectors.
func (e *Bit) stepScored(sym byte, off int64, emit EmitFunc) {
	fired := e.firedBs
	fired.Copy(e.enabled)
	if e.baseline {
		fired.Or(e.allIn)
	}
	fired.And(e.tab.Match(sym))
	next := e.scratch
	next.Reset()
	n := e.n
	cur, nxt := e.scoreCur, e.scoreNxt
	fired.ForEach(func(i int) bool {
		q := nfa.StateID(i)
		var base int64
		if !e.allIn.Test(i) {
			base = cur[q]
		}
		st := n.State(q)
		if st.Flags&nfa.Report != 0 && emit != nil {
			emit(Report{Offset: off, State: q, Code: st.ReportCode, Score: base})
		}
		succ := n.Succ(q)
		w := n.SuccScores(q)
		e.trans += int64(len(succ))
		for si, c := range succ {
			cand := base
			if w != nil {
				cand += int64(w[si])
			}
			if !next.Test(int(c)) || cand > nxt[c] {
				nxt[c] = cand
			}
			next.Set(int(c))
		}
		return true
	})
	next.AndNot(e.allIn)
	e.scratch, e.enabled = e.enabled, next
	e.scoreCur, e.scoreNxt = nxt, cur
}

// batchSymbols is the maximum number of symbols one StepBatch kernel
// invocation consumes: enough to amortise the per-call setup (match-vector
// resolution, word-slice hoisting) without starving callers that interleave
// per-batch bookkeeping (context polls, round bounds).
const batchSymbols = 64

// skipAhead returns the number of leading input symbols a dead frontier
// provably cannot react to, consuming them. Without baseline injection a
// dead frontier is dead forever; with it, only a start-class byte can fire
// anything, so the scan jumps straight to the next candidate. Consumed
// symbols change no observable beyond the BaselineSkipped counter —
// nothing fires, no edge is traversed, no report is emitted — and callers
// still charge each one its modelled round.
func (e *Bit) skipAhead(input []byte) int {
	if !e.skipOn {
		return 0
	}
	var j int
	if e.baseline {
		if e.skip == nil {
			return 0
		}
		j = e.skip.NextIn(input, 0, len(input))
	} else {
		j = len(input)
	}
	if j > 0 {
		e.firedBs.Reset() // nothing fired on the last consumed symbol
		e.skipped += int64(j)
	}
	return j
}

// StepBatch consumes between 1 and len(input) symbols starting at absolute
// offset off, observably identical to calling Step once per consumed
// symbol. The hot loop processes up to batchSymbols per invocation: the
// block's match vectors are resolved up front (the batched table lookup),
// the state-match phase runs as fused word-wide bitset ops, and successor
// expansion walks the shared CSR edge arrays with the word slices hoisted
// out of the per-state loop. A dead frontier takes the baseline-skip fast
// path instead (see skipAhead). It returns the consumed count with the sum
// and maximum of the frontier length over the consumed symbols, so callers
// keep per-symbol frontier statistics exact. len(input) must be > 0.
func (e *Bit) StepBatch(input []byte, off int64, emit EmitFunc) (consumed int, sumFrontier int64, maxFrontier int) {
	if e.enabled.Empty() {
		if n := e.skipAhead(input); n > 0 {
			return n, 0, 0
		}
	}
	if e.scoring {
		// Score tracking runs through the scalar scored step; the vectorized
		// kernel below stays score-free so the unscored hot path is untouched.
		// The dead-frontier skip above remains exact: skipped symbols fire
		// nothing, so no score can change.
		k := len(input)
		if k > batchSymbols {
			k = batchSymbols
		}
		for j := 0; j < k; j++ {
			e.stepScored(input[j], off+int64(j), emit)
			l := e.enabled.Count()
			sumFrontier += int64(l)
			if l > maxFrontier {
				maxFrontier = l
			}
			consumed++
			if l == 0 {
				break
			}
		}
		return consumed, sumFrontier, maxFrontier
	}
	k := len(input)
	if k > batchSymbols {
		k = batchSymbols
	}
	var mats [batchSymbols]*bitset.Set
	for j := 0; j < k; j++ {
		mats[j] = e.tab.Match(input[j])
	}
	fired := e.firedBs
	en, nx := e.enabled, e.scratch
	fdW := fired.Words()
	succOff, succ := e.succOff, e.succ
	repWord, repCode := e.repWord, e.repCode
	trans := e.trans
	j := 0
	for j < k {
		// State match phase: fired = (enabled ∪ allInput) ∩ match[sym].
		if e.baseline {
			fired.OrAndOf(en, e.allIn, mats[j])
		} else {
			fired.AndOf(en, mats[j])
		}
		// State transition phase: next = ∪ succ(fired), minus all-input.
		nx.Reset()
		nxW := nx.Words()
		for wi, w := range fdW {
			for w != 0 {
				b := bits.TrailingZeros64(w)
				w &= w - 1
				q := wi<<6 | b
				if repWord[wi]&(1<<uint(b)) != 0 && emit != nil {
					emit(Report{Offset: off + int64(j), State: nfa.StateID(q), Code: repCode[q]})
				}
				lo, hi := succOff[q], succOff[q+1]
				trans += int64(hi - lo)
				for _, c := range succ[lo:hi] {
					nxW[int(c)>>6] |= 1 << (uint(c) & 63)
				}
			}
		}
		cnt := nx.AndNotCount(e.allIn)
		en, nx = nx, en
		j++
		sumFrontier += int64(cnt)
		if cnt > maxFrontier {
			maxFrontier = cnt
		}
		if cnt == 0 {
			// Frontier died mid-batch: return so the caller's next call
			// takes the skip path from the exact death position.
			break
		}
	}
	e.trans = trans
	e.enabled, e.scratch = en, nx
	return j, sumFrontier, maxFrontier
}

// SetBaselineSkip enables or disables the baseline-skip fast path
// (enabled by default); disabling forces every symbol through the
// stepping loop, the ablation the conformance harness exercises.
func (e *Bit) SetBaselineSkip(on bool) { e.skipOn = on }

// BaselineSkipped returns the cumulative number of symbols consumed by
// the baseline-skip fast path.
func (e *Bit) BaselineSkipped() int64 { return e.skipped }

// clearFired empties the fired set (used by wrappers that skip input on
// this engine's behalf: nothing fired on a skipped symbol).
func (e *Bit) clearFired() { e.firedBs.Reset() }

// Enabled returns the current enabled vector (excluding all-input states).
// The set is owned by the engine and invalidated by the next Step.
func (e *Bit) Enabled() *bitset.Set { return e.enabled }

// Fired returns the states that fired on the most recent Step.
func (e *Bit) Fired() *bitset.Set { return e.firedBs }

// Transitions returns cumulative transition-edge traversals.
func (e *Bit) Transitions() int64 { return e.trans }

// FrontierLen returns the number of enabled states (excluding all-input).
func (e *Bit) FrontierLen() int { return e.enabled.Count() }

// Dead reports whether the frontier is empty.
func (e *Bit) Dead() bool { return e.enabled.Empty() }

// Fingerprint returns the Zobrist fingerprint of the enabled vector,
// identical to the sparse engine's over the same frontier.
func (e *Bit) Fingerprint() uint64 {
	var fp uint64
	e.enabled.ForEach(func(i int) bool {
		fp ^= Key(nfa.StateID(i))
		return true
	})
	return fp
}

// AppendFrontier appends the enabled states to dst in ascending order.
func (e *Bit) AppendFrontier(dst []nfa.StateID) []nfa.StateID {
	e.enabled.ForEach(func(i int) bool {
		dst = append(dst, nfa.StateID(i))
		return true
	})
	return dst
}

// AppendFired appends the states that fired on the most recent Step, in
// ascending order.
func (e *Bit) AppendFired(dst []nfa.StateID) []nfa.StateID {
	e.firedBs.ForEach(func(i int) bool {
		dst = append(dst, nfa.StateID(i))
		return true
	})
	return dst
}

// FrontierSet returns a fresh copy of the enabled vector.
func (e *Bit) FrontierSet() *bitset.Set { return e.enabled.Clone() }
