package engine

import (
	"pap/internal/bitset"
	"pap/internal/nfa"
)

// Tables holds per-automaton precomputed match vectors: for each symbol σ,
// the set of states whose label contains σ. On the AP this is the DRAM row
// addressed by σ; reading it is the state-match phase. Tables are built
// lazily per symbol and may be shared by many Bit engines.
type Tables struct {
	n     *nfa.NFA
	match [256]*bitset.Set
}

// NewTables returns empty (lazily filled) match tables for n.
func NewTables(n *nfa.NFA) *Tables { return &Tables{n: n} }

// Match returns the match vector for symbol sym, building it on first use.
func (t *Tables) Match(sym byte) *bitset.Set {
	if m := t.match[sym]; m != nil {
		return m
	}
	m := bitset.New(t.n.Len())
	for q := 0; q < t.n.Len(); q++ {
		if t.n.Label(nfa.StateID(q)).Test(sym) {
			m.Set(q)
		}
	}
	t.match[sym] = m
	return m
}

// Bit is the dense state-vector engine, mirroring the AP's per-STE enable
// mask. It is slower than Sparse for sparse frontiers but is the reference
// for state-vector semantics (SVC entries, convergence compares).
type Bit struct {
	n        *nfa.NFA
	tab      *Tables
	baseline bool
	enabled  *bitset.Set // excluding all-input states
	firedBs  *bitset.Set
	scratch  *bitset.Set
	allIn    *bitset.Set
	trans    int64
}

// NewBit returns a Bit engine at the start configuration, sharing tab.
func NewBit(n *nfa.NFA, tab *Tables) *Bit {
	if tab == nil {
		tab = NewTables(n)
	}
	e := &Bit{
		n:        n,
		tab:      tab,
		baseline: true,
		enabled:  bitset.New(n.Len()),
		firedBs:  bitset.New(n.Len()),
		scratch:  bitset.New(n.Len()),
		allIn:    bitset.New(n.Len()),
	}
	for _, q := range n.AllInputStates() {
		e.allIn.Set(int(q))
	}
	e.Reset(n.StartStates())
	return e
}

// Reset replaces the enabled vector with the given seed states.
func (e *Bit) Reset(seed []nfa.StateID) {
	e.enabled.Reset()
	for _, q := range seed {
		e.enabled.Set(int(q))
	}
	e.enabled.AndNot(e.allIn)
}

// SetBaseline switches baseline injection; see Sparse.SetBaseline.
func (e *Bit) SetBaseline(on bool) { e.baseline = on }

// Step consumes one symbol at the given offset. emit may be nil.
func (e *Bit) Step(sym byte, off int64, emit EmitFunc) {
	// State match phase: fired = (enabled ∪ allInput) ∩ match[sym].
	fired := e.firedBs
	fired.Copy(e.enabled)
	if e.baseline {
		fired.Or(e.allIn)
	}
	fired.And(e.tab.Match(sym))
	// State transition phase: next = ∪ succ(fired).
	next := e.scratch
	next.Reset()
	n := e.n
	fired.ForEach(func(i int) bool {
		q := nfa.StateID(i)
		st := n.State(q)
		if st.Flags&nfa.Report != 0 && emit != nil {
			emit(Report{Offset: off, State: q, Code: st.ReportCode})
		}
		succ := n.Succ(q)
		e.trans += int64(len(succ))
		for _, c := range succ {
			next.Set(int(c))
		}
		return true
	})
	next.AndNot(e.allIn)
	e.scratch, e.enabled = e.enabled, next
}

// Enabled returns the current enabled vector (excluding all-input states).
// The set is owned by the engine and invalidated by the next Step.
func (e *Bit) Enabled() *bitset.Set { return e.enabled }

// Fired returns the states that fired on the most recent Step.
func (e *Bit) Fired() *bitset.Set { return e.firedBs }

// Transitions returns cumulative transition-edge traversals.
func (e *Bit) Transitions() int64 { return e.trans }
