package engine

import (
	"sync"
	"sync/atomic"

	"pap/internal/bitset"
	"pap/internal/nfa"
	"pap/internal/prefilter"
)

// Tables holds per-automaton precomputed match vectors: for each symbol σ,
// the set of states whose label contains σ. On the AP this is the DRAM row
// addressed by σ; reading it is the state-match phase. Tables are built
// lazily per symbol with atomic publication, so one Tables may be shared by
// any number of engines across goroutines (the engines themselves remain
// single-goroutine). Call BuildAll to pay the whole construction cost up
// front instead.
type Tables struct {
	n     *nfa.NFA
	match [256]atomic.Pointer[bitset.Set]

	// pfOnce/pf lazily build the automaton's prefilter, shared by every
	// meta engine and run loop over this automaton (see Prefilter).
	pfOnce sync.Once
	pf     *prefilter.Prefilter
}

// Prefilter returns the automaton's compiled prefilter, built on first
// use and shared by every engine over these tables (it is immutable and
// safe for concurrent use).
func (t *Tables) Prefilter() *prefilter.Prefilter {
	t.pfOnce.Do(func() { t.pf = prefilter.Build(t.n) })
	return t.pf
}

// NewTables returns empty (lazily filled) match tables for n.
func NewTables(n *nfa.NFA) *Tables { return &Tables{n: n} }

// Match returns the match vector for symbol sym, building it on first use.
// Concurrent first uses may build duplicate vectors; exactly one wins the
// publication race and all callers observe that one thereafter.
func (t *Tables) Match(sym byte) *bitset.Set {
	if m := t.match[sym].Load(); m != nil {
		return m
	}
	m := bitset.New(t.n.Len())
	for q := 0; q < t.n.Len(); q++ {
		if t.n.Label(nfa.StateID(q)).Test(sym) {
			m.Set(q)
		}
	}
	if t.match[sym].CompareAndSwap(nil, m) {
		return m
	}
	return t.match[sym].Load()
}

// BuildAll eagerly fills every symbol's match vector and returns t.
func (t *Tables) BuildAll() *Tables {
	for s := 0; s < 256; s++ {
		t.Match(byte(s))
	}
	return t
}

// Bit is the dense state-vector engine, mirroring the AP's per-STE enable
// mask. It is slower than Sparse for sparse frontiers but is the reference
// for state-vector semantics (SVC entries, convergence compares).
type Bit struct {
	n        *nfa.NFA
	tab      *Tables
	baseline bool
	enabled  *bitset.Set // excluding all-input states
	firedBs  *bitset.Set
	scratch  *bitset.Set
	allIn    *bitset.Set
	trans    int64
}

// NewBit returns a Bit engine at the start configuration, sharing tab.
func NewBit(n *nfa.NFA, tab *Tables) *Bit {
	if tab == nil {
		tab = NewTables(n)
	}
	e := &Bit{
		n:        n,
		tab:      tab,
		baseline: true,
		enabled:  bitset.New(n.Len()),
		firedBs:  bitset.New(n.Len()),
		scratch:  bitset.New(n.Len()),
		allIn:    bitset.New(n.Len()),
	}
	for _, q := range n.AllInputStates() {
		e.allIn.Set(int(q))
	}
	e.Reset(n.StartStates())
	return e
}

// Reset replaces the enabled vector with the given seed states.
func (e *Bit) Reset(seed []nfa.StateID) {
	e.enabled.Reset()
	for _, q := range seed {
		e.enabled.Set(int(q))
	}
	e.enabled.AndNot(e.allIn)
}

// SetBaseline switches baseline injection; see Sparse.SetBaseline.
func (e *Bit) SetBaseline(on bool) { e.baseline = on }

// Step consumes one symbol at the given offset. emit may be nil.
func (e *Bit) Step(sym byte, off int64, emit EmitFunc) {
	// State match phase: fired = (enabled ∪ allInput) ∩ match[sym].
	fired := e.firedBs
	fired.Copy(e.enabled)
	if e.baseline {
		fired.Or(e.allIn)
	}
	fired.And(e.tab.Match(sym))
	// State transition phase: next = ∪ succ(fired).
	next := e.scratch
	next.Reset()
	n := e.n
	fired.ForEach(func(i int) bool {
		q := nfa.StateID(i)
		st := n.State(q)
		if st.Flags&nfa.Report != 0 && emit != nil {
			emit(Report{Offset: off, State: q, Code: st.ReportCode})
		}
		succ := n.Succ(q)
		e.trans += int64(len(succ))
		for _, c := range succ {
			next.Set(int(c))
		}
		return true
	})
	next.AndNot(e.allIn)
	e.scratch, e.enabled = e.enabled, next
}

// Enabled returns the current enabled vector (excluding all-input states).
// The set is owned by the engine and invalidated by the next Step.
func (e *Bit) Enabled() *bitset.Set { return e.enabled }

// Fired returns the states that fired on the most recent Step.
func (e *Bit) Fired() *bitset.Set { return e.firedBs }

// Transitions returns cumulative transition-edge traversals.
func (e *Bit) Transitions() int64 { return e.trans }

// FrontierLen returns the number of enabled states (excluding all-input).
func (e *Bit) FrontierLen() int { return e.enabled.Count() }

// Dead reports whether the frontier is empty.
func (e *Bit) Dead() bool { return e.enabled.Empty() }

// Fingerprint returns the Zobrist fingerprint of the enabled vector,
// identical to the sparse engine's over the same frontier.
func (e *Bit) Fingerprint() uint64 {
	var fp uint64
	e.enabled.ForEach(func(i int) bool {
		fp ^= Key(nfa.StateID(i))
		return true
	})
	return fp
}

// AppendFrontier appends the enabled states to dst in ascending order.
func (e *Bit) AppendFrontier(dst []nfa.StateID) []nfa.StateID {
	e.enabled.ForEach(func(i int) bool {
		dst = append(dst, nfa.StateID(i))
		return true
	})
	return dst
}

// AppendFired appends the states that fired on the most recent Step, in
// ascending order.
func (e *Bit) AppendFired(dst []nfa.StateID) []nfa.StateID {
	e.firedBs.ForEach(func(i int) bool {
		dst = append(dst, nfa.StateID(i))
		return true
	})
	return dst
}

// FrontierSet returns a fresh copy of the enabled vector.
func (e *Bit) FrontierSet() *bitset.Set { return e.enabled.Clone() }
