// Package engine executes homogeneous NFAs with the exact semantics of the
// Micron AP symbol cycle: at each step, every enabled state whose label
// matches the input symbol fires — reporting if it is a reporting state and
// enabling its children for the next step — and all-input start states are
// re-enabled every step.
//
// Three implementations are provided with identical observable behaviour:
//
//   - Sparse tracks the enabled frontier as a deduplicated slice, the way
//     VASim does; cost is proportional to the number of active states.
//   - Bit tracks the frontier as a dense bit vector, the way the AP's
//     state-enable mask and State Vector Cache do.
//   - Adaptive starts sparse and switches representation when the frontier
//     density crosses a threshold (with hysteresis both ways), so dense
//     enumeration phases run on the bit engine and quiet phases stay sparse.
//
// All three satisfy the Engine interface; execution layers select a backend
// through Kind and New. Tests assert their equivalence on random automata
// and inputs.
package engine

import (
	"fmt"
	"strings"

	"pap/internal/bitset"
	"pap/internal/nfa"
)

// Engine is the pluggable execution backend: one enabled-state frontier
// advancing one symbol per Step with exact AP symbol-cycle semantics.
// Engines over the same automaton are observably interchangeable — same
// reports, same frontiers, same fingerprints, same transition counts.
// Implementations are not safe for concurrent use; a shared *Tables is.
type Engine interface {
	// Reset replaces the frontier with the given seed states (all-input
	// states in the seed are dropped; duplicates are removed). The
	// cumulative transition counter is preserved.
	Reset(seed []nfa.StateID)
	// SetBaseline switches all-input ("baseline") injection; see
	// Sparse.SetBaseline for the decomposition contract.
	SetBaseline(on bool)
	// Step consumes one symbol at the given input offset. emit may be nil.
	Step(sym byte, off int64, emit EmitFunc)
	// FrontierLen returns the number of enabled states (excluding
	// all-input states).
	FrontierLen() int
	// Dead reports whether the frontier is empty (deactivation check).
	Dead() bool
	// Fingerprint returns the Zobrist fingerprint of the frontier; stable
	// across engines (see Key).
	Fingerprint() uint64
	// Transitions returns cumulative transition-edge traversals, the
	// paper's dynamic-energy proxy.
	Transitions() int64
	// AppendFrontier appends the enabled states (excluding all-input) to
	// dst and returns it. Order is unspecified; Bit-backed engines happen
	// to append in ascending order.
	AppendFrontier(dst []nfa.StateID) []nfa.StateID
	// AppendFired appends the states that fired on the most recent Step.
	AppendFired(dst []nfa.StateID) []nfa.StateID
	// FrontierSet materialises the frontier as a freshly allocated bit
	// vector (the AP state vector, minus the always-set all-input bits).
	FrontierSet() *bitset.Set
}

// Kind names an execution backend for layers that thread engine selection
// (core, streams, the public pap API, papd). The zero value is Auto.
type Kind uint8

const (
	// Auto selects the adaptive engine: sparse until the frontier density
	// crosses a threshold, dense bit-vector beyond it (the default).
	Auto Kind = iota
	// SparseKind forces the frontier-list engine.
	SparseKind
	// BitKind forces the dense bit-vector engine.
	BitKind
	// LazyDFAKind forces the lazy-DFA engine: frontiers are determinized
	// on the fly into a bounded fingerprint-keyed state cache, falling
	// back to sparse on cache blowup. Requires the backend to be linked:
	// import pap/internal/engine/lazydfa (blank import suffices).
	LazyDFAKind
	// MetaKind selects the meta engine: literal/class prefiltering on a
	// dead frontier, the lazy DFA while its cache holds, and the adaptive
	// sparse/bit selector beyond — the full regime-matched stack.
	MetaKind
)

// MaxKind is the largest valid Kind value, for layers sizing per-kind
// arrays or validating configurations.
const MaxKind = MetaKind

// KindNames returns the canonical parseable names of every backend, in
// Kind order. Command-line flag help and error messages derive from this
// list, so it cannot drift from the registered kinds.
func KindNames() []string {
	return []string{"auto", "sparse", "bit", "lazydfa", "meta"}
}

// String returns the parseable name of the kind.
func (k Kind) String() string {
	if names := KindNames(); int(k) < len(names) {
		return names[k]
	}
	return "auto"
}

// ParseKind parses an engine name: "auto" (or "adaptive"), "sparse", "bit"
// (or "dense"), "lazydfa" (or "lazy-dfa"), "meta". The empty string is
// Auto.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "", "auto", "adaptive":
		return Auto, nil
	case "sparse":
		return SparseKind, nil
	case "bit", "dense":
		return BitKind, nil
	case "lazydfa", "lazy-dfa":
		return LazyDFAKind, nil
	case "meta":
		return MetaKind, nil
	}
	return Auto, fmt.Errorf("engine: unknown kind %q (valid kinds: %s)",
		s, strings.Join(KindNames(), ", "))
}

// LazyFactory builds a lazy-DFA engine over n, with newFB constructing
// the permanent fallback engine on cache blowup (nil selects sparse).
// tab is forwarded for fallbacks that use shared match tables.
type LazyFactory func(n *nfa.NFA, tab *Tables, newFB func() Engine) Engine

// lazyFactory is installed by pap/internal/engine/lazydfa's init. The
// indirection breaks the import cycle (lazydfa imports this package for
// the Engine contract), exactly like database/sql driver registration.
var lazyFactory LazyFactory

// RegisterLazyDFA installs the lazy-DFA constructor; called from the
// lazydfa package's init.
func RegisterLazyDFA(f LazyFactory) { lazyFactory = f }

func newLazyDFA(n *nfa.NFA, tab *Tables, newFB func() Engine) Engine {
	if lazyFactory == nil {
		panic(`engine: lazy-DFA backend not linked; import _ "pap/internal/engine/lazydfa"`)
	}
	return lazyFactory(n, tab, newFB)
}

// New returns an engine of the given kind at the automaton's start
// configuration. tab may be nil (private tables are built on demand); pass
// a shared *Tables to amortise match-vector construction across engines of
// the same automaton — Tables fills are atomic, so sharing is race-safe.
// Sparse engines ignore tab.
func New(kind Kind, n *nfa.NFA, tab *Tables) Engine {
	switch kind {
	case SparseKind:
		return NewSparse(n)
	case BitKind:
		return NewBit(n, tab)
	case LazyDFAKind:
		return newLazyDFA(n, tab, nil)
	case MetaKind:
		return NewMeta(n, tab)
	default:
		return NewAdaptive(n, tab)
	}
}

// CacheStats reports the lazy-DFA state cache counters of an engine run.
type CacheStats struct {
	Hits, Misses, Evictions int64
	States                  int
	Flushes                 int
	FellBack                bool
}

// CacheStatser is implemented by backends carrying a lazy-DFA cache.
type CacheStatser interface {
	CacheStats() CacheStats
}

// Switcher is implemented by backends that count sparse⇄dense
// representation switches (Adaptive, and backends wrapping it).
type Switcher interface {
	Switches() int64
}

// SwitchesOf returns the representation-switch count of e, 0 for fixed
// backends.
func SwitchesOf(e Engine) int64 {
	if s, ok := e.(Switcher); ok {
		return s.Switches()
	}
	return 0
}

// BatchStepper is implemented by engines with a vectorized multi-symbol
// hot loop (the bit engine, and the adaptive engine while dense).
type BatchStepper interface {
	// StepBatch consumes between 1 and len(input) symbols starting at
	// absolute input offset off, observably identical to calling Step once
	// per consumed symbol. It returns the consumed count together with the
	// sum and maximum of the frontier length over the consumed symbols, so
	// callers maintain per-symbol frontier statistics exactly. len(input)
	// must be > 0. Implementations are free to consume fewer symbols than
	// offered (batch bounds, a frontier death, a representation switch).
	StepBatch(input []byte, off int64, emit EmitFunc) (consumed int, sumFrontier int64, maxFrontier int)
}

// BaselineSkipper is implemented by engines with the baseline-skip fast
// path: when the frontier has collapsed to the always-active baseline,
// StepBatch consumes symbols outside the start class with a memchr-style
// class scan instead of stepping them — exactly, since such a symbol
// provably fires nothing on an empty frontier.
type BaselineSkipper interface {
	// SetBaselineSkip enables or disables the fast path (on by default).
	SetBaselineSkip(on bool)
	// BaselineSkipped returns the cumulative number of symbols the fast
	// path consumed.
	BaselineSkipped() int64
}

// StepBatchOf advances e by up to len(input) symbols through its batched
// fast path when it has one, or by exactly one scalar Step otherwise.
// len(input) must be > 0.
func StepBatchOf(e Engine, input []byte, off int64, emit EmitFunc) (consumed int, sumFrontier int64, maxFrontier int) {
	if b, ok := e.(BatchStepper); ok {
		return b.StepBatch(input, off, emit)
	}
	e.Step(input[0], off, emit)
	l := e.FrontierLen()
	return 1, int64(l), l
}

// SetBaselineSkip switches e's baseline-skip fast path, a no-op for
// backends without one.
func SetBaselineSkip(e Engine, on bool) {
	if s, ok := e.(BaselineSkipper); ok {
		s.SetBaselineSkip(on)
	}
}

// BaselineSkippedOf returns e's cumulative baseline-skip count, 0 for
// backends without the fast path.
func BaselineSkippedOf(e Engine) int64 {
	if s, ok := e.(BaselineSkipper); ok {
		return s.BaselineSkipped()
	}
	return 0
}

var (
	_ Engine          = (*Sparse)(nil)
	_ Engine          = (*Bit)(nil)
	_ Engine          = (*Adaptive)(nil)
	_ Engine          = (*Meta)(nil)
	_ Switcher        = (*Adaptive)(nil)
	_ Switcher        = (*Meta)(nil)
	_ BatchStepper    = (*Bit)(nil)
	_ BatchStepper    = (*Adaptive)(nil)
	_ BaselineSkipper = (*Bit)(nil)
	_ BaselineSkipper = (*Adaptive)(nil)
)

// Report is one output event: reporting state State (carrying rule
// identifier Code) fired on the symbol at Offset. Score is the firing
// state's best-path score at fire time when the producing engine tracks
// scores (see Scorer), 0 otherwise.
type Report struct {
	Offset int64
	State  nfa.StateID
	Code   int32
	Score  int64
}

// EmitFunc receives report events as they happen.
type EmitFunc func(Report)

// Key returns the Zobrist key of state q, used to fingerprint enabled sets
// for the paper's near-zero-cost convergence checks (§3.3.3). Keys are a
// fixed pseudo-random function of the state ID (splitmix64), so
// fingerprints are stable across engines, flows and processes.
func Key(q nfa.StateID) uint64 {
	z := uint64(q) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Sparse is the frontier-list engine. Create with NewSparse, seed with
// Reset, and advance with Step. Not safe for concurrent use.
type Sparse struct {
	n          *nfa.NFA
	isAllInput []bool
	baseline   bool          // re-enable all-input states every step
	frontier   []nfa.StateID // enabled states, excluding all-input states
	next       []nfa.StateID
	fired      []nfa.StateID
	mark       []int32
	epoch      int32
	fp         uint64 // XOR of Key over frontier
	trans      int64

	// Score tracking (see Scorer): two per-state arrays swapped each Step —
	// a state can be both a frontier member and a child in the same step
	// (self-loops), so in-place updates would read half-written values.
	// Validity is gated by frontier membership (mark/epoch): a stale slot is
	// never read, so pool reuse needs no clearing beyond ResetScored.
	scoring  bool
	scoreCur []int64
	scoreNxt []int64
}

// NewSparse returns an engine positioned at the automaton's start
// configuration (start-of-data states enabled), with baseline injection on:
// all-input states fire at every step.
func NewSparse(n *nfa.NFA) *Sparse {
	e := &Sparse{
		n:          n,
		isAllInput: make([]bool, n.Len()),
		baseline:   true,
		mark:       make([]int32, n.Len()),
	}
	for _, q := range n.AllInputStates() {
		e.isAllInput[q] = true
	}
	e.Reset(n.StartStates())
	return e
}

// SetBaseline switches baseline injection. With it off, the engine tracks
// only seed-derived ("enumeration") activity: all-input states never fire
// and are never entered. By NFA additivity, a full flow's behaviour is
// exactly the union of such a run and the baseline-only run — PAP exploits
// this to simulate the shared baseline once (in the ASG flow) instead of
// once per flow. Matches on hardware are unaffected: there, the shared
// automaton fires all-input states in every flow.
func (e *Sparse) SetBaseline(on bool) { e.baseline = on }

// Reset replaces the frontier with the given seed states (all-input states
// in the seed are dropped: they are implicitly always enabled). Duplicates
// in seed are removed. The transition counter is preserved.
func (e *Sparse) Reset(seed []nfa.StateID) {
	e.ResetScored(seed, nil)
}

// SetScoring switches score tracking (see Scorer).
func (e *Sparse) SetScoring(on bool) {
	e.scoring = on
	if on && e.scoreCur == nil {
		e.scoreCur = make([]int64, e.n.Len())
		e.scoreNxt = make([]int64, e.n.Len())
	}
}

// ResetScored is Reset with per-seed entry scores (see Scorer). scores may
// be nil; ignored unless scoring is on.
func (e *Sparse) ResetScored(seed []nfa.StateID, scores []int64) {
	e.epoch++
	e.frontier = e.frontier[:0]
	e.fp = 0
	for i, q := range seed {
		var sc int64
		if e.scoring && scores != nil {
			sc = scores[i]
		}
		if e.isAllInput[q] {
			continue
		}
		if e.mark[q] == e.epoch {
			if e.scoring && sc > e.scoreCur[q] {
				e.scoreCur[q] = sc
			}
			continue
		}
		e.mark[q] = e.epoch
		e.frontier = append(e.frontier, q)
		e.fp ^= Key(q)
		if e.scoring {
			e.scoreCur[q] = sc
		}
	}
}

// FrontierScore returns the best-path score of enabled state q.
func (e *Sparse) FrontierScore(q nfa.StateID) int64 {
	if !e.scoring || e.isAllInput[q] {
		return 0
	}
	return e.scoreCur[q]
}

// Step consumes one symbol at the given input offset. emit may be nil.
func (e *Sparse) Step(sym byte, off int64, emit EmitFunc) {
	if e.scoring {
		e.stepScored(sym, off, emit)
		return
	}
	e.epoch++
	next := e.next[:0]
	fired := e.fired[:0]
	var fp uint64
	n := e.n
	process := func(q nfa.StateID) {
		st := n.State(q)
		if !st.Label.Test(sym) {
			return
		}
		fired = append(fired, q)
		if st.Flags&nfa.Report != 0 && emit != nil {
			emit(Report{Offset: off, State: q, Code: st.ReportCode})
		}
		succ := n.Succ(q)
		e.trans += int64(len(succ))
		for _, c := range succ {
			if e.isAllInput[c] || e.mark[c] == e.epoch {
				continue
			}
			e.mark[c] = e.epoch
			next = append(next, c)
			fp ^= Key(c)
		}
	}
	for _, q := range e.frontier {
		process(q)
	}
	if e.baseline {
		for _, q := range n.AllInputStates() {
			process(q)
		}
	}
	e.next, e.frontier = e.frontier, next
	e.fired = fired
	e.fp = fp
}

// stepScored is Step with score propagation: the scored twin of the loop
// above, kept separate so the unscored path stays score-free. On firing,
// state q contributes base+weight to each child's next score (base is q's
// current score, 0 for all-input states), and children reached by several
// parents keep the maximum.
func (e *Sparse) stepScored(sym byte, off int64, emit EmitFunc) {
	e.epoch++
	next := e.next[:0]
	fired := e.fired[:0]
	var fp uint64
	n := e.n
	cur, nxt := e.scoreCur, e.scoreNxt
	process := func(q nfa.StateID, base int64) {
		st := n.State(q)
		if !st.Label.Test(sym) {
			return
		}
		fired = append(fired, q)
		if st.Flags&nfa.Report != 0 && emit != nil {
			emit(Report{Offset: off, State: q, Code: st.ReportCode, Score: base})
		}
		succ := n.Succ(q)
		w := n.SuccScores(q)
		e.trans += int64(len(succ))
		for i, c := range succ {
			if e.isAllInput[c] {
				continue
			}
			cand := base
			if w != nil {
				cand += int64(w[i])
			}
			if e.mark[c] == e.epoch {
				if cand > nxt[c] {
					nxt[c] = cand
				}
				continue
			}
			e.mark[c] = e.epoch
			next = append(next, c)
			fp ^= Key(c)
			nxt[c] = cand
		}
	}
	for _, q := range e.frontier {
		process(q, cur[q])
	}
	if e.baseline {
		for _, q := range n.AllInputStates() {
			process(q, 0)
		}
	}
	e.next, e.frontier = e.frontier, next
	e.scoreCur, e.scoreNxt = nxt, cur
	e.fired = fired
	e.fp = fp
}

// clearFired empties the fired set (used by wrappers that skip input on
// this engine's behalf: nothing fired on a skipped symbol).
func (e *Sparse) clearFired() { e.fired = e.fired[:0] }

// Frontier returns the currently enabled states excluding all-input states.
// The slice is owned by the engine and is invalidated by the next Step.
func (e *Sparse) Frontier() []nfa.StateID { return e.frontier }

// FiredLast returns the states that fired on the most recent Step. The
// slice is owned by the engine and is invalidated by the next Step.
func (e *Sparse) FiredLast() []nfa.StateID { return e.fired }

// FrontierLen returns the number of enabled states (excluding all-input).
func (e *Sparse) FrontierLen() int { return len(e.frontier) }

// AppendFrontier appends the enabled states to dst and returns it.
func (e *Sparse) AppendFrontier(dst []nfa.StateID) []nfa.StateID {
	return append(dst, e.frontier...)
}

// AppendFired appends the states that fired on the most recent Step.
func (e *Sparse) AppendFired(dst []nfa.StateID) []nfa.StateID {
	return append(dst, e.fired...)
}

// Dead reports whether the frontier is empty: the flow has no activity
// beyond the always-enabled baseline (deactivation check, §3.3.4).
func (e *Sparse) Dead() bool { return len(e.frontier) == 0 }

// Fingerprint returns the Zobrist fingerprint of the frontier. Two flows
// with equal fingerprints are convergence candidates; equality must be
// confirmed with EqualFrontier.
func (e *Sparse) Fingerprint() uint64 { return e.fp }

// Transitions returns the cumulative number of transition-edge traversals
// (successor activations) performed, the paper's dynamic-energy proxy.
func (e *Sparse) Transitions() int64 { return e.trans }

// FrontierSet materialises the frontier as a bit vector (the AP state
// vector, minus the always-set all-input bits).
func (e *Sparse) FrontierSet() *bitset.Set {
	s := bitset.New(e.n.Len())
	for _, q := range e.frontier {
		s.Set(int(q))
	}
	return s
}

// EqualFrontier reports whether two engines over the same automaton have
// exactly equal frontiers.
func EqualFrontier(a, b *Sparse) bool {
	if a.fp != b.fp || len(a.frontier) != len(b.frontier) {
		return false
	}
	// Confirm exactly: mark a's frontier, probe b's.
	a.epoch++
	for _, q := range a.frontier {
		a.mark[q] = a.epoch
	}
	for _, q := range b.frontier {
		if a.mark[q] != a.epoch {
			return false
		}
	}
	return true
}
