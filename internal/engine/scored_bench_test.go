package engine_test

import (
	"math/rand"
	"testing"

	"pap/internal/engine"
	"pap/internal/nfa"
	"pap/internal/workloads"
)

// BenchmarkScoredOverhead prices the scoring machinery against the unscored
// hot path, in the regime BENCH_hotloop.json measures (sparse intrusion
// traffic, mostly-dead frontier) and on a genuinely scored workload:
//
//   - intrusion/unscored        — the seed hot path, untouched by this work
//   - intrusion/score-tracking  — the same unscored automaton with score
//     tracking forced on (all-zero scores): the worst-case cost of tracking,
//     since nothing useful is bought
//   - motif/scoring-off         — a scored automaton (weights present) with
//     tracking off: must price like an unscored run, because the score
//     arrays are never touched
//   - motif/scoring-on          — the real scored path
//
// The acceptance bar is on the first row: with scoring compiled in but
// disabled, the unscored hot path allocates nothing per run beyond the
// result itself and TestHotLoopGuard still clears its 5x floor.
func BenchmarkScoredOverhead(b *testing.B) {
	rng := rand.New(rand.NewSource(61))
	intrusion := hotloopAutomaton(b, "Snort", 0.05)
	intrusionIn := sparsePayload(rng, 1<<16)

	motifSpec, err := workloads.Get("ScoredMotif")
	if err != nil {
		b.Fatal(err)
	}
	motif, err := motifSpec.Build(0.1, 7)
	if err != nil {
		b.Fatal(err)
	}
	motifIn := motifSpec.Trace(motif, 1<<16, 13)

	cases := []struct {
		name  string
		n     *nfa.NFA
		input []byte
		opts  engine.RunOpts
	}{
		{"intrusion/unscored", intrusion, intrusionIn, engine.RunOpts{}},
		{"intrusion/score-tracking", intrusion, intrusionIn, engine.RunOpts{Scored: true}},
		{"motif/scoring-off", motif, motifIn, engine.RunOpts{}},
		{"motif/scoring-on", motif, motifIn, engine.RunOpts{Scored: true}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			tab := engine.NewTables(c.n).BuildAll()
			b.SetBytes(int64(len(c.input)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				engine.RunEngineOpts(c.n, c.input, engine.BitKind, tab, c.opts)
			}
		})
	}
}
