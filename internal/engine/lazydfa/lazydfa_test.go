package lazydfa_test

import (
	"math/rand"
	"testing"

	"pap/internal/conformance"
	"pap/internal/engine"
	"pap/internal/engine/lazydfa"
	"pap/internal/nfa"
)

// step runs one symbol through every engine and fails on any divergence
// of the observable state.
func checkStep(t *testing.T, trial int, off int64, names []string, engines []engine.Engine) {
	t.Helper()
	ref := engines[0]
	for i, e := range engines[1:] {
		if e.Fingerprint() != ref.Fingerprint() {
			t.Fatalf("trial %d off %d: %s fingerprint %#x, %s %#x",
				trial, off, names[i+1], e.Fingerprint(), names[0], ref.Fingerprint())
		}
		if e.FrontierLen() != ref.FrontierLen() {
			t.Fatalf("trial %d off %d: %s FrontierLen %d, %s %d",
				trial, off, names[i+1], e.FrontierLen(), names[0], ref.FrontierLen())
		}
		if e.Dead() != ref.Dead() {
			t.Fatalf("trial %d off %d: %s Dead %v, %s %v",
				trial, off, names[i+1], e.Dead(), names[0], ref.Dead())
		}
		if e.Transitions() != ref.Transitions() {
			t.Fatalf("trial %d off %d: %s transitions %d, %s %d",
				trial, off, names[i+1], e.Transitions(), names[0], ref.Transitions())
		}
		if !ref.FrontierSet().Equal(e.FrontierSet()) {
			t.Fatalf("trial %d off %d: %s frontier diverged from %s",
				trial, off, names[i+1], names[0])
		}
	}
}

// TestLazyDFAEquivalence is the differential property test for the lazy
// DFA: on random automata and inputs — with mid-run Resets and baseline
// flips — the default engine, a cache-starved engine (which flushes and
// then falls back permanently mid-run), and the meta stack must all agree
// with the sparse reference on every observable at every step.
func TestLazyDFAEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		spec := conformance.RandomSpec(rng)
		n, err := spec.Build()
		if err != nil {
			continue
		}
		tab := engine.NewTables(n)
		names := []string{"sparse", "lazydfa", "lazydfa-starved", "meta"}
		engines := []engine.Engine{
			engine.NewSparse(n),
			lazydfa.New(n, tab),
			lazydfa.NewWithFallback(n, lazydfa.Config{MaxStates: 2, MaxFlushes: 1}, nil),
			engine.New(engine.MetaKind, n, tab),
		}
		reports := make([][]engine.Report, len(engines))
		emits := make([]engine.EmitFunc, len(engines))
		for i := range engines {
			i := i
			emits[i] = func(r engine.Report) { reports[i] = append(reports[i], r) }
		}
		input := conformance.RandomInput(rng, spec)
		baseline := true
		for i, sym := range input {
			if rng.Intn(24) == 0 {
				var seed []nfa.StateID
				for q := 0; q < n.Len(); q++ {
					if rng.Intn(3) == 0 {
						seed = append(seed, nfa.StateID(q))
					}
				}
				for _, e := range engines {
					e.Reset(seed)
				}
			}
			if rng.Intn(30) == 0 {
				baseline = !baseline
				for _, e := range engines {
					e.SetBaseline(baseline)
				}
			}
			for j, e := range engines {
				e.Step(sym, int64(i), emits[j])
			}
			checkStep(t, trial, int64(i), names, engines)
		}
		for i := 1; i < len(engines); i++ {
			if !engine.SameReports(reports[0], reports[i]) {
				t.Fatalf("trial %d (spec %v): %s reports diverged from sparse",
					trial, spec, names[i])
			}
		}
	}
}

// denseNFA is a high-fanout automaton whose frontier keeps changing on a
// varied input — cache-hostile by construction.
func denseNFA(states int) *nfa.NFA {
	b := nfa.NewBuilder("dense")
	for i := 0; i < states; i++ {
		flags := nfa.Flags(0)
		if i == 0 {
			flags = nfa.AllInput
		}
		b.AddState(nfa.ClassOf('a', 'b'), flags)
	}
	for i := 0; i < states; i++ {
		b.AddEdge(nfa.StateID(i), nfa.StateID((i+1)%states))
		b.AddEdge(nfa.StateID(i), nfa.StateID((i*7+3)%states))
	}
	return b.MustBuild()
}

// TestLazyDFAFallbackContinuity starves the cache until permanent
// fallback and checks that the engine stays observably exact through the
// flush and the switch: cumulative transitions equal the sparse
// reference's, and the cache stats record the journey.
func TestLazyDFAFallbackContinuity(t *testing.T) {
	n := denseNFA(64)
	e := lazydfa.NewWithFallback(n, lazydfa.Config{MaxStates: 4, MaxFlushes: 1}, nil)
	sp := engine.NewSparse(n)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		sym := []byte("abab z")[rng.Intn(6)]
		e.Step(sym, int64(i), nil)
		sp.Step(sym, int64(i), nil)
		if e.Fingerprint() != sp.Fingerprint() {
			t.Fatalf("fingerprint diverged at offset %d", i)
		}
	}
	if e.Transitions() != sp.Transitions() {
		t.Fatalf("transitions = %d, want %d", e.Transitions(), sp.Transitions())
	}
	cs := e.CacheStats()
	if !cs.FellBack {
		t.Fatalf("engine never fell back on a cache-hostile workload: %+v", cs)
	}
	if cs.Evictions == 0 {
		t.Fatalf("fallback recorded no evictions: %+v", cs)
	}
	if cs.Flushes != 1 {
		t.Fatalf("flushes = %d, want 1 (the whole budget)", cs.Flushes)
	}
	// Post-fallback the engine must keep working: Reset and more steps.
	e.Reset(n.StartStates())
	sp.Reset(n.StartStates())
	for i := 0; i < 100; i++ {
		e.Step('a', int64(i), nil)
		sp.Step('a', int64(i), nil)
	}
	if e.Fingerprint() != sp.Fingerprint() {
		t.Fatal("fingerprint diverged after post-fallback reset")
	}
}

// TestLazyDFACacheReplay drives a periodic input: after the first period
// populates the cache, subsequent periods must be pure hits.
func TestLazyDFACacheReplay(t *testing.T) {
	n := denseNFA(16)
	e := lazydfa.New(n, nil)
	pattern := []byte("ababz abz")
	var off int64
	for rep := 0; rep < 50; rep++ {
		for _, sym := range pattern {
			e.Step(sym, off, nil)
			off++
		}
	}
	cs := e.CacheStats()
	if cs.FellBack {
		t.Fatalf("fell back on a trivially periodic workload: %+v", cs)
	}
	if cs.Hits < cs.Misses*10 {
		t.Fatalf("hits = %d, misses = %d; periodic input should be nearly all hits", cs.Hits, cs.Misses)
	}
	if cs.States > len(pattern)*4 {
		t.Fatalf("cached states = %d for a %d-symbol period", cs.States, len(pattern))
	}
}

// TestMetaObservability checks the meta stack's introspection hooks: the
// engine advertises a prefilter (on an automaton with a narrow start
// class) and surfaces its inner lazy-DFA cache stats.
func TestMetaObservability(t *testing.T) {
	b := nfa.NewBuilder("narrow")
	root := b.AddState(nfa.ClassOf('G'), nfa.AllInput)
	tail := b.AddState(nfa.ClassOf('T'), 0)
	b.SetFlags(tail, nfa.Report)
	b.AddEdge(root, tail)
	n := b.MustBuild()

	e := engine.New(engine.MetaKind, n, engine.NewTables(n))
	if engine.PrefilterOf(e) == nil {
		t.Fatal("meta engine over a narrow start class advertises no prefilter")
	}
	for i := 0; i < 100; i++ {
		e.Step("GTz"[i%3], int64(i), nil)
	}
	cs := engine.CacheStatsOf(e)
	if cs.Hits == 0 {
		t.Fatalf("meta lazy-DFA cache recorded no hits: %+v", cs)
	}
	if engine.PrefilterOf(engine.NewSparse(n)) != nil {
		t.Fatal("sparse engine unexpectedly advertises a prefilter")
	}
}
