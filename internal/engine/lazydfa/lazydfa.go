// Package lazydfa provides a fourth engine.Engine backend that
// determinizes the NFA frontier on the fly, the way lazy-DFA regex
// engines (and the Rabin-fingerprint SDFA line of work) avoid re-deriving
// the same successor set over and over: each distinct frontier becomes one
// cached DFA state, keyed by its Zobrist fingerprint with full-member
// collision verification, and each (state, symbol, baseline-mode) step is
// resolved once into a cached edge carrying everything the step
// observably does — the successor state, the transition-count delta, the
// fired-state list, and the report templates. Replaying a cached edge is
// therefore bit-identical to stepping the sparse engine, including the
// Transitions energy proxy, so the conformance harness holds lazydfa to
// the same exact-equality bar as the other backends.
//
// The cache is bounded: when it reaches its state cap it is flushed (an
// LRU-of-generations policy — the live working set re-interns itself on
// demand), and after too many flushes the engine concludes the workload
// is cache-hostile (dense, ever-changing frontiers) and falls back
// permanently to an inner engine — sparse by default, or whatever the
// caller supplies (the meta selector supplies the adaptive engine).
// Cumulative counters carry across the fallback, so observables stay
// exact through the switch.
package lazydfa

import (
	"sort"

	"pap/internal/bitset"
	"pap/internal/engine"
	"pap/internal/nfa"
)

// Default cache bounds: MaxStates caps distinct cached frontiers per
// engine (each costs ~2 KiB per touched baseline mode for its edge
// table); MaxFlushes is how many whole-cache flushes are tolerated before
// the engine falls back permanently.
const (
	DefaultMaxStates  = 2048
	DefaultMaxFlushes = 2
)

// Config bounds the state cache. Zero fields select the defaults.
type Config struct {
	MaxStates  int
	MaxFlushes int
}

type report struct {
	state nfa.StateID
	code  int32
}

// edge is one fully-resolved (state, symbol, baseline-mode) step.
type edge struct {
	next    *dstate
	trans   int64 // Σ |succ(q)| over fired q — the sparse engine's delta
	fired   []nfa.StateID
	reports []report
}

// dstate is one determinized frontier: a sorted member set (all-input
// states excluded, as in every engine's frontier) plus per-mode edge
// tables, allocated lazily because most runs use one baseline mode.
type dstate struct {
	members []nfa.StateID
	fp      uint64
	edges   [2]*[256]*edge
}

// Engine is the lazy-DFA backend. Not safe for concurrent use.
type Engine struct {
	n          *nfa.NFA
	isAllInput []bool
	baseline   bool
	cfg        Config

	cur   *dstate
	cache map[uint64][]*dstate
	nst   int
	empty *dstate // interned once; survives flushes (it is the hot state)

	flushes                 int
	hits, misses, evictions int64
	trans                   int64
	lastFired               []nfa.StateID

	fb    engine.Engine // non-nil after permanent fallback
	newFB func() engine.Engine

	mark    []int32
	epoch   int32
	scratch []nfa.StateID
}

// New returns a lazy-DFA engine with default bounds and a sparse
// fallback, positioned at the automaton's start configuration with
// baseline injection on. tab is accepted for signature symmetry with the
// other backends; the lazy DFA tests labels directly and only passes tab
// through to a table-using fallback.
func New(n *nfa.NFA, tab *engine.Tables) *Engine {
	return NewWithFallback(n, Config{}, func() engine.Engine { return engine.NewSparse(n) })
}

// NewWithFallback is New with explicit cache bounds and fallback factory
// (nil selects sparse). The factory runs at most once, at permanent
// fallback time.
func NewWithFallback(n *nfa.NFA, cfg Config, newFB func() engine.Engine) *Engine {
	if cfg.MaxStates <= 0 {
		cfg.MaxStates = DefaultMaxStates
	}
	if cfg.MaxFlushes < 0 {
		cfg.MaxFlushes = 0
	} else if cfg.MaxFlushes == 0 {
		cfg.MaxFlushes = DefaultMaxFlushes
	}
	if newFB == nil {
		newFB = func() engine.Engine { return engine.NewSparse(n) }
	}
	e := &Engine{
		n:          n,
		isAllInput: make([]bool, n.Len()),
		baseline:   true,
		cfg:        cfg,
		newFB:      newFB,
		mark:       make([]int32, n.Len()),
	}
	for _, q := range n.AllInputStates() {
		e.isAllInput[q] = true
	}
	e.cache = make(map[uint64][]*dstate)
	e.empty = e.intern(nil)
	e.Reset(n.StartStates())
	return e
}

// Reset replaces the frontier with the given seed states (all-input
// dropped, duplicates removed); cumulative counters are preserved.
func (e *Engine) Reset(seed []nfa.StateID) {
	if e.fb != nil {
		e.fb.Reset(seed)
		return
	}
	e.lastFired = nil
	e.epoch++
	ids := e.scratch[:0]
	for _, q := range seed {
		if e.isAllInput[q] || e.mark[q] == e.epoch {
			continue
		}
		e.mark[q] = e.epoch
		ids = append(ids, q)
	}
	e.scratch = ids
	sortIDs(ids)
	e.cur = e.intern(ids)
	if e.fb != nil { // intern may have exhausted the flush budget
		e.fb.SetBaseline(e.baseline)
		e.fb.Reset(seed)
	}
}

// SetBaseline switches all-input injection (see engine.Sparse.SetBaseline
// for the decomposition contract). Cached states keep separate edge
// tables per mode, so toggling never invalidates the cache.
func (e *Engine) SetBaseline(on bool) {
	e.baseline = on
	if e.fb != nil {
		e.fb.SetBaseline(on)
	}
}

// Step consumes one symbol at the given input offset. emit may be nil.
func (e *Engine) Step(sym byte, off int64, emit engine.EmitFunc) {
	if e.fb != nil {
		e.fb.Step(sym, off, emit)
		return
	}
	mode := 0
	if e.baseline {
		mode = 1
	}
	tab := e.cur.edges[mode]
	if tab == nil {
		tab = new([256]*edge)
		e.cur.edges[mode] = tab
	}
	ed := tab[sym]
	if ed == nil {
		e.misses++
		ed = e.determinize(e.cur, sym)
		if e.fb != nil {
			// Interning the successor exhausted the cache budget: the
			// fallback engine was seeded with the pre-step frontier and now
			// takes the step itself.
			e.fb.Step(sym, off, emit)
			return
		}
		tab[sym] = ed
	} else {
		e.hits++
	}
	e.trans += ed.trans
	if emit != nil {
		for _, r := range ed.reports {
			emit(engine.Report{Offset: off, State: r.state, Code: r.code})
		}
	}
	e.lastFired = ed.fired
	e.cur = ed.next
}

// determinize resolves one (state, symbol) edge under the current
// baseline mode, reproducing exactly what the sparse engine's Step does:
// fired = label-matching members (plus all-input states when baseline is
// on), trans = Σ successor counts over fired, next = the deduplicated
// non-all-input successor union. On cache exhaustion it may trigger
// permanent fallback, in which case the returned edge is meaningless and
// e.fb is set.
func (e *Engine) determinize(d *dstate, sym byte) *edge {
	n := e.n
	ed := &edge{}
	e.epoch++
	next := e.scratch[:0]
	fire := func(q nfa.StateID) {
		st := n.State(q)
		if !st.Label.Test(sym) {
			return
		}
		ed.fired = append(ed.fired, q)
		if st.Flags&nfa.Report != 0 {
			ed.reports = append(ed.reports, report{state: q, code: st.ReportCode})
		}
		succ := n.Succ(q)
		ed.trans += int64(len(succ))
		for _, c := range succ {
			if e.isAllInput[c] || e.mark[c] == e.epoch {
				continue
			}
			e.mark[c] = e.epoch
			next = append(next, c)
		}
	}
	for _, q := range d.members {
		fire(q)
	}
	if e.baseline {
		for _, q := range n.AllInputStates() {
			fire(q)
		}
	}
	e.scratch = next
	sortIDs(next)
	ed.next = e.intern(next)
	if e.fb != nil {
		// Fallback fired while interning: seed it with the *pre-step*
		// frontier so the caller can replay this step on it.
		e.fb.SetBaseline(e.baseline)
		e.fb.Reset(d.members)
		return nil
	}
	return ed
}

// intern returns the canonical cached state for the sorted member set,
// copying ids on first sight. Reaching the cap flushes the cache while
// budget remains, then triggers permanent fallback (e.fb becomes
// non-nil and the return value must not be used).
func (e *Engine) intern(ids []nfa.StateID) *dstate {
	fp := uint64(0)
	for _, q := range ids {
		fp ^= engine.Key(q)
	}
	for _, d := range e.cache[fp] {
		if equalIDs(d.members, ids) {
			return d
		}
	}
	if e.nst >= e.cfg.MaxStates {
		if e.flushes >= e.cfg.MaxFlushes {
			e.evictions += int64(e.nst)
			e.cache = nil
			e.nst = 0
			e.fb = e.newFB()
			return nil
		}
		e.flush()
	}
	d := &dstate{members: append([]nfa.StateID(nil), ids...), fp: fp}
	e.cache[fp] = append(e.cache[fp], d)
	e.nst++
	return d
}

// flush empties the cache (counting every dropped state as an eviction)
// and re-interns the empty state, which every quiet run returns to.
func (e *Engine) flush() {
	e.flushes++
	e.evictions += int64(e.nst)
	e.cache = make(map[uint64][]*dstate)
	e.nst = 0
	e.empty = &dstate{}
	e.cache[0] = append(e.cache[0], e.empty)
	e.nst++
}

// FrontierLen returns the number of enabled states (excluding all-input).
func (e *Engine) FrontierLen() int {
	if e.fb != nil {
		return e.fb.FrontierLen()
	}
	return len(e.cur.members)
}

// Dead reports whether the frontier is empty.
func (e *Engine) Dead() bool {
	if e.fb != nil {
		return e.fb.Dead()
	}
	return len(e.cur.members) == 0
}

// Fingerprint returns the Zobrist fingerprint of the frontier.
func (e *Engine) Fingerprint() uint64 {
	if e.fb != nil {
		return e.fb.Fingerprint()
	}
	return e.cur.fp
}

// Transitions returns cumulative transition-edge traversals, carried
// across cache flushes and fallback.
func (e *Engine) Transitions() int64 {
	if e.fb != nil {
		return e.trans + e.fb.Transitions()
	}
	return e.trans
}

// AppendFrontier appends the enabled states (ascending) to dst.
func (e *Engine) AppendFrontier(dst []nfa.StateID) []nfa.StateID {
	if e.fb != nil {
		return e.fb.AppendFrontier(dst)
	}
	return append(dst, e.cur.members...)
}

// AppendFired appends the states that fired on the most recent Step.
func (e *Engine) AppendFired(dst []nfa.StateID) []nfa.StateID {
	if e.fb != nil {
		return e.fb.AppendFired(dst)
	}
	return append(dst, e.lastFired...)
}

// FrontierSet materialises the frontier as a fresh bit vector.
func (e *Engine) FrontierSet() *bitset.Set {
	if e.fb != nil {
		return e.fb.FrontierSet()
	}
	s := bitset.New(e.n.Len())
	for _, q := range e.cur.members {
		s.Set(int(q))
	}
	return s
}

// CacheStats reports the cache counters (see engine.CacheStats).
func (e *Engine) CacheStats() engine.CacheStats {
	return engine.CacheStats{
		Hits:      e.hits,
		Misses:    e.misses,
		Evictions: e.evictions,
		States:    e.nst,
		Flushes:   e.flushes,
		FellBack:  e.fb != nil,
	}
}

// Switches returns the representation switches of an adaptive fallback
// engine (0 before fallback or for non-adaptive fallbacks).
func (e *Engine) Switches() int64 {
	if a, ok := e.fb.(*engine.Adaptive); ok {
		return a.Switches()
	}
	return 0
}

func init() {
	engine.RegisterLazyDFA(func(n *nfa.NFA, tab *engine.Tables, newFB func() engine.Engine) engine.Engine {
		return NewWithFallback(n, Config{}, newFB)
	})
}

var _ engine.Engine = (*Engine)(nil)

func sortIDs(ids []nfa.StateID) {
	if len(ids) > 32 {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		return
	}
	// Insertion sort: small frontiers are built from sorted successor
	// lists and arrive nearly sorted.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

func equalIDs(a, b []nfa.StateID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
