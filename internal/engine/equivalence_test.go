package engine

import (
	"math/rand"
	"sync"
	"testing"

	"pap/internal/nfa"
)

// engineTrio builds one engine of each kind over n, sharing one Tables.
func engineTrio(n *nfa.NFA) (names []string, engines []Engine) {
	tab := NewTables(n)
	return []string{"sparse", "bit", "adaptive"},
		[]Engine{NewSparse(n), NewBit(n, tab), NewAdaptive(n, tab)}
}

// checkAgreement fails the test if any engine disagrees with the first on
// the full observable state: frontier set, length, fingerprint, liveness
// and cumulative transition count.
func checkAgreement(t *testing.T, ctx string, names []string, engines []Engine) {
	t.Helper()
	ref := engines[0]
	refSet := ref.FrontierSet()
	for i, e := range engines[1:] {
		if !refSet.Equal(e.FrontierSet()) {
			t.Fatalf("%s: %s frontier diverged from %s:\n%v\n%v",
				ctx, names[i+1], names[0], refSet, e.FrontierSet())
		}
		if e.FrontierLen() != ref.FrontierLen() {
			t.Fatalf("%s: %s FrontierLen = %d, %s = %d",
				ctx, names[i+1], e.FrontierLen(), names[0], ref.FrontierLen())
		}
		if e.Fingerprint() != ref.Fingerprint() {
			t.Fatalf("%s: %s fingerprint diverged from %s", ctx, names[i+1], names[0])
		}
		if e.Dead() != ref.Dead() {
			t.Fatalf("%s: %s Dead = %v, %s = %v",
				ctx, names[i+1], e.Dead(), names[0], ref.Dead())
		}
		if e.Transitions() != ref.Transitions() {
			t.Fatalf("%s: %s transitions = %d, %s = %d",
				ctx, names[i+1], e.Transitions(), names[0], ref.Transitions())
		}
	}
}

// TestEngineEquivalence is the three-way differential property test: on
// random automata and inputs — with mid-run Resets and baseline toggles
// thrown in — Sparse, Bit and Adaptive must agree on every observable:
// frontiers, fingerprints, liveness, reports and transition counts.
func TestEngineEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := randomNFA(rng, 2+rng.Intn(40))
		names, engines := engineTrio(n)
		reports := make([][]Report, len(engines))
		emits := make([]EmitFunc, len(engines))
		for i := range engines {
			i := i
			emits[i] = func(r Report) { reports[i] = append(reports[i], r) }
		}
		input := randomInput(rng, 120)
		baseline := true
		for i, sym := range input {
			// Occasionally reset all engines to a common random seed, or
			// flip baseline injection, mid-run.
			if rng.Intn(20) == 0 {
				var seed []nfa.StateID
				for q := 0; q < n.Len(); q++ {
					if rng.Intn(3) == 0 {
						seed = append(seed, nfa.StateID(q))
					}
				}
				for _, e := range engines {
					e.Reset(seed)
				}
			}
			if rng.Intn(30) == 0 {
				baseline = !baseline
				for _, e := range engines {
					e.SetBaseline(baseline)
				}
			}
			for j, e := range engines {
				e.Step(sym, int64(i), emits[j])
			}
			checkAgreement(t, "", names, engines)
		}
		for i := 1; i < len(engines); i++ {
			if !SameReports(reports[0], reports[i]) {
				t.Fatalf("trial %d: %s reports diverged from %s:\n%+v\n%+v",
					trial, names[i], names[0], reports[i], reports[0])
			}
		}
	}
}

// FuzzEngineEquivalence drives the three engines over fuzzer-chosen inputs
// on a fuzzer-chosen random automaton and requires identical observables.
func FuzzEngineEquivalence(f *testing.F) {
	f.Add(int64(1), []byte("abcdabcd"))
	f.Add(int64(42), []byte("aaaaaaaaaaaaaaaa"))
	f.Add(int64(9), []byte("dcbadcba\x00\xffzz"))
	f.Fuzz(func(t *testing.T, seed int64, input []byte) {
		if len(input) > 4096 {
			input = input[:4096]
		}
		rng := rand.New(rand.NewSource(seed))
		n := randomNFA(rng, 2+rng.Intn(64))
		names, engines := engineTrio(n)
		reports := make([][]Report, len(engines))
		for i, sym := range input {
			// Map arbitrary fuzz bytes onto the automaton's alphabet plus a
			// guaranteed-miss symbol, so runs stay active enough to matter.
			sym = "abcdz"[int(sym)%5]
			for j, e := range engines {
				j := j
				e.Step(sym, int64(i), func(r Report) { reports[j] = append(reports[j], r) })
			}
			checkAgreement(t, "", names, engines)
		}
		for i := 1; i < len(engines); i++ {
			if !SameReports(reports[0], reports[i]) {
				t.Fatalf("%s reports diverged from %s", names[i], names[0])
			}
		}
	})
}

// TestAdaptiveSwitchesRepresentations pins the adaptive policy down: a
// high-fanout automaton on an all-hit input must drive the engine dense,
// and a long miss streak must bring it back to sparse, with the frontier
// intact across both migrations.
func TestAdaptiveSwitchesRepresentations(t *testing.T) {
	const states = 256
	n := fanoutNFA(states)
	sp := NewSparse(n)
	ad := NewAdaptive(n, nil)
	step := func(sym byte, off int64) {
		sp.Step(sym, off, nil)
		ad.Step(sym, off, nil)
		if sp.Fingerprint() != ad.Fingerprint() {
			t.Fatalf("fingerprints diverged at offset %d", off)
		}
	}
	var off int64
	for i := 0; i < 4*adaptiveHoldSteps; i++ { // saturating hits
		step('a', off)
		off++
	}
	if !ad.Dense() {
		t.Fatalf("adaptive stayed sparse at frontier %d/%d states", ad.FrontierLen(), states)
	}
	for i := 0; i < 4*adaptiveHoldSteps; i++ { // miss streak drains the frontier
		step('z', off)
		off++
	}
	if ad.Dense() {
		t.Fatal("adaptive stayed dense on an empty frontier")
	}
	if ad.Switches() < 2 {
		t.Fatalf("switches = %d, want >= 2", ad.Switches())
	}
	if sp.Transitions() != ad.Transitions() {
		t.Fatalf("transitions = %d, want %d", ad.Transitions(), sp.Transitions())
	}
}

// TestTablesConcurrentSharing exercises the lazy match-vector fills from
// many goroutines sharing one unbuilt Tables (run under -race in CI): every
// engine must end with the reference fingerprint.
func TestTablesConcurrentSharing(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := randomNFA(rng, 200)
	input := randomInput(rng, 400)

	ref := NewBit(n, NewTables(n))
	for i, sym := range input {
		ref.Step(sym, int64(i), nil)
	}

	shared := NewTables(n) // deliberately not BuildAll: races hit the fills
	var wg sync.WaitGroup
	fps := make([]uint64, 16)
	for g := range fps {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var e Engine
			if g%2 == 0 {
				e = NewBit(n, shared)
			} else {
				e = NewAdaptive(n, shared)
			}
			for i, sym := range input {
				e.Step(sym, int64(i), nil)
			}
			fps[g] = e.Fingerprint()
		}(g)
	}
	wg.Wait()
	for g, fp := range fps {
		if fp != ref.Fingerprint() {
			t.Fatalf("goroutine %d fingerprint %#x, want %#x", g, fp, ref.Fingerprint())
		}
	}
}

// fanoutNFA builds a density-controllable automaton: an all-input seeder
// plus a ring of states labelled 'a', each with two successors, so a run of
// k consecutive 'a' symbols roughly doubles the frontier k times (dense),
// while any other symbol empties it (sparse). Input hit-rate, not
// structure, then sets the steady-state frontier density.
func fanoutNFA(states int) *nfa.NFA {
	b := nfa.NewBuilder("fanout")
	for i := 0; i < states; i++ {
		flags := nfa.Flags(0)
		if i == 0 {
			flags = nfa.AllInput
		}
		b.AddState(nfa.ClassOf('a'), flags)
	}
	for i := 0; i < states; i++ {
		b.AddEdge(nfa.StateID(i), nfa.StateID((i+1)%states))
		b.AddEdge(nfa.StateID(i), nfa.StateID((i+17)%states))
	}
	return b.MustBuild()
}

// hitRateInput returns size symbols where each is 'a' with probability
// rate and a guaranteed miss otherwise.
func hitRateInput(rng *rand.Rand, size int, rate float64) []byte {
	out := make([]byte, size)
	for i := range out {
		if rng.Float64() < rate {
			out[i] = 'a'
		} else {
			out[i] = 'z'
		}
	}
	return out
}

// BenchmarkEngineDensity sweeps the three backends across frontier-density
// regimes on the same fanout automaton: sparse (2% hit rate), mixed (50%)
// and dense (98% — the frontier saturates). This is the benchmark behind
// the adaptive engine's thresholds; see docs/ENGINES.md.
func BenchmarkEngineDensity(b *testing.B) {
	const states = 2048
	n := fanoutNFA(states)
	regimes := []struct {
		name string
		rate float64
	}{
		{"sparse", 0.02},
		{"mixed", 0.50},
		{"dense", 0.98},
	}
	kinds := []Kind{SparseKind, BitKind, Auto}
	for _, reg := range regimes {
		input := hitRateInput(rand.New(rand.NewSource(17)), 1<<14, reg.rate)
		b.Run(reg.name, func(b *testing.B) {
			for _, kind := range kinds {
				b.Run(kind.String(), func(b *testing.B) {
					tab := NewTables(n).BuildAll()
					e := New(kind, n, tab)
					b.SetBytes(int64(len(input)))
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						for j, sym := range input {
							e.Step(sym, int64(j), nil)
						}
					}
				})
			}
		})
	}
}
