package engine

import (
	"bytes"
	"testing"

	"pap/internal/nfa"
)

// TestStepBatchAllocs pins the vectorized batch kernel at zero allocations
// per pass: after one warm-up pass has published the lazy match vectors and
// the CSR successor arrays, batching an input through a live frontier must
// touch only preallocated engine state.
func TestStepBatchAllocs(t *testing.T) {
	n := fanoutNFA(256)
	tab := NewTables(n)
	e := NewBit(n, tab)
	// Hits keep the frontier live (every state matches 'a'); interleaved
	// misses force the frontier-death path inside the kernel too.
	input := bytes.Repeat([]byte("aaaaaaaz"), 64)
	emit := func(Report) {}
	run := func() {
		for i := 0; i < len(input); {
			c, _, _ := e.StepBatch(input[i:], int64(i), emit)
			i += c
		}
	}
	run() // warm-up: lazy tables, CSR arrays, skip scanner
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Fatalf("StepBatch allocates %.1f objects per pass, want 0", allocs)
	}
}

// TestScoringOffAllocs pins the unscored hot path at zero allocations with
// the scoring machinery compiled in: even on a *scored* automaton (edge
// weights present), an engine that never enables score tracking must touch
// no score arrays and allocate nothing per pass.
func TestScoringOffAllocs(t *testing.T) {
	b := nfa.NewBuilder("scored-fanout")
	root := b.AddState(nfa.ClassOf('a'), nfa.AllInput)
	for i := 0; i < 256; i++ {
		id := b.AddReportState(nfa.ClassOf('a'), 0, int32(i))
		b.AddScoredEdge(root, id, int32(i%7-3))
	}
	n := b.MustBuild()
	if !n.Scored() {
		t.Fatal("automaton should be scored")
	}
	e := NewBit(n, NewTables(n))
	input := bytes.Repeat([]byte("aaaaaaaz"), 64)
	emit := func(Report) {}
	run := func() {
		for i := 0; i < len(input); {
			c, _, _ := e.StepBatch(input[i:], int64(i), emit)
			i += c
		}
	}
	run() // warm-up: lazy tables, CSR arrays, skip scanner
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Fatalf("scoring-off StepBatch allocates %.1f objects per pass, want 0", allocs)
	}
}

// TestBaselineSkipScanAllocs pins the baseline-skip fast path at zero
// allocations: a dead frontier scanning past a long out-of-class run must
// not allocate, however many StepBatch calls the run is split into.
func TestBaselineSkipScanAllocs(t *testing.T) {
	n := fanoutNFA(64)
	tab := NewTables(n)
	e := NewBit(n, tab)
	e.Step('z', 0, nil) // kill the start frontier: 'z' is out of class
	if !e.Dead() {
		t.Fatal("frontier still live after a guaranteed miss")
	}
	input := bytes.Repeat([]byte("z"), 4096)
	run := func() {
		for i := 0; i < len(input); {
			c, _, _ := e.StepBatch(input[i:], int64(i), nil)
			i += c
		}
	}
	run()
	if skipped := e.BaselineSkipped(); skipped == 0 {
		t.Fatal("skip fast path never engaged on an all-miss input")
	}
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Fatalf("baseline-skip scan allocates %.1f objects per pass, want 0", allocs)
	}
}
