package engine

import (
	"math/rand"
	"sort"
	"testing"

	"pap/internal/nfa"
)

// TestBaselineDecomposition verifies the NFA additivity PAP's simulator
// relies on: for any automaton, seed, and input, the frontier of a full run
// (baseline injected) equals the union of a baseline-free run from the seed
// and a baseline-only run — at every step. Reports decompose the same way.
func TestBaselineDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		n := randomNFA(rng, 3+rng.Intn(30))
		if len(n.AllInputStates()) == 0 {
			continue // decomposition is trivial without a baseline
		}
		input := randomInput(rng, 60)

		// Pick a random seed among non-start states.
		var seed []nfa.StateID
		for q := 0; q < n.Len(); q++ {
			if rng.Intn(3) == 0 {
				seed = append(seed, nfa.StateID(q))
			}
		}

		full := NewSparse(n)
		full.Reset(seed)
		enum := NewSparse(n)
		enum.SetBaseline(false)
		enum.Reset(seed)
		base := NewSparse(n)
		base.Reset(nil)

		var fullReports, enumReports, baseReports []Report
		for i, sym := range input {
			full.Step(sym, int64(i), func(r Report) { fullReports = append(fullReports, r) })
			enum.Step(sym, int64(i), func(r Report) { enumReports = append(enumReports, r) })
			base.Step(sym, int64(i), func(r Report) { baseReports = append(baseReports, r) })

			union := unionIDs(enum.Frontier(), base.Frontier())
			got := sortedIDs(full.AppendFrontier(nil))
			if !equalIDs(union, got) {
				t.Fatalf("trial %d step %d: full=%v, enum∪base=%v", trial, i, got, union)
			}
		}
		if !SameReports(fullReports, append(append([]Report(nil), enumReports...), baseReports...)) {
			t.Fatalf("trial %d: report decomposition failed", trial)
		}
	}
}

// TestNoBaselineSkipsAllInput: with baseline off, all-input states never
// fire, even when reachable as children.
func TestNoBaselineSkipsAllInput(t *testing.T) {
	b := nfa.NewBuilder("t")
	a := b.AddState(nfa.ClassOf('a'), nfa.StartOfData)
	loop := b.AddState(nfa.AnyClass(), nfa.AllInput|nfa.Report)
	b.AddEdge(a, loop)
	n := b.MustBuild()

	e := NewSparse(n)
	e.SetBaseline(false)
	e.Reset([]nfa.StateID{a})
	var reports []Report
	for i, sym := range []byte("aaa") {
		e.Step(sym, int64(i), func(r Report) { reports = append(reports, r) })
	}
	if len(reports) != 0 {
		t.Fatalf("all-input state fired with baseline off: %+v", reports)
	}
	if e.FrontierLen() != 0 {
		t.Fatalf("frontier = %v, want empty (all-input children dropped)", e.Frontier())
	}
}

func unionIDs(a, b []nfa.StateID) []nfa.StateID {
	seen := map[nfa.StateID]bool{}
	var out []nfa.StateID
	for _, q := range a {
		if !seen[q] {
			seen[q] = true
			out = append(out, q)
		}
	}
	for _, q := range b {
		if !seen[q] {
			seen[q] = true
			out = append(out, q)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []nfa.StateID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBitBaselineParity: Sparse and Bit agree with baseline off too.
func TestBitBaselineParity(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 25; trial++ {
		n := randomNFA(rng, 3+rng.Intn(20))
		var seed []nfa.StateID
		for q := 0; q < n.Len(); q++ {
			if rng.Intn(3) == 0 {
				seed = append(seed, nfa.StateID(q))
			}
		}
		sp := NewSparse(n)
		sp.SetBaseline(false)
		sp.Reset(seed)
		bt := NewBit(n, nil)
		bt.SetBaseline(false)
		bt.Reset(seed)
		input := randomInput(rng, 50)
		for i, sym := range input {
			sp.Step(sym, int64(i), nil)
			bt.Step(sym, int64(i), nil)
			if !sp.FrontierSet().Equal(bt.Enabled()) {
				t.Fatalf("trial %d step %d: engines diverged with baseline off", trial, i)
			}
		}
	}
}
