package engine

import (
	"context"
	"slices"
	"sort"

	"pap/internal/nfa"
)

// ctxCheckEvery is the default symbol interval between context polls in
// the *Context run variants: frequent enough that even slow automata
// notice a deadline within microseconds, rare enough to keep the poll off
// the hot per-symbol path.
const ctxCheckEvery = 4096

// Result summarises one sequential execution.
type Result struct {
	Reports     []Report
	Transitions int64
	MaxFrontier int
	SumFrontier int64 // Σ frontier size over all positions (avg = Sum/len)
}

// Run executes the automaton over the whole input with the default (Auto)
// backend and collects all reports in order.
func Run(n *nfa.NFA, input []byte) Result {
	return RunEngine(n, input, Auto, nil)
}

// RunEngine is Run with an explicit backend kind and optional shared match
// tables (nil builds private tables on demand; sparse ignores them).
func RunEngine(n *nfa.NFA, input []byte, kind Kind, tab *Tables) Result {
	e := New(kind, n, tab)
	var res Result
	emit := func(r Report) { res.Reports = append(res.Reports, r) }
	for i, sym := range input {
		e.Step(sym, int64(i), emit)
		l := e.FrontierLen()
		if l > res.MaxFrontier {
			res.MaxFrontier = l
		}
		res.SumFrontier += int64(l)
	}
	res.Transitions = e.Transitions()
	return res
}

// RunEngineContext is RunEngine with cooperative cancellation: ctx.Err()
// is polled every `every` symbols (<= 0 selects the default interval), so
// the per-symbol inner loop stays check-free. On cancellation it returns
// ctx's error together with the partial result and the number of symbols
// processed before the poll observed the cancellation.
func RunEngineContext(ctx context.Context, n *nfa.NFA, input []byte, kind Kind, tab *Tables, every int) (Result, int, error) {
	if every <= 0 {
		every = ctxCheckEvery
	}
	e := New(kind, n, tab)
	var res Result
	emit := func(r Report) { res.Reports = append(res.Reports, r) }
	for i, sym := range input {
		if i%every == 0 {
			if err := ctx.Err(); err != nil {
				res.Transitions = e.Transitions()
				return res, i, err
			}
		}
		e.Step(sym, int64(i), emit)
		l := e.FrontierLen()
		if l > res.MaxFrontier {
			res.MaxFrontier = l
		}
		res.SumFrontier += int64(l)
	}
	res.Transitions = e.Transitions()
	return res, len(input), nil
}

// Boundary captures the golden execution state at one segment cut: the
// segment starting at Pos sees Enabled as its true start frontier, produced
// by the states in Fired firing on input[Pos-1].
type Boundary struct {
	Pos     int
	Fired   []nfa.StateID // fired on input[Pos-1] (copy, sorted)
	Enabled []nfa.StateID // enabled at Pos, excluding all-input (copy, sorted)
}

// RunWithBoundaries is Run, additionally recording the golden state at each
// cut position. cuts must be strictly increasing, in (0, len(input)).
func RunWithBoundaries(n *nfa.NFA, input []byte, cuts []int) (Result, []Boundary) {
	return RunWithBoundariesEngine(n, input, cuts, Auto, nil)
}

// RunWithBoundariesEngine is RunWithBoundaries with an explicit backend
// kind and optional shared match tables.
func RunWithBoundariesEngine(n *nfa.NFA, input []byte, cuts []int, kind Kind, tab *Tables) (Result, []Boundary) {
	res, bounds, _, _ := RunWithBoundariesEngineContext(context.Background(), n, input, cuts, kind, tab, 0)
	return res, bounds
}

// RunWithBoundariesEngineContext is RunWithBoundariesEngine with the same
// cooperative cancellation contract as RunEngineContext: ctx is polled
// every `every` symbols (<= 0 selects the default) and the partial result,
// with the number of symbols processed, is returned alongside ctx's error
// on cancellation.
func RunWithBoundariesEngineContext(ctx context.Context, n *nfa.NFA, input []byte, cuts []int, kind Kind, tab *Tables, every int) (Result, []Boundary, int, error) {
	if every <= 0 {
		every = ctxCheckEvery
	}
	e := New(kind, n, tab)
	var res Result
	emit := func(r Report) { res.Reports = append(res.Reports, r) }
	bounds := make([]Boundary, 0, len(cuts))
	ci := 0
	for i, sym := range input {
		if i%every == 0 {
			if err := ctx.Err(); err != nil {
				res.Transitions = e.Transitions()
				return res, bounds, i, err
			}
		}
		e.Step(sym, int64(i), emit)
		l := e.FrontierLen()
		if l > res.MaxFrontier {
			res.MaxFrontier = l
		}
		res.SumFrontier += int64(l)
		if ci < len(cuts) && cuts[ci] == i+1 {
			bounds = append(bounds, Boundary{
				Pos:     i + 1,
				Fired:   sortedIDs(e.AppendFired(nil)),
				Enabled: sortedIDs(e.AppendFrontier(nil)),
			})
			ci++
		}
	}
	res.Transitions = e.Transitions()
	return res, bounds, len(input), nil
}

// sortedIDs sorts ids in place and returns them.
func sortedIDs(ids []nfa.StateID) []nfa.StateID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ReportKey is a comparable identity for deduplicating report events across
// flows: the same (offset, state) pair may be observed by several flows.
type ReportKey struct {
	Offset int64
	State  nfa.StateID
}

// DedupeReports sorts reports by (offset, state) and removes duplicates.
// It sorts in place and allocates nothing, so hot paths (Stream.Write) can
// call it per chunk.
func DedupeReports(rs []Report) []Report {
	if len(rs) <= 1 {
		return rs
	}
	slices.SortFunc(rs, func(a, b Report) int {
		if a.Offset != b.Offset {
			if a.Offset < b.Offset {
				return -1
			}
			return 1
		}
		return int(a.State) - int(b.State)
	})
	out := rs[:1]
	for _, r := range rs[1:] {
		last := out[len(out)-1]
		if r.Offset != last.Offset || r.State != last.State {
			out = append(out, r)
		}
	}
	return out
}

// SameReports reports whether a and b contain the same set of
// (offset, state) events, ignoring order and duplicates.
func SameReports(a, b []Report) bool {
	da := DedupeReports(append([]Report(nil), a...))
	db := DedupeReports(append([]Report(nil), b...))
	if len(da) != len(db) {
		return false
	}
	for i := range da {
		if da[i].Offset != db[i].Offset || da[i].State != db[i].State {
			return false
		}
	}
	return true
}
