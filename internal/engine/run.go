package engine

import (
	"context"
	"slices"
	"sort"

	"pap/internal/nfa"
	"pap/internal/prefilter"
)

// ctxCheckEvery is the default symbol interval between context polls in
// the *Context run variants: frequent enough that even slow automata
// notice a deadline within microseconds, rare enough to keep the poll off
// the hot per-symbol path.
const ctxCheckEvery = 4096

// Result summarises one sequential execution.
type Result struct {
	Reports     []Report
	Transitions int64
	MaxFrontier int
	SumFrontier int64 // Σ frontier size over all positions (avg = Sum/len)
	// PrefilterSkipped counts input bytes the run never stepped because a
	// prefilter proved them inert on a dead frontier (0 for engines
	// without a prefilter). Skipped symbols contribute nothing to
	// Transitions or the frontier statistics — for class skips that is
	// exact (the true contribution is zero); literal skips additionally
	// drop doomed partial frontiers (see RunOpts.LiteralPrefilter).
	PrefilterSkipped int64
	// BaselineSkippedBytes counts input bytes consumed by an engine's own
	// baseline-skip fast path (BaselineSkipper backends: bit and adaptive):
	// with the frontier collapsed to the always-active baseline, bytes
	// outside the start class are consumed by a class scan instead of a
	// step. Like class prefilter skips this is fully exact — every
	// observable, including the per-symbol frontier statistics, is
	// preserved bit-for-bit.
	BaselineSkippedBytes int64
	// Cache reports the lazy-DFA state-cache counters, zero for backends
	// without one.
	Cache CacheStats
	// BestScore is the maximum report Score of a scored run (see
	// RunOpts.Scored); meaningful only when Reports is non-empty (scores
	// may be negative, so 0 is not a sentinel). Always 0 for unscored runs.
	BestScore int64
}

// RunOpts tunes the run loops.
type RunOpts struct {
	// LiteralPrefilter permits the report-exact literal scanner for
	// dead-frontier skips, in addition to the always-exact class scanner.
	// Only the report stream is then guaranteed; MaxFrontier/SumFrontier
	// may undercount doomed partial-literal activity. Match-only callers
	// (pap.Match and friends) enable it; metric-bearing callers must not.
	LiteralPrefilter bool
	// DisableBaselineSkip forces every symbol through the stepping loop
	// even on engines with the baseline-skip fast path — the ablation the
	// conformance harness uses to prove the fast path exact.
	DisableBaselineSkip bool
	// Scored enables per-transition score tracking (see Scorer): the engine
	// kind is remapped through ScoringKind (lazy DFA and meta have no score
	// channel), reports carry scores, Result.BestScore is filled, and the
	// literal prefilter is never used — it is only report-exact, and a
	// dropped doomed frontier could carry the best score. The always-exact
	// class and baseline skips stay on: a skipped symbol fires nothing, so
	// no score can change.
	Scored bool
}

// engineFor builds the run-loop engine honouring opts: kind remapping,
// score tracking, and the baseline-skip ablation.
func engineFor(n *nfa.NFA, kind Kind, tab *Tables, opts RunOpts) Engine {
	if opts.Scored {
		kind = ScoringKind(kind)
	}
	e := New(kind, n, tab)
	if opts.Scored {
		SetScoring(e, true)
	}
	if opts.DisableBaselineSkip {
		SetBaselineSkip(e, false)
	}
	return e
}

// Run executes the automaton over the whole input with the default (Auto)
// backend and collects all reports in order.
func Run(n *nfa.NFA, input []byte) Result {
	return RunEngine(n, input, Auto, nil)
}

// RunEngine is Run with an explicit backend kind and optional shared match
// tables (nil builds private tables on demand; sparse ignores them).
func RunEngine(n *nfa.NFA, input []byte, kind Kind, tab *Tables) Result {
	return RunEngineOpts(n, input, kind, tab, RunOpts{})
}

// skipFrom returns the next offset the engine must actually step from
// position i, given a dead frontier, or i when no skip applies.
func skipFrom(pf *prefilter.Prefilter, input []byte, i int, opts RunOpts) int {
	if opts.LiteralPrefilter && !opts.Scored {
		return pf.NextLiteral(input, i)
	}
	return pf.Next(input, i)
}

// RunEngineOpts is RunEngine with run options. Engines advertising a
// prefilter (the meta backend) skip dead-frontier regions instead of
// stepping them; Result.PrefilterSkipped counts the bytes skipped.
func RunEngineOpts(n *nfa.NFA, input []byte, kind Kind, tab *Tables, opts RunOpts) Result {
	e := engineFor(n, kind, tab, opts)
	pf := PrefilterOf(e)
	bs, _ := e.(BatchStepper)
	var res Result
	emit := func(r Report) { res.Reports = append(res.Reports, r) }
	for i := 0; i < len(input); {
		if pf != nil && e.Dead() {
			if j := skipFrom(pf, input, i, opts); j > i {
				res.PrefilterSkipped += int64(j - i)
				i = j
				continue
			}
		}
		if bs != nil {
			c, sum, max := bs.StepBatch(input[i:], int64(i), emit)
			res.SumFrontier += sum
			if max > res.MaxFrontier {
				res.MaxFrontier = max
			}
			i += c
			continue
		}
		e.Step(input[i], int64(i), emit)
		l := e.FrontierLen()
		if l > res.MaxFrontier {
			res.MaxFrontier = l
		}
		res.SumFrontier += int64(l)
		i++
	}
	res.Transitions = e.Transitions()
	res.Cache = CacheStatsOf(e)
	res.BaselineSkippedBytes = BaselineSkippedOf(e)
	res.BestScore, _ = BestReportScore(res.Reports)
	return res
}

// RunEngineContext is RunEngine with cooperative cancellation: ctx.Err()
// is polled every `every` symbols (<= 0 selects the default interval), so
// the per-symbol inner loop stays check-free. On cancellation it returns
// ctx's error together with the partial result and the number of symbols
// processed before the poll observed the cancellation.
func RunEngineContext(ctx context.Context, n *nfa.NFA, input []byte, kind Kind, tab *Tables, every int) (Result, int, error) {
	return RunEngineOptsContext(ctx, n, input, kind, tab, every, RunOpts{})
}

// RunEngineOptsContext is RunEngineContext with run options (see
// RunEngineOpts). Prefilter skips jump over poll offsets without
// checking — a skip consumes input at scan speed, so cancellation latency
// stays bounded by the stepped stretches between candidates.
func RunEngineOptsContext(ctx context.Context, n *nfa.NFA, input []byte, kind Kind, tab *Tables, every int, opts RunOpts) (Result, int, error) {
	if every <= 0 {
		every = ctxCheckEvery
	}
	e := engineFor(n, kind, tab, opts)
	pf := PrefilterOf(e)
	bs, _ := e.(BatchStepper)
	var res Result
	emit := func(r Report) { res.Reports = append(res.Reports, r) }
	nextPoll := 0
	for i := 0; i < len(input); {
		if pf != nil && e.Dead() {
			if j := skipFrom(pf, input, i, opts); j > i {
				res.PrefilterSkipped += int64(j - i)
				i = j
				continue
			}
		}
		if i >= nextPoll {
			if err := ctx.Err(); err != nil {
				res.Transitions = e.Transitions()
				res.Cache = CacheStatsOf(e)
				res.BaselineSkippedBytes = BaselineSkippedOf(e)
				res.BestScore, _ = BestReportScore(res.Reports)
				return res, i, err
			}
			nextPoll = i + every
		}
		if bs != nil {
			c, sum, max := bs.StepBatch(input[i:], int64(i), emit)
			res.SumFrontier += sum
			if max > res.MaxFrontier {
				res.MaxFrontier = max
			}
			i += c
			continue
		}
		e.Step(input[i], int64(i), emit)
		l := e.FrontierLen()
		if l > res.MaxFrontier {
			res.MaxFrontier = l
		}
		res.SumFrontier += int64(l)
		i++
	}
	res.Transitions = e.Transitions()
	res.Cache = CacheStatsOf(e)
	res.BaselineSkippedBytes = BaselineSkippedOf(e)
	res.BestScore, _ = BestReportScore(res.Reports)
	return res, len(input), nil
}

// Boundary captures the golden execution state at one segment cut: the
// segment starting at Pos sees Enabled as its true start frontier, produced
// by the states in Fired firing on input[Pos-1].
type Boundary struct {
	Pos     int
	Fired   []nfa.StateID // fired on input[Pos-1] (copy, sorted)
	Enabled []nfa.StateID // enabled at Pos, excluding all-input (copy, sorted)
	// Scores holds the best-path score of each Enabled state, parallel to
	// Enabled; nil for unscored runs. Segment flows seeded from this
	// boundary inherit these entry scores, which is what makes
	// boundary-crossing path scores exact under parallelization.
	Scores []int64
}

// RunWithBoundaries is Run, additionally recording the golden state at each
// cut position. cuts must be strictly increasing, in (0, len(input)).
func RunWithBoundaries(n *nfa.NFA, input []byte, cuts []int) (Result, []Boundary) {
	return RunWithBoundariesEngine(n, input, cuts, Auto, nil)
}

// RunWithBoundariesEngine is RunWithBoundaries with an explicit backend
// kind and optional shared match tables.
func RunWithBoundariesEngine(n *nfa.NFA, input []byte, cuts []int, kind Kind, tab *Tables) (Result, []Boundary) {
	res, bounds, _, _ := RunWithBoundariesEngineContext(context.Background(), n, input, cuts, kind, tab, 0, RunOpts{})
	return res, bounds
}

// RunWithBoundariesEngineContext is RunWithBoundariesEngine with the same
// cooperative cancellation contract as RunEngineContext: ctx is polled
// every `every` symbols (<= 0 selects the default) and the partial result,
// with the number of symbols processed, is returned alongside ctx's error
// on cancellation. Of opts only DisableBaselineSkip applies (the literal
// scanner is never exact enough for a metric-bearing boundary run).
func RunWithBoundariesEngineContext(ctx context.Context, n *nfa.NFA, input []byte, cuts []int, kind Kind, tab *Tables, every int, opts RunOpts) (Result, []Boundary, int, error) {
	if every <= 0 {
		every = ctxCheckEvery
	}
	e := engineFor(n, kind, tab, opts)
	pf := PrefilterOf(e)
	bs, _ := e.(BatchStepper)
	var res Result
	emit := func(r Report) { res.Reports = append(res.Reports, r) }
	bounds := make([]Boundary, 0, len(cuts))
	ci := 0
	nextPoll := 0
	for i := 0; i < len(input); {
		// Boundary runs feed the modelled-cycle metrics, so only the fully
		// exact class scanner may skip here, and a skip is clamped to land
		// one symbol before the next cut: stepping that symbol records the
		// boundary naturally (its Fired/Enabled are provably empty in a
		// skipped region, but the recording code stays on one path).
		if pf != nil && e.Dead() {
			j := pf.Next(input, i)
			if ci < len(cuts) && cuts[ci]-1 < j {
				j = cuts[ci] - 1
			}
			if j > i {
				res.PrefilterSkipped += int64(j - i)
				i = j
				continue
			}
		}
		if i >= nextPoll {
			if err := ctx.Err(); err != nil {
				res.Transitions = e.Transitions()
				res.Cache = CacheStatsOf(e)
				res.BaselineSkippedBytes = BaselineSkippedOf(e)
				res.BestScore, _ = BestReportScore(res.Reports)
				return res, bounds, i, err
			}
			nextPoll = i + every
		}
		// Batch up to one symbol short of the next cut: the cut-defining
		// symbol is stepped scalar below so its Fired/Enabled record the
		// boundary. Engine-internal baseline skips stay inside the window
		// (they are clamped by the slice) and are exact for every metric.
		if bs != nil {
			hi := len(input) - 1
			if ci < len(cuts) && cuts[ci]-1 < hi {
				hi = cuts[ci] - 1
			}
			if i < hi {
				c, sum, max := bs.StepBatch(input[i:hi], int64(i), emit)
				res.SumFrontier += sum
				if max > res.MaxFrontier {
					res.MaxFrontier = max
				}
				i += c
				continue
			}
		}
		e.Step(input[i], int64(i), emit)
		l := e.FrontierLen()
		if l > res.MaxFrontier {
			res.MaxFrontier = l
		}
		res.SumFrontier += int64(l)
		if ci < len(cuts) && cuts[ci] == i+1 {
			b := Boundary{
				Pos:     i + 1,
				Fired:   sortedIDs(e.AppendFired(nil)),
				Enabled: sortedIDs(e.AppendFrontier(nil)),
			}
			if opts.Scored {
				b.Scores = AppendScoresOf(e, b.Enabled, nil)
			}
			bounds = append(bounds, b)
			ci++
		}
		i++
	}
	res.Transitions = e.Transitions()
	res.Cache = CacheStatsOf(e)
	res.BaselineSkippedBytes = BaselineSkippedOf(e)
	res.BestScore, _ = BestReportScore(res.Reports)
	return res, bounds, len(input), nil
}

// sortedIDs sorts ids in place and returns them.
func sortedIDs(ids []nfa.StateID) []nfa.StateID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ReportKey is a comparable identity for deduplicating report events across
// flows: the same (offset, state) pair may be observed by several flows.
type ReportKey struct {
	Offset int64
	State  nfa.StateID
}

// DedupeReports sorts reports by (offset, state) and removes duplicates,
// keeping the maximum Score among duplicates — under max-plus scoring,
// several flows may each observe the same (offset, state) event along
// different paths, and the event's true score is the best of them. It sorts
// in place and allocates nothing, so hot paths (Stream.Write) can call it
// per chunk.
func DedupeReports(rs []Report) []Report {
	if len(rs) <= 1 {
		return rs
	}
	slices.SortFunc(rs, func(a, b Report) int {
		if a.Offset != b.Offset {
			if a.Offset < b.Offset {
				return -1
			}
			return 1
		}
		return int(a.State) - int(b.State)
	})
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if r.Offset != last.Offset || r.State != last.State {
			out = append(out, r)
		} else if r.Score > last.Score {
			last.Score = r.Score
		}
	}
	return out
}

// SameReports reports whether a and b contain the same set of
// (offset, state, score) events, ignoring order and duplicates (duplicate
// scores max-merge first, matching DedupeReports). Unscored runs carry
// all-zero scores, so the comparison reduces to (offset, state) for them.
func SameReports(a, b []Report) bool {
	da := DedupeReports(append([]Report(nil), a...))
	db := DedupeReports(append([]Report(nil), b...))
	if len(da) != len(db) {
		return false
	}
	for i := range da {
		if da[i].Offset != db[i].Offset || da[i].State != db[i].State || da[i].Score != db[i].Score {
			return false
		}
	}
	return true
}
