package engine

import (
	"pap/internal/bitset"
	"pap/internal/nfa"
	"pap/internal/prefilter"
)

// Adaptive switching policy. Density is frontier size relative to the
// automaton's state count; the two thresholds are deliberately apart
// (hysteresis) and switches are rate-limited so an oscillating frontier
// cannot thrash between representations. See docs/ENGINES.md for the
// rationale and measurements.
const (
	// adaptiveDenseDiv: go dense when frontier > states/adaptiveDenseDiv
	// (density above 1/8).
	adaptiveDenseDiv = 8
	// adaptiveSparseDiv: go back to sparse when frontier <
	// states/adaptiveSparseDiv (density below 1/16).
	adaptiveSparseDiv = 16
	// adaptiveHoldSteps is the minimum number of Steps between two
	// representation switches.
	adaptiveHoldSteps = 16
)

// Adaptive is the density-adaptive engine: it executes on the Sparse
// engine while the frontier is small (most inputs, most of the time) and
// migrates the frontier to the Bit engine when density crosses the dense
// threshold — the regime the AP's every-cycle dense state-vector update is
// built for, common under enumeration where a segment runs |Range(σ)|
// flows at once. Both representations produce identical observable
// behaviour, so switching is invisible except in speed. Not safe for
// concurrent use; the shared Tables is.
type Adaptive struct {
	n        *nfa.NFA
	states   int
	tab      *Tables
	sparse   *Sparse
	bit      *Bit // created on the first switch to dense
	cur      Engine
	dense    bool
	baseline bool
	switches int64
	since    int // steps since the last switch (rate limit)
	seedBuf  []nfa.StateID

	// Score tracking (see Scorer): the concrete engines hold the scores;
	// the adaptive layer only propagates the switch and carries the score
	// vector across representation switches via scoreBuf.
	scoring  bool
	scoreBuf []int64

	// Baseline-skip fast path (see StepBatch): the adaptive engine skips
	// at its own level so a dead frontier never pays a representation
	// switch just to reach the bit engine's scanner.
	skip    *prefilter.ClassScanner
	skipOn  bool
	skipped int64
}

// NewAdaptive returns an adaptive engine at the start configuration,
// initially in sparse representation, sharing tab (nil allocates private
// lazily-filled tables, only ever touched after a dense switch).
func NewAdaptive(n *nfa.NFA, tab *Tables) *Adaptive {
	if tab == nil {
		tab = NewTables(n)
	}
	a := &Adaptive{
		n:        n,
		states:   n.Len(),
		tab:      tab,
		sparse:   NewSparse(n),
		baseline: true,
		since:    adaptiveHoldSteps,
		skip:     tab.BaselineSkip(),
		skipOn:   true,
	}
	a.cur = a.sparse
	return a
}

// Reset replaces the frontier with the given seed states, staying in the
// current representation (the next Step re-evaluates density immediately).
func (a *Adaptive) Reset(seed []nfa.StateID) {
	a.cur.Reset(seed)
	a.since = adaptiveHoldSteps
}

// SetScoring switches score tracking (see Scorer) on both representations.
func (a *Adaptive) SetScoring(on bool) {
	a.scoring = on
	a.sparse.SetScoring(on)
	if a.bit != nil {
		a.bit.SetScoring(on)
	}
}

// ResetScored is Reset with per-seed entry scores (see Scorer).
func (a *Adaptive) ResetScored(seed []nfa.StateID, scores []int64) {
	a.cur.(Scorer).ResetScored(seed, scores)
	a.since = adaptiveHoldSteps
}

// FrontierScore returns the best-path score of enabled state q.
func (a *Adaptive) FrontierScore(q nfa.StateID) int64 {
	return a.cur.(Scorer).FrontierScore(q)
}

// SetBaseline switches baseline injection; see Sparse.SetBaseline.
func (a *Adaptive) SetBaseline(on bool) {
	a.baseline = on
	a.cur.SetBaseline(on)
}

// Step consumes one symbol. The density check runs before the step, so the
// fired set observable afterwards always belongs to the engine that
// executed this symbol. The hot path dispatches on the concrete engines
// (not through Engine) to keep sparse-regime overhead in the noise.
func (a *Adaptive) Step(sym byte, off int64, emit EmitFunc) {
	if a.since >= adaptiveHoldSteps {
		if !a.dense {
			if len(a.sparse.frontier)*adaptiveDenseDiv > a.states {
				a.switchTo(true)
			}
		} else if a.bit.enabled.Count()*adaptiveSparseDiv < a.states {
			a.switchTo(false)
		}
	} else {
		a.since++
	}
	if a.dense {
		a.bit.Step(sym, off, emit)
	} else {
		a.sparse.Step(sym, off, emit)
	}
}

// StepBatch consumes between 1 and len(input) symbols (see BatchStepper).
// A dead frontier takes the baseline-skip fast path regardless of the
// current representation; a dense frontier delegates the whole batch to
// the bit engine's vectorized kernel; a sparse frontier steps one symbol
// (the sparse engine is per-state work already — batching buys nothing).
func (a *Adaptive) StepBatch(input []byte, off int64, emit EmitFunc) (consumed int, sumFrontier int64, maxFrontier int) {
	if a.cur.Dead() {
		if n := a.skipAhead(input); n > 0 {
			return n, 0, 0
		}
	}
	if a.since >= adaptiveHoldSteps {
		if !a.dense {
			if len(a.sparse.frontier)*adaptiveDenseDiv > a.states {
				a.switchTo(true)
			}
		} else if a.bit.enabled.Count()*adaptiveSparseDiv < a.states {
			a.switchTo(false)
		}
	}
	if a.dense {
		consumed, sumFrontier, maxFrontier = a.bit.StepBatch(input, off, emit)
		if a.since < adaptiveHoldSteps {
			if a.since += consumed; a.since > adaptiveHoldSteps {
				a.since = adaptiveHoldSteps
			}
		}
		return consumed, sumFrontier, maxFrontier
	}
	if a.since < adaptiveHoldSteps {
		a.since++
	}
	a.sparse.Step(input[0], off, emit)
	l := len(a.sparse.frontier)
	return 1, int64(l), l
}

// skipAhead is the adaptive engine's baseline-skip fast path; see
// Bit.skipAhead for the exactness argument. It operates above the
// representation choice, so skip behaviour (and the skipped count) does
// not depend on which engine currently holds the frontier.
func (a *Adaptive) skipAhead(input []byte) int {
	if !a.skipOn {
		return 0
	}
	var j int
	if a.baseline {
		if a.skip == nil {
			return 0
		}
		j = a.skip.NextIn(input, 0, len(input))
	} else {
		j = len(input)
	}
	if j > 0 {
		if a.dense {
			a.bit.clearFired()
		} else {
			a.sparse.clearFired()
		}
		a.skipped += int64(j)
	}
	return j
}

// SetBaselineSkip switches the baseline-skip fast path (on by default).
func (a *Adaptive) SetBaselineSkip(on bool) {
	a.skipOn = on
	if a.bit != nil {
		a.bit.SetBaselineSkip(on)
	}
}

// BaselineSkipped returns the cumulative symbols consumed by the
// baseline-skip fast path (including any the bit engine skipped while it
// held the frontier).
func (a *Adaptive) BaselineSkipped() int64 {
	s := a.skipped
	if a.bit != nil {
		s += a.bit.BaselineSkipped()
	}
	return s
}

// switchTo migrates the frontier into the other representation — the
// cross-engine analogue of an SVC context switch. The transition counters
// of both engines persist, so Transitions stays cumulative.
func (a *Adaptive) switchTo(dense bool) {
	var to Engine
	if dense {
		if a.bit == nil {
			a.bit = NewBit(a.n, a.tab)
			a.bit.SetBaselineSkip(a.skipOn)
			a.bit.SetScoring(a.scoring)
		}
		to = a.bit
	} else {
		to = a.sparse
	}
	a.seedBuf = a.cur.AppendFrontier(a.seedBuf[:0])
	to.SetBaseline(a.baseline)
	if a.scoring {
		// Carry the score vector across the representation switch: read the
		// frontier's scores out of the old engine, seed the new one with them.
		a.scoreBuf = AppendScoresOf(a.cur, a.seedBuf, a.scoreBuf[:0])
		to.(Scorer).ResetScored(a.seedBuf, a.scoreBuf)
	} else {
		to.Reset(a.seedBuf)
	}
	a.cur = to
	a.dense = dense
	a.switches++
	a.since = 0
}

// Dense reports whether the engine is currently in the bit representation.
func (a *Adaptive) Dense() bool { return a.dense }

// Switches returns the number of representation switches performed.
func (a *Adaptive) Switches() int64 { return a.switches }

// FrontierLen returns the number of enabled states (excluding all-input).
func (a *Adaptive) FrontierLen() int { return a.cur.FrontierLen() }

// Dead reports whether the frontier is empty.
func (a *Adaptive) Dead() bool { return a.cur.Dead() }

// Fingerprint returns the Zobrist fingerprint of the frontier.
func (a *Adaptive) Fingerprint() uint64 { return a.cur.Fingerprint() }

// Transitions returns cumulative transition-edge traversals across both
// representations.
func (a *Adaptive) Transitions() int64 {
	t := a.sparse.Transitions()
	if a.bit != nil {
		t += a.bit.Transitions()
	}
	return t
}

// AppendFrontier appends the enabled states to dst and returns it.
func (a *Adaptive) AppendFrontier(dst []nfa.StateID) []nfa.StateID {
	return a.cur.AppendFrontier(dst)
}

// AppendFired appends the states that fired on the most recent Step.
func (a *Adaptive) AppendFired(dst []nfa.StateID) []nfa.StateID {
	return a.cur.AppendFired(dst)
}

// FrontierSet materialises the frontier as a fresh bit vector.
func (a *Adaptive) FrontierSet() *bitset.Set { return a.cur.FrontierSet() }
