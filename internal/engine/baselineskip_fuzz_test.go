package engine

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// FuzzBaselineSkip stresses the vectorized batch kernel and the
// baseline-skip fast path against the scalar sparse reference on
// fuzzer-chosen automata, inputs, and window schedules. The fuzz bytes are
// mapped onto a mostly-missing alphabet so the frontier repeatedly decays
// onto the ASG-only baseline — the regime where the skip scanner engages —
// and windows of 1..130 symbols straddle the 64-symbol batch boundary both
// ways. Skip-enabled, skip-ablated, and adaptive engines must agree with
// the reference on every observable after every window, including across
// baseline on/off flips at window boundaries.
func FuzzBaselineSkip(f *testing.F) {
	// Committed corpus (testdata/fuzz/FuzzBaselineSkip) plus inline seeds:
	// skip-class boundary bytes around the 64-symbol batch edge,
	// chunk-straddling all-miss runs, and frontiers that die into the
	// baseline and revive.
	f.Add(int64(5), append(append(bytes.Repeat([]byte("z"), 63), 'a'), bytes.Repeat([]byte("z"), 65)...))
	f.Add(int64(11), bytes.Repeat([]byte("z"), 180))
	f.Add(int64(23), []byte("azzzzazzzzbzzzzczzzzdzzzzazzzza"))
	f.Add(int64(42), []byte("abcdabcdabcdabcd"))
	f.Fuzz(func(t *testing.T, seed int64, input []byte) {
		if len(input) > 4096 {
			input = input[:4096]
		}
		rng := rand.New(rand.NewSource(seed))
		n := randomNFA(rng, 2+rng.Intn(64))
		// Mostly misses, occasional hits: 'z' is never in a label, so long
		// fuzz runs exercise the skip scan; 'a'..'d' revive the frontier.
		mapped := make([]byte, len(input))
		for i, b := range input {
			mapped[i] = "aabcdzzzzzzzzzzz"[int(b)%16]
		}

		tab := NewTables(n)
		ref := NewSparse(n)
		names := []string{"sparse-ref", "bit-skip", "adaptive-skip", "bit-noskip"}
		bitSkip := NewBit(n, tab)
		adaSkip := NewAdaptive(n, tab)
		bitNoSkip := NewBit(n, tab)
		bitNoSkip.SetBaselineSkip(false)
		subs := []BatchStepper{bitSkip, adaSkip, bitNoSkip}
		all := []Engine{ref, bitSkip, adaSkip, bitNoSkip}

		reports := make([][]Report, len(all))
		emits := make([]EmitFunc, len(all))
		for k := range all {
			k := k
			emits[k] = func(r Report) { reports[k] = append(reports[k], r) }
		}

		baseline := true
		for i := 0; i < len(mapped); {
			w := 1 + rng.Intn(130)
			if w > len(mapped)-i {
				w = len(mapped) - i
			}
			for j := 0; j < w; j++ {
				ref.Step(mapped[i+j], int64(i+j), emits[0])
			}
			for k, bs := range subs {
				for p, rem := i, w; rem > 0; {
					c, _, _ := bs.StepBatch(mapped[p:p+rem], int64(p), emits[k+1])
					if c < 1 || c > rem {
						t.Fatalf("%s: StepBatch at %d consumed %d of %d", names[k+1], p, c, rem)
					}
					p += c
					rem -= c
				}
			}
			i += w
			checkAgreement(t, fmt.Sprintf("after %d symbols", i), names, all)
			if rng.Intn(4) == 0 {
				baseline = !baseline
				for _, e := range all {
					e.SetBaseline(baseline)
				}
			}
		}
		for k := 1; k < len(all); k++ {
			if !SameReports(reports[0], reports[k]) {
				t.Fatalf("%s reports diverged from %s:\n%+v\n%+v",
					names[k], names[0], reports[k], reports[0])
			}
		}
		if got := bitNoSkip.BaselineSkipped(); got != 0 {
			t.Fatalf("skip-ablated engine reports %d skipped bytes", got)
		}
	})
}
