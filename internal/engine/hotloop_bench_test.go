package engine_test

import (
	"math/rand"
	"os"
	"testing"
	"time"

	"pap/internal/engine"
	"pap/internal/nfa"
	"pap/internal/workloads"
)

// The hot-loop benchmarks run the real Table 1 ruleset automata — not
// synthetic rings — over sparse traffic: payloads whose bytes mostly fall
// outside the rulesets' text alphabet (binary/media content scanned by
// text rules), with periodic printable bursts that revive the frontier and
// land occasional matches. This is the regime ROADMAP item 2 targets: the
// frontier spends most of its life on the ASG-only baseline, and the
// per-symbol step loop is pure overhead that the baseline-skip scan and
// the batched kernel exist to remove.

// hotloopAutomaton builds one of the internal/workloads benchmarks at a
// bench-friendly scale.
func hotloopAutomaton(tb testing.TB, name string, scale float64) *nfa.NFA {
	tb.Helper()
	spec, err := workloads.Get(name)
	if err != nil {
		tb.Fatal(err)
	}
	n, err := spec.Build(scale, 7)
	if err != nil {
		tb.Fatalf("build %s: %v", name, err)
	}
	return n
}

// sparsePayload is mostly high bytes (outside every ruleset's pattern
// alphabet) with a short printable burst every ~2KB so the frontier
// periodically leaves the baseline and real matches occur.
func sparsePayload(rng *rand.Rand, size int) []byte {
	out := make([]byte, size)
	for i := range out {
		out[i] = byte(0x80 + rng.Intn(0x80))
	}
	burst := []byte("get /index.html http/1.1 host: www.example.com agent: mozilla 5.0\r\n")
	for at := 512; at+len(burst) < size; at += 1536 + rng.Intn(1024) {
		copy(out[at:], burst)
	}
	return out
}

// BenchmarkHotLoop measures the vectorized hot loop on the sparse
// intrusion (ANMLZoo Snort) and regex-suite (Bro217) workloads: the scalar
// sparse engine is the pre-vectorization baseline, bit/noskip isolates the
// batched kernel, and bit and auto add the baseline-skip fast path.
// BENCH_hotloop.json records a sampled run; the acceptance bar is bit ≥5×
// sparse on both workloads.
func BenchmarkHotLoop(b *testing.B) {
	rng := rand.New(rand.NewSource(61))
	loads := []struct {
		name  string
		n     *nfa.NFA
		input []byte
	}{
		{"intrusion", hotloopAutomaton(b, "Snort", 0.05), sparsePayload(rng, 1<<16)},
		{"regexsuite", hotloopAutomaton(b, "Bro217", 0.5), sparsePayload(rng, 1<<16)},
	}
	variants := []struct {
		name string
		kind engine.Kind
		opts engine.RunOpts
	}{
		{"sparse", engine.SparseKind, engine.RunOpts{}},
		{"bit-noskip", engine.BitKind, engine.RunOpts{DisableBaselineSkip: true}},
		{"bit", engine.BitKind, engine.RunOpts{}},
		{"auto", engine.Auto, engine.RunOpts{}},
	}
	for _, w := range loads {
		b.Run(w.name, func(b *testing.B) {
			tab := engine.NewTables(w.n).BuildAll()
			for _, v := range variants {
				b.Run(v.name, func(b *testing.B) {
					b.SetBytes(int64(len(w.input)))
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						engine.RunEngineOpts(w.n, w.input, v.kind, tab, v.opts)
					}
				})
			}
		})
	}
}

// TestHotLoopGuard is the CI regression guard on the vectorized hot loop:
// on the sparse intrusion workload from BenchmarkHotLoop, the batched bit
// engine with baseline-skip must stay at least 5x faster than the scalar
// sparse engine (the acceptance bar from ISSUE 8; measured headroom is far
// larger, see BENCH_hotloop.json). The ratio is relative, so the guard is
// hardware-independent. Gated behind PAP_BENCH_GUARD=1 like
// TestQuietRegimeGuard because timing asserts don't belong in the default
// -race matrix.
func TestHotLoopGuard(t *testing.T) {
	if os.Getenv("PAP_BENCH_GUARD") == "" {
		t.Skip("set PAP_BENCH_GUARD=1 to run the hot-loop regression guard")
	}
	n := hotloopAutomaton(t, "Snort", 0.05)
	input := sparsePayload(rand.New(rand.NewSource(61)), 1<<16)
	tab := engine.NewTables(n).BuildAll()

	// Best-of-N wall time per kind: the minimum is the least noisy
	// estimator of the achievable per-run cost.
	measure := func(kind engine.Kind) time.Duration {
		best := time.Duration(1<<62 - 1)
		for r := 0; r < 8; r++ {
			start := time.Now()
			engine.RunEngineOpts(n, input, kind, tab, engine.RunOpts{})
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	// Warm both paths (table builds, first-touch cache misses) before timing.
	measure(engine.SparseKind)
	measure(engine.BitKind)

	sparse := measure(engine.SparseKind)
	bit := measure(engine.BitKind)
	ratio := float64(sparse) / float64(bit)
	t.Logf("sparse intrusion: sparse %v, bit+skip %v, ratio %.1fx", sparse, bit, ratio)
	if ratio < 5 {
		t.Fatalf("hot-loop bit/sparse ratio %.2fx fell below the 5x floor (sparse %v, bit %v)",
			ratio, sparse, bit)
	}
}
