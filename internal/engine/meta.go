package engine

import (
	"pap/internal/bitset"
	"pap/internal/nfa"
	"pap/internal/prefilter"
)

// Meta is the regime-matched selector stack, extending the adaptive
// engine one level up:
//
//	prefilter  — when the frontier is dead, run loops skip input to the
//	             next candidate offset instead of stepping (the Meta
//	             engine advertises the automaton's prefilter through the
//	             Prefiltered interface; skipping itself lives in the
//	             loops, which own the input);
//	lazy DFA   — while frontiers recur, each step is one cached-edge
//	             lookup;
//	adaptive   — on lazy-DFA cache blowup, the familiar density-driven
//	             sparse⇄bit selector takes over permanently.
//
// Every Step is observably exact (the conformance harness holds Meta to
// full oracle equality, transitions included); only the prefilter skips
// performed by run loops trade frontier-statistics exactness, and only on
// the report-only match paths that opt into literal skipping.
type Meta struct {
	inner Engine
	pf    *prefilter.Prefilter
}

// NewMeta returns a meta engine at the automaton's start configuration.
// A nil tab is promoted to private tables (the prefilter and the adaptive
// fallback live there).
func NewMeta(n *nfa.NFA, tab *Tables) *Meta {
	if tab == nil {
		tab = NewTables(n)
	}
	pf := tab.Prefilter()
	if !pf.Useful() {
		pf = nil
	}
	return &Meta{
		inner: newLazyDFA(n, tab, func() Engine { return NewAdaptive(n, tab) }),
		pf:    pf,
	}
}

// Prefilter returns the automaton's prefilter, or nil when scanning
// cannot pay off; run loops use it to skip dead-frontier regions.
func (m *Meta) Prefilter() *prefilter.Prefilter { return m.pf }

// Prefiltered is implemented by engines that carry a prefilter usable by
// run loops for dead-frontier input skipping.
type Prefiltered interface {
	Prefilter() *prefilter.Prefilter
}

// PrefilterOf returns e's prefilter, or nil for engines without one.
func PrefilterOf(e Engine) *prefilter.Prefilter {
	if p, ok := e.(Prefiltered); ok {
		return p.Prefilter()
	}
	return nil
}

// CacheStatsOf returns e's lazy-DFA cache counters, zero for backends
// without a cache.
func CacheStatsOf(e Engine) CacheStats {
	if c, ok := e.(CacheStatser); ok {
		return c.CacheStats()
	}
	return CacheStats{}
}

func (m *Meta) Reset(seed []nfa.StateID)               { m.inner.Reset(seed) }
func (m *Meta) SetBaseline(on bool)                    { m.inner.SetBaseline(on) }
func (m *Meta) Step(sym byte, off int64, emit EmitFunc) { m.inner.Step(sym, off, emit) }
func (m *Meta) FrontierLen() int                       { return m.inner.FrontierLen() }
func (m *Meta) Dead() bool                             { return m.inner.Dead() }
func (m *Meta) Fingerprint() uint64                    { return m.inner.Fingerprint() }
func (m *Meta) Transitions() int64                     { return m.inner.Transitions() }

func (m *Meta) AppendFrontier(dst []nfa.StateID) []nfa.StateID {
	return m.inner.AppendFrontier(dst)
}

func (m *Meta) AppendFired(dst []nfa.StateID) []nfa.StateID {
	return m.inner.AppendFired(dst)
}

func (m *Meta) FrontierSet() *bitset.Set { return m.inner.FrontierSet() }

// CacheStats reports the inner lazy DFA's cache counters.
func (m *Meta) CacheStats() CacheStats { return CacheStatsOf(m.inner) }

// Switches reports the representation switches of the adaptive engine the
// inner lazy DFA may have fallen back to (0 before fallback).
func (m *Meta) Switches() int64 { return SwitchesOf(m.inner) }

var _ CacheStatser = (*Meta)(nil)
